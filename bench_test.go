// Package camusbench holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation (§VIII). One benchmark per
// result: run all with
//
//	go test -bench=. -benchmem
//
// or a single figure with e.g. -bench=Fig12. Each benchmark executes the
// full experiment per iteration and logs the reproduced series; the same
// experiments are runnable standalone via cmd/camus-bench (use -full
// there for paper-scale axes).
package camusbench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"camus/internal/analysis/fitcheck"
	"camus/internal/analysis/netcheck"
	"camus/internal/analysis/prove"
	"camus/internal/compiler"
	"camus/internal/controller"
	"camus/internal/ctlplane"
	"camus/internal/ctlplane/server"
	"camus/internal/experiments"
	"camus/internal/formats"
	"camus/internal/netsim"
	"camus/internal/pipeline"
	"camus/internal/routing"
	"camus/internal/spec"
	"camus/internal/subscription"
	"camus/internal/topology"
	"camus/internal/workload"
)

// TestMain stamps the host shape into every benchmark run (and thus
// bench-report.txt), so the ROADMAP's single-core caveat is
// machine-checkable against the recorded numbers.
func TestMain(m *testing.M) {
	fmt.Printf("host: NumCPU=%d GOMAXPROCS=%d %s %s/%s\n",
		runtime.NumCPU(), runtime.GOMAXPROCS(0), runtime.Version(),
		runtime.GOOS, runtime.GOARCH)
	os.Exit(m.Run())
}

func runExperiment(b *testing.B, fn func(experiments.Config) *experiments.Result) {
	b.Helper()
	cfg := experiments.DefaultConfig()
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = fn(cfg)
	}
	b.StopTimer()
	if res != nil {
		b.Logf("\n%s", res)
	}
}

// BenchmarkFig08ITCHLatencyCDF — §VIII-E1, Fig. 8: ITCH end-to-end
// latency, Camus switch filtering vs. software subscriber, on the
// Nasdaq-trace-like and synthetic Zipf workloads.
func BenchmarkFig08ITCHLatencyCDF(b *testing.B) {
	runExperiment(b, experiments.Fig8)
}

// BenchmarkFig09INTThroughput — §VIII-E2, Fig. 9: INT filter throughput
// vs. filter count for C userspace, DPDK, and Camus at 100G line rate.
func BenchmarkFig09INTThroughput(b *testing.B) {
	runExperiment(b, experiments.Fig9)
}

// BenchmarkFig11HICNLatency — §VIII-E3, Fig. 11: tail latency for
// uncached hICN content with the stateful cache-bypass predicates.
func BenchmarkFig11HICNLatency(b *testing.B) {
	runExperiment(b, experiments.Fig11)
}

// BenchmarkFig12BDDMemory — §VIII-F2, Fig. 12: compiled table entries vs.
// the one-big-table baseline, sweeping subscription count and
// selectiveness.
func BenchmarkFig12BDDMemory(b *testing.B) {
	runExperiment(b, experiments.Fig12)
}

// BenchmarkTable1Resources — §VIII-F2, Table I: switch resource usage
// for the ITCH, INT, and hICN applications.
func BenchmarkTable1Resources(b *testing.B) {
	runExperiment(b, experiments.Table1)
}

// BenchmarkFig13RoutingMemory — §VIII-G1, Fig. 13a–c: per-layer switch
// memory for the MR and TR policies with and without α-discretization.
func BenchmarkFig13RoutingMemory(b *testing.B) {
	runExperiment(b, experiments.Fig13)
}

// BenchmarkFig13dExtraTraffic — §VIII-G1, Fig. 13d: extra core-layer
// traffic as a function of the discretization unit α.
func BenchmarkFig13dExtraTraffic(b *testing.B) {
	runExperiment(b, experiments.Fig13d)
}

// BenchmarkFig14CompileTime — §VIII-G3, Fig. 14: dynamic reconfiguration
// (recompile) time for MR and TR, 1–3 variables, α=10 vs. α=1.
func BenchmarkFig14CompileTime(b *testing.B) {
	runExperiment(b, experiments.Fig14)
}

// BenchmarkFig15GeneralTopology — §VIII-G2, Fig. 15: max per-switch FIB
// entries for MST vs. MST++ spanning trees on AS-like graphs.
func BenchmarkFig15GeneralTopology(b *testing.B) {
	runExperiment(b, experiments.Fig15)
}

// BenchmarkSwitchParallel — the concurrent sharded dataplane on the
// Fig. 9 INT workload (100 compiled filters, generated telemetry
// stream): ProcessBatch aggregate throughput swept over worker counts
// from 1 to max(NumCPU, 8). Reports Mpps per sub-benchmark; on a
// multi-core host the aggregate scales with workers until the core
// budget saturates (a single-core host pins every sweep point to the
// sequential rate).
func BenchmarkSwitchParallel(b *testing.B) {
	prog := experiments.INTFilterProgram(100, 1)
	stream := workload.INTStream(workload.INTStreamConfig{Reports: 20000, Seed: 1})
	pkts := make([]*pipeline.Packet, len(stream))
	for i, r := range stream {
		pkts[i] = &pipeline.Packet{In: 0, Msgs: []*spec.Message{r.Message()}, Bytes: formats.INTReportBytes}
	}

	maxW := runtime.NumCPU()
	if maxW < 8 {
		maxW = 8
	}
	var sweep []int
	for w := 1; w <= maxW; w *= 2 {
		sweep = append(sweep, w)
	}
	if last := sweep[len(sweep)-1]; last != maxW {
		sweep = append(sweep, maxW)
	}
	for _, workers := range sweep {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			sw, err := pipeline.NewSwitch("bench", nil, prog, pipeline.WithWorkers(workers))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sw.ProcessBatch(pkts, 0)
			}
			b.StopTimer()
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(b.N*len(pkts))/s/1e6, "Mpps")
			}
		})
	}
}

// BenchmarkSwitchFastPath — the zero-alloc leaf-cache batch path
// (DESIGN.md §16) on the ITCH market-data workload: 100 symbol-equality
// filters (key-only, so every leaf is admissible) over a Zipf-popular
// synthetic feed. A warm-up batch fills the per-shard leaf cache before
// the timer starts; the timed region must then report 0 allocs/op —
// ProcessBatch resolves every packet from the packed-key cache without
// walking the BDD stages and writes deliveries into the preallocated
// per-shard arenas. perf-guard holds workers=1 to 0 allocs/op and
// ≥0.9× the recorded Mpps.
func BenchmarkSwitchFastPath(b *testing.B) {
	p := subscription.NewParser(formats.ITCH)
	syms := workload.DefaultSymbols(100)
	rules := make([]*subscription.Rule, 0, len(syms))
	for i, s := range syms {
		rule, err := p.ParseRule(fmt.Sprintf("stock == %s: fwd(%d)", s, i%48), i)
		if err != nil {
			b.Fatal(err)
		}
		rules = append(rules, rule)
	}
	prog, err := compiler.Compile(formats.ITCH, rules, compiler.Options{LastHop: true})
	if err != nil {
		b.Fatal(err)
	}
	feed := workload.ITCHFeed(workload.ITCHFeedConfig{Packets: 20000, Seed: 1})
	pkts := make([]*pipeline.Packet, len(feed))
	for i, fp := range feed {
		msgs := make([]*spec.Message, len(fp.Orders))
		for j, o := range fp.Orders {
			msgs[j] = o.Message()
		}
		pkts[i] = &pipeline.Packet{In: 0, Msgs: msgs, Bytes: formats.ITCHOrderBytes * len(fp.Orders)}
	}

	maxW := runtime.NumCPU()
	if maxW < 8 {
		maxW = 8
	}
	var sweep []int
	for w := 1; w <= maxW; w *= 2 {
		sweep = append(sweep, w)
	}
	if last := sweep[len(sweep)-1]; last != maxW {
		sweep = append(sweep, maxW)
	}
	for _, workers := range sweep {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			sw, err := pipeline.NewSwitch("bench", nil, prog, pipeline.WithWorkers(workers))
			if err != nil {
				b.Fatal(err)
			}
			// Two warm-up batches: the first fills the leaf cache (and
			// mostly runs the slow path), the second sizes the delivery
			// arenas for the all-hits regime the timer measures.
			sw.ProcessBatch(pkts, 0)
			sw.ProcessBatch(pkts, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sw.ProcessBatch(pkts, 0)
			}
			b.StopTimer()
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(b.N*len(pkts))/s/1e6, "Mpps")
			}
			st := sw.Stats()
			if st.LeafHits == 0 {
				b.Fatal("fast path never hit the leaf cache")
			}
		})
	}
}

// BenchmarkCompileParallel — the parallel compilation pipeline on a
// 10k-rule ITCH workload (symbol-equality filters with tick-threshold
// price predicates, the §VIII-F3 shape), swept over compile worker
// counts 1→8. The emitted program is identical for every worker count
// (asserted by TestParallelCompileCanonicalIdentity); this records the
// wall-clock and allocation trajectory. On a single-core host every
// sweep point degenerates to the sequential rate plus scheduling
// overhead — the host header above makes that caveat machine-checkable.
func BenchmarkCompileParallel(b *testing.B) {
	p := subscription.NewParser(formats.ITCH)
	syms := workload.DefaultSymbols(2000)
	r := rand.New(rand.NewSource(9))
	rules := make([]*subscription.Rule, 0, 10000)
	for i := 0; i < 10000; i++ {
		src := fmt.Sprintf("stock == %s and price > %d: fwd(%d)",
			syms[r.Intn(len(syms))], (r.Intn(20)+1)*100, i%48)
		rule, err := p.ParseRule(src, i)
		if err != nil {
			b.Fatal(err)
		}
		rules = append(rules, rule)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := compiler.Compile(formats.ITCH, rules, compiler.Options{Parallelism: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkChurn — the live control plane under load: a fat-tree(4)
// netsim with a ctlplane.Service hot-swapping programs while background
// publishers keep traffic flowing. Each iteration drives a generated
// Poisson/Zipf churn stream (subscribe:unsubscribe ≈ 1:1 once warm)
// through Subscribe/Unsubscribe and quiesces; reported metrics are
// sustained updates/sec and the p50/p99 event→all-switches-applied
// latency.
func BenchmarkChurn(b *testing.B) {
	net := topology.MustFatTree(4)
	ropts := routing.Options{Policy: routing.TrafficReduction, Alpha: 10}
	evs, err := workload.Churn(workload.ChurnConfig{
		Spec: formats.ITCH, Hosts: len(net.Hosts), Events: 600, PoolSize: 40, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	var lastStats ctlplane.Snapshot
	var updatesPerSec float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d, err := controller.Deploy(net, formats.ITCH,
			make([][]subscription.Expr, len(net.Hosts)), controller.Options{Routing: ropts})
		if err != nil {
			b.Fatal(err)
		}
		sim, err := netsim.New(d)
		if err != nil {
			b.Fatal(err)
		}
		sim.Workers = 2
		svc, err := ctlplane.New(net, formats.ITCH,
			ctlplane.WithRouting(ropts),
			ctlplane.WithInstallers(sim.Installers()...),
			ctlplane.WithSeed(3))
		if err != nil {
			b.Fatal(err)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(4))
			stocks := workload.DefaultSymbols(100)
			for {
				select {
				case <-stop:
					return
				default:
				}
				pubs := make([]netsim.Publication, 16)
				for j := range pubs {
					m := spec.NewMessage(formats.ITCH)
					m.MustSet("stock", spec.StrVal(stocks[r.Intn(len(stocks))]))
					m.MustSet("price", spec.IntVal(int64(r.Intn(1000))))
					m.MustSet("shares", spec.IntVal(1))
					pubs[j] = netsim.Publication{Host: r.Intn(len(net.Hosts)), Msgs: []*spec.Message{m}, Bytes: 64}
				}
				sim.PublishBatch(pubs)
			}
		}()
		live := make(map[int]int)
		b.StartTimer()
		start := time.Now()
		for _, ev := range evs {
			if ev.Add {
				_, ids, err := svc.Subscribe(ev.Host, []subscription.Expr{ev.Filter})
				if err != nil {
					b.Fatal(err)
				}
				live[ev.Key] = ids[0]
			} else {
				if _, err := svc.Unsubscribe(ev.Host, []int{live[ev.Key]}); err != nil {
					b.Fatal(err)
				}
			}
		}
		svc.Quiesce()
		elapsed := time.Since(start)
		b.StopTimer()
		close(stop)
		wg.Wait()
		lastStats = svc.Stats()
		svc.Close()
		updatesPerSec = float64(len(evs)) / elapsed.Seconds()
		b.StartTimer()
	}
	b.ReportMetric(updatesPerSec, "updates/s")
	b.ReportMetric(float64(lastStats.Latency.P50.Microseconds()), "p50-µs")
	b.ReportMetric(float64(lastStats.Latency.P99.Microseconds()), "p99-µs")
	b.ReportMetric(0, "ns/op")
	b.Logf("churn: %d events, %d batches (coalesced), +%d -%d =%d entries, %d retries, %d fallbacks, latency %s",
		lastStats.Events, lastStats.Batches, lastStats.Installs, lastStats.Deletes,
		lastStats.Keeps, lastStats.Retries, lastStats.Fallbacks, lastStats.Latency)
	if updatesPerSec < 1000 {
		b.Errorf("sustained %.0f updates/sec, want >= 1000", updatesPerSec)
	}
}

// BenchmarkCoverChurn — the covering control plane on a covering-heavy
// workload: deep Zipf-nested refinement chains (workload.CoverChains)
// concentrated on a few hosts, churned through a WithCovering service
// while background traffic flows. The reported reduction metric is the
// routing-state ratio full/covering — (roots + covered obligations) /
// roots across every (switch, port) forest — and the benchmark fails
// if subsumption stops buying at least a 2× table-state reduction.
func BenchmarkCoverChurn(b *testing.B) {
	net := topology.MustFatTree(4)
	ropts := routing.Options{Policy: routing.TrafficReduction, Alpha: 10}
	evs, err := workload.Churn(workload.ChurnConfig{
		Spec: formats.ITCH, Hosts: 4, Events: 600, PoolSize: 64,
		CoverHeavy: true, CoverDepth: 8, AddFraction: 0.7, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	var lastStats ctlplane.Snapshot
	var updatesPerSec, reduction float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d, err := controller.Deploy(net, formats.ITCH,
			make([][]subscription.Expr, len(net.Hosts)), controller.Options{Routing: ropts})
		if err != nil {
			b.Fatal(err)
		}
		sim, err := netsim.New(d)
		if err != nil {
			b.Fatal(err)
		}
		sim.Workers = 2
		svc, err := ctlplane.New(net, formats.ITCH,
			ctlplane.WithRouting(ropts),
			ctlplane.WithInstallers(sim.Installers()...),
			ctlplane.WithSeed(3),
			ctlplane.WithCovering(0))
		if err != nil {
			b.Fatal(err)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(4))
			stocks := workload.DefaultSymbols(100)
			for {
				select {
				case <-stop:
					return
				default:
				}
				pubs := make([]netsim.Publication, 16)
				for j := range pubs {
					m := spec.NewMessage(formats.ITCH)
					m.MustSet("stock", spec.StrVal(stocks[r.Intn(len(stocks))]))
					m.MustSet("price", spec.IntVal(int64(r.Intn(1000))))
					m.MustSet("shares", spec.IntVal(1))
					pubs[j] = netsim.Publication{Host: r.Intn(len(net.Hosts)), Msgs: []*spec.Message{m}, Bytes: 64}
				}
				sim.PublishBatch(pubs)
			}
		}()
		live := make(map[int]int)
		b.StartTimer()
		start := time.Now()
		for _, ev := range evs {
			if ev.Add {
				_, ids, err := svc.Subscribe(ev.Host, []subscription.Expr{ev.Filter})
				if err != nil {
					b.Fatal(err)
				}
				live[ev.Key] = ids[0]
			} else {
				if _, err := svc.Unsubscribe(ev.Host, []int{live[ev.Key]}); err != nil {
					b.Fatal(err)
				}
			}
		}
		svc.Quiesce()
		elapsed := time.Since(start)
		b.StopTimer()
		close(stop)
		wg.Wait()
		lastStats = svc.Stats()
		svc.Close()
		updatesPerSec = float64(len(evs)) / elapsed.Seconds()
		if lastStats.CoverEntries > 0 {
			reduction = float64(lastStats.CoverEntries+lastStats.CoverObligations) /
				float64(lastStats.CoverEntries)
		}
		b.StartTimer()
	}
	b.ReportMetric(updatesPerSec, "updates/s")
	b.ReportMetric(reduction, "reduction-x")
	b.ReportMetric(float64(lastStats.Latency.P50.Microseconds()), "p50-µs")
	b.ReportMetric(0, "ns/op")
	b.Logf("cover churn: %d events, %d batches, %d entries + %d covered (%.2f× reduction), latency %s",
		lastStats.Events, lastStats.Batches, lastStats.CoverEntries,
		lastStats.CoverObligations, reduction, lastStats.Latency)
	if reduction < 2 {
		b.Errorf("covering reduction %.2f×, want >= 2× on the covering-heavy workload", reduction)
	}
}

// BenchmarkCtlplaneDaemon — the multi-tenant control-plane daemon end
// to end: HTTP+JSON API → tenancy admission → round-robin dispatch →
// reconciler → netsim switches, with every event appended to the
// durable log (group-commit fsync). Each iteration boots a fresh daemon
// with a fresh log, drives a Zipf multi-tenant churn stream through the
// wire API, and reports sustained updates/sec plus client-observed
// p50/p99 request latency (parse + admission + fairness queue + apply
// fan-out + fsync, as a tenant experiences it).
func BenchmarkCtlplaneDaemon(b *testing.B) {
	net := topology.MustFatTree(4)
	ropts := routing.Options{Policy: routing.TrafficReduction, Alpha: 10}
	evs, err := workload.TenantChurn(workload.TenantChurnConfig{
		ChurnConfig: workload.ChurnConfig{
			Spec: formats.ITCH, Hosts: len(net.Hosts), Events: 400, PoolSize: 40, Seed: 5,
		},
		Tenants: 200,
	})
	if err != nil {
		b.Fatal(err)
	}
	post := func(client *http.Client, method, url string, body any) ([]byte, error) {
		buf, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		req, err := http.NewRequest(method, url, bytes.NewReader(buf))
		if err != nil {
			return nil, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		var out bytes.Buffer
		out.ReadFrom(resp.Body)
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("%s %s: status %d: %s", method, url, resp.StatusCode, out.String())
		}
		return out.Bytes(), nil
	}
	var p50, p99, updatesPerSec float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dep, err := controller.Deploy(net, formats.ITCH,
			make([][]subscription.Expr, len(net.Hosts)), controller.Options{Routing: ropts})
		if err != nil {
			b.Fatal(err)
		}
		sim, err := netsim.New(dep)
		if err != nil {
			b.Fatal(err)
		}
		sim.Workers = 2
		d, err := server.New(net, formats.ITCH,
			server.WithEventLog(filepath.Join(b.TempDir(), "events.log")),
			server.WithService(
				ctlplane.WithRouting(ropts),
				ctlplane.WithInstallers(sim.Installers()...),
				ctlplane.WithSeed(5)),
			server.WithTenancy(ctlplane.WithAutoCreate()))
		if err != nil {
			b.Fatal(err)
		}
		addr, err := d.Start("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		base := "http://" + addr
		client := &http.Client{}
		live := make(map[int]struct{ host, id int })
		lats := make([]time.Duration, 0, len(evs))
		b.StartTimer()
		start := time.Now()
		for _, ev := range evs {
			reqStart := time.Now()
			if ev.Add {
				raw, err := post(client, http.MethodPost,
					base+"/v1/tenants/"+ev.Tenant+"/subscriptions",
					map[string]any{"host": ev.Host, "filters": []string{ev.Filter.String()}})
				if err != nil {
					b.Fatal(err)
				}
				var resp struct {
					IDs []int `json:"ids"`
				}
				json.Unmarshal(raw, &resp)
				live[ev.Key] = struct{ host, id int }{ev.Host, resp.IDs[0]}
			} else {
				s := live[ev.Key]
				delete(live, ev.Key)
				if _, err := post(client, http.MethodDelete,
					base+"/v1/tenants/"+ev.Tenant+"/subscriptions",
					map[string]any{"host": s.host, "ids": []int{s.id}}); err != nil {
					b.Fatal(err)
				}
			}
			lats = append(lats, time.Since(reqStart))
		}
		elapsed := time.Since(start)
		b.StopTimer()
		snap := d.Service().Stats()
		if snap.Failures != 0 {
			b.Fatalf("daemon churn: %d apply failures", snap.Failures)
		}
		if err := d.Close(); err != nil {
			b.Fatal(err)
		}
		sort.Slice(lats, func(x, y int) bool { return lats[x] < lats[y] })
		ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
		p50, p99 = ms(lats[len(lats)/2]), ms(lats[len(lats)*99/100])
		updatesPerSec = float64(len(evs)) / elapsed.Seconds()
		b.StartTimer()
	}
	b.ReportMetric(updatesPerSec, "updates/s")
	b.ReportMetric(p50, "p50-ms")
	b.ReportMetric(p99, "p99-ms")
	b.ReportMetric(0, "ns/op")
	b.Logf("daemon churn: %d events over HTTP, %.0f updates/s, p50 %.2fms p99 %.2fms",
		len(evs), updatesPerSec, p50, p99)
}

// BenchmarkAblationNoImplicationPruning — DESIGN.md §5.1: effect of the
// domain-specific BDD reduction on table entries and compile time.
func BenchmarkAblationNoImplicationPruning(b *testing.B) {
	runExperiment(b, experiments.AblationPruning)
}

// BenchmarkAblationFieldOrder — DESIGN.md §5.2: BDD variable-order
// heuristics.
func BenchmarkAblationFieldOrder(b *testing.B) {
	runExperiment(b, experiments.AblationFieldOrder)
}

// BenchmarkAblationExactMatch — DESIGN.md §5.3: the §V-E TCAM-saving
// optimizations.
func BenchmarkAblationExactMatch(b *testing.B) {
	runExperiment(b, experiments.AblationExactMatch)
}

// BenchmarkNetcheck — the network-wide delivery verifier (DESIGN.md
// §13) over a fat-tree(4) deployment of a mixed 24-subscription
// workload. Each iteration symbolically propagates every packet class
// from every ingress and discharges the black-hole / loop / exact-
// delivery obligations; the classes metric records the per-run class
// count so verifier cost stays attributable.
// BenchmarkFitcheck — the static pipeline-layout analyzer over a
// compiled 2000-rule program: placement, per-dimension verdicts, and
// the per-table headroom search (the dominant cost — one binary search
// of re-placements per table). Guarded in perf-guard via
// perf-baseline.json.
func BenchmarkFitcheck(b *testing.B) {
	p := subscription.NewParser(formats.ITCH)
	syms := workload.DefaultSymbols(500)
	r := rand.New(rand.NewSource(11))
	rules := make([]*subscription.Rule, 0, 2000)
	for i := 0; i < 2000; i++ {
		src := fmt.Sprintf("stock == %s and price > %d: fwd(%d)",
			syms[r.Intn(len(syms))], (r.Intn(20)+1)*100, i%48)
		rule, err := p.ParseRule(src, i)
		if err != nil {
			b.Fatal(err)
		}
		rules = append(rules, rule)
	}
	prog, err := compiler.Compile(formats.ITCH, rules, compiler.Options{LastHop: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var tables int
	for i := 0; i < b.N; i++ {
		l := fitcheck.Analyze(prog, fitcheck.Options{})
		if !l.Fits() {
			b.Fatalf("benchmark program overflows the default budget: %v", l.Findings)
		}
		tables = len(l.Tables)
	}
	b.ReportMetric(float64(tables), "tables")
}

func BenchmarkNetcheck(b *testing.B) {
	net := topology.MustFatTree(4)
	p := subscription.NewParser(formats.ITCH)
	syms := workload.DefaultSymbols(64)
	r := rand.New(rand.NewSource(5))
	subs := make([][]subscription.Expr, len(net.Hosts))
	var flat []netcheck.Subscription
	for i := 0; i < 24; i++ {
		host := r.Intn(len(net.Hosts))
		e, err := p.ParseFilter(fmt.Sprintf("stock == %s and price > %d",
			syms[r.Intn(len(syms))], (r.Intn(9)+1)*100))
		if err != nil {
			b.Fatal(err)
		}
		subs[host] = append(subs[host], e)
		flat = append(flat, netcheck.Subscription{ID: i, Host: host, Expr: e})
	}
	d, err := controller.Deploy(net, formats.ITCH, subs,
		controller.Options{Routing: routing.Options{Policy: routing.TrafficReduction, Alpha: 10}})
	if err != nil {
		b.Fatal(err)
	}
	progs := make([]*prove.Program, len(d.Programs))
	for i, prog := range d.Programs {
		if prog == nil {
			continue
		}
		if progs[i], err = prog.ProveIR(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var classes int
	for i := 0; i < b.N; i++ {
		res, err := netcheck.CheckFatTree(net, formats.ITCH, progs, flat, netcheck.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Ok() {
			b.Fatalf("clean deployment has findings: %+v", res.Findings)
		}
		classes = res.Classes
	}
	b.ReportMetric(float64(classes), "classes")
}

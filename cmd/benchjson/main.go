// Command benchjson converts `go test -bench` output into a
// machine-readable JSON report, so the perf trajectory is diffable
// across PRs, and doubles as the CI perf guard: with -baseline it
// compares the parsed run against a checked-in report and fails on
// allocation regressions.
//
// Report mode (stdin → JSON):
//
//	go test -run '^$' -bench CompileParallel -benchmem . \
//	    | benchjson -filter CompileParallel -out BENCH_compile.json
//
// Guard mode (stdin → exit code):
//
//	go test -run '^$' -bench 'Compile500$|IncrementalAddOne' -benchtime 1x -benchmem ./internal/compiler \
//	    | benchjson -baseline perf-baseline.json -max-ratio 2
//
// The host line TestMain prints ("host: NumCPU=…") is captured into the
// report, keeping single-core caveats attached to the numbers they
// qualify.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric series (Mpps, updates/s, …).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the JSON envelope: host shape plus results.
type Report struct {
	Host       string      `json:"host,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches "BenchmarkName-8   	 5	  123 ns/op	 456 B/op	 7 allocs/op	 8.9 Mpps".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func parse(r *bufio.Scanner, filter *regexp.Regexp) (*Report, error) {
	rep := &Report{}
	for r.Scan() {
		line := r.Text()
		if strings.HasPrefix(line, "host: ") {
			rep.Host = strings.TrimPrefix(line, "host: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		if filter != nil && !filter.MatchString(name) {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: name, Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[unit] = v
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	return rep, r.Err()
}

// guard fails (returns messages) when a benchmark in the baseline ran
// with more than ratio× its baseline allocs/op, or is missing from the
// current run — a silently skipped benchmark must not pass the guard.
// Two stricter rules protect the dataplane fast path: a baseline of 0
// allocs/op is an exact invariant (any allocation at all fails, since
// a ratio can't express "zero stays zero"), and a baseline Mpps metric
// must be held to at least mppsRatio× (throughput regressions don't
// show up as allocations).
func guard(baseline, current *Report, ratio, mppsRatio float64) []string {
	cur := make(map[string]Benchmark, len(current.Benchmarks))
	for _, b := range current.Benchmarks {
		cur[b.Name] = b
	}
	var fails []string
	names := make([]string, 0, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		names = append(names, b.Name)
	}
	sort.Strings(names)
	base := make(map[string]Benchmark, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		base[b.Name] = b
	}
	for _, name := range names {
		bb := base[name]
		cb, ok := cur[name]
		if !ok {
			fails = append(fails, fmt.Sprintf("%s: present in baseline but missing from this run", name))
			continue
		}
		switch {
		case bb.AllocsPerOp == 0 && cb.AllocsPerOp > 0:
			fails = append(fails, fmt.Sprintf("%s: %.0f allocs/op vs zero-alloc baseline",
				name, cb.AllocsPerOp))
		case bb.AllocsPerOp > 0 && cb.AllocsPerOp > ratio*bb.AllocsPerOp:
			fails = append(fails, fmt.Sprintf("%s: %.0f allocs/op vs baseline %.0f (> %.1fx)",
				name, cb.AllocsPerOp, bb.AllocsPerOp, ratio))
		}
		if want := bb.Metrics["Mpps"]; want > 0 {
			if got := cb.Metrics["Mpps"]; got < mppsRatio*want {
				fails = append(fails, fmt.Sprintf("%s: %.2f Mpps vs baseline %.2f (< %.2fx)",
					name, got, want, mppsRatio))
			}
		}
	}
	return fails
}

func main() {
	filterPat := flag.String("filter", "", "only include benchmarks matching this regexp (name without the Benchmark prefix)")
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	baselinePath := flag.String("baseline", "", "guard mode: compare against this baseline report and exit 1 on regression")
	maxRatio := flag.Float64("max-ratio", 2.0, "guard mode: fail when allocs/op exceeds ratio x baseline (a zero-alloc baseline is exact: any alloc fails)")
	minMpps := flag.Float64("min-mpps-ratio", 0.9, "guard mode: fail when a baseline Mpps metric drops below ratio x baseline")
	flag.Parse()

	var filter *regexp.Regexp
	if *filterPat != "" {
		filter = regexp.MustCompile(*filterPat)
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	rep, err := parse(sc, filter)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}

	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		var baseline Report
		if err := json.Unmarshal(data, &baseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parse baseline: %v\n", err)
			os.Exit(2)
		}
		fails := guard(&baseline, rep, *maxRatio, *minMpps)
		for _, f := range fails {
			fmt.Fprintf(os.Stderr, "benchjson: REGRESSION: %s\n", f)
		}
		if len(fails) > 0 {
			os.Exit(1)
		}
		fmt.Printf("benchjson: %d benchmark(s) within %.1fx of baseline allocs/op and %.2fx of baseline Mpps\n",
			len(baseline.Benchmarks), *maxRatio, *minMpps)
		return
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
}

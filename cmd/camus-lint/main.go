// Command camus-lint runs the repo's custom static analyzers (see
// internal/analysis) over Go packages. It is the standalone front-end
// for the four Camus-specific checks:
//
//	camus-snapshot  mutation of StatsSnapshot / Config snapshot values
//	camus-options   direct construction of pipeline.Switch outside the
//	                functional-options API
//	camus-atomic    mixed atomic and plain access to the same field
//	camus-locksend  locks held across channel sends or ProcessBatch
//
// Usage:
//
//	camus-lint [-json] [-no-tests] [packages...]
//
// Packages default to ./... and use go-list syntax. With -json the
// diagnostics are emitted in the shared analysis report envelope
// (internal/analysis/report), the same schema camusc vet and camusc
// prove produce. Exit codes follow the shared contract: 0 clean, 1
// when any diagnostic is reported, 2 on load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"camus/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	noTests := flag.Bool("no-tests", false, "skip _test.go files and test variants")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analysis.Run(analysis.LoadConfig{Tests: !*noTests}, analysis.All(), patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "camus-lint: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		rep := analysis.ToReport(strings.Join(patterns, " "), diags)
		fmt.Println(rep.JSON())
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		fmt.Printf("camus-lint: %d findings\n", len(diags))
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// Command camus-bench regenerates every table and figure of the paper's
// evaluation (§VIII) and prints the series the paper plots.
//
// Usage:
//
//	camus-bench [-full] [-seed N] [-only "Fig. 12"]
//
// Quick mode (default) uses scaled-down workloads suitable for a laptop;
// -full uses the paper's axes (several minutes).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"camus/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run paper-scale workloads (slow)")
	seed := flag.Int64("seed", 1, "workload generator seed")
	only := flag.String("only", "", "run only the experiment whose ID contains this string")
	outPath := flag.String("out", "", "also write the report to a file")
	flag.Parse()

	cfg := experiments.Config{Quick: !*full, Seed: *seed}
	mode := "quick"
	if *full {
		mode = "full (paper-scale)"
	}
	fmt.Printf("camus-bench: reproducing the evaluation of \"Forwarding and Routing with Packet Subscriptions\"\n")
	fmt.Printf("mode: %s, seed: %d\n\n", mode, *seed)

	type entry struct {
		id  string
		run func(experiments.Config) *experiments.Result
	}
	all := []entry{
		{"Fig. 8", experiments.Fig8},
		{"Fig. 9", experiments.Fig9},
		{"Fig. 11", experiments.Fig11},
		{"Fig. 12", experiments.Fig12},
		{"Table I", experiments.Table1},
		{"Fig. 13a-c", experiments.Fig13},
		{"Fig. 13d", experiments.Fig13d},
		{"Fig. 14", experiments.Fig14},
		{"Fig. 15", experiments.Fig15},
		{"Ablation A1", experiments.AblationPruning},
		{"Ablation A2", experiments.AblationFieldOrder},
		{"Ablation A3", experiments.AblationExactMatch},
	}

	var report strings.Builder
	emit := func(format string, args ...interface{}) {
		fmt.Printf(format, args...)
		fmt.Fprintf(&report, format, args...)
	}
	ran := 0
	for _, e := range all {
		if *only != "" && !strings.Contains(strings.ToLower(e.id), strings.ToLower(*only)) {
			continue
		}
		start := time.Now()
		res := e.run(cfg)
		emit("%s", res)
		emit("(%s in %s)\n\n", e.id, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches -only=%q\n", *only)
		os.Exit(1)
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(report.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "camus-bench: write %s: %v\n", *outPath, err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", *outPath)
	}
}

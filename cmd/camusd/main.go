// Command camusd is the long-running multi-tenant control-plane daemon:
// an HTTP+JSON API over the live subscription-churn service, with
// per-tenant quotas and fairness, a durable event log replayed on
// startup, and a Prometheus-text metrics surface.
//
// Usage:
//
//	camusd [-addr :8080] [-k 4] [-policy tr|mr] [-alpha 0]
//	       [-log camusd.log] [-validate-every 16] [-netcheck-every 1]
//	       [-queue 1024] [-max-subs 0] [-rate 0] [-burst 0]
//	       [-no-auto-create] [-covering] [-admission] [-seed 1]
//
// The daemon fronts a simulated fat-tree deployment (internal/netsim):
// every accepted subscription is compiled incrementally and hot-swapped
// onto the simulated switches, exactly as the library service does in
// tests. API:
//
//	PUT    /v1/tenants/{tenant}                 create/re-quota a tenant
//	POST   /v1/tenants/{tenant}/subscriptions   {"host":0,"filters":["stock == GOOGL"]}
//	DELETE /v1/tenants/{tenant}/subscriptions   {"host":0,"ids":[3]}
//	GET    /v1/tenants/{tenant}/snapshot
//	GET    /v1/stats
//	GET    /metrics
//	GET    /healthz
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"camus/camus"
	"camus/internal/formats"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	k := flag.Int("k", 4, "fat-tree arity of the simulated network")
	policyName := flag.String("policy", "tr", "routing policy: tr (traffic) or mr (memory)")
	alpha := flag.Int64("alpha", 0, "discretization unit α (0 = exact)")
	logPath := flag.String("log", "camusd.log", "durable event log path (empty = no durability)")
	validateEvery := flag.Int("validate-every", 16, "translation-validate every Nth batch per switch (0 = off)")
	netcheckEvery := flag.Int("netcheck-every", 1, "network-wide delivery certification at every Nth quiescent point (0 = off)")
	queue := flag.Int("queue", 1024, "max in-flight events before backpressure")
	maxSubs := flag.Int("max-subs", 0, "default per-tenant subscription quota (0 = unlimited)")
	rate := flag.Float64("rate", 0, "default per-tenant events/sec admission rate (0 = unlimited)")
	burst := flag.Int("burst", 0, "default per-tenant admission burst (0 = rate-derived)")
	noAutoCreate := flag.Bool("no-auto-create", false, "refuse unknown tenants instead of creating them on first use")
	covering := flag.Bool("covering", false, "subsumption-aware state reduction: install entries only for covering filters (DESIGN.md §14)")
	admission := flag.Bool("admission", false, "static fit admission: reject subscribes whose predicted entry delta would overflow a switch pipeline (DESIGN.md §15)")
	seed := flag.Int64("seed", 1, "retry-jitter seed")
	flag.Parse()

	policy := camus.TrafficReduction
	switch *policyName {
	case "tr":
	case "mr":
		policy = camus.MemoryReduction
	default:
		fmt.Fprintf(os.Stderr, "camusd: unknown policy %q\n", *policyName)
		os.Exit(2)
	}

	app, err := camus.NewAppFromSpec(formats.ITCH)
	check(err)
	net, err := camus.FatTree(*k)
	check(err)
	// The daemon starts from an empty deployment — the durable log, not
	// the binary, is the source of subscription state.
	empty := make([][]camus.Expr, len(net.Hosts))
	dep, err := app.Deploy(net, empty, camus.DeployOptions{Policy: policy, Alpha: *alpha})
	check(err)
	sim, err := camus.Simulate(dep)
	check(err)

	svcOpts := []camus.ControlPlaneOption{
		camus.WithPolicy(policy, *alpha),
		camus.WithInstallers(sim.Installers()...),
		camus.WithQueueDepth(*queue),
		camus.WithSeed(*seed),
	}
	if *validateEvery > 0 {
		svcOpts = append(svcOpts, camus.WithValidator(camus.ProveValidator(net, 0), *validateEvery))
	}
	if *netcheckEvery > 0 {
		svcOpts = append(svcOpts,
			camus.WithNetValidator(camus.NetcheckValidator(net, formats.ITCH, 0), *netcheckEvery))
	}
	if *covering {
		svcOpts = append(svcOpts, camus.WithCovering(0))
	}
	if *admission {
		svcOpts = append(svcOpts, camus.WithAdmission(camus.NewFitModel()))
	}
	tenantOpts := []camus.TenantOption{
		camus.WithDefaultQuota(camus.TenantQuota{
			MaxSubscriptions: *maxSubs, EventsPerSec: *rate, Burst: *burst,
		}),
	}
	if !*noAutoCreate {
		tenantOpts = append(tenantOpts, camus.WithAutoCreate())
	}
	daemonOpts := []camus.DaemonOption{
		camus.WithDaemonService(svcOpts...),
		camus.WithDaemonTenancy(tenantOpts...),
	}
	if *logPath != "" {
		daemonOpts = append(daemonOpts, camus.WithDaemonEventLog(*logPath))
	}

	d, err := camus.NewDaemon(net, app.Spec, daemonOpts...)
	check(err)
	fmt.Printf("camusd: k=%d fat tree — %d switches, %d hosts, policy %s α=%d\n",
		*k, len(net.Switches), len(net.Hosts), policy, *alpha)
	if *logPath != "" {
		fmt.Printf("camusd: event log %s — replayed %d records (log seq %d)\n",
			*logPath, d.Replayed(), d.Log().Seq())
	}

	bound, err := d.Start(*addr)
	check(err)
	fmt.Printf("camusd: serving on %s\n", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("camusd: shutting down")
	check(d.Close())
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "camusd: %v\n", err)
		os.Exit(1)
	}
}

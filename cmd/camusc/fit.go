package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"camus/internal/analysis/fitcheck"
	"camus/internal/analysis/report"
	"camus/internal/compiler"
	"camus/internal/spec"
	"camus/internal/subscription"
)

// runFit implements `camusc fit`: the static pipeline-layout analyzer.
// The rules are compiled exactly as for `camusc compile` and the
// resulting program is packed into the modeled pipeline
// (internal/analysis/fitcheck); the per-dimension verdict comes back as
// report.Findings under the usual 0/1/2 exit contract, with a per-stage
// utilization table in the human-readable output.
//
// -last-hop defaults to true: the last-hop compilation carries the
// stateful (aggregate) stages, so it is the largest placement the rules
// can demand anywhere in the network — the conservative fit question.
func runFit(args []string, stdout, stderr interface{ Write([]byte) (int, error) }) int {
	fs := flag.NewFlagSet("camusc fit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	specPath := fs.String("spec", "", "message format specification file (required)")
	rulesPath := fs.String("rules", "", "subscription rules file (required)")
	jsonOut := fs.Bool("json", false, "emit the report as JSON (layout + findings)")
	lastHop := fs.Bool("last-hop", true, "compile for a last-hop switch (largest placement; aggregates realized)")
	stages := fs.Int("stages", 0, "override the per-pass stage count (0 = modeled default)")
	recirc := fs.Int("recirc", -1, "override the recirculation-pass budget (-1 = modeled default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *specPath == "" || *rulesPath == "" {
		fmt.Fprintln(stderr, "usage: camusc fit -spec <file> -rules <file> [-json] [-last-hop=false] [-stages n] [-recirc n]")
		return 2
	}
	specSrc, err := os.ReadFile(*specPath)
	if err != nil {
		fmt.Fprintf(stderr, "camusc fit: %v\n", err)
		return 2
	}
	sp, err := spec.Parse(baseName(*specPath), string(specSrc))
	if err != nil {
		fmt.Fprintf(stderr, "camusc fit: parse spec: %v\n", err)
		return 2
	}
	rulesSrc, err := os.ReadFile(*rulesPath)
	if err != nil {
		fmt.Fprintf(stderr, "camusc fit: %v\n", err)
		return 2
	}
	rules, err := subscription.NewParser(sp).ParseRules(string(rulesSrc))
	if err != nil {
		fmt.Fprintf(stderr, "camusc fit: parse rules: %v\n", err)
		return 2
	}
	prog, err := compiler.Compile(sp, rules, compiler.Options{LastHop: *lastHop})
	if err != nil {
		fmt.Fprintf(stderr, "camusc fit: compile: %v\n", err)
		return 2
	}
	file := baseName(*rulesPath) + ".rules"

	budget := fitcheck.DefaultBudget()
	if *stages > 0 {
		budget.Stages = *stages
	}
	if *recirc >= 0 {
		budget.RecircPasses = *recirc
	}
	l := fitcheck.Analyze(prog, fitcheck.Options{Budget: budget, File: file})

	if *jsonOut {
		rep := struct {
			Tool     string           `json:"tool"`
			File     string           `json:"file"`
			Rules    int              `json:"rules"`
			Findings []report.Finding `json:"findings"`
			Layout   *fitcheck.Layout `json:"layout"`
		}{fitcheck.Tool, file, len(rules), l.Findings, l}
		if rep.Findings == nil {
			rep.Findings = []report.Finding{}
		}
		out, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "camusc fit: encode report: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "%s\n", out)
	} else {
		rep := report.Report{Tool: fitcheck.Tool, File: file, Rules: len(rules), Findings: l.Findings}
		fmt.Fprint(stdout, rep.String())
		fmt.Fprintf(stdout, "  placement: %d tables in %d stage slots, %d pass(es)\n",
			len(l.Tables), len(l.Stages), l.Passes)
		for i, s := range l.Stages {
			fmt.Fprintf(stdout, "  stage %2d (pass %d): sram %6.2f%%  tcam %6.2f%%  %v\n",
				i%budget.Stages, s.Pass, s.SRAMPct, s.TCAMPct, s.Tables)
		}
		for _, tf := range l.Tables {
			fmt.Fprintf(stdout, "  table %-20s %-10s entries=%-6d headroom=%d\n",
				tf.Name, tf.Kind, tf.Cost.Entries, tf.Headroom)
		}
		if len(l.Findings) == 0 {
			fmt.Fprintf(stdout, "  fit certificate: placement fits %d stages × %d pass(es); min headroom %d entries; peak stage sram %.2f%%\n",
				budget.Stages, l.Passes, l.MinHeadroom(), l.MaxStageSRAMPct())
		}
	}
	if len(l.Findings) > 0 {
		return 1
	}
	return 0
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestProveCleanExamples certifies the shipped sample rules: the
// translation validator must prove the compiled program equivalent, in
// both last-hop and upstream modes.
func TestProveCleanExamples(t *testing.T) {
	for _, lastHop := range []string{"-last-hop=true", "-last-hop=false"} {
		var out, errb bytes.Buffer
		code := runProve([]string{
			"-spec", filepath.Join("testdata", "itch.spec"),
			"-rules", filepath.Join("testdata", "itch.rules"),
			lastHop,
		}, &out, &errb)
		if code != 0 {
			t.Fatalf("%s: exit code = %d, want 0; stderr: %s\nstdout: %s",
				lastHop, code, errb.String(), out.String())
		}
		if !strings.Contains(out.String(), "proof complete") {
			t.Errorf("%s: expected a completed proof, got: %s", lastHop, out.String())
		}
	}
}

// TestProveParallelCompile certifies the shipped sample rules through
// the parallel compile path: the program handed to the independent
// prover is the worker-pool compiler's output, so a clean proof is the
// translation validator's sign-off on the parallel pipeline.
func TestProveParallelCompile(t *testing.T) {
	for _, w := range []string{"1", "4", "8"} {
		var out, errb bytes.Buffer
		code := runProve([]string{
			"-spec", filepath.Join("testdata", "itch.spec"),
			"-rules", filepath.Join("testdata", "itch.rules"),
			"-parallelism", w,
		}, &out, &errb)
		if code != 0 {
			t.Fatalf("parallelism=%s: exit code = %d, want 0; stderr: %s\nstdout: %s",
				w, code, errb.String(), out.String())
		}
		if !strings.Contains(out.String(), "proof complete") {
			t.Errorf("parallelism=%s: expected a completed proof, got: %s", w, out.String())
		}
	}
}

// TestProveParseRecovery: bad lines become findings, surviving rules
// still get proved, and the envelope carries the prove tool name.
func TestProveParseRecovery(t *testing.T) {
	dir := t.TempDir()
	rules := filepath.Join(dir, "mixed.rules")
	src := "stock == GOOGL: fwd(1)\nnosuchfield == 1: fwd(2)\n"
	if err := os.WriteFile(rules, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := runProve([]string{
		"-spec", filepath.Join("testdata", "itch.spec"),
		"-rules", rules,
		"-json",
	}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errb.String())
	}
	var rep struct {
		Tool     string `json:"tool"`
		Findings []struct {
			Tool string `json:"tool"`
			Kind string `json:"kind"`
			Line int    `json:"line"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if rep.Tool != "camusc-prove" {
		t.Errorf("tool = %q, want camusc-prove", rep.Tool)
	}
	found := false
	for _, f := range rep.Findings {
		if f.Kind == "unknown-field" && f.Line == 2 && f.Tool == "camusc-prove" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing unknown-field finding at line 2: %s", out.String())
	}
}

// TestProveUsageErrors checks the exit-code contract's infrastructure
// band.
func TestProveUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := runProve(nil, &out, &errb); code != 2 {
		t.Errorf("missing flags: exit = %d, want 2", code)
	}
	errb.Reset()
	if code := runProve([]string{"-spec", "nope.spec", "-rules", "nope.rules"}, &out, &errb); code != 2 {
		t.Errorf("missing files: exit = %d, want 2", code)
	}
}

// Command camusc is the Camus subscription compiler CLI: it takes an
// application message-format spec (the paper's Fig. 4 DSL) and a rule
// file, and emits the compiled pipeline tables (Fig. 6), the multicast
// groups, the resource estimate, and optionally the BDD in Graphviz
// form.
//
// Usage:
//
//	camusc -spec itch.spec -rules feeds.rules [-dot out.dot] [-last-hop]
package main

import (
	"flag"
	"fmt"
	"os"

	"camus/internal/bdd"
	"camus/internal/compiler"
	"camus/internal/spec"
	"camus/internal/subscription"
)

func main() {
	specPath := flag.String("spec", "", "message format specification file (required)")
	rulesPath := flag.String("rules", "", "subscription rules file (required)")
	dotPath := flag.String("dot", "", "write the rule BDD in Graphviz format")
	lastHop := flag.Bool("last-hop", false, "compile as a last-hop switch (stateful predicates active)")
	noPrune := flag.Bool("no-prune", false, "disable domain-specific BDD pruning (ablation)")
	quiet := flag.Bool("q", false, "print only the resource summary")
	flag.Parse()

	if *specPath == "" || *rulesPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	specSrc, err := os.ReadFile(*specPath)
	check("read spec", err)
	sp, err := spec.Parse(baseName(*specPath), string(specSrc))
	check("parse spec", err)

	rulesSrc, err := os.ReadFile(*rulesPath)
	check("read rules", err)
	rules, err := subscription.NewParser(sp).ParseRules(string(rulesSrc))
	check("parse rules", err)

	opts := compiler.Options{
		LastHop: *lastHop,
		BDD:     bdd.Options{DisablePruning: *noPrune},
	}
	prog, err := compiler.Compile(sp, rules, opts)
	check("compile", err)

	if !*quiet {
		fmt.Print(prog)
		fmt.Println()
	}
	fmt.Printf("rules: %d, %s\n", len(rules), prog.Resources)
	if !prog.Resources.Fits() {
		fmt.Fprintln(os.Stderr, "warning: program exceeds the modeled switch resources")
	}
	if *dotPath != "" {
		check("write dot", os.WriteFile(*dotPath, []byte(prog.BDD.Dot()), 0o644))
		fmt.Printf("BDD written to %s\n", *dotPath)
	}
}

func check(what string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "camusc: %s: %v\n", what, err)
		os.Exit(1)
	}
}

func baseName(path string) string {
	base := path
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			base = path[i+1:]
			break
		}
	}
	for i := 0; i < len(base); i++ {
		if base[i] == '.' {
			return base[:i]
		}
	}
	return base
}

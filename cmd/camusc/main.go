// Command camusc is the Camus subscription compiler CLI: it takes an
// application message-format spec (the paper's Fig. 4 DSL) and a rule
// file, and emits the compiled pipeline tables (Fig. 6), the multicast
// groups, the resource estimate, and optionally the BDD in Graphviz
// form.
//
// Usage:
//
//	camusc -spec itch.spec -rules feeds.rules [-dot out.dot] [-last-hop]
//	camusc vet -spec itch.spec -rules feeds.rules [-json]
//	camusc prove -spec itch.spec -rules feeds.rules [-json] [-last-hop=false]
//	camusc netcheck -spec itch.spec -rules feeds.rules [-json] [-topo fattree|mstpp]
//	camusc fit -spec itch.spec -rules feeds.rules [-json] [-last-hop=false]
//
// The vet subcommand runs the rule-program verifier instead of the
// compiler: it reports unsatisfiable filters, fully shadowed rules,
// contradictory actions on overlapping filters, and references to
// fields absent from the message spec.
//
// The prove subcommand is the translation validator: it compiles the
// rules and then certifies — with a second implementation that shares
// nothing with the BDD compilation path — that the emitted tables
// forward exactly the packets the rules subscribe to. Divergences are
// reported with concrete counterexample packets replayed through the
// dataplane.
//
// The netcheck subcommand is the network-wide verifier: the rule
// filters become host subscriptions over a deployed topology and every
// packet class is symbolically propagated from every ingress, proving
// the delivery-set invariants (no black holes, no loops, exact
// delivery) end-to-end. See internal/analysis/netcheck.
//
// The fit subcommand is the static pipeline-layout analyzer: it packs
// the compiled tables into the modeled match-action pipeline under
// per-stage SRAM/TCAM/key-width budgets (with recirculation passes
// when one pipe is not enough) and reports the per-dimension fit
// verdict, the per-stage utilization, and each table's remaining entry
// headroom. See internal/analysis/fitcheck.
//
// All subcommands share one exit-code contract (see
// internal/analysis/report): 0 clean, 1 when any finding is reported,
// 2 on usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"camus/internal/analysis/rulecheck"
	"camus/internal/bdd"
	"camus/internal/compiler"
	"camus/internal/spec"
	"camus/internal/subscription"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "vet" {
		os.Exit(runVet(os.Args[2:], os.Stdout, os.Stderr))
	}
	if len(os.Args) > 1 && os.Args[1] == "prove" {
		os.Exit(runProve(os.Args[2:], os.Stdout, os.Stderr))
	}
	if len(os.Args) > 1 && os.Args[1] == "netcheck" {
		os.Exit(runNetcheck(os.Args[2:], os.Stdout, os.Stderr))
	}
	if len(os.Args) > 1 && os.Args[1] == "fit" {
		os.Exit(runFit(os.Args[2:], os.Stdout, os.Stderr))
	}
	runCompile()
}

func runCompile() {
	specPath := flag.String("spec", "", "message format specification file (required)")
	rulesPath := flag.String("rules", "", "subscription rules file (required)")
	dotPath := flag.String("dot", "", "write the rule BDD in Graphviz format")
	lastHop := flag.Bool("last-hop", false, "compile as a last-hop switch (stateful predicates active)")
	noPrune := flag.Bool("no-prune", false, "disable domain-specific BDD pruning (ablation)")
	parallelism := flag.Int("parallelism", 0, "compile worker count (0 = GOMAXPROCS); output is identical for every value")
	quiet := flag.Bool("q", false, "print only the resource summary")
	flag.Parse()

	if *specPath == "" || *rulesPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	specSrc, err := os.ReadFile(*specPath)
	check("read spec", err)
	sp, err := spec.Parse(baseName(*specPath), string(specSrc))
	check("parse spec", err)

	rulesSrc, err := os.ReadFile(*rulesPath)
	check("read rules", err)
	rules, err := subscription.NewParser(sp).ParseRules(string(rulesSrc))
	check("parse rules", err)

	opts := compiler.Options{
		LastHop:     *lastHop,
		BDD:         bdd.Options{DisablePruning: *noPrune},
		Parallelism: *parallelism,
	}
	prog, err := compiler.Compile(sp, rules, opts)
	check("compile", err)

	if !*quiet {
		fmt.Print(prog)
		fmt.Println()
	}
	fmt.Printf("rules: %d, %s\n", len(rules), prog.Resources)
	if !prog.Resources.Fits() {
		fmt.Fprintln(os.Stderr, "warning: program exceeds the modeled switch resources")
	}
	if *dotPath != "" {
		check("write dot", os.WriteFile(*dotPath, []byte(prog.BDD.Dot()), 0o644))
		fmt.Printf("BDD written to %s\n", *dotPath)
	}
}

// runVet implements `camusc vet`. It is factored over explicit writers
// and an exit code so tests can drive it without spawning a process.
func runVet(args []string, stdout, stderr interface{ Write([]byte) (int, error) }) int {
	fs := flag.NewFlagSet("camusc vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	specPath := fs.String("spec", "", "message format specification file (required)")
	rulesPath := fs.String("rules", "", "subscription rules file (required)")
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *specPath == "" || *rulesPath == "" {
		fmt.Fprintln(stderr, "usage: camusc vet -spec <file> -rules <file> [-json]")
		return 2
	}
	specSrc, err := os.ReadFile(*specPath)
	if err != nil {
		fmt.Fprintf(stderr, "camusc vet: %v\n", err)
		return 2
	}
	sp, err := spec.Parse(baseName(*specPath), string(specSrc))
	if err != nil {
		fmt.Fprintf(stderr, "camusc vet: parse spec: %v\n", err)
		return 2
	}
	rulesSrc, err := os.ReadFile(*rulesPath)
	if err != nil {
		fmt.Fprintf(stderr, "camusc vet: %v\n", err)
		return 2
	}
	rep := rulecheck.Verify(sp, baseName(*rulesPath)+".rules", string(rulesSrc))
	if *jsonOut {
		fmt.Fprintln(stdout, rep.JSON())
	} else {
		fmt.Fprint(stdout, rep.String())
	}
	if len(rep.Findings) > 0 {
		return 1
	}
	return 0
}

func check(what string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "camusc: %s: %v\n", what, err)
		os.Exit(1)
	}
}

func baseName(path string) string {
	base := path
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			base = path[i+1:]
			break
		}
	}
	for i := 0; i < len(base); i++ {
		if base[i] == '.' {
			return base[:i]
		}
	}
	return base
}

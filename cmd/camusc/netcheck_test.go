package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// TestNetcheckCleanExamples is the acceptance gate: the shipped rule
// files certify clean on both the fat tree (both policies) and a
// general MST++ topology, with and without α-approximation.
func TestNetcheckCleanExamples(t *testing.T) {
	cases := [][]string{
		{"-rules", filepath.Join("testdata", "itch.rules"), "-topo", "fattree", "-policy", "tr"},
		{"-rules", filepath.Join("testdata", "itch.rules"), "-topo", "fattree", "-policy", "mr", "-alpha", "10"},
		{"-rules", filepath.Join("testdata", "itch.rules"), "-topo", "mstpp", "-nodes", "24", "-alpha", "100"},
		{"-rules", filepath.Join("testdata", "itchfeed.rules"), "-topo", "fattree", "-policy", "tr"},
		{"-rules", filepath.Join("testdata", "itchfeed.rules"), "-topo", "mstpp", "-nodes", "20"},
		// Covering mode: the reduced tables must carry the same
		// certificate against the full subscription set.
		{"-rules", filepath.Join("testdata", "itch.rules"), "-topo", "fattree", "-policy", "tr", "-covering"},
		{"-rules", filepath.Join("testdata", "itch.rules"), "-topo", "mstpp", "-nodes", "24", "-covering"},
	}
	for _, tc := range cases {
		t.Run(strings.Join(tc[1:], "_"), func(t *testing.T) {
			var out, errb bytes.Buffer
			args := append([]string{"-spec", filepath.Join("testdata", "itch.spec")}, tc...)
			code := runNetcheck(args, &out, &errb)
			if code != 0 {
				t.Fatalf("exit code = %d, want 0; stderr: %s\nstdout: %s",
					code, errb.String(), out.String())
			}
			if !strings.Contains(out.String(), "network certificate complete") {
				t.Errorf("expected a complete certificate, got: %s", out.String())
			}
			covering := false
			for _, a := range tc {
				if a == "-covering" {
					covering = true
				}
			}
			if covering && !strings.Contains(out.String(), "covering reduction:") {
				t.Errorf("expected a covering reduction line, got: %s", out.String())
			}
		})
	}
}

// TestNetcheckJSON checks the machine-readable envelope and the 0 exit
// code on a clean run.
func TestNetcheckJSON(t *testing.T) {
	var out, errb bytes.Buffer
	code := runNetcheck([]string{
		"-spec", filepath.Join("testdata", "itch.spec"),
		"-rules", filepath.Join("testdata", "itch.rules"),
		"-json",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d; stderr: %s", code, errb.String())
	}
	var rep struct {
		Tool     string `json:"tool"`
		Rules    int    `json:"rules"`
		Findings []any  `json:"findings"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if rep.Tool != "camusc-netcheck" {
		t.Errorf("tool = %q", rep.Tool)
	}
	if rep.Rules != 5 {
		t.Errorf("rules = %d, want 5", rep.Rules)
	}
	if len(rep.Findings) != 0 {
		t.Errorf("findings = %v", rep.Findings)
	}
}

// TestNetcheckUsageErrors checks the exit-2 contract.
func TestNetcheckUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := runNetcheck(nil, &out, &errb); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := runNetcheck([]string{
		"-spec", filepath.Join("testdata", "itch.spec"),
		"-rules", filepath.Join("testdata", "itch.rules"),
		"-topo", "torus",
	}, &out, &errb); code != 2 {
		t.Errorf("bad topo: exit %d, want 2", code)
	}
}

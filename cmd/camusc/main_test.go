package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"camus/internal/bdd"
	"camus/internal/compiler"
	"camus/internal/spec"
	"camus/internal/subscription"
)

// TestCompileTestdata exercises the camusc pipeline on the shipped
// sample files end to end (read → parse spec → parse rules → compile →
// render), mirroring main().
func TestCompileTestdata(t *testing.T) {
	specSrc, err := os.ReadFile(filepath.Join("testdata", "itch.spec"))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := spec.Parse("itch", string(specSrc))
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	rulesSrc, err := os.ReadFile(filepath.Join("testdata", "itch.rules"))
	if err != nil {
		t.Fatal(err)
	}
	rules, err := subscription.NewParser(sp).ParseRules(string(rulesSrc))
	if err != nil {
		t.Fatalf("rules: %v", err)
	}
	if len(rules) != 5 {
		t.Fatalf("rules = %d, want 5", len(rules))
	}
	for _, lastHop := range []bool{false, true} {
		prog, err := compiler.Compile(sp, rules, compiler.Options{
			LastHop: lastHop,
			BDD:     bdd.Options{},
		})
		if err != nil {
			t.Fatalf("compile(lastHop=%v): %v", lastHop, err)
		}
		out := prog.String()
		for _, want := range []string{"table", "Leaf", "fwd(1"} {
			if !strings.Contains(out, want) {
				t.Errorf("output missing %q", want)
			}
		}
		if !prog.Resources.Fits() {
			t.Errorf("sample program does not fit: %s", prog.Resources)
		}
		dot := prog.BDD.Dot()
		if !strings.Contains(dot, "digraph") {
			t.Error("dot output broken")
		}
		wantRegs := 0
		if lastHop {
			wantRegs = 1
		}
		if prog.Resources.Registers != wantRegs {
			t.Errorf("lastHop=%v: registers = %d, want %d", lastHop, prog.Resources.Registers, wantRegs)
		}
	}
}

func TestBaseName(t *testing.T) {
	cases := map[string]string{
		"itch.spec":             "itch",
		"/a/b/itch.spec":        "itch",
		"noext":                 "noext",
		"/deep/path/x.y.z":      "x",
		"rel/path/market.rules": "market",
	}
	for in, want := range cases {
		if got := baseName(in); got != want {
			t.Errorf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}

package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	"camus/internal/analysis/netcheck"
	"camus/internal/analysis/prove"
	"camus/internal/analysis/replay"
	"camus/internal/compiler"
	"camus/internal/controller"
	"camus/internal/routing"
	"camus/internal/routing/cover"
	"camus/internal/spec"
	"camus/internal/subscription"
	"camus/internal/topology"
	"camus/internal/workload"
)

// runNetcheck implements `camusc netcheck`: the network-wide delivery
// verifier. The rule file's filters become host subscriptions (assigned
// round-robin over the topology's hosts; the rules' fwd() ports are
// placement input for single-switch compilation and are ignored here —
// the routing policy computes the real ports). The deployment is then
// built exactly like the controller builds it, and every packet class
// is propagated symbolically from every ingress.
//
// -topo fattree verifies a k-ary fat tree (the paper's §IV-C data
// center placement, both MR and TR policies); -topo mstpp verifies a
// random AS-like general topology routed over the MST++ spanning tree
// (§IV-E). Fat-tree counterexamples are additionally replayed through
// netsim, filling the report's packet hex and confirmed flag.
func runNetcheck(args []string, stdout, stderr interface{ Write([]byte) (int, error) }) int {
	fs := flag.NewFlagSet("camusc netcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	specPath := fs.String("spec", "", "message format specification file (required)")
	rulesPath := fs.String("rules", "", "subscription rules file (required)")
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	topo := fs.String("topo", "fattree", "topology: fattree | mstpp")
	k := fs.Int("k", 4, "fat-tree arity (fattree)")
	nodes := fs.Int("nodes", 30, "graph size (mstpp)")
	edges := fs.Int("edges", 0, "graph edge target (mstpp, 0 = 2×nodes)")
	seed := fs.Int64("seed", 1, "graph generator seed (mstpp)")
	policy := fs.String("policy", "tr", "routing policy: tr | mr (fattree)")
	alpha := fs.Int64("alpha", 0, "α-discretization unit (0 disables approximation)")
	maxPaths := fs.Int("max-paths", 0, "per-switch symbolic path budget (0 = default)")
	covering := fs.Bool("covering", false, "apply the subsumption covering reduction (internal/routing/cover) before compiling, then certify the reduced tables against the full subscription set")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *specPath == "" || *rulesPath == "" {
		fmt.Fprintln(stderr, "usage: camusc netcheck -spec <file> -rules <file> [-json] [-topo fattree|mstpp]")
		return 2
	}
	specSrc, err := os.ReadFile(*specPath)
	if err != nil {
		fmt.Fprintf(stderr, "camusc netcheck: %v\n", err)
		return 2
	}
	sp, err := spec.Parse(baseName(*specPath), string(specSrc))
	if err != nil {
		fmt.Fprintf(stderr, "camusc netcheck: parse spec: %v\n", err)
		return 2
	}
	rulesSrc, err := os.ReadFile(*rulesPath)
	if err != nil {
		fmt.Fprintf(stderr, "camusc netcheck: %v\n", err)
		return 2
	}
	rules, err := subscription.NewParser(sp).ParseRules(string(rulesSrc))
	if err != nil {
		fmt.Fprintf(stderr, "camusc netcheck: parse rules: %v\n", err)
		return 2
	}
	if len(rules) == 0 {
		fmt.Fprintln(stderr, "camusc netcheck: no rules")
		return 2
	}
	file := baseName(*rulesPath) + ".rules"

	var res *netcheck.Result
	var outcomes map[int]*replay.NetOutcome
	var st *cover.ReduceStats
	switch *topo {
	case "fattree":
		res, outcomes, st, err = netcheckFatTree(sp, rules, *k, *policy, *alpha, *maxPaths, *covering, stderr)
	case "mstpp":
		res, st, err = netcheckTree(sp, rules, *nodes, *edges, *seed, *alpha, *maxPaths, *covering)
	default:
		fmt.Fprintf(stderr, "camusc netcheck: unknown topology %q\n", *topo)
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "camusc netcheck: %v\n", err)
		return 2
	}

	rep := res.Report(file)
	rep.Rules = len(rules)
	for i, out := range outcomes {
		if rep.Findings[i].Counterexample == nil {
			continue
		}
		rep.Findings[i].Counterexample.Packet = hex.EncodeToString(out.Wire)
		rep.Findings[i].Counterexample.Confirmed = out.Confirmed
	}
	if *jsonOut {
		fmt.Fprintln(stdout, rep.JSON())
	} else {
		fmt.Fprint(stdout, rep.String())
		if st != nil {
			fmt.Fprintf(stdout, "  covering reduction: %d → %d port entries (%d elided, %.2f× smaller)\n",
				st.Before, st.After, st.Removed(), st.Ratio())
		}
		if len(rep.Findings) == 0 {
			status := "complete"
			if res.Overflowed {
				status = "PARTIAL (budget exhausted)"
			}
			fmt.Fprintf(stdout, "  network certificate %s: %d packet classes propagated, delivery exact, loop-free\n", status, res.Classes)
		}
	}
	if len(rep.Findings) > 0 {
		return 1
	}
	return 0
}

// spreadRules assigns the rule filters round-robin over n hosts/nodes.
func spreadRules(rules []*subscription.Rule, n int) ([]netcheck.Subscription, [][]subscription.Expr, map[int][]subscription.Expr) {
	var subs []netcheck.Subscription
	byHost := make([][]subscription.Expr, n)
	byNode := make(map[int][]subscription.Expr)
	for i, r := range rules {
		h := i % n
		subs = append(subs, netcheck.Subscription{ID: r.ID, Host: h, Expr: r.Filter})
		byHost[h] = append(byHost[h], r.Filter)
		byNode[h] = append(byNode[h], r.Filter)
	}
	return subs, byHost, byNode
}

func netcheckFatTree(sp *spec.Spec, rules []*subscription.Rule, k int, policy string, alpha int64,
	maxPaths int, covering bool, stderr interface{ Write([]byte) (int, error) }) (*netcheck.Result, map[int]*replay.NetOutcome, *cover.ReduceStats, error) {
	net, err := topology.FatTree(k)
	if err != nil {
		return nil, nil, nil, err
	}
	pol := routing.TrafficReduction
	if policy == "mr" {
		pol = routing.MemoryReduction
	}
	subs, byHost, _ := spreadRules(rules, len(net.Hosts))
	var d *controller.Deployment
	var st *cover.ReduceStats
	if covering {
		d, st, err = coveringDeploy(net, sp, byHost, routing.Options{Policy: pol, Alpha: alpha})
	} else {
		d, err = controller.Deploy(net, sp, byHost, controller.Options{
			Routing: routing.Options{Policy: pol, Alpha: alpha},
		})
	}
	if err != nil {
		return nil, nil, nil, err
	}
	irs := make([]*prove.Program, len(d.Programs))
	for i, p := range d.Programs {
		if p == nil {
			continue
		}
		if irs[i], err = p.ProveIR(); err != nil {
			return nil, nil, nil, fmt.Errorf("export IR for switch %d: %w", i, err)
		}
	}
	res, err := netcheck.CheckFatTree(net, sp, irs, subs, netcheck.Options{MaxPaths: maxPaths})
	if err != nil {
		return nil, nil, nil, err
	}
	// Replay stateless witnesses through the simulated dataplane so the
	// report carries dataplane-confirmed packets.
	outcomes := make(map[int]*replay.NetOutcome)
	for i := range res.Findings {
		f := &res.Findings[i]
		if f.Cex == nil || !f.Cex.Stateless() || f.Ingress < 0 {
			continue
		}
		out, rerr := replay.ConfirmNet(d, subs, f.Cex, f.Ingress, 0)
		if rerr != nil {
			fmt.Fprintf(stderr, "camusc netcheck: replay: %v\n", rerr)
			continue
		}
		outcomes[i] = out
	}
	return res, outcomes, st, nil
}

// coveringDeploy builds the fat-tree deployment the way a
// covering-enabled controller would: compute routing, elide every port
// entry implied by a broader filter on the same port
// (cover.ReduceResult — the batch equivalent of the control plane's
// subsumption forests), then compile the reduced tables with the
// controller's last-hop semantics on host-facing ports.
func coveringDeploy(net *topology.Network, sp *spec.Spec, byHost [][]subscription.Expr,
	ropts routing.Options) (*controller.Deployment, *cover.ReduceStats, error) {
	res, err := routing.ComputeFatTree(net, byHost, ropts)
	if err != nil {
		return nil, nil, err
	}
	st := cover.ReduceResult(cover.NewImplier(sp, 0), res)
	static, err := compiler.GenerateStatic(sp, compiler.StaticOptions{})
	if err != nil {
		return nil, nil, err
	}
	d := &controller.Deployment{
		Network: net, Spec: sp, Routing: res, Static: static,
		Programs: make([]*compiler.Program, len(net.Switches)),
	}
	for _, s := range net.Switches {
		copts := compiler.Options{}
		ports := s.Ports
		copts.LastHopPort = func(port int) bool {
			return port >= 0 && port < len(ports) && ports[port].Kind == topology.PeerHost
		}
		if d.Programs[s.ID], err = compiler.Compile(sp, res.RulesForSwitch(s.ID), copts); err != nil {
			return nil, nil, fmt.Errorf("compile switch %d: %w", s.ID, err)
		}
	}
	return d, &st, nil
}

func netcheckTree(sp *spec.Spec, rules []*subscription.Rule, nodes, edges int, seed, alpha int64,
	maxPaths int, covering bool) (*netcheck.Result, *cover.ReduceStats, error) {
	if edges <= 0 {
		edges = 2 * nodes
	}
	g := workload.ASGraph(workload.ASGraphConfig{Nodes: nodes, Edges: edges, Seed: seed})
	mst, err := topology.PrimMST(g, 0, topology.DegreeProductWeight(g))
	if err != nil {
		return nil, nil, err
	}
	_, _, byNode := spreadRules(rules, g.N)
	tr, err := routing.ComputeTree(mst, byNode, alpha)
	if err != nil {
		return nil, nil, err
	}
	var st *cover.ReduceStats
	if covering {
		s := cover.ReduceTree(cover.NewImplier(sp, 0), tr)
		st = &s
	}
	progs := make([]*prove.Program, g.N)
	for v := 0; v < g.N; v++ {
		prog, err := compiler.Compile(sp, tr.RulesForNode(v), compiler.Options{})
		if err != nil {
			return nil, nil, fmt.Errorf("compile node %d: %w", v, err)
		}
		if progs[v], err = prog.ProveIR(); err != nil {
			return nil, nil, fmt.Errorf("export IR for node %d: %w", v, err)
		}
	}
	res, err := netcheck.CheckTree(tr, sp, progs, netcheck.TreeSubscriptions(tr), netcheck.Options{
		MaxPaths: maxPaths, Alpha: alpha,
	})
	return res, st, err
}

package main

import (
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"camus/internal/analysis/prove"
	"camus/internal/analysis/replay"
	"camus/internal/analysis/rulecheck"
	"camus/internal/compiler"
	"camus/internal/spec"
	"camus/internal/subscription"
)

// runProve implements `camusc prove`: compile the rule file, export the
// program into the prover's bdd-free IR, and certify it equivalent to
// the rules. Any divergence is reported with a concrete counterexample
// packet; stateless counterexamples are additionally serialized and
// replayed through pipeline.Switch, filling the envelope's packet hex
// and confirmed flag.
//
// Like the compiler (and unlike the control plane's per-switch
// reconciler), the CLI defaults to last-hop semantics so the stateful
// path of a rule file is certified; -last-hop=false proves the
// upstream (superset-forwarding) program instead.
func runProve(args []string, stdout, stderr interface{ Write([]byte) (int, error) }) int {
	fs := flag.NewFlagSet("camusc prove", flag.ContinueOnError)
	fs.SetOutput(stderr)
	specPath := fs.String("spec", "", "message format specification file (required)")
	rulesPath := fs.String("rules", "", "subscription rules file (required)")
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	lastHop := fs.Bool("last-hop", true, "prove the last-hop (stateful) program")
	maxPaths := fs.Int("max-paths", 0, "symbolic path budget (0 = default)")
	parallelism := fs.Int("parallelism", 0, "compile worker count (0 = GOMAXPROCS); the certified program is identical for every value")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *specPath == "" || *rulesPath == "" {
		fmt.Fprintln(stderr, "usage: camusc prove -spec <file> -rules <file> [-json] [-last-hop=false]")
		return 2
	}
	specSrc, err := os.ReadFile(*specPath)
	if err != nil {
		fmt.Fprintf(stderr, "camusc prove: %v\n", err)
		return 2
	}
	sp, err := spec.Parse(baseName(*specPath), string(specSrc))
	if err != nil {
		fmt.Fprintf(stderr, "camusc prove: parse spec: %v\n", err)
		return 2
	}
	rulesSrc, err := os.ReadFile(*rulesPath)
	if err != nil {
		fmt.Fprintf(stderr, "camusc prove: %v\n", err)
		return 2
	}
	file := baseName(*rulesPath) + ".rules"

	// Per-line parse with error recovery, as in vet: bad lines become
	// findings, the surviving rules still get proved.
	parser := subscription.NewParser(sp)
	var rules []*subscription.Rule
	ruleLine := make(map[int]int)
	var parseFindings []rulecheck.Finding
	for i, line := range strings.Split(string(rulesSrc), "\n") {
		lineRules, err := parser.ParseRuleLine(line, len(rules))
		if err != nil {
			kind := rulecheck.KindParseError
			if errors.Is(err, subscription.ErrUnknownField) {
				kind = rulecheck.KindUnknownField
			}
			parseFindings = append(parseFindings, rulecheck.Finding{
				Tool: "camusc-prove", File: file, Line: i + 1, RuleID: -1,
				Kind: kind, Severity: rulecheck.SevError, Message: err.Error(),
			})
			continue
		}
		for _, r := range lineRules {
			ruleLine[r.ID] = i + 1
		}
		rules = append(rules, lineRules...)
	}

	opts := compiler.Options{LastHop: *lastHop, Parallelism: *parallelism}
	prog, err := compiler.Compile(sp, rules, opts)
	if err != nil {
		fmt.Fprintf(stderr, "camusc prove: compile: %v\n", err)
		return 2
	}
	ir, err := prog.ProveIR()
	if err != nil {
		fmt.Fprintf(stderr, "camusc prove: export IR: %v\n", err)
		return 2
	}
	popts := prove.Options{LastHop: *lastHop, MaxPaths: *maxPaths}
	res, err := prove.Check(ir, rules, popts)
	if err != nil {
		fmt.Fprintf(stderr, "camusc prove: %v\n", err)
		return 2
	}

	rep := res.Report(file, rules, ruleLine)
	// Report emits one envelope finding per prover finding, in order;
	// replay the stateless counterexamples through the real pipeline.
	for i, f := range res.Findings {
		if f.Cex == nil || !f.Cex.Stateless() {
			continue
		}
		out, err := replay.Confirm(sp, prog, rules, f.Cex, popts)
		if err != nil {
			fmt.Fprintf(stderr, "camusc prove: replay: %v\n", err)
			continue
		}
		rep.Findings[i].Counterexample.Packet = hex.EncodeToString(out.Wire)
		rep.Findings[i].Counterexample.Confirmed = out.Diverges()
	}
	rep.Findings = append(parseFindings, rep.Findings...)

	if *jsonOut {
		fmt.Fprintln(stdout, rep.JSON())
	} else {
		fmt.Fprint(stdout, rep.String())
		if len(rep.Findings) == 0 {
			status := "complete"
			if res.Overflowed {
				status = "PARTIAL (budget exhausted)"
			}
			fmt.Fprintf(stdout, "  proof %s: %d symbolic paths, program equivalent to rules\n", status, res.Paths)
		}
	}
	if len(rep.Findings) > 0 {
		return 1
	}
	return 0
}

package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// TestFitCleanExamples is the acceptance gate: the shipped rule files
// certify clean under the default pipeline budget.
func TestFitCleanExamples(t *testing.T) {
	for _, rules := range []string{"itch.rules", "itchfeed.rules"} {
		t.Run(rules, func(t *testing.T) {
			var out, errb bytes.Buffer
			code := runFit([]string{
				"-spec", filepath.Join("testdata", "itch.spec"),
				"-rules", filepath.Join("testdata", rules),
			}, &out, &errb)
			if code != 0 {
				t.Fatalf("exit code = %d, want 0; stderr: %s\nstdout: %s", code, errb.String(), out.String())
			}
			if !strings.Contains(out.String(), "fit certificate:") {
				t.Errorf("expected a fit certificate, got: %s", out.String())
			}
			if !strings.Contains(out.String(), "stage  0") {
				t.Errorf("expected a per-stage utilization table, got: %s", out.String())
			}
		})
	}
}

// TestFitJSON checks the machine-readable envelope: findings plus the
// full layout (stages, tables, headroom).
func TestFitJSON(t *testing.T) {
	var out, errb bytes.Buffer
	code := runFit([]string{
		"-spec", filepath.Join("testdata", "itch.spec"),
		"-rules", filepath.Join("testdata", "itch.rules"),
		"-json",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
	}
	var rep struct {
		Tool     string `json:"tool"`
		Rules    int    `json:"rules"`
		Findings []any  `json:"findings"`
		Layout   struct {
			Passes int `json:"passes"`
			Tables []struct {
				Name     string `json:"name"`
				Headroom int    `json:"headroom"`
			} `json:"tables"`
			Stages []any `json:"stages"`
		} `json:"layout"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if rep.Tool != "camusc-fit" || rep.Rules != 5 || len(rep.Findings) != 0 {
		t.Errorf("envelope = tool=%q rules=%d findings=%d, want camusc-fit/5/0", rep.Tool, rep.Rules, len(rep.Findings))
	}
	if rep.Layout.Passes != 1 || len(rep.Layout.Stages) == 0 || len(rep.Layout.Tables) == 0 {
		t.Errorf("layout missing: %+v", rep.Layout)
	}
	for _, tf := range rep.Layout.Tables {
		if tf.Headroom <= 0 {
			t.Errorf("table %s headroom = %d, want > 0", tf.Name, tf.Headroom)
		}
	}
}

// TestFitOverflowExit: shrinking the stage budget below the chain's
// demand must produce findings and exit 1.
func TestFitOverflowExit(t *testing.T) {
	var out, errb bytes.Buffer
	code := runFit([]string{
		"-spec", filepath.Join("testdata", "itch.spec"),
		"-rules", filepath.Join("testdata", "itch.rules"),
		"-stages", "2", "-recirc", "0",
	}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "error: pipeline needs") {
		t.Errorf("expected a fit-stages finding, got: %s", out.String())
	}
}

// TestFitUsageExit: missing arguments exit 2.
func TestFitUsageExit(t *testing.T) {
	var out, errb bytes.Buffer
	if code := runFit(nil, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestVetCleanExamples runs the vet subcommand over the shipped sample
// files; the repo's own examples must produce zero findings and exit 0.
func TestVetCleanExamples(t *testing.T) {
	var out, errb bytes.Buffer
	code := runVet([]string{
		"-spec", filepath.Join("testdata", "itch.spec"),
		"-rules", filepath.Join("testdata", "itch.rules"),
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s\nstdout: %s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "0 findings") {
		t.Errorf("expected a zero-findings summary, got: %s", out.String())
	}
}

// TestVetDetectsSeededBadRules feeds vet a rule file with one
// unsatisfiable filter and one unknown field and checks both exit code
// and the JSON report shape.
func TestVetDetectsSeededBadRules(t *testing.T) {
	dir := t.TempDir()
	rules := filepath.Join(dir, "bad.rules")
	src := "price > 10 and price < 5: fwd(1)\nnosuchfield == 1: fwd(2)\n"
	if err := os.WriteFile(rules, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := runVet([]string{
		"-spec", filepath.Join("testdata", "itch.spec"),
		"-rules", rules,
		"-json",
	}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errb.String())
	}
	var rep struct {
		Findings []struct {
			Kind     string `json:"kind"`
			Severity string `json:"severity"`
			Line     int    `json:"line"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	kinds := map[string]bool{}
	for _, f := range rep.Findings {
		kinds[f.Kind] = true
	}
	for _, want := range []string{"unsatisfiable", "unknown-field"} {
		if !kinds[want] {
			t.Errorf("missing %q finding; got %v", want, kinds)
		}
	}
}

// TestVetUsageErrors checks flag and I/O failures exit 2.
func TestVetUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := runVet(nil, &out, &errb); code != 2 {
		t.Errorf("missing flags: exit = %d, want 2", code)
	}
	errb.Reset()
	code := runVet([]string{"-spec", "nope.spec", "-rules", "nope.rules"}, &out, &errb)
	if code != 2 {
		t.Errorf("missing files: exit = %d, want 2", code)
	}
}

// Command camus-sim deploys subscriptions over a fat-tree network and
// replays a synthetic ITCH feed through the simulated switches,
// reporting deliveries, per-layer traffic, and per-layer table state —
// a command-line version of the paper's Mininet experiments.
//
// Usage:
//
//	camus-sim [-k 4] [-filters 128] [-policy tr|mr] [-alpha 10]
//	          [-packets 5000] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"camus/internal/controller"
	"camus/internal/formats"
	"camus/internal/netsim"
	"camus/internal/routing"
	"camus/internal/spec"
	"camus/internal/topology"
	"camus/internal/workload"
)

func main() {
	k := flag.Int("k", 4, "fat-tree arity (k=4 is the paper's 20-switch instance)")
	nFilters := flag.Int("filters", 128, "number of synthetic subscriptions")
	policyName := flag.String("policy", "tr", "routing policy: tr (traffic) or mr (memory)")
	alpha := flag.Int64("alpha", 0, "discretization unit α (0 = exact)")
	packets := flag.Int("packets", 5000, "feed packets to publish")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	var policy routing.Policy
	switch *policyName {
	case "tr":
		policy = routing.TrafficReduction
	case "mr":
		policy = routing.MemoryReduction
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policyName)
		os.Exit(2)
	}

	net, err := topology.FatTree(*k)
	check(err)
	fmt.Printf("topology: k=%d fat tree — %d switches, %d hosts\n",
		*k, len(net.Switches), len(net.Hosts))

	exprs, err := workload.Siena(workload.SienaConfig{
		Spec: formats.ITCH, Filters: *nFilters,
		MinPredicates: 2, MaxPredicates: 3, Seed: *seed,
	})
	check(err)
	subs := workload.SpreadOverHosts(exprs, len(net.Hosts))

	d, err := controller.Deploy(net, formats.ITCH, subs, controller.Options{
		Routing: routing.Options{Policy: policy, Alpha: *alpha},
	})
	check(err)
	total, byLayer := d.CompileTime()
	fmt.Printf("deployed %d filters with policy %s α=%d in %s (ToR %s, Agg %s, Core %s)\n",
		*nFilters, policy, *alpha, total.Round(1000),
		byLayer[topology.ToR].Round(1000), byLayer[topology.Agg].Round(1000),
		byLayer[topology.Core].Round(1000))
	layers := d.LayerEntries()
	fmt.Printf("table entries: ToR=%d Agg=%d Core=%d\n",
		layers[topology.ToR], layers[topology.Agg], layers[topology.Core])

	sim, err := netsim.New(d)
	check(err)
	feed := workload.ITCHFeed(workload.ITCHFeedConfig{
		Packets: *packets, BatchZipf: true, InterestFraction: 0.05, Seed: *seed,
	})
	deliveries, messages := 0, 0
	m := spec.NewMessage(formats.ITCH)
	for i, pkt := range feed {
		msgs := make([]*spec.Message, len(pkt.Orders))
		for j, o := range pkt.Orders {
			mm := m.Clone()
			o.FillMessage(mm)
			msgs[j] = mm
		}
		out := sim.Publish(i%len(net.Hosts), msgs, 64*len(msgs))
		deliveries += len(out)
		for _, dl := range out {
			messages += len(dl.Msgs)
		}
	}
	fmt.Printf("\npublished %d packets → %d host deliveries (%d messages)\n",
		len(feed), deliveries, messages)
	fmt.Printf("traffic: ToR=%d Agg=%d Core=%d packets; dropped(no match)=%d loops=%d\n",
		sim.Traffic().LinkPackets[topology.ToR], sim.Traffic().LinkPackets[topology.Agg],
		sim.Traffic().CorePackets, sim.Traffic().Dropped, sim.Traffic().Looped)
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "camus-sim: %v\n", err)
		os.Exit(1)
	}
}

// Command camus-sim deploys subscriptions over a fat-tree network and
// replays a synthetic ITCH feed through the simulated switches,
// reporting deliveries, per-layer traffic, and per-layer table state —
// a command-line version of the paper's Mininet experiments.
//
// Usage:
//
//	camus-sim [-k 4] [-filters 128] [-policy tr|mr] [-alpha 10]
//	          [-packets 5000] [-seed 1]
//
// With -churn N the command instead starts from an empty network and
// drives N live subscribe/unsubscribe events through the ctlplane
// service (per-switch incremental deltas, coalescing, retry/backoff)
// while feed traffic flows, then reports sustained updates/sec and the
// update-latency percentiles before replaying the feed on the converged
// network:
//
//	camus-sim -churn 1000 [-churn-rate 2000]
//
// With -serve the command instead starts an in-process camusd daemon
// and soaks its HTTP API with a multi-tenant churn workload (see
// runServe) — the `make serve-soak` CI gate:
//
//	camus-sim -serve [-tenants 1000] [-churn 1000] [-validate-every 16]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"camus/camus"
	"camus/internal/controller"
	"camus/internal/formats"
	"camus/internal/netsim"
	"camus/internal/routing"
	"camus/internal/spec"
	"camus/internal/subscription"
	"camus/internal/topology"
	"camus/internal/workload"
)

func main() {
	k := flag.Int("k", 4, "fat-tree arity (k=4 is the paper's 20-switch instance)")
	nFilters := flag.Int("filters", 128, "number of synthetic subscriptions")
	policyName := flag.String("policy", "tr", "routing policy: tr (traffic) or mr (memory)")
	alpha := flag.Int64("alpha", 0, "discretization unit α (0 = exact)")
	packets := flag.Int("packets", 5000, "feed packets to publish")
	seed := flag.Int64("seed", 1, "workload seed")
	churnEvents := flag.Int("churn", 0, "live-churn mode: number of subscribe/unsubscribe events (0 = static deploy)")
	churnPool := flag.Int("churn-pool", 64, "distinct filters in the churn pool (Zipf popularity)")
	covering := flag.Bool("covering", false, "enable subsumption covering in the control plane and generate a covering-heavy churn pool (refinement chains)")
	serve := flag.Bool("serve", false, "serve-soak mode: start an in-process camusd and churn tenants against its HTTP API")
	serveAddr := flag.String("serve-addr", "127.0.0.1:0", "daemon listen address for -serve")
	serveLog := flag.String("serve-log", "", "event log path for -serve (empty = throwaway temp file)")
	serveWorkers := flag.Int("serve-workers", 8, "concurrent HTTP workers for -serve")
	tenants := flag.Int("tenants", 1000, "simulated tenant population for -serve")
	validateEvery := flag.Int("validate-every", 16, "translation-validate every Nth batch per switch in -serve (0 = off)")
	flag.Parse()

	var policy routing.Policy
	switch *policyName {
	case "tr":
		policy = routing.TrafficReduction
	case "mr":
		policy = routing.MemoryReduction
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policyName)
		os.Exit(2)
	}

	if *serve {
		events := *churnEvents
		if events == 0 {
			events = 1000
		}
		runServe(serveConfig{
			k:             *k,
			policy:        camus.DeployOptions{Policy: policy, Alpha: *alpha},
			tenants:       *tenants,
			events:        events,
			pool:          *churnPool,
			validateEvery: *validateEvery,
			workers:       *serveWorkers,
			addr:          *serveAddr,
			logPath:       *serveLog,
			seed:          *seed,
			covering:      *covering,
		})
		return
	}

	net, err := topology.FatTree(*k)
	check(err)
	fmt.Printf("topology: k=%d fat tree — %d switches, %d hosts\n",
		*k, len(net.Switches), len(net.Hosts))

	subs := make([][]subscription.Expr, len(net.Hosts))
	if *churnEvents == 0 {
		exprs, err := workload.Siena(workload.SienaConfig{
			Spec: formats.ITCH, Filters: *nFilters,
			MinPredicates: 2, MaxPredicates: 3, Seed: *seed,
		})
		check(err)
		subs = workload.SpreadOverHosts(exprs, len(net.Hosts))
	}

	d, err := controller.Deploy(net, formats.ITCH, subs, controller.Options{
		Routing: routing.Options{Policy: policy, Alpha: *alpha},
	})
	check(err)
	total, byLayer := d.CompileTime()
	deployed := 0
	for _, hs := range subs {
		deployed += len(hs)
	}
	fmt.Printf("deployed %d filters with policy %s α=%d in %s (ToR %s, Agg %s, Core %s)\n",
		deployed, policy, *alpha, total.Round(1000),
		byLayer[topology.ToR].Round(1000), byLayer[topology.Agg].Round(1000),
		byLayer[topology.Core].Round(1000))
	layers := d.LayerEntries()
	fmt.Printf("table entries: ToR=%d Agg=%d Core=%d\n",
		layers[topology.ToR], layers[topology.Agg], layers[topology.Core])

	sim, err := netsim.New(d)
	check(err)
	if *churnEvents > 0 {
		runChurn(sim, net, routing.Options{Policy: policy, Alpha: *alpha},
			*churnEvents, *churnPool, *seed, *covering)
	}
	feed := workload.ITCHFeed(workload.ITCHFeedConfig{
		Packets: *packets, BatchZipf: true, InterestFraction: 0.05, Seed: *seed,
	})
	deliveries, messages := 0, 0
	m := spec.NewMessage(formats.ITCH)
	for i, pkt := range feed {
		msgs := make([]*spec.Message, len(pkt.Orders))
		for j, o := range pkt.Orders {
			mm := m.Clone()
			o.FillMessage(mm)
			msgs[j] = mm
		}
		out := sim.Publish(i%len(net.Hosts), msgs, 64*len(msgs))
		deliveries += len(out)
		for _, dl := range out {
			messages += len(dl.Msgs)
		}
	}
	fmt.Printf("\npublished %d packets → %d host deliveries (%d messages)\n",
		len(feed), deliveries, messages)
	fmt.Printf("traffic: ToR=%d Agg=%d Core=%d packets; dropped(no match)=%d loops=%d\n",
		sim.Traffic().LinkPackets[topology.ToR], sim.Traffic().LinkPackets[topology.Agg],
		sim.Traffic().CorePackets, sim.Traffic().Dropped, sim.Traffic().Looped)
}

// runChurn drives a live subscription-churn session against the running
// simulation and prints the control-plane telemetry.
func runChurn(sim *netsim.Sim, net *topology.Network, ropts routing.Options, events, pool int, seed int64, covering bool) {
	opts := []camus.ControlPlaneOption{
		camus.WithPolicy(ropts.Policy, ropts.Alpha),
		camus.WithInstallers(sim.Installers()...),
		camus.WithSeed(seed),
	}
	if covering {
		opts = append(opts, camus.WithCovering(0))
	}
	svc, err := camus.NewControlPlane(net, formats.ITCH, opts...)
	check(err)
	defer svc.Close()
	evs, err := workload.Churn(workload.ChurnConfig{
		Spec: formats.ITCH, Hosts: len(net.Hosts),
		Events: events, PoolSize: pool, CoverHeavy: covering, Seed: seed,
	})
	check(err)
	live := make(map[int]int)
	start := time.Now()
	for _, ev := range evs {
		if ev.Add {
			_, ids, err := svc.Subscribe(ev.Host, []subscription.Expr{ev.Filter})
			check(err)
			live[ev.Key] = ids[0]
		} else {
			_, err := svc.Unsubscribe(ev.Host, []int{live[ev.Key]})
			check(err)
			delete(live, ev.Key)
		}
	}
	svc.Quiesce()
	elapsed := time.Since(start)
	snap := svc.Stats()
	fmt.Printf("churn: %d events in %s (%.0f updates/sec), %d live filters\n",
		snap.Events, elapsed.Round(time.Millisecond),
		float64(events)/elapsed.Seconds(), len(live))
	fmt.Printf("  batches=%d (coalesced) entries +%d -%d =%d retries=%d fallbacks=%d failures=%d\n",
		snap.Batches, snap.Installs, snap.Deletes, snap.Keeps,
		snap.Retries, snap.Fallbacks, snap.Failures)
	if snap.Covering {
		fmt.Printf("  covering: %d entries carry %d covered filters (%.0f%% of table state elided)\n",
			snap.CoverEntries, snap.CoverObligations, snap.CoverSavingsRatio*100)
		fmt.Printf("  covering totals: %d installs elided, %d roots captured, %d children promoted\n",
			snap.CoveredAdds, snap.CoverCaptures, snap.CoverPromotions)
	}
	fmt.Printf("  update latency: %s\n", snap.Latency)
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "camus-sim: %v\n", err)
		os.Exit(1)
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"camus/camus"
	"camus/internal/formats"
	"camus/internal/workload"
)

// serveConfig collects the -serve soak knobs.
type serveConfig struct {
	k             int
	policy        camus.DeployOptions
	tenants       int
	events        int
	pool          int
	validateEvery int
	workers       int
	addr          string
	logPath       string
	seed          int64
	covering      bool
}

// runServe starts an in-process camusd (daemon over a simulated
// fat-tree) and drives a multi-tenant churn soak against its HTTP API:
// thousands of simulated tenants subscribe and unsubscribe concurrently
// while translation validation samples every Nth batch. It exits
// non-zero if any request fails, /healthz goes red, or a single
// validation failure is recorded — the serve-soak CI gate.
func runServe(cfg serveConfig) {
	app, err := camus.NewAppFromSpec(formats.ITCH)
	check(err)
	net, err := camus.FatTree(cfg.k)
	check(err)
	empty := make([][]camus.Expr, len(net.Hosts))
	dep, err := app.Deploy(net, empty, cfg.policy)
	check(err)
	sim, err := camus.Simulate(dep)
	check(err)

	logPath := cfg.logPath
	if logPath == "" {
		dir, err := os.MkdirTemp("", "camusd-soak")
		check(err)
		defer os.RemoveAll(dir)
		logPath = filepath.Join(dir, "camusd.log")
	}

	svcOpts := []camus.ControlPlaneOption{
		camus.WithPolicy(cfg.policy.Policy, cfg.policy.Alpha),
		camus.WithInstallers(sim.Installers()...),
		camus.WithSeed(cfg.seed),
	}
	if cfg.validateEvery > 0 {
		svcOpts = append(svcOpts, camus.WithValidator(camus.ProveValidator(net, 0), cfg.validateEvery))
	}
	if cfg.covering {
		svcOpts = append(svcOpts, camus.WithCovering(0))
	}
	d, err := camus.NewDaemon(net, app.Spec,
		camus.WithDaemonEventLog(logPath),
		camus.WithDaemonService(svcOpts...),
		camus.WithDaemonTenancy(camus.WithAutoCreate()))
	check(err)
	addr, err := d.Start(cfg.addr)
	check(err)
	base := "http://" + addr
	fmt.Printf("serve-soak: camusd on %s — %d tenants, %d events, validate-every %d\n",
		base, cfg.tenants, cfg.events, cfg.validateEvery)

	evs, err := workload.TenantChurn(workload.TenantChurnConfig{
		ChurnConfig: workload.ChurnConfig{
			Spec: formats.ITCH, Hosts: len(net.Hosts),
			Events: cfg.events, PoolSize: cfg.pool, Seed: cfg.seed,
			CoverHeavy: cfg.covering,
		},
		Tenants: cfg.tenants,
	})
	check(err)

	// Partition the stream by tenant: per-tenant order is preserved
	// (removes follow their adds) while tenants run concurrently —
	// the daemon's round-robin dispatcher sees real cross-tenant
	// contention.
	shards := make([][]workload.TenantChurnEvent, cfg.workers)
	for _, ev := range evs {
		s := tenantShard(ev.Tenant, cfg.workers)
		shards[s] = append(shards[s], ev)
	}

	client := &http.Client{Timeout: 30 * time.Second}
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.workers)
	start := time.Now()
	for _, shard := range shards {
		if len(shard) == 0 {
			continue
		}
		wg.Add(1)
		go func(shard []workload.TenantChurnEvent) {
			defer wg.Done()
			if err := driveShard(client, base, shard); err != nil {
				errCh <- err
			}
		}(shard)
	}
	wg.Wait()
	close(errCh)
	elapsed := time.Since(start)
	for err := range errCh {
		check(err)
	}

	// Gate 1: the daemon must still report healthy.
	hb, status, err := get(client, base+"/healthz")
	check(err)
	healthy := status == http.StatusOK && strings.TrimSpace(string(hb)) == "ok"

	// Gate 2: zero validation failures across the whole soak.
	sb, _, err := get(client, base+"/v1/stats")
	check(err)
	var stats struct {
		Service struct {
			Events             int64   `json:"Events"`
			Applied            int64   `json:"Applied"`
			Validations        int64   `json:"Validations"`
			ValidationFailures int64   `json:"ValidationFailures"`
			Failures           int64   `json:"Failures"`
			Covering           bool    `json:"Covering"`
			CoverEntries       int     `json:"CoverEntries"`
			CoverObligations   int     `json:"CoverObligations"`
			CoverSavingsRatio  float64 `json:"CoverSavingsRatio"`
			CoveredAdds        int64   `json:"CoveredAdds"`
			CoverCaptures      int64   `json:"CoverCaptures"`
			CoverPromotions    int64   `json:"CoverPromotions"`
		} `json:"service"`
		Latency struct {
			N     int     `json:"n"`
			P50Ms float64 `json:"p50_ms"`
			P99Ms float64 `json:"p99_ms"`
		} `json:"latency"`
		Tenants  int   `json:"tenants"`
		LogSeq   int64 `json:"log_seq"`
		LogBytes int64 `json:"log_bytes"`
	}
	check(json.Unmarshal(sb, &stats))

	fmt.Printf("serve-soak: %d events in %s (%.0f updates/sec) across %d tenants\n",
		cfg.events, elapsed.Round(time.Millisecond),
		float64(cfg.events)/elapsed.Seconds(), stats.Tenants)
	fmt.Printf("  validations=%d validation-failures=%d failures=%d log: %d records, %d bytes\n",
		stats.Service.Validations, stats.Service.ValidationFailures,
		stats.Service.Failures, stats.LogSeq, stats.LogBytes)
	fmt.Printf("  update latency: n=%d p50=%.3fms p99=%.3fms\n",
		stats.Latency.N, stats.Latency.P50Ms, stats.Latency.P99Ms)
	if stats.Service.Covering {
		fmt.Printf("  covering: %d entries carry %d covered filters (%.0f%% of table state elided)\n",
			stats.Service.CoverEntries, stats.Service.CoverObligations,
			stats.Service.CoverSavingsRatio*100)
		fmt.Printf("  covering totals: %d installs elided, %d roots captured, %d children promoted\n",
			stats.Service.CoveredAdds, stats.Service.CoverCaptures, stats.Service.CoverPromotions)
	}
	fmt.Printf("  healthz: %s", hb)

	check(d.Close())
	if !healthy {
		fmt.Fprintln(os.Stderr, "serve-soak: FAILED — daemon unhealthy")
		os.Exit(1)
	}
	if stats.Service.ValidationFailures > 0 || stats.Service.Failures > 0 {
		fmt.Fprintln(os.Stderr, "serve-soak: FAILED — validation or apply failures")
		os.Exit(1)
	}
	// Gate 3 (covering mode): the soak must have exercised subsumption.
	// The end-state gauges can legitimately read zero — the final live
	// set may hold no implication pair — but the lifetime totals cannot.
	if cfg.covering && stats.Service.CoveredAdds == 0 {
		fmt.Fprintln(os.Stderr, "serve-soak: FAILED — covering enabled but no install was ever elided")
		os.Exit(1)
	}
	fmt.Println("serve-soak: PASS")
}

// tenantShard maps a tenant to a worker; all of a tenant's events stay
// on one worker so per-tenant ordering survives concurrency.
func tenantShard(tenant string, workers int) int {
	h := 0
	for _, c := range tenant {
		h = h*31 + int(c)
	}
	if h < 0 {
		h = -h
	}
	return h % workers
}

// driveShard replays one worker's tenants against the daemon API,
// mapping workload keys to server-assigned filter IDs.
func driveShard(client *http.Client, base string, evs []workload.TenantChurnEvent) error {
	ids := make(map[int]int) // churn key → assigned filter ID
	for _, ev := range evs {
		if ev.Add {
			body, _ := json.Marshal(map[string]any{
				"host": ev.Host, "filters": []string{ev.Filter.String()},
			})
			resp, err := do(client, http.MethodPost,
				base+"/v1/tenants/"+ev.Tenant+"/subscriptions", body)
			if err != nil {
				return err
			}
			var out struct {
				IDs []int `json:"ids"`
			}
			if err := json.Unmarshal(resp, &out); err != nil {
				return fmt.Errorf("serve-soak: decode subscribe response: %w", err)
			}
			if len(out.IDs) != 1 {
				return fmt.Errorf("serve-soak: expected 1 id, got %v", out.IDs)
			}
			ids[ev.Key] = out.IDs[0]
		} else {
			body, _ := json.Marshal(map[string]any{
				"host": ev.Host, "ids": []int{ids[ev.Key]},
			})
			if _, err := do(client, http.MethodDelete,
				base+"/v1/tenants/"+ev.Tenant+"/subscriptions", body); err != nil {
				return err
			}
			delete(ids, ev.Key)
		}
	}
	return nil
}

func do(client *http.Client, method, url string, body []byte) ([]byte, error) {
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve-soak: %s %s → %d: %s", method, url, resp.StatusCode, b)
	}
	return b, nil
}

func get(client *http.Client, url string) ([]byte, int, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return b, resp.StatusCode, err
}

module camus

go 1.22

// Package controller implements the logically centralized Camus
// controller (paper §III, Fig. 2): it has a global view of the topology
// and all end-point subscriptions, computes the global routing policy,
// and invokes the compiler to produce each switch's configuration.
package controller

import (
	"fmt"
	"time"

	"camus/internal/compiler"
	"camus/internal/routing"
	"camus/internal/spec"
	"camus/internal/subscription"
	"camus/internal/topology"
)

// Options configure a deployment.
type Options struct {
	// Routing selects the policy (MR/TR) and discretization α.
	Routing routing.Options
	// Compiler options applied to every switch; LastHop is forced per
	// switch layer (stateful predicates run only at the ToR, §II).
	Compiler compiler.Options
}

// SwitchCompileStat records the per-switch dynamic compilation cost —
// the quantity Fig. 14 plots.
type SwitchCompileStat struct {
	Switch  string
	Layer   topology.Layer
	Rules   int
	Entries int
	Elapsed time.Duration
}

// Deployment is the controller's output: the computed routing policy and
// one compiled program per switch.
type Deployment struct {
	Network  *topology.Network
	Spec     *spec.Spec
	Routing  *routing.Result
	Static   *compiler.StaticPipeline
	Programs []*compiler.Program // by switch ID
	Stats    []SwitchCompileStat // by switch ID
}

// Deploy computes the routing policy for the subscriptions and compiles
// every switch. subs is indexed by host ID.
func Deploy(net *topology.Network, sp *spec.Spec, subs [][]subscription.Expr, opts Options) (*Deployment, error) {
	res, err := routing.ComputeFatTree(net, subs, opts.Routing)
	if err != nil {
		return nil, fmt.Errorf("controller: routing: %w", err)
	}
	static, err := compiler.GenerateStatic(sp, compiler.StaticOptions{})
	if err != nil {
		return nil, fmt.Errorf("controller: static pipeline: %w", err)
	}
	d := &Deployment{
		Network:  net,
		Spec:     sp,
		Routing:  res,
		Static:   static,
		Programs: make([]*compiler.Program, len(net.Switches)),
		Stats:    make([]SwitchCompileStat, len(net.Switches)),
	}
	if err := d.recompile(opts); err != nil {
		return nil, err
	}
	return d, nil
}

// recompile runs the dynamic compilation step for every switch.
func (d *Deployment) recompile(opts Options) error {
	for _, s := range d.Network.Switches {
		copts := opts.Compiler
		// Stateful predicates are evaluated only at the hop immediately
		// before the subscriber (§II): rules forwarding to host-facing
		// ports. Transit rules (up ports, switch-to-switch) are erased
		// to their stateless superset.
		sw := s
		copts.LastHop = false
		copts.LastHopPort = func(port int) bool {
			return port >= 0 && port < len(sw.Ports) && sw.Ports[port].Kind == topology.PeerHost
		}
		rules := d.Routing.RulesForSwitch(s.ID)
		start := time.Now()
		prog, err := compiler.Compile(d.Spec, rules, copts)
		if err != nil {
			return fmt.Errorf("controller: compile %s: %w", s.Name, err)
		}
		d.Programs[s.ID] = prog
		d.Stats[s.ID] = SwitchCompileStat{
			Switch:  s.Name,
			Layer:   s.Layer,
			Rules:   len(rules),
			Entries: prog.TotalEntries(),
			Elapsed: time.Since(start),
		}
	}
	return nil
}

// Resubscribe replaces the subscriptions and recompiles — a dynamic
// reconfiguration event (§VIII-G3). It returns the total recompile time.
func (d *Deployment) Resubscribe(subs [][]subscription.Expr, opts Options) (time.Duration, error) {
	res, err := routing.ComputeFatTree(d.Network, subs, opts.Routing)
	if err != nil {
		return 0, err
	}
	d.Routing = res
	start := time.Now()
	if err := d.recompile(opts); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// LayerEntries sums compiled table entries per layer — the Fig. 13
// metric.
func (d *Deployment) LayerEntries() map[topology.Layer]int {
	out := make(map[topology.Layer]int)
	for _, st := range d.Stats {
		out[st.Layer] += st.Entries
	}
	return out
}

// MaxLayerEntries returns the largest per-switch entry count within each
// layer.
func (d *Deployment) MaxLayerEntries() map[topology.Layer]int {
	out := make(map[topology.Layer]int)
	for _, st := range d.Stats {
		if st.Entries > out[st.Layer] {
			out[st.Layer] = st.Entries
		}
	}
	return out
}

// CompileTime sums the per-switch dynamic compile times, total and by
// layer (Fig. 14).
func (d *Deployment) CompileTime() (total time.Duration, byLayer map[topology.Layer]time.Duration) {
	byLayer = make(map[topology.Layer]time.Duration)
	for _, st := range d.Stats {
		total += st.Elapsed
		byLayer[st.Layer] += st.Elapsed
	}
	return total, byLayer
}

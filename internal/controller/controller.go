// Package controller implements the logically centralized Camus
// controller (paper §III, Fig. 2): it has a global view of the topology
// and all end-point subscriptions, computes the global routing policy,
// and invokes the compiler to produce each switch's configuration.
package controller

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"camus/internal/compiler"
	"camus/internal/ctlplane"
	"camus/internal/routing"
	"camus/internal/spec"
	"camus/internal/subscription"
	"camus/internal/topology"
)

// Options configure a deployment.
type Options struct {
	// Routing selects the policy (MR/TR) and discretization α.
	Routing routing.Options
	// Compiler options applied to every switch; LastHop is forced per
	// switch layer (stateful predicates run only at the ToR, §II).
	Compiler compiler.Options
	// ForceFull makes Resubscribe recompute the routing policy and
	// recompile every switch from scratch instead of taking the
	// incremental delta path — the escape hatch when the caller wants a
	// pristine engine (or to measure the full-recompile baseline).
	ForceFull bool
}

// SwitchCompileStat records the per-switch dynamic compilation cost —
// the quantity Fig. 14 plots.
type SwitchCompileStat struct {
	Switch  string
	Layer   topology.Layer
	Rules   int
	Entries int
	Elapsed time.Duration
}

// Deployment is the controller's output: the computed routing policy and
// one compiled program per switch.
type Deployment struct {
	Network  *topology.Network
	Spec     *spec.Spec
	Routing  *routing.Result
	Static   *compiler.StaticPipeline
	Programs []*compiler.Program // by switch ID
	Stats    []SwitchCompileStat // by switch ID

	// subs is the live subscription set (by host), kept so Resubscribe
	// can compute a delta instead of recompiling the world.
	subs [][]subscription.Expr
	// rec is the lazily built incremental reconciler backing delta
	// resubscribes; filterIDs maps host → filter string → live ctlplane
	// filter IDs (a stack, since a host may repeat a filter).
	rec       *ctlplane.Reconciler
	filterIDs []map[string][]int
}

// Deploy computes the routing policy for the subscriptions and compiles
// every switch. subs is indexed by host ID.
func Deploy(net *topology.Network, sp *spec.Spec, subs [][]subscription.Expr, opts Options) (*Deployment, error) {
	res, err := routing.ComputeFatTree(net, subs, opts.Routing)
	if err != nil {
		return nil, fmt.Errorf("controller: routing: %w", err)
	}
	static, err := compiler.GenerateStatic(sp, compiler.StaticOptions{})
	if err != nil {
		return nil, fmt.Errorf("controller: static pipeline: %w", err)
	}
	d := &Deployment{
		Network:  net,
		Spec:     sp,
		Routing:  res,
		Static:   static,
		Programs: make([]*compiler.Program, len(net.Switches)),
		Stats:    make([]SwitchCompileStat, len(net.Switches)),
	}
	if err := d.recompile(opts); err != nil {
		return nil, err
	}
	d.subs = copySubs(net, subs)
	return d, nil
}

// copySubs snapshots a subscription set, normalized to one slot per
// host.
func copySubs(net *topology.Network, subs [][]subscription.Expr) [][]subscription.Expr {
	out := make([][]subscription.Expr, len(net.Hosts))
	for h := range out {
		if h < len(subs) {
			out[h] = append([]subscription.Expr(nil), subs[h]...)
		}
	}
	return out
}

// recompile runs the dynamic compilation step for every switch. The
// per-switch compiles share nothing mutable (each builds its own
// universe and BDD), so they fan out across opts.Compiler.Parallelism
// workers; results land in per-switch slots, making the deployment
// independent of completion order.
func (d *Deployment) recompile(opts Options) error {
	workers := opts.Compiler.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(d.Network.Switches) {
		workers = len(d.Network.Switches)
	}
	compileOne := func(s *topology.Switch) error {
		copts := opts.Compiler
		// Stateful predicates are evaluated only at the hop immediately
		// before the subscriber (§II): rules forwarding to host-facing
		// ports. Transit rules (up ports, switch-to-switch) are erased
		// to their stateless superset.
		copts.LastHop = false
		copts.LastHopPort = func(port int) bool {
			return port >= 0 && port < len(s.Ports) && s.Ports[port].Kind == topology.PeerHost
		}
		rules := d.Routing.RulesForSwitch(s.ID)
		start := time.Now()
		prog, err := compiler.Compile(d.Spec, rules, copts)
		if err != nil {
			return fmt.Errorf("controller: compile %s: %w", s.Name, err)
		}
		d.Programs[s.ID] = prog
		d.Stats[s.ID] = SwitchCompileStat{
			Switch:  s.Name,
			Layer:   s.Layer,
			Rules:   len(rules),
			Entries: prog.TotalEntries(),
			Elapsed: time.Since(start),
		}
		return nil
	}
	if workers <= 1 {
		for _, s := range d.Network.Switches {
			if err := compileOne(s); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		firstErr atomic.Pointer[error]
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(d.Network.Switches) || firstErr.Load() != nil {
					return
				}
				if err := compileOne(d.Network.Switches[i]); err != nil {
					firstErr.CompareAndSwap(nil, &err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if ep := firstErr.Load(); ep != nil {
		return *ep
	}
	return nil
}

// ResubscribeReport describes one dynamic reconfiguration: how long it
// took and the per-table-entry delta it pushed to the switches.
type ResubscribeReport struct {
	// Elapsed is the wall time of the reconfiguration (routing + compile).
	Elapsed time.Duration
	// Install / Delete / Keep are the summed table-entry deltas across
	// every recompiled switch (§V table entry re-use). On the full path
	// Install and Delete are the complete new and old table sizes.
	Install int
	Delete  int
	Keep    int
	// Switches counts the switches whose rule set actually changed.
	Switches int
	// Full reports the full-recompile path ran (ForceFull, first-error
	// recovery, or drift fallback on some switch).
	Full bool
}

// Resubscribe replaces the subscriptions — a dynamic reconfiguration
// event (§VIII-G3). By default it diffs the new subscription set against
// the live one and pushes only the per-switch entry deltas through the
// incremental compiler; Options.ForceFull restores the recompile-the-
// world behaviour.
func (d *Deployment) Resubscribe(subs [][]subscription.Expr, opts Options) (*ResubscribeReport, error) {
	if opts.ForceFull {
		return d.resubscribeFull(subs, opts)
	}
	start := time.Now()
	if d.rec == nil {
		if err := d.initReconciler(opts); err != nil {
			return nil, err
		}
	}
	next := copySubs(d.Network, subs)
	ops, err := d.diffSubs(next)
	if err != nil {
		return nil, err
	}
	rep := &ResubscribeReport{}
	bySwitch := make(map[int][]ctlplane.RuleOp)
	for _, op := range ops {
		bySwitch[op.Switch] = append(bySwitch[op.Switch], op)
	}
	for sw, swOps := range bySwitch {
		res, err := d.rec.Compile(sw, swOps)
		if err != nil {
			return nil, fmt.Errorf("controller: resubscribe switch %d: %w", sw, err)
		}
		rep.Install += res.AddedEntries
		rep.Delete += res.RemovedEntries
		rep.Keep += res.ReusedEntries
		rep.Switches++
		rep.Full = rep.Full || res.Full
		d.Programs[sw] = res.Program
		st := &d.Stats[sw]
		st.Rules = len(d.rec.Rules(sw))
		st.Entries = res.Program.TotalEntries()
		st.Elapsed = res.Elapsed
	}
	d.subs = next
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// resubscribeFull is the pre-incremental path: recompute routing and
// recompile every switch from scratch.
func (d *Deployment) resubscribeFull(subs [][]subscription.Expr, opts Options) (*ResubscribeReport, error) {
	res, err := routing.ComputeFatTree(d.Network, subs, opts.Routing)
	if err != nil {
		return nil, err
	}
	oldEntries := 0
	for _, p := range d.Programs {
		if p != nil {
			oldEntries += p.TotalEntries()
		}
	}
	d.Routing = res
	start := time.Now()
	if err := d.recompile(opts); err != nil {
		return nil, err
	}
	rep := &ResubscribeReport{
		Elapsed:  time.Since(start),
		Delete:   oldEntries,
		Switches: len(d.Network.Switches),
		Full:     true,
	}
	for _, p := range d.Programs {
		rep.Install += p.TotalEntries()
	}
	d.subs = copySubs(d.Network, subs)
	// A full redeploy invalidates the incremental registry.
	d.rec = nil
	d.filterIDs = nil
	return rep, nil
}

// initReconciler bootstraps the incremental registry from the live
// subscription set and replaces Programs with the reconciler's compiled
// (semantically identical) programs, so later deltas apply on top.
func (d *Deployment) initReconciler(opts Options) error {
	rec, err := ctlplane.NewReconcilerWith(d.Network, d.Spec,
		ctlplane.WithRouting(opts.Routing), ctlplane.WithCompiler(opts.Compiler))
	if err != nil {
		return err
	}
	ids := make([]map[string][]int, len(d.Network.Hosts))
	var ops []ctlplane.RuleOp
	for h, exprs := range d.subs {
		ids[h] = make(map[string][]int)
		for _, e := range exprs {
			id, o, err := rec.AddFilter(h, e)
			if err != nil {
				return err
			}
			key := e.String()
			ids[h][key] = append(ids[h][key], id)
			ops = append(ops, o...)
		}
	}
	bySwitch := make(map[int][]ctlplane.RuleOp)
	for _, op := range ops {
		bySwitch[op.Switch] = append(bySwitch[op.Switch], op)
	}
	for sw, swOps := range bySwitch {
		if _, err := rec.Compile(sw, swOps); err != nil {
			return fmt.Errorf("controller: bootstrap switch %d: %w", sw, err)
		}
	}
	for sw := range d.Programs {
		d.Programs[sw] = rec.Program(sw)
	}
	d.rec = rec
	d.filterIDs = ids
	return nil
}

// diffSubs computes the AddFilter/RemoveFilter delta from the live
// subscription set to next, updating the filter-ID registry.
func (d *Deployment) diffSubs(next [][]subscription.Expr) ([]ctlplane.RuleOp, error) {
	var ops []ctlplane.RuleOp
	for h := range next {
		oldCount := make(map[string]int)
		for _, e := range d.subs[h] {
			oldCount[e.String()]++
		}
		newByKey := make(map[string][]subscription.Expr)
		for _, e := range next[h] {
			newByKey[e.String()] = append(newByKey[e.String()], e)
		}
		// Removals: filters present more times in old than in new.
		for key, n := range oldCount {
			for extra := n - len(newByKey[key]); extra > 0; extra-- {
				stack := d.filterIDs[h][key]
				if len(stack) == 0 {
					return nil, fmt.Errorf("controller: no live filter id for host %d %q", h, key)
				}
				id := stack[len(stack)-1]
				d.filterIDs[h][key] = stack[:len(stack)-1]
				o, err := d.rec.RemoveFilter(h, id)
				if err != nil {
					return nil, err
				}
				ops = append(ops, o...)
			}
		}
		// Additions: filters present more times in new than in old.
		for key, exprs := range newByKey {
			for i := oldCount[key]; i < len(exprs); i++ {
				id, o, err := d.rec.AddFilter(h, exprs[i])
				if err != nil {
					return nil, err
				}
				d.filterIDs[h][key] = append(d.filterIDs[h][key], id)
				ops = append(ops, o...)
			}
		}
	}
	return ops, nil
}

// LayerEntries sums compiled table entries per layer — the Fig. 13
// metric.
func (d *Deployment) LayerEntries() map[topology.Layer]int {
	out := make(map[topology.Layer]int)
	for _, st := range d.Stats {
		out[st.Layer] += st.Entries
	}
	return out
}

// MaxLayerEntries returns the largest per-switch entry count within each
// layer.
func (d *Deployment) MaxLayerEntries() map[topology.Layer]int {
	out := make(map[topology.Layer]int)
	for _, st := range d.Stats {
		if st.Entries > out[st.Layer] {
			out[st.Layer] = st.Entries
		}
	}
	return out
}

// CompileTime sums the per-switch dynamic compile times, total and by
// layer (Fig. 14).
func (d *Deployment) CompileTime() (total time.Duration, byLayer map[topology.Layer]time.Duration) {
	byLayer = make(map[topology.Layer]time.Duration)
	for _, st := range d.Stats {
		total += st.Elapsed
		byLayer[st.Layer] += st.Elapsed
	}
	return total, byLayer
}

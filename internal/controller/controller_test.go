package controller

import (
	"fmt"
	"testing"

	"camus/internal/routing"
	"camus/internal/spec"
	"camus/internal/subscription"
	"camus/internal/topology"
)

var testSpec = spec.MustParse("itch", `
header itch_order {
    shares : u32 @field;
    price : u32 @field;
    stock : str8 @field_exact;
}
`)

func subsFor(t *testing.T, net *topology.Network) [][]subscription.Expr {
	t.Helper()
	p := subscription.NewParser(testSpec)
	subs := make([][]subscription.Expr, len(net.Hosts))
	for h := range subs {
		f, err := p.ParseFilter(fmt.Sprintf("stock == S%d and price > %d", h%4, h*5))
		if err != nil {
			t.Fatal(err)
		}
		subs[h] = []subscription.Expr{f}
	}
	return subs
}

func TestDeployCompilesEverySwitch(t *testing.T) {
	net := topology.MustFatTree(4)
	d, err := Deploy(net, testSpec, subsFor(t, net), Options{
		Routing: routing.Options{Policy: routing.TrafficReduction},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Programs) != len(net.Switches) {
		t.Fatalf("programs = %d, want %d", len(d.Programs), len(net.Switches))
	}
	for i, p := range d.Programs {
		if p == nil {
			t.Fatalf("switch %d has no program", i)
		}
		if err := d.Static.Validate(p); err != nil {
			t.Errorf("switch %s: %v", net.Switches[i].Name, err)
		}
	}
	for _, st := range d.Stats {
		if st.Entries == 0 {
			t.Errorf("switch %s compiled to zero entries", st.Switch)
		}
	}
}

// TestStatefulOnlyAtToR: stateful rules allocate registers on ToR
// programs only; upstream layers forward the stateless superset (§II).
func TestStatefulOnlyAtToR(t *testing.T) {
	net := topology.MustFatTree(4)
	p := subscription.NewParser(testSpec)
	f, err := p.ParseFilter("stock == GOOGL and avg(price) > 60")
	if err != nil {
		t.Fatal(err)
	}
	subs := make([][]subscription.Expr, len(net.Hosts))
	subs[3] = []subscription.Expr{f}
	d, err := Deploy(net, testSpec, subs, Options{
		Routing: routing.Options{Policy: routing.TrafficReduction},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range net.Switches {
		regs := d.Programs[s.ID].Resources.Registers
		if s.Layer == topology.ToR && s.ID == net.Hosts[3].Switch {
			if regs != 1 {
				t.Errorf("subscriber ToR %s has %d registers, want 1", s.Name, regs)
			}
		} else if regs != 0 {
			t.Errorf("%s (%v) allocated %d registers, want 0", s.Name, s.Layer, regs)
		}
	}
}

func TestMaxLayerEntries(t *testing.T) {
	net := topology.MustFatTree(4)
	d, err := Deploy(net, testSpec, subsFor(t, net), Options{
		Routing: routing.Options{Policy: routing.MemoryReduction},
	})
	if err != nil {
		t.Fatal(err)
	}
	maxes := d.MaxLayerEntries()
	sums := d.LayerEntries()
	for _, l := range []topology.Layer{topology.ToR, topology.Agg, topology.Core} {
		if maxes[l] == 0 || maxes[l] > sums[l] {
			t.Errorf("layer %v: max=%d sum=%d", l, maxes[l], sums[l])
		}
	}
}

func TestDeployErrors(t *testing.T) {
	net := topology.MustFatTree(4)
	if _, err := Deploy(net, testSpec, nil, Options{}); err == nil {
		t.Error("mismatched subscription count accepted")
	}
	empty := spec.MustParse("empty", "header h { x : u8; }")
	subs := make([][]subscription.Expr, len(net.Hosts))
	if _, err := Deploy(net, empty, subs, Options{}); err == nil {
		t.Error("spec without subscribable fields accepted")
	}
}

// TestDeployParallelEquivalence: per-switch compiles fanned out across
// workers must produce the same canonical program per switch as the
// sequential controller — the parallel path changes scheduling only.
func TestDeployParallelEquivalence(t *testing.T) {
	net := topology.MustFatTree(4)
	subs := subsFor(t, net)
	opts := Options{Routing: routing.Options{Policy: routing.TrafficReduction}}

	opts.Compiler.Parallelism = 1
	seq, err := Deploy(net, testSpec, subs, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Compiler.Parallelism = 6
	par, err := Deploy(net, testSpec, subs, opts)
	if err != nil {
		t.Fatal(err)
	}
	for sw := range seq.Programs {
		want := seq.Programs[sw].Canonical().String()
		got := par.Programs[sw].Canonical().String()
		if got != want {
			t.Errorf("switch %s: parallel deploy differs from sequential", net.Switches[sw].Name)
		}
	}
	for sw, st := range par.Stats {
		if st.Switch != seq.Stats[sw].Switch || st.Entries != seq.Stats[sw].Entries {
			t.Errorf("switch %d stats landed out of order: %+v vs %+v", sw, st, seq.Stats[sw])
		}
	}
}

// TestDeployParallelErrorPropagation: a compile failure on any switch
// must surface through the worker fan-out.
func TestDeployParallelErrorPropagation(t *testing.T) {
	net := topology.MustFatTree(4)
	opts := Options{Routing: routing.Options{Policy: routing.TrafficReduction}}
	opts.Compiler.Parallelism = 6
	opts.Compiler.MaxEntries = 1 // every switch exceeds this
	if _, err := Deploy(net, testSpec, subsFor(t, net), opts); err == nil {
		t.Fatal("expected MaxEntries compile failure through the parallel path")
	}
}

package baseline

import (
	"testing"
	"time"

	"camus/internal/compiler"
	"camus/internal/spec"
	"camus/internal/subscription"
	"camus/internal/workload"
)

var testSpec = spec.MustParse("itch", `
header itch_order {
    shares : u32 @field;
    price : u32 @field;
    stock : str8 @field_exact;
}
`)

// TestBigTableExplodes: the naive one-big-table representation grows
// multiplicatively with overlapping queries while the BDD compiler grows
// gently — the Fig. 12 relationship.
func TestBigTableExplodes(t *testing.T) {
	for _, n := range []int{50, 200} {
		rules, err := workload.SienaRules(workload.SienaConfig{
			Spec: testSpec, Filters: n, MinPredicates: 2, MaxPredicates: 3, Seed: 17,
		}, 16)
		if err != nil {
			t.Fatal(err)
		}
		big := BigTableEntries(testSpec, rules, 1<<40)
		prog, err := compiler.Compile(testSpec, rules, compiler.Options{})
		if err != nil {
			t.Fatal(err)
		}
		camus := prog.TotalEntries()
		if big <= camus {
			t.Errorf("n=%d: big table (%d) not larger than Camus (%d)", n, big, camus)
		}
		if big < 10*camus {
			t.Errorf("n=%d: big table (%d) should dwarf Camus (%d)", n, big, camus)
		}
	}
}

func TestBigTableCap(t *testing.T) {
	rules, err := workload.SienaRules(workload.SienaConfig{
		Spec: testSpec, Filters: 500, MinPredicates: 3, MaxPredicates: 3, Seed: 1,
	}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := BigTableEntries(testSpec, rules, 1000); got != 1000 {
		t.Errorf("cap not applied: %d", got)
	}
}

func TestBigTableSingleRule(t *testing.T) {
	p := subscription.NewParser(testSpec)
	r, err := p.ParseRule("price > 10: fwd(1)", 0)
	if err != nil {
		t.Fatal(err)
	}
	// One ordering constant on one field: 2·1+1 = 3 regions.
	if got := BigTableEntries(testSpec, []*subscription.Rule{r}, 0); got != 3 {
		t.Errorf("entries = %d, want 3", got)
	}
}

// TestSoftwareFilterShape reproduces the Fig. 9 relationships: DPDK ≈16
// Mpps with few filters, well above C userspace, far below line rate;
// throughput collapses past the 10k-filter cache knee.
func TestSoftwareFilterShape(t *testing.T) {
	dpdk, c := DPDK(), CUserspace()
	if got := dpdk.ThroughputMpps(0); got < 15 || got > 17 {
		t.Errorf("DPDK zero-filter throughput = %.1f Mpps, want ≈16", got)
	}
	if c.ThroughputMpps(10) >= dpdk.ThroughputMpps(10) {
		t.Error("C userspace should be slower than DPDK")
	}
	line := CamusSwitchMpps(100, 84)
	if line < 140 || line > 155 {
		t.Errorf("100G line rate = %.1f Mpps, want ≈148.8", line)
	}
	if dpdk.ThroughputMpps(10) >= line {
		t.Error("DPDK should be below line rate")
	}
	// Cache knee: going 1k → 100k filters must cost more than 10×.
	t1k, t100k := dpdk.ServiceTime(1000), dpdk.ServiceTime(100000)
	if t100k < 10*t1k {
		t.Errorf("no cache knee: %v vs %v", t1k, t100k)
	}
	// Monotonicity.
	prev := time.Duration(0)
	for _, n := range []int{0, 10, 100, 1000, 10000, 20000, 100000} {
		st := dpdk.ServiceTime(n)
		if st < prev {
			t.Errorf("service time not monotone at %d filters", n)
		}
		prev = st
	}
}

func TestQueueSim(t *testing.T) {
	var q QueueSim
	// Idle server: latency == service time.
	_, s1 := q.Process(0, 100)
	if s1 != 100 {
		t.Errorf("sojourn = %v", s1)
	}
	// Back-to-back arrival queues behind the first.
	_, s2 := q.Process(10, 100)
	if s2 != 190 { // waits 90, then 100 service
		t.Errorf("sojourn = %v, want 190", s2)
	}
	// Late arrival sees an idle server again.
	_, s3 := q.Process(10000, 100)
	if s3 != 100 {
		t.Errorf("sojourn = %v, want 100", s3)
	}
	q.Reset()
	if _, s := q.Process(0, 1); s != 1 {
		t.Errorf("reset failed: %v", s)
	}
}

// TestQueueSaturation: arrivals above the service rate grow the queue
// (tail latency explodes) while arrivals below it stay bounded — the
// mechanism behind the Fig. 8 baseline tail.
func TestQueueSaturation(t *testing.T) {
	service := time.Duration(100)
	run := func(interarrival time.Duration) time.Duration {
		var q QueueSim
		var last time.Duration
		for i := 0; i < 10000; i++ {
			_, s := q.Process(time.Duration(i)*interarrival, service)
			last = s
		}
		return last
	}
	under := run(110) // 90% load
	over := run(90)   // 111% load
	if over < 100*under {
		t.Errorf("overload tail (%v) should dwarf underload tail (%v)", over, under)
	}
}

func TestHICNForwarder(t *testing.T) {
	f := NewHICNForwarder(4)
	lat, hit := f.Request(0, 2)
	if !hit {
		t.Error("hot content missed")
	}
	if lat <= 0 {
		t.Error("zero latency")
	}
	latMiss, hit2 := f.Request(time.Millisecond, 999)
	if hit2 {
		t.Error("cold content hit")
	}
	if latMiss <= lat {
		t.Error("miss should cost more than hit")
	}
}

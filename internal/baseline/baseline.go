// Package baseline implements the comparison systems of the evaluation:
// the naive one-big-table compiler (Fig. 12), the C-userspace and DPDK
// software subscribers (Fig. 8, 9), and the software hICN forwarder
// (Fig. 11). The software models use the paper's own stated parameters
// (1.6 GHz Xeon E5-2603, ~100 instructions/packet for DPDK, 16 Mpps
// ceiling, 3.5 Gbps hICN forwarder).
package baseline

import (
	"time"

	"camus/internal/spec"
	"camus/internal/subscription"
)

// BigTableEntries models the naive compiler of §V-B / Fig. 12: one wide
// match-action table whose entries must distinguish every combination of
// overlapping rules. Each field's predicates partition its domain into
// intervals/classes; the table needs one entry per cell of the cross
// product, because a single TCAM entry can only carry one action and
// packets may satisfy any combination of rules.
//
// The returned count saturates at cap (0 = no cap) to keep pathological
// workloads finite.
func BigTableEntries(sp *spec.Spec, rules []*subscription.Rule, cap int) int {
	// Per-field partition sizes.
	type fieldStat struct {
		consts map[string]bool
		ranges bool
	}
	fields := make(map[string]*fieldStat)
	var collect func(e subscription.Expr)
	collect = func(e subscription.Expr) {
		switch n := e.(type) {
		case *subscription.Atom:
			key := n.Ref.Key()
			fs := fields[key]
			if fs == nil {
				fs = &fieldStat{consts: make(map[string]bool)}
				fields[key] = fs
			}
			fs.consts[n.Const.String()] = true
			if n.Rel != subscription.EQ && n.Rel != subscription.NE {
				fs.ranges = true
			}
		case *subscription.And:
			for _, t := range n.Terms {
				collect(t)
			}
		case *subscription.Or:
			for _, t := range n.Terms {
				collect(t)
			}
		case *subscription.Not:
			collect(n.Term)
		}
	}
	for _, r := range rules {
		collect(r.Filter)
	}
	product := 1
	for _, fs := range fields {
		cells := len(fs.consts) + 1 // each constant + "other"
		if fs.ranges {
			// Ordering constants split the domain into 2k+1 regions.
			cells = 2*len(fs.consts) + 1
		}
		product *= cells
		if cap > 0 && product >= cap {
			return cap
		}
	}
	return product
}

// SoftwareFilterModel is a CPU-bound packet filter: a server process
// matching each packet against n filters sequentially.
type SoftwareFilterModel struct {
	// Name labels the series ("C userspace", "DPDK").
	Name string
	// PerPacketNS is the fixed per-packet cost (I/O, parsing).
	PerPacketNS float64
	// PerFilterNS is the per-filter matching cost.
	PerFilterNS float64
	// CacheFilters is the number of filters fitting in cache; beyond it
	// the per-filter cost multiplies (the paper: "the latency for DPDK
	// drastically increases after 10K filters").
	CacheFilters int
	// CacheMissFactor multiplies PerFilterNS past CacheFilters.
	CacheMissFactor float64
}

// CUserspace models the plain C subscriber: kernel-socket I/O dominates.
func CUserspace() SoftwareFilterModel {
	return SoftwareFilterModel{
		Name:            "C userspace",
		PerPacketNS:     650, // syscall + copy per packet (~1.5 Mpps peak)
		PerFilterNS:     5,   // no prefetch-friendly batching: pricier scans
		CacheFilters:    10000,
		CacheMissFactor: 4,
	}
}

// DPDK models the kernel-bypass subscriber: the paper states 16 Mpps at
// 1.6 GHz spending ~100 instructions per packet.
func DPDK() SoftwareFilterModel {
	return SoftwareFilterModel{
		Name:            "DPDK",
		PerPacketNS:     62.5, // 100 instr / 1.6 GHz
		PerFilterNS:     2.5,  // ~4 instructions per linear-scan filter
		CacheFilters:    10000,
		CacheMissFactor: 4,
	}
}

// ServiceTime returns the per-packet processing time with n installed
// filters.
func (m SoftwareFilterModel) ServiceTime(n int) time.Duration {
	perFilter := m.PerFilterNS
	cost := m.PerPacketNS
	if m.CacheFilters > 0 && n > m.CacheFilters {
		cost += perFilter * float64(m.CacheFilters)
		cost += perFilter * m.CacheMissFactor * float64(n-m.CacheFilters)
	} else {
		cost += perFilter * float64(n)
	}
	return time.Duration(cost * float64(time.Nanosecond))
}

// ThroughputMpps returns the saturation throughput with n filters.
func (m SoftwareFilterModel) ThroughputMpps(n int) float64 {
	st := m.ServiceTime(n).Seconds()
	if st <= 0 {
		return 0
	}
	return 1 / st / 1e6
}

// CamusSwitchMpps is the hardware reference series of Fig. 9: the switch
// evaluates filters in match-action tables at line rate, independent of
// the filter count. For the 100G link of the experiment with ~84-byte
// minimum frames that is ≈148.8 Mpps.
func CamusSwitchMpps(linkGbps float64, frameBytes int) float64 {
	if frameBytes <= 0 {
		frameBytes = 84
	}
	return linkGbps * 1e9 / float64(frameBytes*8) / 1e6
}

// QueueSim is a single-server FIFO queue: the latency model for a
// software subscriber fed near saturation (Fig. 8) and for the hICN
// forwarder (Fig. 11).
type QueueSim struct {
	busyUntil time.Duration
}

// Process returns the departure time and sojourn (queueing + service)
// latency of a packet arriving at arrival with the given service time.
func (q *QueueSim) Process(arrival time.Duration, service time.Duration) (departure, sojourn time.Duration) {
	start := arrival
	if q.busyUntil > start {
		start = q.busyUntil
	}
	departure = start + service
	q.busyUntil = departure
	return departure, departure - arrival
}

// Reset clears the server state.
func (q *QueueSim) Reset() { q.busyUntil = 0 }

// HICNForwarderModel is the VPP/DPDK hICN forwarder of §VIII-E3: a
// software cache with a finite processing rate (~3.5 Gbps) serving hot
// content; misses are forwarded upstream with an extra lookup cost.
type HICNForwarderModel struct {
	// ServiceNS is the per-request processing time at the forwarder.
	ServiceNS float64
	// MissPenaltyNS is the extra cost of a cache miss (upstream fetch
	// initiation).
	MissPenaltyNS float64
	// HotIDs is the cached (hot) content ID bound: IDs below it hit.
	HotIDs int64

	queue QueueSim
}

// NewHICNForwarder returns the paper-calibrated model: 3.5 Gbps at
// ~1 KB requests ≈ 2.3 µs per request.
func NewHICNForwarder(hotIDs int64) *HICNForwarderModel {
	return &HICNForwarderModel{
		ServiceNS:     2300,
		MissPenaltyNS: 8000,
		HotIDs:        hotIDs,
	}
}

// Request processes one content request through the forwarder queue.
func (f *HICNForwarderModel) Request(arrival time.Duration, contentID int64) (latency time.Duration, hit bool) {
	hit = contentID < f.HotIDs
	service := time.Duration(f.ServiceNS)
	if !hit {
		service += time.Duration(f.MissPenaltyNS)
	}
	_, sojourn := f.queue.Process(arrival, service)
	return sojourn, hit
}

// Reset clears the forwarder queue.
func (f *HICNForwarderModel) Reset() { f.queue.Reset() }

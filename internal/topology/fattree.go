// Package topology models the networks Camus routes over: hierarchical
// fat trees (the expected datacenter deployment, §IV-A) and general
// graphs routed via spanning trees (§IV-E).
package topology

import "fmt"

// Layer is a switch's level in a hierarchical topology.
type Layer int

const (
	// ToR is the top-of-rack (host-facing, last-hop) layer.
	ToR Layer = iota
	// Agg is the aggregation layer.
	Agg
	// Core is the core layer (no up ports).
	Core
	// General marks switches of non-hierarchical topologies.
	General
)

func (l Layer) String() string {
	switch l {
	case ToR:
		return "tor"
	case Agg:
		return "agg"
	case Core:
		return "core"
	default:
		return "general"
	}
}

// PeerKind distinguishes what a port connects to.
type PeerKind int

const (
	// PeerHost is a host-facing (access) port.
	PeerHost PeerKind = iota
	// PeerDown links to a lower-layer switch.
	PeerDown
	// PeerUp links to a higher-layer switch. Camus treats all up ports
	// as one logical up port (§IV-C).
	PeerUp
)

// Port is one switch port and its link.
type Port struct {
	// Index is the local port number.
	Index int
	// Kind classifies the link direction.
	Kind PeerKind
	// PeerSwitch / PeerHost identify the neighbor (one is -1).
	PeerSwitch int
	PeerHostID int
	// PeerPort is the neighbor's local port number (switch peers).
	PeerPort int
}

// Switch is one switch in the network.
type Switch struct {
	// ID is the switch index in Network.Switches.
	ID int
	// Name is the human-readable identifier (e.g. "tor-0-1").
	Name string
	// Layer is the hierarchy level.
	Layer Layer
	// Ports in index order.
	Ports []Port
}

// UpPorts returns the up-facing ports.
func (s *Switch) UpPorts() []Port { return s.portsOf(PeerUp) }

// DownPorts returns the down-facing switch ports.
func (s *Switch) DownPorts() []Port { return s.portsOf(PeerDown) }

// HostPorts returns the host-facing ports.
func (s *Switch) HostPorts() []Port { return s.portsOf(PeerHost) }

func (s *Switch) portsOf(k PeerKind) []Port {
	var out []Port
	for _, p := range s.Ports {
		if p.Kind == k {
			out = append(out, p)
		}
	}
	return out
}

// Host is an end point (publisher and/or subscriber).
type Host struct {
	// ID is the host index in Network.Hosts.
	ID int
	// Name is the human-readable identifier (e.g. "h3").
	Name string
	// Switch and Port are the access attachment (Algorithm 1's access()).
	Switch int
	Port   int
}

// Network is a topology instance.
type Network struct {
	Switches []*Switch
	Hosts    []*Host
	// K is the fat-tree arity (0 for non-fat-tree networks).
	K int
}

// Access returns the access switch and port of a host (Algorithm 1).
func (n *Network) Access(hostID int) (sw, port int) {
	h := n.Hosts[hostID]
	return h.Switch, h.Port
}

// SwitchByName finds a switch.
func (n *Network) SwitchByName(name string) (*Switch, bool) {
	for _, s := range n.Switches {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}

// LayerSwitches returns the switches of one layer.
func (n *Network) LayerSwitches(l Layer) []*Switch {
	var out []*Switch
	for _, s := range n.Switches {
		if s.Layer == l {
			out = append(out, s)
		}
	}
	return out
}

// addLink wires switch a port ap to switch b port bp with kinds ka / kb.
func (n *Network) addLink(a, ap, b, bp int, ka, kb PeerKind) {
	n.Switches[a].Ports[ap] = Port{Index: ap, Kind: ka, PeerSwitch: b, PeerHostID: -1, PeerPort: bp}
	n.Switches[b].Ports[bp] = Port{Index: bp, Kind: kb, PeerSwitch: a, PeerHostID: -1, PeerPort: ap}
}

// FatTree builds a k-ary fat tree (§IV-B, Fig. 3): k pods of k/2 ToR and
// k/2 Agg switches, (k/2)² core switches, and k/2 hosts per ToR. k=4
// yields the paper's Mininet instance: 20 switches, 16 hosts.
func FatTree(k int) (*Network, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topology: fat-tree arity must be even and ≥2, got %d", k)
	}
	half := k / 2
	n := &Network{K: k}

	// Allocate switches: per pod k/2 ToR then k/2 Agg; then cores.
	torID := func(pod, i int) int { return pod*k + i }
	aggID := func(pod, i int) int { return pod*k + half + i }
	coreID := func(i, j int) int { return k*k + i*half + j }
	for pod := 0; pod < k; pod++ {
		for i := 0; i < half; i++ {
			n.Switches = append(n.Switches, &Switch{
				Name: fmt.Sprintf("tor-%d-%d", pod, i), Layer: ToR,
				Ports: make([]Port, k),
			})
		}
		for i := 0; i < half; i++ {
			n.Switches = append(n.Switches, &Switch{
				Name: fmt.Sprintf("agg-%d-%d", pod, i), Layer: Agg,
				Ports: make([]Port, k),
			})
		}
	}
	for i := 0; i < half; i++ {
		for j := 0; j < half; j++ {
			n.Switches = append(n.Switches, &Switch{
				Name: fmt.Sprintf("core-%d-%d", i, j), Layer: Core,
				Ports: make([]Port, k),
			})
		}
	}
	for id, s := range n.Switches {
		s.ID = id
		for p := range s.Ports {
			s.Ports[p] = Port{Index: p, PeerSwitch: -1, PeerHostID: -1}
		}
	}

	// Hosts: ports 0..half-1 of each ToR.
	for pod := 0; pod < k; pod++ {
		for i := 0; i < half; i++ {
			tor := torID(pod, i)
			for hp := 0; hp < half; hp++ {
				hid := len(n.Hosts)
				n.Hosts = append(n.Hosts, &Host{
					ID: hid, Name: fmt.Sprintf("h%d", hid), Switch: tor, Port: hp,
				})
				n.Switches[tor].Ports[hp] = Port{Index: hp, Kind: PeerHost, PeerSwitch: -1, PeerHostID: hid}
			}
		}
	}

	// ToR ↔ Agg within each pod (ToR up ports half..k-1; Agg down ports
	// 0..half-1).
	for pod := 0; pod < k; pod++ {
		for t := 0; t < half; t++ {
			for a := 0; a < half; a++ {
				n.addLink(torID(pod, t), half+a, aggID(pod, a), t, PeerUp, PeerDown)
			}
		}
	}
	// Agg ↔ Core: agg i of each pod connects to cores i*half..i*half+half-1
	// on its up ports half..k-1; core (i,j) port `pod` links pod's agg i.
	for pod := 0; pod < k; pod++ {
		for a := 0; a < half; a++ {
			for j := 0; j < half; j++ {
				n.addLink(aggID(pod, a), half+j, coreID(a, j), pod, PeerUp, PeerDown)
			}
		}
	}
	return n, nil
}

// MustFatTree is FatTree, panicking on error.
func MustFatTree(k int) *Network {
	n, err := FatTree(k)
	if err != nil {
		panic(err)
	}
	return n
}

// Validate checks structural invariants: symmetric links, all ports
// wired, hosts attached to ToR switches.
func (n *Network) Validate() error {
	for _, s := range n.Switches {
		for _, p := range s.Ports {
			switch p.Kind {
			case PeerHost:
				if p.PeerHostID < 0 || p.PeerHostID >= len(n.Hosts) {
					return fmt.Errorf("%s port %d: bad host %d", s.Name, p.Index, p.PeerHostID)
				}
				h := n.Hosts[p.PeerHostID]
				if h.Switch != s.ID || h.Port != p.Index {
					return fmt.Errorf("%s port %d: host %s access mismatch", s.Name, p.Index, h.Name)
				}
			default:
				if p.PeerSwitch < 0 {
					return fmt.Errorf("%s port %d: unwired", s.Name, p.Index)
				}
				peer := n.Switches[p.PeerSwitch]
				back := peer.Ports[p.PeerPort]
				if back.PeerSwitch != s.ID || back.PeerPort != p.Index {
					return fmt.Errorf("%s port %d: asymmetric link to %s", s.Name, p.Index, peer.Name)
				}
			}
		}
	}
	return nil
}

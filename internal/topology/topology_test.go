package topology

import (
	"math/rand"
	"testing"
)

func TestFatTreeK4Shape(t *testing.T) {
	n := MustFatTree(4)
	// The paper's Mininet instance: 20 switches, 16 hosts.
	if len(n.Switches) != 20 {
		t.Errorf("switches = %d, want 20", len(n.Switches))
	}
	if len(n.Hosts) != 16 {
		t.Errorf("hosts = %d, want 16", len(n.Hosts))
	}
	if got := len(n.LayerSwitches(ToR)); got != 8 {
		t.Errorf("ToR switches = %d, want 8", got)
	}
	if got := len(n.LayerSwitches(Agg)); got != 8 {
		t.Errorf("Agg switches = %d, want 8", got)
	}
	if got := len(n.LayerSwitches(Core)); got != 4 {
		t.Errorf("Core switches = %d, want 4", got)
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestFatTreePortRoles(t *testing.T) {
	n := MustFatTree(4)
	for _, s := range n.Switches {
		up, down, hosts := len(s.UpPorts()), len(s.DownPorts()), len(s.HostPorts())
		switch s.Layer {
		case ToR:
			if up != 2 || down != 0 || hosts != 2 {
				t.Errorf("%s: up=%d down=%d hosts=%d", s.Name, up, down, hosts)
			}
		case Agg:
			if up != 2 || down != 2 || hosts != 0 {
				t.Errorf("%s: up=%d down=%d hosts=%d", s.Name, up, down, hosts)
			}
		case Core:
			if up != 0 || down != 4 || hosts != 0 {
				t.Errorf("%s: up=%d down=%d hosts=%d", s.Name, up, down, hosts)
			}
		}
	}
}

func TestFatTreeSizes(t *testing.T) {
	for _, k := range []int{2, 4, 6, 8} {
		n := MustFatTree(k)
		if err := n.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		wantSwitches := k*k + k*k/4
		if len(n.Switches) != wantSwitches {
			t.Errorf("k=%d: switches = %d, want %d", k, len(n.Switches), wantSwitches)
		}
		wantHosts := k * k * k / 4
		if len(n.Hosts) != wantHosts {
			t.Errorf("k=%d: hosts = %d, want %d", k, len(n.Hosts), wantHosts)
		}
	}
	if _, err := FatTree(3); err == nil {
		t.Error("odd arity accepted")
	}
	if _, err := FatTree(0); err == nil {
		t.Error("zero arity accepted")
	}
}

func TestHostAccess(t *testing.T) {
	n := MustFatTree(4)
	for _, h := range n.Hosts {
		sw, port := n.Access(h.ID)
		s := n.Switches[sw]
		if s.Layer != ToR {
			t.Errorf("host %s attached to %s layer %v", h.Name, s.Name, s.Layer)
		}
		if s.Ports[port].PeerHostID != h.ID {
			t.Errorf("host %s access port mismatch", h.Name)
		}
	}
}

func ringGraph(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

func starGraph(n int) *Graph {
	g := NewGraph(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	g := ringGraph(5)
	if g.Edges() != 5 {
		t.Errorf("ring edges = %d", g.Edges())
	}
	g.AddEdge(0, 1) // duplicate
	if g.Edges() != 5 {
		t.Errorf("duplicate edge added")
	}
	g.AddEdge(2, 2) // self loop
	if g.Edges() != 5 {
		t.Errorf("self loop added")
	}
	if !g.Connected() {
		t.Error("ring not connected")
	}
	g2 := NewGraph(4)
	g2.AddEdge(0, 1)
	if g2.Connected() {
		t.Error("disconnected graph reported connected")
	}
}

func TestPrimMSTSpansGraph(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 20 + r.Intn(50)
		g := NewGraph(n)
		// Random connected graph: a random spanning path plus extra edges.
		perm := r.Perm(n)
		for i := 1; i < n; i++ {
			g.AddEdge(perm[i-1], perm[i])
		}
		for i := 0; i < n; i++ {
			g.AddEdge(r.Intn(n), r.Intn(n))
		}
		tree, err := PrimMST(g, 0, UnitWeight)
		if err != nil {
			t.Fatalf("PrimMST: %v", err)
		}
		// Exactly n-1 tree edges, all graph edges, every vertex reached.
		edges := 0
		for v := 0; v < n; v++ {
			if v == tree.Root {
				if tree.Parent[v] != -1 {
					t.Fatalf("root has parent")
				}
				continue
			}
			p := tree.Parent[v]
			if p < 0 {
				t.Fatalf("vertex %d unreached", v)
			}
			found := false
			for _, nb := range g.Adj[v] {
				if nb == p {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("tree edge (%d,%d) not in graph", v, p)
			}
			edges++
		}
		if edges != n-1 {
			t.Fatalf("tree has %d edges, want %d", edges, n-1)
		}
		if got := len(tree.PostOrder()); got != n {
			t.Fatalf("post-order visits %d of %d", got, n)
		}
		// Post-order: children before parents.
		pos := make([]int, n)
		for i, v := range tree.PostOrder() {
			pos[v] = i
		}
		for v := 0; v < n; v++ {
			for _, c := range tree.Kids[v] {
				if pos[c] > pos[v] {
					t.Fatalf("child %d after parent %d in post-order", c, v)
				}
			}
		}
	}
}

func TestPrimMSTDisconnected(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if _, err := PrimMST(g, 0, UnitWeight); err == nil {
		t.Error("disconnected graph spanned")
	}
	if _, err := PrimMST(g, 99, UnitWeight); err == nil {
		t.Error("bad root accepted")
	}
}

// TestMSTPlusPlusLowersDegree: on a graph with hubs plus a ring, the
// degree-product weight avoids concentrating tree edges on hubs.
func TestMSTPlusPlusLowersDegree(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	better, worse := 0, 0
	for trial := 0; trial < 10; trial++ {
		n := 200
		g := ringGraph(n)
		// Add hubs: a few vertices connected to many others.
		for h := 0; h < 5; h++ {
			hub := r.Intn(n)
			for i := 0; i < 60; i++ {
				g.AddEdge(hub, r.Intn(n))
			}
		}
		mst, err := PrimMST(g, 0, UnitWeight)
		if err != nil {
			t.Fatal(err)
		}
		mstPP, err := PrimMST(g, 0, DegreeProductWeight(g))
		if err != nil {
			t.Fatal(err)
		}
		if mstPP.MaxDegree() < mst.MaxDegree() {
			better++
		} else if mstPP.MaxDegree() > mst.MaxDegree() {
			worse++
		}
	}
	if better <= worse {
		t.Errorf("MST++ max degree: better %d trials, worse %d — heuristic ineffective", better, worse)
	}
}

func TestTreeNeighbors(t *testing.T) {
	g := starGraph(5)
	tree, err := PrimMST(g, 0, UnitWeight)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tree.TreeNeighbors(0)); got != 4 {
		t.Errorf("root neighbors = %d", got)
	}
	if got := len(tree.TreeNeighbors(1)); got != 1 {
		t.Errorf("leaf neighbors = %d", got)
	}
	if tree.MaxDegree() != 4 {
		t.Errorf("star max degree = %d", tree.MaxDegree())
	}
}

package topology

import (
	"container/heap"
	"fmt"
)

// Graph is an undirected general topology (§IV-E): AS-level graphs in the
// paper's evaluation. Vertices are switches; edges are links.
type Graph struct {
	N   int
	Adj [][]int // adjacency lists, deduplicated, no self-loops
}

// NewGraph allocates an empty graph with n vertices.
func NewGraph(n int) *Graph {
	return &Graph{N: n, Adj: make([][]int, n)}
}

// AddEdge inserts an undirected edge (idempotent).
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	for _, w := range g.Adj[u] {
		if w == v {
			return
		}
	}
	g.Adj[u] = append(g.Adj[u], v)
	g.Adj[v] = append(g.Adj[v], u)
}

// Edges counts undirected edges.
func (g *Graph) Edges() int {
	n := 0
	for _, a := range g.Adj {
		n += len(a)
	}
	return n / 2
}

// Degree returns a vertex's degree.
func (g *Graph) Degree(v int) int { return len(g.Adj[v]) }

// Connected reports whether the graph is connected.
func (g *Graph) Connected() bool {
	if g.N == 0 {
		return true
	}
	seen := make([]bool, g.N)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.Adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == g.N
}

// Tree is a rooted spanning tree of a graph.
type Tree struct {
	Graph  *Graph
	Root   int
	Parent []int   // Parent[root] == -1
	Kids   [][]int // children lists
}

// WeightFunc assigns a weight to edge (u,v).
type WeightFunc func(u, v int) float64

// UnitWeight gives every edge weight 1 — the paper's baseline MST.
func UnitWeight(u, v int) float64 { return 1 }

// DegreeProductWeight is the MST++ heuristic: w(u,v) = deg(u)·deg(v),
// which steers Prim's algorithm toward low-degree spanning trees so each
// switch partitions its subscriptions into few port groups, letting the
// BDD compiler compress harder (§IV-E).
func DegreeProductWeight(g *Graph) WeightFunc {
	return func(u, v int) float64 {
		return float64(g.Degree(u)) * float64(g.Degree(v))
	}
}

// pqItem is a Prim frontier entry.
type pqItem struct {
	v    int
	from int
	w    float64
}

type prio []pqItem

func (p prio) Len() int            { return len(p) }
func (p prio) Less(i, j int) bool  { return p[i].w < p[j].w }
func (p prio) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *prio) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *prio) Pop() interface{} {
	old := *p
	it := old[len(old)-1]
	*p = old[:len(old)-1]
	return it
}

// PrimMST computes a minimum spanning tree from root with the given edge
// weights (§IV-E: both MST and MST++ use Prim's algorithm).
func PrimMST(g *Graph, root int, w WeightFunc) (*Tree, error) {
	if root < 0 || root >= g.N {
		return nil, fmt.Errorf("topology: root %d out of range", root)
	}
	t := &Tree{Graph: g, Root: root, Parent: make([]int, g.N), Kids: make([][]int, g.N)}
	for i := range t.Parent {
		t.Parent[i] = -1
	}
	inTree := make([]bool, g.N)
	pq := &prio{}
	inTree[root] = true
	for _, v := range g.Adj[root] {
		heap.Push(pq, pqItem{v: v, from: root, w: w(root, v)})
	}
	added := 1
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		if inTree[it.v] {
			continue
		}
		inTree[it.v] = true
		t.Parent[it.v] = it.from
		t.Kids[it.from] = append(t.Kids[it.from], it.v)
		added++
		for _, nb := range g.Adj[it.v] {
			if !inTree[nb] {
				heap.Push(pq, pqItem{v: nb, from: it.v, w: w(it.v, nb)})
			}
		}
	}
	if added != g.N {
		return nil, fmt.Errorf("topology: graph is disconnected (%d of %d reached)", added, g.N)
	}
	return t, nil
}

// MaxDegree returns the maximum number of tree neighbors (parent +
// children) over all vertices — MST++ minimizes this heuristically.
func (t *Tree) MaxDegree() int {
	max := 0
	for v := 0; v < t.Graph.N; v++ {
		d := len(t.Kids[v])
		if t.Parent[v] >= 0 {
			d++
		}
		if d > max {
			max = d
		}
	}
	return max
}

// PostOrder returns the vertices in post-order (children before parents),
// the traversal the subscription-partition computation uses.
func (t *Tree) PostOrder() []int {
	out := make([]int, 0, t.Graph.N)
	type frame struct {
		v    int
		next int
	}
	stack := []frame{{v: t.Root}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(t.Kids[f.v]) {
			child := t.Kids[f.v][f.next]
			f.next++
			stack = append(stack, frame{v: child})
			continue
		}
		out = append(out, f.v)
		stack = stack[:len(stack)-1]
	}
	return out
}

// TreeNeighbors lists a vertex's tree-adjacent vertices.
func (t *Tree) TreeNeighbors(v int) []int {
	out := append([]int(nil), t.Kids[v]...)
	if t.Parent[v] >= 0 {
		out = append(out, t.Parent[v])
	}
	return out
}

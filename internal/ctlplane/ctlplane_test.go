package ctlplane

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"

	"camus/internal/compiler"
	"camus/internal/routing"
	"camus/internal/spec"
	"camus/internal/subscription"
	"camus/internal/topology"
)

var itchSpec = spec.MustParse("itch", `
header itch_order {
    shares : u32 @field;
    price : u32 @field;
    stock : str8 @field_exact;
}
`)

func filter(t testing.TB, src string) subscription.Expr {
	t.Helper()
	e, err := subscription.NewParser(itchSpec).ParseFilter(src)
	if err != nil {
		t.Fatalf("ParseFilter(%q): %v", src, err)
	}
	return e
}

func msg(stock string, price, shares int64) *spec.Message {
	m := spec.NewMessage(itchSpec)
	m.MustSet("stock", spec.StrVal(stock))
	m.MustSet("price", spec.IntVal(price))
	m.MustSet("shares", spec.IntVal(shares))
	return m
}

func randomSubs(r *rand.Rand, hosts, maxPerHost int) [][]subscription.Expr {
	stocks := []string{"GOOGL", "MSFT", "AAPL", "FB"}
	parser := subscription.NewParser(itchSpec)
	subs := make([][]subscription.Expr, hosts)
	for h := range subs {
		for i := 0; i < r.Intn(maxPerHost+1); i++ {
			src := fmt.Sprintf("stock == %s and price > %d",
				stocks[r.Intn(len(stocks))], r.Intn(80))
			e, err := parser.ParseFilter(src)
			if err != nil {
				panic(err)
			}
			subs[h] = append(subs[h], e)
		}
	}
	return subs
}

// ruleSet flattens rules to a sorted multiset of "filter: action"
// strings — placement equivalence ignores rule-ID numbering.
func ruleSet(rules []*subscription.Rule) []string {
	out := make([]string, len(rules))
	for i, r := range rules {
		out[i] = fmt.Sprintf("%s: %s", r.Filter, r.Action)
	}
	sort.Strings(out)
	return out
}

// TestPlacementMatchesAlgorithm1 is the routing property test: for
// random subscription sets, the reconciler's per-filter placement
// (access port + down-port closure + TR upsets + MR match-all) must
// produce exactly the per-switch rule sets of the batch Algorithm 1
// implementation, under both policies and with approximation on and
// off.
func TestPlacementMatchesAlgorithm1(t *testing.T) {
	net := topology.MustFatTree(4)
	r := rand.New(rand.NewSource(5))
	for _, policy := range []routing.Policy{routing.MemoryReduction, routing.TrafficReduction} {
		for _, alpha := range []int64{0, 10} {
			for trial := 0; trial < 5; trial++ {
				subs := randomSubs(r, len(net.Hosts), 3)
				ropts := routing.Options{Policy: policy, Alpha: alpha}
				rec, err := NewReconcilerWith(net, itchSpec, WithRouting(ropts))
				if err != nil {
					t.Fatal(err)
				}
				for h, exprs := range subs {
					for _, e := range exprs {
						if _, _, err := rec.AddFilter(h, e); err != nil {
							t.Fatal(err)
						}
					}
				}
				res, err := routing.ComputeFatTree(net, subs, ropts)
				if err != nil {
					t.Fatal(err)
				}
				for sw := range net.Switches {
					want := ruleSet(res.RulesForSwitch(sw))
					got := ruleSet(rec.pendingRules(sw))
					if fmt.Sprint(got) != fmt.Sprint(want) {
						t.Fatalf("%v α=%d trial %d switch %s:\n got %v\nwant %v",
							policy, alpha, trial, net.Switches[sw].Name, got, want)
					}
				}
			}
		}
	}
}

// pendingRules returns the registered rule set of a switch regardless
// of whether Compile has run (test helper: placement-only view).
func (r *Reconciler) pendingRules(sw int) []*subscription.Rule {
	sc := r.switches[sw]
	out := make([]*subscription.Rule, 0, len(sc.places))
	for _, pr := range sc.places {
		out = append(out, pr.rule)
	}
	return out
}

// drain compiles every switch's registered-but-uncompiled rules (test
// helper for synchronous Reconciler use).
func drainAll(t *testing.T, rec *Reconciler, ops []RuleOp) map[int]*CompileResult {
	t.Helper()
	bySwitch := make(map[int][]RuleOp)
	for _, op := range ops {
		bySwitch[op.Switch] = append(bySwitch[op.Switch], op)
	}
	out := make(map[int]*CompileResult)
	for sw, swOps := range bySwitch {
		res, err := rec.Compile(sw, swOps)
		if err != nil {
			t.Fatalf("Compile(%d): %v", sw, err)
		}
		out[sw] = res
	}
	return out
}

// TestIncrementalFewerWrites is the acceptance-criteria assertion:
// applying a single-subscription update through the incremental path
// must issue strictly fewer table-entry writes on every affected switch
// than tearing down and reinstalling the full program.
func TestIncrementalFewerWrites(t *testing.T) {
	net := topology.MustFatTree(4)
	r := rand.New(rand.NewSource(11))
	rec, err := NewReconcilerWith(net, itchSpec,
		WithRouting(routing.Options{Policy: routing.TrafficReduction}))
	if err != nil {
		t.Fatal(err)
	}
	var ops []RuleOp
	for h, exprs := range randomSubs(r, len(net.Hosts), 4) {
		for _, e := range exprs {
			_, o, err := rec.AddFilter(h, e)
			if err != nil {
				t.Fatal(err)
			}
			ops = append(ops, o...)
		}
	}
	drainAll(t, rec, ops)
	before := make(map[int]int)
	for sw := range net.Switches {
		before[sw] = rec.Program(sw).TotalEntries()
	}

	_, addOps, err := rec.AddFilter(3, filter(t, "stock == NVDA and price > 42"))
	if err != nil {
		t.Fatal(err)
	}
	if len(addOps) == 0 {
		t.Fatal("single new subscription produced no rule ops")
	}
	for sw, res := range drainAll(t, rec, addOps) {
		writes := res.AddedEntries + res.RemovedEntries
		full := before[sw] + res.Program.TotalEntries()
		if writes >= full {
			t.Errorf("switch %s: delta writes %d not < full reinstall %d",
				net.Switches[sw].Name, writes, full)
		}
		if res.AddedEntries == 0 {
			t.Errorf("switch %s: update installed no entries", net.Switches[sw].Name)
		}
	}
}

// recordingInstaller counts installs and can fail the first N attempts.
type recordingInstaller struct {
	installs atomic.Int64
	prog     atomic.Pointer[compiler.Program]
}

func (ri *recordingInstaller) Install(p *compiler.Program) error {
	ri.installs.Add(1)
	ri.prog.Store(p)
	return nil
}

func newServiceForTest(t *testing.T, net *topology.Network, opts ...Option) (*Service, []*recordingInstaller) {
	t.Helper()
	ris := make([]*recordingInstaller, len(net.Switches))
	installers := make([]Installer, len(net.Switches))
	for i := range ris {
		ris[i] = &recordingInstaller{}
		installers[i] = ris[i]
	}
	svc, err := New(net, itchSpec, append(opts, WithInstallers(installers...))...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc, ris
}

// TestServiceChurnMatchesBatchDeploy drives randomized subscribe /
// unsubscribe churn through the async service and asserts the final
// per-switch programs are semantically identical to a from-scratch
// batch deployment of the surviving subscriptions.
func TestServiceChurnMatchesBatchDeploy(t *testing.T) {
	net := topology.MustFatTree(4)
	r := rand.New(rand.NewSource(23))
	svc, ris := newServiceForTest(t, net,
		WithRouting(routing.Options{Policy: routing.TrafficReduction, Alpha: 10}))
	stocks := []string{"GOOGL", "MSFT", "AAPL", "FB"}
	type liveFilter struct{ host, id int }
	var live []liveFilter
	exprByKey := make(map[string]subscription.Expr)
	liveExprs := make(map[int]map[int]subscription.Expr) // host → id → expr
	for step := 0; step < 120; step++ {
		if len(live) > 0 && r.Intn(3) == 0 {
			i := r.Intn(len(live))
			lf := live[i]
			live = append(live[:i], live[i+1:]...)
			if _, err := svc.Unsubscribe(lf.host, []int{lf.id}); err != nil {
				t.Fatalf("step %d: Unsubscribe: %v", step, err)
			}
			delete(liveExprs[lf.host], lf.id)
		} else {
			h := r.Intn(len(net.Hosts))
			src := fmt.Sprintf("stock == %s and price > %d", stocks[r.Intn(len(stocks))], r.Intn(80))
			e, ok := exprByKey[src]
			if !ok {
				e = filter(t, src)
				exprByKey[src] = e
			}
			_, ids, err := svc.Subscribe(h, []subscription.Expr{e})
			if err != nil {
				t.Fatalf("step %d: Subscribe: %v", step, err)
			}
			live = append(live, liveFilter{host: h, id: ids[0]})
			if liveExprs[h] == nil {
				liveExprs[h] = make(map[int]subscription.Expr)
			}
			liveExprs[h][ids[0]] = e
		}
	}
	svc.Quiesce()

	subs := make([][]subscription.Expr, len(net.Hosts))
	for h := range subs {
		ids := make([]int, 0, len(liveExprs[h]))
		for id := range liveExprs[h] {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			subs[h] = append(subs[h], liveExprs[h][id])
		}
	}
	res, err := routing.ComputeFatTree(net, subs, svc.cfg.Routing)
	if err != nil {
		t.Fatal(err)
	}
	for sw := range net.Switches {
		batch, err := compiler.Compile(itchSpec, res.RulesForSwitch(sw), compiler.Options{})
		if err != nil {
			t.Fatal(err)
		}
		inst := ris[sw].prog.Load()
		if inst == nil {
			if batch.TotalEntries() == 0 {
				continue
			}
			t.Fatalf("switch %s: no program installed but batch has %d entries",
				net.Switches[sw].Name, batch.TotalEntries())
		}
		for trial := 0; trial < 40; trial++ {
			m := msg(stocks[r.Intn(len(stocks))], int64(r.Intn(100)), 1)
			want := batch.Eval(m, nil).Key()
			got := inst.Eval(m, nil).Key()
			if got != want {
				t.Fatalf("switch %s: live program %s != batch %s on %s",
					net.Switches[sw].Name, got, want, m)
			}
		}
	}
	snap := svc.Stats()
	if snap.Applied != snap.Events {
		t.Errorf("applied %d != events %d", snap.Applied, snap.Events)
	}
	if snap.Failures != 0 {
		t.Errorf("unexpected failures: %+v", snap)
	}
	if snap.Latency.N == 0 || snap.Latency.P99 <= 0 {
		t.Errorf("no latency recorded: %+v", snap.Latency)
	}
	if snap.Keeps == 0 {
		t.Errorf("no entry reuse recorded across churn: %+v", snap)
	}
}

// TestRetryBackoff injects apply failures and checks the worker retries
// with backoff until success, and fails the event after MaxRetries.
func TestRetryBackoff(t *testing.T) {
	net := topology.MustFatTree(4)
	var fails atomic.Int64
	fails.Store(3)
	svc, ris := newServiceForTest(t, net,
		WithRouting(routing.Options{Policy: routing.TrafficReduction}),
		WithRetry(1, 100, 8),
		WithApplyHook(func(sw, attempt int) error {
			if fails.Add(-1) >= 0 {
				return errors.New("injected apply fault")
			}
			return nil
		}))
	ev, _, err := svc.Subscribe(0, []subscription.Expr{filter(t, "stock == GOOGL")})
	if err != nil {
		t.Fatal(err)
	}
	<-ev.Done()
	if ev.Err() != nil {
		t.Fatalf("event failed despite retries: %v", ev.Err())
	}
	snap := svc.Stats()
	if snap.Retries < 3 {
		t.Errorf("retries = %d, want >= 3", snap.Retries)
	}
	var installed int64
	for _, ri := range ris {
		installed += ri.installs.Load()
	}
	if installed == 0 {
		t.Error("nothing installed after retries")
	}

	// Permanent fault: the event must fail and report it.
	fails.Store(1 << 30)
	ev2, _, err := svc.Subscribe(1, []subscription.Expr{filter(t, "stock == MSFT")})
	if err != nil {
		t.Fatal(err)
	}
	<-ev2.Done()
	if !errors.Is(ev2.Err(), ErrApplyFailed) {
		t.Errorf("event error = %v, want ErrApplyFailed", ev2.Err())
	}
	if svc.Stats().Failures == 0 {
		t.Error("failure not counted")
	}
}

// TestDriftFallback forces the drift threshold low and checks the
// fail-safe full recompile triggers while keeping programs correct.
func TestDriftFallback(t *testing.T) {
	net := topology.MustFatTree(4)
	svc, _ := newServiceForTest(t, net,
		WithRouting(routing.Options{Policy: routing.TrafficReduction}),
		WithDrift(0.01))
	stocks := []string{"GOOGL", "MSFT", "AAPL"}
	var ids []int
	for i := 0; i < 12; i++ {
		_, got, err := svc.Subscribe(0, []subscription.Expr{
			filter(t, fmt.Sprintf("stock == %s and price > %d", stocks[i%3], i*7)),
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, got...)
	}
	for _, id := range ids[:6] {
		if _, err := svc.Unsubscribe(0, []int{id}); err != nil {
			t.Fatal(err)
		}
	}
	svc.Quiesce()
	if snap := svc.Stats(); snap.Fallbacks == 0 {
		t.Errorf("no drift fallback under threshold 0.01: %+v", snap)
	}
	m := msg("MSFT", 99, 1)
	sw, _ := net.Access(0)
	if got := svc.Program(sw).Eval(m, nil).Key(); got == (subscription.ActionSet{}).Key() {
		t.Errorf("matching message forwards nowhere after fallback: %q", got)
	}
}

// TestQueueBackpressure checks MaxPending bounds the in-flight events.
func TestQueueBackpressure(t *testing.T) {
	net := topology.MustFatTree(4)
	svc, _ := newServiceForTest(t, net,
		WithRouting(routing.Options{Policy: routing.TrafficReduction}),
		WithQueueDepth(2))
	for i := 0; i < 40; i++ {
		if _, _, err := svc.Subscribe(i%len(net.Hosts), []subscription.Expr{
			filter(t, fmt.Sprintf("price > %d", i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	svc.Quiesce()
	snap := svc.Stats()
	if snap.PeakQueueDepth > 2 {
		t.Errorf("peak queue depth %d exceeds MaxPending 2", snap.PeakQueueDepth)
	}
	if snap.Applied != snap.Events {
		t.Errorf("applied %d != events %d", snap.Applied, snap.Events)
	}
}

// TestUnsubscribeErrors checks classified error paths.
func TestUnsubscribeErrors(t *testing.T) {
	net := topology.MustFatTree(4)
	svc, _ := newServiceForTest(t, net,
		WithRouting(routing.Options{Policy: routing.TrafficReduction}))
	if _, err := svc.Unsubscribe(0, []int{99}); !errors.Is(err, ErrUnknownFilter) {
		t.Errorf("Unsubscribe(unknown) = %v, want ErrUnknownFilter", err)
	}
	_, ids, err := svc.Subscribe(0, []subscription.Expr{filter(t, "stock == GOOGL")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Unsubscribe(1, ids); !errors.Is(err, ErrUnknownFilter) {
		t.Errorf("cross-host Unsubscribe = %v, want ErrUnknownFilter", err)
	}
	if _, _, err := svc.Subscribe(len(net.Hosts)+5, []subscription.Expr{
		filter(t, "stock == AAPL"),
	}); !errors.Is(err, ErrBadHost) {
		t.Errorf("Subscribe(bad host) = %v, want ErrBadHost", err)
	}
}

// TestParallelismThreading: Config.Parallelism reaches the per-switch
// compiler options (unless the caller pinned Compiler.Parallelism
// itself), and a service configured with a worker fan-out converges to
// the same per-switch programs as a sequential one under identical
// churn — including drift-fallback full rebuilds, which take the
// parallel normalization path.
func TestParallelismThreading(t *testing.T) {
	cfg := Config{Parallelism: 3}.withDefaults()
	if got := cfg.Compiler.Parallelism; got != 3 {
		t.Fatalf("Compiler.Parallelism = %d, want 3 (threaded from Config.Parallelism)", got)
	}
	pinned := Config{Parallelism: 3, Compiler: compiler.Options{Parallelism: 2}}.withDefaults()
	if got := pinned.Compiler.Parallelism; got != 2 {
		t.Fatalf("Compiler.Parallelism = %d, want the explicit 2 to win", got)
	}

	net := topology.MustFatTree(4)
	run := func(parallelism int) *Service {
		svc, _ := newServiceForTest(t, net,
			WithRouting(routing.Options{Policy: routing.TrafficReduction}),
			WithDrift(0.01), // force full rebuilds through the parallel compile path
			WithParallelism(parallelism))
		stocks := []string{"GOOGL", "MSFT", "AAPL"}
		var ids []int
		for i := 0; i < 12; i++ {
			_, got, err := svc.Subscribe(i%4, []subscription.Expr{
				filter(t, fmt.Sprintf("stock == %s and price > %d", stocks[i%3], i*7)),
			})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, got...)
		}
		for _, id := range ids[:4] {
			if _, err := svc.Unsubscribe(id%4, []int{id}); err != nil {
				t.Fatal(err)
			}
		}
		svc.Quiesce()
		return svc
	}
	seq := run(1)
	par := run(4)
	for sw := range net.Switches {
		want := seq.Program(sw).Canonical().String()
		got := par.Program(sw).Canonical().String()
		if got != want {
			t.Errorf("switch %d: parallel service program differs from sequential", sw)
		}
	}
}

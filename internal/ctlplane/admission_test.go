package ctlplane

import (
	"errors"
	"fmt"
	"testing"

	"camus/internal/analysis/fitcheck"
	"camus/internal/compiler"
	"camus/internal/routing"
	"camus/internal/subscription"
	"camus/internal/topology"
)

// tightBudget is a pipeline model small enough that a handful of
// filters exhausts the access switch's headroom, so admission paths
// are exercised with a few dozen subscribes.
func tightBudget() fitcheck.Budget {
	return fitcheck.Budget{
		Stages:          8,
		StageSRAMBytes:  512,
		StageTCAMBytes:  1024,
		StageKeyBits:    512,
		MaxTableSplit:   1,
		MulticastGroups: 65536,
		Registers:       4,
		RecircPasses:    0,
	}
}

// netState captures everything an admission reject must leave
// untouched: the filter registry, the per-switch live program pointers
// (identity — no install may even re-point an identical program), and
// the covering forests.
func netState(svc *Service, net *topology.Network) string {
	progs := make([]*compiler.Program, len(net.Switches))
	for i := range net.Switches {
		progs[i] = svc.rec.Program(i)
	}
	entries, obligations := svc.rec.CoverStats()
	return fmt.Sprintf("filters=%v progs=%p... %v cover=%d/%d",
		svc.rec.HostFilters(), progs[0], progs, entries, obligations)
}

// netValidate runs the full symbolic delivery verifier over the
// service's current cut.
func netValidate(t *testing.T, svc *Service, net *topology.Network) {
	t.Helper()
	progs := make([]*compiler.Program, len(net.Switches))
	for i := range net.Switches {
		progs[i] = svc.rec.Program(i)
	}
	v := NetcheckValidator(net, itchSpec, 0)
	if err := v(progs, svc.rec.HostFilters()); err != nil {
		t.Fatalf("netcheck validation failed: %v", err)
	}
}

// TestAdmissionRejectLeavesStateUntouched is the acceptance churn run:
// with admission enabled on a tight budget, subscribes are driven until
// one is rejected; the reject must leave the registry, the forests, and
// every live program untouched (snapshot-equal), with the deployment
// netcheck-certified both before and after the reject.
func TestAdmissionRejectLeavesStateUntouched(t *testing.T) {
	for _, covering := range []bool{false, true} {
		t.Run(fmt.Sprintf("covering=%v", covering), func(t *testing.T) {
			net := topology.MustFatTree(4)
			model := fitcheck.NewModelWith(tightBudget())
			opts := []Option{
				WithRouting(routing.Options{Policy: routing.TrafficReduction}),
				WithAdmission(model),
			}
			if covering {
				opts = append(opts, WithCovering(0))
			}
			svc, _ := newServiceForTest(t, net, opts...)

			// Load one host until admission trips. Disjoint price
			// equalities make every filter a fresh table entry on the
			// access switch even under covering (no filter implies
			// another, so the forests elide nothing).
			host, rejected := 1, false
			var accepted int
			for i := 0; i < 200 && !rejected; i++ {
				ev, _, err := svc.Subscribe(host, []subscription.Expr{
					filter(t, fmt.Sprintf("stock == GOOGL and price == %d", i)),
				})
				switch {
				case err == nil:
					accepted++
					<-ev.Done()
					if eerr := ev.Err(); eerr != nil {
						t.Fatalf("subscribe %d applied with error: %v", i, eerr)
					}
				case errors.Is(err, ErrAdmissionRejected):
					rejected = true
				default:
					t.Fatalf("subscribe %d: unexpected error: %v", i, err)
				}
			}
			if !rejected {
				t.Fatal("admission never rejected under the tight budget")
			}
			if accepted == 0 {
				t.Fatal("admission rejected the very first subscribe; budget too tight to test state preservation")
			}

			svc.Quiesce()
			netValidate(t, svc, net)
			before := netState(svc, net)

			// The oversized delta: admission must refuse it atomically.
			_, _, err := svc.Subscribe(host, []subscription.Expr{
				filter(t, "stock == MSFT and price > 1 and shares > 2"),
			})
			if !errors.Is(err, ErrAdmissionRejected) {
				t.Fatalf("oversized subscribe: got %v, want ErrAdmissionRejected", err)
			}

			if after := netState(svc, net); after != before {
				t.Errorf("admission reject mutated control-plane state:\nbefore: %s\nafter:  %s", before, after)
			}
			netValidate(t, svc, net)

			snap := svc.Stats()
			if !snap.Admission {
				t.Error("Snapshot.Admission = false with WithAdmission set")
			}
			if snap.AdmissionChecks < int64(accepted)+1 {
				t.Errorf("AdmissionChecks = %d, want ≥ %d", snap.AdmissionChecks, accepted+1)
			}
			if snap.AdmissionRejects < 2 {
				t.Errorf("AdmissionRejects = %d, want ≥ 2 (churn trip + oversized delta)", snap.AdmissionRejects)
			}
			// The churn stopped when headroom dropped below the
			// per-subscribe estimate, so the gauge must read nearly
			// empty — but never negative (the admitted state fits).
			if snap.FitHeadroomEntries < 0 || snap.FitHeadroomEntries >= 4 {
				t.Errorf("FitHeadroomEntries = %d, want in [0,4) after the churn trip", snap.FitHeadroomEntries)
			}
			if snap.FitStageSRAMPct <= 0 {
				t.Errorf("FitStageSRAMPct = %g, want > 0", snap.FitStageSRAMPct)
			}
		})
	}
}

// TestAdmissionAcceptsWithinHeadroom: with the default Tofino-class
// budget the itch workload never trips admission, and the snapshot
// counters record the checks.
func TestAdmissionAcceptsWithinHeadroom(t *testing.T) {
	net := topology.MustFatTree(4)
	svc, _ := newServiceForTest(t, net,
		WithRouting(routing.Options{Policy: routing.TrafficReduction}),
		WithAdmission(fitcheck.NewModel()),
	)
	for i := 0; i < 10; i++ {
		ev, _, err := svc.Subscribe(i%len(net.Hosts), []subscription.Expr{
			filter(t, fmt.Sprintf("price > %d", i)),
		})
		if err != nil {
			t.Fatalf("subscribe %d rejected under the default budget: %v", i, err)
		}
		<-ev.Done()
	}
	snap := svc.Stats()
	if snap.AdmissionChecks != 10 || snap.AdmissionRejects != 0 {
		t.Errorf("checks/rejects = %d/%d, want 10/0", snap.AdmissionChecks, snap.AdmissionRejects)
	}
}

// TestPredictAddMirrorsAddFilter: the non-mutating prediction equals
// the rule ops AddFilter actually emits, across both placement modes.
func TestPredictAddMirrorsAddFilter(t *testing.T) {
	for _, covering := range []bool{false, true} {
		t.Run(fmt.Sprintf("covering=%v", covering), func(t *testing.T) {
			net := topology.MustFatTree(4)
			opts := []Option{WithRouting(routing.Options{Policy: routing.TrafficReduction})}
			if covering {
				opts = append(opts, WithCovering(0))
			}
			rec, err := NewReconcilerWith(net, itchSpec, opts...)
			if err != nil {
				t.Fatal(err)
			}
			exprs := []string{
				"stock == GOOGL and price > 10",
				"stock == GOOGL and price > 10", // duplicate: refcount/cover, no new rules
				"stock == GOOGL",                // covers the first two under covering
				"price > 50",
			}
			for h, src := range exprs {
				e := filter(t, src)
				pred, err := rec.PredictAdd(h%2, e)
				if err != nil {
					t.Fatal(err)
				}
				_, ops, err := rec.AddFilter(h%2, e)
				if err != nil {
					t.Fatal(err)
				}
				got := make(map[int]int)
				for _, op := range ops {
					if op.Add {
						got[op.Switch]++
					}
				}
				for sw, n := range got {
					if pred[sw] < n {
						t.Errorf("filter %q: switch %d predicted %d adds, actual %d (prediction must be an upper bound)",
							src, sw, pred[sw], n)
					}
				}
				if !covering {
					// Full mode is exact, not just an upper bound.
					if fmt.Sprint(normalizeZero(pred)) != fmt.Sprint(normalizeZero(got)) {
						t.Errorf("filter %q: predicted %v, actual %v", src, pred, got)
					}
				}
			}
		})
	}
}

func normalizeZero(m map[int]int) map[int]int {
	out := make(map[int]int)
	for k, v := range m {
		if v != 0 {
			out[k] = v
		}
	}
	return out
}

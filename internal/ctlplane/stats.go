package ctlplane

import (
	"fmt"
	"time"

	"camus/internal/pipeline"
	"camus/internal/stats"
)

// LatencyStats summarizes end-to-end update latency: event submission →
// the moment every affected switch runs the new epoch.
type LatencyStats struct {
	N                  int
	P50, P90, P99, Max time.Duration
}

// Snapshot is an immutable view of the control plane's counters, in the
// style of pipeline.StatsSnapshot. Obtain one via Service.Stats().
type Snapshot struct {
	// Events counts submitted subscription changes (Subscribes +
	// Unsubscribes + the initial policy flush); Applied counts those
	// fully rolled out.
	Events       int64
	Subscribes   int64
	Unsubscribes int64
	Applied      int64
	// Batches counts per-switch compile+install rounds; with coalescing
	// many events share one batch.
	Batches int64
	// Installs / Deletes / Keeps are the accumulated table-entry deltas
	// across all switches (§V "table entry re-use").
	Installs int64
	Deletes  int64
	Keeps    int64
	// Retries counts backed-off apply attempts; Fallbacks counts
	// drift-triggered full recompiles; Failures counts batches that
	// exhausted retries, failed to compile, or failed validation.
	Retries   int64
	Fallbacks int64
	Failures  int64
	// Validations counts post-compile translation-validation runs
	// (Config.Validator); ValidationFailures counts batches rejected as
	// disequivalent — those never reach the installer.
	Validations        int64
	ValidationFailures int64
	// NetValidations counts network-wide delivery-validation runs at
	// quiescent points (Config.NetValidator); NetValidationFailures
	// counts runs that found an invariant violation.
	NetValidations        int64
	NetValidationFailures int64
	// QueueDepth is the current number of in-flight events;
	// PeakQueueDepth the high-water mark (bounded by MaxPending).
	QueueDepth     int
	PeakQueueDepth int
	// Covering telemetry (WithCovering; all zero when covering is
	// off): CoverEntries is the number of installed forest roots —
	// the actual table rules — and CoverObligations the number of
	// covered filters elided from the tables. Full installation would
	// use CoverEntries+CoverObligations rules; CoverSavingsRatio is
	// the elided fraction CoverObligations / (CoverEntries +
	// CoverObligations).
	// CoveredAdds/CoverCaptures/CoverPromotions are lifetime totals
	// (cover.Counters): installs elided because an existing root
	// covered the new filter, entries removed because a broader new
	// root captured them, and children re-installed by uncoverings.
	// Monotone — they prove covering did work even when the live set
	// momentarily holds no implication pair and the gauges read zero.
	Covering          bool
	CoverEntries      int
	CoverObligations  int
	CoverSavingsRatio float64
	CoveredAdds       int64
	CoverCaptures     int64
	CoverPromotions   int64
	// Admission telemetry (WithAdmission; all zero when admission is
	// off): AdmissionChecks counts static fit checks run before
	// registry mutation, AdmissionRejects the subscribes they refused.
	// FitHeadroomEntries is the minimum remaining entry headroom across
	// all switches with an installed program (the tightest table on the
	// tightest switch); FitStageSRAMPct the fullest stage SRAM bank
	// anywhere in the deployment.
	Admission          bool
	AdmissionChecks    int64
	AdmissionRejects   int64
	FitHeadroomEntries int
	FitStageSRAMPct    float64
	// Leaf-cache telemetry (the dataplane hot-rule cache, DESIGN.md
	// §16; all zero unless some installer exposes an enabled cache):
	// cumulative hit/miss/fill counters plus the admissible-leaf and
	// capacity gauges, summed across installed switches.
	LeafCache      bool
	LeafHits       int64
	LeafMisses     int64
	LeafFills      int64
	LeafAdmissible int
	LeafCapacity   int
	// Latency is the event→all-switches-applied distribution.
	Latency LatencyStats
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Snapshot {
	snap := Snapshot{
		Events:       s.events.Load(),
		Subscribes:   s.subscribes.Load(),
		Unsubscribes: s.unsubscribes.Load(),
		Applied:      s.applied.Load(),
		Batches:      s.batches.Load(),
		Installs:     s.installs.Load(),
		Deletes:      s.deletes.Load(),
		Keeps:        s.keeps.Load(),
		Retries:      s.retries.Load(),
		Fallbacks:    s.fallbacks.Load(),
		Failures:     s.failures.Load(),

		Validations:        s.validations.Load(),
		ValidationFailures: s.validationFailures.Load(),

		NetValidations:        s.netValidations.Load(),
		NetValidationFailures: s.netValidationFailures.Load(),
	}
	s.mu.Lock()
	snap.QueueDepth = s.inflight
	snap.PeakQueueDepth = s.peakDepth
	if s.rec.Covering() {
		snap.Covering = true
		snap.CoverEntries, snap.CoverObligations = s.rec.CoverStats()
		if total := snap.CoverEntries + snap.CoverObligations; total > 0 {
			snap.CoverSavingsRatio = float64(snap.CoverObligations) / float64(total)
		}
		ctr := s.rec.CoverTotals()
		snap.CoveredAdds = ctr.CoveredAdds
		snap.CoverCaptures = ctr.Captures
		snap.CoverPromotions = ctr.Promotions
	}
	lat := append([]float64(nil), s.latency...)
	s.mu.Unlock()
	if m := s.cfg.Admission; m != nil {
		snap.Admission = true
		snap.AdmissionChecks = s.admissionChecks.Load()
		snap.AdmissionRejects = s.admissionRejects.Load()
		// Program loads are atomic, so the gauges are safe concurrent
		// with the apply workers; layouts are cached per program.
		first := true
		for _, sw := range s.cfg.Net.Switches {
			l := m.Layout(s.rec.Program(sw.ID))
			if l == nil {
				continue
			}
			if h := l.MinHeadroom(); first || h < snap.FitHeadroomEntries {
				snap.FitHeadroomEntries = h
			}
			if pct := l.MaxStageSRAMPct(); pct > snap.FitStageSRAMPct {
				snap.FitStageSRAMPct = pct
			}
			first = false
		}
	}
	// Leaf-cache gauges: probe the installers — *pipeline.Switch
	// satisfies the interface structurally; compile-only switches and
	// foreign installers are skipped.
	for _, ins := range s.cfg.Installers {
		lc, ok := ins.(interface{ LeafCacheStats() pipeline.LeafCacheStats })
		if !ok {
			continue
		}
		st := lc.LeafCacheStats()
		if !st.Enabled {
			continue
		}
		snap.LeafCache = true
		snap.LeafHits += st.Hits
		snap.LeafMisses += st.Misses
		snap.LeafFills += st.Fills
		snap.LeafAdmissible += st.Admissible
		snap.LeafCapacity += st.Capacity
	}
	if len(lat) > 0 {
		var sample stats.Sample
		for _, v := range lat {
			sample.Add(v)
		}
		snap.Latency = LatencyStats{
			N:   sample.N(),
			P50: time.Duration(sample.Percentile(50)),
			P90: time.Duration(sample.Percentile(90)),
			P99: time.Duration(sample.Percentile(99)),
			Max: time.Duration(sample.Max()),
		}
	}
	return snap
}

func (l LatencyStats) String() string {
	return fmt.Sprintf("n=%d p50=%v p90=%v p99=%v max=%v", l.N, l.P50, l.P90, l.P99, l.Max)
}

package ctlplane

import (
	"fmt"

	"camus/internal/analysis/prove"
	"camus/internal/compiler"
	"camus/internal/subscription"
	"camus/internal/topology"
)

// Validator certifies a freshly compiled program for one switch against
// the rule set it was compiled from, before the program is installed.
// The rules slice is the switch's surviving registry sorted by rule ID
// (Reconciler.Rules); the validator must not retain it.
type Validator func(sw int, prog *compiler.Program, rules []*subscription.Rule) error

// ErrValidationFailed wraps prover findings surfaced by a Validator so
// callers can distinguish disequivalence from install failures.
var ErrValidationFailed = fmt.Errorf("ctlplane: epoch validation failed")

// ProveValidator builds a translation-validation hook from the
// independent symbolic prover (internal/analysis/prove): every sampled
// epoch swap is re-proved equivalent to the switch's live rule set
// before it reaches the installer. The prover options mirror the
// Reconciler's per-switch compile options exactly — upstream semantics
// with stateful predicates active only on host-facing ports — so a
// clean reconciler always certifies clean.
//
// maxPaths bounds each symbolic exploration (0 uses the prover
// default). A budget overflow is reported as a validation error too:
// under churn the per-switch programs are small, so an exhausted
// budget signals a misconfigured limit rather than an intractable
// table, and silently skipping it would weaken the certificate.
func ProveValidator(net *topology.Network, maxPaths int) Validator {
	return func(sw int, prog *compiler.Program, rules []*subscription.Rule) error {
		if sw < 0 || sw >= len(net.Switches) {
			return fmt.Errorf("%w: switch %d out of range", ErrValidationFailed, sw)
		}
		swc := net.Switches[sw]
		opts := prove.Options{
			LastHop: false,
			LastHopPort: func(port int) bool {
				return port >= 0 && port < len(swc.Ports) && swc.Ports[port].Kind == topology.PeerHost
			},
			MaxPaths: maxPaths,
		}
		ir, err := prog.ProveIR()
		if err != nil {
			return fmt.Errorf("%w: switch %d: export IR: %v", ErrValidationFailed, sw, err)
		}
		res, err := prove.Check(ir, rules, opts)
		if err != nil {
			return fmt.Errorf("%w: switch %d: %v", ErrValidationFailed, sw, err)
		}
		if res.Ok() {
			return nil
		}
		if res.Overflowed && len(res.Findings) == 0 {
			return fmt.Errorf("%w: switch %d: symbolic budget exhausted after %d paths",
				ErrValidationFailed, sw, res.Paths)
		}
		f := res.Findings[0]
		return fmt.Errorf("%w: switch %d: %d findings; first: %s (rule %d): %s",
			ErrValidationFailed, sw, len(res.Findings), f.Kind, f.RuleID, f.Message)
	}
}

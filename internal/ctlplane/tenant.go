package ctlplane

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"camus/internal/stats"
	"camus/internal/subscription"
)

// Classified errors for the tenancy layer.
var (
	// ErrUnknownTenant is returned for operations on a tenant that was
	// never created (and auto-creation is off).
	ErrUnknownTenant = errors.New("ctlplane: unknown tenant")
	// ErrQuotaExceeded is returned when a subscribe would push a tenant
	// past its MaxSubscriptions quota.
	ErrQuotaExceeded = errors.New("ctlplane: subscription quota exceeded")
	// ErrRateLimited is returned when a tenant's token bucket is empty
	// (EventsPerSec admission control).
	ErrRateLimited = errors.New("ctlplane: event rate limit exceeded")
)

// TenantQuota bounds one tenant's control-plane footprint. Zero fields
// mean unlimited.
type TenantQuota struct {
	// MaxSubscriptions caps the tenant's live filter count.
	MaxSubscriptions int `json:"max_subscriptions,omitempty"`
	// EventsPerSec is the sustained admission rate for Subscribe /
	// Unsubscribe calls, enforced by a token bucket.
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// Burst is the bucket depth (default: EventsPerSec rounded up, at
	// least 1).
	Burst int `json:"burst,omitempty"`
}

func (q TenantQuota) burst() float64 {
	if q.Burst > 0 {
		return float64(q.Burst)
	}
	if q.EventsPerSec >= 1 {
		return q.EventsPerSec
	}
	return 1
}

// TenantSnapshot is an immutable view of one tenant's counters, in the
// style of Snapshot.
type TenantSnapshot struct {
	Name  string      `json:"name"`
	Quota TenantQuota `json:"quota"`
	// Live is the tenant's current subscription count; Pending counts
	// admitted events waiting in the fairness queue.
	Live    int `json:"live"`
	Pending int `json:"pending"`
	// Covered counts live subscriptions whose access-port entry is
	// elided under covering mode (0 when covering is off).
	Covered int `json:"covered"`
	// Subscribes / Unsubscribes count dispatched events since start
	// (replayed history is not re-counted).
	Subscribes   int64 `json:"subscribes"`
	Unsubscribes int64 `json:"unsubscribes"`
	// RejectedQuota / RejectedRate count admissions refused by the
	// MaxSubscriptions quota and the token bucket respectively.
	RejectedQuota int64 `json:"rejected_quota"`
	RejectedRate  int64 `json:"rejected_rate"`
	// Latency is the tenant's admission→all-switches-applied
	// distribution (queue wait under round-robin fairness included).
	Latency LatencyStats `json:"-"`
}

// tenantOp is one admitted event waiting for its round-robin dispatch
// slot. exprs != nil marks a subscribe; otherwise ids names the
// filters to remove.
type tenantOp struct {
	host  int
	exprs []subscription.Expr
	ids   []int
	enq   time.Time

	ev     *Event
	outIDs []int
	err    error
	done   chan struct{}
}

// tenant is one namespace's registry + quota state.
type tenant struct {
	name  string
	quota TenantQuota

	tokens     float64
	lastRefill time.Time

	live     map[int]int // filter ID → host
	reserved int         // admitted subscribes not yet dispatched

	pending []*tenantOp

	subscribes    int64
	unsubscribes  int64
	rejectedQuota int64
	rejectedRate  int64
	latency       stats.Sample
}

// Tenants layers per-tenant namespaces, quota/rate admission, and
// round-robin fairness on top of a Service: every admitted event waits
// in its tenant's FIFO and a single dispatcher hands one event per
// tenant per turn to the underlying service, so a hostile neighbor
// flooding its own queue cannot starve other tenants of apply
// bandwidth — its backlog grows, theirs drains at the shared
// round-robin rate.
//
// With an attached event Log every dispatched event is appended (in
// dispatch order, the filter-ID assignment order) before the caller is
// released, and Replay reconstructs the full registry — refcounts and
// per-switch programs — from the log on startup.
type Tenants struct {
	svc        *Service
	def        TenantQuota
	autoCreate bool
	log        *Log

	mu       sync.Mutex
	byName   map[string]*tenant
	order    []string
	rrPos    int
	pendingN int
	logErr   error

	notify chan struct{}
	closed chan struct{}
	wg     sync.WaitGroup
}

// TenantOption configures the tenancy layer at construction time.
type TenantOption func(*Tenants)

// WithDefaultQuota sets the quota applied to auto-created tenants and
// CreateTenant calls with a zero quota.
func WithDefaultQuota(q TenantQuota) TenantOption {
	return func(t *Tenants) { t.def = q }
}

// WithAutoCreate creates tenants on first use with the default quota
// (the multi-thousand-tenant soak shape); without it, operations on
// unknown tenants fail with ErrUnknownTenant.
func WithAutoCreate() TenantOption {
	return func(t *Tenants) { t.autoCreate = true }
}

// WithEventLog attaches the durable event log. Call Replay before
// serving traffic to reconstruct prior state.
func WithEventLog(l *Log) TenantOption {
	return func(t *Tenants) { t.log = l }
}

// NewTenants builds the tenancy layer over a running Service and
// starts its dispatcher. Close stops the dispatcher; the Service and
// Log remain the caller's to close.
func NewTenants(svc *Service, opts ...TenantOption) *Tenants {
	t := &Tenants{
		svc:    svc,
		byName: make(map[string]*tenant),
		notify: make(chan struct{}, 1),
		closed: make(chan struct{}),
	}
	for _, fn := range opts {
		fn(t)
	}
	t.wg.Add(1)
	go t.dispatch()
	return t
}

// CreateTenant registers (or re-quotas) a tenant. A zero quota takes
// the layer default. The log record is appended under the same lock
// hold that mutates the registry, so log order always matches logical
// order (a quota update can never be logged after a "sub" it preceded).
func (t *Tenants) CreateTenant(name string, q TenantQuota) error {
	if name == "" {
		return fmt.Errorf("%w: empty name", ErrUnknownTenant)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tn := t.createLocked(name, q)
	return t.appendLogLocked(&LogRecord{Op: "tenant", Tenant: name, Quota: &tn.quota})
}

// createLocked registers name if absent and applies q (zero → layer
// default) to the tenant.
func (t *Tenants) createLocked(name string, q TenantQuota) *tenant {
	if q == (TenantQuota{}) {
		q = t.def
	}
	tn, ok := t.byName[name]
	if !ok {
		tn = &tenant{
			name:       name,
			live:       make(map[int]int),
			tokens:     q.burst(),
			lastRefill: time.Now(),
		}
		t.byName[name] = tn
		t.order = append(t.order, name)
	}
	tn.quota = q
	// Re-quota never refills the bucket — a tenant re-PUTting itself
	// before each subscribe must not mint fresh tokens. Existing
	// tokens only clamp down when the new burst is smaller.
	if b := q.burst(); tn.tokens > b {
		tn.tokens = b
	}
	return tn
}

// lookup resolves a tenant for an operation, auto-creating when
// enabled. created reports whether an auto-create happened (the caller
// must append its "tenant" log record before releasing t.mu, so the
// record provably precedes any of the tenant's event records).
func (t *Tenants) lookup(name string) (tn *tenant, created bool, err error) {
	if name == "" {
		return nil, false, fmt.Errorf("%w: empty name", ErrUnknownTenant)
	}
	tn, ok := t.byName[name]
	if ok {
		return tn, false, nil
	}
	if !t.autoCreate {
		return nil, false, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	return t.createLocked(name, TenantQuota{}), true, nil
}

// admit runs the token-bucket check for one event.
func (tn *tenant) admit(now time.Time) bool {
	if tn.quota.EventsPerSec <= 0 {
		return true
	}
	burst := tn.quota.burst()
	tn.tokens += now.Sub(tn.lastRefill).Seconds() * tn.quota.EventsPerSec
	if tn.tokens > burst {
		tn.tokens = burst
	}
	tn.lastRefill = now
	if tn.tokens < 1 {
		return false
	}
	tn.tokens--
	return true
}

// Subscribe admits one subscribe event for a tenant, waits for its
// round-robin dispatch slot, and returns the tracking event plus the
// assigned filter IDs. The call blocks while the tenant's queued
// events wait their turn — that wait is the fairness backpressure a
// flooding tenant feels.
func (t *Tenants) Subscribe(tenantName string, host int, exprs []subscription.Expr) (*Event, []int, error) {
	if len(exprs) == 0 {
		return nil, nil, fmt.Errorf("ctlplane: subscribe with no filters")
	}
	t.mu.Lock()
	tn, created, err := t.lookup(tenantName)
	if err != nil {
		t.mu.Unlock()
		return nil, nil, err
	}
	// Log the auto-create while still holding the lock: the dispatcher
	// cannot pop (and log) this tenant's first event until we release,
	// so the "tenant" record lands first even if this very call is
	// rejected below.
	if created {
		t.appendLogLocked(&LogRecord{Op: "tenant", Tenant: tenantName, Quota: &tn.quota})
	}
	if !tn.admit(time.Now()) {
		tn.rejectedRate++
		t.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: tenant %q over %.3g events/sec", ErrRateLimited, tenantName, tn.quota.EventsPerSec)
	}
	if q := tn.quota.MaxSubscriptions; q > 0 && len(tn.live)+tn.reserved+len(exprs) > q {
		tn.rejectedQuota++
		t.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: tenant %q at %d/%d subscriptions", ErrQuotaExceeded, tenantName, len(tn.live), q)
	}
	tn.reserved += len(exprs)
	op := &tenantOp{host: host, exprs: exprs, enq: time.Now(), done: make(chan struct{})}
	t.enqueueLocked(tn, op)
	t.mu.Unlock()
	return t.wait(op)
}

// Unsubscribe admits one unsubscribe event for filters the tenant
// owns.
func (t *Tenants) Unsubscribe(tenantName string, host int, ids []int) (*Event, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("ctlplane: unsubscribe with no ids")
	}
	t.mu.Lock()
	tn, created, err := t.lookup(tenantName)
	if err != nil {
		t.mu.Unlock()
		return nil, err
	}
	if created {
		t.appendLogLocked(&LogRecord{Op: "tenant", Tenant: tenantName, Quota: &tn.quota})
	}
	if !tn.admit(time.Now()) {
		tn.rejectedRate++
		t.mu.Unlock()
		return nil, fmt.Errorf("%w: tenant %q over %.3g events/sec", ErrRateLimited, tenantName, tn.quota.EventsPerSec)
	}
	// Cross-tenant removal is refused before it can reach the shared
	// reconciler: the IDs must be this tenant's, on this host.
	for _, id := range ids {
		if h, ok := tn.live[id]; !ok || h != host {
			t.mu.Unlock()
			return nil, fmt.Errorf("%w: id %d not held by tenant %q host %d", ErrUnknownFilter, id, tenantName, host)
		}
	}
	op := &tenantOp{host: host, ids: ids, enq: time.Now(), done: make(chan struct{})}
	t.enqueueLocked(tn, op)
	t.mu.Unlock()
	ev, _, err := t.wait(op)
	return ev, err
}

func (t *Tenants) enqueueLocked(tn *tenant, op *tenantOp) {
	tn.pending = append(tn.pending, op)
	t.pendingN++
	select {
	case t.notify <- struct{}{}:
	default:
	}
}

func (t *Tenants) wait(op *tenantOp) (*Event, []int, error) {
	select {
	case <-op.done:
		return op.ev, op.outIDs, op.err
	case <-t.closed:
		return nil, nil, ErrClosed
	}
}

// next pops the next event in round-robin tenant order, or nil when
// every queue is empty.
func (t *Tenants) next() (*tenant, *tenantOp) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pendingN == 0 || len(t.order) == 0 {
		return nil, nil
	}
	for i := 0; i < len(t.order); i++ {
		tn := t.byName[t.order[(t.rrPos+i)%len(t.order)]]
		if len(tn.pending) == 0 {
			continue
		}
		op := tn.pending[0]
		tn.pending = tn.pending[1:]
		t.pendingN--
		t.rrPos = (t.rrPos + i + 1) % len(t.order)
		return tn, op
	}
	return nil, nil
}

// dispatch is the fairness loop: one admitted event per tenant per
// turn reaches the underlying service, in tenant round-robin order.
func (t *Tenants) dispatch() {
	defer t.wg.Done()
	for {
		select {
		case <-t.closed:
			return
		default:
		}
		tn, op := t.next()
		if op == nil {
			select {
			case <-t.closed:
				return
			case <-t.notify:
				continue
			}
		}
		t.run(tn, op)
	}
}

// run executes one dispatched event against the service, appends its
// log record, and releases the waiting caller.
func (t *Tenants) run(tn *tenant, op *tenantOp) {
	if op.exprs != nil {
		ev, ids, err := t.svc.Subscribe(op.host, op.exprs)
		t.mu.Lock()
		tn.reserved -= len(op.exprs)
		if err == nil {
			tn.subscribes++
			for _, id := range ids {
				tn.live[id] = op.host
			}
		}
		t.mu.Unlock()
		if err == nil {
			srcs := make([]string, len(op.exprs))
			for i, e := range op.exprs {
				srcs[i] = e.String()
			}
			t.appendLog(&LogRecord{Op: "sub", Tenant: tn.name, Host: op.host, Filters: srcs, IDs: ids})
			t.observe(tn, op.enq, ev)
		}
		op.ev, op.outIDs, op.err = ev, ids, err
	} else {
		ev, err := t.svc.Unsubscribe(op.host, op.ids)
		t.mu.Lock()
		if err == nil {
			tn.unsubscribes++
			for _, id := range op.ids {
				delete(tn.live, id)
			}
		}
		t.mu.Unlock()
		if err == nil {
			t.appendLog(&LogRecord{Op: "unsub", Tenant: tn.name, Host: op.host, IDs: op.ids})
			t.observe(tn, op.enq, ev)
		}
		op.ev, op.err = ev, err
	}
	close(op.done)
}

// observe records the tenant's admission→applied latency once the
// event's last switch swaps epochs.
func (t *Tenants) observe(tn *tenant, enq time.Time, ev *Event) {
	if ev == nil {
		return
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		select {
		case <-ev.Done():
		case <-t.closed:
			return
		}
		lat := float64(time.Since(enq).Nanoseconds())
		t.mu.Lock()
		tn.latency.Add(lat)
		t.mu.Unlock()
	}()
}

// appendLog writes one record to the attached log, remembering the
// first failure for the health surface (state and log diverging is a
// serve-stopping condition, not a silent one).
func (t *Tenants) appendLog(rec *LogRecord) error {
	if t.log == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.appendLogLocked(rec)
}

// appendLogLocked is appendLog for callers already holding t.mu.
// Appending under the lock is the ordering guarantee for registry
// mutations: the dispatcher (which logs event records lock-free, in
// dispatch order) cannot observe the mutation until the lock drops,
// by which point its log record is durable-ordered behind this one.
func (t *Tenants) appendLogLocked(rec *LogRecord) error {
	if t.log == nil {
		return nil
	}
	if err := t.log.Append(rec); err != nil {
		if t.logErr == nil {
			t.logErr = err
		}
		return err
	}
	return nil
}

// Err reports the first event-log append failure, if any.
func (t *Tenants) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.logErr
}

// Replay reconstructs tenants, quotas, live filter registries, and —
// through the underlying service — per-switch refcounts and programs
// from the attached event log. It must run before concurrent use
// (typically right after NewTenants, before serving). Filter IDs are
// reassigned by the reconciler in log order and must match the logged
// IDs exactly; a mismatch means the log does not belong to this
// topology/spec and replay aborts.
func (t *Tenants) Replay() (int, error) {
	if t.log == nil {
		return 0, nil
	}
	parser := subscription.NewParser(t.svc.Spec())
	n, err := t.log.Replay(func(rec *LogRecord) error {
		switch rec.Op {
		case "tenant":
			var q TenantQuota
			if rec.Quota != nil {
				q = *rec.Quota
			}
			t.mu.Lock()
			t.createLocked(rec.Tenant, q)
			t.mu.Unlock()
			return nil
		case "sub":
			t.mu.Lock()
			tn, ok := t.byName[rec.Tenant]
			if !ok && t.autoCreate {
				// Logs written before the tenant-record-first ordering
				// guarantee may carry an event ahead of its tenant
				// record; under auto-create, mint the tenant exactly as
				// the live path would have.
				tn, ok = t.createLocked(rec.Tenant, TenantQuota{}), true
			}
			t.mu.Unlock()
			if !ok {
				return fmt.Errorf("ctlplane: replay seq %d: subscribe for unknown tenant %q", rec.Seq, rec.Tenant)
			}
			exprs := make([]subscription.Expr, len(rec.Filters))
			for i, src := range rec.Filters {
				e, perr := parser.ParseFilter(src)
				if perr != nil {
					return fmt.Errorf("ctlplane: replay seq %d: parse %q: %w", rec.Seq, src, perr)
				}
				exprs[i] = e
			}
			_, ids, serr := t.svc.Subscribe(rec.Host, exprs)
			if serr != nil {
				return fmt.Errorf("ctlplane: replay seq %d: %w", rec.Seq, serr)
			}
			if len(ids) != len(rec.IDs) {
				return fmt.Errorf("ctlplane: replay seq %d: %d ids reassigned, log has %d", rec.Seq, len(ids), len(rec.IDs))
			}
			for i := range ids {
				if ids[i] != rec.IDs[i] {
					return fmt.Errorf("ctlplane: replay seq %d: filter ID drift (%d != logged %d) — log is not from this deployment", rec.Seq, ids[i], rec.IDs[i])
				}
			}
			t.mu.Lock()
			for _, id := range ids {
				tn.live[id] = rec.Host
			}
			t.mu.Unlock()
			return nil
		case "unsub":
			t.mu.Lock()
			tn, ok := t.byName[rec.Tenant]
			if !ok && t.autoCreate {
				tn, ok = t.createLocked(rec.Tenant, TenantQuota{}), true
			}
			t.mu.Unlock()
			if !ok {
				return fmt.Errorf("ctlplane: replay seq %d: unsubscribe for unknown tenant %q", rec.Seq, rec.Tenant)
			}
			if _, serr := t.svc.Unsubscribe(rec.Host, rec.IDs); serr != nil {
				return fmt.Errorf("ctlplane: replay seq %d: %w", rec.Seq, serr)
			}
			t.mu.Lock()
			for _, id := range rec.IDs {
				delete(tn.live, id)
			}
			t.mu.Unlock()
			return nil
		default:
			return fmt.Errorf("ctlplane: replay seq %d: unknown op %q", rec.Seq, rec.Op)
		}
	})
	t.svc.Quiesce()
	return n, err
}

// Snapshot returns one tenant's counters.
func (t *Tenants) Snapshot(name string) (TenantSnapshot, error) {
	covered := t.svc.CoveredFilters() // before t.mu: Service.mu is never taken under t.mu
	t.mu.Lock()
	defer t.mu.Unlock()
	tn, ok := t.byName[name]
	if !ok {
		return TenantSnapshot{}, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	return t.snapshotLocked(tn, covered), nil
}

// Snapshots returns every tenant's counters, sorted by name.
func (t *Tenants) Snapshots() []TenantSnapshot {
	covered := t.svc.CoveredFilters() // before t.mu: Service.mu is never taken under t.mu
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TenantSnapshot, 0, len(t.byName))
	for _, name := range t.order {
		out = append(out, t.snapshotLocked(t.byName[name], covered))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (t *Tenants) snapshotLocked(tn *tenant, covered map[int]bool) TenantSnapshot {
	snap := TenantSnapshot{
		Name:          tn.name,
		Quota:         tn.quota,
		Live:          len(tn.live),
		Pending:       len(tn.pending),
		Subscribes:    tn.subscribes,
		Unsubscribes:  tn.unsubscribes,
		RejectedQuota: tn.rejectedQuota,
		RejectedRate:  tn.rejectedRate,
	}
	for id := range tn.live {
		if covered[id] {
			snap.Covered++
		}
	}
	if tn.latency.N() > 0 {
		snap.Latency = LatencyStats{
			N:   tn.latency.N(),
			P50: time.Duration(tn.latency.Percentile(50)),
			P90: time.Duration(tn.latency.Percentile(90)),
			P99: time.Duration(tn.latency.Percentile(99)),
			Max: time.Duration(tn.latency.Max()),
		}
	}
	return snap
}

// LiveFilters returns a tenant's live filter IDs grouped by host.
func (t *Tenants) LiveFilters(name string) (map[int][]int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tn, ok := t.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	out := make(map[int][]int)
	for id, host := range tn.live {
		out[host] = append(out[host], id)
	}
	for _, ids := range out {
		sort.Ints(ids)
	}
	return out, nil
}

// TenantCount returns the number of registered tenants.
func (t *Tenants) TenantCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byName)
}

// Close stops the dispatcher and releases queued callers with
// ErrClosed. The underlying Service and Log are not closed.
func (t *Tenants) Close() {
	select {
	case <-t.closed:
	default:
		close(t.closed)
	}
	t.wg.Wait()
}

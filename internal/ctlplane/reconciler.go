// Package ctlplane is the live control plane the paper's runtime-update
// story requires (§V memoized recompilation, §VIII-G3 rule-update
// latency): a long-running service that turns individual subscribe /
// unsubscribe events into per-switch table-entry deltas and applies
// them to running switches through the atomic epoch Install, instead of
// batch-redeploying the whole network.
//
// The package splits into a synchronous core and an asynchronous
// service. Reconciler (this file) owns the routing-placement registry —
// which (switch, port, filter) rules each host subscription expands to
// under Algorithm 1 — plus one compiler.Incremental per switch, and
// compiles coalesced rule batches into entry deltas. Service
// (service.go) layers per-switch apply workers, bounded queues, retry
// with backoff, and update-latency telemetry on top.
package ctlplane

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"camus/internal/compiler"
	"camus/internal/routing"
	"camus/internal/routing/cover"
	"camus/internal/spec"
	"camus/internal/subscription"
	"camus/internal/topology"
)

// Classified errors for subscription maintenance.
var (
	// ErrUnknownFilter is returned when unsubscribing a filter ID that
	// is not installed (or belongs to a different host).
	ErrUnknownFilter = errors.New("ctlplane: filter not installed")
	// ErrBadHost is returned for a host ID outside the topology.
	ErrBadHost = errors.New("ctlplane: host out of range")
)

// RuleOp is one per-switch rule mutation derived from a subscription
// event: install Rule (Add true) or delete RuleID (Add false).
type RuleOp struct {
	Switch int
	Add    bool
	Rule   *subscription.Rule // set when Add
	RuleID int
}

// CompileResult is one switch's coalesced recompilation outcome.
type CompileResult struct {
	*compiler.Update
	// Full reports that delta drift crossed the threshold and the
	// switch's engine was rebuilt from its live rule registry (the
	// fail-safe full recompile).
	Full bool
}

// filterRec is one live host subscription.
type filterRec struct {
	id     int
	host   int
	expr   subscription.Expr
	places []place
}

// place is one (switch, port, expression) the filter occupies.
type place struct {
	sw   int
	port int
	expr subscription.Expr
}

// placeRec refcounts one distinct (port, expression) rule on a switch —
// RulesForSwitch collapses duplicate filters per port, and the
// incremental path must agree entry-for-entry with that collapse.
type placeRec struct {
	ruleID int
	refs   int
	rule   *subscription.Rule
}

// swCompiler is the per-switch compile state. The registry fields
// (places, nextRule) are guarded by the Reconciler mutex in Service use;
// the Incremental engine and churn accounting are touched only from the
// owning switch's apply worker (single writer).
type swCompiler struct {
	id       int
	inc      *compiler.Incremental
	places   map[string]*placeRec // "port|expr" → refcounted rule
	rules    map[int]*subscription.Rule
	nextRule int
	churn    int // entries added+removed since the last full rebuild
	// forests holds, under covering mode, the per-port subsumption
	// forests (registry state: mutated only under the Service lock,
	// like places). Installed rules exist exactly for forest roots;
	// covered filters are tracked as refcounted obligations with no
	// table entry.
	forests map[int]*cover.Forest
	// prog is the last compiled program, published atomically so the
	// Service can read it while the owning worker recompiles.
	prog atomic.Pointer[compiler.Program]
}

// Reconciler owns the placement registry and the per-switch incremental
// compilers. It is not internally synchronized: the Service serializes
// registry mutations under its own lock and dedicates each swCompiler
// to one worker; single-threaded callers (controller.Resubscribe) need
// no locking at all.
type Reconciler struct {
	net   *topology.Network
	sp    *spec.Spec
	ropts routing.Options
	copts compiler.Options
	// Drift is the fallback threshold: when a switch's cumulative delta
	// entries since its last full rebuild exceed Drift × its current
	// table size, Compile rebuilds the engine from the live rules.
	drift float64

	// subtree[s][h] reports host h is reachable through switch s's
	// down/host ports (Algorithm 1's subtree sets, on hosts).
	subtree [][]bool

	filters    map[int]*filterRec
	nextFilter int
	switches   []*swCompiler

	// covering enables subsumption-aware state reduction: per-port
	// forests elide entries for filters implied by a broader filter on
	// the same port, and uncovering re-installs promoted children in
	// the same coalesced batch (no delivery gap). im is the shared
	// implication oracle.
	covering bool
	im       *cover.Implier
}

// DefaultDrift is the fallback threshold used when Options leave it 0:
// rebuild after cumulative deltas exceed 4× the table size.
const DefaultDrift = 4.0

// NewReconciler builds an empty reconciler for a network.
//
// Deprecated: use NewReconcilerWith with functional options; the
// five-positional-argument form remains for one release.
func NewReconciler(net *topology.Network, sp *spec.Spec, ropts routing.Options, copts compiler.Options, drift float64) (*Reconciler, error) {
	return newReconciler(Config{Net: net, Spec: sp, Routing: ropts, Compiler: copts, Drift: drift})
}

// newReconciler builds an empty reconciler for a network from a
// resolved Config. Every switch starts with an empty program except
// for the MR policy's static constant-true up-port rule, which is
// installed on the first Compile.
func newReconciler(cfg Config) (*Reconciler, error) {
	net, sp, ropts, copts, drift := cfg.Net, cfg.Spec, cfg.Routing, cfg.Compiler, cfg.Drift
	if drift <= 0 {
		drift = DefaultDrift
	}
	r := &Reconciler{
		net:      net,
		sp:       sp,
		ropts:    ropts,
		copts:    copts,
		drift:    drift,
		filters:  make(map[int]*filterRec),
		covering: cfg.Covering,
	}
	if r.covering {
		r.im = cover.NewImplier(sp, cfg.CoverMaxNodes)
	}
	r.computeSubtrees()
	for _, s := range net.Switches {
		sw := s
		co := copts
		// Stateful predicates run only at the hop before the subscriber
		// (§II), exactly as controller.Deploy configures batch compiles.
		co.LastHop = false
		co.LastHopPort = func(port int) bool {
			return port >= 0 && port < len(sw.Ports) && sw.Ports[port].Kind == topology.PeerHost
		}
		inc, err := compiler.NewIncremental(sp, co)
		if err != nil {
			return nil, fmt.Errorf("ctlplane: switch %s: %w", s.Name, err)
		}
		sc := &swCompiler{
			id:     s.ID,
			inc:    inc,
			places: make(map[string]*placeRec),
			rules:  make(map[int]*subscription.Rule),
		}
		sc.prog.Store(inc.Program())
		r.switches = append(r.switches, sc)
	}
	// MR installs the constant-true filter on every up port (Algorithm 1
	// lines 13–15); it is permanent, so pin its refcount.
	if ropts.Policy == routing.MemoryReduction {
		for _, s := range net.Switches {
			if len(s.UpPorts()) > 0 {
				r.retain(s.ID, routing.UpPort, subscription.True)
			}
		}
	}
	return r, nil
}

// computeSubtrees mirrors Algorithm 1's bottom-up subtree accumulation,
// tracking member hosts instead of filter sets.
func (r *Reconciler) computeSubtrees() {
	n := r.net
	r.subtree = make([][]bool, len(n.Switches))
	for i := range r.subtree {
		r.subtree[i] = make([]bool, len(n.Hosts))
	}
	for h := range n.Hosts {
		sw, _ := n.Access(h)
		r.subtree[sw][h] = true
	}
	for _, layer := range []topology.Layer{topology.ToR, topology.Agg} {
		for _, s := range n.LayerSwitches(layer) {
			for _, up := range s.UpPorts() {
				dst := r.subtree[up.PeerSwitch]
				for h, in := range r.subtree[s.ID] {
					if in {
						dst[h] = true
					}
				}
			}
		}
	}
}

// placements enumerates every (switch, port, expression) a host filter
// occupies under the configured policy: the exact expression at the
// access port, the α-approximation on each down port whose subtree
// contains the host, and — under TR — on the logical up port of every
// switch whose subtree does not (upset(s) holds exactly the filters not
// below s).
func (r *Reconciler) placements(host int, exact subscription.Expr) []place {
	approx := routing.Approximate(exact, r.ropts.Alpha)
	asw, aport := r.net.Access(host)
	out := []place{{sw: asw, port: aport, expr: exact}}
	for _, s := range r.net.Switches {
		for _, p := range s.Ports {
			if p.Kind == topology.PeerDown && r.subtree[p.PeerSwitch][host] {
				out = append(out, place{sw: s.ID, port: p.Index, expr: approx})
			}
		}
		if r.ropts.Policy == routing.TrafficReduction &&
			len(s.UpPorts()) > 0 && !r.subtree[s.ID][host] {
			out = append(out, place{sw: s.ID, port: routing.UpPort, expr: approx})
		}
	}
	return out
}

func placeKey(port int, expr subscription.Expr) string {
	return fmt.Sprintf("%d|%s", port, expr)
}

// retain bumps the refcount of (switch, port, expr), returning the rule
// ops the transition implies: in full mode an install on 0→1, under
// covering whatever the port forest decides (nothing when the filter is
// covered, an install plus captured-root deletes when it becomes a new
// root).
func (r *Reconciler) retain(sw, port int, expr subscription.Expr) []RuleOp {
	sc := r.switches[sw]
	if r.covering {
		return r.coverOps(sc, port, sc.forest(r.im, port).Add(expr))
	}
	key := placeKey(port, expr)
	if pr, ok := sc.places[key]; ok {
		pr.refs++
		return nil
	}
	rule := &subscription.Rule{
		ID:     sc.nextRule,
		Filter: expr,
		Action: subscription.FwdAction(port),
	}
	sc.nextRule++
	sc.places[key] = &placeRec{ruleID: rule.ID, refs: 1, rule: rule}
	return []RuleOp{{Switch: sw, Add: true, Rule: rule, RuleID: rule.ID}}
}

// release drops one reference, returning the implied ops: a delete on
// 1→0 in full mode; under covering an uncovering (delete of the root
// plus installs for every promoted child, in one batch so delivery
// never gaps) when the released filter was a forest root.
func (r *Reconciler) release(sw, port int, expr subscription.Expr) []RuleOp {
	sc := r.switches[sw]
	if r.covering {
		return r.coverOps(sc, port, sc.forest(r.im, port).Remove(expr))
	}
	key := placeKey(port, expr)
	pr, ok := sc.places[key]
	if !ok {
		return nil
	}
	pr.refs--
	if pr.refs > 0 {
		return nil
	}
	delete(sc.places, key)
	return []RuleOp{{Switch: sw, Add: false, RuleID: pr.ruleID}}
}

// forest returns the port's subsumption forest, creating it on first
// use (covering mode only).
func (sc *swCompiler) forest(im *cover.Implier, port int) *cover.Forest {
	if sc.forests == nil {
		sc.forests = make(map[int]*cover.Forest)
	}
	f := sc.forests[port]
	if f == nil {
		f = cover.NewForest(im)
		sc.forests[port] = f
	}
	return f
}

// coverOps translates a forest delta into rule ops against the
// installed-entry registry. Uninstalls precede installs; both halves of
// an uncovering travel in one slice and therefore land in one coalesced
// Compile batch — a single atomic epoch swap with no window in which a
// still-subscribed filter lacks a covering entry.
func (r *Reconciler) coverOps(sc *swCompiler, port int, d cover.Delta) []RuleOp {
	if d.Empty() {
		return nil
	}
	ops := make([]RuleOp, 0, len(d.Install)+len(d.Uninstall))
	for _, e := range d.Uninstall {
		key := placeKey(port, e)
		pr := sc.places[key]
		if pr == nil {
			continue // forest and registry out of sync; nothing to delete
		}
		delete(sc.places, key)
		ops = append(ops, RuleOp{Switch: sc.id, Add: false, RuleID: pr.ruleID})
	}
	for _, e := range d.Install {
		rule := &subscription.Rule{
			ID:     sc.nextRule,
			Filter: e,
			Action: subscription.FwdAction(port),
		}
		sc.nextRule++
		sc.places[placeKey(port, e)] = &placeRec{ruleID: rule.ID, refs: 1, rule: rule}
		ops = append(ops, RuleOp{Switch: sc.id, Add: true, Rule: rule, RuleID: rule.ID})
	}
	return ops
}

// AddFilter registers one host subscription and returns its filter ID
// plus the per-switch rule ops the event expands to (empty when every
// placement was already covered by an identical filter).
// PredictAdd is the non-mutating mirror of AddFilter: it returns, per
// switch, how many new table rules adding the filter would install,
// without touching the registry, refcounts, or forests. The admission
// layer (Config.Admission) calls it before AddFilter so an oversized
// delta is rejected with zero state to roll back. The count is
// conservative under covering: a new root's captures could *shrink*
// other tables, but admission only needs an upper bound.
func (r *Reconciler) PredictAdd(host int, expr subscription.Expr) (map[int]int, error) {
	if host < 0 || host >= len(r.net.Hosts) {
		return nil, fmt.Errorf("%w: %d", ErrBadHost, host)
	}
	adds := make(map[int]int)
	for _, pl := range r.placements(host, expr) {
		sc := r.switches[pl.sw]
		if r.covering {
			if sc.forests != nil {
				if f := sc.forests[pl.port]; f != nil && (f.Covered(pl.expr) || f.Refs(pl.expr) > 0) {
					continue // elided by an existing root, or already placed
				}
			}
			adds[pl.sw]++
			continue
		}
		if pr, ok := sc.places[placeKey(pl.port, pl.expr)]; ok && pr.refs > 0 {
			continue // refcounted: no new rule
		}
		adds[pl.sw]++
	}
	return adds, nil
}

func (r *Reconciler) AddFilter(host int, expr subscription.Expr) (int, []RuleOp, error) {
	if host < 0 || host >= len(r.net.Hosts) {
		return 0, nil, fmt.Errorf("%w: %d", ErrBadHost, host)
	}
	f := &filterRec{id: r.nextFilter, host: host, expr: expr, places: r.placements(host, expr)}
	r.nextFilter++
	r.filters[f.id] = f
	var ops []RuleOp
	for _, pl := range f.places {
		ops = append(ops, r.retain(pl.sw, pl.port, pl.expr)...)
	}
	return f.id, ops, nil
}

// RemoveFilter unregisters a subscription by filter ID. host guards
// against cross-host removal; pass -1 to skip the ownership check.
func (r *Reconciler) RemoveFilter(host, id int) ([]RuleOp, error) {
	f, ok := r.filters[id]
	if !ok || (host >= 0 && f.host != host) {
		return nil, fmt.Errorf("%w: id %d", ErrUnknownFilter, id)
	}
	delete(r.filters, id)
	var ops []RuleOp
	for _, pl := range f.places {
		ops = append(ops, r.release(pl.sw, pl.port, pl.expr)...)
	}
	return ops, nil
}

// Filters returns the live filter IDs for a host (sorted).
func (r *Reconciler) Filters(host int) []int {
	var out []int
	for id, f := range r.filters {
		if f.host == host {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// FilterCount returns the number of live filters.
func (r *Reconciler) FilterCount() int { return len(r.filters) }

// HostFilters returns every live subscription with its host binding,
// sorted by filter ID — the ground truth a network-wide validator
// checks delivery against.
func (r *Reconciler) HostFilters() []HostFilter {
	out := make([]HostFilter, 0, len(r.filters))
	for id, f := range r.filters {
		out = append(out, HostFilter{ID: id, Host: f.host, Expr: f.expr})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Program returns a switch's current compiled program. Safe to call
// concurrently with Compile (atomic snapshot of the last publish).
func (r *Reconciler) Program(sw int) *compiler.Program { return r.switches[sw].prog.Load() }

// Rules returns a switch's live rule set sorted by rule ID (the
// canonical merge order).
func (r *Reconciler) Rules(sw int) []*subscription.Rule {
	sc := r.switches[sw]
	out := make([]*subscription.Rule, 0, len(sc.rules))
	for _, rule := range sc.rules {
		out = append(out, rule)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Compile applies a coalesced batch of rule ops to one switch's
// incremental engine and returns the resulting program + entry delta.
// When cumulative delta drift crosses the threshold — or the batched
// apply itself fails — it falls back to a full rebuild from the live
// rule registry. Ops for other switches are rejected.
func (r *Reconciler) Compile(sw int, ops []RuleOp) (*CompileResult, error) {
	sc := r.switches[sw]
	var add []*subscription.Rule
	var remove []int
	// A remove can name a rule added earlier in the same coalesced batch
	// (subscribe and unsubscribe of one filter queued together); the pair
	// cancels out instead of reaching the engine, which has never seen
	// the rule.
	pendingAdd := make(map[int]int) // rule ID → index into add
	for _, op := range ops {
		if op.Switch != sw {
			return nil, fmt.Errorf("ctlplane: op for switch %d applied to %d", op.Switch, sw)
		}
		if op.Add {
			pendingAdd[op.RuleID] = len(add)
			add = append(add, op.Rule)
			sc.rules[op.RuleID] = op.Rule
		} else {
			if i, ok := pendingAdd[op.RuleID]; ok {
				add[i] = nil
				delete(pendingAdd, op.RuleID)
			} else {
				remove = append(remove, op.RuleID)
			}
			delete(sc.rules, op.RuleID)
		}
	}
	live := add[:0]
	for _, rule := range add {
		if rule != nil {
			live = append(live, rule)
		}
	}
	add = live
	up, err := sc.inc.Apply(add, remove)
	if err != nil {
		// The engine may hold a partial batch; recover from the registry.
		res, ferr := r.FullRebuild(sw)
		if ferr != nil {
			return nil, fmt.Errorf("ctlplane: apply failed (%v); full rebuild failed: %w", err, ferr)
		}
		return res, nil
	}
	sc.churn += up.AddedEntries + up.RemovedEntries
	if float64(sc.churn) > r.drift*float64(max(up.Program.TotalEntries(), 1)) {
		res, ferr := r.FullRebuild(sw)
		if ferr != nil {
			return nil, ferr
		}
		// Report the incremental delta (what changed semantically); the
		// rebuilt program is structurally identical rule-for-rule.
		res.Update = up
		return res, nil
	}
	sc.prog.Store(up.Program)
	return &CompileResult{Update: up}, nil
}

// FullRebuild discards a switch's engine (and its accumulated memo
// tables) and recompiles the live rule registry from scratch — the
// drift fail-safe, also the recovery path after an apply error.
func (r *Reconciler) FullRebuild(sw int) (*CompileResult, error) {
	sc := r.switches[sw]
	s := r.net.Switches[sw]
	co := r.copts
	co.LastHop = false
	co.LastHopPort = func(port int) bool {
		return port >= 0 && port < len(s.Ports) && s.Ports[port].Kind == topology.PeerHost
	}
	inc, err := compiler.NewIncremental(r.sp, co)
	if err != nil {
		return nil, err
	}
	up, err := inc.Add(r.Rules(sw)...)
	if err != nil {
		return nil, fmt.Errorf("ctlplane: full rebuild of switch %d: %w", sw, err)
	}
	sc.inc = inc
	sc.churn = 0
	sc.prog.Store(up.Program)
	return &CompileResult{Update: up, Full: true}, nil
}

// Drift reports a switch's cumulative delta churn relative to its table
// size (diagnostics; ≥ the configured threshold triggers fallback).
func (r *Reconciler) Drift(sw int) float64 {
	sc := r.switches[sw]
	return float64(sc.churn) / float64(max(sc.inc.Program().TotalEntries(), 1))
}

// Covering reports whether subsumption-aware covering is enabled.
func (r *Reconciler) Covering() bool { return r.covering }

// CoverStats reports covering telemetry across every per-port forest:
// entries is the number of installed roots (actual table rules),
// obligations the number of covered filters elided from the tables.
// Full installation would use entries+obligations rules; both are 0
// when covering is off.
func (r *Reconciler) CoverStats() (entries, obligations int) {
	for _, sc := range r.switches {
		for _, f := range sc.forests {
			roots := f.Roots()
			entries += roots
			obligations += f.Size() - roots
		}
	}
	return entries, obligations
}

// CoverTotals sums the lifetime covering counters across every
// per-port forest — monotone evidence of covering activity that
// survives moments when the instantaneous gauges read zero.
func (r *Reconciler) CoverTotals() cover.Counters {
	var c cover.Counters
	for _, sc := range r.switches {
		for _, f := range sc.forests {
			ctr := f.Counters()
			c.CoveredAdds += ctr.CoveredAdds
			c.Captures += ctr.Captures
			c.Promotions += ctr.Promotions
		}
	}
	return c
}

// CoveredFilters returns the live filter IDs whose exact access-port
// entry is elided because a broader filter on the same port covers it
// (nil when covering is off).
func (r *Reconciler) CoveredFilters() map[int]bool {
	if !r.covering {
		return nil
	}
	out := make(map[int]bool)
	for id, f := range r.filters {
		pl := f.places[0] // the access placement is always first
		sc := r.switches[pl.sw]
		if fo := sc.forests[pl.port]; fo != nil && fo.Covered(pl.expr) {
			out[id] = true
		}
	}
	return out
}

package ctlplane

import (
	"time"

	"camus/internal/analysis/fitcheck"
	"camus/internal/compiler"
	"camus/internal/routing"
	"camus/internal/spec"
	"camus/internal/topology"
)

// Option configures the control plane at construction time, in the
// style of camus.SwitchOption: the resulting configuration is frozen
// into the Service (or Reconciler), so no caller can reach racy mutable
// state after start. Construct services with New and synchronous
// reconcilers with NewReconcilerWith; the Config struct and the
// positional NewReconciler remain only as deprecated shims.
type Option func(*Config)

// WithRouting selects the routing policy (MR/TR) and discretization α.
func WithRouting(ro routing.Options) Option {
	return func(c *Config) { c.Routing = ro }
}

// WithCompiler sets the per-switch compiler options (LastHop is forced
// per switch exactly as controller.Deploy does).
func WithCompiler(co compiler.Options) Option {
	return func(c *Config) { c.Compiler = co }
}

// WithParallelism bounds the worker fan-out inside each switch compile
// (0 = GOMAXPROCS); it is copied into the compiler options when those
// leave Parallelism unset.
func WithParallelism(n int) Option {
	return func(c *Config) { c.Parallelism = n }
}

// WithInstallers wires live apply targets by switch ID; nil entries
// leave a switch compile-only.
func WithInstallers(ins ...Installer) Option {
	return func(c *Config) { c.Installers = ins }
}

// WithQueueDepth bounds in-flight subscription events; Subscribe and
// Unsubscribe block when the queue is full (backpressure). Default
// 1024.
func WithQueueDepth(n int) Option {
	return func(c *Config) { c.MaxPending = n }
}

// WithRetry bounds the exponential backoff between apply attempts
// (base/max, ±50% jitter) and caps attempts per batch at maxRetries.
// Zero values keep the defaults (1ms / 100ms / 8).
func WithRetry(base, max time.Duration, maxRetries int) Option {
	return func(c *Config) {
		c.RetryBase = base
		c.RetryMax = max
		c.MaxRetries = maxRetries
	}
}

// WithDrift sets the full-recompile fallback threshold (see
// Reconciler); 0 means DefaultDrift.
func WithDrift(d float64) Option {
	return func(c *Config) { c.Drift = d }
}

// WithApplyHook runs fn before every install attempt — the
// fault-injection point for retry/backoff tests. Returning an error
// fails the attempt.
func WithApplyHook(fn func(sw, attempt int) error) Option {
	return func(c *Config) { c.ApplyHook = fn }
}

// WithValidator certifies each freshly compiled program against the
// switch's surviving rule set before the install (see ProveValidator).
// every samples validation under churn: each switch validates every
// Nth compiled batch (and always the first); values ≤ 1 validate every
// batch.
func WithValidator(v Validator, every int) Option {
	return func(c *Config) {
		c.Validator = v
		c.ValidateEvery = every
	}
}

// WithNetValidator certifies the whole deployment's delivery
// invariants at quiescent points (see NetcheckValidator): whenever the
// in-flight event count returns to zero, the per-switch programs and
// the live filter registry form a consistent cut that is handed to v.
// every samples the runs: every Nth quiescence (and always the first);
// values ≤ 1 validate every quiescence. Failures are counted in the
// Snapshot (NetValidationFailures) and surfaced by camusd's /healthz;
// they do not roll back installed epochs.
func WithNetValidator(v NetValidator, every int) Option {
	return func(c *Config) {
		c.NetValidator = v
		c.NetValidateEvery = every
	}
}

// WithCovering enables subsumption-aware state reduction: per (switch,
// port), filters implied by a broader filter already forwarding
// through the same port get no table entry of their own — they are
// tracked as refcounted covered obligations in a subsumption forest
// (BDD implication decides f ⊑ g). Unsubscribing a covering filter
// uncovers its children: the delete and their re-installs are emitted
// in one coalesced batch, so the atomic epoch swap leaves no window in
// which a still-subscribed filter lacks a covering entry. Delivery is
// provably unchanged — forwarding through a port is the union of its
// filters, and f ⊑ g makes f ∪ g = g — and `camusc netcheck -covering`
// certifies it end to end. maxNodes bounds each two-filter implication
// diagram (≤ 0 selects cover.DefaultMaxNodes); oversized queries
// conservatively count as "not implied".
func WithCovering(maxNodes int) Option {
	return func(c *Config) {
		c.Covering = true
		c.CoverMaxNodes = maxNodes
	}
}

// WithAdmission enables static resource admission: before any registry
// mutation, every Subscribe is fit-checked against the model — the
// predicted per-switch entry delta (Reconciler.PredictAdd ×
// fitcheck.EntryEstimate) must fit within each affected switch's
// remaining pipeline headroom (fitcheck.Model.Admit over the installed
// program's layout). Oversized deltas fail with ErrAdmissionRejected
// and leave the registry, forests, and installed programs untouched.
// Composes with WithCovering: filters the forests would elide predict
// zero new entries and pass through. Snapshot gains
// AdmissionChecks/AdmissionRejects counters plus the
// FitHeadroomEntries/FitStageSRAMPct gauges. Pass fitcheck.NewModel()
// for the default Tofino-class budget.
func WithAdmission(m *fitcheck.Model) Option {
	return func(c *Config) { c.Admission = m }
}

// WithSeed makes retry jitter reproducible (0 seeds from switch IDs
// only).
func WithSeed(seed int64) Option {
	return func(c *Config) { c.Seed = seed }
}

// New builds the control plane for a network and starts one apply
// worker per switch:
//
//	svc, err := ctlplane.New(net, spec,
//	    ctlplane.WithRouting(ropts),
//	    ctlplane.WithInstallers(sim.Installers()...),
//	    ctlplane.WithValidator(ctlplane.ProveValidator(net, 0), 16))
//
// Close must be called to stop the workers.
func New(net *topology.Network, sp *spec.Spec, opts ...Option) (*Service, error) {
	cfg := Config{Net: net, Spec: sp}
	for _, fn := range opts {
		fn(&cfg)
	}
	return newService(cfg)
}

// NewReconcilerWith builds the synchronous placement/compile core
// without the async Service on top (single-threaded callers such as
// controller.Resubscribe). Only WithRouting, WithCompiler,
// WithParallelism and WithDrift are meaningful here; the queue and
// retry options apply to the Service layer.
func NewReconcilerWith(net *topology.Network, sp *spec.Spec, opts ...Option) (*Reconciler, error) {
	cfg := Config{Net: net, Spec: sp}
	for _, fn := range opts {
		fn(&cfg)
	}
	return newReconciler(cfg.withDefaults())
}

package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"camus/internal/analysis/fitcheck"
	"camus/internal/compiler"
	"camus/internal/controller"
	"camus/internal/ctlplane"
	"camus/internal/ctlplane/server"
	"camus/internal/formats"
	"camus/internal/netsim"
	"camus/internal/routing"
	"camus/internal/subscription"
	"camus/internal/topology"
	"camus/internal/workload"
)

// envelope mirrors the unified report.Report JSON the daemon returns on
// every error path.
type envelope struct {
	Tool     string `json:"tool"`
	Findings []struct {
		Tool     string `json:"tool"`
		RuleID   int    `json:"rule"`
		Kind     string `json:"kind"`
		Severity string `json:"severity"`
		Message  string `json:"message"`
		RuleText string `json:"rule_text"`
	} `json:"findings"`
}

// newDaemon assembles a daemon over a fat-tree(4) netsim (so applies
// reach real pipeline switches) and fronts it with an httptest server.
func newDaemon(t *testing.T, opts ...server.Option) (*server.Daemon, *httptest.Server) {
	t.Helper()
	net := topology.MustFatTree(4)
	ropts := routing.Options{Policy: routing.TrafficReduction, Alpha: 10}
	dep, err := controller.Deploy(net, formats.ITCH,
		make([][]subscription.Expr, len(net.Hosts)), controller.Options{Routing: ropts})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := netsim.New(dep)
	if err != nil {
		t.Fatal(err)
	}
	sim.Workers = 2
	opts = append(opts, server.WithService(
		ctlplane.WithRouting(ropts),
		ctlplane.WithInstallers(sim.Installers()...),
		ctlplane.WithSeed(7)))
	d, err := server.New(net, formats.ITCH, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.Handler())
	t.Cleanup(func() { ts.Close(); d.Close() })
	return d, ts
}

// do issues one JSON request and returns status + raw body.
func do(t *testing.T, method, url string, body any) (int, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body == nil {
		rd = bytes.NewReader(nil)
	} else if raw, ok := body.([]byte); ok {
		rd = bytes.NewReader(raw)
	} else {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	return resp.StatusCode, out.Bytes()
}

// wantFinding asserts the response is the unified camusd error envelope
// with the expected kind.
func wantFinding(t *testing.T, raw []byte, kind string) envelope {
	t.Helper()
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("error body is not a report envelope: %v\n%s", err, raw)
	}
	if env.Tool != "camusd" || len(env.Findings) != 1 {
		t.Fatalf("envelope = tool %q with %d findings, want camusd with 1\n%s",
			env.Tool, len(env.Findings), raw)
	}
	f := env.Findings[0]
	if f.Kind != kind || f.Severity != "error" || f.RuleID != -1 {
		t.Errorf("finding = kind %q severity %q rule %d, want %q/error/-1",
			f.Kind, f.Severity, f.RuleID, kind)
	}
	return env
}

// TestHTTPGoldens walks the whole API surface: happy paths return the
// documented DTOs, error paths return the unified report.Finding
// envelope with the documented status codes.
func TestHTTPGoldens(t *testing.T) {
	_, ts := newDaemon(t)
	base := ts.URL

	// Tenant creation echoes the applied quota.
	status, raw := do(t, http.MethodPut, base+"/v1/tenants/acme",
		ctlplane.TenantQuota{MaxSubscriptions: 2})
	if status != http.StatusCreated {
		t.Fatalf("create tenant: status %d\n%s", status, raw)
	}
	var created struct {
		Name  string               `json:"name"`
		Quota ctlplane.TenantQuota `json:"quota"`
	}
	json.Unmarshal(raw, &created)
	if created.Name != "acme" || created.Quota.MaxSubscriptions != 2 {
		t.Errorf("created = %+v", created)
	}

	// Subscribe: IDs assigned, apply awaited, per-tenant snapshot sees it.
	status, raw = do(t, http.MethodPost, base+"/v1/tenants/acme/subscriptions",
		map[string]any{"host": 3, "filters": []string{"stock == GOOGL and price > 100", "stock == MSFT"}})
	if status != http.StatusOK {
		t.Fatalf("subscribe: status %d\n%s", status, raw)
	}
	var sub struct {
		Tenant  string `json:"tenant"`
		Host    int    `json:"host"`
		IDs     []int  `json:"ids"`
		Applied bool   `json:"applied"`
	}
	json.Unmarshal(raw, &sub)
	if sub.Tenant != "acme" || sub.Host != 3 || len(sub.IDs) != 2 || !sub.Applied {
		t.Errorf("subscribe response = %+v", sub)
	}

	status, raw = do(t, http.MethodGet, base+"/v1/tenants/acme/snapshot", nil)
	if status != http.StatusOK {
		t.Fatalf("snapshot: status %d", status)
	}
	var snap struct {
		Live    int           `json:"live"`
		Filters map[int][]int `json:"filters"`
	}
	json.Unmarshal(raw, &snap)
	if snap.Live != 2 || len(snap.Filters[3]) != 2 {
		t.Errorf("snapshot = %+v\n%s", snap, raw)
	}

	// Quota wall → 429 quota-exceeded.
	status, raw = do(t, http.MethodPost, base+"/v1/tenants/acme/subscriptions",
		map[string]any{"host": 0, "filters": []string{"stock == AAPL"}})
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-quota subscribe: status %d\n%s", status, raw)
	}
	wantFinding(t, raw, "quota-exceeded")

	// Unknown tenant → 404 unknown-tenant.
	status, raw = do(t, http.MethodPost, base+"/v1/tenants/ghost/subscriptions",
		map[string]any{"host": 0, "filters": []string{"stock == AAPL"}})
	if status != http.StatusNotFound {
		t.Fatalf("unknown tenant: status %d", status)
	}
	wantFinding(t, raw, "unknown-tenant")

	// Malformed filter → 400 parse-error carrying the offending source.
	bad := "stock === GOOGL"
	status, raw = do(t, http.MethodPost, base+"/v1/tenants/acme/subscriptions",
		map[string]any{"host": 0, "filters": []string{bad}})
	if status != http.StatusBadRequest {
		t.Fatalf("malformed filter: status %d\n%s", status, raw)
	}
	env := wantFinding(t, raw, "parse-error")
	if env.Findings[0].RuleText != bad {
		t.Errorf("parse-error rule_text = %q, want %q", env.Findings[0].RuleText, bad)
	}

	// Malformed JSON body → 400 bad-request.
	status, raw = do(t, http.MethodPost, base+"/v1/tenants/acme/subscriptions", []byte("{not json"))
	if status != http.StatusBadRequest {
		t.Fatalf("bad json: status %d", status)
	}
	wantFinding(t, raw, "bad-request")

	// Unsubscribing someone else's (or no one's) ID → 404 unknown-filter.
	status, raw = do(t, http.MethodDelete, base+"/v1/tenants/acme/subscriptions",
		map[string]any{"host": 3, "ids": []int{9999}})
	if status != http.StatusNotFound {
		t.Fatalf("unknown filter: status %d\n%s", status, raw)
	}
	wantFinding(t, raw, "unknown-filter")

	// Rate limiting → 429 rate-limited once the burst is spent.
	do(t, http.MethodPut, base+"/v1/tenants/spam", ctlplane.TenantQuota{EventsPerSec: 0.001, Burst: 1})
	do(t, http.MethodPost, base+"/v1/tenants/spam/subscriptions",
		map[string]any{"host": 1, "filters": []string{"stock == FB"}})
	status, raw = do(t, http.MethodPost, base+"/v1/tenants/spam/subscriptions",
		map[string]any{"host": 1, "filters": []string{"stock == HP"}})
	if status != http.StatusTooManyRequests {
		t.Fatalf("rate limit: status %d\n%s", status, raw)
	}
	wantFinding(t, raw, "rate-limited")

	// Unsubscribe happy path.
	status, raw = do(t, http.MethodDelete, base+"/v1/tenants/acme/subscriptions",
		map[string]any{"host": 3, "ids": sub.IDs[:1]})
	if status != http.StatusOK {
		t.Fatalf("unsubscribe: status %d\n%s", status, raw)
	}

	// Stats: service counters plus tenancy overlay.
	status, raw = do(t, http.MethodGet, base+"/v1/stats", nil)
	if status != http.StatusOK {
		t.Fatalf("stats: status %d", status)
	}
	var stats struct {
		Service struct {
			Events  int64
			Applied int64
		} `json:"service"`
		Tenants int `json:"tenants"`
	}
	json.Unmarshal(raw, &stats)
	if stats.Tenants != 2 || stats.Service.Events == 0 || stats.Service.Applied == 0 {
		t.Errorf("stats = %+v\n%s", stats, raw)
	}

	// Metrics: Prometheus text exposition with the documented families.
	status, raw = do(t, http.MethodGet, base+"/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	body := string(raw)
	for _, want := range []string{
		"camus_events_total ",
		"camus_tenants 2",
		`camus_tenant_live{tenant="acme"} 1`,
		`camus_tenant_rejected_total{tenant="acme",reason="quota"} 1`,
		`camus_tenant_rejected_total{tenant="spam",reason="rate"} 1`,
		"camus_apply_latency_seconds_count",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}

	// Liveness.
	status, raw = do(t, http.MethodGet, base+"/healthz", nil)
	if status != http.StatusOK || strings.TrimSpace(string(raw)) != "ok" {
		t.Errorf("healthz = %d %q", status, raw)
	}
}

// TestTenantNameValidationAndEscaping: the {tenant} path segment is
// client-controlled and ends up in log records and Prometheus labels.
// Control characters and over-long names are refused with 400; odd but
// printable names must render as valid exposition-format labels
// (backslash/quote/newline escaping — not Go %q, whose \t and \xNN
// escapes the format does not define).
func TestTenantNameValidationAndEscaping(t *testing.T) {
	_, ts := newDaemon(t)
	base := ts.URL

	for _, bad := range []string{
		url.PathEscape("tab\there"),
		url.PathEscape(strings.Repeat("x", 200)),
	} {
		status, raw := do(t, http.MethodPut, base+"/v1/tenants/"+bad, nil)
		if status != http.StatusBadRequest {
			t.Fatalf("PUT invalid name %q: status %d\n%s", bad, status, raw)
		}
		wantFinding(t, raw, "bad-request")
		status, raw = do(t, http.MethodPost, base+"/v1/tenants/"+bad+"/subscriptions",
			map[string]any{"host": 0, "filters": []string{"stock == GOOGL"}})
		if status != http.StatusBadRequest {
			t.Fatalf("POST invalid name %q: status %d\n%s", bad, status, raw)
		}
	}

	// Printable-but-odd name: accepted, and escaped per the exposition
	// format on /metrics.
	odd := `we"ird\name`
	if status, raw := do(t, http.MethodPut, base+"/v1/tenants/"+url.PathEscape(odd), nil); status != http.StatusCreated {
		t.Fatalf("PUT odd name: status %d\n%s", status, raw)
	}
	status, raw := do(t, http.MethodGet, base+"/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	want := `camus_tenant_live{tenant="we\"ird\\name"} 0`
	if !strings.Contains(string(raw), want) {
		t.Errorf("metrics exposition missing %q", want)
	}
}

// TestMetricsCovering: under WithCovering the exposition gains the
// covering families, including the per-tenant covered-subscription
// gauge (registry state, so visible as soon as the subscribe returns).
func TestMetricsCovering(t *testing.T) {
	_, ts := newDaemon(t, server.WithService(ctlplane.WithCovering(0)),
		server.WithTenancy(ctlplane.WithAutoCreate()))
	base := ts.URL

	// acme's narrow refinement is covered by its broad filter; the other
	// tenant holds an unrelated, uncovered subscription.
	status, raw := do(t, http.MethodPost, base+"/v1/tenants/acme/subscriptions",
		map[string]any{"host": 0, "filters": []string{"stock == GOOGL", "stock == GOOGL and price > 500"}})
	if status != http.StatusOK {
		t.Fatalf("subscribe: status %d\n%s", status, raw)
	}
	status, raw = do(t, http.MethodPost, base+"/v1/tenants/beta/subscriptions",
		map[string]any{"host": 5, "filters": []string{"stock == MSFT"}})
	if status != http.StatusOK {
		t.Fatalf("subscribe: status %d\n%s", status, raw)
	}

	status, raw = do(t, http.MethodGet, base+"/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	body := string(raw)
	for _, want := range []string{
		"camus_cover_entries ",
		"camus_cover_obligations ",
		"camus_cover_savings_ratio ",
		"camus_cover_captures_total ",
		"camus_cover_promotions_total ",
		`camus_tenant_covered{tenant="acme"} 1`,
		`camus_tenant_covered{tenant="beta"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics exposition missing %q\n%s", want, body)
		}
	}
	// The lifetime counter must have recorded the elided narrow install.
	if strings.Contains(body, "camus_cover_covered_adds_total 0\n") ||
		!strings.Contains(body, "camus_cover_covered_adds_total ") {
		t.Errorf("camus_cover_covered_adds_total missing or zero after a covered subscribe\n%s", body)
	}
	// Without covering the families must stay absent (series hygiene).
	_, plain := newDaemon(t)
	status, raw = do(t, http.MethodGet, plain.URL+"/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	if strings.Contains(string(raw), "camus_cover_") || strings.Contains(string(raw), "camus_tenant_covered") {
		t.Error("covering series exposed without WithCovering")
	}
}

// TestHTTPAdmissionReject drives the daemon with fit admission on a
// tight pipeline budget until a subscribe is refused: the refusal must
// surface as 507 Insufficient Storage with a "fit-overflow" finding,
// and /metrics must expose the camus_fit_* family (and only then —
// series hygiene without WithAdmission).
func TestHTTPAdmissionReject(t *testing.T) {
	model := fitcheck.NewModelWith(fitcheck.Budget{
		Stages:          8,
		StageSRAMBytes:  512,
		StageTCAMBytes:  1024,
		StageKeyBits:    512,
		MaxTableSplit:   1,
		MulticastGroups: 65536,
		Registers:       4,
	})
	_, ts := newDaemon(t, server.WithService(ctlplane.WithAdmission(model)),
		server.WithTenancy(ctlplane.WithAutoCreate()))
	base := ts.URL

	rejected := false
	var rejectBody []byte
	for i := 0; i < 120 && !rejected; i++ {
		status, raw := do(t, http.MethodPost, base+"/v1/tenants/acme/subscriptions",
			map[string]any{"host": 1, "filters": []string{fmt.Sprintf("stock == GOOGL and price == %d", i)}})
		switch status {
		case http.StatusOK:
		case http.StatusInsufficientStorage:
			rejected, rejectBody = true, raw
		default:
			t.Fatalf("subscribe %d: status %d\n%s", i, status, raw)
		}
	}
	if !rejected {
		t.Fatal("no subscribe was refused under the tight fit budget")
	}
	env := wantFinding(t, rejectBody, "fit-overflow")
	if !strings.Contains(env.Findings[0].Message, "admission rejected") {
		t.Errorf("fit-overflow message = %q, want the ErrAdmissionRejected text", env.Findings[0].Message)
	}

	status, raw := do(t, http.MethodGet, base+"/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	body := string(raw)
	for _, want := range []string{
		"camus_fit_checks_total ",
		"camus_fit_rejects_total ",
		"camus_fit_headroom_entries ",
		"camus_fit_stage_sram_pct ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics exposition missing %q\n%s", want, body)
		}
	}
	if strings.Contains(body, "camus_fit_rejects_total 0\n") {
		t.Errorf("camus_fit_rejects_total still zero after a 507\n%s", body)
	}

	// Without WithAdmission the family must stay absent.
	_, plain := newDaemon(t)
	status, raw = do(t, http.MethodGet, plain.URL+"/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	if strings.Contains(string(raw), "camus_fit_") {
		t.Error("fit-admission series exposed without WithAdmission")
	}
}

// TestHTTPCrashRecovery certifies the daemon's restart path end to end:
// churn over HTTP into a durable log, kill the daemon (torn record at
// the tail), boot a fresh daemon over the same log, and require
// Canonical()-identical per-switch programs plus intact per-tenant
// namespaces before it serves a single request.
func TestHTTPCrashRecovery(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "events.log")
	d1, ts1 := newDaemon(t, server.WithEventLog(logPath))
	tenants := []string{"alpha", "beta"}
	for _, name := range tenants {
		if status, raw := do(t, http.MethodPut, ts1.URL+"/v1/tenants/"+name, nil); status != http.StatusCreated {
			t.Fatalf("create %s: %d\n%s", name, status, raw)
		}
	}
	stocks := []string{"GOOGL", "MSFT", "AAPL", "FB"}
	type sub struct{ host, id int }
	live := map[string][]sub{}
	for i := 0; i < 60; i++ {
		name := tenants[i%len(tenants)]
		if ids := live[name]; len(ids) > 2 && i%6 == 5 {
			s := ids[0]
			live[name] = ids[1:]
			status, raw := do(t, http.MethodDelete, ts1.URL+"/v1/tenants/"+name+"/subscriptions",
				map[string]any{"host": s.host, "ids": []int{s.id}})
			if status != http.StatusOK {
				t.Fatalf("op %d unsubscribe: %d\n%s", i, status, raw)
			}
			continue
		}
		host := i % 16
		status, raw := do(t, http.MethodPost, ts1.URL+"/v1/tenants/"+name+"/subscriptions",
			map[string]any{"host": host, "filters": []string{
				fmt.Sprintf("stock == %s and price > %d", stocks[i%len(stocks)], i%9),
			}})
		if status != http.StatusOK {
			t.Fatalf("op %d subscribe: %d\n%s", i, status, raw)
		}
		var resp struct {
			IDs []int `json:"ids"`
		}
		json.Unmarshal(raw, &resp)
		live[name] = append(live[name], sub{host: host, id: resp.IDs[0]})
	}

	// Pre-crash ground truth.
	net := topology.MustFatTree(4)
	svc1 := d1.Service()
	svc1.Quiesce()
	wantProgs := make([]string, len(net.Switches))
	for sw := range net.Switches {
		wantProgs[sw] = svc1.Program(sw).Canonical().String()
	}
	wantLive := map[string]map[int][]int{}
	for _, name := range tenants {
		lf, err := d1.Tenants().LiveFilters(name)
		if err != nil {
			t.Fatal(err)
		}
		wantLive[name] = lf
	}
	wantSeq := d1.Log().Seq()

	// Kill: close (records are already fsynced by the group-commit
	// flusher), then tear the tail the way an interrupted append would.
	ts1.Close()
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(logPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x00, 0x00, 0x04, 0x00, '{', '"', 'o'})
	f.Close()

	// Reboot over the same log.
	d2, ts2 := newDaemon(t, server.WithEventLog(logPath))
	if int64(d2.Replayed()) != wantSeq {
		t.Fatalf("replayed %d records, want %d", d2.Replayed(), wantSeq)
	}
	svc2 := d2.Service()
	for sw := range net.Switches {
		if got := svc2.Program(sw).Canonical().String(); got != wantProgs[sw] {
			t.Errorf("switch %d: rebooted program differs from pre-crash program", sw)
		}
	}
	for _, name := range tenants {
		lf, err := d2.Tenants().LiveFilters(name)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(lf) != fmt.Sprint(wantLive[name]) {
			t.Errorf("tenant %s: rebooted live set %v, want %v", name, lf, wantLive[name])
		}
	}

	// The rebooted daemon keeps serving: replayed filters are still
	// unsubscribable over HTTP, and the log picks up where it left off.
	s := live[tenants[0]][0]
	status, raw := do(t, http.MethodDelete, ts2.URL+"/v1/tenants/"+tenants[0]+"/subscriptions",
		map[string]any{"host": s.host, "ids": []int{s.id}})
	if status != http.StatusOK {
		t.Fatalf("post-reboot unsubscribe: %d\n%s", status, raw)
	}
	if got := d2.Log().Seq(); got != wantSeq+1 {
		t.Errorf("post-reboot log seq %d, want %d", got, wantSeq+1)
	}
	if status, raw := do(t, http.MethodGet, ts2.URL+"/healthz", nil); status != http.StatusOK {
		t.Errorf("post-reboot healthz = %d %q", status, raw)
	}
}

// TestHTTPChurnSoakValidated drives a multi-tenant Zipf churn stream
// through the API with the translation validator sampling batches: the
// in-test version of `camus-sim -serve`'s soak gate. Zero validation
// failures and a healthy daemon at the end are the pass criteria.
func TestHTTPChurnSoakValidated(t *testing.T) {
	events := 120
	if testing.Short() {
		events = 40
	}
	net := topology.MustFatTree(4)
	d, ts := newDaemon(t,
		server.WithService(ctlplane.WithValidator(ctlplane.ProveValidator(net, 0), 8)),
		server.WithTenancy(ctlplane.WithAutoCreate(),
			ctlplane.WithDefaultQuota(ctlplane.TenantQuota{MaxSubscriptions: 256, EventsPerSec: 1e6})))
	evs, err := workload.TenantChurn(workload.TenantChurnConfig{
		ChurnConfig: workload.ChurnConfig{
			Spec: formats.ITCH, Hosts: len(net.Hosts), Events: events, PoolSize: 24, Seed: 11,
		},
		Tenants: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	type sub struct{ host, id int }
	assigned := map[int]sub{} // churn key → served assignment
	adds, removes := 0, 0
	for i, ev := range evs {
		if ev.Add {
			status, raw := do(t, http.MethodPost, ts.URL+"/v1/tenants/"+ev.Tenant+"/subscriptions",
				map[string]any{"host": ev.Host, "filters": []string{ev.Filter.String()}})
			if status != http.StatusOK {
				t.Fatalf("event %d: subscribe: %d\n%s", i, status, raw)
			}
			var resp struct {
				IDs []int `json:"ids"`
			}
			json.Unmarshal(raw, &resp)
			assigned[ev.Key] = sub{host: ev.Host, id: resp.IDs[0]}
			adds++
		} else {
			s := assigned[ev.Key]
			delete(assigned, ev.Key)
			status, raw := do(t, http.MethodDelete, ts.URL+"/v1/tenants/"+ev.Tenant+"/subscriptions",
				map[string]any{"host": s.host, "ids": []int{s.id}})
			if status != http.StatusOK {
				t.Fatalf("event %d: unsubscribe: %d\n%s", i, status, raw)
			}
			removes++
		}
	}
	d.Service().Quiesce()
	snap := d.Service().Stats()
	if snap.Validations == 0 {
		t.Error("soak ran without a single sampled validation")
	}
	if snap.ValidationFailures != 0 || snap.Failures != 0 {
		t.Errorf("soak gate failed: %d validation failures, %d failures", snap.ValidationFailures, snap.Failures)
	}
	if got := int64(adds + removes); snap.Events < got {
		t.Errorf("service saw %d events, drove %d", snap.Events, got)
	}
	if d.Tenants().TenantCount() == 0 {
		t.Error("auto-create minted no tenants")
	}
	if status, raw := do(t, http.MethodGet, ts.URL+"/healthz", nil); status != http.StatusOK {
		t.Errorf("healthz after soak = %d %q", status, raw)
	}
	// Per-tenant latency percentiles reached the snapshots (the soak
	// report's data source).
	var sawLatency bool
	for _, s := range d.Tenants().Snapshots() {
		if s.Latency.N > 0 {
			sawLatency = true
			break
		}
	}
	if !sawLatency {
		t.Error("no tenant recorded apply latency")
	}
}

// TestHTTPCrashRecoveryNetchecked is the crash-recovery netcheck gate:
// a daemon with the network-wide delivery verifier always-on certifies
// clean under HTTP churn, is killed, and the replayed log must pass
// netcheck identically — same live (filter, host) cut, zero violations
// on the rebooted programs, healthy /healthz.
func TestHTTPCrashRecoveryNetchecked(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "events.log")
	net := topology.MustFatTree(4)
	netOpt := server.WithService(
		ctlplane.WithNetValidator(ctlplane.NetcheckValidator(net, formats.ITCH, 0), 1))
	d1, ts1 := newDaemon(t, server.WithEventLog(logPath), netOpt)
	if status, raw := do(t, http.MethodPut, ts1.URL+"/v1/tenants/gamma", nil); status != http.StatusCreated {
		t.Fatalf("create tenant: %d\n%s", status, raw)
	}
	stocks := []string{"GOOGL", "MSFT", "AAPL", "FB"}
	type sub struct{ host, id int }
	var live []sub
	for i := 0; i < 40; i++ {
		if len(live) > 3 && i%5 == 4 {
			s := live[0]
			live = live[1:]
			status, raw := do(t, http.MethodDelete, ts1.URL+"/v1/tenants/gamma/subscriptions",
				map[string]any{"host": s.host, "ids": []int{s.id}})
			if status != http.StatusOK {
				t.Fatalf("op %d unsubscribe: %d\n%s", i, status, raw)
			}
			continue
		}
		host := i % 16
		status, raw := do(t, http.MethodPost, ts1.URL+"/v1/tenants/gamma/subscriptions",
			map[string]any{"host": host, "filters": []string{
				fmt.Sprintf("stock == %s and price > %d", stocks[i%len(stocks)], 100*(i%7)),
			}})
		if status != http.StatusOK {
			t.Fatalf("op %d subscribe: %d\n%s", i, status, raw)
		}
		var resp struct {
			IDs []int `json:"ids"`
		}
		json.Unmarshal(raw, &resp)
		live = append(live, sub{host: host, id: resp.IDs[0]})
	}

	d1.Service().Quiesce()
	snap1 := d1.Service().Stats()
	if snap1.NetValidations == 0 {
		t.Fatal("pre-crash: always-on net validator never ran")
	}
	if snap1.NetValidationFailures != 0 {
		t.Fatalf("pre-crash: %d delivery-invariant violations", snap1.NetValidationFailures)
	}
	wantCut := fmt.Sprint(d1.Service().HostFilters())
	ts1.Close()
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	// Reboot over the same log: replay re-drives every event through the
	// service, so the validator re-certifies the recovered network.
	d2, ts2 := newDaemon(t, server.WithEventLog(logPath), netOpt)
	d2.Service().Quiesce()
	snap2 := d2.Service().Stats()
	if snap2.NetValidations == 0 {
		t.Fatal("post-reboot: net validator never ran during replay")
	}
	if snap2.NetValidationFailures != 0 {
		t.Fatalf("post-reboot: %d delivery-invariant violations after replay", snap2.NetValidationFailures)
	}
	if gotCut := fmt.Sprint(d2.Service().HostFilters()); gotCut != wantCut {
		t.Errorf("replayed (filter, host) cut differs:\n got %s\nwant %s", gotCut, wantCut)
	}
	// Belt and braces: certify the rebooted cut explicitly, outside the
	// quiescence sampling.
	progs := make([]*compiler.Program, len(net.Switches))
	for sw := range net.Switches {
		progs[sw] = d2.Service().Program(sw)
	}
	check := ctlplane.NetcheckValidator(net, formats.ITCH, 0)
	if err := check(progs, d2.Service().HostFilters()); err != nil {
		t.Errorf("replayed deployment fails netcheck: %v", err)
	}
	if status, raw := do(t, http.MethodGet, ts2.URL+"/healthz", nil); status != http.StatusOK {
		t.Errorf("post-reboot healthz = %d %q", status, raw)
	}
}

// Package server assembles the multi-tenant control-plane daemon:
// ctlplane.Service + ctlplane.Tenants + the durable event log behind an
// HTTP+JSON API with a Prometheus-text metrics surface.
//
//	PUT    /v1/tenants/{tenant}                create/re-quota a tenant
//	POST   /v1/tenants/{tenant}/subscriptions  subscribe filters
//	DELETE /v1/tenants/{tenant}/subscriptions  unsubscribe filter IDs
//	GET    /v1/tenants/{tenant}/snapshot       per-tenant counters + live filters
//	GET    /v1/stats                           service-wide counters
//	GET    /metrics                            Prometheus text exposition
//	GET    /healthz                            liveness (503 on log/validation trouble)
//
// Error responses reuse the unified report.Finding envelope (camus-lint
// / camusc vet / camusc prove share it), so API consumers parse one
// diagnostic schema across every Camus tool.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"
	"unicode/utf8"

	"camus/internal/analysis/report"
	"camus/internal/ctlplane"
	"camus/internal/spec"
	"camus/internal/subscription"
	"camus/internal/topology"
)

// Daemon owns the control-plane stack for one deployment: the apply
// service, the tenancy layer, the optional durable log, and the HTTP
// surface. Construct with New, start with Start, stop with Close.
type Daemon struct {
	net     *topology.Network
	sp      *spec.Spec
	svc     *ctlplane.Service
	tenants *ctlplane.Tenants
	log     *ctlplane.Log

	mux      *http.ServeMux
	srv      *http.Server
	ln       net.Listener
	start    time.Time
	replayed int

	mu sync.Mutex // guards srv/ln lifecycle
}

// Option configures the daemon at construction time.
type Option func(*config)

type config struct {
	logPath    string
	logOpts    []ctlplane.LogOption
	svcOpts    []ctlplane.Option
	tenantOpts []ctlplane.TenantOption
}

// WithEventLog opens (or resumes) the durable event log at path; New
// replays it before the daemon serves traffic.
func WithEventLog(path string, opts ...ctlplane.LogOption) Option {
	return func(c *config) { c.logPath = path; c.logOpts = opts }
}

// WithService forwards functional options to the underlying
// ctlplane.New call (installers, validator, queue depth, ...).
func WithService(opts ...ctlplane.Option) Option {
	return func(c *config) { c.svcOpts = append(c.svcOpts, opts...) }
}

// WithTenancy forwards options to ctlplane.NewTenants (default quota,
// auto-create, ...).
func WithTenancy(opts ...ctlplane.TenantOption) Option {
	return func(c *config) { c.tenantOpts = append(c.tenantOpts, opts...) }
}

// New builds the daemon: service, tenancy layer, and — when an event
// log is configured — a replay of every durable record so the
// reconstructed per-switch programs and refcounts match the pre-crash
// state before the first request is accepted.
func New(netw *topology.Network, sp *spec.Spec, opts ...Option) (*Daemon, error) {
	var cfg config
	for _, fn := range opts {
		fn(&cfg)
	}
	d := &Daemon{net: netw, sp: sp, start: time.Now()}
	if cfg.logPath != "" {
		l, err := ctlplane.OpenLog(cfg.logPath, cfg.logOpts...)
		if err != nil {
			return nil, err
		}
		d.log = l
		cfg.tenantOpts = append(cfg.tenantOpts, ctlplane.WithEventLog(l))
	}
	svc, err := ctlplane.New(netw, sp, cfg.svcOpts...)
	if err != nil {
		if d.log != nil {
			d.log.Close()
		}
		return nil, err
	}
	d.svc = svc
	d.tenants = ctlplane.NewTenants(svc, cfg.tenantOpts...)
	if d.log != nil {
		n, err := d.tenants.Replay()
		if err != nil {
			d.tenants.Close()
			d.svc.Close()
			d.log.Close()
			return nil, fmt.Errorf("server: replay: %w", err)
		}
		d.replayed = n
	}
	d.mux = http.NewServeMux()
	d.routes()
	return d, nil
}

func (d *Daemon) routes() {
	d.mux.HandleFunc("PUT /v1/tenants/{tenant}", d.handleCreateTenant)
	d.mux.HandleFunc("POST /v1/tenants/{tenant}/subscriptions", d.handleSubscribe)
	d.mux.HandleFunc("DELETE /v1/tenants/{tenant}/subscriptions", d.handleUnsubscribe)
	d.mux.HandleFunc("GET /v1/tenants/{tenant}/snapshot", d.handleSnapshot)
	d.mux.HandleFunc("GET /v1/stats", d.handleStats)
	d.mux.HandleFunc("GET /metrics", d.handleMetrics)
	d.mux.HandleFunc("GET /healthz", d.handleHealthz)
}

// Handler exposes the daemon's HTTP surface for in-process serving
// (httptest, camus-sim -serve).
func (d *Daemon) Handler() http.Handler { return d.mux }

// Service, Tenants and Log expose the assembled layers for harnesses
// that certify daemon state (crash-recovery tests, benchmarks).
func (d *Daemon) Service() *ctlplane.Service { return d.svc }
func (d *Daemon) Tenants() *ctlplane.Tenants { return d.tenants }
func (d *Daemon) Log() *ctlplane.Log         { return d.log }

// Replayed reports how many log records start-up replay applied.
func (d *Daemon) Replayed() int { return d.replayed }

// Start binds addr (":0" for an ephemeral port) and serves in the
// background, returning the bound address.
func (d *Daemon) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	d.mu.Lock()
	d.ln = ln
	d.srv = &http.Server{Handler: d.mux, ReadHeaderTimeout: 5 * time.Second}
	srv := d.srv
	d.mu.Unlock()
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Close drains the HTTP server, stops the tenancy dispatcher, shuts the
// apply workers down and syncs+closes the event log, returning the
// first error.
func (d *Daemon) Close() error {
	var first error
	d.mu.Lock()
	srv := d.srv
	d.srv, d.ln = nil, nil
	d.mu.Unlock()
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			first = err
			srv.Close()
		}
		cancel()
	}
	d.tenants.Close()
	d.svc.Close()
	if d.log != nil {
		if err := d.log.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ---------------------------------------------------------------------
// Wire DTOs

type subscribeRequest struct {
	Host    int      `json:"host"`
	Filters []string `json:"filters"`
}

type subscribeResponse struct {
	Tenant string `json:"tenant"`
	Host   int    `json:"host"`
	IDs    []int  `json:"ids"`
	// Applied reports that every affected switch runs the new epoch
	// (the handler waits for the apply fan-out to finish).
	Applied bool `json:"applied"`
	// LogSeq is the durable sequence number covering this event (0
	// without an event log).
	LogSeq int64 `json:"log_seq,omitempty"`
}

type unsubscribeRequest struct {
	Host int   `json:"host"`
	IDs  []int `json:"ids"`
}

type latencyJSON struct {
	N     int     `json:"n"`
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

func latencyDTO(l ctlplane.LatencyStats) latencyJSON {
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	return latencyJSON{N: l.N, P50Ms: ms(l.P50), P90Ms: ms(l.P90), P99Ms: ms(l.P99), MaxMs: ms(l.Max)}
}

type tenantSnapshotJSON struct {
	ctlplane.TenantSnapshot
	Latency latencyJSON   `json:"latency"`
	Filters map[int][]int `json:"filters,omitempty"`
}

type statsResponse struct {
	Service   ctlplane.Snapshot `json:"service"`
	Latency   latencyJSON       `json:"latency"`
	Tenants   int               `json:"tenants"`
	Replayed  int               `json:"replayed"`
	LogSeq    int64             `json:"log_seq,omitempty"`
	LogBytes  int64             `json:"log_bytes,omitempty"`
	UptimeSec float64           `json:"uptime_sec"`
}

// ---------------------------------------------------------------------
// Handlers

// validTenantName gates the names that can enter the registry: path
// decoding lets %00-style escapes smuggle arbitrary bytes into the
// {tenant} segment, and names must round-trip cleanly through log
// records and metrics labels. Control characters, invalid UTF-8, and
// over-long names are refused at the door.
func validTenantName(name string) bool {
	if name == "" || len(name) > 128 || !utf8.ValidString(name) {
		return false
	}
	for _, r := range name {
		if r < 0x20 || r == 0x7f {
			return false
		}
	}
	return true
}

// tenantName extracts and validates the {tenant} path segment for the
// handlers that can create or mutate tenant state, writing the 400
// itself when the name is unusable.
func (d *Daemon) tenantName(w http.ResponseWriter, r *http.Request) (string, bool) {
	name := r.PathValue("tenant")
	if !validTenantName(name) {
		d.fail(w, http.StatusBadRequest, "bad-request", fmt.Sprintf("invalid tenant name %q", name), "")
		return "", false
	}
	return name, true
}

func (d *Daemon) handleCreateTenant(w http.ResponseWriter, r *http.Request) {
	name, ok := d.tenantName(w, r)
	if !ok {
		return
	}
	var quota ctlplane.TenantQuota
	if r.ContentLength != 0 {
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&quota); err != nil {
			d.fail(w, http.StatusBadRequest, "bad-request", fmt.Sprintf("decode quota: %v", err), "")
			return
		}
	}
	if err := d.tenants.CreateTenant(name, quota); err != nil {
		d.failErr(w, err, "")
		return
	}
	snap, err := d.tenants.Snapshot(name)
	if err != nil {
		d.failErr(w, err, "")
		return
	}
	writeJSON(w, http.StatusCreated, tenantSnapshotJSON{TenantSnapshot: snap, Latency: latencyDTO(snap.Latency)})
}

func (d *Daemon) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	name, ok := d.tenantName(w, r)
	if !ok {
		return
	}
	var req subscribeRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		d.fail(w, http.StatusBadRequest, "bad-request", fmt.Sprintf("decode request: %v", err), "")
		return
	}
	if len(req.Filters) == 0 {
		d.fail(w, http.StatusBadRequest, "bad-request", "no filters in request", "")
		return
	}
	// Malformed filters are rejected at the door with the offending
	// source in the envelope's RuleText, before any quota is charged.
	parser := subscription.NewParser(d.sp)
	exprs := make([]subscription.Expr, len(req.Filters))
	for i, src := range req.Filters {
		e, err := parser.ParseFilter(src)
		if err != nil {
			d.fail(w, http.StatusBadRequest, "parse-error", err.Error(), src)
			return
		}
		exprs[i] = e
	}
	ev, ids, err := d.tenants.Subscribe(name, req.Host, exprs)
	if err != nil {
		d.failErr(w, err, "")
		return
	}
	applied := d.waitApplied(r.Context(), ev)
	resp := subscribeResponse{Tenant: name, Host: req.Host, IDs: ids, Applied: applied}
	if d.log != nil {
		resp.LogSeq = d.log.Seq()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (d *Daemon) handleUnsubscribe(w http.ResponseWriter, r *http.Request) {
	name, ok := d.tenantName(w, r)
	if !ok {
		return
	}
	var req unsubscribeRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		d.fail(w, http.StatusBadRequest, "bad-request", fmt.Sprintf("decode request: %v", err), "")
		return
	}
	if len(req.IDs) == 0 {
		d.fail(w, http.StatusBadRequest, "bad-request", "no filter ids in request", "")
		return
	}
	ev, err := d.tenants.Unsubscribe(name, req.Host, req.IDs)
	if err != nil {
		d.failErr(w, err, "")
		return
	}
	applied := d.waitApplied(r.Context(), ev)
	resp := subscribeResponse{Tenant: name, Host: req.Host, IDs: req.IDs, Applied: applied}
	if d.log != nil {
		resp.LogSeq = d.log.Seq()
	}
	writeJSON(w, http.StatusOK, resp)
}

// waitApplied blocks until the event's last switch swaps epochs (or the
// client goes away); it reports false only on early disconnect.
func (d *Daemon) waitApplied(ctx context.Context, ev *ctlplane.Event) bool {
	if ev == nil {
		return false
	}
	select {
	case <-ev.Done():
		return ev.Err() == nil
	case <-ctx.Done():
		return false
	}
}

func (d *Daemon) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	snap, err := d.tenants.Snapshot(name)
	if err != nil {
		d.failErr(w, err, "")
		return
	}
	filters, err := d.tenants.LiveFilters(name)
	if err != nil {
		d.failErr(w, err, "")
		return
	}
	writeJSON(w, http.StatusOK, tenantSnapshotJSON{
		TenantSnapshot: snap,
		Latency:        latencyDTO(snap.Latency),
		Filters:        filters,
	})
}

func (d *Daemon) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := d.svc.Stats()
	resp := statsResponse{
		Service:   snap,
		Latency:   latencyDTO(snap.Latency),
		Tenants:   d.tenants.TenantCount(),
		Replayed:  d.replayed,
		UptimeSec: time.Since(d.start).Seconds(),
	}
	if d.log != nil {
		resp.LogSeq = d.log.Seq()
		resp.LogBytes = d.log.Size()
	}
	writeJSON(w, http.StatusOK, resp)
}

// health returns nil when the daemon can keep its durability and
// correctness promises.
func (d *Daemon) health() error {
	if d.log != nil {
		if err := d.log.Err(); err != nil {
			return fmt.Errorf("event log: %w", err)
		}
	}
	if err := d.tenants.Err(); err != nil {
		return fmt.Errorf("event log append: %w", err)
	}
	snap := d.svc.Stats()
	if n := snap.ValidationFailures; n > 0 {
		return fmt.Errorf("%d validation failures", n)
	}
	if n := snap.NetValidationFailures; n > 0 {
		return fmt.Errorf("%d network validation failures", n)
	}
	return nil
}

func (d *Daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := d.health(); err != nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "unhealthy: %v\n", err)
		return
	}
	io.WriteString(w, "ok\n")
}

// ---------------------------------------------------------------------
// Error envelope

// failErr maps tenancy-layer errors to HTTP statuses: unknown tenant or
// filter → 404, quota/rate admission refusals → 429, fit-admission
// refusals → 507 Insufficient Storage, shutdown → 503.
func (d *Daemon) failErr(w http.ResponseWriter, err error, ruleText string) {
	switch {
	case errors.Is(err, ctlplane.ErrUnknownTenant):
		d.fail(w, http.StatusNotFound, "unknown-tenant", err.Error(), ruleText)
	case errors.Is(err, ctlplane.ErrUnknownFilter):
		d.fail(w, http.StatusNotFound, "unknown-filter", err.Error(), ruleText)
	case errors.Is(err, ctlplane.ErrQuotaExceeded):
		d.fail(w, http.StatusTooManyRequests, "quota-exceeded", err.Error(), ruleText)
	case errors.Is(err, ctlplane.ErrRateLimited):
		d.fail(w, http.StatusTooManyRequests, "rate-limited", err.Error(), ruleText)
	case errors.Is(err, ctlplane.ErrAdmissionRejected):
		d.fail(w, http.StatusInsufficientStorage, "fit-overflow", err.Error(), ruleText)
	case errors.Is(err, ctlplane.ErrClosed):
		d.fail(w, http.StatusServiceUnavailable, "shutting-down", err.Error(), ruleText)
	default:
		d.fail(w, http.StatusInternalServerError, "internal", err.Error(), ruleText)
	}
}

// fail writes the unified diagnostic envelope: one report.Report with a
// single camusd Finding.
func (d *Daemon) fail(w http.ResponseWriter, status int, kind report.Kind, msg, ruleText string) {
	rep := report.Report{
		Tool: "camusd",
		File: "api",
		Findings: []report.Finding{{
			Tool:     "camusd",
			File:     "api",
			RuleID:   -1,
			Kind:     kind,
			Severity: report.SevError,
			Message:  msg,
			RuleText: ruleText,
		}},
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	io.WriteString(w, rep.JSON())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

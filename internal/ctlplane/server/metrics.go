package server

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"camus/internal/ctlplane"
)

// labelEscaper escapes a label value per the Prometheus text
// exposition format, which defines exactly three escapes: backslash,
// double-quote, and newline. Go's %q is not usable here — it emits
// \t / \xNN sequences the format does not define, so one odd tenant
// name would make the whole page unparseable.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// maxTenantSeries caps per-tenant label cardinality: auto-create lets
// clients mint tenants freely, and an unbounded label set is how a
// scrape target kills its own Prometheus. Beyond the cap (first N in
// name order — Snapshots is sorted, so membership is stable), the
// omitted remainder is counted in camus_tenant_series_omitted; the
// service-wide aggregates still include every tenant.
const maxTenantSeries = 256

// handleMetrics renders the Prometheus text exposition format by hand —
// the repo takes no external dependencies, and the format is three line
// shapes (# HELP, # TYPE, sample). Catalog:
//
//	camus_*_total                     service counters (Snapshot)
//	camus_queue_depth{,_peak}         in-flight event gauges
//	camus_apply_latency_seconds       event→applied summary (quantiles)
//	camus_log_{seq,bytes}             durable log position
//	camus_log_truncated_bytes         torn-tail bytes dropped at open
//	camus_tenants                     registered tenant count
//	camus_tenant_series_omitted       tenants beyond the label-cardinality cap
//	camus_tenant_live{tenant}         per-tenant live subscriptions
//	camus_tenant_pending{tenant}      per-tenant fairness-queue depth
//	camus_cover_entries               installed covering entries (forest roots)
//	camus_cover_obligations           covered filters elided from the tables
//	camus_cover_savings_ratio         elided entry fraction
//	camus_cover_covered_adds_total    installs elided by an existing covering entry
//	camus_cover_captures_total        entries removed by broader-root capture
//	camus_cover_promotions_total      children re-installed by uncoverings
//	camus_tenant_covered{tenant}      per-tenant covered subscriptions
//	  (covering-mode series appear only under WithCovering and respect
//	  the same tenant-series cap)
//	camus_fit_checks_total            fit-admission checks (WithAdmission only)
//	camus_fit_rejects_total           subscribes refused by fit admission
//	camus_fit_headroom_entries        min entry headroom across switches
//	camus_fit_stage_sram_pct          fullest stage SRAM bank, percent
//	camus_leaf_hits_total             dataplane leaf-cache hits (leaf-cache
//	camus_leaf_misses_total           series appear only when an installed
//	camus_leaf_fills_total            switch exposes an enabled cache)
//	camus_leaf_admissible_entries     cacheable leaf rows, current epochs
//	camus_leaf_capacity_entries       total leaf-cache capacity
//	camus_tenant_events_total{tenant,op}        dispatched sub/unsub
//	camus_tenant_rejected_total{tenant,reason}  quota/rate refusals
//	camus_tenant_latency_seconds{tenant,quantile}
func (d *Daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	snap := d.svc.Stats()

	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP camus_%s %s\n# TYPE camus_%s counter\ncamus_%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP camus_%s %s\n# TYPE camus_%s gauge\ncamus_%s %g\n", name, help, name, name, v)
	}

	counter("events_total", "Submitted subscription changes.", snap.Events)
	counter("subscribes_total", "Submitted subscribe events.", snap.Subscribes)
	counter("unsubscribes_total", "Submitted unsubscribe events.", snap.Unsubscribes)
	counter("applied_total", "Events fully rolled out on every affected switch.", snap.Applied)
	counter("batches_total", "Per-switch compile+install rounds.", snap.Batches)
	counter("installs_total", "Table entries installed.", snap.Installs)
	counter("deletes_total", "Table entries deleted.", snap.Deletes)
	counter("keeps_total", "Table entries reused across epochs.", snap.Keeps)
	counter("retries_total", "Backed-off apply attempts.", snap.Retries)
	counter("fallbacks_total", "Drift-triggered full recompiles.", snap.Fallbacks)
	counter("failures_total", "Batches that exhausted retries or failed compile/validation.", snap.Failures)
	counter("validations_total", "Translation-validation runs.", snap.Validations)
	counter("validation_failures_total", "Batches rejected as disequivalent.", snap.ValidationFailures)
	counter("net_validations_total", "Network-wide delivery-validation runs at quiescent points.", snap.NetValidations)
	counter("net_validation_failures_total", "Network validations that found a delivery-invariant violation.", snap.NetValidationFailures)
	gauge("queue_depth", "In-flight subscription events.", float64(snap.QueueDepth))
	gauge("queue_depth_peak", "High-water mark of in-flight events.", float64(snap.PeakQueueDepth))
	if snap.Covering {
		gauge("cover_entries", "Installed covering entries (subsumption-forest roots).", float64(snap.CoverEntries))
		gauge("cover_obligations", "Covered filters elided from the tables (refcounted obligations).", float64(snap.CoverObligations))
		gauge("cover_savings_ratio", "Fraction of table entries elided by covering.", snap.CoverSavingsRatio)
		counter("cover_covered_adds_total", "Installs elided because an existing covering entry subsumed the new filter.", snap.CoveredAdds)
		counter("cover_captures_total", "Entries removed because a broader new root captured them.", snap.CoverCaptures)
		counter("cover_promotions_total", "Covered children re-installed by uncoverings.", snap.CoverPromotions)
	}
	if snap.Admission {
		counter("fit_checks_total", "Static fit-admission checks run before registry mutation.", snap.AdmissionChecks)
		counter("fit_rejects_total", "Subscribes refused because the predicted entry delta would overflow a pipeline.", snap.AdmissionRejects)
		gauge("fit_headroom_entries", "Minimum remaining table-entry headroom across switches with an installed program.", float64(snap.FitHeadroomEntries))
		gauge("fit_stage_sram_pct", "Fullest stage SRAM bank anywhere in the deployment, percent.", snap.FitStageSRAMPct)
	}
	if snap.LeafCache {
		counter("leaf_hits_total", "Messages served from the dataplane leaf cache.", snap.LeafHits)
		counter("leaf_misses_total", "Messages that walked the match stages.", snap.LeafMisses)
		counter("leaf_fills_total", "Leaf-cache fills (pure, admissible outcomes).", snap.LeafFills)
		gauge("leaf_admissible_entries", "Cacheable leaf-table rows across installed epochs.", float64(snap.LeafAdmissible))
		gauge("leaf_capacity_entries", "Total leaf-cache entry capacity across switches.", float64(snap.LeafCapacity))
	}

	writeSummary(&b, "apply_latency_seconds", "Event submission to all-switches-applied latency.", "", snap.Latency)

	if d.log != nil {
		gauge("log_seq", "Last durable event-log sequence number.", float64(d.log.Seq()))
		gauge("log_bytes", "Event log size in bytes.", float64(d.log.Size()))
		gauge("log_truncated_bytes", "Torn-tail bytes discarded when the log was opened.", float64(d.log.Truncated()))
	}

	tenants := d.tenants.Snapshots()
	gauge("tenants", "Registered tenants.", float64(len(tenants)))
	if len(tenants) > maxTenantSeries {
		gauge("tenant_series_omitted", "Tenants beyond the per-tenant series cap (service aggregates still count them).", float64(len(tenants)-maxTenantSeries))
		tenants = tenants[:maxTenantSeries]
	}

	fmt.Fprintf(&b, "# HELP camus_tenant_live Live subscriptions per tenant.\n# TYPE camus_tenant_live gauge\n")
	for _, t := range tenants {
		fmt.Fprintf(&b, "camus_tenant_live{tenant=\"%s\"} %d\n", labelEscaper.Replace(t.Name), t.Live)
	}
	fmt.Fprintf(&b, "# HELP camus_tenant_pending Fairness-queue depth per tenant.\n# TYPE camus_tenant_pending gauge\n")
	for _, t := range tenants {
		fmt.Fprintf(&b, "camus_tenant_pending{tenant=\"%s\"} %d\n", labelEscaper.Replace(t.Name), t.Pending)
	}
	if snap.Covering {
		fmt.Fprintf(&b, "# HELP camus_tenant_covered Live subscriptions whose access-port entry is elided by covering, per tenant.\n# TYPE camus_tenant_covered gauge\n")
		for _, t := range tenants {
			fmt.Fprintf(&b, "camus_tenant_covered{tenant=\"%s\"} %d\n", labelEscaper.Replace(t.Name), t.Covered)
		}
	}
	fmt.Fprintf(&b, "# HELP camus_tenant_events_total Dispatched events per tenant.\n# TYPE camus_tenant_events_total counter\n")
	for _, t := range tenants {
		name := labelEscaper.Replace(t.Name)
		fmt.Fprintf(&b, "camus_tenant_events_total{tenant=\"%s\",op=\"sub\"} %d\n", name, t.Subscribes)
		fmt.Fprintf(&b, "camus_tenant_events_total{tenant=\"%s\",op=\"unsub\"} %d\n", name, t.Unsubscribes)
	}
	fmt.Fprintf(&b, "# HELP camus_tenant_rejected_total Admission refusals per tenant.\n# TYPE camus_tenant_rejected_total counter\n")
	for _, t := range tenants {
		name := labelEscaper.Replace(t.Name)
		fmt.Fprintf(&b, "camus_tenant_rejected_total{tenant=\"%s\",reason=\"quota\"} %d\n", name, t.RejectedQuota)
		fmt.Fprintf(&b, "camus_tenant_rejected_total{tenant=\"%s\",reason=\"rate\"} %d\n", name, t.RejectedRate)
	}
	fmt.Fprintf(&b, "# HELP camus_tenant_latency_seconds Admission to all-switches-applied latency per tenant.\n# TYPE camus_tenant_latency_seconds summary\n")
	for _, t := range tenants {
		if t.Latency.N == 0 {
			continue
		}
		writeSummary(&b, "tenant_latency_seconds", "", fmt.Sprintf("tenant=\"%s\",", labelEscaper.Replace(t.Name)), t.Latency)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}

// writeSummary emits quantile samples plus _count for one latency
// distribution. help == "" suppresses the HELP/TYPE header (repeated
// per-label-set summaries share one header). labels, if non-empty, is
// a trailing-comma label prefix whose values are already escaped.
func writeSummary(b *strings.Builder, name, help, labels string, l ctlplane.LatencyStats) {
	sec := func(d time.Duration) float64 { return d.Seconds() }
	if help != "" {
		fmt.Fprintf(b, "# HELP camus_%s %s\n# TYPE camus_%s summary\n", name, help, name)
	}
	fmt.Fprintf(b, "camus_%s{%squantile=\"0.5\"} %g\n", name, labels, sec(l.P50))
	fmt.Fprintf(b, "camus_%s{%squantile=\"0.9\"} %g\n", name, labels, sec(l.P90))
	fmt.Fprintf(b, "camus_%s{%squantile=\"0.99\"} %g\n", name, labels, sec(l.P99))
	if lbl := strings.TrimSuffix(labels, ","); lbl != "" {
		fmt.Fprintf(b, "camus_%s_count{%s} %d\n", name, lbl, l.N)
	} else {
		fmt.Fprintf(b, "camus_%s_count %d\n", name, l.N)
	}
}

package ctlplane

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// LogRecord is one durable control-plane event. Records are written in
// dispatch order, which is exactly the order the Reconciler assigned
// filter IDs in — replay reapplies them sequentially and must observe
// the same IDs, making the log a self-certifying reconstruction of the
// pre-crash registry.
type LogRecord struct {
	// Seq is the append sequence number (1-based, assigned by Append).
	Seq int64 `json:"seq"`
	// Op is "tenant" (create/update with Quota), "sub" or "unsub".
	Op     string `json:"op"`
	Tenant string `json:"tenant"`
	Host   int    `json:"host,omitempty"`
	// Filters are the subscribed expressions in parseable source form
	// (subscription.Expr.String round-trips through the parser; the
	// FuzzParseSubscription target guards that property).
	Filters []string `json:"filters,omitempty"`
	// IDs are the filter IDs the dispatch assigned ("sub") or removed
	// ("unsub").
	IDs   []int        `json:"ids,omitempty"`
	Quota *TenantQuota `json:"quota,omitempty"`
}

// ErrLogClosed is returned for appends after Close.
var ErrLogClosed = errors.New("ctlplane: event log closed")

// walMaxRecord bounds one record's encoded size; a complete length
// prefix above it can only come from corruption, never from a torn
// append, and fails the open.
const walMaxRecord = 1 << 20

// walHeader is the per-record frame header: 4-byte big-endian payload
// length, then 4-byte big-endian CRC-32 (IEEE) of the payload.
const walHeader = 8

// Log is the durable append-only event log: checksummed
// length-prefixed JSON records (4-byte big-endian length, 4-byte
// big-endian CRC-32 of the payload, then the JSON payload) with
// batched fsync. Appends are buffered and a group-commit flusher
// syncs the file every FsyncInterval (or immediately after
// FsyncEveryN records), so one fsync amortizes over a burst of events;
// Sync and Close force the tail out. A process kill can therefore lose
// at most the last unsynced batch and may leave a torn final record —
// OpenLog truncates the tail to the last complete record (Truncated
// reports the dropped byte count) and replay proceeds from a
// consistent prefix. A torn tail is the only damage that is repaired
// silently: mid-file corruption (checksum or framing mismatch with
// committed records after it) fails the open instead of discarding
// durable records.
type Log struct {
	path string

	mu        sync.Mutex
	f         *os.File
	w         *bufio.Writer
	seq       int64
	dirty     int // appends since the last sync
	size      int64
	truncated int64 // torn-tail bytes discarded by OpenLog
	lastErr   error
	closed    bool

	interval time.Duration
	everyN   int
	stop     chan struct{}
	done     chan struct{}
}

// LogOption tunes a Log.
type LogOption func(*Log)

// WithFsyncInterval sets the group-commit window (default 2ms).
func WithFsyncInterval(d time.Duration) LogOption {
	return func(l *Log) { l.interval = d }
}

// WithFsyncEveryN forces a sync once N records are buffered (default
// 64), bounding the loss window under sustained load.
func WithFsyncEveryN(n int) LogOption {
	return func(l *Log) { l.everyN = n }
}

// OpenLog opens (or creates) the event log at path, scans the existing
// records to recover the append position and last sequence number, and
// truncates any torn tail left by a crash (Truncated reports how many
// bytes that dropped). Corruption anywhere before the tail — a
// checksum mismatch, an impossible length, undecodable JSON — is not a
// crash artifact and fails the open rather than silently discarding
// the committed records behind it. The returned log is ready for
// Replay and Append.
func OpenLog(path string, opts ...LogOption) (*Log, error) {
	l := &Log{
		path:     path,
		interval: 2 * time.Millisecond,
		everyN:   64,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, fn := range opts {
		fn(l)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ctlplane: open log: %w", err)
	}
	good, lastSeq, _, err := scanLog(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	l.truncated = st.Size() - good
	// A torn tail (partial header or payload) is expected after a
	// kill; truncating to the last complete record restores the
	// append invariant.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("ctlplane: truncate torn log tail: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.seq = lastSeq
	l.size = good
	go l.flusher()
	return l, nil
}

// scanLog walks the record framing from the start of the file and
// returns the byte offset after the last complete record, the highest
// sequence number seen, and the record count. A torn tail — the
// header or payload cut short by EOF — is the normal crash artifact
// and is reported via good < file size, not as an error. Everything
// else is corruption and fails the scan: appends only ever write a
// prefix of intended bytes, so a fully present frame with a bad
// length, a checksum mismatch, or undecodable JSON cannot be a crash
// leftover.
func scanLog(f *os.File) (good int64, lastSeq int64, n int, err error) {
	if _, err = f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, 0, err
	}
	r := bufio.NewReader(f)
	var hdr [walHeader]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return good, lastSeq, n, nil // clean EOF or torn header
			}
			return good, lastSeq, n, err
		}
		size := binary.BigEndian.Uint32(hdr[:4])
		if size == 0 || size > walMaxRecord {
			return good, lastSeq, n, fmt.Errorf("ctlplane: event log corrupt at offset %d (record %d): impossible length %d", good, n+1, size)
		}
		buf := make([]byte, size)
		if _, err := io.ReadFull(r, buf); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return good, lastSeq, n, nil // torn payload
			}
			return good, lastSeq, n, err
		}
		if sum := crc32.ChecksumIEEE(buf); sum != binary.BigEndian.Uint32(hdr[4:]) {
			return good, lastSeq, n, fmt.Errorf("ctlplane: event log corrupt at offset %d (record %d): checksum mismatch", good, n+1)
		}
		var rec LogRecord
		if err := json.Unmarshal(buf, &rec); err != nil {
			return good, lastSeq, n, fmt.Errorf("ctlplane: event log corrupt at offset %d (record %d): %v", good, n+1, err)
		}
		good += int64(walHeader + size)
		lastSeq = rec.Seq
		n++
	}
}

// Append encodes rec, assigns it the next sequence number, and buffers
// it for the group-commit flusher. It returns once the record is in
// the OS write path (not necessarily fsynced; see Sync).
func (l *Log) Append(rec *LogRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrLogClosed
	}
	l.seq++
	rec.Seq = l.seq
	buf, err := json.Marshal(rec)
	if err != nil {
		l.lastErr = err
		return err
	}
	var hdr [walHeader]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(buf)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(buf))
	if _, err := l.w.Write(hdr[:]); err == nil {
		_, err = l.w.Write(buf)
	}
	if err != nil {
		l.lastErr = err
		return err
	}
	l.size += int64(walHeader + len(buf))
	l.dirty++
	if l.dirty >= l.everyN {
		return l.syncLocked()
	}
	return nil
}

// Sync flushes the buffer and fsyncs the file — the durability
// barrier.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrLogClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.dirty == 0 {
		return l.lastErr
	}
	if err := l.w.Flush(); err != nil {
		l.lastErr = err
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.lastErr = err
		return err
	}
	l.dirty = 0
	return nil
}

// flusher is the group-commit loop: one fsync per interval covers
// every record appended inside it.
func (l *Log) flusher() {
	defer close(l.done)
	t := time.NewTicker(l.interval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed {
				l.syncLocked()
			}
			l.mu.Unlock()
		}
	}
}

// Err reports the last append/sync error (the /healthz surface checks
// it: a wedged disk must fail health, not silently drop durability).
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastErr
}

// Seq returns the last assigned sequence number.
func (l *Log) Seq() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Size returns the log's current byte length.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Truncated reports how many torn-tail bytes OpenLog discarded to
// restore the append invariant (0 after a clean shutdown).
func (l *Log) Truncated() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.truncated
}

// Close syncs and closes the log. Further appends fail with
// ErrLogClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	err := func() error {
		if ferr := l.w.Flush(); ferr != nil {
			return ferr
		}
		return l.f.Sync()
	}()
	cerr := l.f.Close()
	l.mu.Unlock()
	close(l.stop)
	<-l.done
	if err != nil {
		return err
	}
	return cerr
}

// Replay streams every complete record (in append order) to fn,
// reading from a separate handle so the append position is untouched.
// It stops early when fn returns an error.
func (l *Log) Replay(fn func(*LogRecord) error) (int, error) {
	l.mu.Lock()
	if err := l.w.Flush(); err != nil {
		l.mu.Unlock()
		return 0, err
	}
	limit := l.size
	path := l.path
	l.mu.Unlock()

	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	r := bufio.NewReader(io.LimitReader(f, limit))
	var hdr [walHeader]byte
	n := 0
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return n, nil
			}
			return n, fmt.Errorf("ctlplane: replay record %d: %w", n+1, err)
		}
		size := binary.BigEndian.Uint32(hdr[:4])
		if size == 0 || size > walMaxRecord {
			return n, fmt.Errorf("ctlplane: replay record %d: impossible length %d", n+1, size)
		}
		buf := make([]byte, size)
		if _, err := io.ReadFull(r, buf); err != nil {
			return n, fmt.Errorf("ctlplane: replay record %d: %w", n+1, err)
		}
		if sum := crc32.ChecksumIEEE(buf); sum != binary.BigEndian.Uint32(hdr[4:]) {
			return n, fmt.Errorf("ctlplane: replay record %d: checksum mismatch", n+1)
		}
		var rec LogRecord
		if err := json.Unmarshal(buf, &rec); err != nil {
			return n, fmt.Errorf("ctlplane: replay record %d: %w", n+1, err)
		}
		if err := fn(&rec); err != nil {
			return n, err
		}
		n++
	}
}

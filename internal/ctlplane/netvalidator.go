package ctlplane

import (
	"fmt"

	"camus/internal/analysis/netcheck"
	"camus/internal/analysis/prove"
	"camus/internal/compiler"
	"camus/internal/spec"
	"camus/internal/subscription"
	"camus/internal/topology"
)

// HostFilter is one live subscription as the network-wide validator
// sees it: the exact filter expression bound to its subscribing host.
type HostFilter struct {
	ID   int
	Host int
	Expr subscription.Expr
}

// NetValidator certifies the whole deployment — every switch's current
// program against the live subscription set — at a quiescent point (no
// in-flight events, so the programs and the filter registry are a
// consistent cut). progs is indexed by switch ID; nil entries are
// switches that never compiled (they drop everything, which the
// checker treats as a black hole if any class needed them). The
// validator must not retain either slice.
type NetValidator func(progs []*compiler.Program, filters []HostFilter) error

// NetcheckValidator builds a network-wide delivery validator from the
// symbolic verifier (internal/analysis/netcheck): every sampled
// quiescence re-proves the three invariants — no black holes, no
// loops, exact delivery — for the control plane's current placement.
// Like ProveValidator, a budget overflow is a validation error: the
// certificate must be complete to count.
//
// maxPaths bounds each per-switch symbolic exploration (0 uses the
// verifier default).
func NetcheckValidator(net *topology.Network, sp *spec.Spec, maxPaths int) NetValidator {
	return func(progs []*compiler.Program, filters []HostFilter) error {
		irs := make([]*prove.Program, len(progs))
		for i, p := range progs {
			if p == nil {
				continue
			}
			ir, err := p.ProveIR()
			if err != nil {
				return fmt.Errorf("%w: netcheck: switch %d: export IR: %v", ErrValidationFailed, i, err)
			}
			irs[i] = ir
		}
		subs := make([]netcheck.Subscription, len(filters))
		for i, f := range filters {
			subs[i] = netcheck.Subscription{ID: f.ID, Host: f.Host, Expr: f.Expr}
		}
		res, err := netcheck.CheckFatTree(net, sp, irs, subs, netcheck.Options{MaxPaths: maxPaths})
		if err != nil {
			return fmt.Errorf("%w: netcheck: %v", ErrValidationFailed, err)
		}
		if res.Ok() {
			return nil
		}
		if res.Overflowed && len(res.Findings) == 0 {
			return fmt.Errorf("%w: netcheck: symbolic budget exhausted after %d classes",
				ErrValidationFailed, res.Classes)
		}
		f := res.Findings[0]
		return fmt.Errorf("%w: netcheck: %d findings; first: %s (host %d, ingress %d): %s",
			ErrValidationFailed, len(res.Findings), f.Kind, f.Host, f.Ingress, f.Message)
	}
}

package ctlplane

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"camus/internal/routing"
	"camus/internal/subscription"
	"camus/internal/topology"
)

// newTenantsForTest stacks a tenancy layer over a recording-installer
// service.
func newTenantsForTest(t *testing.T, net *topology.Network, topts []TenantOption, sopts ...Option) (*Tenants, *Service) {
	t.Helper()
	svc, _ := newServiceForTest(t, net, append(sopts,
		WithRouting(routing.Options{Policy: routing.TrafficReduction}))...)
	tn := NewTenants(svc, topts...)
	t.Cleanup(tn.Close)
	return tn, svc
}

// TestTenantQuotaRejection: MaxSubscriptions is a hard admission wall —
// the rejected event never reaches the shared reconciler — and
// unsubscribing frees headroom.
func TestTenantQuotaRejection(t *testing.T) {
	net := topology.MustFatTree(4)
	tn, _ := newTenantsForTest(t, net, nil)
	if err := tn.CreateTenant("acme", TenantQuota{MaxSubscriptions: 2}); err != nil {
		t.Fatal(err)
	}
	_, ids, err := tn.Subscribe("acme", 0, []subscription.Expr{filter(t, "stock == GOOGL")})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tn.Subscribe("acme", 1, []subscription.Expr{filter(t, "stock == MSFT")}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tn.Subscribe("acme", 2, []subscription.Expr{filter(t, "stock == AAPL")}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("third subscribe = %v, want ErrQuotaExceeded", err)
	}
	// A multi-filter subscribe that would cross the cap is refused as a
	// unit, not partially admitted.
	if err := tn.CreateTenant("batch", TenantQuota{MaxSubscriptions: 2}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tn.Subscribe("batch", 0, []subscription.Expr{
		filter(t, "stock == GOOGL"), filter(t, "stock == MSFT"), filter(t, "stock == FB"),
	}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-cap batch subscribe = %v, want ErrQuotaExceeded", err)
	}
	// Freeing a slot restores admission.
	if _, err := tn.Unsubscribe("acme", 0, ids); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tn.Subscribe("acme", 3, []subscription.Expr{filter(t, "stock == FB")}); err != nil {
		t.Fatalf("subscribe after freeing quota: %v", err)
	}
	snap, err := tn.Snapshot("acme")
	if err != nil {
		t.Fatal(err)
	}
	if snap.RejectedQuota != 1 || snap.Live != 2 {
		t.Errorf("snapshot = live %d rejectedQuota %d, want 2/1", snap.Live, snap.RejectedQuota)
	}
	// Unknown tenants are refused outright without auto-create.
	if _, _, err := tn.Subscribe("ghost", 0, []subscription.Expr{filter(t, "price > 1")}); !errors.Is(err, ErrUnknownTenant) {
		t.Errorf("unknown tenant subscribe = %v, want ErrUnknownTenant", err)
	}
}

// TestTenantRateLimit: the token bucket admits Burst events instantly,
// then refuses until it refills.
func TestTenantRateLimit(t *testing.T) {
	net := topology.MustFatTree(4)
	tn, _ := newTenantsForTest(t, net, nil)
	// ~0 refill over the test's lifetime: only the burst is spendable.
	if err := tn.CreateTenant("spam", TenantQuota{EventsPerSec: 0.001, Burst: 2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := tn.Subscribe("spam", i, []subscription.Expr{
			filter(t, fmt.Sprintf("price > %d", i)),
		}); err != nil {
			t.Fatalf("burst subscribe %d: %v", i, err)
		}
	}
	if _, _, err := tn.Subscribe("spam", 2, []subscription.Expr{filter(t, "price > 9")}); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("post-burst subscribe = %v, want ErrRateLimited", err)
	}
	// Unsubscribes spend from the same bucket.
	if _, err := tn.Unsubscribe("spam", 0, []int{0}); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("post-burst unsubscribe = %v, want ErrRateLimited", err)
	}
	snap, _ := tn.Snapshot("spam")
	if snap.RejectedRate != 2 {
		t.Errorf("RejectedRate = %d, want 2", snap.RejectedRate)
	}
}

// TestTenantOwnership: one tenant can never unsubscribe another's
// filters — the namespace check fires before the shared reconciler is
// reached.
func TestTenantOwnership(t *testing.T) {
	net := topology.MustFatTree(4)
	tn, _ := newTenantsForTest(t, net, nil)
	for _, name := range []string{"alice", "bob"} {
		if err := tn.CreateTenant(name, TenantQuota{}); err != nil {
			t.Fatal(err)
		}
	}
	_, ids, err := tn.Subscribe("alice", 0, []subscription.Expr{filter(t, "stock == GOOGL")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Unsubscribe("bob", 0, ids); !errors.Is(err, ErrUnknownFilter) {
		t.Errorf("cross-tenant unsubscribe = %v, want ErrUnknownFilter", err)
	}
	// Same tenant, wrong host: also refused.
	if _, err := tn.Unsubscribe("alice", 1, ids); !errors.Is(err, ErrUnknownFilter) {
		t.Errorf("wrong-host unsubscribe = %v, want ErrUnknownFilter", err)
	}
	if _, err := tn.Unsubscribe("alice", 0, ids); err != nil {
		t.Errorf("owner unsubscribe: %v", err)
	}
}

// TestCrossTenantFairness: a hostile neighbor flooding its own queue
// must not starve a quiet tenant. The round-robin dispatcher hands one
// event per tenant per turn, so the victim's few events ride alongside
// the flood — when the victim finishes, the hostile backlog must still
// be mostly intact, and no single victim event may have waited for the
// whole flood to drain.
func TestCrossTenantFairness(t *testing.T) {
	const (
		hostileOps = 120
		victimOps  = 8
	)
	net := topology.MustFatTree(4)
	tn, _ := newTenantsForTest(t, net, nil,
		WithQueueDepth(1),
		WithApplyHook(func(sw, attempt int) error {
			time.Sleep(200 * time.Microsecond) // slow applies → dispatch slots are scarce
			return nil
		}))
	for _, name := range []string{"hostile", "victim"} {
		if err := tn.CreateTenant(name, TenantQuota{}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < hostileOps; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tn.Subscribe("hostile", i%4, []subscription.Expr{
				filter(t, fmt.Sprintf("price > %d", i)),
			})
		}(i)
	}
	// Wait until the flood is queued so the victim truly contends.
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap, _ := tn.Snapshot("hostile")
		if snap.Pending >= hostileOps*3/4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hostile queue never filled: pending %d", snap.Pending)
		}
		time.Sleep(time.Millisecond)
	}
	var worst time.Duration
	for i := 0; i < victimOps; i++ {
		start := time.Now()
		if _, _, err := tn.Subscribe("victim", 8+i%4, []subscription.Expr{
			filter(t, fmt.Sprintf("stock == GOOGL and price > %d", i)),
		}); err != nil {
			t.Fatalf("victim subscribe %d: %v", i, err)
		}
		if d := time.Since(start); d > worst {
			worst = d
		}
	}
	hostile, _ := tn.Snapshot("hostile")
	if hostile.Pending < hostileOps/2 {
		t.Errorf("victim finished only after the flood drained (hostile pending %d of %d) — no fairness",
			hostile.Pending, hostileOps)
	}
	// Generous wall-clock bound: each victim event waits one round-robin
	// turn, not the whole hostile backlog.
	if worst > 2*time.Second {
		t.Errorf("victim p100 latency %v — starved behind hostile backlog", worst)
	}
	wg.Wait()
}

// TestWALCrashRecovery is the durability certification: kill the
// control plane mid-churn (synced log, torn final record, no clean
// shutdown), replay the log into a fresh service, and require the
// reconstructed state to be Canonical()-identical per switch with the
// same filter registry — refcounts included, since a divergent
// refcount would change some program or some later removal.
func TestWALCrashRecovery(t *testing.T) {
	net := topology.MustFatTree(4)
	path := filepath.Join(t.TempDir(), "events.log")
	log1, err := OpenLog(path, WithFsyncEveryN(4))
	if err != nil {
		t.Fatal(err)
	}
	svc1, _ := newServiceForTest(t, net,
		WithRouting(routing.Options{Policy: routing.TrafficReduction, Alpha: 10}))
	tn1 := NewTenants(svc1, WithEventLog(log1))
	tenants := []string{"alpha", "beta", "gamma"}
	for _, name := range tenants {
		if err := tn1.CreateTenant(name, TenantQuota{MaxSubscriptions: 100}); err != nil {
			t.Fatal(err)
		}
	}
	stocks := []string{"GOOGL", "MSFT", "AAPL", "FB"}
	type liveID struct{ host, id int }
	live := map[string][]liveID{}
	for i := 0; i < 120; i++ {
		name := tenants[i%len(tenants)]
		if ids := live[name]; len(ids) > 0 && i%5 == 4 {
			lf := ids[0]
			live[name] = ids[1:]
			if _, err := tn1.Unsubscribe(name, lf.host, []int{lf.id}); err != nil {
				t.Fatalf("op %d: unsubscribe: %v", i, err)
			}
			continue
		}
		host := i % len(net.Hosts)
		// Repeats across tenants exercise shared-place refcounts: the
		// same (port, filter) pair subscribed by several tenants.
		src := fmt.Sprintf("stock == %s and price > %d", stocks[i%len(stocks)], i%7)
		_, ids, err := tn1.Subscribe(name, host, []subscription.Expr{filter(t, src)})
		if err != nil {
			t.Fatalf("op %d: subscribe: %v", i, err)
		}
		live[name] = append(live[name], liveID{host: host, id: ids[0]})
	}
	svc1.Quiesce()

	// Pre-crash ground truth.
	wantProgs := make([]string, len(net.Switches))
	for sw := range net.Switches {
		wantProgs[sw] = svc1.Program(sw).Canonical().String()
	}
	wantFilters := make(map[int][]int)
	for h := range net.Hosts {
		wantFilters[h] = svc1.Filters(h)
	}
	wantLive := map[string]map[int][]int{}
	for _, name := range tenants {
		lf, err := tn1.LiveFilters(name)
		if err != nil {
			t.Fatal(err)
		}
		wantLive[name] = lf
	}
	wantSeq := log1.Seq()

	// "Crash": records are synced, but the process dies mid-append —
	// no clean Close, and a torn record at the tail.
	if err := log1.Sync(); err != nil {
		t.Fatal(err)
	}
	tn1.Close()
	if err := log1.Close(); err != nil { // release the handle; durability came from Sync above
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0x01, 0x00, 'g', 'a', 'r', 'b'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Recovery: open (truncates the torn tail), replay into a fresh
	// service, certify.
	log2, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if log2.Seq() != wantSeq {
		t.Fatalf("recovered log seq %d, want %d (torn tail must not count)", log2.Seq(), wantSeq)
	}
	svc2, _ := newServiceForTest(t, net,
		WithRouting(routing.Options{Policy: routing.TrafficReduction, Alpha: 10}))
	tn2 := NewTenants(svc2, WithEventLog(log2))
	defer tn2.Close()
	n, err := tn2.Replay()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if int64(n) != wantSeq {
		t.Fatalf("replayed %d records, want %d", n, wantSeq)
	}
	for sw := range net.Switches {
		got := svc2.Program(sw).Canonical().String()
		if got != wantProgs[sw] {
			t.Errorf("switch %d: replayed program differs from pre-crash program", sw)
		}
	}
	for h := range net.Hosts {
		got := svc2.Filters(h)
		if fmt.Sprint(got) != fmt.Sprint(wantFilters[h]) {
			t.Errorf("host %d: replayed filters %v, want %v", h, got, wantFilters[h])
		}
	}
	for _, name := range tenants {
		got, err := tn2.LiveFilters(name)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(wantLive[name]) {
			t.Errorf("tenant %s: replayed live set %v, want %v", name, got, wantLive[name])
		}
	}

	// The recovered plane stays writable: new events append after the
	// truncated tail and interoperate with replayed refcounts.
	name := tenants[0]
	lf := live[name][0]
	if _, err := tn2.Unsubscribe(name, lf.host, []int{lf.id}); err != nil {
		t.Fatalf("post-recovery unsubscribe of replayed filter: %v", err)
	}
	if _, _, err := tn2.Subscribe(name, 0, []subscription.Expr{filter(t, "stock == HP")}); err != nil {
		t.Fatalf("post-recovery subscribe: %v", err)
	}
	if log2.Seq() != wantSeq+2 {
		t.Errorf("post-recovery log seq %d, want %d", log2.Seq(), wantSeq+2)
	}
}

// TestLogTornTail: the low-level framing contract — a torn or corrupt
// tail is truncated on open, complete records survive, and appends
// resume at the right sequence number.
func TestLogTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.log")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(&LogRecord{Op: "tenant", Tenant: fmt.Sprintf("t%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Torn tail: a length prefix promising 256 bytes, 4 bytes present.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x00, 0x00, 0x01, 0x00, 0xde, 0xad, 0xbe, 0xef})
	f.Close()

	l2, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Seq() != 5 {
		t.Fatalf("Seq after torn-tail open = %d, want 5", l2.Seq())
	}
	if l2.Truncated() != 8 {
		t.Errorf("Truncated = %d, want 8 (the torn tail)", l2.Truncated())
	}
	var seen []string
	n, err := l2.Replay(func(rec *LogRecord) error {
		seen = append(seen, rec.Tenant)
		return nil
	})
	if err != nil || n != 5 {
		t.Fatalf("Replay = %d, %v; want 5, nil", n, err)
	}
	if err := l2.Append(&LogRecord{Op: "tenant", Tenant: "t5"}); err != nil {
		t.Fatal(err)
	}
	if l2.Seq() != 6 {
		t.Errorf("Seq after append = %d, want 6", l2.Seq())
	}
	if err := l2.Sync(); err != nil {
		t.Fatal(err)
	}
	n, err = l2.Replay(func(rec *LogRecord) error { return nil })
	if err != nil || n != 6 {
		t.Errorf("Replay after append = %d, %v; want 6, nil", n, err)
	}
}

// TestLogCorruptionDetected: a flipped byte in the middle of the log —
// committed, fsynced records after it — is not a torn tail and must
// fail the open loudly instead of silently truncating away everything
// behind it.
func TestLogCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.log")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(&LogRecord{Op: "tenant", Tenant: fmt.Sprintf("t%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0xff // inside the first record's JSON payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLog(path); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("OpenLog on mid-log corruption = %v, want checksum error", err)
	}
}

// TestWALAutoCreateTenantRecordOrdering: an auto-created tenant's
// "tenant" record must land in the log before any of its event
// records, no matter how the dispatcher races the creating caller —
// and even when the tenant's very first event is rejected at
// admission. Pre-fix, both shapes produced a log whose replay died
// with "subscribe for unknown tenant".
func TestWALAutoCreateTenantRecordOrdering(t *testing.T) {
	net := topology.MustFatTree(4)
	path := filepath.Join(t.TempDir(), "auto.log")
	log1, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	svc1, _ := newServiceForTest(t, net,
		WithRouting(routing.Options{Policy: routing.TrafficReduction}))
	tn1 := NewTenants(svc1, WithEventLog(log1), WithAutoCreate(),
		WithDefaultQuota(TenantQuota{MaxSubscriptions: 4}))

	// Deterministic shape: the tenant is minted by a quota-rejected
	// event; its tenant record must be durable anyway.
	if _, _, err := tn1.Subscribe("reject-first", 0, []subscription.Expr{
		filter(t, "price > 1"), filter(t, "price > 2"), filter(t, "price > 3"),
		filter(t, "price > 4"), filter(t, "price > 5"),
	}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota first subscribe = %v, want ErrQuotaExceeded", err)
	}
	if _, _, err := tn1.Subscribe("reject-first", 0, []subscription.Expr{filter(t, "stock == GOOGL")}); err != nil {
		t.Fatal(err)
	}
	// Racy shape: many fresh tenants subscribing concurrently, so the
	// dispatcher is busy appending "sub" records while callers append
	// "tenant" records.
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, _, err := tn1.Subscribe(fmt.Sprintf("tn%02d", i), i%len(net.Hosts), []subscription.Expr{
				filter(t, fmt.Sprintf("price > %d", i)),
			}); err != nil {
				t.Errorf("tenant %d subscribe: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	tn1.Close()
	if err := log1.Close(); err != nil {
		t.Fatal(err)
	}

	log2, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	svc2, _ := newServiceForTest(t, net,
		WithRouting(routing.Options{Policy: routing.TrafficReduction}))
	tn2 := NewTenants(svc2, WithEventLog(log2))
	defer tn2.Close()
	if _, err := tn2.Replay(); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if got := tn2.TenantCount(); got != 17 {
		t.Errorf("replayed TenantCount = %d, want 17", got)
	}
}

// TestTenantRequotaKeepsTokens: re-PUTting a tenant must not refill
// its token bucket — otherwise a tenant re-quotas itself before every
// subscribe and the EventsPerSec admission control is a no-op.
func TestTenantRequotaKeepsTokens(t *testing.T) {
	net := topology.MustFatTree(4)
	tn, _ := newTenantsForTest(t, net, nil)
	quota := TenantQuota{EventsPerSec: 0.001, Burst: 2}
	if err := tn.CreateTenant("spam", quota); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := tn.Subscribe("spam", i, []subscription.Expr{
			filter(t, fmt.Sprintf("price > %d", i)),
		}); err != nil {
			t.Fatalf("burst subscribe %d: %v", i, err)
		}
	}
	// The bucket is empty; a re-PUT with the same quota must not refill it.
	if err := tn.CreateTenant("spam", quota); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tn.Subscribe("spam", 2, []subscription.Expr{filter(t, "price > 9")}); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("post-requota subscribe = %v, want ErrRateLimited (re-quota refilled the bucket)", err)
	}
	// Nor may a larger burst mint tokens retroactively.
	if err := tn.CreateTenant("spam", TenantQuota{EventsPerSec: 0.001, Burst: 100}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tn.Subscribe("spam", 3, []subscription.Expr{filter(t, "price > 10")}); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("post-burst-raise subscribe = %v, want ErrRateLimited", err)
	}
}

// TestTenantAutoCreate: WithAutoCreate mints tenants on first use with
// the default quota — the thousands-of-tenants soak shape.
func TestTenantAutoCreate(t *testing.T) {
	net := topology.MustFatTree(4)
	tn, _ := newTenantsForTest(t, net, []TenantOption{
		WithAutoCreate(),
		WithDefaultQuota(TenantQuota{MaxSubscriptions: 1}),
	})
	if _, _, err := tn.Subscribe("fresh", 0, []subscription.Expr{filter(t, "stock == GOOGL")}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tn.Subscribe("fresh", 1, []subscription.Expr{filter(t, "stock == MSFT")}); !errors.Is(err, ErrQuotaExceeded) {
		t.Errorf("default quota not applied to auto-created tenant: %v", err)
	}
	if tn.TenantCount() != 1 {
		t.Errorf("TenantCount = %d, want 1", tn.TenantCount())
	}
	snaps := tn.Snapshots()
	if len(snaps) != 1 || snaps[0].Name != "fresh" || snaps[0].Live != 1 {
		t.Errorf("Snapshots = %+v", snaps)
	}
}

package ctlplane

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"camus/internal/compiler"
	"camus/internal/routing"
	"camus/internal/subscription"
	"camus/internal/topology"
)

// TestValidatorRejectsBatch: a failing validator must fail the batch's
// events with ErrApplyFailed and keep the program away from the
// installer entirely.
func TestValidatorRejectsBatch(t *testing.T) {
	net := topology.MustFatTree(4)
	var calls atomic.Int64
	svc, ris := newServiceForTest(t, net,
		WithRouting(routing.Options{Policy: routing.TrafficReduction}),
		WithValidator(func(sw int, prog *compiler.Program, rules []*subscription.Rule) error {
			calls.Add(1)
			return fmt.Errorf("%w: injected", ErrValidationFailed)
		}, 0))
	ev, _, err := svc.Subscribe(0, []subscription.Expr{filter(t, "stock == GOOGL")})
	if err != nil {
		t.Fatal(err)
	}
	<-ev.Done()
	if !errors.Is(ev.Err(), ErrApplyFailed) {
		t.Errorf("event error = %v, want ErrApplyFailed", ev.Err())
	}
	svc.Quiesce()
	snap := svc.Stats()
	if snap.Validations == 0 || snap.ValidationFailures != snap.Validations {
		t.Errorf("validations=%d failures=%d, want all validated batches rejected",
			snap.Validations, snap.ValidationFailures)
	}
	if calls.Load() != snap.Validations {
		t.Errorf("validator called %d times, stats say %d", calls.Load(), snap.Validations)
	}
	for sw, ri := range ris {
		if ri.installs.Load() != 0 {
			t.Errorf("switch %d: %d installs reached the switch despite failed validation",
				sw, ri.installs.Load())
		}
	}
}

// TestProveValidatorCertifiesService: the real translation validator,
// always-on, must certify every epoch of a small subscribe/unsubscribe
// sequence — and the programs still install normally.
func TestProveValidatorCertifiesService(t *testing.T) {
	net := topology.MustFatTree(4)
	svc, ris := newServiceForTest(t, net,
		WithRouting(routing.Options{Policy: routing.TrafficReduction, Alpha: 10}),
		WithValidator(ProveValidator(net, 0), 0))
	ev, ids, err := svc.Subscribe(2, []subscription.Expr{
		filter(t, "stock == GOOGL and price > 50"),
		filter(t, "stock == MSFT"),
	})
	if err != nil {
		t.Fatal(err)
	}
	<-ev.Done()
	if ev.Err() != nil {
		t.Fatalf("subscribe event failed: %v", ev.Err())
	}
	ev2, err := svc.Unsubscribe(2, ids[:1])
	if err != nil {
		t.Fatal(err)
	}
	<-ev2.Done()
	if ev2.Err() != nil {
		t.Fatalf("unsubscribe event failed: %v", ev2.Err())
	}
	svc.Quiesce()
	snap := svc.Stats()
	if snap.Validations == 0 {
		t.Error("always-on validator never ran")
	}
	if snap.ValidationFailures != 0 || snap.Failures != 0 {
		t.Errorf("clean churn flagged disequivalent: %+v", snap)
	}
	if snap.Validations != snap.Batches {
		t.Errorf("always-on: validations %d != batches %d", snap.Validations, snap.Batches)
	}
	tor, _ := net.Access(2)
	if ris[tor].installs.Load() == 0 {
		t.Errorf("no install reached host 2's ToR")
	}
}

// TestValidateEverySampling: with ValidateEvery=N only a fraction of
// batches pay for a proof.
func TestValidateEverySampling(t *testing.T) {
	net := topology.MustFatTree(4)
	svc, _ := newServiceForTest(t, net,
		WithRouting(routing.Options{Policy: routing.TrafficReduction}),
		WithValidator(ProveValidator(net, 0), 4))
	for i := 0; i < 12; i++ {
		stock := []string{"GOOGL", "MSFT", "AAPL"}[i%3]
		ev, _, err := svc.Subscribe(i%4, []subscription.Expr{
			filter(t, fmt.Sprintf("stock == %s and price > %d", stock, i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		<-ev.Done() // serialize so coalescing can't collapse the batches
	}
	svc.Quiesce()
	snap := svc.Stats()
	if snap.Validations == 0 {
		t.Error("sampled validator never ran (first batch is always validated)")
	}
	if snap.Validations >= snap.Batches {
		t.Errorf("sampling had no effect: validations %d >= batches %d",
			snap.Validations, snap.Batches)
	}
	if snap.ValidationFailures != 0 {
		t.Errorf("clean programs flagged: %+v", snap)
	}
}

package ctlplane

import (
	"fmt"
	"math/rand"
	"testing"

	"camus/internal/routing"
	"camus/internal/routing/cover"
	"camus/internal/subscription"
	"camus/internal/topology"
)

// TestCoveringMatchesBatchReduce is the covering analogue of
// TestPlacementMatchesAlgorithm1: for random subscription sets — with
// random interleaved removals — the covering reconciler's registered
// rule set per switch must equal the batch pipeline's, i.e.
// ComputeFatTree followed by cover.ReduceResult. Both sides keep
// exactly the maximal filters per port, so the incremental forest
// maintenance must converge to the batch covering regardless of
// operation order.
func TestCoveringMatchesBatchReduce(t *testing.T) {
	net := topology.MustFatTree(4)
	r := rand.New(rand.NewSource(23))
	im := cover.NewImplier(itchSpec, 0)
	for _, policy := range []routing.Policy{routing.MemoryReduction, routing.TrafficReduction} {
		for _, alpha := range []int64{0, 10} {
			for trial := 0; trial < 4; trial++ {
				subs := randomSubs(r, len(net.Hosts), 3)
				ropts := routing.Options{Policy: policy, Alpha: alpha}
				rec, err := NewReconcilerWith(net, itchSpec, WithRouting(ropts), WithCovering(0))
				if err != nil {
					t.Fatal(err)
				}
				type liveSub struct {
					id   int
					host int
					pos  int
				}
				var live []liveSub
				for h, exprs := range subs {
					for i, e := range exprs {
						id, _, err := rec.AddFilter(h, e)
						if err != nil {
							t.Fatal(err)
						}
						live = append(live, liveSub{id: id, host: h, pos: i})
					}
				}
				// Remove a random third, so uncovering paths run too.
				r.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
				drop := len(live) / 3
				removed := make(map[int]map[int]bool) // host → pos set
				for _, s := range live[:drop] {
					if _, err := rec.RemoveFilter(s.host, s.id); err != nil {
						t.Fatal(err)
					}
					if removed[s.host] == nil {
						removed[s.host] = make(map[int]bool)
					}
					removed[s.host][s.pos] = true
				}
				remaining := make([][]subscription.Expr, len(subs))
				for h, exprs := range subs {
					for i, e := range exprs {
						if !removed[h][i] {
							remaining[h] = append(remaining[h], e)
						}
					}
				}
				res, err := routing.ComputeFatTree(net, remaining, ropts)
				if err != nil {
					t.Fatal(err)
				}
				cover.ReduceResult(im, res)
				for sw := range net.Switches {
					want := ruleSet(res.RulesForSwitch(sw))
					got := ruleSet(rec.pendingRules(sw))
					if fmt.Sprint(got) != fmt.Sprint(want) {
						t.Fatalf("%v α=%d trial %d switch %s:\n got %v\nwant %v",
							policy, alpha, trial, net.Switches[sw].Name, got, want)
					}
				}
			}
		}
	}
}

// TestCoveringUncoverBatch asserts the no-gap contract at the op
// level: unsubscribing a covering filter emits, for the access switch,
// the root's delete and the promoted child's install in one op slice,
// which Compile lands as a single epoch.
func TestCoveringUncoverBatch(t *testing.T) {
	net := topology.MustFatTree(4)
	rec, err := NewReconcilerWith(net, itchSpec,
		WithRouting(routing.Options{Policy: routing.TrafficReduction}), WithCovering(0))
	if err != nil {
		t.Fatal(err)
	}
	broad := filter(t, "stock == GOOGL")
	narrow := filter(t, "stock == GOOGL and price > 500")
	broadID, ops, err := rec.AddFilter(0, broad)
	if err != nil {
		t.Fatal(err)
	}
	drainAll(t, rec, ops)
	_, ops, err = rec.AddFilter(0, narrow)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 0 {
		t.Fatalf("covered subscribe emitted %d ops, want 0", len(ops))
	}
	entries, obligations := rec.CoverStats()
	if obligations == 0 || entries == 0 {
		t.Fatalf("CoverStats = %d entries, %d obligations; want both > 0", entries, obligations)
	}
	covered := rec.CoveredFilters()
	if len(covered) != 1 || covered[broadID] {
		t.Fatalf("CoveredFilters = %v, want exactly the narrow filter", covered)
	}

	ops, err = rec.RemoveFilter(0, broadID)
	if err != nil {
		t.Fatal(err)
	}
	asw, _ := net.Access(0)
	var dels, adds int
	for _, op := range ops {
		if op.Switch != asw {
			continue
		}
		if op.Add {
			adds++
			if op.Rule.Filter.String() != narrow.String() {
				t.Fatalf("promoted install is %q, want %q", op.Rule.Filter, narrow)
			}
		} else {
			dels++
		}
	}
	if dels != 1 || adds != 1 {
		t.Fatalf("access-switch uncover batch: %d deletes, %d installs; want 1/1", dels, adds)
	}
	results := drainAll(t, rec, ops)
	if res := results[asw]; res == nil || res.Full {
		t.Fatalf("access switch compile = %+v, want incremental result", results[asw])
	}
	if got := ruleSet(rec.Rules(asw)); len(got) == 0 {
		t.Fatal("access switch lost all rules after uncovering")
	}
	if rec.CoveredFilters()[broadID] || len(rec.CoveredFilters()) != 0 {
		t.Fatalf("CoveredFilters after uncover = %v, want empty", rec.CoveredFilters())
	}
}

// TestCoveringServiceSnapshot drives covering through the async
// Service and checks the Snapshot telemetry and per-filter covered
// accounting.
func TestCoveringServiceSnapshot(t *testing.T) {
	net := topology.MustFatTree(4)
	svc, err := New(net, itchSpec,
		WithRouting(routing.Options{Policy: routing.TrafficReduction, Alpha: 10}),
		WithCovering(0))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, _, err := svc.Subscribe(0, []subscription.Expr{filter(t, "stock == GOOGL")}); err != nil {
		t.Fatal(err)
	}
	_, ids, err := svc.Subscribe(0, []subscription.Expr{filter(t, "stock == GOOGL and price > 500")})
	if err != nil {
		t.Fatal(err)
	}
	svc.Quiesce()
	snap := svc.Stats()
	if !snap.Covering || snap.CoverEntries == 0 || snap.CoverObligations == 0 {
		t.Fatalf("snapshot covering telemetry = %+v", snap)
	}
	if snap.CoverSavingsRatio <= 0 || snap.CoverSavingsRatio >= 1 {
		t.Fatalf("CoverSavingsRatio = %v, want in (0,1)", snap.CoverSavingsRatio)
	}
	covered := svc.CoveredFilters()
	if len(ids) != 1 || !covered[ids[0]] {
		t.Fatalf("CoveredFilters = %v, want narrow id %v covered", covered, ids)
	}
}

package ctlplane

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"camus/internal/analysis/fitcheck"
	"camus/internal/compiler"
	"camus/internal/routing"
	"camus/internal/spec"
	"camus/internal/subscription"
	"camus/internal/topology"
)

// Installer is a live apply target for one switch's program — satisfied
// structurally by *pipeline.Switch (atomic epoch Install). A nil
// installer makes the switch compile-only.
type Installer interface {
	Install(p *compiler.Program) error
}

// ErrClosed is returned for events submitted after Close.
var ErrClosed = errors.New("ctlplane: service closed")

// ErrAdmissionRejected is returned by Subscribe when the admission
// model (WithAdmission) predicts the delta would overflow a switch's
// pipeline. The registry is untouched: nothing was added, nothing needs
// rolling back.
var ErrAdmissionRejected = errors.New("ctlplane: admission rejected: pipeline would overflow")

// ErrApplyFailed marks an event whose switch apply exhausted its
// retries.
var ErrApplyFailed = errors.New("ctlplane: apply failed after retries")

// Config configures a Service.
//
// Deprecated: construct services with New and functional Options
// (WithRouting, WithDrift, WithQueueDepth, ...) instead of Config
// literals; this struct remains exported for one release as the shim
// behind NewService and as the Option target.
type Config struct {
	Net  *topology.Network
	Spec *spec.Spec
	// Routing selects the policy (MR/TR) and discretization α.
	Routing routing.Options
	// Compiler options applied per switch (LastHop is forced per switch
	// exactly as controller.Deploy does).
	Compiler compiler.Options
	// Parallelism bounds the worker fan-out inside each switch compile
	// (rule normalization + per-rule BDD chain construction), exploited
	// chiefly by the drift-threshold full recompile, which re-normalizes
	// a switch's whole registry in one batch. 0 means GOMAXPROCS.
	// Copied into Compiler.Parallelism when that is unset.
	Parallelism int
	// Installers by switch ID; nil entries leave a switch compile-only.
	Installers []Installer
	// MaxPending bounds in-flight subscription events; Subscribe and
	// Unsubscribe block when the queue is full (backpressure). Default
	// 1024.
	MaxPending int
	// RetryBase/RetryMax bound the exponential backoff between apply
	// retries (defaults 1ms / 100ms; ±50% jitter is applied).
	RetryBase time.Duration
	RetryMax  time.Duration
	// MaxRetries caps apply attempts per batch before the batch's
	// events fail (default 8).
	MaxRetries int
	// Drift is the full-recompile fallback threshold (see Reconciler);
	// 0 means DefaultDrift.
	Drift float64
	// ApplyHook, when set, runs before every install attempt — the
	// fault-injection point for retry/backoff tests. Returning an error
	// fails the attempt.
	ApplyHook func(sw, attempt int) error
	// Validator, when set, certifies each freshly compiled program
	// against the switch's surviving rule set before the install (see
	// ProveValidator for the translation-validation hookup). An error
	// fails the whole batch without installing, leaving the switch on
	// its previous epoch.
	Validator Validator
	// ValidateEvery samples validation under churn: each switch
	// validates every Nth compiled batch (and always the first). Values
	// ≤ 1 validate every batch.
	ValidateEvery int
	// NetValidator, when set, certifies the whole deployment's delivery
	// invariants at quiescent points — whenever the in-flight event
	// count returns to zero, the switch programs and the filter
	// registry form a consistent cut and are handed to the validator
	// (see NetcheckValidator). Failures are counted in the Snapshot;
	// they do not roll back the installed epoch.
	NetValidator NetValidator
	// NetValidateEvery samples network validation: every Nth quiescence
	// (and always the first). Values ≤ 1 validate every quiescence.
	NetValidateEvery int
	// Seed makes retry jitter reproducible (0 seeds from switch IDs
	// only).
	Seed int64
	// Covering enables subsumption-aware state reduction (see
	// WithCovering); CoverMaxNodes bounds each implication diagram
	// (≤ 0 selects cover.DefaultMaxNodes).
	Covering      bool
	CoverMaxNodes int
	// Admission, when set, statically fit-checks every subscribe before
	// any registry mutation (see WithAdmission): the predicted
	// per-switch entry delta must fit each switch's remaining pipeline
	// headroom or the subscribe fails with ErrAdmissionRejected,
	// leaving registry, forests, and installed programs untouched.
	Admission *fitcheck.Model
}

func (c Config) withDefaults() Config {
	if c.MaxPending <= 0 {
		c.MaxPending = 1024
	}
	if c.RetryBase <= 0 {
		c.RetryBase = time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 100 * time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 8
	}
	if c.Compiler.Parallelism == 0 {
		c.Compiler.Parallelism = c.Parallelism
	}
	return c
}

// Event tracks one subscription change from submission to the moment
// every affected switch runs the new epoch.
type Event struct {
	start     time.Time
	remaining atomic.Int32
	failed    atomic.Bool
	done      chan struct{}
}

// Done is closed when the event has been applied to (or failed on)
// every affected switch. Events touching no switch complete
// immediately.
func (e *Event) Done() <-chan struct{} { return e.done }

// Err reports ErrApplyFailed if any switch exhausted its retries.
// Meaningful after Done is closed.
func (e *Event) Err() error {
	if e.failed.Load() {
		return ErrApplyFailed
	}
	return nil
}

// swQueue is one switch's pending coalesced work (level-triggered: the
// worker drains everything queued since its last pass in one compile).
type swQueue struct {
	ops     []RuleOp
	events  []*Event
	notify  chan struct{}
	started bool
}

// Service is the long-running control plane: it owns the Reconciler,
// one apply worker per switch, and the end-to-end telemetry.
type Service struct {
	cfg Config
	rec *Reconciler

	mu        sync.Mutex
	quiesced  *sync.Cond
	inflight  int
	queues    []*swQueue
	latency   []float64 // event→applied latency, ns
	peakDepth int

	sem    chan struct{}
	closed chan struct{}
	wg     sync.WaitGroup

	events       atomic.Int64
	subscribes   atomic.Int64
	unsubscribes atomic.Int64
	batches      atomic.Int64
	installs     atomic.Int64
	deletes      atomic.Int64
	keeps        atomic.Int64
	retries      atomic.Int64
	fallbacks    atomic.Int64
	failures     atomic.Int64
	applied      atomic.Int64

	validations        atomic.Int64
	validationFailures atomic.Int64

	// netQuiescences counts inflight→0 transitions and netRunning the
	// network validations still executing (both under mu; Quiesce waits
	// for netRunning to drain so post-quiesce stats include them);
	// netValidations / netValidationFailures count sampled network
	// validator runs and their failures.
	netQuiescences        int
	netRunning            int
	netValidations        atomic.Int64
	netValidationFailures atomic.Int64

	// admissionChecks / admissionRejects count static fit checks run
	// before registry mutation (Config.Admission) and the subscribes
	// they refused.
	admissionChecks  atomic.Int64
	admissionRejects atomic.Int64
}

// NewService builds the control plane and starts one apply worker per
// switch. Close must be called to stop the workers.
//
// Deprecated: use New with functional options.
func NewService(cfg Config) (*Service, error) { return newService(cfg) }

// newService is the single construction path behind New and the
// deprecated NewService shim.
func newService(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	rec, err := newReconciler(cfg)
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg:    cfg,
		rec:    rec,
		sem:    make(chan struct{}, cfg.MaxPending),
		closed: make(chan struct{}),
	}
	s.quiesced = sync.NewCond(&s.mu)
	for range cfg.Net.Switches {
		s.queues = append(s.queues, &swQueue{notify: make(chan struct{}, 1)})
	}
	// The MR static up-port rules were registered by the Reconciler;
	// flush them through the normal apply path so installers start from
	// a live (possibly empty) program.
	if _, err := s.submit(func() (ops []RuleOp, err error) {
		return s.initialOps(), nil
	}, nil); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// initialOps re-emits install ops for rules registered before any event
// (the MR constant-true rules) so every installer receives a first
// program.
func (s *Service) initialOps() []RuleOp {
	var ops []RuleOp
	for _, sc := range s.rec.switches {
		for _, pr := range sc.places {
			if _, live := sc.rules[pr.ruleID]; !live {
				ops = append(ops, RuleOp{Switch: sc.id, Add: true, Rule: pr.rule, RuleID: pr.ruleID})
			}
		}
	}
	return ops
}

// Subscribe installs filters for a host and returns the event handle
// plus the assigned filter IDs. It blocks while the pending-event queue
// is full.
func (s *Service) Subscribe(host int, exprs []subscription.Expr) (*Event, []int, error) {
	var ids []int
	ev, err := s.submit(func() ([]RuleOp, error) {
		// Admission runs before the first AddFilter: a rejection must
		// leave the registry, forests, and live programs untouched —
		// rolling back a partial add under covering would mint new rule
		// IDs, so the only safe reject is one that never mutates.
		if s.cfg.Admission != nil {
			if err := s.admit(host, exprs); err != nil {
				return nil, err
			}
		}
		var all []RuleOp
		for _, e := range exprs {
			id, ops, err := s.rec.AddFilter(host, e)
			if err != nil {
				return nil, err
			}
			ids = append(ids, id)
			all = append(all, ops...)
		}
		return all, nil
	}, &s.subscribes)
	return ev, ids, err
}

// admit statically fit-checks a subscribe batch against every affected
// switch: the predicted new-rule count (Reconciler.PredictAdd) times a
// conservative per-filter entry bound (fitcheck.EntryEstimate) must fit
// the switch's remaining headroom. Called under s.mu with no prior
// mutation, so a rejection needs no rollback.
func (s *Service) admit(host int, exprs []subscription.Expr) error {
	s.admissionChecks.Add(1)
	need := make(map[int]int)
	for _, e := range exprs {
		adds, err := s.rec.PredictAdd(host, e)
		if err != nil {
			return err
		}
		per := fitcheck.EntryEstimate(e)
		for sw, n := range adds {
			need[sw] += n * per
		}
	}
	for sw, n := range need {
		if err := s.cfg.Admission.Admit(s.rec.Program(sw), n); err != nil {
			s.admissionRejects.Add(1)
			return fmt.Errorf("%w: switch %d: %v", ErrAdmissionRejected, sw, err)
		}
	}
	return nil
}

// Unsubscribe removes a host's filters by ID.
func (s *Service) Unsubscribe(host int, ids []int) (*Event, error) {
	return s.submit(func() ([]RuleOp, error) {
		var all []RuleOp
		for _, id := range ids {
			ops, err := s.rec.RemoveFilter(host, id)
			if err != nil {
				return nil, err
			}
			all = append(all, ops...)
		}
		return all, nil
	}, &s.unsubscribes)
}

// submit runs a registry mutation under the lock, fans its rule ops out
// to the per-switch queues, and returns the tracking event.
func (s *Service) submit(mutate func() ([]RuleOp, error), kind *atomic.Int64) (*Event, error) {
	select {
	case <-s.closed:
		return nil, ErrClosed
	case s.sem <- struct{}{}:
	}
	ev := &Event{start: time.Now(), done: make(chan struct{})}

	s.mu.Lock()
	ops, err := mutate()
	if err != nil {
		s.mu.Unlock()
		<-s.sem
		return nil, err
	}
	s.events.Add(1)
	if kind != nil {
		kind.Add(1)
	}
	s.inflight++
	if s.inflight > s.peakDepth {
		s.peakDepth = s.inflight
	}
	dirty := make(map[int]bool)
	for _, op := range ops {
		q := s.queues[op.Switch]
		q.ops = append(q.ops, op)
		if !dirty[op.Switch] {
			dirty[op.Switch] = true
			q.events = append(q.events, ev)
		}
	}
	ev.remaining.Store(int32(len(dirty)))
	s.mu.Unlock()

	if len(dirty) == 0 {
		s.complete(ev)
		return ev, nil
	}
	for sw := range dirty {
		s.kick(sw)
	}
	return ev, nil
}

// kick nudges a switch worker (level-triggered; a full channel already
// guarantees a future drain). Workers start lazily on first use so
// idle switches cost nothing.
func (s *Service) kick(sw int) {
	q := s.queues[sw]
	if q.startWorker(s, sw) {
		return // freshly started worker drains immediately
	}
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// startWorker launches the switch's apply worker on first kick.
func (q *swQueue) startWorker(s *Service, sw int) bool {
	s.mu.Lock()
	if q.started {
		s.mu.Unlock()
		return false
	}
	q.started = true
	s.mu.Unlock()
	s.wg.Add(1)
	go s.applyWorker(sw)
	return true
}

// complete finishes an event's bookkeeping for one fully-applied (or
// failed) switch batch.
func (s *Service) complete(ev *Event) {
	if n := ev.remaining.Load(); n > 0 {
		return
	}
	s.mu.Lock()
	s.latency = append(s.latency, float64(time.Since(ev.start).Nanoseconds()))
	s.inflight--
	s.applied.Add(1)
	// Quiescent cut: with no events in flight every worker is idle, so
	// the reconciler's programs and filter registry are consistent.
	// Snapshot them under the lock; run the (expensive) network
	// validator after releasing it.
	var netRun func()
	if s.inflight == 0 && s.cfg.NetValidator != nil {
		n := s.netQuiescences
		s.netQuiescences++
		if s.cfg.NetValidateEvery <= 1 || n%s.cfg.NetValidateEvery == 0 {
			progs := make([]*compiler.Program, len(s.cfg.Net.Switches))
			for i := range progs {
				progs[i] = s.rec.Program(i)
			}
			filters := s.rec.HostFilters()
			s.netRunning++
			netRun = func() {
				s.netValidations.Add(1)
				if err := s.cfg.NetValidator(progs, filters); err != nil {
					s.netValidationFailures.Add(1)
				}
				s.mu.Lock()
				s.netRunning--
				s.quiesced.Broadcast()
				s.mu.Unlock()
			}
		}
	}
	s.quiesced.Broadcast()
	s.mu.Unlock()
	close(ev.done)
	if netRun != nil {
		netRun()
	}
	<-s.sem
}

// finishSwitch decrements every event in a drained batch and completes
// those whose last switch this was.
func (s *Service) finishSwitch(events []*Event, failed bool) {
	for _, ev := range events {
		if failed {
			ev.failed.Store(true)
		}
		if ev.remaining.Add(-1) == 0 {
			s.complete(ev)
		}
	}
}

// applyWorker is one switch's apply loop: drain the coalesced op queue,
// compile once, install with retry/backoff, account telemetry.
func (s *Service) applyWorker(sw int) {
	defer s.wg.Done()
	rng := rand.New(rand.NewSource(s.cfg.Seed*0x9E3779B9 + int64(sw) + 1))
	q := s.queues[sw]
	batchNo := 0
	for {
		s.mu.Lock()
		ops := q.ops
		events := q.events
		q.ops, q.events = nil, nil
		s.mu.Unlock()

		if len(ops) == 0 {
			select {
			case <-s.closed:
				return
			case <-q.notify:
				continue
			}
		}

		res, err := s.rec.Compile(sw, ops)
		if err != nil {
			s.failures.Add(1)
			s.finishSwitch(events, true)
			continue
		}
		s.batches.Add(1)
		s.installs.Add(int64(res.AddedEntries))
		s.deletes.Add(int64(res.RemovedEntries))
		s.keeps.Add(int64(res.ReusedEntries))
		if res.Full {
			s.fallbacks.Add(1)
		}
		// Post-compile, pre-install translation validation. The worker
		// owns this switch's compile state, so rec.Rules(sw) is the
		// exact survivor set the batch produced.
		if s.cfg.Validator != nil && (s.cfg.ValidateEvery <= 1 || batchNo%s.cfg.ValidateEvery == 0) {
			s.validations.Add(1)
			if verr := s.cfg.Validator(sw, res.Program, s.rec.Rules(sw)); verr != nil {
				s.validationFailures.Add(1)
				s.failures.Add(1)
				batchNo++
				s.finishSwitch(events, true)
				continue
			}
		}
		batchNo++
		s.finishSwitch(events, !s.install(sw, res.Program, rng))
	}
}

// install pushes a program to the switch with exponential backoff +
// jitter on injected failures. Returns false when retries are
// exhausted or the service closes mid-retry.
func (s *Service) install(sw int, prog *compiler.Program, rng *rand.Rand) bool {
	var target Installer
	if sw < len(s.cfg.Installers) {
		target = s.cfg.Installers[sw]
	}
	for attempt := 0; ; attempt++ {
		err := func() error {
			if s.cfg.ApplyHook != nil {
				if herr := s.cfg.ApplyHook(sw, attempt); herr != nil {
					return herr
				}
			}
			if target == nil {
				return nil
			}
			return target.Install(prog)
		}()
		if err == nil {
			return true
		}
		if attempt+1 >= s.cfg.MaxRetries {
			s.failures.Add(1)
			return false
		}
		s.retries.Add(1)
		backoff := s.cfg.RetryBase << attempt
		if backoff > s.cfg.RetryMax || backoff <= 0 {
			backoff = s.cfg.RetryMax
		}
		// ±50% jitter decorrelates retry storms across switches.
		backoff = backoff/2 + time.Duration(rng.Int63n(int64(backoff)+1))
		select {
		case <-s.closed:
			return false
		case <-time.After(backoff):
		}
	}
}

// Quiesce blocks until every submitted event has been applied (or
// failed) and any in-progress network validation has finished.
func (s *Service) Quiesce() {
	s.mu.Lock()
	for s.inflight > 0 || s.netRunning > 0 {
		s.quiesced.Wait()
	}
	s.mu.Unlock()
}

// Program returns a switch's current compiled program (the control
// plane's view; the switch itself may still be applying it).
func (s *Service) Program(sw int) *compiler.Program {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec.Program(sw)
}

// Spec returns the message spec the control plane compiles against
// (the Tenants replay path re-parses logged filter sources with it).
func (s *Service) Spec() *spec.Spec { return s.cfg.Spec }

// Net returns the topology the control plane places subscriptions on.
func (s *Service) Net() *topology.Network { return s.cfg.Net }

// Filters returns a host's live filter IDs.
func (s *Service) Filters(host int) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec.Filters(host)
}

// HostFilters returns every live (filter, host) pair — the same
// consistent cut a NetValidator is handed at quiescent points. Call
// Quiesce first for a converged view.
func (s *Service) HostFilters() []HostFilter {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec.HostFilters()
}

// CoveredFilters returns the live filter IDs whose access-port entry
// is elided under covering mode (nil when covering is off). Tenant
// accounting uses this to report per-tenant covered-subscription
// counts.
func (s *Service) CoveredFilters() map[int]bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec.CoveredFilters()
}

// Close stops the apply workers. Pending batches not yet drained are
// abandoned; call Quiesce first for a clean shutdown.
func (s *Service) Close() {
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
	s.wg.Wait()
}

// String implements fmt.Stringer with a compact live summary.
func (s *Service) String() string {
	snap := s.Stats()
	return fmt.Sprintf("ctlplane{events=%d batches=%d +%d -%d =%d retries=%d fallbacks=%d}",
		snap.Events, snap.Batches, snap.Installs, snap.Deletes, snap.Keeps,
		snap.Retries, snap.Fallbacks)
}

package compiler

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"camus/internal/bdd"
	"camus/internal/spec"
	"camus/internal/subscription"
)

// The test spec splits fields across headers so header-absence paths
// (validity guards) get exercised; a decoded header always yields all of
// its fields.
const testSpecSrc = `
header ord_qty {
    shares : u32 @field;
    price : u32 @field;
}
header ord_sym {
    stock : str8 @field_exact;
    name : str16 @field;
}
`

func testSpec(t testing.TB) *spec.Spec {
	t.Helper()
	return spec.MustParse("test", testSpecSrc)
}

func compile(t testing.TB, sp *spec.Spec, src string, opts Options) *Program {
	t.Helper()
	rules, err := subscription.NewParser(sp).ParseRules(src)
	if err != nil {
		t.Fatalf("ParseRules: %v", err)
	}
	p, err := Compile(sp, rules, opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return p
}

// TestPaperFigure6 checks the three-stage pipeline (Shares, Stock, Leaf)
// produced for the running example and its evaluation semantics.
func TestPaperFigure6(t *testing.T) {
	sp := testSpec(t)
	p := compile(t, sp, `
shares < 100 and stock == GOOGL: fwd(1)
shares < 100 and stock == GOOGL: fwd(2)
shares >= 100 and stock == MSFT: fwd(3)
`, Options{})

	// Stages: validity guards first, then shares then stock (spec
	// order), plus the leaf.
	var names []string
	for _, st := range p.Stages {
		names = append(names, st.Name())
	}
	want := []string{"valid(ord_qty)", "valid(ord_sym)", "ord_qty.shares", "ord_sym.stock"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("stage order = %v, want %v", names, want)
	}
	// Overlapping rules must merge into one multicast action fwd(1,2).
	eval := func(shares int64, stock string) string {
		m := spec.NewMessage(sp)
		m.MustSet("shares", spec.IntVal(shares))
		m.MustSet("stock", spec.StrVal(stock))
		return p.Eval(m, nil).Key()
	}
	if got := eval(50, "GOOGL"); got != "fwd(1,2)" {
		t.Errorf("GOOGL/50 = %s, want fwd(1,2)", got)
	}
	if got := eval(150, "MSFT"); got != "fwd(3)" {
		t.Errorf("MSFT/150 = %s, want fwd(3)", got)
	}
	if got := eval(150, "GOOGL"); got != "fwd()" {
		t.Errorf("GOOGL/150 = %s, want drop", got)
	}
	// One multicast group for {1,2}.
	if len(p.Groups) != 1 || fmt.Sprint(p.Groups[0].Ports) != "[1 2]" {
		t.Errorf("groups = %+v, want one group [1 2]", p.Groups)
	}
}

// TestEntriesBoundedQuadratically verifies the consequence of the
// paper's §V-D domain-specific reductions: paths through a field
// component correspond to disjoint value regions, so each In node emits
// at most 2k+1 entries for k predicates on the field (regions are
// delimited by the predicate constants), and total stage entries are at
// most |In| × (2k+1) — the "at most quadratic" bound.
func TestEntriesBoundedQuadratically(t *testing.T) {
	sp := testSpec(t)
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		var b strings.Builder
		for i := 0; i < 12; i++ {
			fmt.Fprintf(&b, "shares > %d and shares < %d and price > %d: fwd(%d)\n",
				r.Intn(10), 10+r.Intn(10), r.Intn(10), r.Intn(5))
		}
		p := compile(t, sp, b.String(), Options{})
		for _, st := range p.Stages {
			k := len(st.Field.Preds)
			perIn := make(map[int32]int)
			for _, e := range st.Entries {
				perIn[e.In]++
			}
			for in, n := range perIn {
				if n > 2*k+1 {
					t.Errorf("trial %d stage %s state %d: %d entries > 2k+1 = %d",
						trial, st.Name(), in, n, 2*k+1)
				}
			}
			if len(st.Entries) > len(perIn)*(2*k+1) {
				t.Errorf("trial %d stage %s: %d entries exceed quadratic bound %d",
					trial, st.Name(), len(st.Entries), len(perIn)*(2*k+1))
			}
		}
	}
}

// TestEntriesPartitionDomain: for every stage and in-state, each concrete
// field value matches exactly one entry.
func TestEntriesPartitionDomain(t *testing.T) {
	sp := testSpec(t)
	p := compile(t, sp, `
price > 10 and price < 30: fwd(1)
price > 20 or price == 5: fwd(2)
price != 7: fwd(3)
`, Options{})
	for _, st := range p.Stages {
		byState := make(map[int32][]*Entry)
		for _, e := range st.Entries {
			byState[e.In] = append(byState[e.In], e)
		}
		for in, entries := range byState {
			for v := int64(0); v < 40; v++ {
				matched := 0
				for _, e := range entries {
					if e.Match.Matches(spec.IntVal(v)) {
						matched++
					}
				}
				if matched != 1 {
					t.Errorf("stage %s state %d value %d matched %d entries",
						st.Name(), in, v, matched)
				}
			}
		}
	}
}

func randomRules(r *rand.Rand, sp *spec.Spec, n int) []*subscription.Rule {
	p := subscription.NewParser(sp)
	stocks := []string{"GOOGL", "MSFT", "AAPL"}
	rels := []string{"==", "!=", "<", "<=", ">", ">="}
	var rules []*subscription.Rule
	for i := 0; i < n; i++ {
		var terms []string
		for _, f := range []string{"shares", "price"} {
			if r.Intn(2) == 0 {
				terms = append(terms, fmt.Sprintf("%s %s %d", f, rels[r.Intn(len(rels))], r.Intn(8)))
			}
		}
		if r.Intn(2) == 0 {
			terms = append(terms, fmt.Sprintf("stock == %s", stocks[r.Intn(len(stocks))]))
		}
		if len(terms) == 0 {
			terms = append(terms, fmt.Sprintf("price > %d", r.Intn(8)))
		}
		join := " and "
		if r.Intn(3) == 0 {
			join = " or "
		}
		src := fmt.Sprintf("%s: fwd(%d)", strings.Join(terms, join), r.Intn(6))
		rule, err := p.ParseRule(src, i)
		if err != nil {
			panic(err)
		}
		rules = append(rules, rule)
	}
	return rules
}

// TestProgramEquivalence: the compiled pipeline, the BDD, and brute-force
// rule evaluation agree on random workloads — including messages with
// absent fields (the lo-walk defaults).
func TestProgramEquivalence(t *testing.T) {
	sp := testSpec(t)
	r := rand.New(rand.NewSource(17))
	stocks := []string{"GOOGL", "MSFT", "AAPL", "ZZZ"}
	for trial := 0; trial < 40; trial++ {
		rules := randomRules(r, sp, 1+r.Intn(10))
		for _, opts := range []Options{{}, {DisableExactOpt: true}, {DisableCompression: true}} {
			p, err := Compile(sp, rules, opts)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			for i := 0; i < 50; i++ {
				m := spec.NewMessage(sp)
				if r.Intn(6) != 0 { // ord_qty header present or absent
					m.MustSet("shares", spec.IntVal(int64(r.Intn(10))))
					m.MustSet("price", spec.IntVal(int64(r.Intn(10))))
				}
				if r.Intn(6) != 0 { // ord_sym header present or absent
					m.MustSet("stock", spec.StrVal(stocks[r.Intn(len(stocks))]))
					m.MustSet("name", spec.StrVal("x"))
				}
				want := subscription.MatchActions(rules, m, nil).Key()
				got := p.Eval(m, nil).Key()
				if got != want {
					t.Fatalf("trial %d: pipeline mismatch on %s:\n got %s want %s\nprogram:\n%s",
						trial, m, got, want, p)
				}
			}
		}
	}
}

// TestStatefulLastHop: on a last-hop switch the aggregate gates
// forwarding and the leaf entries carry update directives; on a non-last-
// hop switch the stateful atom is erased (superset forwarding).
func TestStatefulLastHop(t *testing.T) {
	sp := testSpec(t)
	src := "stock == GOOGL and avg(price) > 60: fwd(1)"

	last := compile(t, sp, src, Options{LastHop: true})
	m := spec.NewMessage(sp)
	m.MustSet("stock", spec.StrVal("GOOGL"))
	m.MustSet("price", spec.IntVal(100))

	if got := last.Eval(m, nil).Key(); got != "fwd()" {
		t.Errorf("last hop, zero state: %s, want drop", got)
	}
	le := last.Lookup(m, nil)
	if le == nil || len(le.Updates) != 1 {
		t.Fatalf("expected update directive on matching stateless context, got %+v", le)
	}
	aggKey := le.Updates[0]
	st := subscription.MapState{aggKey: 61}
	if got := last.Eval(m, st).Key(); got != "fwd(1)" {
		t.Errorf("last hop, avg=61: %s, want fwd(1)", got)
	}
	// Non-matching stateless context must not update.
	m2 := spec.NewMessage(sp)
	m2.MustSet("stock", spec.StrVal("MSFT"))
	if le2 := last.Lookup(m2, nil); le2 != nil && len(le2.Updates) != 0 {
		t.Errorf("MSFT packet should not update GOOGL aggregate: %+v", le2)
	}

	up := compile(t, sp, src, Options{LastHop: false})
	if got := up.Eval(m, nil).Key(); got != "fwd(1)" {
		t.Errorf("upstream switch must forward superset: %s, want fwd(1)", got)
	}
	if regs := up.Resources.Registers; regs != 0 {
		t.Errorf("upstream program allocated %d registers, want 0", regs)
	}
}

func stageByName(t *testing.T, p *Program, name string) *Table {
	t.Helper()
	for _, st := range p.Stages {
		if st.Name() == name {
			return st
		}
	}
	t.Fatalf("no stage %q in program:\n%s", name, p)
	return nil
}

// TestExactMatchExtraction: equality-only stages classify as SRAM exact
// tables; range stages with few constants compress; the ablation flag
// forces TCAM.
func TestExactMatchExtraction(t *testing.T) {
	sp := testSpec(t)
	p := compile(t, sp, `
stock == GOOGL: fwd(1)
stock == MSFT: fwd(2)
`, Options{})
	if st := stageByName(t, p, "ord_sym.stock"); st.Kind != ExactTable {
		t.Errorf("stock stage = %v, want exact", st.Kind)
	}
	if p.Resources.TCAMBytes != 0 {
		t.Errorf("exact program uses TCAM: %+v", p.Resources)
	}

	p2 := compile(t, sp, "price > 10 and price < 500: fwd(1)", Options{})
	st2 := stageByName(t, p2, "ord_qty.price")
	if st2.Kind != CompressedTable {
		t.Errorf("price stage = %v, want compressed", st2.Kind)
	}
	if st2.MapEntries != 2*2+1 {
		t.Errorf("map entries = %d, want 5", st2.MapEntries)
	}

	p3 := compile(t, sp, "price > 10 and price < 500: fwd(1)", Options{DisableCompression: true})
	if st3 := stageByName(t, p3, "ord_qty.price"); st3.Kind != TernaryTable {
		t.Errorf("uncompressed price stage = %v, want ternary", st3.Kind)
	}
	if p3.Resources.TCAMBytes == 0 {
		t.Error("ternary stage consumed no TCAM")
	}

	p4 := compile(t, sp, "stock == GOOGL: fwd(1)", Options{DisableExactOpt: true})
	if st4 := stageByName(t, p4, "ord_sym.stock"); st4.Kind != TernaryTable {
		t.Errorf("DisableExactOpt: %v, want ternary", st4.Kind)
	}
}

func TestResourcesSanity(t *testing.T) {
	sp := testSpec(t)
	var b strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&b, "stock == S%02d and price > %d: fwd(%d)\n", i, i*10, i%32)
	}
	p := compile(t, sp, b.String(), Options{})
	r := p.Resources
	if r.Entries != p.TotalEntries() {
		t.Errorf("Entries %d != TotalEntries %d", r.Entries, p.TotalEntries())
	}
	if r.Entries == 0 || r.SRAMBytes == 0 {
		t.Errorf("degenerate resources: %+v", r)
	}
	if !r.Fits() {
		t.Errorf("100-rule program should fit the switch: %s", r)
	}
	if r.Stages != len(p.Stages)+1 {
		t.Errorf("stages = %d", r.Stages)
	}
}

func TestMaxEntriesGuard(t *testing.T) {
	sp := testSpec(t)
	rules, err := subscription.NewParser(sp).ParseRules(`
price > 1: fwd(1)
price > 2: fwd(2)
price > 3: fwd(3)
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(sp, rules, Options{MaxEntries: 2}); err == nil {
		t.Error("MaxEntries guard did not trip")
	}
}

func TestStaticPipeline(t *testing.T) {
	sp := testSpec(t)
	st, err := GenerateStatic(sp, StaticOptions{})
	if err != nil {
		t.Fatalf("GenerateStatic: %v", err)
	}
	if len(st.StageFields) != 4 {
		t.Errorf("stage fields = %d, want 4", len(st.StageFields))
	}
	if st.RegisterBlock != 64 || st.MaxParsedMessages != 4 || st.RecirculationPorts != 3 {
		t.Errorf("defaults wrong: %+v", st)
	}
	p := compile(t, sp, "price > 5 and avg(shares) > 3: fwd(1)", Options{LastHop: true})
	if err := st.Validate(p); err != nil {
		t.Errorf("Validate: %v", err)
	}
	other := spec.MustParse("other", "header h { x : u8 @field; }")
	p2, err := Compile(other, mustRules(t, other, "x > 1: fwd(1)"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Validate(p2); err == nil {
		t.Error("Validate accepted program for wrong spec")
	}

	empty := spec.MustParse("empty", "header h { x : u8; }")
	if _, err := GenerateStatic(empty, StaticOptions{}); err == nil {
		t.Error("GenerateStatic accepted spec with no subscribable fields")
	}
}

func mustRules(t *testing.T, sp *spec.Spec, src string) []*subscription.Rule {
	t.Helper()
	rules, err := subscription.NewParser(sp).ParseRules(src)
	if err != nil {
		t.Fatal(err)
	}
	return rules
}

// TestFieldOrderAblation: all three order heuristics compile and agree
// semantically (sizes may differ).
func TestFieldOrderAblation(t *testing.T) {
	sp := testSpec(t)
	r := rand.New(rand.NewSource(23))
	rules := randomRules(r, sp, 15)
	var programs []*Program
	for _, ord := range []bdd.FieldOrder{bdd.SpecOrder, bdd.SelectivityOrder, bdd.ReverseSpecOrder} {
		p, err := Compile(sp, rules, Options{BDD: bdd.Options{Order: ord}})
		if err != nil {
			t.Fatal(err)
		}
		programs = append(programs, p)
	}
	for i := 0; i < 60; i++ {
		m := spec.NewMessage(sp)
		m.MustSet("shares", spec.IntVal(int64(r.Intn(10))))
		m.MustSet("price", spec.IntVal(int64(r.Intn(10))))
		m.MustSet("stock", spec.StrVal([]string{"GOOGL", "MSFT", "AAPL"}[r.Intn(3)]))
		want := programs[0].Eval(m, nil).Key()
		for j, p := range programs[1:] {
			if got := p.Eval(m, nil).Key(); got != want {
				t.Fatalf("order %d disagrees on %s: %s vs %s", j+1, m, got, want)
			}
		}
	}
}

func BenchmarkCompile500(b *testing.B) {
	sp := testSpec(b)
	r := rand.New(rand.NewSource(4))
	rules := randomRules(r, sp, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(sp, rules, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	sp := testSpec(b)
	r := rand.New(rand.NewSource(4))
	rules := randomRules(r, sp, 500)
	p, err := Compile(sp, rules, Options{})
	if err != nil {
		b.Fatal(err)
	}
	m := spec.NewMessage(sp)
	m.MustSet("shares", spec.IntVal(5))
	m.MustSet("price", spec.IntVal(3))
	m.MustSet("stock", spec.StrVal("GOOGL"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Lookup(m, nil)
	}
}

package compiler

import (
	"errors"
	"sort"
)

// Classified errors for incremental rule maintenance. Callers (the
// control plane, RPC front ends) branch on these with errors.Is to
// distinguish caller mistakes from compile failures.
var (
	// ErrUnknownRule is returned by Remove for a rule ID that is not
	// installed.
	ErrUnknownRule = errors.New("compiler: rule not installed")
	// ErrDuplicateRule is returned by Add for a rule ID that is already
	// installed.
	ErrDuplicateRule = errors.New("compiler: rule already installed")
)

// DiffPrograms reports the control-plane delta between two programs
// compiled by the same engine: how many table entries must be installed,
// deleted, and how many carry over unchanged. Entry identity includes
// raw BDD state IDs, which are stable across rebuilds of one engine but
// not across different compilers — to compare programs from independent
// compilations (e.g. incremental vs. batch), diff their Canonical()
// forms instead.
func DiffPrograms(old, fresh *Program) (added, removed, reused int) {
	return diffPrograms(old, fresh)
}

// stateLess orders states by their already-assigned canonical number.
// Sorting must not assign numbers itself (comparator call order is not
// deterministic), so unassigned strays — unreachable entries, which a
// well-formed program does not have — order after assigned states by
// raw ID.
func stateLess(canon map[StateID]StateID, a, b StateID) bool {
	ca, aok := canon[a]
	cb, bok := canon[b]
	if aok != bok {
		return aok
	}
	if !aok {
		return a < b
	}
	return ca < cb
}

// Canonical returns a structurally renumbered copy of the program:
// state IDs are reassigned in a deterministic order derived only from
// the table structure (stages in pipeline order; within a stage,
// entries ordered by renumbered in-state then match key). Two programs
// with identical table structure canonicalize to byte-identical entry
// sets regardless of the BDD node IDs their compilers happened to
// allocate, which is what lets DiffPrograms compare an incrementally
// maintained program against a fresh batch compile.
func (p *Program) Canonical() *Program {
	canon := make(map[StateID]StateID)
	next := StateID(0)
	get := func(s StateID) StateID {
		if c, ok := canon[s]; ok {
			return c
		}
		c := next
		next++
		canon[s] = c
		return c
	}
	get(p.Init)

	np := &Program{
		Spec:      p.Spec,
		BDD:       p.BDD,
		Init:      canon[p.Init],
		Resources: p.Resources,
	}
	for _, t := range p.Stages {
		es := append([]*Entry(nil), t.Entries...)
		// Every in-state was numbered as an out-state of an earlier
		// stage (or is Init), so sorting by the renumbered in-state is
		// well defined; unreachable strays sort last by raw ID.
		sort.Slice(es, func(i, j int) bool {
			a, b := es[i], es[j]
			if a.In != b.In {
				return stateLess(canon, a.In, b.In)
			}
			return a.Match.Key() < b.Match.Key()
		})
		nt := &Table{
			Field:      t.Field,
			Kind:       t.Kind,
			Entries:    make([]*Entry, 0, len(es)),
			Defaults:   make(map[StateID]StateID, len(t.Defaults)),
			MapEntries: t.MapEntries,
		}
		for _, e := range es {
			nt.Entries = append(nt.Entries, &Entry{In: get(e.In), Match: e.Match, Out: get(e.Out)})
		}
		ins := make([]StateID, 0, len(t.Defaults))
		for in := range t.Defaults {
			ins = append(ins, in)
		}
		sort.Slice(ins, func(i, j int) bool { return stateLess(canon, ins[i], ins[j]) })
		for _, in := range ins {
			nt.Defaults[get(in)] = get(t.Defaults[in])
		}
		nt.index()
		np.Stages = append(np.Stages, nt)
	}
	leaf := append([]*LeafEntry(nil), p.Leaf...)
	sort.Slice(leaf, func(i, j int) bool { return stateLess(canon, leaf[i].In, leaf[j].In) })
	np.leafByState = make(map[StateID]*LeafEntry, len(leaf))
	// Multicast group IDs were allocated in terminal creation order, which
	// differs between compilers; renumber them in canonical-leaf
	// first-encounter order so group tables compare too.
	groupMap := make(map[int]int, len(p.Groups))
	for _, le := range leaf {
		g := le.Group
		if g >= 0 {
			ng, ok := groupMap[g]
			if !ok {
				ng = len(np.Groups)
				groupMap[g] = ng
				np.Groups = append(np.Groups, MulticastGroup{ID: ng, Ports: p.Groups[g].Ports})
			}
			g = ng
		}
		nl := &LeafEntry{In: get(le.In), Actions: le.Actions, Group: g, Updates: le.Updates}
		np.Leaf = append(np.Leaf, nl)
		np.leafByState[nl.In] = nl
	}
	return np
}

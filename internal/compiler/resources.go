package compiler

import (
	"fmt"

	"camus/internal/subscription"
)

// Switch resource budgets modeling a Tofino-class programmable ASIC
// pipeline (per pipe). Absolute sizes are a stand-in for the testbed
// hardware; Table I compares *relative* usage, which these preserve.
const (
	// SRAMBudgetBytes is the exact-match (SRAM) budget.
	SRAMBudgetBytes = 15 << 20 // 15 MiB
	// TCAMBudgetBytes is the ternary (TCAM) budget.
	TCAMBudgetBytes = 768 << 10 // 0.75 MiB
	// MulticastGroupBudget is the number of multicast groups supported.
	MulticastGroupBudget = 65536
	// MaxPipelineStages is the number of match-action stages available.
	MaxPipelineStages = 12
	// stateBytes is the width of the BDD-state metadata carried between
	// stages.
	stateBytes = 4
	// actionBytes is the per-entry action/next-state storage.
	actionBytes = 4
	// tcamOverheadFactor models TCAM cell cost relative to SRAM (value +
	// mask storage).
	tcamOverheadFactor = 2
)

// Resources summarizes the switch resources a compiled program consumes —
// the columns of Table I.
type Resources struct {
	// Entries is the total number of control-plane entries installed.
	Entries int
	// SRAMBytes / TCAMBytes are the estimated memory footprints.
	SRAMBytes int
	TCAMBytes int
	// SRAMPct / TCAMPct are percentages of the modeled budgets.
	SRAMPct float64
	TCAMPct float64
	// MulticastGroups is the number of allocated replication groups.
	MulticastGroups int
	// Stages is the number of match-action stages used (fields + leaf).
	Stages int
	// Registers is the number of stateful registers allocated.
	Registers int
}

// Fits reports whether the program fits the modeled switch.
func (r Resources) Fits() bool {
	return r.SRAMBytes <= SRAMBudgetBytes &&
		r.TCAMBytes <= TCAMBudgetBytes &&
		r.MulticastGroups <= MulticastGroupBudget
}

func (r Resources) String() string {
	return fmt.Sprintf("entries=%d sram=%.2f%% tcam=%.2f%% mcast=%d stages=%d regs=%d",
		r.Entries, r.SRAMPct, r.TCAMPct, r.MulticastGroups, r.Stages, r.Registers)
}

// estimate computes the resource footprint of a compiled program.
func estimate(p *Program) Resources {
	r := Resources{Stages: len(p.Stages) + 1}
	for _, t := range p.Stages {
		fieldBytes := 4
		switch t.Field.Ref.Kind {
		case subscription.PacketRef:
			fieldBytes = t.Field.Ref.Field.Bytes()
		case subscription.ValidityRef:
			fieldBytes = 1
		}
		keyBytes := stateBytes + fieldBytes
		bits := fieldBytes * 8
		if t.Field.Ref.Kind == subscription.PacketRef {
			bits = t.Field.Ref.Field.Bits
		}
		switch t.Kind {
		case ExactTable:
			// Residual entries are the table's default action, not rows.
			stored := 0
			for _, e := range t.Entries {
				if _, ok := e.Match.Exact(); ok {
					stored++
				}
			}
			r.SRAMBytes += stored*(keyBytes+actionBytes) + (len(t.Entries)-stored)*(stateBytes+actionBytes)
		case CompressedTable:
			// Value map: TCAM ranges over the raw field producing an
			// 8-bit code; main table: exact SRAM on (state, code).
			r.TCAMBytes += t.MapEntries * (fieldBytes + 1 + actionBytes) * tcamOverheadFactor
			r.SRAMBytes += len(t.Entries) * (stateBytes + 1 + actionBytes)
		default: // TernaryTable
			for _, e := range t.Entries {
				r.TCAMBytes += e.Match.TCAMEntries(bits) * (keyBytes + actionBytes) * tcamOverheadFactor
			}
		}
		// Absent-field defaults live in SRAM beside the stage.
		r.SRAMBytes += len(t.Defaults) * (stateBytes + actionBytes)
		r.Entries += len(t.Entries) + t.MapEntries + len(t.Defaults)
	}
	// Leaf table: exact match on state.
	r.SRAMBytes += len(p.Leaf) * (stateBytes + 8)
	r.Entries += len(p.Leaf)
	r.MulticastGroups = len(p.Groups)
	r.Registers = len(p.BDD.Universe.AggregateFields())
	r.SRAMPct = 100 * float64(r.SRAMBytes) / float64(SRAMBudgetBytes)
	r.TCAMPct = 100 * float64(r.TCAMBytes) / float64(TCAMBudgetBytes)
	return r
}

package compiler

import (
	"fmt"

	"camus/internal/subscription"
)

// Switch resource budgets modeling a Tofino-class programmable ASIC
// pipeline (per pipe). Absolute sizes are a stand-in for the testbed
// hardware; Table I compares *relative* usage, which these preserve.
const (
	// SRAMBudgetBytes is the exact-match (SRAM) budget.
	SRAMBudgetBytes = 15 << 20 // 15 MiB
	// TCAMBudgetBytes is the ternary (TCAM) budget.
	TCAMBudgetBytes = 768 << 10 // 0.75 MiB
	// MulticastGroupBudget is the number of multicast groups supported.
	MulticastGroupBudget = 65536
	// MaxPipelineStages is the number of match-action stages available.
	MaxPipelineStages = 12
	// RegisterBudget is the number of stateful registers (aggregate
	// windows) the pipe supports; stateful ALUs are the scarcest
	// resource on the modeled ASIC.
	RegisterBudget = 4
	// stateBytes is the width of the BDD-state metadata carried between
	// stages.
	stateBytes = 4
	// actionBytes is the per-entry action/next-state storage.
	actionBytes = 4
	// tcamOverheadFactor models TCAM cell cost relative to SRAM (value +
	// mask storage).
	tcamOverheadFactor = 2
)

// Resources summarizes the switch resources a compiled program consumes —
// the columns of Table I.
type Resources struct {
	// Entries is the total number of control-plane entries installed.
	Entries int
	// SRAMBytes / TCAMBytes are the estimated memory footprints.
	SRAMBytes int
	TCAMBytes int
	// SRAMPct / TCAMPct are percentages of the modeled budgets.
	SRAMPct float64
	TCAMPct float64
	// MulticastGroups is the number of allocated replication groups.
	MulticastGroups int
	// Stages is the number of match-action stages used (fields + leaf).
	Stages int
	// Registers is the number of stateful registers allocated.
	Registers int
}

// Fits reports whether the program fits the modeled switch. All five
// declared budgets are enforced: memory (SRAM/TCAM), multicast groups,
// pipeline stages, and stateful registers.
func (r Resources) Fits() bool {
	return r.SRAMBytes <= SRAMBudgetBytes &&
		r.TCAMBytes <= TCAMBudgetBytes &&
		r.MulticastGroups <= MulticastGroupBudget &&
		r.Stages <= MaxPipelineStages &&
		r.Registers <= RegisterBudget
}

func (r Resources) String() string {
	return fmt.Sprintf("entries=%d sram=%.2f%% tcam=%.2f%% mcast=%d stages=%d regs=%d",
		r.Entries, r.SRAMPct, r.TCAMPct, r.MulticastGroups, r.Stages, r.Registers)
}

// LeafEntryBytes is the SRAM cost of one leaf-table row: exact match on
// the BDD state plus the action/group word.
const LeafEntryBytes = stateBytes + 8

// TableCost is the per-table slice of the Resources estimate — the unit
// the layout analyzer (internal/analysis/fitcheck) packs into stages.
type TableCost struct {
	// SRAMBytes / TCAMBytes are the table's memory footprint.
	SRAMBytes int
	TCAMBytes int
	// KeyBits is the match-key width presented to the stage crossbar
	// (state metadata + field).
	KeyBits int
	// Entries is the number of control-plane entries (rows + value-map
	// ranges + defaults).
	Entries int
}

// fieldWidth returns the field byte width and match-key bit count used
// by the cost model for a stage table.
func fieldWidth(t *Table) (fieldBytes, bits int) {
	fieldBytes = 4
	switch t.Field.Ref.Kind {
	case subscription.PacketRef:
		fieldBytes = t.Field.Ref.Field.Bytes()
	case subscription.ValidityRef:
		fieldBytes = 1
	}
	bits = fieldBytes * 8
	if t.Field.Ref.Kind == subscription.PacketRef {
		bits = t.Field.Ref.Field.Bits
	}
	return fieldBytes, bits
}

// CostOf computes the resource footprint of a single stage table. The
// whole-program estimate and the fitcheck layout analyzer both consume
// this so the cost model has one definition.
func CostOf(t *Table) TableCost {
	fieldBytes, bits := fieldWidth(t)
	keyBytes := stateBytes + fieldBytes
	c := TableCost{KeyBits: keyBytes * 8}
	switch t.Kind {
	case ExactTable:
		// Residual entries are the table's default action, not rows.
		stored := 0
		for _, e := range t.Entries {
			if _, ok := e.Match.Exact(); ok {
				stored++
			}
		}
		c.SRAMBytes += stored*(keyBytes+actionBytes) + (len(t.Entries)-stored)*(stateBytes+actionBytes)
	case CompressedTable:
		// Value map: TCAM ranges over the raw field producing an
		// 8-bit code; main table: exact SRAM on (state, code).
		c.TCAMBytes += t.MapEntries * (fieldBytes + 1 + actionBytes) * tcamOverheadFactor
		c.SRAMBytes += len(t.Entries) * (stateBytes + 1 + actionBytes)
	default: // TernaryTable
		for _, e := range t.Entries {
			c.TCAMBytes += e.Match.TCAMEntries(bits) * (keyBytes + actionBytes) * tcamOverheadFactor
		}
	}
	// Absent-field defaults live in SRAM beside the stage.
	c.SRAMBytes += len(t.Defaults) * (stateBytes + actionBytes)
	c.Entries = len(t.Entries) + t.MapEntries + len(t.Defaults)
	return c
}

// MaxEntryCost returns the worst-case footprint of adding one more
// entry to t — the increment fitcheck's headroom search charges per
// hypothetical entry.
func MaxEntryCost(t *Table) TableCost {
	fieldBytes, bits := fieldWidth(t)
	keyBytes := stateBytes + fieldBytes
	c := TableCost{KeyBits: keyBytes * 8, Entries: 1}
	switch t.Kind {
	case ExactTable:
		c.SRAMBytes = keyBytes + actionBytes
	case CompressedTable:
		// One new row plus, worst case, one new value-map range.
		c.SRAMBytes = stateBytes + 1 + actionBytes
		c.TCAMBytes = (fieldBytes + 1 + actionBytes) * tcamOverheadFactor
		c.Entries = 2
	default: // TernaryTable
		// Charge the worst range expansion observed in the table; an
		// empty table is charged a single ternary row.
		worst := 1
		for _, e := range t.Entries {
			if n := e.Match.TCAMEntries(bits); n > worst {
				worst = n
			}
		}
		c.TCAMBytes = worst * (keyBytes + actionBytes) * tcamOverheadFactor
	}
	return c
}

// RegisterCount returns the number of stateful registers the program
// allocates — one per aggregate field in the predicate universe.
func RegisterCount(p *Program) int {
	if p.BDD != nil {
		return len(p.BDD.Universe.AggregateFields())
	}
	n := 0
	for _, t := range p.Stages {
		if t.Field.Ref.Kind == subscription.AggregateRef {
			n++
		}
	}
	return n
}

// estimate computes the resource footprint of a compiled program.
func estimate(p *Program) Resources {
	r := Resources{Stages: len(p.Stages) + 1}
	for _, t := range p.Stages {
		c := CostOf(t)
		r.SRAMBytes += c.SRAMBytes
		r.TCAMBytes += c.TCAMBytes
		r.Entries += c.Entries
	}
	// Leaf table: exact match on state.
	r.SRAMBytes += len(p.Leaf) * LeafEntryBytes
	r.Entries += len(p.Leaf)
	r.MulticastGroups = len(p.Groups)
	r.Registers = RegisterCount(p)
	r.SRAMPct = 100 * float64(r.SRAMBytes) / float64(SRAMBudgetBytes)
	r.TCAMPct = 100 * float64(r.TCAMBytes) / float64(TCAMBudgetBytes)
	return r
}

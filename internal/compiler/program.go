// Package compiler translates subscription rule sets into switch
// programs: a static pipeline generated once per application from the
// message spec (§V-A), and dynamic table entries compiled from the rule
// BDD whenever subscriptions change (§V-B..E, Algorithm 2).
package compiler

import (
	"fmt"
	"sort"
	"strings"

	"camus/internal/bdd"
	"camus/internal/match"
	"camus/internal/spec"
	"camus/internal/subscription"
)

// StateID is the pipeline metadata register that carries the current BDD
// state between stages (§V-D). It is a BDD node ID.
type StateID = int32

// Entry is one match-action table entry: (entry state, field range) →
// next state, exactly the rows of the paper's Fig. 6.
type Entry struct {
	In    StateID
	Match match.Constraint
	Out   StateID
}

func (e *Entry) String() string {
	return fmt.Sprintf("(%d, %s) -> %d", e.In, e.Match.Key(), e.Out)
}

// TableKind describes the memory a stage's table occupies (§V-E).
type TableKind int

const (
	// TernaryTable needs TCAM range/ternary entries.
	TernaryTable TableKind = iota
	// ExactTable uses SRAM exact matching.
	ExactTable
	// CompressedTable maps the field through a small TCAM value-map onto
	// a low-resolution code, then exact-matches the code in SRAM (the
	// third §V-E optimization).
	CompressedTable
)

func (k TableKind) String() string {
	switch k {
	case TernaryTable:
		return "ternary"
	case ExactTable:
		return "exact"
	case CompressedTable:
		return "compressed"
	default:
		return fmt.Sprintf("TableKind(%d)", int(k))
	}
}

// Table is one pipeline stage: every entry predicating on a single field,
// the field-specific component of the BDD (§V-D).
type Table struct {
	// Field identifies the field (or stateful aggregate) matched.
	Field *bdd.FieldVar
	// Kind is the realized memory type.
	Kind TableKind
	// Entries in no particular order; for any in-state the entry ranges
	// partition the field domain, so at most one entry matches.
	Entries []*Entry
	// Defaults maps each entry state to the next state taken when the
	// packet lacks the field entirely (every predicate false: the BDD
	// lo-walk). States absent from Defaults pass through unchanged.
	Defaults map[StateID]StateID
	// MapEntries counts the value-map entries of a CompressedTable.
	MapEntries int

	byState map[StateID][]*Entry
}

// Name returns the stage name (the field key).
func (t *Table) Name() string { return t.Field.Key() }

// index builds the per-state entry index.
func (t *Table) index() {
	t.byState = make(map[StateID][]*Entry)
	for _, e := range t.Entries {
		t.byState[e.In] = append(t.byState[e.In], e)
	}
}

// Next computes the stage transition for the current state given the
// field value. ok=false means the state does not enter this stage
// (pass-through).
func (t *Table) Next(state StateID, v spec.Value, present bool) (StateID, bool) {
	entries, in := t.byState[state]
	if !in {
		return state, false
	}
	if present {
		for _, e := range entries {
			if e.Match.Matches(v) {
				return e.Out, true
			}
		}
	}
	// Field absent (or value on a pruned-unsat residue): all predicates
	// evaluate false — take the precomputed lo-walk.
	if d, ok := t.Defaults[state]; ok {
		return d, true
	}
	return state, false
}

// LeafEntry is one row of the final Leaf table: terminal state → action
// set (§V-D, Fig. 6 right).
type LeafEntry struct {
	In      StateID
	Actions subscription.ActionSet
	// Group is the multicast group realizing a multi-port action set,
	// or -1 for unicast/drop (§VII: multicast groups are allocated per
	// distinct overlapping-filter set).
	Group int
	// Updates lists the state-variable keys this terminal updates
	// (stateful subscriptions, §II/§V-A).
	Updates []string
}

// MulticastGroup is an allocated replication group.
type MulticastGroup struct {
	ID    int
	Ports []int
}

// Program is the compiled dynamic configuration for one switch: the
// control-plane rules that populate the static pipeline's tables.
type Program struct {
	Spec *spec.Spec
	BDD  *bdd.BDD
	// Stages in BDD variable order; the fixed-length pipeline of §V-D.
	Stages []*Table
	// Leaf is the terminal table.
	Leaf []*LeafEntry
	// Init is the pipeline entry state (the BDD root).
	Init StateID
	// Groups are the allocated multicast groups.
	Groups []MulticastGroup
	// Resources is the switch resource estimate.
	Resources Resources

	leafByState map[StateID]*LeafEntry
}

// TotalEntries is the figure-of-merit of Fig. 12/13/15: the number of
// control-plane table entries across all stages, value maps, and the
// leaf table.
func (p *Program) TotalEntries() int {
	n := len(p.Leaf)
	for _, t := range p.Stages {
		n += len(t.Entries) + t.MapEntries + len(t.Defaults)
	}
	return n
}

// Lookup evaluates the full pipeline for a message: the reference
// software implementation of the compiled switch, also used by the
// pipeline runtime. It returns the leaf entry reached (nil for drop with
// no leaf row).
func (p *Program) Lookup(m *spec.Message, st subscription.StateReader) *LeafEntry {
	state := p.Init
	for _, t := range p.Stages {
		var v spec.Value
		present := false
		switch t.Field.Ref.Kind {
		case subscription.PacketRef:
			if idx, ok := m.Spec().SubscribableIndex(t.Field.Ref.Field); ok {
				v, present = m.Get(idx)
			}
		case subscription.ValidityRef:
			var bit int64
			if m.HeaderPresent(t.Field.Ref.Header) {
				bit = 1
			}
			v, present = spec.IntVal(bit), true
		default: // AggregateRef
			var cur int64
			if st != nil {
				cur = st.AggValue(t.Field.Ref.Key())
			}
			v, present = spec.IntVal(cur), true
		}
		state, _ = t.Next(state, v, present)
	}
	return p.leafByState[state]
}

// LookupKeyed evaluates the pipeline like Lookup while additionally
// reporting whether the walk was *pure*: every taken transition
// (ok=true from Table.Next) happened at a stage marked true in
// keyStage (indexed like Stages). Purity is what makes a leaf-cache
// fill sound: whether a state enters a stage at all is a property of
// the state alone (byState/Defaults membership is value-independent),
// so two messages agreeing on every keyStage input follow identical
// trajectories — a pure walk's leaf is a function of the key and may
// be memoized without hiding any overlapping decision (DESIGN.md §16).
func (p *Program) LookupKeyed(m *spec.Message, st subscription.StateReader, keyStage []bool) (*LeafEntry, bool) {
	state := p.Init
	pure := true
	for i, t := range p.Stages {
		var v spec.Value
		present := false
		switch t.Field.Ref.Kind {
		case subscription.PacketRef:
			if idx, ok := m.Spec().SubscribableIndex(t.Field.Ref.Field); ok {
				v, present = m.Get(idx)
			}
		case subscription.ValidityRef:
			var bit int64
			if m.HeaderPresent(t.Field.Ref.Header) {
				bit = 1
			}
			v, present = spec.IntVal(bit), true
		default: // AggregateRef
			var cur int64
			if st != nil {
				cur = st.AggValue(t.Field.Ref.Key())
			}
			v, present = spec.IntVal(cur), true
		}
		var took bool
		state, took = t.Next(state, v, present)
		if took && !keyStage[i] {
			pure = false
		}
	}
	return p.leafByState[state], pure
}

// Eval returns the merged action set for a message (empty set = drop).
func (p *Program) Eval(m *spec.Message, st subscription.StateReader) subscription.ActionSet {
	if le := p.Lookup(m, st); le != nil {
		return le.Actions
	}
	return subscription.ActionSet{}
}

// String renders the program as the paper's Fig. 6-style table listing.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s: init=%d\n", p.Spec.Name, p.Init)
	for _, t := range p.Stages {
		fmt.Fprintf(&b, "table %s (%s, %d entries):\n", t.Name(), t.Kind, len(t.Entries))
		for _, e := range t.Entries {
			fmt.Fprintf(&b, "  %s\n", e)
		}
		ins := make([]StateID, 0, len(t.Defaults))
		for in := range t.Defaults {
			ins = append(ins, in)
		}
		sort.Slice(ins, func(i, j int) bool { return ins[i] < ins[j] })
		for _, in := range ins {
			fmt.Fprintf(&b, "  (%d, absent) -> %d\n", in, t.Defaults[in])
		}
	}
	fmt.Fprintf(&b, "table Leaf (%d entries):\n", len(p.Leaf))
	for _, le := range p.Leaf {
		fmt.Fprintf(&b, "  %d -> %s", le.In, le.Actions)
		if le.Group >= 0 {
			fmt.Fprintf(&b, " [mcast %d]", le.Group)
		}
		if len(le.Updates) > 0 {
			fmt.Fprintf(&b, " updates=%v", le.Updates)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

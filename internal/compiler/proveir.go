package compiler

import (
	"fmt"

	"camus/internal/analysis/prove"
	"camus/internal/match"
	"camus/internal/spec"
)

// ProveIR exports the compiled program into the translation
// validator's neutral IR (internal/analysis/prove). The dependency
// points this way on purpose: prove must not import the compiler (or
// anything reaching internal/bdd), so the compiler re-expresses its
// match constraints in the prover's own domain vocabulary here. The
// conversion is shape-only — intervals and exact/cofinite string sets
// map one-to-one — so a miscompiled entry survives export and is
// caught by prove.Check.
func (p *Program) ProveIR() (*prove.Program, error) {
	out := &prove.Program{
		Spec: p.Spec,
		Init: p.Init,
	}
	for _, t := range p.Stages {
		st := &prove.Stage{
			Ref:      t.Field.Ref,
			Defaults: make(map[int32]int32, len(t.Defaults)),
		}
		for in, o := range t.Defaults {
			st.Defaults[in] = o
		}
		for _, e := range t.Entries {
			pe := &prove.Entry{In: e.In, Out: e.Out}
			switch c := e.Match.(type) {
			case *match.IntConstraint:
				if t.Field.Type() != spec.IntField {
					return nil, fmt.Errorf("compiler: stage %s: integer constraint on %s field", t.Name(), t.Field.Type())
				}
				d := prove.IntRange(c.Lo, c.Hi)
				for _, x := range c.Excluded {
					d = d.Without(x)
				}
				pe.Int = d
			case *match.StrConstraint:
				if t.Field.Type() != spec.StringField {
					return nil, fmt.Errorf("compiler: stage %s: string constraint on %s field", t.Name(), t.Field.Type())
				}
				if c.HasKnown {
					pe.Str = prove.StrExact(c.Known)
				} else {
					pe.Str = prove.StrCofinite(c.Required, c.ExcludedEq, c.ExcludedPx)
				}
			default:
				return nil, fmt.Errorf("compiler: stage %s: unknown constraint type %T", t.Name(), e.Match)
			}
			st.Entries = append(st.Entries, pe)
		}
		out.Stages = append(out.Stages, st)
	}
	for _, le := range p.Leaf {
		out.Leaves = append(out.Leaves, &prove.Leaf{
			In:      le.In,
			Actions: le.Actions.Clone(),
			Group:   le.Group,
			Updates: append([]string(nil), le.Updates...),
		})
	}
	for _, g := range p.Groups {
		out.Groups = append(out.Groups, append([]int(nil), g.Ports...))
	}
	out.Finalize()
	return out, nil
}

package compiler

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"camus/internal/formats"
	"camus/internal/spec"
	"camus/internal/subscription"
	"camus/internal/workload"
)

// canonicalString is the byte-level identity the parallel compiler is
// held to: the Canonical() renumbering of a program rendered through
// the deterministic String form.
func canonicalString(p *Program) string { return p.Canonical().String() }

// TestParallelCompileCanonicalIdentity: the tentpole determinism
// guarantee. Batch-built diagrams are DFS-renumbered before table
// emission and the OR-merge is sequential, so the compiled program
// must be byte-for-byte canonical for every worker count, on every
// workload in the corpus.
func TestParallelCompileCanonicalIdentity(t *testing.T) {
	sp := testSpec(t)
	r := rand.New(rand.NewSource(11))

	type load struct {
		name  string
		sp    *spec.Spec
		rules []*subscription.Rule
		opts  Options
	}
	var loads []load
	for _, n := range []int{10, 64, 300} {
		loads = append(loads, load{
			name:  fmt.Sprintf("random-%d", n),
			sp:    sp,
			rules: randomRules(r, sp, n),
		})
	}
	// Siena-style ITCH workload; a high equality bias keeps the ordering-
	// relation partition count (and thus test runtime) bounded.
	itchRules, err := workload.SienaRules(workload.SienaConfig{
		Spec: formats.ITCH, Filters: 100, Seed: 7, EqualityBias: 0.9,
	}, 48)
	if err != nil {
		t.Fatal(err)
	}
	loads = append(loads, load{name: "siena-itch-100", sp: formats.ITCH, rules: itchRules})
	// Stateful last-hop compile exercises expandStateful + update rules.
	loads = append(loads, load{
		name: "stateful-lasthop",
		sp:   sp,
		rules: mustRules(t, sp, `
count(1s) > 3 and stock == GOOGL: fwd(1)
shares > 5 or price < 2: fwd(2)
avg(price, 1s) > 4: fwd(3)
`),
		opts: Options{LastHop: true},
	})

	for _, ld := range loads {
		t.Run(ld.name, func(t *testing.T) {
			seqOpts := ld.opts
			seqOpts.Parallelism = 1
			seq, err := Compile(ld.sp, ld.rules, seqOpts)
			if err != nil {
				t.Fatal(err)
			}
			want := canonicalString(seq)
			for _, w := range []int{2, 4, 8} {
				parOpts := ld.opts
				parOpts.Parallelism = w
				par, err := Compile(ld.sp, ld.rules, parOpts)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if got := canonicalString(par); got != want {
					t.Errorf("workers=%d: canonical program differs from sequential\nseq:\n%s\npar:\n%s", w, want, got)
				}
			}
		})
	}
}

// TestParallelNormalizeError: a bad rule deep inside a large batch must
// surface its error through the worker-pool normalization path.
func TestParallelNormalizeError(t *testing.T) {
	sp := testSpec(t)
	r := rand.New(rand.NewSource(3))
	rules := randomRules(r, sp, 100)
	p := subscription.NewParser(sp)
	bad, err := p.ParseRule("not (name prefix AB): fwd(1)", len(rules))
	if err != nil {
		t.Fatal(err)
	}
	rules = append(rules[:70], append([]*subscription.Rule{bad}, rules[70:]...)...)
	if _, err := Compile(sp, rules, Options{Parallelism: 4}); err == nil {
		t.Fatal("expected normalization error for negated prefix constraint")
	}
}

// TestIncrementalParallelBatchEquivalence: a large Apply batch (the
// drift-rebuild shape) through the parallel normalization path must
// produce the same canonical program as a batch compile of the same
// rules.
func TestIncrementalParallelBatchEquivalence(t *testing.T) {
	sp := testSpec(t)
	r := rand.New(rand.NewSource(5))
	rules := randomRules(r, sp, 200)

	inc, err := NewIncremental(sp, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Apply(rules, nil); err != nil {
		t.Fatal(err)
	}
	batch, err := Compile(sp, rules, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonicalString(inc.Program()), canonicalString(batch); got != want {
		t.Errorf("incremental parallel batch differs from sequential batch compile")
	}
}

// TestCanonicalGroupRenumbering: Canonical() must renumber multicast
// groups in canonical-leaf encounter order and remap leaf Group
// references, so programs from compilers that allocated group IDs in
// different orders still compare equal.
func TestCanonicalGroupRenumbering(t *testing.T) {
	sp := testSpec(t)
	p := compile(t, sp, `
stock == GOOGL: fwd(1)
stock == GOOGL: fwd(2)
stock == MSFT: fwd(3)
stock == MSFT: fwd(4)
`, Options{})
	if len(p.Groups) < 2 {
		t.Fatalf("want >=2 multicast groups, got %d", len(p.Groups))
	}
	c := p.Canonical()
	if len(c.Groups) != len(p.Groups) {
		t.Fatalf("canonical group count %d != %d", len(c.Groups), len(p.Groups))
	}
	seen := make(map[int]bool)
	next := 0
	for _, le := range c.Leaf {
		if le.Group < 0 {
			continue
		}
		if le.Group >= len(c.Groups) {
			t.Fatalf("leaf references group %d of %d", le.Group, len(c.Groups))
		}
		if !seen[le.Group] {
			if le.Group != next {
				t.Errorf("groups not renumbered in leaf encounter order: got %d want %d", le.Group, next)
			}
			seen[le.Group] = true
			next++
		}
	}
	for i, g := range c.Groups {
		if g.ID != i {
			t.Errorf("canonical group %d carries ID %d", i, g.ID)
		}
	}
}

// TestConcurrentIncrementalChurn is -race stress for the allocation-lean
// compile pipeline under concurrent use: independent Incremental
// compilers churn simultaneously (each owns its engine, but they share
// package-level code paths and, through bdd, the sharded-table and
// memo-cache implementations).
func TestConcurrentIncrementalChurn(t *testing.T) {
	sp := testSpec(t)
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			rules := randomRules(r, sp, 120)
			inc, err := NewIncremental(sp, Options{Parallelism: 2})
			if err != nil {
				errc <- err
				return
			}
			for i, rule := range rules {
				if _, err := inc.Add(rule); err != nil {
					errc <- err
					return
				}
				if i%3 == 2 {
					if _, err := inc.Remove(rules[i-1].ID); err != nil {
						errc <- err
						return
					}
				}
			}
		}(int64(g + 1))
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// BenchmarkCompile500Parallel: the same workload as BenchmarkCompile500
// through the maximum chain fan-out, for the worker-overhead
// comparison on single-core hosts.
func BenchmarkCompile500Parallel(b *testing.B) {
	sp := testSpec(b)
	r := rand.New(rand.NewSource(4))
	rules := randomRules(r, sp, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(sp, rules, Options{Parallelism: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

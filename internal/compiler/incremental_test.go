package compiler

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"camus/internal/spec"
	"camus/internal/subscription"
)

func newInc(t *testing.T) (*Incremental, *subscription.Parser, *spec.Spec) {
	t.Helper()
	sp := testSpec(t)
	inc, err := NewIncremental(sp, Options{})
	if err != nil {
		t.Fatalf("NewIncremental: %v", err)
	}
	return inc, subscription.NewParser(sp), sp
}

func TestIncrementalAddRemove(t *testing.T) {
	inc, p, sp := newInc(t)
	r1, err := p.ParseRule("stock == GOOGL and price > 50: fwd(1)", 1)
	if err != nil {
		t.Fatal(err)
	}
	up, err := inc.Add(r1)
	if err != nil {
		t.Fatal(err)
	}
	if up.AddedEntries == 0 || up.RemovedEntries != 0 {
		t.Errorf("first add: %+v", up)
	}
	m := spec.NewMessage(sp)
	m.MustSet("stock", spec.StrVal("GOOGL"))
	m.MustSet("price", spec.IntVal(60))
	m.MustSet("shares", spec.IntVal(1))
	if got := inc.Program().Eval(m, nil).Key(); got != "fwd(1)" {
		t.Fatalf("after add: %s", got)
	}

	r2, err := p.ParseRule("stock == MSFT: fwd(2)", 2)
	if err != nil {
		t.Fatal(err)
	}
	up2, err := inc.Add(r2)
	if err != nil {
		t.Fatal(err)
	}
	if up2.ReusedEntries == 0 {
		t.Errorf("second add reused no entries: %+v", up2)
	}
	if got := inc.Program().Eval(m, nil).Key(); got != "fwd(1)" {
		t.Errorf("rule 1 lost after adding rule 2: %s", got)
	}

	up3, err := inc.Remove(1)
	if err != nil {
		t.Fatal(err)
	}
	if up3.RemovedEntries == 0 {
		t.Errorf("remove deleted no entries: %+v", up3)
	}
	if got := inc.Program().Eval(m, nil).Key(); got != "fwd()" {
		t.Errorf("rule 1 still active after removal: %s", got)
	}
	if ids := inc.Rules(); len(ids) != 1 || ids[0] != 2 {
		t.Errorf("rules = %v", ids)
	}
}

func TestIncrementalErrors(t *testing.T) {
	inc, p, _ := newInc(t)
	r, err := p.ParseRule("price > 1: fwd(1)", 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Add(r); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Add(r); err == nil {
		t.Error("duplicate rule ID accepted")
	}
	if _, err := inc.Remove(99); err == nil {
		t.Error("removing unknown rule succeeded")
	}
}

// TestIncrementalMatchesBatch: after any sequence of adds and removes,
// the incremental program is semantically identical to a from-scratch
// batch compile of the live rules.
func TestIncrementalMatchesBatch(t *testing.T) {
	inc, p, sp := newInc(t)
	r := rand.New(rand.NewSource(31))
	live := make(map[int]*subscription.Rule)
	stocks := []string{"GOOGL", "MSFT", "AAPL"}
	nextID := 0
	for step := 0; step < 40; step++ {
		if len(live) > 0 && r.Intn(3) == 0 {
			// Remove a random live rule.
			for id := range live {
				if _, err := inc.Remove(id); err != nil {
					t.Fatal(err)
				}
				delete(live, id)
				break
			}
		} else {
			src := fmt.Sprintf("stock == %s and price > %d: fwd(%d)",
				stocks[r.Intn(3)], r.Intn(10), r.Intn(5))
			rule, err := p.ParseRule(src, nextID)
			if err != nil {
				t.Fatal(err)
			}
			nextID++
			if _, err := inc.Add(rule); err != nil {
				t.Fatal(err)
			}
			live[rule.ID] = rule
		}

		// Compare against a fresh batch compile on random messages.
		var rules []*subscription.Rule
		for _, rr := range live {
			rules = append(rules, rr)
		}
		batch, err := Compile(sp, rules, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			m := spec.NewMessage(sp)
			m.MustSet("stock", spec.StrVal(stocks[r.Intn(3)]))
			m.MustSet("price", spec.IntVal(int64(r.Intn(12))))
			m.MustSet("shares", spec.IntVal(1))
			want := batch.Eval(m, nil).Key()
			got := inc.Program().Eval(m, nil).Key()
			if got != want {
				t.Fatalf("step %d: incremental %s != batch %s on %s", step, got, want, m)
			}
		}
	}
}

// TestIncrementalReuse: adding one rule to a large set must reuse most
// entries and be much faster than the initial build — the point of the
// memoized engine.
func TestIncrementalReuse(t *testing.T) {
	inc, p, _ := newInc(t)
	var rules []*subscription.Rule
	for i := 0; i < 300; i++ {
		src := fmt.Sprintf("stock == S%03d and price > %d: fwd(%d)", i%50, (i*13)%500, i%16)
		r, err := p.ParseRule(src, i)
		if err != nil {
			t.Fatal(err)
		}
		rules = append(rules, r)
	}
	start := time.Now()
	if _, err := inc.Add(rules...); err != nil {
		t.Fatal(err)
	}
	initial := time.Since(start)

	extra, err := p.ParseRule("stock == ZZZZ and price > 123: fwd(7)", 10001)
	if err != nil {
		t.Fatal(err)
	}
	up, err := inc.Add(extra)
	if err != nil {
		t.Fatal(err)
	}
	total := up.AddedEntries + up.ReusedEntries
	if up.ReusedEntries < total*2/3 {
		t.Errorf("single-rule add reused only %d of %d entries", up.ReusedEntries, total)
	}
	if up.Elapsed > initial {
		t.Errorf("incremental add (%v) slower than initial 300-rule build (%v)", up.Elapsed, initial)
	}

	// Removing the rule restores the previous entry set.
	before := entryKeys(inc.Program())
	up2, err := inc.Remove(10001)
	if err != nil {
		t.Fatal(err)
	}
	_ = up2
	// Re-adding produces the same program again (node IDs stable).
	up3, err := inc.Add(extra)
	if err != nil {
		t.Fatal(err)
	}
	after := entryKeys(up3.Program)
	if len(before) != len(after) {
		t.Errorf("entry sets differ after remove/re-add: %d vs %d", len(before), len(after))
	}
	for k := range before {
		if after[k] != before[k] {
			t.Errorf("entry %q changed across remove/re-add", k)
		}
	}
}

func BenchmarkIncrementalAddOne(b *testing.B) {
	sp := testSpec(b)
	p := subscription.NewParser(sp)
	inc, err := NewIncremental(sp, Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		src := fmt.Sprintf("stock == S%03d and price > %d: fwd(%d)", i%50, (i*13)%500, i%16)
		r, err := p.ParseRule(src, i)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := inc.Add(r); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := 1000 + i
		r, err := p.ParseRule(fmt.Sprintf("stock == X%d and price > %d: fwd(3)", i, i%997), id)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := inc.Add(r); err != nil {
			b.Fatal(err)
		}
	}
}

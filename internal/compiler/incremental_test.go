package compiler

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"camus/internal/spec"
	"camus/internal/subscription"
)

func newInc(t *testing.T) (*Incremental, *subscription.Parser, *spec.Spec) {
	t.Helper()
	sp := testSpec(t)
	inc, err := NewIncremental(sp, Options{})
	if err != nil {
		t.Fatalf("NewIncremental: %v", err)
	}
	return inc, subscription.NewParser(sp), sp
}

func TestIncrementalAddRemove(t *testing.T) {
	inc, p, sp := newInc(t)
	r1, err := p.ParseRule("stock == GOOGL and price > 50: fwd(1)", 1)
	if err != nil {
		t.Fatal(err)
	}
	up, err := inc.Add(r1)
	if err != nil {
		t.Fatal(err)
	}
	if up.AddedEntries == 0 || up.RemovedEntries != 0 {
		t.Errorf("first add: %+v", up)
	}
	m := spec.NewMessage(sp)
	m.MustSet("stock", spec.StrVal("GOOGL"))
	m.MustSet("price", spec.IntVal(60))
	m.MustSet("shares", spec.IntVal(1))
	if got := inc.Program().Eval(m, nil).Key(); got != "fwd(1)" {
		t.Fatalf("after add: %s", got)
	}

	r2, err := p.ParseRule("stock == MSFT: fwd(2)", 2)
	if err != nil {
		t.Fatal(err)
	}
	up2, err := inc.Add(r2)
	if err != nil {
		t.Fatal(err)
	}
	if up2.ReusedEntries == 0 {
		t.Errorf("second add reused no entries: %+v", up2)
	}
	if got := inc.Program().Eval(m, nil).Key(); got != "fwd(1)" {
		t.Errorf("rule 1 lost after adding rule 2: %s", got)
	}

	up3, err := inc.Remove(1)
	if err != nil {
		t.Fatal(err)
	}
	if up3.RemovedEntries == 0 {
		t.Errorf("remove deleted no entries: %+v", up3)
	}
	if got := inc.Program().Eval(m, nil).Key(); got != "fwd()" {
		t.Errorf("rule 1 still active after removal: %s", got)
	}
	if ids := inc.Rules(); len(ids) != 1 || ids[0] != 2 {
		t.Errorf("rules = %v", ids)
	}
}

func TestIncrementalErrors(t *testing.T) {
	inc, p, _ := newInc(t)
	r, err := p.ParseRule("price > 1: fwd(1)", 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Add(r); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Add(r); err == nil {
		t.Error("duplicate rule ID accepted")
	}
	if _, err := inc.Remove(99); err == nil {
		t.Error("removing unknown rule succeeded")
	}
}

// TestIncrementalMatchesBatch: after any sequence of adds and removes,
// the incremental program is semantically identical to a from-scratch
// batch compile of the live rules.
func TestIncrementalMatchesBatch(t *testing.T) {
	inc, p, sp := newInc(t)
	r := rand.New(rand.NewSource(31))
	live := make(map[int]*subscription.Rule)
	stocks := []string{"GOOGL", "MSFT", "AAPL"}
	nextID := 0
	for step := 0; step < 40; step++ {
		if len(live) > 0 && r.Intn(3) == 0 {
			// Remove a random live rule.
			for id := range live {
				if _, err := inc.Remove(id); err != nil {
					t.Fatal(err)
				}
				delete(live, id)
				break
			}
		} else {
			src := fmt.Sprintf("stock == %s and price > %d: fwd(%d)",
				stocks[r.Intn(3)], r.Intn(10), r.Intn(5))
			rule, err := p.ParseRule(src, nextID)
			if err != nil {
				t.Fatal(err)
			}
			nextID++
			if _, err := inc.Add(rule); err != nil {
				t.Fatal(err)
			}
			live[rule.ID] = rule
		}

		// Compare against a fresh batch compile on random messages.
		var rules []*subscription.Rule
		for _, rr := range live {
			rules = append(rules, rr)
		}
		batch, err := Compile(sp, rules, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			m := spec.NewMessage(sp)
			m.MustSet("stock", spec.StrVal(stocks[r.Intn(3)]))
			m.MustSet("price", spec.IntVal(int64(r.Intn(12))))
			m.MustSet("shares", spec.IntVal(1))
			want := batch.Eval(m, nil).Key()
			got := inc.Program().Eval(m, nil).Key()
			if got != want {
				t.Fatalf("step %d: incremental %s != batch %s on %s", step, got, want, m)
			}
		}
	}
}

// TestIncrementalCanonicalEquivalence is the churn property test: after
// every step of a randomized Add/Remove sequence, the incrementally
// maintained program must be entry-for-entry identical (under Canonical
// renumbering) to a fresh batch compile of the surviving rule set. This
// is what the seeded, arrival-independent BDD variable order buys.
func TestIncrementalCanonicalEquivalence(t *testing.T) {
	inc, p, sp := newInc(t)
	r := rand.New(rand.NewSource(7))
	live := make(map[int]*subscription.Rule)
	nextID := 0
	check := func(step int) {
		t.Helper()
		// Batch-compile the survivors in rule-ID order — the canonical
		// merge order the engine also uses (with pruning the BDD is
		// merge-order sensitive, so equivalence is stated against the
		// ID-sorted batch build).
		ids := make([]int, 0, len(live))
		for id := range live {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		rules := make([]*subscription.Rule, 0, len(ids))
		for _, id := range ids {
			rules = append(rules, live[id])
		}
		batch, err := Compile(sp, rules, Options{})
		if err != nil {
			t.Fatalf("step %d: batch compile: %v", step, err)
		}
		added, removed, _ := DiffPrograms(inc.Program().Canonical(), batch.Canonical())
		if added != 0 || removed != 0 {
			t.Fatalf("step %d (%d live rules): incremental differs from batch: +%d -%d entries",
				step, len(live), added, removed)
		}
	}
	atoms := []func() string{
		func() string { return fmt.Sprintf("stock == S%02d", r.Intn(6)) },
		func() string { return fmt.Sprintf("price > %d", r.Intn(40)) },
		func() string { return fmt.Sprintf("price < %d", 10+r.Intn(40)) },
		func() string { return fmt.Sprintf("shares >= %d", r.Intn(20)) },
		func() string { return fmt.Sprintf("shares != %d", r.Intn(20)) },
	}
	for step := 0; step < 60; step++ {
		if len(live) > 4 && r.Intn(3) == 0 {
			ids := make([]int, 0, len(live))
			for id := range live {
				ids = append(ids, id)
			}
			sort.Ints(ids)
			id := ids[r.Intn(len(ids))]
			if _, err := inc.Remove(id); err != nil {
				t.Fatalf("step %d: Remove(%d): %v", step, id, err)
			}
			delete(live, id)
		} else {
			conj := atoms[r.Intn(len(atoms))]()
			if r.Intn(2) == 0 {
				conj += " and " + atoms[r.Intn(len(atoms))]()
			}
			src := fmt.Sprintf("%s: fwd(%d)", conj, r.Intn(8))
			rule, err := p.ParseRule(src, nextID)
			if err != nil {
				t.Fatalf("step %d: ParseRule(%q): %v", step, src, err)
			}
			if _, err := inc.Add(rule); err != nil {
				t.Fatalf("step %d: Add(%q): %v", step, src, err)
			}
			live[nextID] = rule
			nextID++
		}
		if step%5 == 4 || step == 59 {
			check(step)
		}
	}

	// Rule maintenance errors are classified.
	if _, err := inc.Remove(424242); !errors.Is(err, ErrUnknownRule) {
		t.Errorf("Remove(unknown) = %v, want ErrUnknownRule", err)
	}
	for id, rr := range live {
		if _, err := inc.Add(rr); !errors.Is(err, ErrDuplicateRule) {
			t.Errorf("Add(duplicate %d) = %v, want ErrDuplicateRule", id, err)
		}
		break
	}
}

// TestIncrementalReuse: adding one rule to a large set must reuse most
// entries and be much faster than the initial build — the point of the
// memoized engine. Entry reuse is measured on a rule whose semantic
// footprint is small (it gates on a price threshold above almost every
// existing one, so only the top few range cells change); a rule that
// cuts a low threshold legitimately rewrites most downstream range
// cells, and for that case we assert only that the delta stays below a
// full reinstall.
func TestIncrementalReuse(t *testing.T) {
	inc, p, _ := newInc(t)
	var rules []*subscription.Rule
	for i := 0; i < 300; i++ {
		src := fmt.Sprintf("stock == S%03d and price > %d: fwd(%d)", i%50, (i*13)%500, i%16)
		r, err := p.ParseRule(src, i)
		if err != nil {
			t.Fatal(err)
		}
		rules = append(rules, r)
	}
	start := time.Now()
	if _, err := inc.Add(rules...); err != nil {
		t.Fatal(err)
	}
	initial := time.Since(start)
	baseTotal := inc.Program().TotalEntries()

	narrow, err := p.ParseRule("stock == ZZZZ and price > 490: fwd(7)", 10000)
	if err != nil {
		t.Fatal(err)
	}
	upN, err := inc.Add(narrow)
	if err != nil {
		t.Fatal(err)
	}
	total := upN.AddedEntries + upN.ReusedEntries
	if upN.ReusedEntries < total*2/3 {
		t.Errorf("narrow single-rule add reused only %d of %d entries", upN.ReusedEntries, total)
	}
	if upN.Elapsed > initial {
		t.Errorf("incremental add (%v) slower than initial 300-rule build (%v)", upN.Elapsed, initial)
	}

	// A low threshold rewrites most range cells, but the delta must
	// still be strictly smaller than tearing down the old program and
	// installing the new one entry by entry.
	extra, err := p.ParseRule("stock == ZZZZ and price > 123: fwd(7)", 10001)
	if err != nil {
		t.Fatal(err)
	}
	up, err := inc.Add(extra)
	if err != nil {
		t.Fatal(err)
	}
	fullWrites := baseTotal + up.Program.TotalEntries()
	if writes := up.AddedEntries + up.RemovedEntries; writes >= fullWrites {
		t.Errorf("deep update delta (%d writes) not smaller than full reinstall (%d)", writes, fullWrites)
	}
	if up.Elapsed > initial {
		t.Errorf("deep incremental add (%v) slower than initial 300-rule build (%v)", up.Elapsed, initial)
	}

	// Removing the rule restores the previous entry set.
	before := entryKeys(inc.Program())
	up2, err := inc.Remove(10001)
	if err != nil {
		t.Fatal(err)
	}
	_ = up2
	// Re-adding produces the same program again (node IDs stable).
	up3, err := inc.Add(extra)
	if err != nil {
		t.Fatal(err)
	}
	after := entryKeys(up3.Program)
	if len(before) != len(after) {
		t.Errorf("entry sets differ after remove/re-add: %d vs %d", len(before), len(after))
	}
	for k := range before {
		if after[k] != before[k] {
			t.Errorf("entry %q changed across remove/re-add", k)
		}
	}
}

func BenchmarkIncrementalAddOne(b *testing.B) {
	sp := testSpec(b)
	p := subscription.NewParser(sp)
	inc, err := NewIncremental(sp, Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		src := fmt.Sprintf("stock == S%03d and price > %d: fwd(%d)", i%50, (i*13)%500, i%16)
		r, err := p.ParseRule(src, i)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := inc.Add(r); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := 1000 + i
		r, err := p.ParseRule(fmt.Sprintf("stock == X%d and price > %d: fwd(3)", i, i%997), id)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := inc.Add(r); err != nil {
			b.Fatal(err)
		}
	}
}

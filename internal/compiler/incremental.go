package compiler

import (
	"fmt"
	"strings"
	"time"

	"camus/internal/bdd"
	"camus/internal/spec"
	"camus/internal/subscription"
)

// Incremental is the dynamic-filter compiler the paper sketches in §V
// ("Supporting highly dynamic filters would require an incremental
// algorithm"): subscriptions are added and removed one at a time, the
// BDD engine reuses its memoized state across changes, and each update
// reports the control-plane *delta* — which table entries to install and
// which to delete — realizing the "table entry re-use" of [32].
type Incremental struct {
	sp     *spec.Spec
	opts   Options
	engine *bdd.Engine
	// normalized retains each rule's normalized+expanded form so rules
	// can be re-added after a Reset.
	normalized map[int][]subscription.NormalizedRule
	prog       *Program
}

// Update describes one incremental recompilation.
type Update struct {
	// Program is the new switch program.
	Program *Program
	// AddedEntries / RemovedEntries are the control-plane delta sizes;
	// ReusedEntries counts entries identical to the previous program
	// (no churn — the point of incrementality).
	AddedEntries   int
	RemovedEntries int
	ReusedEntries  int
	// Elapsed is the recompile time.
	Elapsed time.Duration
}

// NewIncremental creates an empty incremental compiler.
func NewIncremental(sp *spec.Spec, opts Options) (*Incremental, error) {
	opts = opts.withDefaults()
	inc := &Incremental{
		sp:         sp,
		opts:       opts,
		engine:     bdd.NewEngine(sp, opts.BDD),
		normalized: make(map[int][]subscription.NormalizedRule),
	}
	// Start from the empty program.
	if _, err := inc.rebuild(); err != nil {
		return nil, err
	}
	return inc, nil
}

// Program returns the current compiled program.
func (inc *Incremental) Program() *Program { return inc.prog }

// Rules returns the live rule IDs.
func (inc *Incremental) Rules() []int { return inc.engine.Rules() }

// Add inserts rules (keyed by Rule.ID) and recompiles.
func (inc *Incremental) Add(rules ...*subscription.Rule) (*Update, error) {
	return inc.Apply(rules, nil)
}

// Apply performs a coalesced batch of rule additions and removals with a
// single recompilation — the control plane's unit of work when several
// subscription events target one switch. On error the engine may hold a
// partially applied batch; callers recover by rebuilding from their rule
// registry (ctlplane falls back to a full recompile).
func (inc *Incremental) Apply(add []*subscription.Rule, remove []int) (*Update, error) {
	start := time.Now()
	for _, id := range remove {
		if !inc.engine.Remove(id) {
			return nil, fmt.Errorf("%w: id %d", ErrUnknownRule, id)
		}
		delete(inc.normalized, id)
	}
	for _, r := range add {
		if _, dup := inc.normalized[r.ID]; dup {
			return nil, fmt.Errorf("%w: id %d", ErrDuplicateRule, r.ID)
		}
	}
	// Normalization is pure per-rule work; fan it out for large batches
	// (the ctlplane drift fallback re-adds a switch's whole registry in
	// one Apply). Engine mutation below stays sequential.
	perRule, err := normalizeRulesPer(add, inc.opts.Parallelism)
	if err != nil {
		return nil, err
	}
	for i, r := range add {
		expanded := expandStateful(perRule[i], inc.opts)
		if !inc.opts.DisableValidityGuards {
			expanded = injectValidityGuards(expanded)
		}
		// Tag synthesized disjuncts with the owning rule ID so Remove
		// drops them together.
		for i := range expanded {
			expanded[i].RuleID = r.ID
		}
		inc.normalized[r.ID] = expanded
		if err := inc.engine.Add(expanded...); err != nil {
			return nil, err
		}
	}
	return inc.finish(start)
}

// Remove deletes rules by ID and recompiles.
func (inc *Incremental) Remove(ids ...int) (*Update, error) {
	return inc.Apply(nil, ids)
}

func (inc *Incremental) finish(start time.Time) (*Update, error) {
	old := inc.prog
	fresh, err := inc.rebuild()
	if err != nil {
		return nil, err
	}
	up := &Update{Program: fresh, Elapsed: time.Since(start)}
	up.AddedEntries, up.RemovedEntries, up.ReusedEntries = diffPrograms(old, fresh)
	return up, nil
}

func (inc *Incremental) rebuild() (*Program, error) {
	d := inc.engine.Build()
	prog, err := FromBDD(d, inc.opts)
	if err != nil {
		return nil, err
	}
	inc.prog = prog
	return prog, nil
}

// entryIdent identifies a table entry for control-plane diffing. BDD
// node IDs are stable across incremental rebuilds (hash-consing), so
// unchanged pipeline regions produce identical idents. A comparable
// struct key keeps the diff off the fmt hot path: diffing runs over
// every entry of the old and new programs on each Apply.
type entryIdent struct {
	table   string
	in, out StateID
	match   string // constraint key; "absent" for defaults; action-set key for leaves
	updates string // leaf entries only: joined register updates
}

func entryKeys(p *Program) map[entryIdent]int {
	out := make(map[entryIdent]int)
	if p == nil {
		return out
	}
	for _, t := range p.Stages {
		name := t.Name()
		for _, e := range t.Entries {
			out[entryIdent{table: name, in: e.In, out: e.Out, match: e.Match.Key()}]++
		}
		for in, next := range t.Defaults {
			out[entryIdent{table: name, in: in, out: next, match: "absent"}]++
		}
	}
	for _, le := range p.Leaf {
		out[entryIdent{
			table:   "leaf",
			in:      le.In,
			match:   le.Actions.Key(),
			updates: strings.Join(le.Updates, "\x1f"),
		}]++
	}
	return out
}

// diffPrograms computes the control-plane delta between two programs.
func diffPrograms(old, fresh *Program) (added, removed, reused int) {
	oldKeys := entryKeys(old)
	newKeys := entryKeys(fresh)
	for k, n := range newKeys {
		if o := oldKeys[k]; o > 0 {
			m := n
			if o < m {
				m = o
			}
			reused += m
			if n > o {
				added += n - o
			}
		} else {
			added += n
		}
	}
	for k, o := range oldKeys {
		n := newKeys[k]
		if o > n {
			removed += o - n
		}
	}
	return added, removed, reused
}

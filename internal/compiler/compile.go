package compiler

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"camus/internal/bdd"
	"camus/internal/match"
	"camus/internal/spec"
	"camus/internal/subscription"
)

// UpdateActionName is the internal action that feeds a packet into a
// stateful aggregate register. The compiler synthesizes one rule per
// (stateful rule, aggregate): the aggregate updates whenever the REST of
// the filter matches (paper §II), independent of the stateful predicate's
// own outcome.
const UpdateActionName = "__update"

// Options configure dynamic compilation.
type Options struct {
	// BDD options (field order, pruning ablation).
	BDD bdd.Options
	// DisableExactOpt turns off exact-match extraction (§V-E #2):
	// every stage is realized in TCAM. Ablation only.
	DisableExactOpt bool
	// DisableCompression turns off low-resolution domain mapping
	// (§V-E #3). Ablation only.
	DisableCompression bool
	// CompressionThreshold is the maximum number of distinct comparison
	// constants for a field to qualify for domain compression (the
	// mapped domain must fit 8 bits).
	CompressionThreshold int
	// MaxEntries aborts compilation when a single switch program exceeds
	// this many table entries (0 = unlimited); a guard against
	// pathological workloads.
	MaxEntries int
	// LastHop marks the program as running on a last-hop (host-facing)
	// switch: stateful predicates are evaluated and updated here. On
	// non-last-hop switches stateful atoms are erased (treated as true)
	// because re-evaluating them on multiple devices gives wrong results
	// (§II: "it only evaluates stateful functions at the last hop").
	LastHop bool
	// LastHopPort refines LastHop per rule: when set, a rule keeps its
	// stateful atoms only if every fwd port it targets is host-facing
	// (the hop immediately before a subscriber). Rules without fwd ports
	// (custom actions) fall back to LastHop. Used by the controller,
	// where one ToR program mixes host-facing and transit rules.
	LastHopPort func(port int) bool
	// DisableValidityGuards skips the implicit valid(header)==1 guards
	// (P4 isValid()) added to every rule. Only for workloads where every
	// packet is known to carry every referenced header.
	DisableValidityGuards bool
	// Parallelism bounds the worker count for the parallelizable
	// compilation stages: rule normalization, per-rule BDD chain
	// construction, and (via the controller) per-switch program builds.
	// 0 means GOMAXPROCS. The emitted program is identical for every
	// value — batch-built diagrams are renumbered into a deterministic
	// DFS order before table emission, and the order-sensitive OR-merge
	// always runs sequentially.
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.CompressionThreshold == 0 {
		o.CompressionThreshold = 120
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.BDD.Parallelism == 0 {
		o.BDD.Parallelism = o.Parallelism
	}
	return o
}

// parallelNormalizeFanout is the rule count below which normalization
// stays sequential: goroutine + slot bookkeeping costs more than the
// work it spreads.
const parallelNormalizeFanout = 64

// normalizeRules runs subscription.NormalizeRule over a rule batch,
// fanning out across `workers` goroutines when the batch is large.
// Results keep input order (per-rule result slots), so downstream
// compilation sees exactly the sequence a sequential loop produces.
func normalizeRules(rules []*subscription.Rule, workers int) ([]subscription.NormalizedRule, error) {
	perRule, err := normalizeRulesPer(rules, workers)
	if err != nil {
		return nil, err
	}
	var normalized []subscription.NormalizedRule
	for _, nrs := range perRule {
		normalized = append(normalized, nrs...)
	}
	return normalized, nil
}

// normalizeRulesPer is normalizeRules keeping one result slot per input
// rule (Incremental.Apply needs per-rule grouping for removal tracking).
func normalizeRulesPer(rules []*subscription.Rule, workers int) ([][]subscription.NormalizedRule, error) {
	perRule := make([][]subscription.NormalizedRule, len(rules))
	if workers > 1 && len(rules) >= parallelNormalizeFanout {
		var (
			next     atomic.Int64
			firstErr atomic.Pointer[error]
			wg       sync.WaitGroup
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1) - 1)
					if i >= len(rules) || firstErr.Load() != nil {
						return
					}
					nrs, err := subscription.NormalizeRule(rules[i])
					if err != nil {
						firstErr.CompareAndSwap(nil, &err)
						return
					}
					perRule[i] = nrs
				}
			}()
		}
		wg.Wait()
		if ep := firstErr.Load(); ep != nil {
			return nil, *ep
		}
	} else {
		for i, r := range rules {
			nrs, err := subscription.NormalizeRule(r)
			if err != nil {
				return nil, err
			}
			perRule[i] = nrs
		}
	}
	return perRule, nil
}

// Compile translates a rule set into a switch program.
func Compile(sp *spec.Spec, rules []*subscription.Rule, opts Options) (*Program, error) {
	opts = opts.withDefaults()
	normalized, err := normalizeRules(rules, opts.Parallelism)
	if err != nil {
		return nil, err
	}
	return CompileNormalized(sp, normalized, opts)
}

// CompileNormalized compiles already-normalized rules.
func CompileNormalized(sp *spec.Spec, rules []subscription.NormalizedRule, opts Options) (*Program, error) {
	opts = opts.withDefaults()
	expanded := expandStateful(rules, opts)
	if !opts.DisableValidityGuards {
		expanded = injectValidityGuards(expanded)
	}
	d, err := bdd.BuildNormalized(sp, expanded, opts.BDD)
	if err != nil {
		return nil, err
	}
	return FromBDD(d, opts)
}

// injectValidityGuards prepends valid(header)==1 atoms for every header a
// rule's conjunction reads, so rules never match packets lacking their
// headers (the parser's isValid() bits, §VI).
func injectValidityGuards(rules []subscription.NormalizedRule) []subscription.NormalizedRule {
	out := make([]subscription.NormalizedRule, 0, len(rules))
	var headers []string // reused scratch; a rule reads 1–3 headers
	for _, nr := range rules {
		headers = headers[:0]
		addHeader := func(h string) {
			if h == "" {
				return
			}
			for _, x := range headers {
				if x == h {
					return
				}
			}
			headers = append(headers, h)
		}
		for _, a := range nr.Conj {
			switch a.Ref.Kind {
			case subscription.PacketRef:
				addHeader(a.Ref.Field.Header)
			case subscription.AggregateRef:
				if a.Ref.Field != nil {
					addHeader(a.Ref.Field.Header)
				}
			}
		}
		if len(headers) == 0 {
			out = append(out, nr)
			continue
		}
		conj := make(subscription.Conjunction, 0, len(headers)+len(nr.Conj))
		for _, h := range headers {
			conj = append(conj, subscription.ValidAtom(h))
		}
		conj = append(conj, nr.Conj...)
		out = append(out, subscription.NormalizedRule{RuleID: nr.RuleID, Conj: conj, Action: nr.Action})
	}
	return out
}

// ruleIsLastHop decides whether a rule's stateful atoms are active: the
// rule must run on the hop immediately before its subscribers.
func ruleIsLastHop(nr subscription.NormalizedRule, opts Options) bool {
	if opts.LastHopPort == nil {
		return opts.LastHop
	}
	if len(nr.Action.Ports) == 0 {
		return opts.LastHop
	}
	for _, p := range nr.Action.Ports {
		if !opts.LastHopPort(p) {
			return false
		}
	}
	return true
}

// expandStateful rewrites stateful rules per the last-hop policy and
// synthesizes the register-update rules.
func expandStateful(rules []subscription.NormalizedRule, opts Options) []subscription.NormalizedRule {
	var out []subscription.NormalizedRule
	seenUpdate := make(map[string]bool)
	for _, nr := range rules {
		var stateless subscription.Conjunction
		var aggKeys []string
		for _, a := range nr.Conj {
			if a.Ref.Kind == subscription.AggregateRef {
				aggKeys = append(aggKeys, a.Ref.Key())
			} else {
				stateless = append(stateless, a)
			}
		}
		if len(aggKeys) == 0 {
			out = append(out, nr)
			continue
		}
		if !ruleIsLastHop(nr, opts) {
			// Erase stateful atoms: upstream switches must forward a
			// superset (completeness); the last hop enforces them.
			out = append(out, subscription.NormalizedRule{
				RuleID: nr.RuleID, Conj: stateless, Action: nr.Action,
			})
			continue
		}
		out = append(out, nr)
		// One update rule per (stateless context, aggregate). The update
		// fires whenever the rest of the filter matches.
		for _, key := range aggKeys {
			dedup := stateless.Key() + "|" + key
			if seenUpdate[dedup] {
				continue
			}
			seenUpdate[dedup] = true
			out = append(out, subscription.NormalizedRule{
				RuleID: nr.RuleID,
				Conj:   stateless,
				Action: subscription.Action{Name: UpdateActionName, Args: []string{key}},
			})
		}
	}
	return out
}

// FromBDD runs Algorithm 2: slice the BDD into field-specific components
// and translate each into a (state × range → state) table.
func FromBDD(d *bdd.BDD, opts Options) (*Program, error) {
	opts = opts.withDefaults()
	p := &Program{
		Spec: d.Universe.Spec,
		BDD:  d,
		Init: d.Root.ID,
	}
	reachable := d.Reachable()
	inComponent := make(map[int32]int) // node → field index (internal nodes)
	for _, n := range reachable {
		if !n.IsTerminal() {
			inComponent[n.ID] = n.Pred.FieldIdx
		}
	}
	// In nodes per component: the root (if internal) plus every node
	// whose parent lies outside its component.
	inNodes := make(map[int][]*bdd.Node)
	seenIn := make(map[int32]bool)
	addIn := func(n *bdd.Node) {
		if n.IsTerminal() || seenIn[n.ID] {
			return
		}
		seenIn[n.ID] = true
		f := n.Pred.FieldIdx
		inNodes[f] = append(inNodes[f], n)
	}
	addIn(d.Root)
	for _, n := range reachable {
		if n.IsTerminal() {
			continue
		}
		for _, next := range []*bdd.Node{n.Hi, n.Lo} {
			if next.IsTerminal() {
				continue
			}
			if next.Pred.FieldIdx != n.Pred.FieldIdx {
				addIn(next)
			}
		}
	}

	total := 0
	for _, fv := range d.Universe.Fields {
		t := &Table{
			Field:    fv,
			Defaults: make(map[StateID]StateID),
		}
		ins := inNodes[fv.Index]
		sort.Slice(ins, func(i, j int) bool { return ins[i].ID < ins[j].ID })
		for _, u := range ins {
			if err := emitPaths(t, fv, u, u, match.New(fv.Type())); err != nil {
				return nil, err
			}
			// Lo-walk: the state taken when every predicate on the field
			// is false (absent-field fallback).
			n := u
			for !n.IsTerminal() && n.Pred.FieldIdx == fv.Index {
				n = n.Lo
			}
			t.Defaults[u.ID] = n.ID
		}
		// Fields no live rule predicates on produce empty tables (the
		// incremental engine's universe holds every spec field); they are
		// pure pass-through stages, so don't materialize them.
		if len(t.Entries) == 0 && len(t.Defaults) == 0 {
			continue
		}
		t.index()
		classify(t, opts)
		total += len(t.Entries) + t.MapEntries
		if opts.MaxEntries > 0 && total > opts.MaxEntries {
			return nil, fmt.Errorf("compiler: table entries exceed limit %d", opts.MaxEntries)
		}
		p.Stages = append(p.Stages, t)
	}

	// Leaf table + multicast allocation.
	groupByKey := make(map[string]int)
	p.leafByState = make(map[StateID]*LeafEntry)
	var terminals []*bdd.Node
	for _, n := range reachable {
		if n.IsTerminal() {
			terminals = append(terminals, n)
		}
	}
	sort.Slice(terminals, func(i, j int) bool { return terminals[i].ID < terminals[j].ID })
	for _, n := range terminals {
		le := &LeafEntry{In: n.ID, Group: -1}
		// Split out the synthesized update directives.
		for _, c := range n.Actions.Custom {
			if c.Name == UpdateActionName {
				le.Updates = append(le.Updates, c.Args...)
			} else {
				le.Actions.Add(c)
			}
		}
		le.Actions.Merge(subscription.ActionSet{Ports: n.Actions.Ports})
		if len(le.Actions.Ports) > 1 {
			key := fmt.Sprint(le.Actions.Ports)
			id, ok := groupByKey[key]
			if !ok {
				id = len(p.Groups)
				groupByKey[key] = id
				p.Groups = append(p.Groups, MulticastGroup{
					ID:    id,
					Ports: append([]int(nil), le.Actions.Ports...),
				})
			}
			le.Group = id
		}
		p.Leaf = append(p.Leaf, le)
		p.leafByState[n.ID] = le
	}

	p.Resources = estimate(p)
	return p, nil
}

// emitPaths walks every path from In node u through the field component,
// intersecting predicates (Algorithm 2 lines 5–9), emitting one entry per
// Out node reached.
func emitPaths(t *Table, fv *bdd.FieldVar, u, n *bdd.Node, c match.Constraint) error {
	if n.IsTerminal() || n.Pred.FieldIdx != fv.Index {
		t.Entries = append(t.Entries, &Entry{In: u.ID, Match: c, Out: n.ID})
		return nil
	}
	if err := emitPaths(t, fv, u, n.Hi, c.With(n.Pred.Rel, n.Pred.Const, true)); err != nil {
		return err
	}
	return emitPaths(t, fv, u, n.Lo, c.With(n.Pred.Rel, n.Pred.Const, false))
}

// classify applies the §V-E resource optimizations, choosing the table
// kind for a stage.
func classify(t *Table, opts Options) {
	if opts.DisableExactOpt {
		t.Kind = TernaryTable
		return
	}
	// An exact table stores one SRAM row per pinned value; residual
	// ("none of the values") entries realize as the table's default
	// action, so they don't disqualify the stage.
	allExact := true
	for _, e := range t.Entries {
		if _, ok := e.Match.Exact(); ok {
			continue
		}
		if e.Match.IsResidual() {
			continue
		}
		allExact = false
		break
	}
	if allExact {
		t.Kind = ExactTable
		return
	}
	// Low-resolution domain mapping: integer fields whose predicates use
	// few distinct constants can be mapped through a small value map.
	if !opts.DisableCompression && t.Field.Type() == spec.IntField {
		consts := make(map[int64]bool)
		for _, pr := range t.Field.Preds {
			consts[pr.Const.Int] = true
		}
		if len(consts) > 0 && len(consts) <= opts.CompressionThreshold {
			t.Kind = CompressedTable
			// The value map partitions the domain at each constant into
			// at most 2k+1 code ranges.
			t.MapEntries = 2*len(consts) + 1
			return
		}
	}
	t.Kind = TernaryTable
}

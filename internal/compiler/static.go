package compiler

import (
	"fmt"

	"camus/internal/spec"
	"camus/internal/subscription"
)

// StaticPipeline is the once-per-application switch configuration
// generated from the message spec (§V-A): the parse graph, the fixed
// sequence of match-action stages (one per subscribable field plus the
// leaf), and the pre-allocated register block for state variables. The
// dynamic Program populates its tables at runtime.
type StaticPipeline struct {
	Spec *spec.Spec
	// StageFields lists the subscribable fields, in spec order, each of
	// which owns one match-action stage.
	StageFields []*spec.Field
	// RegisterBlock is the number of registers pre-allocated for state
	// variables; the dynamic compiler links aggregates to them (§V-A:
	// "statically pre-allocates a block of registers that are then
	// assigned to specific variables dynamically").
	RegisterBlock int
	// MaxParsedMessages bounds how many application messages one parser
	// pass can extract (PHV budget); deeper packets recirculate (§VI-B).
	MaxParsedMessages int
	// RecirculationPorts is the number of loopback ports dedicated to
	// deep parsing (Fig. 7 shows 3).
	RecirculationPorts int
}

// StaticOptions tune static pipeline generation.
type StaticOptions struct {
	RegisterBlock      int // default 64
	MaxParsedMessages  int // default 4
	RecirculationPorts int // default 3
}

// GenerateStatic performs the static compilation step: executed once per
// application, independent of the subscription rules.
func GenerateStatic(sp *spec.Spec, opts StaticOptions) (*StaticPipeline, error) {
	if opts.RegisterBlock == 0 {
		opts.RegisterBlock = 64
	}
	if opts.MaxParsedMessages == 0 {
		opts.MaxParsedMessages = 4
	}
	if opts.RecirculationPorts == 0 {
		opts.RecirculationPorts = 3
	}
	fields := sp.SubscribableFields()
	if len(fields) == 0 {
		return nil, fmt.Errorf("compiler: spec %s has no subscribable fields", sp.Name)
	}
	if len(fields)+1 > MaxPipelineStages {
		return nil, fmt.Errorf("compiler: spec %s needs %d stages, switch has %d",
			sp.Name, len(fields)+1, MaxPipelineStages)
	}
	return &StaticPipeline{
		Spec:               sp,
		StageFields:        fields,
		RegisterBlock:      opts.RegisterBlock,
		MaxParsedMessages:  opts.MaxParsedMessages,
		RecirculationPorts: opts.RecirculationPorts,
	}, nil
}

// Validate checks that a dynamic program can be loaded onto this static
// pipeline: same spec, every program stage backed by a static stage, and
// the aggregate registers within the pre-allocated block.
func (sp *StaticPipeline) Validate(p *Program) error {
	if p.Spec != sp.Spec {
		return fmt.Errorf("compiler: program spec %q does not match pipeline spec %q",
			p.Spec.Name, sp.Spec.Name)
	}
	static := make(map[string]bool, len(sp.StageFields))
	for _, f := range sp.StageFields {
		static[f.QName()] = true
	}
	regs := 0
	for _, t := range p.Stages {
		switch t.Field.Ref.Kind {
		case subscription.PacketRef:
			if !static[t.Field.Ref.Field.QName()] {
				return fmt.Errorf("compiler: program matches %s which has no static stage",
					t.Field.Ref.Field.QName())
			}
		case subscription.AggregateRef:
			regs++
		}
	}
	if regs > sp.RegisterBlock {
		return fmt.Errorf("compiler: program needs %d registers, block has %d",
			regs, sp.RegisterBlock)
	}
	return nil
}

package match

import (
	"math/rand"
	"testing"
	"testing/quick"

	"camus/internal/spec"
	"camus/internal/subscription"
)

func iv(v int64) spec.Value  { return spec.IntVal(v) }
func sv(s string) spec.Value { return spec.StrVal(s) }

func TestIntRefinement(t *testing.T) {
	c := New(spec.IntField)
	c = c.With(subscription.GT, iv(10), true)  // v > 10
	c = c.With(subscription.LT, iv(20), true)  // v < 20
	c = c.With(subscription.EQ, iv(15), false) // v != 15
	for v, want := range map[int64]bool{10: false, 11: true, 15: false, 19: true, 20: false} {
		if got := c.Matches(iv(v)); got != want {
			t.Errorf("Matches(%d) = %v, want %v", v, got, want)
		}
	}
	if _, ok := c.Exact(); ok {
		t.Error("interval should not be exact")
	}
}

func TestIntImplication(t *testing.T) {
	c := New(spec.IntField).With(subscription.GT, iv(50), true) // v > 50
	cases := []struct {
		rel  subscription.Relation
		v    int64
		want Tri
	}{
		{subscription.GT, 40, True}, // v>50 ⇒ v>40
		{subscription.GT, 60, Unknown},
		{subscription.LT, 50, False}, // v>50 ⇒ ¬(v<50)
		{subscription.LT, 51, False}, // v>50 ⇒ v>=51 ⇒ ¬(v<51)
		{subscription.EQ, 30, False},
		{subscription.EQ, 60, Unknown},
	}
	for _, tc := range cases {
		if got := c.Implies(tc.rel, iv(tc.v)); got != tc.want {
			t.Errorf("(v>50).Implies(%s %d) = %v, want %v", tc.rel, tc.v, got, tc.want)
		}
	}
}

func TestIntBoundaryExclusions(t *testing.T) {
	// [5,7] with 5 and 7 excluded collapses to the singleton 6.
	c := New(spec.IntField)
	c = c.With(subscription.GT, iv(4), true)
	c = c.With(subscription.LT, iv(8), true)
	c = c.With(subscription.EQ, iv(5), false)
	c = c.With(subscription.EQ, iv(7), false)
	v, ok := c.Exact()
	if !ok || v.Int != 6 {
		t.Fatalf("Exact() = %v,%v want 6,true", v, ok)
	}
	if got := c.Implies(subscription.EQ, iv(6)); got != True {
		t.Errorf("singleton Implies(EQ 6) = %v, want True", got)
	}
}

func TestIntEquality(t *testing.T) {
	c := New(spec.IntField).With(subscription.EQ, iv(42), true)
	v, ok := c.Exact()
	if !ok || v.Int != 42 {
		t.Fatalf("Exact = %v %v", v, ok)
	}
	if c.Implies(subscription.GT, iv(41)) != True || c.Implies(subscription.LT, iv(42)) != False {
		t.Error("singleton implications wrong")
	}
	if c.TCAMEntries(32) != 1 {
		t.Errorf("exact TCAM entries = %d", c.TCAMEntries(32))
	}
}

func TestRangePrefixCount(t *testing.T) {
	cases := []struct {
		lo, hi uint64
		bits   int
		want   int
	}{
		{0, 255, 8, 1}, // full domain: one wildcard
		{0, 127, 8, 1}, // aligned half
		{1, 255, 8, 8}, // classic worst-ish case
		{5, 5, 8, 1},   // point
		{4, 7, 8, 1},   // aligned block
		{1, 6, 8, 4},   // 1, 2-3, 4-5, 6
	}
	for _, tc := range cases {
		if got := rangePrefixCount(tc.lo, tc.hi, tc.bits); got != tc.want {
			t.Errorf("rangePrefixCount(%d,%d,%d) = %d, want %d", tc.lo, tc.hi, tc.bits, got, tc.want)
		}
	}
}

func TestIntTCAMWithExclusions(t *testing.T) {
	c := New(spec.IntField)
	c = c.With(subscription.GT, iv(-1), true) // v >= 0
	c = c.With(subscription.LT, iv(8), true)  // v < 8 → [0,7]
	if got := c.TCAMEntries(8); got != 1 {
		t.Fatalf("[0,7] = %d entries, want 1", got)
	}
	c = c.With(subscription.EQ, iv(4), false) // [0,3] ∪ [5,7]
	if got := c.TCAMEntries(8); got != 1+2 {
		t.Errorf("[0,3]∪[5,7] = %d entries, want 3", got)
	}
}

func TestStrConstraint(t *testing.T) {
	c := New(spec.StringField)
	c = c.With(subscription.PREFIX, sv("video/"), true)
	if c.Implies(subscription.PREFIX, sv("vid")) != True {
		t.Error("required video/ should imply prefix vid")
	}
	if c.Implies(subscription.PREFIX, sv("audio/")) != False {
		t.Error("required video/ should refute prefix audio/")
	}
	if c.Implies(subscription.EQ, sv("audio/x")) != False {
		t.Error("required video/ should refute == audio/x")
	}
	if c.Implies(subscription.EQ, sv("video/x")) != Unknown {
		t.Error("== video/x should be unknown")
	}
	if !c.Matches(sv("video/cats")) || c.Matches(sv("audio/x")) {
		t.Error("Matches wrong for prefix constraint")
	}

	c2 := c.With(subscription.EQ, sv("video/cats"), true)
	if v, ok := c2.Exact(); !ok || v.Str != "video/cats" {
		t.Errorf("Exact = %v %v", v, ok)
	}
	if c2.Implies(subscription.PREFIX, sv("video/c")) != True {
		t.Error("known value should decide prefix")
	}

	c3 := c.With(subscription.PREFIX, sv("video/cats/"), false)
	if c3.Matches(sv("video/cats/tom")) {
		t.Error("excluded prefix still matches")
	}
	if c3.Implies(subscription.PREFIX, sv("video/cats/t")) != False {
		t.Error("excluded prefix should refute longer prefix")
	}
	if !c3.Matches(sv("video/dogs")) {
		t.Error("unrelated value should match")
	}
}

func TestStrExclusions(t *testing.T) {
	c := New(spec.StringField)
	c = c.With(subscription.EQ, sv("GOOGL"), false)
	if c.Matches(sv("GOOGL")) {
		t.Error("excluded value matches")
	}
	if !c.Matches(sv("MSFT")) {
		t.Error("other value should match")
	}
	if c.Implies(subscription.EQ, sv("GOOGL")) != False {
		t.Error("excluded value should be implied false")
	}
}

// TestConstraintSoundness: refining with a predicate outcome must keep
// exactly the values consistent with that outcome (random walk property).
func TestConstraintSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	rels := []subscription.Relation{subscription.EQ, subscription.LT, subscription.GT}
	for trial := 0; trial < 300; trial++ {
		c := New(spec.IntField)
		type step struct {
			rel     subscription.Relation
			v       int64
			outcome bool
		}
		var steps []step
		for i := 0; i < 5; i++ {
			s := step{rel: rels[r.Intn(3)], v: int64(r.Intn(10)), outcome: r.Intn(2) == 0}
			// Skip refinements inconsistent with the current constraint —
			// the BDD only refines along non-implied branches.
			imp := c.Implies(s.rel, iv(s.v))
			if imp == True && !s.outcome || imp == False && s.outcome {
				continue
			}
			c = c.With(s.rel, iv(s.v), s.outcome)
			steps = append(steps, s)
		}
		for v := int64(0); v < 10; v++ {
			want := true
			for _, s := range steps {
				var holds bool
				switch s.rel {
				case subscription.EQ:
					holds = v == s.v
				case subscription.LT:
					holds = v < s.v
				case subscription.GT:
					holds = v > s.v
				}
				if holds != s.outcome {
					want = false
					break
				}
			}
			if got := c.Matches(iv(v)); got != want {
				t.Fatalf("trial %d: Matches(%d) = %v, want %v (steps %+v, key %s)",
					trial, v, got, want, steps, c.Key())
			}
		}
	}
}

// TestImpliesConsistentWithMatches via testing/quick: whenever Implies
// returns True every matching value satisfies the predicate, and whenever
// False no matching value does.
func TestImpliesConsistentWithMatches(t *testing.T) {
	f := func(loSeed, hiSeed uint8, pv uint8, relSeed uint8) bool {
		lo, hi := int64(loSeed%16), int64(hiSeed%16)
		if lo > hi {
			lo, hi = hi, lo
		}
		c := New(spec.IntField)
		c = c.With(subscription.GT, iv(lo-1), true)
		c = c.With(subscription.LT, iv(hi+1), true)
		rels := []subscription.Relation{subscription.EQ, subscription.LT, subscription.GT}
		rel := rels[int(relSeed)%3]
		p := iv(int64(pv % 16))
		imp := c.Implies(rel, p)
		for v := int64(0); v < 16; v++ {
			if !c.Matches(iv(v)) {
				continue
			}
			holds := subscription.Compare(iv(v), rel, p)
			if imp == True && !holds {
				return false
			}
			if imp == False && holds {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestKeyCanonical(t *testing.T) {
	a := New(spec.IntField).With(subscription.GT, iv(5), true).With(subscription.LT, iv(10), true)
	b := New(spec.IntField).With(subscription.LT, iv(10), true).With(subscription.GT, iv(5), true)
	if a.Key() != b.Key() {
		t.Errorf("order-dependent keys: %s vs %s", a.Key(), b.Key())
	}
}

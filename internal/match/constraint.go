// Package match models value constraints over packet fields: the sets of
// field values that satisfy a conjunction of canonical atomic predicates.
//
// Constraints serve three roles:
//
//   - in the BDD builder they are the per-field path contexts that drive
//     the domain-specific implication pruning (paper §V-C reduction iii);
//   - in the compiler they are the "range" column of the match-action
//     entries produced by Algorithm 2 ((state, range) → state);
//   - in the pipeline runtime they are the executable match expressions.
//
// Canonical relations are EQ, LT, GT for integers and EQ, PREFIX for
// strings; the remaining relations are expressed as negated outcomes of
// the canonical ones.
package match

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"camus/internal/spec"
	"camus/internal/subscription"
)

// Tri is a three-valued truth value returned by implication tests.
type Tri int

const (
	Unknown Tri = iota
	True
	False
)

func (t Tri) String() string {
	switch t {
	case True:
		return "true"
	case False:
		return "false"
	default:
		return "unknown"
	}
}

// Constraint is the set of values a field may still take along a BDD path
// or within one compiled table entry.
type Constraint interface {
	// Implies tests whether the constraint decides the canonical
	// predicate (rel ∈ {EQ, LT, GT, PREFIX}).
	Implies(rel subscription.Relation, c spec.Value) Tri
	// With returns the constraint refined by the predicate outcome.
	With(rel subscription.Relation, c spec.Value, outcome bool) Constraint
	// Matches reports whether a concrete value satisfies the constraint.
	Matches(v spec.Value) bool
	// Exact returns the single satisfying value, if the constraint pins
	// one — such entries compile to exact (SRAM) matches (§V-E).
	Exact() (spec.Value, bool)
	// IsResidual reports whether the constraint is the complement of a
	// finite set of exact values (no range or prefix component). Residual
	// entries realize as the default (miss) action of an exact table
	// rather than stored entries.
	IsResidual() bool
	// TCAMEntries estimates how many TCAM entries realize the constraint
	// on a field of the given bit width (range-to-prefix expansion).
	TCAMEntries(bits int) int
	// Key returns a canonical encoding (memoization / dedup key).
	Key() string
}

// New returns the unconstrained ("match everything") constraint for a
// field value type.
func New(t spec.FieldType) Constraint {
	if t == spec.StringField {
		return &StrConstraint{}
	}
	return &IntConstraint{Lo: math.MinInt64, Hi: math.MaxInt64}
}

// maxExclusions caps the per-constraint exclusion lists. Workloads with
// tens of thousands of equality predicates on one field (e.g. 1M hICN
// content IDs) would otherwise build O(n)-sized lists copied O(n) times.
// Dropping exclusions only loosens a constraint, which is sound:
// implication tests lose a pruning opportunity, and compiled entries may
// overlap a later residual entry — the pipeline takes the first match in
// hi-before-lo path order, which is exactly BDD evaluation order, so
// semantics are unchanged.
const maxExclusions = 32

// ---------------------------------------------------------------------
// Integer constraints: an interval plus interior exclusions.
// ---------------------------------------------------------------------

// IntConstraint is [Lo,Hi] minus Excluded (sorted interior points).
type IntConstraint struct {
	Lo, Hi   int64
	Excluded []int64
}

func (ic *IntConstraint) isExcluded(v int64) bool {
	i := sort.Search(len(ic.Excluded), func(i int) bool { return ic.Excluded[i] >= v })
	return i < len(ic.Excluded) && ic.Excluded[i] == v
}

func (ic *IntConstraint) singleton() (int64, bool) {
	if ic.Lo == ic.Hi {
		return ic.Lo, true
	}
	return 0, false
}

// Implies implements Constraint.
func (ic *IntConstraint) Implies(rel subscription.Relation, c spec.Value) Tri {
	v := c.Int
	switch rel {
	case subscription.EQ:
		if p, ok := ic.singleton(); ok {
			if p == v {
				return True
			}
			return False
		}
		if v < ic.Lo || v > ic.Hi || ic.isExcluded(v) {
			return False
		}
		return Unknown
	case subscription.LT:
		if ic.Hi < v {
			return True
		}
		if ic.Lo >= v {
			return False
		}
		return Unknown
	case subscription.GT:
		if ic.Lo > v {
			return True
		}
		if ic.Hi <= v {
			return False
		}
		return Unknown
	default:
		panic("match: non-canonical int relation " + rel.String())
	}
}

// With implements Constraint.
func (ic *IntConstraint) With(rel subscription.Relation, c spec.Value, outcome bool) Constraint {
	v := c.Int
	n := &IntConstraint{Lo: ic.Lo, Hi: ic.Hi, Excluded: ic.Excluded}
	switch rel {
	case subscription.EQ:
		if outcome {
			n.Lo, n.Hi = v, v
			n.Excluded = nil
		} else {
			n.exclude(v)
		}
	case subscription.LT:
		if outcome {
			if v-1 < n.Hi {
				n.Hi = v - 1
			}
		} else if v > n.Lo {
			n.Lo = v
		}
	case subscription.GT:
		if outcome {
			if v+1 > n.Lo {
				n.Lo = v + 1
			}
		} else if v < n.Hi {
			n.Hi = v
		}
	default:
		panic("match: non-canonical int relation " + rel.String())
	}
	n.normalize()
	return n
}

func (ic *IntConstraint) exclude(v int64) {
	if v < ic.Lo || v > ic.Hi {
		return
	}
	i := sort.Search(len(ic.Excluded), func(i int) bool { return ic.Excluded[i] >= v })
	if i < len(ic.Excluded) && ic.Excluded[i] == v {
		return
	}
	if len(ic.Excluded) >= maxExclusions && v != ic.Lo && v != ic.Hi {
		return // capacity: drop the exclusion (sound loosening)
	}
	out := make([]int64, 0, len(ic.Excluded)+1)
	out = append(out, ic.Excluded[:i]...)
	out = append(out, v)
	out = append(out, ic.Excluded[i:]...)
	ic.Excluded = out
}

func (ic *IntConstraint) normalize() {
	for ic.Lo <= ic.Hi && ic.isExcluded(ic.Lo) {
		ic.Lo++
	}
	for ic.Hi >= ic.Lo && ic.isExcluded(ic.Hi) {
		ic.Hi--
	}
	if len(ic.Excluded) > 0 {
		kept := ic.Excluded[:0:0]
		for _, v := range ic.Excluded {
			if v > ic.Lo && v < ic.Hi {
				kept = append(kept, v)
			}
		}
		ic.Excluded = kept
	}
}

// Matches implements Constraint.
func (ic *IntConstraint) Matches(v spec.Value) bool {
	if v.Kind != spec.IntField {
		return false
	}
	return v.Int >= ic.Lo && v.Int <= ic.Hi && !ic.isExcluded(v.Int)
}

// Exact implements Constraint.
func (ic *IntConstraint) Exact() (spec.Value, bool) {
	if p, ok := ic.singleton(); ok {
		return spec.IntVal(p), true
	}
	return spec.Value{}, false
}

// IsResidual implements Constraint.
func (ic *IntConstraint) IsResidual() bool {
	return ic.Lo == math.MinInt64 && ic.Hi == math.MaxInt64
}

// TCAMEntries implements Constraint: the allowed set is split at excluded
// points into maximal ranges, each expanded to prefix entries.
func (ic *IntConstraint) TCAMEntries(bits int) int {
	if _, ok := ic.singleton(); ok {
		return 1
	}
	lo := clampToBits(ic.Lo, bits)
	hi := clampToBits(ic.Hi, bits)
	if lo > hi {
		return 0
	}
	total := 0
	start := lo
	for _, x := range ic.Excluded {
		if x < start || x > hi {
			continue
		}
		if x > start {
			total += rangePrefixCount(uint64(start), uint64(x-1), bits)
		}
		start = x + 1
	}
	if start <= hi {
		total += rangePrefixCount(uint64(start), uint64(hi), bits)
	}
	return total
}

func clampToBits(v int64, bits int) int64 {
	if v < 0 {
		return 0
	}
	var max int64
	if bits >= 63 {
		max = math.MaxInt64
	} else {
		max = int64(1)<<uint(bits) - 1
	}
	if v > max {
		return max
	}
	return v
}

// rangePrefixCount counts the minimal prefix (ternary) entries covering
// the inclusive range [lo,hi] on a width-bit field — the classic
// range-to-TCAM expansion the paper's §V-E optimization avoids.
func rangePrefixCount(lo, hi uint64, bits int) int {
	if bits > 63 {
		bits = 63
	}
	count := 0
	for lo <= hi {
		// Largest power-of-two block starting at lo that fits in [lo,hi].
		size := uint64(1) << uint(bits)
		for size > 1 {
			if lo%size == 0 && lo+size-1 <= hi {
				break
			}
			size >>= 1
		}
		count++
		if lo+size-1 == math.MaxUint64 {
			break
		}
		lo += size
	}
	return count
}

// Key implements Constraint.
func (ic *IntConstraint) Key() string {
	buf := make([]byte, 0, 24+12*len(ic.Excluded))
	buf = append(buf, '[')
	buf = strconv.AppendInt(buf, ic.Lo, 10)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, ic.Hi, 10)
	buf = append(buf, ']')
	for _, v := range ic.Excluded {
		buf = append(buf, '!')
		buf = strconv.AppendInt(buf, v, 10)
	}
	return string(buf)
}

func (ic *IntConstraint) String() string { return ic.Key() }

// ---------------------------------------------------------------------
// String constraints.
// ---------------------------------------------------------------------

// StrConstraint tracks exact-value knowledge, a required prefix, and
// excluded values/prefixes.
type StrConstraint struct {
	Known      string
	HasKnown   bool
	Required   string   // longest required prefix
	ExcludedEq []string // sorted excluded exact values
	ExcludedPx []string // sorted excluded prefixes
}

// Implies implements Constraint.
func (sc *StrConstraint) Implies(rel subscription.Relation, c spec.Value) Tri {
	v := c.Str
	if sc.HasKnown {
		var m bool
		switch rel {
		case subscription.EQ:
			m = sc.Known == v
		case subscription.PREFIX:
			m = strings.HasPrefix(sc.Known, v)
		default:
			panic("match: non-canonical string relation " + rel.String())
		}
		if m {
			return True
		}
		return False
	}
	switch rel {
	case subscription.EQ:
		if containsStr(sc.ExcludedEq, v) {
			return False
		}
		if sc.Required != "" && !strings.HasPrefix(v, sc.Required) {
			return False
		}
		for _, px := range sc.ExcludedPx {
			if strings.HasPrefix(v, px) {
				return False
			}
		}
		return Unknown
	case subscription.PREFIX:
		if sc.Required != "" && strings.HasPrefix(sc.Required, v) {
			return True
		}
		if sc.Required != "" && !strings.HasPrefix(v, sc.Required) {
			return False
		}
		for _, px := range sc.ExcludedPx {
			if strings.HasPrefix(v, px) {
				return False
			}
		}
		return Unknown
	default:
		panic("match: non-canonical string relation " + rel.String())
	}
}

// With implements Constraint.
func (sc *StrConstraint) With(rel subscription.Relation, c spec.Value, outcome bool) Constraint {
	v := c.Str
	n := &StrConstraint{
		Known: sc.Known, HasKnown: sc.HasKnown, Required: sc.Required,
		ExcludedEq: sc.ExcludedEq, ExcludedPx: sc.ExcludedPx,
	}
	switch rel {
	case subscription.EQ:
		if outcome {
			n.Known, n.HasKnown = v, true
			n.Required, n.ExcludedEq, n.ExcludedPx = "", nil, nil
		} else if len(n.ExcludedEq) < maxExclusions {
			n.ExcludedEq = insertStr(n.ExcludedEq, v)
		}
	case subscription.PREFIX:
		if outcome {
			if len(v) > len(n.Required) {
				n.Required = v
			}
		} else if len(n.ExcludedPx) < maxExclusions {
			n.ExcludedPx = insertStr(n.ExcludedPx, v)
		}
	default:
		panic("match: non-canonical string relation " + rel.String())
	}
	return n
}

// Matches implements Constraint.
func (sc *StrConstraint) Matches(v spec.Value) bool {
	if v.Kind != spec.StringField {
		return false
	}
	s := v.Str
	if sc.HasKnown {
		return s == sc.Known
	}
	if sc.Required != "" && !strings.HasPrefix(s, sc.Required) {
		return false
	}
	if containsStr(sc.ExcludedEq, s) {
		return false
	}
	for _, px := range sc.ExcludedPx {
		if strings.HasPrefix(s, px) {
			return false
		}
	}
	return true
}

// Exact implements Constraint.
func (sc *StrConstraint) Exact() (spec.Value, bool) {
	if sc.HasKnown {
		return spec.StrVal(sc.Known), true
	}
	return spec.Value{}, false
}

// IsResidual implements Constraint.
func (sc *StrConstraint) IsResidual() bool {
	return !sc.HasKnown && sc.Required == "" && len(sc.ExcludedPx) == 0
}

// TCAMEntries implements Constraint: one ternary entry for the required
// prefix (or a wildcard), plus one shadowing entry per exclusion.
func (sc *StrConstraint) TCAMEntries(int) int {
	if sc.HasKnown {
		return 1
	}
	return 1 + len(sc.ExcludedEq) + len(sc.ExcludedPx)
}

// Key implements Constraint.
func (sc *StrConstraint) Key() string {
	if sc.HasKnown {
		buf := make([]byte, 0, 3+len(sc.Known))
		buf = append(buf, '=')
		return string(strconv.AppendQuote(buf, sc.Known))
	}
	buf := make([]byte, 0, 16)
	buf = append(buf, '^')
	buf = strconv.AppendQuote(buf, sc.Required)
	for _, v := range sc.ExcludedEq {
		buf = append(buf, '!', '=')
		buf = strconv.AppendQuote(buf, v)
	}
	for _, v := range sc.ExcludedPx {
		buf = append(buf, '!', '^')
		buf = strconv.AppendQuote(buf, v)
	}
	return string(buf)
}

func (sc *StrConstraint) String() string { return sc.Key() }

func containsStr(sorted []string, v string) bool {
	i := sort.SearchStrings(sorted, v)
	return i < len(sorted) && sorted[i] == v
}

func insertStr(sorted []string, v string) []string {
	i := sort.SearchStrings(sorted, v)
	if i < len(sorted) && sorted[i] == v {
		return sorted
	}
	out := make([]string, 0, len(sorted)+1)
	out = append(out, sorted[:i]...)
	out = append(out, v)
	out = append(out, sorted[i:]...)
	return out
}

package cover

import (
	"sort"

	"camus/internal/subscription"
)

// Delta is the table-entry consequence of one forest mutation. The
// caller must apply Uninstall and Install in the same atomic batch:
// for an uncovering (root removal) the uninstalled root and the
// promoted children land in one epoch, so no packet window exists in
// which a still-subscribed filter has no covering entry.
type Delta struct {
	// Install lists expressions that must gain a table entry.
	Install []subscription.Expr
	// Uninstall lists expressions whose table entry must go away.
	Uninstall []subscription.Expr
}

// Empty reports whether the mutation changed no table entries.
func (d Delta) Empty() bool { return len(d.Install) == 0 && len(d.Uninstall) == 0 }

// node is one filter in the forest. refs counts retain/release pairs
// from the placement layer; parent == nil marks a root (installed
// entry), everything else is a covered obligation.
type node struct {
	key      string
	expr     subscription.Expr
	refs     int
	parent   *node
	children map[string]*node
}

// Forest maintains the subsumption forest for one (switch, port).
//
// Invariants:
//
//   - every non-root node implies its parent (hence, transitively, its
//     root), so the installed roots forward a superset of every
//     tracked filter's traffic;
//   - no root implies another root (capture completeness: a new root
//     adopts every existing root it covers), so the installed set is
//     an antichain and entry count is minimal w.r.t. the oracle's
//     verdicts;
//   - the node set is exactly the distinct filter expressions placed
//     at the port, so Size() is the entry count full installation
//     would use and Roots() the count covering uses.
//
// Iteration is by sorted expression key throughout, so forests evolve
// deterministically for a given operation sequence. Not safe for
// concurrent use; the control plane mutates forests only under its
// registry lock.
type Forest struct {
	im    *Implier
	nodes map[string]*node
	ctr   Counters
}

// Counters accumulates the forest's covering activity over its whole
// lifetime. The instantaneous gauges (Roots, Size) can read zero at an
// unlucky moment — e.g. a churn stream whose final live set holds no
// implication pair — while these monotone totals still prove covering
// did work.
type Counters struct {
	// CoveredAdds counts new filters filed under an existing covering
	// root: installs that full installation would have performed and
	// covering elided.
	CoveredAdds int64
	// Captures counts existing roots adopted by a broader new root —
	// each one a table entry removed without any unsubscribe.
	Captures int64
	// Promotions counts covered children re-installed as roots by an
	// uncovering (always in the same batch as the root's delete).
	Promotions int64
}

// Counters returns the forest's lifetime covering totals.
func (f *Forest) Counters() Counters { return f.ctr }

// NewForest builds an empty forest over the given implication oracle.
func NewForest(im *Implier) *Forest {
	return &Forest{im: im, nodes: make(map[string]*node)}
}

// Add retains one reference to expr and returns the table delta. A
// known expression only bumps its refcount. A new expression either
// attaches under a root that covers it (no table change), or becomes a
// root itself: its entry is installed and any existing roots it covers
// are captured — their entries uninstalled, their subtrees re-homed
// beneath the new root.
func (f *Forest) Add(expr subscription.Expr) Delta {
	key := expr.String()
	if n := f.nodes[key]; n != nil {
		n.refs++
		return Delta{}
	}
	n := &node{key: key, expr: expr, refs: 1, children: make(map[string]*node)}
	for _, r := range f.sortedRoots() {
		if f.im.Implies(expr, r.expr) {
			f.nodes[key] = n
			attach(n, r)
			f.ctr.CoveredAdds++
			return Delta{}
		}
	}
	d := Delta{Install: []subscription.Expr{expr}}
	for _, r := range f.sortedRoots() {
		if f.im.Implies(r.expr, expr) {
			attach(r, n)
			d.Uninstall = append(d.Uninstall, r.expr)
		}
	}
	f.nodes[key] = n
	f.ctr.Captures += int64(len(d.Uninstall))
	return d
}

// Remove releases one reference to expr and returns the table delta.
// Dropping a covered obligation changes nothing (its children stay
// covered by transitivity through the grandparent). Dropping a root is
// an uncovering: the root's entry is uninstalled and each child is
// re-homed — under another root when one still covers it, otherwise
// promoted to root with a fresh install — all in one delta so the
// caller can apply it gap-free.
func (f *Forest) Remove(expr subscription.Expr) Delta {
	key := expr.String()
	n := f.nodes[key]
	if n == nil {
		return Delta{}
	}
	n.refs--
	if n.refs > 0 {
		return Delta{}
	}
	delete(f.nodes, key)
	if n.parent != nil {
		delete(n.parent.children, key)
		for _, c := range sortedChildren(n) {
			attach(c, n.parent)
		}
		return Delta{}
	}
	d := Delta{Uninstall: []subscription.Expr{expr}}
	orphans := sortedChildren(n)
	for _, c := range orphans {
		c.parent = nil
	}
	for _, c := range orphans {
		if c.parent != nil {
			// Already captured by a sibling promoted earlier in this
			// same uncovering? Impossible — promotion only re-parents
			// the seeker — but guard stays for clarity.
			continue
		}
		attached := false
		for _, r := range f.sortedRoots() {
			if r == c {
				continue
			}
			if f.im.Implies(c.expr, r.expr) {
				attach(c, r)
				attached = true
				break
			}
		}
		if !attached {
			d.Install = append(d.Install, c.expr)
		}
	}
	f.ctr.Promotions += int64(len(d.Install))
	return d
}

// Covered reports whether expr is tracked as a covered obligation
// (present, but not installed).
func (f *Forest) Covered(expr subscription.Expr) bool {
	n := f.nodes[expr.String()]
	return n != nil && n.parent != nil
}

// Refs returns the reference count for expr (0 when absent).
func (f *Forest) Refs(expr subscription.Expr) int {
	if n := f.nodes[expr.String()]; n != nil {
		return n.refs
	}
	return 0
}

// Size is the number of distinct filters tracked — the entry count
// full installation would need for this port.
func (f *Forest) Size() int { return len(f.nodes) }

// Roots is the number of installed entries under covering.
func (f *Forest) Roots() int {
	n := 0
	for _, nd := range f.nodes {
		if nd.parent == nil {
			n++
		}
	}
	return n
}

func (f *Forest) sortedRoots() []*node {
	keys := make([]string, 0, len(f.nodes))
	for k, n := range f.nodes {
		if n.parent == nil {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]*node, len(keys))
	for i, k := range keys {
		out[i] = f.nodes[k]
	}
	return out
}

func sortedChildren(n *node) []*node {
	keys := make([]string, 0, len(n.children))
	for k := range n.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*node, len(keys))
	for i, k := range keys {
		out[i] = n.children[k]
	}
	return out
}

func attach(child, parent *node) {
	child.parent = parent
	parent.children[child.key] = child
}

package cover

import (
	"fmt"
	"testing"

	"camus/internal/routing"
	"camus/internal/spec"
	"camus/internal/subscription"
	"camus/internal/topology"
)

var testSpec = spec.MustParse("itch", `
header itch_order {
    shares : u32 @field;
    price : u32 @field;
    stock : str8 @field_exact;
}
`)

func filter(t testing.TB, src string) subscription.Expr {
	t.Helper()
	e, err := subscription.NewParser(testSpec).ParseFilter(src)
	if err != nil {
		t.Fatalf("ParseFilter(%q): %v", src, err)
	}
	return e
}

func TestImplies(t *testing.T) {
	im := NewImplier(testSpec, 0)
	cases := []struct {
		f, g string
		want bool
	}{
		{"stock == GOOGL and price > 500", "stock == GOOGL", true},
		{"stock == GOOGL", "stock == GOOGL and price > 500", false},
		{"price > 500", "price > 100", true},
		{"price > 100", "price > 500", false},
		{"stock == GOOGL and price > 500 and shares > 10", "stock == GOOGL and price > 100", true},
		{"stock == GOOGL", "stock == MSFT", false},
		{"stock == GOOGL", "stock == GOOGL or stock == MSFT", true},
		{"price > 100 and price < 50", "stock == MSFT", true}, // unsat implies anything
		{"price >= 100", "price > 99", true},                  // equivalent over u32
		{"price > 99", "price >= 100", true},
	}
	for _, c := range cases {
		if got := im.Implies(filter(t, c.f), filter(t, c.g)); got != c.want {
			t.Errorf("Implies(%q, %q) = %v, want %v", c.f, c.g, got, c.want)
		}
		// Memoized answer must agree.
		if got := im.Implies(filter(t, c.f), filter(t, c.g)); got != c.want {
			t.Errorf("memoized Implies(%q, %q) = %v, want %v", c.f, c.g, got, c.want)
		}
	}
	// Trivial fast paths.
	e := filter(t, "price > 7")
	if !im.Implies(e, e) {
		t.Error("Implies(e, e) = false")
	}
	if !im.Implies(e, subscription.True) {
		t.Error("Implies(e, true) = false")
	}
}

func deltaStrings(es []subscription.Expr) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.String()
	}
	return out
}

func wantDelta(t *testing.T, d Delta, install, uninstall []string) {
	t.Helper()
	if fmt.Sprint(deltaStrings(d.Install)) != fmt.Sprint(install) ||
		fmt.Sprint(deltaStrings(d.Uninstall)) != fmt.Sprint(uninstall) {
		t.Fatalf("delta = install %v uninstall %v, want install %v uninstall %v",
			deltaStrings(d.Install), deltaStrings(d.Uninstall), install, uninstall)
	}
}

func TestForestCoverAndUncover(t *testing.T) {
	im := NewImplier(testSpec, 0)
	f := NewForest(im)
	broad := filter(t, "stock == GOOGL")
	mid := filter(t, "stock == GOOGL and price > 100")
	narrow := filter(t, "stock == GOOGL and price > 500")

	// Broad first: installed as a root.
	wantDelta(t, f.Add(broad), []string{broad.String()}, nil)
	// Narrow attaches under it: covered, nothing installed.
	wantDelta(t, f.Add(narrow), nil, nil)
	if !f.Covered(narrow) || f.Covered(broad) {
		t.Fatalf("Covered(narrow)=%v Covered(broad)=%v", f.Covered(narrow), f.Covered(broad))
	}
	if f.Size() != 2 || f.Roots() != 1 {
		t.Fatalf("Size=%d Roots=%d, want 2/1", f.Size(), f.Roots())
	}
	// Mid is also covered by broad.
	wantDelta(t, f.Add(mid), nil, nil)

	// Double-retain broad, then one release: refcount only.
	wantDelta(t, f.Add(broad), nil, nil)
	if f.Refs(broad) != 2 {
		t.Fatalf("Refs(broad) = %d, want 2", f.Refs(broad))
	}
	wantDelta(t, f.Remove(broad), nil, nil)

	// Uncovering: removing the root uninstalls it and promotes the
	// children in one delta. mid covers narrow, so only mid installs.
	d := f.Remove(broad)
	wantDelta(t, d, []string{mid.String()}, []string{broad.String()})
	if f.Covered(mid) || !f.Covered(narrow) {
		t.Fatalf("after uncover: Covered(mid)=%v Covered(narrow)=%v", f.Covered(mid), f.Covered(narrow))
	}
	if f.Size() != 2 || f.Roots() != 1 {
		t.Fatalf("after uncover: Size=%d Roots=%d, want 2/1", f.Size(), f.Roots())
	}

	// Removing the last obligations empties the forest.
	wantDelta(t, f.Remove(narrow), nil, nil)
	wantDelta(t, f.Remove(mid), nil, []string{mid.String()})
	if f.Size() != 0 {
		t.Fatalf("Size = %d, want 0", f.Size())
	}

	// Lifetime counters survive the now-empty live set: narrow and mid
	// were each filed under broad (2 covered adds), the uncovering
	// promoted mid (1 promotion), and nothing was ever captured.
	if c := f.Counters(); c.CoveredAdds != 2 || c.Captures != 0 || c.Promotions != 1 {
		t.Fatalf("Counters = %+v, want {CoveredAdds:2 Captures:0 Promotions:1}", c)
	}
}

func TestForestRootCapture(t *testing.T) {
	im := NewImplier(testSpec, 0)
	f := NewForest(im)
	googl := filter(t, "stock == GOOGL and price > 500")
	msft := filter(t, "stock == MSFT and price > 500")
	broad := filter(t, "price > 100")

	// Two unrelated roots.
	wantDelta(t, f.Add(googl), []string{googl.String()}, nil)
	wantDelta(t, f.Add(msft), []string{msft.String()}, nil)
	// A broader filter captures both: one install, two uninstalls.
	d := f.Add(broad)
	if len(d.Install) != 1 || d.Install[0].String() != broad.String() || len(d.Uninstall) != 2 {
		t.Fatalf("capture delta = %+v", d)
	}
	if f.Roots() != 1 || !f.Covered(googl) || !f.Covered(msft) {
		t.Fatalf("Roots=%d Covered(googl)=%v Covered(msft)=%v", f.Roots(), f.Covered(googl), f.Covered(msft))
	}
	// Uncovering the captured root promotes both grandchildren back.
	d = f.Remove(broad)
	if len(d.Uninstall) != 1 || len(d.Install) != 2 {
		t.Fatalf("uncover delta = %+v", d)
	}
	if f.Roots() != 2 {
		t.Fatalf("Roots = %d, want 2", f.Roots())
	}
	if c := f.Counters(); c.Captures != 2 || c.Promotions != 2 {
		t.Fatalf("Counters = %+v, want Captures:2 Promotions:2", c)
	}
}

func TestForestCoveredObligationRemoval(t *testing.T) {
	im := NewImplier(testSpec, 0)
	f := NewForest(im)
	broad := filter(t, "stock == GOOGL")
	mid := filter(t, "stock == GOOGL and price > 100")
	narrow := filter(t, "stock == GOOGL and price > 500")
	f.Add(broad)
	f.Add(narrow) // child of broad
	f.Add(mid)    // child of broad
	// Re-home narrow under mid by removing and re-adding? Not needed:
	// removing mid (a covered obligation) must not touch the table even
	// if narrow had been attached beneath it.
	wantDelta(t, f.Remove(mid), nil, nil)
	if f.Size() != 2 || f.Roots() != 1 || !f.Covered(narrow) {
		t.Fatalf("Size=%d Roots=%d Covered(narrow)=%v", f.Size(), f.Roots(), f.Covered(narrow))
	}
}

func TestForestEquivalentFilters(t *testing.T) {
	im := NewImplier(testSpec, 0)
	f := NewForest(im)
	a := filter(t, "price >= 100")
	b := filter(t, "price > 99")
	wantDelta(t, f.Add(a), []string{a.String()}, nil)
	// Equivalent but textually distinct: covered by a, no new entry.
	wantDelta(t, f.Add(b), nil, nil)
	if !f.Covered(b) {
		t.Fatal("equivalent filter not covered")
	}
	// Removing the root promotes the equivalent twin.
	wantDelta(t, f.Remove(a), []string{b.String()}, []string{a.String()})
}

func buildFatTree(t *testing.T, k int) *topology.Network {
	t.Helper()
	net, err := topology.FatTree(k)
	if err != nil {
		t.Fatalf("FatTree(%d): %v", k, err)
	}
	return net
}

func TestReduceResultPreservesPortUnions(t *testing.T) {
	net := buildFatTree(t, 4)
	subs := make([][]subscription.Expr, len(net.Hosts))
	subs[0] = []subscription.Expr{
		filter(t, "stock == GOOGL"),
		filter(t, "stock == GOOGL and price > 500"),
	}
	subs[1] = []subscription.Expr{filter(t, "price > 100")}
	subs[5] = []subscription.Expr{
		filter(t, "price > 300"),
		filter(t, "price > 500 and shares > 10"),
	}
	res, err := routing.ComputeFatTree(net, subs, routing.Options{Policy: routing.TrafficReduction, Alpha: 100})
	if err != nil {
		t.Fatalf("ComputeFatTree: %v", err)
	}
	// Full-mode distinct entry count for later comparison.
	fullEntries := 0
	for _, sw := range net.Switches {
		fullEntries += len(res.RulesForSwitch(sw.ID))
	}

	im := NewImplier(testSpec, 0)
	st := ReduceResult(im, res)
	if st.Before != fullEntries {
		t.Fatalf("stats.Before = %d, want full entry count %d", st.Before, fullEntries)
	}
	reduced := 0
	for _, sw := range net.Switches {
		reduced += len(res.RulesForSwitch(sw.ID))
	}
	if st.After != reduced {
		t.Fatalf("stats.After = %d, want reduced entry count %d", st.After, reduced)
	}
	if st.Removed() <= 0 {
		t.Fatalf("expected covering to remove entries, got %+v", st)
	}
	// Host 0's access port must keep the broad GOOGL filter only.
	sw, port := net.Access(0)
	fs := res.FIBs[sw].Ports[port]
	if len(fs) != 1 {
		t.Fatalf("access port keeps %d filters, want 1", len(fs))
	}
	for _, f := range fs {
		if f.Expr.String() != subs[0][0].String() {
			t.Fatalf("access port kept %q, want %q", f.Expr, subs[0][0])
		}
	}
}

func TestReduceTreePreservesDelivery(t *testing.T) {
	g := topology.NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	tree, err := topology.PrimMST(g, 0, topology.UnitWeight)
	if err != nil {
		t.Fatalf("PrimMST: %v", err)
	}
	subs := map[int][]subscription.Expr{
		3: {filter(t, "stock == GOOGL"), filter(t, "stock == GOOGL and price > 500")},
		0: {filter(t, "price > 500")},
	}
	tr, err := routing.ComputeTree(tree, subs, 1)
	if err != nil {
		t.Fatalf("ComputeTree: %v", err)
	}
	im := NewImplier(testSpec, 0)
	st := ReduceTree(im, tr)
	if st.Removed() <= 0 {
		t.Fatalf("expected reduction on nested tree subscriptions, got %+v", st)
	}
	// Transit node 1's port toward 2 carried both GOOGL filters; only
	// the broad one survives.
	fib := tr.FIBs[1]
	for port, peer := range fib.PortPeer {
		if peer != 2 {
			continue
		}
		for _, f := range fib.Ports[port] {
			if f.Expr.String() == subs[3][1].String() {
				t.Fatalf("covered transit filter %q survived", f.Expr)
			}
		}
	}
}

package cover

import (
	"sort"

	"camus/internal/routing"
	"camus/internal/subscription"
	"camus/internal/topology"
)

// ReduceStats summarizes one whole-policy covering pass: distinct
// installable entries across every (switch, port) before and after
// pruning.
type ReduceStats struct {
	Before int
	After  int
}

// Removed is the number of entries covering elided.
func (s ReduceStats) Removed() int { return s.Before - s.After }

// Ratio is the state-reduction factor Before/After (1 when nothing
// was elided or the policy is empty).
func (s ReduceStats) Ratio() float64 {
	if s.After == 0 {
		return 1
	}
	return float64(s.Before) / float64(s.After)
}

// ReduceResult prunes covered filters, in place, from every per-port
// filter set of a fat-tree routing result: a filter is dropped from a
// port when another filter on the same port has a broader effective
// expression (exact at host-facing ports, α-approximated elsewhere,
// mirroring RulesForSwitch). MR match-all up ports are left alone —
// the constant-true entry is already minimal.
func ReduceResult(im *Implier, res *routing.Result) ReduceStats {
	var st ReduceStats
	for _, fib := range res.FIBs {
		for port, fs := range fib.Ports {
			if port == routing.UpPort && fib.MatchAllUp {
				st.Before++
				st.After++
				continue
			}
			hostFacing := port >= 0 && port < len(fib.Switch.Ports) &&
				fib.Switch.Ports[port].Kind == topology.PeerHost
			reducePort(im, fs, func(f *routing.Filter) subscription.Expr {
				if hostFacing {
					return f.Expr
				}
				return f.Approx
			}, &st)
		}
	}
	return st
}

// ReduceTree is ReduceResult for a general-topology spanning-tree
// policy: effective expressions are exact on the delivering edge
// (subscriber's own node behind the port) and approximated in transit,
// mirroring RulesForNode.
func ReduceTree(im *Implier, tr *routing.TreeResult) ReduceStats {
	var st ReduceStats
	for _, fib := range tr.FIBs {
		for port, fs := range fib.Ports {
			peer := fib.PortPeer[port]
			reducePort(im, fs, func(f *routing.Filter) subscription.Expr {
				if f.Host == peer {
					return f.Expr
				}
				return f.Approx
			}, &st)
		}
	}
	return st
}

// reducePort prunes one port's filter set in place. Identical
// effective expressions already collapse to one entry at rule
// generation, so work happens on the distinct-expression level: an
// expression is covered when another distinct expression on the port
// implies it is redundant; equivalent expressions keep the
// lexicographically first key. Every covered expression ends up
// implied by a surviving one — the cover relation (strictly broader,
// or equivalent with smaller key) is a strict partial order, so chains
// terminate at an uncovered maximal element.
func reducePort(im *Implier, fs routing.FilterSet, eff func(*routing.Filter) subscription.Expr, st *ReduceStats) {
	byKey := make(map[string]subscription.Expr, len(fs))
	for _, f := range fs {
		e := eff(f)
		byKey[e.String()] = e
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	st.Before += len(keys)

	covered := make(map[string]bool)
	for _, k := range keys {
		for _, g := range keys {
			if g == k {
				continue
			}
			if !im.Implies(byKey[k], byKey[g]) {
				continue
			}
			if im.Implies(byKey[g], byKey[k]) && g > k {
				continue // equivalent pair: the smaller key survives
			}
			covered[k] = true
			break
		}
	}
	for id, f := range fs {
		if covered[eff(f).String()] {
			delete(fs, id)
		}
	}
	st.After += len(keys) - len(covered)
}

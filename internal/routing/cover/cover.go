// Package cover implements subsumption-aware covering over installed
// filter tables: when every packet matching filter f also matches a
// broader filter g forwarded through the same port (f ⊑ g), installing
// f is redundant — g already forwards f's traffic — so the table entry
// is elided and f is tracked as a refcounted *covered obligation*
// instead.
//
// The package has two halves:
//
//   - Implier decides f ⊑ g symbolically on the repository's BDD path
//     (subscription.NormalizeRule → bdd.BuildNormalized with marker
//     actions, the same construction rulecheck uses), memoized per
//     expression pair;
//   - Forest maintains, for one (switch, port), the subsumption forest
//     over the filters placed there: table entries exist exactly for
//     forest roots, every non-root node implies its parent (and, by
//     transitivity, its root), and removing a root atomically reports
//     the re-installs for the children it uncovers, so the caller can
//     land the delete and the promotions in a single apply batch — the
//     FIB-caching "no cache-hiding gap" rule.
//
// ReduceResult / ReduceTree apply the same per-port covering to a
// whole precomputed routing policy (used by `camusc netcheck
// -covering` to certify that covering and full installation produce
// identical delivery cuts).
//
// Covering is sound per port because forwarding through a port is the
// union of its filters: f ⊑ g implies f ∪ g = g, so dropping f leaves
// the port's forwarded set — and therefore every (filter, host)
// delivery cut — unchanged. Implication is always decided over the
// *effective* expression placed at the port (exact at delivering
// ports, α-approximated elsewhere), never across the exact/approx
// boundary, so no monotonicity assumption about Approximate is needed.
package cover

import (
	"strconv"
	"sync"

	"camus/internal/bdd"
	"camus/internal/spec"
	"camus/internal/subscription"
)

// DefaultMaxNodes bounds the two-rule implication diagram. Implication
// queries involve exactly two filters, so diagrams stay tiny compared
// with whole-table builds; the cap is a guard against pathological
// filters, not a working limit.
const DefaultMaxNodes = 1 << 18

// markName tags the marker actions; the NUL prefix is outside the
// identifier grammar, so it can never collide with a user action.
const markName = "\x00cover"

// Implier answers subsumption queries f ⊑ g over a message spec,
// memoizing by expression string pair. Safe for concurrent use.
type Implier struct {
	sp       *spec.Spec
	maxNodes int

	mu   sync.Mutex
	memo map[[2]string]bool
}

// NewImplier builds an implication oracle for one spec. maxNodes ≤ 0
// selects DefaultMaxNodes.
func NewImplier(sp *spec.Spec, maxNodes int) *Implier {
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	return &Implier{sp: sp, maxNodes: maxNodes, memo: make(map[[2]string]bool)}
}

// Implies reports whether every packet matching f also matches g
// (f ⊑ g). The decision is exact while the two-rule diagram fits the
// node budget; on overflow or normalization failure it conservatively
// answers false — under-covering installs entries a perfect oracle
// would elide, but never changes what a port forwards.
func (im *Implier) Implies(f, g subscription.Expr) bool {
	fk, gk := f.String(), g.String()
	if fk == gk || gk == subscription.True.String() {
		return true
	}
	key := [2]string{fk, gk}
	im.mu.Lock()
	defer im.mu.Unlock()
	if v, ok := im.memo[key]; ok {
		return v
	}
	v := im.decide(f, g)
	im.memo[key] = v
	return v
}

// decide runs the symbolic check: build one diagram over the two
// marker-tagged filters and scan its reachable terminals. f ⊑ g holds
// iff no terminal carries f's marker without g's. The builder's domain
// pruning keeps every root-to-terminal path satisfiable, so the read
// is exact; an unsatisfiable f reaches no terminal and so implies
// everything, which is the correct vacuous answer.
func (im *Implier) decide(f, g subscription.Expr) bool {
	var normalized []subscription.NormalizedRule
	for i, e := range []subscription.Expr{f, g} {
		nrs, err := subscription.NormalizeRule(&subscription.Rule{ID: i, Filter: e, Action: markAction(i)})
		if err != nil {
			return false
		}
		normalized = append(normalized, nrs...)
	}
	d, err := bdd.BuildNormalized(im.sp, normalized, bdd.Options{MaxNodes: im.maxNodes})
	if err != nil {
		return false
	}
	for _, n := range d.Reachable() {
		if !n.IsTerminal() {
			continue
		}
		hasF, hasG := false, false
		for _, c := range n.Actions.Custom {
			if c.Name != markName || len(c.Args) != 1 {
				continue
			}
			switch c.Args[0] {
			case "0":
				hasF = true
			case "1":
				hasG = true
			}
		}
		if hasF && !hasG {
			return false
		}
	}
	return true
}

func markAction(id int) subscription.Action {
	return subscription.Action{Name: markName, Args: []string{strconv.Itoa(id)}}
}

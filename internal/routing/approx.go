// Package routing implements routing on packet subscriptions (paper §IV):
// Algorithm 1 over hierarchical (fat-tree) topologies with the
// memory-reduction (MR) and traffic-reduction (TR) policies, the
// α-discretization filter approximation (§IV-D), and spanning-tree
// routing for general topologies (§IV-E).
package routing

import (
	"camus/internal/spec"
	"camus/internal/subscription"
)

// Approximate rewrites a filter's numeric constants to multiples of the
// discretization unit α (§IV-D): lower bounds round down (price > 53 →
// price > 50) and upper bounds round up (price < 53 → price < 60), so the
// approximated filter matches a superset of the original (completeness is
// preserved; the cost is extra traffic). Equality, inequality and string
// constraints are unchanged. α ≤ 1 returns the filter unchanged.
func Approximate(e subscription.Expr, alpha int64) subscription.Expr {
	if alpha <= 1 {
		return e
	}
	switch n := e.(type) {
	case *subscription.Bool:
		return n
	case *subscription.Atom:
		return approxAtom(n, alpha)
	case *subscription.Not:
		// Negation flips bound direction; rewrite after pushing the
		// negation into the atom where possible.
		if a, ok := n.Term.(*subscription.Atom); ok && a.Rel != subscription.PREFIX {
			return Approximate(&subscription.Atom{Ref: a.Ref, Rel: a.Rel.Negate(), Const: a.Const}, alpha)
		}
		return &subscription.Not{Term: n.Term} // conservative: unchanged
	case *subscription.And:
		terms := make([]subscription.Expr, len(n.Terms))
		for i, t := range n.Terms {
			terms[i] = Approximate(t, alpha)
		}
		return &subscription.And{Terms: terms}
	case *subscription.Or:
		terms := make([]subscription.Expr, len(n.Terms))
		for i, t := range n.Terms {
			terms[i] = Approximate(t, alpha)
		}
		return &subscription.Or{Terms: terms}
	default:
		return e
	}
}

func approxAtom(a *subscription.Atom, alpha int64) subscription.Expr {
	if a.Const.Kind != spec.IntField {
		return a
	}
	// Never touch header-validity guards or exact-only fields (their
	// tables are SRAM-exact; discretizing would force them ternary).
	if a.Ref.Kind == subscription.ValidityRef ||
		a.Ref.Kind == subscription.PacketRef && a.Ref.Field.Hint == spec.MatchExact {
		return a
	}
	c := a.Const.Int
	switch a.Rel {
	case subscription.GT, subscription.GE:
		// Lower bounds widen downward.
		return &subscription.Atom{Ref: a.Ref, Rel: a.Rel, Const: spec.IntVal(floorTo(c, alpha))}
	case subscription.LT, subscription.LE:
		// Upper bounds widen upward.
		return &subscription.Atom{Ref: a.Ref, Rel: a.Rel, Const: spec.IntVal(ceilTo(c, alpha))}
	case subscription.EQ:
		// Equality widens to its α-bucket [⌊c⌋α, ⌊c⌋α+α) — "rewrite all
		// numeric constants as multiples of α" (§IV-D) while preserving
		// completeness. Bucketed equalities from nearby constants become
		// identical, which is where the aggregation benefit comes from.
		lo := floorTo(c, alpha)
		if lo == c && c+alpha-1 == c { // α==1 degenerate, unreachable (alpha>1)
			return a
		}
		return &subscription.And{Terms: []subscription.Expr{
			&subscription.Atom{Ref: a.Ref, Rel: subscription.GE, Const: spec.IntVal(lo)},
			&subscription.Atom{Ref: a.Ref, Rel: subscription.LT, Const: spec.IntVal(lo + alpha)},
		}}
	default:
		// != stays exact (no sound single-constraint widening).
		return a
	}
}

func floorTo(v, alpha int64) int64 {
	q := v / alpha
	if v < 0 && v%alpha != 0 {
		q--
	}
	return q * alpha
}

func ceilTo(v, alpha int64) int64 {
	q := v / alpha
	if v > 0 && v%alpha != 0 {
		q++
	}
	return q * alpha
}

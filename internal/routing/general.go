package routing

import (
	"fmt"
	"sort"

	"camus/internal/subscription"
	"camus/internal/topology"
)

// TreeFIB is the general-topology analogue of FIB (§IV-E): for a switch v
// on a spanning tree, each tree port carries the subscriptions of the
// nodes on the far side of that edge.
type TreeFIB struct {
	// Node is the graph vertex.
	Node int
	// PortPeer maps local port index → tree-neighbor vertex.
	PortPeer []int
	// Ports maps local port index → filter set.
	Ports map[int]FilterSet
}

// TreeResult is the computed policy for a general topology.
type TreeResult struct {
	Tree *topology.Tree
	// FIBs by vertex.
	FIBs []*TreeFIB
	// Filters is the global filter table.
	Filters []*Filter
}

// ComputeTree routes subscriptions over a spanning tree: for each tree
// edge (u,v), u's port toward v holds every subscription on v's side
// (the subtree of v when v is u's child; the rest of the network when v
// is u's parent). Every packet is then routed within the tree without
// loops (§IV-E).
func ComputeTree(t *topology.Tree, subs map[int][]subscription.Expr, alpha int64) (*TreeResult, error) {
	g := t.Graph
	res := &TreeResult{Tree: t, FIBs: make([]*TreeFIB, g.N)}

	// Global filter table; the subscriber's own node keeps the exact
	// filter (delivery point), remote copies use the approximation.
	byNode := make(map[int]FilterSet, len(subs))
	for node, exprs := range subs {
		if node < 0 || node >= g.N {
			return nil, fmt.Errorf("routing: subscriber node %d out of range", node)
		}
		fs := make(FilterSet, len(exprs))
		for _, e := range exprs {
			f := &Filter{
				ID:     len(res.Filters),
				Host:   node,
				Expr:   e,
				Approx: Approximate(e, alpha),
			}
			res.Filters = append(res.Filters, f)
			fs[f.ID] = f
		}
		byNode[node] = fs
	}

	// Subtree filter sets via post-order accumulation.
	subtree := make([]FilterSet, g.N)
	for _, v := range t.PostOrder() {
		fs := make(FilterSet)
		if own, ok := byNode[v]; ok {
			fs.union(own)
		}
		for _, c := range t.Kids[v] {
			fs.union(subtree[c])
		}
		subtree[v] = fs
	}
	all := subtree[t.Root]

	for v := 0; v < g.N; v++ {
		fib := &TreeFIB{Node: v, Ports: make(map[int]FilterSet)}
		// Port numbering: children in order, then the parent link.
		for _, c := range t.Kids[v] {
			port := len(fib.PortPeer)
			fib.PortPeer = append(fib.PortPeer, c)
			fib.Ports[port] = subtree[c]
		}
		if p := t.Parent[v]; p >= 0 {
			port := len(fib.PortPeer)
			fib.PortPeer = append(fib.PortPeer, p)
			// Parent side = everything minus our own subtree.
			diff := make(FilterSet, len(all)-len(subtree[v]))
			for id, f := range all {
				if _, mine := subtree[v][id]; !mine {
					diff[id] = f
				}
			}
			fib.Ports[port] = diff
		}
		res.FIBs[v] = fib
	}
	return res, nil
}

// RulesForNode converts a vertex's tree FIB into compiler rules: one rule
// per (port, unique filter). Filters for the vertex's own subscribers use
// the exact expression; transit copies use the approximation.
func (r *TreeResult) RulesForNode(v int) []*subscription.Rule {
	fib := r.FIBs[v]
	var rules []*subscription.Rule
	ports := make([]int, 0, len(fib.Ports))
	for p := range fib.Ports {
		ports = append(ports, p)
	}
	sort.Ints(ports)
	for _, port := range ports {
		peer := fib.PortPeer[port]
		seen := make(map[string]bool)
		ids := make([]int, 0, len(fib.Ports[port]))
		for id := range fib.Ports[port] {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			f := fib.Ports[port][id]
			e := f.Approx
			if f.Host == peer {
				e = f.Expr // delivering edge: exact
			}
			key := e.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			rules = append(rules, &subscription.Rule{
				ID:     len(rules),
				Filter: e,
				Action: subscription.FwdAction(port),
			})
		}
	}
	return rules
}

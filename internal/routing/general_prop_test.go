package routing

import (
	"fmt"
	"math/rand"
	"testing"

	"camus/internal/subscription"
	"camus/internal/topology"
	"camus/internal/workload"
)

// carrierPorts returns the ports of fib whose filter set contains id.
func carrierPorts(fib *TreeFIB, id int) []int {
	var ports []int
	for p, fs := range fib.Ports {
		if _, ok := fs[id]; ok {
			ports = append(ports, p)
		}
	}
	return ports
}

// TestTreeRoutingProperties is the direct (non-symbolic) ground truth
// the netcheck corpus is cross-checked against: over ~50 random MST++
// topologies, every §IV-E routing table satisfies, per filter,
//
//  1. exactly one carrying port on every non-subscriber node and none
//     on the subscriber (the tree partition is exhaustive + disjoint),
//  2. following the carrying port from any node walks to the
//     subscriber without revisiting a node (loop-freedom), and
//  3. every subscriber is reached from every possible publisher
//     (host coverage).
func TestTreeRoutingProperties(t *testing.T) {
	stocks := []string{"GOOGL", "MSFT", "AAPL", "FB", "S001"}
	for seed := int64(0); seed < 50; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			n := 12 + r.Intn(60)
			g := workload.ASGraph(workload.ASGraphConfig{
				Nodes: n,
				Edges: n + r.Intn(2*n),
				Seed:  seed,
			})
			mst, err := topology.PrimMST(g, r.Intn(g.N), topology.DegreeProductWeight(g))
			if err != nil {
				t.Fatalf("PrimMST: %v", err)
			}
			subs := make(map[int][]subscription.Expr)
			for i := 0; i < 3+r.Intn(5); i++ {
				node := r.Intn(g.N)
				subs[node] = append(subs[node], filter(t, fmt.Sprintf(
					"stock == %s and price > %d", stocks[r.Intn(len(stocks))], r.Intn(900))))
			}
			tr, err := ComputeTree(mst, subs, int64(r.Intn(2))*100)
			if err != nil {
				t.Fatalf("ComputeTree: %v", err)
			}

			for _, f := range tr.Filters {
				// (1) partition: one carrier everywhere but home.
				for v := 0; v < g.N; v++ {
					ports := carrierPorts(tr.FIBs[v], f.ID)
					switch {
					case v == f.Host && len(ports) != 0:
						t.Fatalf("filter %d: subscriber node %d forwards its own filter via ports %v", f.ID, v, ports)
					case v != f.Host && len(ports) != 1:
						t.Fatalf("filter %d: node %d carries filter on %d ports, want 1", f.ID, v, len(ports))
					}
				}
				// (2)+(3) walk from every publisher to the subscriber.
				for start := 0; start < g.N; start++ {
					visited := make(map[int]bool)
					v := start
					for v != f.Host {
						if visited[v] {
							t.Fatalf("filter %d: routing loop revisits node %d on walk from %d", f.ID, v, start)
						}
						visited[v] = true
						fib := tr.FIBs[v]
						v = fib.PortPeer[carrierPorts(fib, f.ID)[0]]
					}
				}
			}
		})
	}
}

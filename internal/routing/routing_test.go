package routing

import (
	"fmt"
	"math/rand"
	"testing"

	"camus/internal/spec"
	"camus/internal/subscription"
	"camus/internal/topology"
)

var testSpec = spec.MustParse("itch", `
header itch_order {
    shares : u32 @field;
    price : u32 @field;
    stock : str8 @field_exact;
}
`)

func filter(t testing.TB, src string) subscription.Expr {
	t.Helper()
	e, err := subscription.NewParser(testSpec).ParseFilter(src)
	if err != nil {
		t.Fatalf("ParseFilter(%q): %v", src, err)
	}
	return e
}

func msg(stock string, price int64) *spec.Message {
	m := spec.NewMessage(testSpec)
	m.MustSet("stock", spec.StrVal(stock))
	m.MustSet("price", spec.IntVal(price))
	m.MustSet("shares", spec.IntVal(1))
	return m
}

// hostsReachableDown returns the hosts reachable from switch s through
// port p going only downward — the reference for the completeness/
// soundness conditions of §IV-C.
func hostsReachableDown(net *topology.Network, swID, port int) []int {
	s := net.Switches[swID]
	p := s.Ports[port]
	switch p.Kind {
	case topology.PeerHost:
		return []int{p.PeerHostID}
	case topology.PeerDown:
		var out []int
		child := net.Switches[p.PeerSwitch]
		for _, cp := range child.Ports {
			if cp.Kind == topology.PeerHost || cp.Kind == topology.PeerDown {
				out = append(out, hostsReachableDown(net, child.ID, cp.Index)...)
			}
		}
		return out
	default:
		return nil
	}
}

func subsForTest(t *testing.T, net *topology.Network) [][]subscription.Expr {
	t.Helper()
	subs := make([][]subscription.Expr, len(net.Hosts))
	stocks := []string{"GOOGL", "MSFT", "AAPL", "FB"}
	for h := range net.Hosts {
		subs[h] = []subscription.Expr{
			filter(t, fmt.Sprintf("stock == %s and price > %d", stocks[h%len(stocks)], (h%7)*10+3)),
		}
		if h%3 == 0 {
			subs[h] = append(subs[h], filter(t, fmt.Sprintf("price < %d", h%5+2)))
		}
	}
	return subs
}

// TestFatTreeCompletenessSoundness checks the §IV-C correctness
// conditions for both policies on the k=4 fat tree:
//   - soundness: at a host port, F matches exactly the host's filters;
//   - completeness: at any downward port, F ⊇ the union of filters of
//     hosts reachable through it.
func TestFatTreeCompletenessSoundness(t *testing.T) {
	net := topology.MustFatTree(4)
	subs := subsForTest(t, net)
	probes := []*spec.Message{
		msg("GOOGL", 5), msg("GOOGL", 50), msg("MSFT", 11),
		msg("AAPL", 0), msg("FB", 99), msg("ZZZ", 1),
	}
	for _, policy := range []Policy{MemoryReduction, TrafficReduction} {
		for _, alpha := range []int64{0, 10} {
			res, err := ComputeFatTree(net, subs, Options{Policy: policy, Alpha: alpha})
			if err != nil {
				t.Fatalf("%v/α=%d: %v", policy, alpha, err)
			}
			for _, s := range net.Switches {
				fib := res.FIBs[s.ID]
				for port, fs := range fib.Ports {
					if port == UpPort {
						continue
					}
					hosts := hostsReachableDown(net, s.ID, port)
					isHostPort := s.Ports[port].Kind == topology.PeerHost
					for _, m := range probes {
						// Ground truth: does any reachable host subscribe to m?
						want := false
						for _, h := range hosts {
							for _, e := range subs[h] {
								if subscription.EvalExpr(e, m, nil) {
									want = true
								}
							}
						}
						got := false
						for _, f := range fs {
							e := f.Approx
							if isHostPort {
								e = f.Expr
							}
							if subscription.EvalExpr(e, m, nil) {
								got = true
							}
						}
						if want && !got {
							t.Fatalf("%v/α=%d %s port %d: incomplete for %s", policy, alpha, s.Name, port, m)
						}
						if isHostPort && alpha == 0 && got != want {
							t.Fatalf("%v %s port %d: unsound host port for %s", policy, s.Name, port, m)
						}
					}
				}
			}
		}
	}
}

// TestUpPortPolicies: MR puts the constant-true filter on up ports; TR
// puts exactly the subscriptions not in the local subtree.
func TestUpPortPolicies(t *testing.T) {
	net := topology.MustFatTree(4)
	subs := subsForTest(t, net)

	mr, err := ComputeFatTree(net, subs, Options{Policy: MemoryReduction})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range net.Switches {
		fib := mr.FIBs[s.ID]
		if len(s.UpPorts()) > 0 && !fib.MatchAllUp {
			t.Errorf("MR: %s up port not match-all", s.Name)
		}
		if s.Layer == topology.Core && fib.MatchAllUp {
			t.Errorf("MR: core %s has up filter", s.Name)
		}
	}

	tr, err := ComputeFatTree(net, subs, Options{Policy: TrafficReduction})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range net.LayerSwitches(topology.ToR) {
		fib := tr.FIBs[s.ID]
		if fib.MatchAllUp {
			t.Errorf("TR: %s up port is match-all", s.Name)
		}
		upSet := fib.Ports[UpPort]
		// Local hosts' filters must NOT be in the up set; all remote
		// hosts' filters must be.
		local := make(map[int]bool)
		for _, p := range s.HostPorts() {
			local[p.PeerHostID] = true
		}
		for _, f := range tr.Filters {
			_, inUp := upSet[f.ID]
			if local[f.Host] && inUp {
				t.Errorf("TR: %s up set contains local host %d filter", s.Name, f.Host)
			}
			if !local[f.Host] && !inUp {
				t.Errorf("TR: %s up set missing remote host %d filter", s.Name, f.Host)
			}
		}
	}
}

// TestRulesForSwitch: the generated IR carries fwd(port) actions and
// dedupes identical filters per port.
func TestRulesForSwitch(t *testing.T) {
	net := topology.MustFatTree(4)
	subs := make([][]subscription.Expr, len(net.Hosts))
	for h := range net.Hosts {
		// All hosts subscribe to nearly the same thing modulo constants
		// that α=10 collapses.
		subs[h] = []subscription.Expr{filter(t, fmt.Sprintf("price > %d", 50+h%8))}
	}
	exact, err := ComputeFatTree(net, subs, Options{Policy: TrafficReduction})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := ComputeFatTree(net, subs, Options{Policy: TrafficReduction, Alpha: 10})
	if err != nil {
		t.Fatal(err)
	}
	core := net.LayerSwitches(topology.Core)[0]
	exactRules := exact.RulesForSwitch(core.ID)
	approxRules := approx.RulesForSwitch(core.ID)
	if len(approxRules) >= len(exactRules) {
		t.Errorf("α=10 did not aggregate at core: %d vs %d rules", len(approxRules), len(exactRules))
	}
	for _, r := range exactRules {
		if !r.Action.IsFwd() || len(r.Action.Ports) != 1 {
			t.Errorf("bad rule action: %s", r)
		}
	}
	// ToR host ports keep exact constants even under α.
	tor := net.Switches[net.Hosts[3].Switch]
	found := false
	for _, r := range approx.RulesForSwitch(tor.ID) {
		if r.Action.Ports[0] == net.Hosts[3].Port && r.Filter.String() == subs[3][0].String() {
			found = true
		}
	}
	if !found {
		t.Errorf("ToR host port lost exact filter under α")
	}
}

// TestApproximateWidens: the α-rewrite must only widen filters
// (completeness: every original match still matches), and must be
// idempotent on already-discretized constants.
func TestApproximateWidens(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	rels := []string{"<", "<=", ">", ">=", "==", "!="}
	for trial := 0; trial < 300; trial++ {
		src := fmt.Sprintf("price %s %d", rels[r.Intn(len(rels))], r.Intn(100))
		if r.Intn(2) == 0 {
			src += fmt.Sprintf(" and shares %s %d", rels[r.Intn(len(rels))], r.Intn(100))
		}
		e := filter(t, src)
		for _, alpha := range []int64{2, 10, 50} {
			a := Approximate(e, alpha)
			for price := int64(0); price < 110; price += 3 {
				for shares := int64(0); shares < 110; shares += 13 {
					m := spec.NewMessage(testSpec)
					m.MustSet("price", spec.IntVal(price))
					m.MustSet("shares", spec.IntVal(shares))
					m.MustSet("stock", spec.StrVal("X"))
					if subscription.EvalExpr(e, m, nil) && !subscription.EvalExpr(a, m, nil) {
						t.Fatalf("α=%d narrowed %q → %q at price=%d shares=%d",
							alpha, e, a, price, shares)
					}
				}
			}
			if again := Approximate(a, alpha); again.String() != a.String() {
				t.Fatalf("α=%d not idempotent: %q → %q", alpha, a, again)
			}
		}
	}
}

func TestApproximatePaperExample(t *testing.T) {
	// §IV-D: with α=10, price > 53 and price > 57 → price > 50;
	// price < 53 and price < 57 → price < 60.
	for _, c := range []int{53, 57} {
		gt := Approximate(filter(t, fmt.Sprintf("price > %d", c)), 10)
		if gt.String() != "itch_order.price > 50" {
			t.Errorf("price > %d → %s, want > 50", c, gt)
		}
		lt := Approximate(filter(t, fmt.Sprintf("price < %d", c)), 10)
		if lt.String() != "itch_order.price < 60" {
			t.Errorf("price < %d → %s, want < 60", c, lt)
		}
	}
	// Equality widens to its α-bucket; nearby constants share a bucket.
	eq53 := Approximate(filter(t, "price == 53"), 10)
	eq57 := Approximate(filter(t, "price == 57"), 10)
	if eq53.String() != "itch_order.price >= 50 and itch_order.price < 60" {
		t.Errorf("price == 53 → %s", eq53)
	}
	if eq53.String() != eq57.String() {
		t.Errorf("bucketed equalities differ: %s vs %s", eq53, eq57)
	}
	// Exact-hint fields (stock symbols are strings, but exact int fields
	// exist too) and != stay untouched.
	ne := Approximate(filter(t, "price != 53"), 10)
	if ne.String() != "itch_order.price != 53" {
		t.Errorf("inequality changed: %s", ne)
	}
}

// TestComputeTreePartition: on a spanning tree, each port's filter set is
// exactly the subscriptions on the far side of the edge.
func TestComputeTreePartition(t *testing.T) {
	g := topology.NewGraph(7)
	// A path 0-1-2-3 with branches 2-4, 1-5, 5-6.
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {2, 4}, {1, 5}, {5, 6}} {
		g.AddEdge(e[0], e[1])
	}
	tree, err := topology.PrimMST(g, 0, topology.UnitWeight)
	if err != nil {
		t.Fatal(err)
	}
	subs := map[int][]subscription.Expr{
		3: {filter(t, "stock == GOOGL")},
		4: {filter(t, "price > 10")},
		6: {filter(t, "stock == MSFT")},
	}
	res, err := ComputeTree(tree, subs, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Side-of-edge ground truth via graph splitting.
	sideHosts := func(u, v int) map[int]bool {
		// Hosts reachable from v without crossing back to u.
		seen := map[int]bool{v: true}
		stack := []int{v}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, nb := range tree.TreeNeighbors(x) {
				if nb == u && x == v {
					continue
				}
				if !seen[nb] {
					seen[nb] = true
					stack = append(stack, nb)
				}
			}
		}
		return seen
	}
	for v := 0; v < g.N; v++ {
		fib := res.FIBs[v]
		for port, fs := range fib.Ports {
			peer := fib.PortPeer[port]
			side := sideHosts(v, peer)
			for _, f := range res.Filters {
				_, in := fs[f.ID]
				if side[f.Host] != in {
					t.Errorf("node %d port→%d: filter of host %d in=%v side=%v",
						v, peer, f.Host, in, side[f.Host])
				}
			}
		}
	}
	// Every filter appears on every edge cut exactly once per direction.
	rules := res.RulesForNode(1)
	if len(rules) == 0 {
		t.Error("node 1 has no rules")
	}
}

func TestComputeTreeErrors(t *testing.T) {
	g := topology.NewGraph(2)
	g.AddEdge(0, 1)
	tree, err := topology.PrimMST(g, 0, topology.UnitWeight)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ComputeTree(tree, map[int][]subscription.Expr{9: nil}, 0); err == nil {
		t.Error("out-of-range subscriber accepted")
	}
}

func TestComputeFatTreeErrors(t *testing.T) {
	net := topology.MustFatTree(4)
	if _, err := ComputeFatTree(net, nil, Options{}); err == nil {
		t.Error("wrong subscription count accepted")
	}
}

package routing

import (
	"fmt"
	"sort"

	"camus/internal/subscription"
	"camus/internal/topology"
)

// UpPort is the logical up port (§IV-C: Camus treats the upward ports of
// a switch as a single logical port; the dataplane picks a physical up
// link per packet). It appears as a fwd() port in generated rules; the
// network simulator resolves it to a physical link.
const UpPort = -1

// Policy selects between the two routing policies of §IV-C.
type Policy int

const (
	// MemoryReduction (MR) installs the constant-true filter on up
	// ports: minimal switch memory, all unmatched traffic climbs to the
	// core.
	MemoryReduction Policy = iota
	// TrafficReduction (TR) installs the exact set of filters reachable
	// through the up port: more memory, no unnecessary upward traffic.
	TrafficReduction
)

func (p Policy) String() string {
	if p == MemoryReduction {
		return "MR"
	}
	return "TR"
}

// Filter is one host subscription participating in routing.
type Filter struct {
	// ID is the global filter index.
	ID int
	// Host is the subscribing host.
	Host int
	// Expr is the original filter.
	Expr subscription.Expr
	// Approx is the α-discretized form installed above the access switch
	// (== Expr when α ≤ 1).
	Approx subscription.Expr
}

// FilterSet is a set of filters by ID.
type FilterSet map[int]*Filter

func (fs FilterSet) union(o FilterSet) {
	for id, f := range o {
		fs[id] = f
	}
}

func (fs FilterSet) clone() FilterSet {
	c := make(FilterSet, len(fs))
	for id, f := range fs {
		c[id] = f
	}
	return c
}

// FIB is the routing policy's output for one switch: the filter sets
// F_p^s per port (§IV-C). Port UpPort holds the logical up set; MatchAll
// marks an up set holding the constant-true filter (MR policy).
type FIB struct {
	Switch *topology.Switch
	Ports  map[int]FilterSet
	// MatchAllUp is set under MR: the up port forwards everything.
	MatchAllUp bool
}

// Result is the computed global routing policy.
type Result struct {
	Network *topology.Network
	Policy  Policy
	Alpha   int64
	// FIBs by switch ID.
	FIBs []*FIB
	// Filters is the global filter table.
	Filters []*Filter
}

// Options configure policy computation.
type Options struct {
	Policy Policy
	// Alpha is the discretization unit α (§IV-D); 0 or 1 disables
	// approximation.
	Alpha int64
}

// ComputeFatTree runs Algorithm 1: convert per-host subscriptions into
// per-switch, per-port filter sets over a hierarchical topology.
func ComputeFatTree(net *topology.Network, subs [][]subscription.Expr, opts Options) (*Result, error) {
	if len(subs) != len(net.Hosts) {
		return nil, fmt.Errorf("routing: %d subscription lists for %d hosts", len(subs), len(net.Hosts))
	}
	res := &Result{Network: net, Policy: opts.Policy, Alpha: opts.Alpha}
	res.FIBs = make([]*FIB, len(net.Switches))
	for i, s := range net.Switches {
		res.FIBs[i] = &FIB{Switch: s, Ports: make(map[int]FilterSet)}
	}

	// Filters with pre-computed approximations.
	for h, exprs := range subs {
		for _, e := range exprs {
			res.Filters = append(res.Filters, &Filter{
				ID:     len(res.Filters),
				Host:   h,
				Expr:   e,
				Approx: Approximate(e, opts.Alpha),
			})
		}
	}

	// Lines 3–5: access ports get each host's exact subscriptions.
	byHost := make([]FilterSet, len(net.Hosts))
	for i := range byHost {
		byHost[i] = make(FilterSet)
	}
	for _, f := range res.Filters {
		byHost[f.Host][f.ID] = f
	}
	for h := range net.Hosts {
		sw, port := net.Access(h)
		fs := res.FIBs[sw].ensure(port)
		fs.union(byHost[h])
	}

	// Lines 6–12: propagate subtree unions bottom-up. Layer order: ToR,
	// then Agg (cores have no up links).
	for _, layer := range []topology.Layer{topology.ToR, topology.Agg} {
		for _, src := range net.LayerSwitches(layer) {
			subtree := make(FilterSet)
			for _, p := range src.Ports {
				if p.Kind == topology.PeerHost || p.Kind == topology.PeerDown {
					subtree.union(res.FIBs[src.ID].ensure(p.Index))
				}
			}
			for _, up := range src.UpPorts() {
				res.FIBs[up.PeerSwitch].ensure(up.PeerPort).union(subtree)
			}
		}
	}

	// Up-port sets per policy.
	switch opts.Policy {
	case MemoryReduction:
		// Lines 13–15: F_up = {true}.
		for _, s := range net.Switches {
			if len(s.UpPorts()) > 0 {
				res.FIBs[s.ID].MatchAllUp = true
				res.FIBs[s.ID].ensure(UpPort)
			}
		}
	case TrafficReduction:
		// Lines 16–22, fixed up for multi-level trees: everything
		// reachable through the up port is the parent's up set plus the
		// parent's other down subtrees. Computed top-down (Agg before
		// ToR; cores have no up set).
		for _, layer := range []topology.Layer{topology.Agg, topology.ToR} {
			for _, src := range net.LayerSwitches(layer) {
				ups := src.UpPorts()
				if len(ups) == 0 {
					continue
				}
				first := ups[0] // all parents see the same reachable set
				parent := res.FIBs[first.PeerSwitch]
				upSet := res.FIBs[src.ID].ensure(UpPort)
				for _, p := range parent.Switch.Ports {
					if (p.Kind == topology.PeerDown || p.Kind == topology.PeerHost) && p.Index != first.PeerPort {
						upSet.union(parent.ensure(p.Index))
					}
				}
				if parentUp, ok := parent.Ports[UpPort]; ok {
					upSet.union(parentUp)
				}
			}
		}
	default:
		return nil, fmt.Errorf("routing: unknown policy %d", opts.Policy)
	}
	return res, nil
}

func (f *FIB) ensure(port int) FilterSet {
	fs, ok := f.Ports[port]
	if !ok {
		fs = make(FilterSet)
		f.Ports[port] = fs
	}
	return fs
}

// RulesForSwitch converts a switch's FIB into the compiler's intermediate
// representation: one rule per (port, unique filter), with exact filters
// at host-facing ports and approximated filters elsewhere (§IV-D; the
// ToR layer "stores all the original subscriptions" only for its own
// hosts). Duplicate filters per port collapse, which is where the
// approximation's aggregation benefit appears.
func (r *Result) RulesForSwitch(swID int) []*subscription.Rule {
	fib := r.FIBs[swID]
	var rules []*subscription.Rule
	ports := make([]int, 0, len(fib.Ports))
	for p := range fib.Ports {
		ports = append(ports, p)
	}
	sort.Ints(ports)
	for _, port := range ports {
		if port == UpPort && fib.MatchAllUp {
			rules = append(rules, &subscription.Rule{
				ID:     len(rules),
				Filter: subscription.True,
				Action: subscription.FwdAction(UpPort),
			})
			continue
		}
		hostFacing := false
		if port >= 0 && port < len(fib.Switch.Ports) {
			hostFacing = fib.Switch.Ports[port].Kind == topology.PeerHost
		}
		seen := make(map[string]bool)
		ids := make([]int, 0, len(fib.Ports[port]))
		for id := range fib.Ports[port] {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			f := fib.Ports[port][id]
			e := f.Approx
			if hostFacing {
				e = f.Expr
			}
			key := e.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			rules = append(rules, &subscription.Rule{
				ID:     len(rules),
				Filter: e,
				Action: subscription.FwdAction(port),
			})
		}
	}
	return rules
}

// UniqueFilterCount returns the number of distinct filter expressions on
// a port after approximation-driven aggregation (diagnostics).
func (r *Result) UniqueFilterCount(swID, port int) int {
	fib := r.FIBs[swID]
	hostFacing := port >= 0 && port < len(fib.Switch.Ports) &&
		fib.Switch.Ports[port].Kind == topology.PeerHost
	seen := make(map[string]bool)
	for _, f := range fib.Ports[port] {
		if hostFacing {
			seen[f.Expr.String()] = true
		} else {
			seen[f.Approx.String()] = true
		}
	}
	return len(seen)
}

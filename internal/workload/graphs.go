package workload

import (
	"math/rand"

	"camus/internal/topology"
)

// ASGraphConfig parameterizes the synthetic AS-level graph generator —
// the offline substitute for the SNAP CAIDA and AS-733 datasets
// (§VIII-G2). Preferential attachment reproduces the power-law degree
// skew that drives the MST vs. MST++ comparison.
type ASGraphConfig struct {
	// Nodes is the vertex count (CAIDA: 26475; AS-733: 6474).
	Nodes int
	// Edges is the target edge count (CAIDA: 106762; AS-733: 13233).
	Edges int
	// Seed makes generation deterministic.
	Seed int64
}

// CAIDALike returns the configuration matching the paper's CAIDA graph.
func CAIDALike(seed int64) ASGraphConfig {
	return ASGraphConfig{Nodes: 26475, Edges: 106762, Seed: seed}
}

// AS733Like returns the configuration matching the paper's AS-733 graph.
func AS733Like(seed int64) ASGraphConfig {
	return ASGraphConfig{Nodes: 6474, Edges: 13233, Seed: seed}
}

// Scaled shrinks a configuration by factor (for fast unit tests).
func (c ASGraphConfig) Scaled(factor int) ASGraphConfig {
	return ASGraphConfig{Nodes: c.Nodes / factor, Edges: c.Edges / factor, Seed: c.Seed}
}

// ASGraph builds a connected preferential-attachment graph with
// approximately the configured node and edge counts.
func ASGraph(cfg ASGraphConfig) *topology.Graph {
	if cfg.Nodes < 2 {
		cfg.Nodes = 2
	}
	if cfg.Edges < cfg.Nodes-1 {
		cfg.Edges = cfg.Nodes - 1
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	g := topology.NewGraph(cfg.Nodes)

	// Attachment targets drawn proportionally to degree+1 via a repeated
	// endpoint list (Barabási–Albert style).
	endpoints := make([]int, 0, 2*cfg.Edges+cfg.Nodes)
	addEdge := func(u, v int) {
		before := g.Edges()
		g.AddEdge(u, v)
		if g.Edges() > before {
			endpoints = append(endpoints, u, v)
		}
	}

	// Spanning backbone: attach each new vertex to a degree-biased
	// existing vertex (guarantees connectivity).
	endpoints = append(endpoints, 0)
	for v := 1; v < cfg.Nodes; v++ {
		u := endpoints[r.Intn(len(endpoints))]
		if u == v {
			u = v - 1
		}
		addEdge(u, v)
	}
	// Extra edges up to the target, both endpoints degree-biased. The
	// attempt budget bounds the loop on dense small graphs where most
	// draws are duplicates.
	for attempts := 0; g.Edges() < cfg.Edges && attempts < 50*cfg.Edges; attempts++ {
		u := endpoints[r.Intn(len(endpoints))]
		v := endpoints[r.Intn(len(endpoints))]
		if u == v {
			v = r.Intn(cfg.Nodes)
		}
		addEdge(u, v)
	}
	return g
}

package workload

import (
	"math/rand"

	"camus/internal/formats"
)

// ITCHFeedConfig parameterizes the market-data feed generator — the
// stand-in for the proprietary Nasdaq trace of §VIII-E1 (2017-08-30).
type ITCHFeedConfig struct {
	// Packets is the number of MoldUDP datagrams to generate.
	Packets int
	// Stocks is the symbol universe size (Zipf-distributed popularity).
	Stocks int
	// InterestSymbol is the symbol the experiment's subscriber filters
	// for (GOOGL in the paper).
	InterestSymbol string
	// InterestFraction is the fraction of messages carrying the interest
	// symbol: 0.005 for the Nasdaq-trace-like workload, 0.05 for the
	// synthetic feed (§VIII-E1).
	InterestFraction float64
	// BatchZipf, when true, batches multiple ITCH messages per packet
	// with Zipf-distributed batch sizes (the paper's synthetic feed);
	// otherwise one message per packet (trace-like).
	BatchZipf bool
	// MaxBatch bounds the Zipf batch size.
	MaxBatch int
	// Seed makes generation deterministic.
	Seed int64
}

func (c ITCHFeedConfig) withDefaults() ITCHFeedConfig {
	if c.Stocks == 0 {
		c.Stocks = 100
	}
	if c.InterestSymbol == "" {
		c.InterestSymbol = "GOOGL"
	}
	if c.InterestFraction == 0 {
		c.InterestFraction = 0.005
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 8
	}
	return c
}

// ITCHPacket is one generated datagram.
type ITCHPacket struct {
	Orders []*formats.Order
	// Interesting counts orders carrying the interest symbol.
	Interesting int
}

// ITCHFeed generates a deterministic synthetic feed.
func ITCHFeed(cfg ITCHFeedConfig) []ITCHPacket {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	symbols := DefaultSymbols(cfg.Stocks)
	zipfSym := rand.NewZipf(r, 1.3, 1, uint64(cfg.Stocks-1))
	var zipfBatch *rand.Zipf
	if cfg.BatchZipf {
		zipfBatch = rand.NewZipf(r, 1.5, 1, uint64(cfg.MaxBatch-1))
	}
	out := make([]ITCHPacket, cfg.Packets)
	ref := uint64(0)
	for i := range out {
		batch := 1
		if zipfBatch != nil {
			batch = 1 + int(zipfBatch.Uint64())
		}
		pkt := ITCHPacket{Orders: make([]*formats.Order, batch)}
		for j := range pkt.Orders {
			ref++
			stock := symbols[int(zipfSym.Uint64())]
			if r.Float64() < cfg.InterestFraction {
				stock = cfg.InterestSymbol
				pkt.Interesting++
			}
			pkt.Orders[j] = &formats.Order{
				Seq:    ref,
				Stock:  stock,
				Price:  int64(10 + r.Intn(990)),
				Shares: int64(1 + r.Intn(1000)),
				Buy:    r.Intn(2) == 0,
				RefNum: ref,
			}
		}
		out[i] = pkt
	}
	return out
}

// INTStreamConfig parameterizes the telemetry event stream (§VIII-E2):
// a 100G link's worth of INT reports where fewer than 1% match the
// anomaly filters.
type INTStreamConfig struct {
	Reports int
	// Switches is the switch-ID universe.
	Switches int
	// LatencyThreshold: reports above it are anomalous.
	LatencyThreshold int64
	// AnomalyFraction is the fraction of reports exceeding the
	// threshold (the paper filters match <1%).
	AnomalyFraction float64
	Seed            int64
}

func (c INTStreamConfig) withDefaults() INTStreamConfig {
	if c.Switches == 0 {
		c.Switches = 100
	}
	if c.LatencyThreshold == 0 {
		c.LatencyThreshold = 100
	}
	if c.AnomalyFraction == 0 {
		c.AnomalyFraction = 0.008
	}
	return c
}

// INTStream generates a deterministic telemetry stream.
func INTStream(cfg INTStreamConfig) []*formats.INTReport {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	out := make([]*formats.INTReport, cfg.Reports)
	for i := range out {
		lat := int64(r.Intn(int(cfg.LatencyThreshold)))
		depth := int64(r.Intn(24)) // healthy queues stay shallow
		if r.Float64() < cfg.AnomalyFraction {
			lat = cfg.LatencyThreshold + int64(r.Intn(1000))
			depth = 48 + int64(r.Intn(16)) // congestion spike
		}
		out[i] = &formats.INTReport{
			FlowID:     int64(r.Intn(1 << 20)),
			SwitchID:   int64(r.Intn(cfg.Switches)),
			HopLatency: lat,
			QueueDepth: depth,
			EgressPort: int64(r.Intn(32)),
		}
	}
	return out
}

// HICNConfig parameterizes the video-request stream of §VIII-E3: two
// clients streaming the same hot content while a third pulls many cold
// identifiers.
type HICNConfig struct {
	Requests int
	// HotIDs is the number of popular content identifiers (likely
	// cached at the forwarder).
	HotIDs int
	// ColdIDs is the universe of one-off identifiers.
	ColdIDs int
	// HotFraction is the fraction of requests for hot content.
	HotFraction float64
	Seed        int64
}

func (c HICNConfig) withDefaults() HICNConfig {
	if c.HotIDs == 0 {
		c.HotIDs = 4
	}
	if c.ColdIDs == 0 {
		c.ColdIDs = 100000
	}
	if c.HotFraction == 0 {
		c.HotFraction = 0.8
	}
	return c
}

// HICNStream generates a deterministic request stream. Hot requests have
// ContentID < HotIDs.
func HICNStream(cfg HICNConfig) []*formats.HICNRequest {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	out := make([]*formats.HICNRequest, cfg.Requests)
	for i := range out {
		var id int64
		if r.Float64() < cfg.HotFraction {
			id = int64(r.Intn(cfg.HotIDs))
		} else {
			id = int64(cfg.HotIDs + r.Intn(cfg.ColdIDs))
		}
		out[i] = &formats.HICNRequest{
			NamePrefix: "video/stream",
			ContentID:  id,
			Segment:    int64(i % 1024),
		}
	}
	return out
}

package workload

import (
	"fmt"
	"math/rand"
)

// TenantChurnConfig configures a multi-tenant churn workload: the base
// churn stream partitioned across a simulated tenant population with
// Zipf-skewed activity (a few hot tenants dominate, a long tail barely
// subscribes — the daemon's fairness and quota machinery sees both
// shapes at once).
type TenantChurnConfig struct {
	ChurnConfig
	// Tenants is the population size (default 100).
	Tenants int
	// TenantZipfS is the Zipf skew of tenant activity (default 1.2,
	// s > 1).
	TenantZipfS float64
}

// TenantChurnEvent is one subscription change attributed to a tenant.
// Remove events carry the tenant that performed the matching Add, so
// replaying the stream through per-tenant namespaces is always valid.
type TenantChurnEvent struct {
	ChurnEvent
	Tenant string
}

// TenantName formats the canonical simulated tenant name for index i.
func TenantName(i int) string { return fmt.Sprintf("tenant-%04d", i) }

// TenantChurn generates a deterministic multi-tenant churn stream. The
// per-tenant event subsequences are internally consistent: within one
// tenant every Remove follows its Add, so a harness may partition the
// stream by tenant and drive each partition concurrently.
func TenantChurn(cfg TenantChurnConfig) ([]TenantChurnEvent, error) {
	if cfg.Tenants <= 0 {
		cfg.Tenants = 100
	}
	if cfg.TenantZipfS <= 1 {
		cfg.TenantZipfS = 1.2
	}
	base, err := Churn(cfg.ChurnConfig)
	if err != nil {
		return nil, err
	}
	// A separate stream keeps tenant assignment independent of the base
	// churn draw (same base stream for any tenant population).
	r := rand.New(rand.NewSource(cfg.Seed + 0x7e9a97))
	zipf := rand.NewZipf(r, cfg.TenantZipfS, 1, uint64(cfg.Tenants-1))
	owner := make(map[int]string) // churn key → tenant
	out := make([]TenantChurnEvent, len(base))
	for i, ev := range base {
		var tn string
		if ev.Add {
			tn = TenantName(int(zipf.Uint64()))
			owner[ev.Key] = tn
		} else {
			tn = owner[ev.Key]
			delete(owner, ev.Key)
		}
		out[i] = TenantChurnEvent{ChurnEvent: ev, Tenant: tn}
	}
	return out, nil
}

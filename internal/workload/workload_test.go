package workload

import (
	"testing"
	"time"

	"camus/internal/compiler"
	"camus/internal/spec"
	"camus/internal/subscription"
)

var testSpec = spec.MustParse("itch", `
header itch_order {
    shares : u32 @field;
    price : u32 @field;
    stock : str8 @field_exact;
}
`)

func TestSienaDeterministic(t *testing.T) {
	cfg := SienaConfig{Spec: testSpec, Filters: 50, Seed: 42}
	a, err := Siena(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Siena(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("lengths: %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("filter %d differs across runs: %s vs %s", i, a[i], b[i])
		}
	}
	c, err := Siena(SienaConfig{Spec: testSpec, Filters: 50, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i].String() == c[i].String() {
			same++
		}
	}
	if same == 50 {
		t.Error("different seeds produced identical workloads")
	}
}

func TestSienaPredicateBounds(t *testing.T) {
	exprs, err := Siena(SienaConfig{
		Spec: testSpec, Filters: 200, MinPredicates: 2, MaxPredicates: 3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	count := func(e subscription.Expr) int {
		conjs, err := subscription.Normalize(e)
		if err != nil {
			t.Fatal(err)
		}
		return len(conjs[0])
	}
	for _, e := range exprs {
		if n := count(e); n < 2 || n > 3 {
			t.Errorf("filter %q has %d predicates", e, n)
		}
	}
}

// TestSienaCompiles: generated workloads must type-check and compile.
func TestSienaCompiles(t *testing.T) {
	rules, err := SienaRules(SienaConfig{Spec: testSpec, Filters: 300, Seed: 5}, 32)
	if err != nil {
		t.Fatal(err)
	}
	p, err := compiler.Compile(testSpec, rules, compiler.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if p.TotalEntries() == 0 {
		t.Error("empty program")
	}
}

func TestSpreadOverHosts(t *testing.T) {
	exprs, err := Siena(SienaConfig{Spec: testSpec, Filters: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	byHost := SpreadOverHosts(exprs, 4)
	if len(byHost) != 4 {
		t.Fatalf("hosts = %d", len(byHost))
	}
	total := 0
	for _, s := range byHost {
		total += len(s)
	}
	if total != 10 {
		t.Errorf("spread lost filters: %d", total)
	}
	if len(byHost[0]) != 3 || len(byHost[3]) != 2 {
		t.Errorf("uneven spread: %d %d", len(byHost[0]), len(byHost[3]))
	}
}

func TestITCHFeedInterestFraction(t *testing.T) {
	pkts := ITCHFeed(ITCHFeedConfig{Packets: 20000, InterestFraction: 0.005, Seed: 3})
	if len(pkts) != 20000 {
		t.Fatalf("packets = %d", len(pkts))
	}
	interesting, total := 0, 0
	for _, p := range pkts {
		if len(p.Orders) != 1 {
			t.Fatalf("trace-like feed batched: %d orders", len(p.Orders))
		}
		total += len(p.Orders)
		interesting += p.Interesting
	}
	frac := float64(interesting) / float64(total)
	if frac < 0.002 || frac > 0.009 {
		t.Errorf("interest fraction = %.4f, want ≈0.005", frac)
	}
}

func TestITCHFeedBatching(t *testing.T) {
	pkts := ITCHFeed(ITCHFeedConfig{Packets: 5000, BatchZipf: true, InterestFraction: 0.05, Seed: 4})
	multi, total := 0, 0
	for _, p := range pkts {
		total += len(p.Orders)
		if len(p.Orders) > 1 {
			multi++
		}
		if len(p.Orders) < 1 || len(p.Orders) > 8 {
			t.Fatalf("batch size %d out of range", len(p.Orders))
		}
	}
	if multi == 0 {
		t.Error("Zipf feed produced no multi-message packets")
	}
	if total <= 5000 {
		t.Error("batched feed produced no extra messages")
	}
}

func TestINTStreamAnomalies(t *testing.T) {
	reports := INTStream(INTStreamConfig{Reports: 50000, Seed: 9})
	anomalous := 0
	for _, r := range reports {
		if r.HopLatency > 100 {
			anomalous++
		}
		if r.SwitchID < 0 || r.SwitchID >= 100 {
			t.Fatalf("switch id %d", r.SwitchID)
		}
	}
	frac := float64(anomalous) / float64(len(reports))
	if frac <= 0 || frac >= 0.01 {
		t.Errorf("anomaly fraction = %.4f, want <1%% and >0", frac)
	}
}

func TestHICNStreamHotCold(t *testing.T) {
	reqs := HICNStream(HICNConfig{Requests: 10000, HotIDs: 4, HotFraction: 0.8, Seed: 2})
	hot := 0
	for _, r := range reqs {
		if r.ContentID < 4 {
			hot++
		}
	}
	frac := float64(hot) / float64(len(reqs))
	if frac < 0.75 || frac > 0.85 {
		t.Errorf("hot fraction = %.3f, want ≈0.8", frac)
	}
}

func TestASGraphShape(t *testing.T) {
	cfg := AS733Like(11).Scaled(10) // 647 nodes, 1323 edges
	g := ASGraph(cfg)
	if g.N != cfg.Nodes {
		t.Fatalf("nodes = %d, want %d", g.N, cfg.Nodes)
	}
	if !g.Connected() {
		t.Fatal("AS graph disconnected")
	}
	if e := g.Edges(); e < cfg.Edges*9/10 || e > cfg.Edges*11/10 {
		t.Errorf("edges = %d, want ≈%d", e, cfg.Edges)
	}
	// Power-law skew: the max degree should far exceed the mean.
	maxDeg, sumDeg := 0, 0
	for v := 0; v < g.N; v++ {
		d := g.Degree(v)
		sumDeg += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(sumDeg) / float64(g.N)
	if float64(maxDeg) < 8*mean {
		t.Errorf("degree skew too weak: max=%d mean=%.1f", maxDeg, mean)
	}
	// Determinism.
	g2 := ASGraph(cfg)
	if g2.Edges() != g.Edges() {
		t.Error("graph generation not deterministic")
	}
}

func TestChurnStream(t *testing.T) {
	cfg := ChurnConfig{
		Spec: testSpec, Hosts: 16, Events: 2000, Rate: 5000,
		AddFraction: 0.5, Seed: 9,
	}
	evs, err := Churn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2000 {
		t.Fatalf("events = %d, want 2000", len(evs))
	}
	// Arrivals are monotone; removes always reference a live prior add
	// on the same host with the same filter.
	live := make(map[int]ChurnEvent)
	adds := 0
	var last time.Duration
	for i, ev := range evs {
		if ev.At < last {
			t.Fatalf("event %d: time went backwards (%v < %v)", i, ev.At, last)
		}
		last = ev.At
		if ev.Host < 0 || ev.Host >= cfg.Hosts {
			t.Fatalf("event %d: host %d out of range", i, ev.Host)
		}
		if ev.Filter == nil {
			t.Fatalf("event %d: nil filter", i)
		}
		if ev.Add {
			adds++
			if _, dup := live[ev.Key]; dup {
				t.Fatalf("event %d: duplicate key %d", i, ev.Key)
			}
			live[ev.Key] = ev
		} else {
			prior, ok := live[ev.Key]
			if !ok {
				t.Fatalf("event %d: remove of unknown key %d", i, ev.Key)
			}
			if prior.Host != ev.Host || prior.Filter.String() != ev.Filter.String() {
				t.Fatalf("event %d: remove does not match its add", i)
			}
			delete(live, ev.Key)
		}
	}
	// The realized mix should be near the configured ratio.
	if frac := float64(adds) / float64(len(evs)); frac < 0.45 || frac > 0.65 {
		t.Errorf("add fraction %.2f far from 0.5", frac)
	}
	// Zipf popularity: the most popular filter should dominate the tail.
	popularity := make(map[string]int)
	for _, ev := range evs {
		if ev.Add {
			popularity[ev.Filter.String()]++
		}
	}
	top := 0
	for _, n := range popularity {
		if n > top {
			top = n
		}
	}
	if top < adds/10 {
		t.Errorf("no popular filter: top=%d of %d adds over %d distinct",
			top, adds, len(popularity))
	}
	// Determinism.
	evs2, err := Churn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range evs {
		a, b := evs[i], evs2[i]
		if a.At != b.At || a.Host != b.Host || a.Add != b.Add ||
			a.Key != b.Key || a.Filter.String() != b.Filter.String() {
			t.Fatalf("event %d not deterministic", i)
		}
	}
}

package workload

import (
	"fmt"
	"testing"

	"camus/internal/routing/cover"
	"camus/internal/subscription"
)

func TestCoverChainsNested(t *testing.T) {
	cfg := CoverChainsConfig{Spec: testSpec, Chains: 8, Depth: 4, Seed: 3}
	pool, err := CoverChains(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pool) != 8*4 {
		t.Fatalf("pool size = %d, want %d", len(pool), 8*4)
	}
	// Determinism.
	again, err := CoverChains(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(pool) != fmt.Sprint(again) {
		t.Fatal("CoverChains not deterministic")
	}
	// Level-major layout: pool[level*Chains + c] is chain c at that
	// level, and each level strictly implies the one above it.
	im := cover.NewImplier(testSpec, 0)
	for c := 0; c < cfg.Chains; c++ {
		for level := 1; level < cfg.Depth; level++ {
			narrow := pool[level*cfg.Chains+c]
			broad := pool[(level-1)*cfg.Chains+c]
			if !im.Implies(narrow, broad) {
				t.Errorf("chain %d level %d: %q does not imply %q", c, level, narrow, broad)
			}
			if im.Implies(broad, narrow) {
				t.Errorf("chain %d level %d: %q not strictly narrower than %q", c, level, narrow, broad)
			}
		}
	}
}

func TestChurnCoverHeavyPool(t *testing.T) {
	evs, err := Churn(ChurnConfig{
		Spec: testSpec, Hosts: 8, Events: 200, PoolSize: 32, CoverHeavy: true, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 200 {
		t.Fatalf("got %d events, want 200", len(evs))
	}
	// The stream must actually exercise subsumption: some subscribed
	// filter strictly implies another subscribed filter.
	im := cover.NewImplier(testSpec, 0)
	seen := make(map[string]subscription.Expr)
	for _, ev := range evs {
		if ev.Add {
			seen[ev.Filter.String()] = ev.Filter
		}
	}
	for fk, f := range seen {
		for gk, g := range seen {
			if fk != gk && im.Implies(f, g) {
				return // found a covering pair
			}
		}
	}
	t.Fatal("covering-heavy stream produced no subsumption pair")
}

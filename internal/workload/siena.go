// Package workload generates the evaluation inputs: Siena-style
// synthetic subscription workloads (the paper's benchmark generator,
// §VIII-F2), market-data and telemetry feeds, hICN request streams, and
// synthetic AS-level graphs standing in for the SNAP datasets.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"camus/internal/spec"
	"camus/internal/subscription"
)

// SienaConfig parameterizes the synthetic subscription generator,
// modeled on the Siena Synthetic Benchmark Generator the paper uses.
type SienaConfig struct {
	// Spec is the message spec whose subscribable fields are drawn from.
	Spec *spec.Spec
	// Filters is the number of subscriptions to generate.
	Filters int
	// MinPredicates / MaxPredicates bound the constraints per filter
	// (the paper's "selectiveness", Fig. 12b).
	MinPredicates int
	MaxPredicates int
	// IntRange is the exclusive upper bound for numeric constants.
	IntRange int64
	// StringValues is the universe of string constants (stock symbols,
	// topic names, ...). Drawn Zipf-distributed.
	StringValues []string
	// EqualityBias is the probability that a numeric predicate uses ==
	// instead of an ordering relation.
	EqualityBias float64
	// Seed makes generation deterministic.
	Seed int64
}

func (c SienaConfig) withDefaults() SienaConfig {
	if c.MinPredicates == 0 {
		c.MinPredicates = 1
	}
	if c.MaxPredicates == 0 {
		c.MaxPredicates = 3
	}
	if c.IntRange == 0 {
		c.IntRange = 1000
	}
	if len(c.StringValues) == 0 {
		c.StringValues = DefaultSymbols(100)
	}
	if c.EqualityBias == 0 {
		c.EqualityBias = 0.5
	}
	return c
}

// DefaultSymbols returns n synthetic stock-symbol-like strings.
func DefaultSymbols(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("S%03d", i)
	}
	return out
}

// Siena generates a deterministic synthetic subscription workload.
func Siena(cfg SienaConfig) ([]subscription.Expr, error) {
	cfg = cfg.withDefaults()
	if cfg.Spec == nil {
		return nil, fmt.Errorf("workload: SienaConfig.Spec required")
	}
	fields := cfg.Spec.SubscribableFields()
	if len(fields) == 0 {
		return nil, fmt.Errorf("workload: spec %s has no subscribable fields", cfg.Spec.Name)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(r, 1.2, 1, uint64(len(cfg.StringValues)-1))
	parser := subscription.NewParser(cfg.Spec)
	out := make([]subscription.Expr, 0, cfg.Filters)
	for i := 0; i < cfg.Filters; i++ {
		k := cfg.MinPredicates
		if cfg.MaxPredicates > cfg.MinPredicates {
			k += r.Intn(cfg.MaxPredicates - cfg.MinPredicates + 1)
		}
		if k > len(fields) {
			k = len(fields)
		}
		perm := r.Perm(len(fields))
		var terms []string
		for _, fi := range perm[:k] {
			f := fields[fi]
			terms = append(terms, sienaPredicate(r, zipf, f, cfg))
		}
		src := strings.Join(terms, " and ")
		e, err := parser.ParseFilter(src)
		if err != nil {
			return nil, fmt.Errorf("workload: generated filter %q: %w", src, err)
		}
		out = append(out, e)
	}
	return out, nil
}

func sienaPredicate(r *rand.Rand, zipf *rand.Zipf, f *spec.Field, cfg SienaConfig) string {
	if f.Type == spec.StringField {
		v := cfg.StringValues[int(zipf.Uint64())]
		if f.Hint == spec.MatchPrefix && r.Intn(4) == 0 && len(v) > 1 {
			return fmt.Sprintf("%s prefix \"%s\"", f.Name, v[:1+r.Intn(len(v)-1)])
		}
		return fmt.Sprintf("%s == %s", f.Name, v)
	}
	max := cfg.IntRange
	if fm := f.MaxValue(); fm < max {
		max = fm
	}
	c := r.Int63n(max)
	if f.Hint == spec.MatchExact || r.Float64() < cfg.EqualityBias {
		return fmt.Sprintf("%s == %d", f.Name, c)
	}
	ops := []string{"<", "<=", ">", ">="}
	return fmt.Sprintf("%s %s %d", f.Name, ops[r.Intn(len(ops))], c)
}

// SienaRules wraps Siena output as rules with per-filter fwd ports
// assigned round-robin over nPorts.
func SienaRules(cfg SienaConfig, nPorts int) ([]*subscription.Rule, error) {
	exprs, err := Siena(cfg)
	if err != nil {
		return nil, err
	}
	rules := make([]*subscription.Rule, len(exprs))
	for i, e := range exprs {
		rules[i] = &subscription.Rule{
			ID:     i,
			Filter: e,
			Action: subscription.FwdAction(i % nPorts),
		}
	}
	return rules, nil
}

// SpreadOverHosts deals filters to hosts round-robin, the shape the
// routing experiments consume (subs indexed by host).
func SpreadOverHosts(exprs []subscription.Expr, hosts int) [][]subscription.Expr {
	out := make([][]subscription.Expr, hosts)
	for i, e := range exprs {
		h := i % hosts
		out[h] = append(out[h], e)
	}
	return out
}

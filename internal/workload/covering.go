package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"camus/internal/spec"
	"camus/internal/subscription"
)

// CoverChainsConfig parameterizes the covering-heavy generator:
// Zipf-nested refinement chains in which every filter strictly implies
// the previous level of its chain (`stock == S` ⊒ `stock == S and
// price > t` ⊒ `stock == S and price > t+Step` ...), so a
// subsumption-aware control plane can cover most of the pool under a
// few broad roots. Chain base symbols are drawn Zipf-skewed, making
// cross-chain covering common too.
type CoverChainsConfig struct {
	// Spec is the message spec filters are generated against
	// (required; needs at least one numeric subscribable field).
	Spec *spec.Spec
	// Chains is the number of refinement chains (default 16).
	Chains int
	// Depth is the number of nesting levels per chain (default 4).
	Depth int
	// Symbols is the universe of chain base symbols (default
	// DefaultSymbols(Chains)), used when the spec has a string field.
	Symbols []string
	// Step is the threshold spacing between nesting levels (default
	// 100). Keep it ≥ the routing α so approximation does not collapse
	// adjacent levels into identical expressions — collapsed levels
	// dedup in full mode and the covering reduction would be invisible.
	Step int64
	// Seed makes generation deterministic.
	Seed int64
}

func (c CoverChainsConfig) withDefaults() CoverChainsConfig {
	if c.Chains <= 0 {
		c.Chains = 16
	}
	if c.Depth <= 0 {
		c.Depth = 4
	}
	if len(c.Symbols) == 0 {
		c.Symbols = DefaultSymbols(c.Chains)
	}
	if c.Step <= 0 {
		c.Step = 100
	}
	return c
}

// CoverChains generates Chains×Depth filters in level-major order: the
// broad level-0 filters of every chain first, then level 1, and so on.
// Zipf consumers that favor low pool indices (Churn) therefore
// subscribe broad covering filters most often, with refinement tails
// behind them — the covering-heavy regime.
func CoverChains(cfg CoverChainsConfig) ([]subscription.Expr, error) {
	cfg = cfg.withDefaults()
	if cfg.Spec == nil {
		return nil, fmt.Errorf("workload: CoverChainsConfig.Spec required")
	}
	var stringField *spec.Field
	var numeric []*spec.Field
	for _, f := range cfg.Spec.SubscribableFields() {
		if f.Type == spec.StringField {
			if stringField == nil {
				stringField = f
			}
		} else if f.Hint == spec.MatchRange {
			// Exact-match numeric fields (flag bytes) can't carry the
			// chains' threshold predicates.
			numeric = append(numeric, f)
		}
	}
	if len(numeric) == 0 {
		return nil, fmt.Errorf("workload: spec %s has no range-matchable numeric field for refinement chains", cfg.Spec.Name)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(r, 1.2, 1, uint64(len(cfg.Symbols)-1))
	parser := subscription.NewParser(cfg.Spec)

	// Per-chain base: a Zipf-drawn symbol (broad equality) and a
	// starting threshold, both multiples of Step so levels stay
	// distinct after α-discretization.
	type chain struct {
		base string
		t0   int64
	}
	// The chain's threshold field is the first numeric field with room
	// for Depth distinct Step-spaced levels (flag-like fields such as a
	// one-byte side indicator can't host a refinement chain).
	var prim *spec.Field
	var headroom int64
	for _, f := range numeric {
		if h := f.MaxValue() / cfg.Step; h >= int64(cfg.Depth)+1 {
			prim, headroom = f, h
			break
		}
	}
	if prim == nil {
		return nil, fmt.Errorf("workload: no numeric field in spec %s has range for %d levels of step %d", cfg.Spec.Name, cfg.Depth, cfg.Step)
	}
	chains := make([]chain, cfg.Chains)
	for i := range chains {
		var base string
		if stringField != nil {
			base = fmt.Sprintf("%s == %s", stringField.Name, cfg.Symbols[int(zipf.Uint64())])
		} else {
			base = fmt.Sprintf("%s > %d", prim.Name, cfg.Step)
		}
		maxStart := headroom - int64(cfg.Depth)
		if maxStart < 1 {
			maxStart = 1
		}
		chains[i] = chain{base: base, t0: cfg.Step * (1 + r.Int63n(maxStart))}
	}

	out := make([]subscription.Expr, 0, cfg.Chains*cfg.Depth)
	for level := 0; level < cfg.Depth; level++ {
		for _, c := range chains {
			terms := []string{c.base}
			if level > 0 {
				terms = append(terms, fmt.Sprintf("%s > %d", prim.Name, c.t0+int64(level-1)*cfg.Step))
			}
			// The deepest level narrows on a second field when the
			// spec has one with room, exercising multi-field implication.
			if level == cfg.Depth-1 {
				for _, f := range numeric {
					if f != prim && f.MaxValue() >= 2*cfg.Step {
						terms = append(terms, fmt.Sprintf("%s > %d", f.Name, cfg.Step))
						break
					}
				}
			}
			src := strings.Join(terms, " and ")
			e, err := parser.ParseFilter(src)
			if err != nil {
				return nil, fmt.Errorf("workload: generated filter %q: %w", src, err)
			}
			out = append(out, e)
		}
	}
	return out, nil
}

package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"camus/internal/spec"
	"camus/internal/subscription"
)

// ChurnConfig configures a randomized subscription-churn workload: the
// event stream the live control plane (internal/ctlplane) consumes.
// Arrivals are Poisson, filter popularity is Zipf over a fixed pool
// (popular filters are subscribed — and therefore deduplicated — far
// more often than tail filters), and the add:remove mix is
// configurable.
type ChurnConfig struct {
	// Spec is the message spec filters are generated against (required
	// unless Pool is provided).
	Spec *spec.Spec
	// Pool overrides the generated filter pool.
	Pool []subscription.Expr
	// PoolSize is the number of distinct filters to generate when Pool
	// is nil (default 64).
	PoolSize int
	// Hosts is the subscriber population (required).
	Hosts int
	// Events is the stream length (default 1000).
	Events int
	// Rate is the mean event arrival rate in events/second for the
	// Poisson process (default 1000).
	Rate float64
	// AddFraction is the target fraction of subscribe events (default
	// 0.5; removals are drawn from the simulated live set, so the
	// realized mix leans toward adds while the set is small).
	AddFraction float64
	// ZipfS is the Zipf skew over the pool (default 1.2, s > 1).
	ZipfS float64
	// CoverHeavy switches pool generation (when Pool is nil) from
	// independent Siena filters to Zipf-nested refinement chains
	// (CoverChains): broad filters sit at the popular front of the
	// pool with refinement tails behind them, so the stream exercises
	// subsumption covering. CoverDepth is the chain length (default 4).
	CoverHeavy bool
	CoverDepth int
	// Seed makes the stream deterministic.
	Seed int64
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.PoolSize <= 0 {
		c.PoolSize = 64
	}
	if c.Events <= 0 {
		c.Events = 1000
	}
	if c.Rate <= 0 {
		c.Rate = 1000
	}
	if c.AddFraction <= 0 {
		c.AddFraction = 0.5
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	return c
}

// ChurnEvent is one subscription change. Add events carry a fresh Key
// and the filter expression; Remove events name the Key of a
// still-live prior Add (the generator tracks the live set, so every
// removal is valid). Callers map Key to whatever handle their control
// plane hands back.
type ChurnEvent struct {
	// At is the Poisson arrival offset from the stream start.
	At   time.Duration
	Host int
	Add  bool
	// Key identifies the subscription instance: assigned on Add,
	// referenced on Remove.
	Key int
	// Filter is the subscribed expression (set on both event kinds).
	Filter subscription.Expr
}

// Churn generates a deterministic subscription-churn event stream.
func Churn(cfg ChurnConfig) ([]ChurnEvent, error) {
	cfg = cfg.withDefaults()
	if cfg.Hosts <= 0 {
		return nil, fmt.Errorf("workload: ChurnConfig.Hosts required")
	}
	pool := cfg.Pool
	if pool == nil {
		var err error
		if cfg.CoverHeavy {
			depth := cfg.CoverDepth
			if depth <= 0 {
				depth = 4
			}
			pool, err = CoverChains(CoverChainsConfig{
				Spec:   cfg.Spec,
				Chains: (cfg.PoolSize + depth - 1) / depth,
				Depth:  depth,
				Seed:   cfg.Seed,
			})
		} else {
			pool, err = Siena(SienaConfig{Spec: cfg.Spec, Filters: cfg.PoolSize, Seed: cfg.Seed})
		}
		if err != nil {
			return nil, err
		}
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(r, cfg.ZipfS, 1, uint64(len(pool)-1))

	type liveSub struct {
		key, host int
		filter    subscription.Expr
	}
	var live []liveSub
	out := make([]ChurnEvent, 0, cfg.Events)
	var at time.Duration
	nextKey := 0
	for len(out) < cfg.Events {
		// Exponential inter-arrival for a Poisson process of rate λ.
		at += time.Duration(-math.Log(1-r.Float64()) / cfg.Rate * float64(time.Second))
		if len(live) == 0 || r.Float64() < cfg.AddFraction {
			ev := ChurnEvent{
				At:     at,
				Host:   r.Intn(cfg.Hosts),
				Add:    true,
				Key:    nextKey,
				Filter: pool[zipf.Uint64()],
			}
			nextKey++
			live = append(live, liveSub{key: ev.Key, host: ev.Host, filter: ev.Filter})
			out = append(out, ev)
		} else {
			i := r.Intn(len(live))
			ls := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			out = append(out, ChurnEvent{
				At: at, Host: ls.host, Key: ls.key, Filter: ls.filter,
			})
		}
	}
	return out, nil
}

// Package packet provides wire-format encoding and decoding driven by
// message specs: the byte-level substrate under internal/formats.
//
// The codec packs header fields big-endian at bit granularity (P4
// semantics: fields occupy consecutive bits in declaration order), so
// specs with u4/u48/str8 fields all round-trip. Decoding follows the
// gopacket DecodingLayerParser philosophy: decode into caller-owned
// structures, no per-packet allocation on the hot path.
package packet

import (
	"fmt"

	"camus/internal/spec"
)

// HeaderCodec encodes and decodes one fixed-width header of a spec.
type HeaderCodec struct {
	Spec   *spec.Spec
	Header *spec.Header

	subIdx []int // per field: subscribable index or -1
}

// NewHeaderCodec builds a codec for the named header.
func NewHeaderCodec(sp *spec.Spec, header string) (*HeaderCodec, error) {
	h, ok := sp.Header(header)
	if !ok {
		return nil, fmt.Errorf("packet: spec %s has no header %q", sp.Name, header)
	}
	c := &HeaderCodec{Spec: sp, Header: h, subIdx: make([]int, len(h.Fields))}
	for i, f := range h.Fields {
		c.subIdx[i] = -1
		if idx, ok := sp.SubscribableIndex(f); ok {
			c.subIdx[i] = idx
		}
	}
	return c, nil
}

// MustHeaderCodec is NewHeaderCodec, panicking on error.
func MustHeaderCodec(sp *spec.Spec, header string) *HeaderCodec {
	c, err := NewHeaderCodec(sp, header)
	if err != nil {
		panic(err)
	}
	return c
}

// Size returns the encoded header size in bytes.
func (c *HeaderCodec) Size() int { return c.Header.Bytes() }

// Append encodes the header to dst from a field-name → value map and
// returns the extended slice. Missing fields encode as zero.
func (c *HeaderCodec) Append(dst []byte, values map[string]spec.Value) ([]byte, error) {
	start := len(dst)
	dst = append(dst, make([]byte, c.Size())...)
	buf := dst[start:]
	for _, f := range c.Header.Fields {
		v, ok := values[f.Name]
		if !ok {
			continue
		}
		if err := putField(buf, f, v); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// Decode extracts the header from data, writing subscribable fields into
// m (and marking the header valid), and returns the remaining bytes.
func (c *HeaderCodec) Decode(data []byte, m *spec.Message) ([]byte, error) {
	n := c.Size()
	if len(data) < n {
		return nil, fmt.Errorf("packet: %s needs %d bytes, have %d", c.Header.Name, n, len(data))
	}
	for i, f := range c.Header.Fields {
		idx := c.subIdx[i]
		if idx < 0 {
			continue
		}
		m.SetIndex(idx, getField(data, f))
	}
	m.MarkHeader(c.Header.Name)
	return data[n:], nil
}

// DecodeAll extracts every field (including non-subscribable ones) into a
// map — for tests, diagnostics and control-plane software.
func (c *HeaderCodec) DecodeAll(data []byte) (map[string]spec.Value, []byte, error) {
	n := c.Size()
	if len(data) < n {
		return nil, nil, fmt.Errorf("packet: %s needs %d bytes, have %d", c.Header.Name, n, len(data))
	}
	out := make(map[string]spec.Value, len(c.Header.Fields))
	for _, f := range c.Header.Fields {
		out[f.Name] = getField(data, f)
	}
	return out, data[n:], nil
}

// Peek reads one named field without touching a Message.
func (c *HeaderCodec) Peek(data []byte, field string) (spec.Value, error) {
	if len(data) < c.Size() {
		return spec.Value{}, fmt.Errorf("packet: short %s header", c.Header.Name)
	}
	for _, f := range c.Header.Fields {
		if f.Name == field {
			return getField(data, f), nil
		}
	}
	return spec.Value{}, fmt.Errorf("packet: header %s has no field %q", c.Header.Name, field)
}

// putField writes a field value at its bit offset.
func putField(buf []byte, f *spec.Field, v spec.Value) error {
	if f.Type == spec.StringField {
		if v.Kind != spec.StringField {
			return fmt.Errorf("packet: field %s wants string", f.QName())
		}
		if f.Offset%8 != 0 {
			return fmt.Errorf("packet: string field %s not byte aligned", f.QName())
		}
		b := buf[f.Offset/8 : f.Offset/8+f.Bytes()]
		s := v.Str
		if len(s) > len(b) {
			return fmt.Errorf("packet: value %q overflows %d-byte field %s", s, len(b), f.QName())
		}
		copy(b, s)
		for i := len(s); i < len(b); i++ {
			b[i] = ' ' // right-pad with spaces, ITCH style
		}
		return nil
	}
	if v.Kind != spec.IntField {
		return fmt.Errorf("packet: field %s wants int", f.QName())
	}
	if f.Bits < 64 && (v.Int < 0 || v.Int > f.MaxValue()) {
		return fmt.Errorf("packet: value %d out of range for %s (u%d)", v.Int, f.QName(), f.Bits)
	}
	putBits(buf, f.Offset, f.Bits, uint64(v.Int))
	return nil
}

// getField reads a field value from its bit offset.
func getField(data []byte, f *spec.Field) spec.Value {
	if f.Type == spec.StringField {
		b := data[f.Offset/8 : f.Offset/8+f.Bytes()]
		return spec.StrVal(string(b))
	}
	return spec.IntVal(int64(getBits(data, f.Offset, f.Bits)))
}

// putBits writes the low `bits` bits of v at bit offset off, big-endian.
func putBits(buf []byte, off, bits int, v uint64) {
	for i := bits - 1; i >= 0; i-- {
		bit := (v >> uint(bits-1-i)) & 1
		pos := off + i
		byteIdx, bitIdx := pos/8, 7-pos%8
		if bit == 1 {
			buf[byteIdx] |= 1 << uint(bitIdx)
		} else {
			buf[byteIdx] &^= 1 << uint(bitIdx)
		}
	}
}

// getBits reads `bits` bits at bit offset off, big-endian.
func getBits(data []byte, off, bits int) uint64 {
	var v uint64
	for i := 0; i < bits; i++ {
		pos := off + i
		byteIdx, bitIdx := pos/8, 7-pos%8
		v = v<<1 | uint64(data[byteIdx]>>uint(bitIdx)&1)
	}
	return v
}

// V is shorthand for building value maps in encoders and tests.
func V(pairs ...interface{}) map[string]spec.Value {
	if len(pairs)%2 != 0 {
		panic("packet.V: odd argument count")
	}
	m := make(map[string]spec.Value, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		name, ok := pairs[i].(string)
		if !ok {
			panic("packet.V: key must be string")
		}
		switch v := pairs[i+1].(type) {
		case int:
			m[name] = spec.IntVal(int64(v))
		case int64:
			m[name] = spec.IntVal(v)
		case uint64:
			m[name] = spec.IntVal(int64(v))
		case string:
			m[name] = spec.StrVal(v)
		case spec.Value:
			m[name] = v
		default:
			panic(fmt.Sprintf("packet.V: unsupported value type %T", v))
		}
	}
	return m
}

package packet

import (
	"testing"
	"testing/quick"

	"camus/internal/spec"
)

var bitSpec = spec.MustParse("bits", `
header mixed {
    a : u4;
    b : u12;
    c : u48;
    d : u3;
    e : u13;
    s : str6 @field;
    f : u64 @field;
}
`)

func TestBitPackingRoundTrip(t *testing.T) {
	c := MustHeaderCodec(bitSpec, "mixed")
	if c.Size() != (4+12+48+3+13+48+64)/8 {
		t.Fatalf("size = %d", c.Size())
	}
	in := V("a", 0xF, "b", 0xABC, "c", int64(1)<<47|12345, "d", 5, "e", 8191, "s", "hello", "f", int64(1)<<62|99)
	buf, err := c.Append(nil, in)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	out, rest, err := c.DecodeAll(buf)
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	if len(rest) != 0 {
		t.Errorf("rest = %d bytes", len(rest))
	}
	for name, want := range in {
		got := out[name]
		if want.Kind == spec.StringField {
			if got.Str != want.Str {
				t.Errorf("%s = %q, want %q", name, got.Str, want.Str)
			}
		} else if got.Int != want.Int {
			t.Errorf("%s = %d (%#x), want %d", name, got.Int, got.Int, want.Int)
		}
	}
}

func TestBitPackingProperty(t *testing.T) {
	c := MustHeaderCodec(bitSpec, "mixed")
	f := func(a, d uint8, b, e uint16, cv, fv uint64) bool {
		in := V(
			"a", int64(a%16), "b", int64(b%4096), "c", int64(cv%(1<<48)),
			"d", int64(d%8), "e", int64(e%8192), "f", int64(fv>>1),
		)
		buf, err := c.Append(nil, in)
		if err != nil {
			return false
		}
		out, _, err := c.DecodeAll(buf)
		if err != nil {
			return false
		}
		for name, want := range in {
			if out[name].Int != want.Int {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeIntoMessage(t *testing.T) {
	c := MustHeaderCodec(bitSpec, "mixed")
	buf, err := c.Append(nil, V("s", "abc", "f", 42))
	if err != nil {
		t.Fatal(err)
	}
	m := spec.NewMessage(bitSpec)
	if m.HeaderPresent("mixed") {
		t.Error("header present before decode")
	}
	rest, err := c.Decode(buf, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("rest = %d", len(rest))
	}
	if !m.HeaderPresent("mixed") {
		t.Error("header not marked present")
	}
	if v, ok := m.GetRef("f"); !ok || v.Int != 42 {
		t.Errorf("f = %v %v", v, ok)
	}
	if v, ok := m.GetRef("s"); !ok || v.Str != "abc" {
		t.Errorf("s = %v %v", v, ok)
	}
	// Non-subscribable fields must not land in the message.
	if _, ok := m.GetRef("a"); ok {
		t.Error("non-subscribable field set in message")
	}
}

func TestEncodeErrors(t *testing.T) {
	c := MustHeaderCodec(bitSpec, "mixed")
	if _, err := c.Append(nil, V("a", 16)); err == nil {
		t.Error("out-of-range u4 encoded")
	}
	if _, err := c.Append(nil, V("s", "toolongstring")); err == nil {
		t.Error("overlong string encoded")
	}
	if _, err := c.Append(nil, map[string]spec.Value{"a": spec.StrVal("x")}); err == nil {
		t.Error("string into int field encoded")
	}
	if _, err := NewHeaderCodec(bitSpec, "nope"); err == nil {
		t.Error("codec for missing header created")
	}
	m := spec.NewMessage(bitSpec)
	if _, err := c.Decode([]byte{1, 2}, m); err == nil {
		t.Error("short buffer decoded")
	}
}

func TestPeek(t *testing.T) {
	c := MustHeaderCodec(bitSpec, "mixed")
	buf, err := c.Append(nil, V("b", 777))
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Peek(buf, "b")
	if err != nil || v.Int != 777 {
		t.Errorf("Peek(b) = %v, %v", v, err)
	}
	if _, err := c.Peek(buf, "zz"); err == nil {
		t.Error("Peek of unknown field succeeded")
	}
}

func TestStringPadding(t *testing.T) {
	c := MustHeaderCodec(bitSpec, "mixed")
	buf, err := c.Append(nil, V("s", "ab"))
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := c.DecodeAll(buf)
	if err != nil {
		t.Fatal(err)
	}
	// Right-padded on the wire, trimmed on decode.
	if out["s"].Str != "ab" {
		t.Errorf("s = %q", out["s"].Str)
	}
}

func TestVHelperPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("V with odd args did not panic")
		}
	}()
	V("only-key")
}

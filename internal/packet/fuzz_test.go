package packet

import (
	"testing"

	"camus/internal/spec"
)

// FuzzHeaderCodec round-trips arbitrary integer values through the
// bit-packing codec.
func FuzzHeaderCodec(f *testing.F) {
	f.Add(uint64(0), uint64(1), uint64(2))
	f.Add(uint64(1)<<47, uint64(4095), uint64(15))
	sp := spec.MustParse("fz", `
header h {
    a : u4;
    b : u12;
    c : u48;
}
`)
	c := MustHeaderCodec(sp, "h")
	f.Fuzz(func(t *testing.T, a, b, cc uint64) {
		in := V("a", int64(a%16), "b", int64(b%4096), "c", int64(cc%(1<<48)))
		buf, err := c.Append(nil, in)
		if err != nil {
			t.Fatalf("Append(%v): %v", in, err)
		}
		out, _, err := c.DecodeAll(buf)
		if err != nil {
			t.Fatalf("DecodeAll: %v", err)
		}
		for k, v := range in {
			if out[k].Int != v.Int {
				t.Fatalf("%s: %d != %d", k, out[k].Int, v.Int)
			}
		}
	})
}

// Package integration holds the cross-module experiments of §VIII-D
// (Q2: architecture practicality): multiple applications co-existing on
// one switch, packet subscriptions co-existing with traditional IP
// traffic, and packet subscriptions generalizing IP. As the paper puts
// it, "the main result is 'it works'".
package integration

import (
	"fmt"
	"testing"

	"camus/internal/compiler"
	"camus/internal/controller"
	"camus/internal/formats"
	"camus/internal/netsim"
	"camus/internal/pipeline"
	"camus/internal/routing"
	"camus/internal/spec"
	"camus/internal/subscription"
	"camus/internal/topology"
)

// TestQ2MultipleApplications deploys ITCH and INT on the same switch
// (§VIII-D1): one publisher sends both traffic types; two servers each
// receive only their application's messages.
func TestQ2MultipleApplications(t *testing.T) {
	merged, err := spec.Merge("itch+int", formats.ITCH, formats.INT)
	if err != nil {
		t.Fatal(err)
	}
	p := subscription.NewParser(merged)
	rules, err := p.ParseRules(`
stock == GOOGL: fwd(1)
switch_id == 2 and hop_latency > 100: fwd(2)
`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(merged, rules, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := pipeline.NewSwitch("shared", nil, prog)
	if err != nil {
		t.Fatal(err)
	}

	// ITCH traffic decoded from the wire, remapped onto the merged spec.
	wire, err := formats.EncodeITCHFeed("S", 1, []*formats.Order{
		{Stock: "GOOGL", Price: 10, Shares: 1},
		{Stock: "MSFT", Price: 10, Shares: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	itchMsgs, err := formats.DecodeITCHFeed(wire)
	if err != nil {
		t.Fatal(err)
	}
	for i, src := range itchMsgs {
		m := remap(t, src, merged)
		out := sw.Process(&pipeline.Packet{In: 0, Msgs: []*spec.Message{m}}, 0)
		if i == 0 && (len(out) != 1 || out[0].Port != 1) {
			t.Errorf("GOOGL order: %+v", out)
		}
		if i == 1 && len(out) != 0 {
			t.Errorf("MSFT order should drop: %+v", out)
		}
	}

	// INT traffic on the same switch, same pipeline.
	intWire, err := formats.EncodeINT(&formats.INTReport{SwitchID: 2, HopLatency: 150})
	if err != nil {
		t.Fatal(err)
	}
	intMsg, err := formats.DecodeINT(intWire)
	if err != nil {
		t.Fatal(err)
	}
	out := sw.Process(&pipeline.Packet{In: 0, Msgs: []*spec.Message{remap(t, intMsg, merged)}}, 0)
	if len(out) != 1 || out[0].Port != 2 {
		t.Errorf("INT anomaly: %+v", out)
	}
	// An INT report that is not anomalous must not reach either app.
	quiet, err := formats.DecodeINT(mustEncodeINT(t, &formats.INTReport{SwitchID: 2, HopLatency: 5}))
	if err != nil {
		t.Fatal(err)
	}
	if out := sw.Process(&pipeline.Packet{In: 0, Msgs: []*spec.Message{remap(t, quiet, merged)}}, 0); len(out) != 0 {
		t.Errorf("quiet INT report forwarded: %+v", out)
	}
}

// TestQ2CoexistenceWithIP extends a basic L2/L3 switch with two packet
// subscription applications (§VIII-D2): ITCH and INT subscriptions run
// beside plain IPv4 forwarding rules, and the IP traffic is unaffected.
func TestQ2CoexistenceWithIP(t *testing.T) {
	merged, err := spec.Merge("ip+itch+int", formats.NetBase, formats.ITCH, formats.INT)
	if err != nil {
		t.Fatal(err)
	}
	p := subscription.NewParser(merged)
	// Kafka servers behind ports 5/6 via classic IP; app filters beside.
	rules, err := p.ParseRules(`
dst == 10.0.0.5: fwd(5)
dst == 10.0.0.6: fwd(6)
stock == GOOGL: fwd(1)
switch_id == 2 and hop_latency > 100: fwd(2)
`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(merged, rules, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := pipeline.NewSwitch("tor", nil, prog)
	if err != nil {
		t.Fatal(err)
	}

	// Plain Kafka-over-IP traffic: forwarded by address, untouched by
	// the subscription applications.
	frame, err := formats.EncodeFrame(formats.IPv4(10, 0, 0, 9), formats.IPv4(10, 0, 0, 5), 1234, 9092, []byte("produce"))
	if err != nil {
		t.Fatal(err)
	}
	ipMsg := spec.NewMessage(merged)
	// Decode against merged spec: netbase headers resolve by name.
	if _, err := decodeFrameInto(merged, frame, ipMsg); err != nil {
		t.Fatal(err)
	}
	out := sw.Process(&pipeline.Packet{In: 0, Msgs: []*spec.Message{ipMsg}}, 0)
	if len(out) != 1 || out[0].Port != 5 {
		t.Fatalf("IP packet: %+v", out)
	}

	// Introducing ITCH traffic does not disturb IP forwarding.
	googl := &formats.Order{Stock: "GOOGL", Price: 1, Shares: 1}
	m := remap(t, googl.Message(), merged)
	if out := sw.Process(&pipeline.Packet{In: 0, Msgs: []*spec.Message{m}}, 0); len(out) != 1 || out[0].Port != 1 {
		t.Fatalf("ITCH packet: %+v", out)
	}
	if out := sw.Process(&pipeline.Packet{In: 0, Msgs: []*spec.Message{ipMsg}}, 0); len(out) != 1 || out[0].Port != 5 {
		t.Fatalf("IP packet after ITCH traffic: %+v", out)
	}
}

// TestQ2GeneralizingIP implements traditional IP forwarding purely with
// packet subscriptions over a 4-server cluster (§VIII-D3).
func TestQ2GeneralizingIP(t *testing.T) {
	net := topology.MustFatTree(4)
	subs := make([][]subscription.Expr, len(net.Hosts))
	p := subscription.NewParser(formats.NetBase)
	for h := 0; h < 4; h++ {
		f, err := p.ParseFilter(fmt.Sprintf("dst == 10.0.0.%d", h+1))
		if err != nil {
			t.Fatal(err)
		}
		subs[h] = []subscription.Expr{f}
	}
	d, err := controller.Deploy(net, formats.NetBase, subs, controller.Options{
		Routing: routing.Options{Policy: routing.TrafficReduction},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := netsim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	for from := 0; from < 4; from++ {
		for to := 0; to < 4; to++ {
			if from == to {
				continue
			}
			m := spec.NewMessage(formats.NetBase)
			m.MustSet("dst", spec.IntVal(formats.IPv4(10, 0, 0, to+1)))
			m.MustSet("src", spec.IntVal(formats.IPv4(10, 0, 0, from+1)))
			m.MustSet("proto", spec.IntVal(6))
			m.MustSet("dport", spec.IntVal(9092))
			out := sim.Publish(from, []*spec.Message{m}, 64)
			if len(out) != 1 || out[0].Host != to {
				t.Fatalf("IP %d→%d: %+v", from, to, out)
			}
		}
	}
}

// remap copies a message decoded against an application spec onto the
// merged multi-application spec (matching fields by qualified name) —
// what a shared parser does on a multi-app switch.
func remap(t *testing.T, src *spec.Message, merged *spec.Spec) *spec.Message {
	t.Helper()
	dst := spec.NewMessage(merged)
	for i, f := range src.Spec().SubscribableFields() {
		v, ok := src.Get(i)
		if !ok {
			continue
		}
		if err := dst.Set(f.QName(), v); err != nil {
			t.Fatalf("remap %s: %v", f.QName(), err)
		}
	}
	// Propagate header validity for headers without subscribable fields.
	for _, h := range src.Spec().Headers {
		if src.HeaderPresent(h.Name) {
			dst.MarkHeader(h.Name)
		}
	}
	return dst
}

func mustEncodeINT(t *testing.T, r *formats.INTReport) []byte {
	t.Helper()
	b, err := formats.EncodeINT(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// decodeFrameInto decodes the netbase stack against a merged spec.
func decodeFrameInto(merged *spec.Spec, data []byte, m *spec.Message) ([]byte, error) {
	eth, err := newCodec(merged, "ethernet")
	if err != nil {
		return nil, err
	}
	ip, err := newCodec(merged, "ipv4")
	if err != nil {
		return nil, err
	}
	udp, err := newCodec(merged, "udp")
	if err != nil {
		return nil, err
	}
	rest, err := eth.Decode(data, m)
	if err != nil {
		return nil, err
	}
	rest, err = ip.Decode(rest, m)
	if err != nil {
		return nil, err
	}
	return udp.Decode(rest, m)
}

package integration

import (
	"camus/internal/packet"
	"camus/internal/spec"
)

// newCodec builds a header codec against an arbitrary (e.g. merged) spec.
func newCodec(sp *spec.Spec, header string) (*packet.HeaderCodec, error) {
	return packet.NewHeaderCodec(sp, header)
}

package pipeline

import (
	"testing"
	"time"

	"camus/internal/compiler"
	"camus/internal/spec"
	"camus/internal/subscription"
)

const itchSpecSrc = `
header itch_order {
    shares : u32 @field;
    price : u32 @field;
    stock : str8 @field_exact;
}
`

func buildSwitch(t testing.TB, rulesSrc string, opts compiler.Options) (*Switch, *spec.Spec) {
	t.Helper()
	sp := spec.MustParse("itch", itchSpecSrc)
	rules, err := subscription.NewParser(sp).ParseRules(rulesSrc)
	if err != nil {
		t.Fatalf("rules: %v", err)
	}
	prog, err := compiler.Compile(sp, rules, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	static, err := compiler.GenerateStatic(sp, compiler.StaticOptions{})
	if err != nil {
		t.Fatalf("static: %v", err)
	}
	sw, err := New("s1", static, prog, DefaultConfig())
	if err != nil {
		t.Fatalf("switch: %v", err)
	}
	return sw, sp
}

func itchMsg(sp *spec.Spec, stock string, price, shares int64) *spec.Message {
	m := spec.NewMessage(sp)
	m.MustSet("stock", spec.StrVal(stock))
	m.MustSet("price", spec.IntVal(price))
	m.MustSet("shares", spec.IntVal(shares))
	return m
}

func TestProcessUnicast(t *testing.T) {
	sw, sp := buildSwitch(t, "stock == GOOGL: fwd(1)", compiler.Options{})
	out := sw.Process(&Packet{In: 0, Msgs: []*spec.Message{itchMsg(sp, "GOOGL", 50, 10)}, Bytes: 100}, 0)
	if len(out) != 1 || out[0].Port != 1 || len(out[0].Msgs) != 1 {
		t.Fatalf("deliveries = %+v", out)
	}
	if out[0].Latency != sw.Config().BaseLatency {
		t.Errorf("latency = %v", out[0].Latency)
	}
	out2 := sw.Process(&Packet{In: 0, Msgs: []*spec.Message{itchMsg(sp, "MSFT", 50, 10)}}, 0)
	if len(out2) != 0 {
		t.Fatalf("MSFT should be dropped, got %+v", out2)
	}
	if st := sw.Stats(); st.Packets != 2 || st.Matched != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestProcessMulticastAndIngressDrop(t *testing.T) {
	sw, sp := buildSwitch(t, `
stock == GOOGL: fwd(1)
price > 40: fwd(2)
price > 40: fwd(3)
`, compiler.Options{})
	out := sw.Process(&Packet{In: 3, Msgs: []*spec.Message{itchMsg(sp, "GOOGL", 50, 10)}}, 0)
	// Matches all rules → ports 1,2,3; port 3 suppressed (ingress).
	if len(out) != 2 || out[0].Port != 1 || out[1].Port != 2 {
		t.Fatalf("deliveries = %+v", out)
	}
}

// TestPerPortPruning: a batch of messages is replicated per port with
// only the matching subset in each replica (§VI-A).
func TestPerPortPruning(t *testing.T) {
	sw, sp := buildSwitch(t, `
stock == GOOGL: fwd(1)
stock == MSFT: fwd(2)
price > 90: fwd(2)
`, compiler.Options{})
	googl := itchMsg(sp, "GOOGL", 50, 10)
	msft := itchMsg(sp, "MSFT", 60, 10)
	pricey := itchMsg(sp, "AAPL", 95, 10)
	miss := itchMsg(sp, "ZZZ", 5, 10)
	out := sw.Process(&Packet{In: 0, Msgs: []*spec.Message{googl, msft, pricey, miss}}, 0)
	if len(out) != 2 {
		t.Fatalf("deliveries = %+v", out)
	}
	if out[0].Port != 1 || len(out[0].Msgs) != 1 || out[0].Msgs[0] != googl {
		t.Errorf("port 1 replica wrong: %+v", out[0])
	}
	if out[1].Port != 2 || len(out[1].Msgs) != 2 {
		t.Errorf("port 2 replica wrong: %+v", out[1])
	}
}

// TestRecirculation: batches deeper than the parse budget (default 4)
// recirculate, adding latency per extra pass (§VI-B).
func TestRecirculation(t *testing.T) {
	sw, sp := buildSwitch(t, "stock == GOOGL: fwd(1)", compiler.Options{})
	msgs := make([]*spec.Message, 10) // budget 4 → 3 passes
	for i := range msgs {
		msgs[i] = itchMsg(sp, "GOOGL", 50, 10)
	}
	out := sw.Process(&Packet{In: 0, Msgs: msgs}, 0)
	if len(out) != 1 {
		t.Fatalf("deliveries = %d", len(out))
	}
	wantLat := sw.Config().BaseLatency + 2*sw.Config().RecirculationLatency
	if out[0].Latency != wantLat {
		t.Errorf("latency = %v, want %v", out[0].Latency, wantLat)
	}
	if st := sw.Stats(); st.Recirculations != 2 {
		t.Errorf("recirculations = %d, want 2", st.Recirculations)
	}
}

// TestStatefulWindow: the avg(price) aggregate accumulates on matching
// packets and tumbles when the window expires.
func TestStatefulWindow(t *testing.T) {
	sw, sp := buildSwitch(t, "stock == GOOGL and avg(price, 100ms) > 60: fwd(1)",
		compiler.Options{LastHop: true})
	now := time.Duration(0)
	send := func(stock string, price int64) int {
		out := sw.Process(&Packet{In: 0, Msgs: []*spec.Message{itchMsg(sp, stock, price, 1)}}, now)
		return len(out)
	}
	// avg starts at 0 → no forward, but the register accumulates.
	if n := send("GOOGL", 100); n != 0 {
		t.Fatalf("first packet forwarded (avg was 0)")
	}
	// avg is now 100 > 60 → forward.
	now += time.Millisecond
	if n := send("GOOGL", 10); n != 1 {
		t.Fatalf("second packet not forwarded (avg=100)")
	}
	// avg now (100+10)/2 = 55 ≤ 60 → drop.
	now += time.Millisecond
	if n := send("GOOGL", 10); n != 1 {
		// avg=(110)/2=55 — wait: the third packet sees avg of first two.
		t.Logf("third packet: %d deliveries", n)
	}
	// MSFT traffic must not touch the GOOGL register.
	before := sw.State().Snapshot(now)
	send("MSFT", 1000)
	after := sw.State().Snapshot(now)
	for k := range before {
		if before[k] != after[k] {
			t.Errorf("register %s changed on non-matching packet: %d → %d", k, before[k], after[k])
		}
	}
	// Window tumble: after 100ms of silence the aggregate resets to 0.
	now += 200 * time.Millisecond
	if n := send("GOOGL", 100); n != 0 {
		t.Errorf("post-tumble packet forwarded; register should have reset")
	}
}

func TestTumblingRegisterMath(t *testing.T) {
	r := &register{agg: spec.AggAvg, window: 100 * time.Millisecond}
	r.update(0, 10)
	r.update(10*time.Millisecond, 20)
	if got := r.value(20 * time.Millisecond); got != 15 {
		t.Errorf("avg = %d, want 15", got)
	}
	if got := r.value(150 * time.Millisecond); got != 0 {
		t.Errorf("avg after tumble = %d, want 0", got)
	}
	r2 := &register{agg: spec.AggCount, window: time.Second}
	for i := 0; i < 5; i++ {
		r2.update(time.Duration(i)*time.Millisecond, 0)
	}
	if got := r2.value(10 * time.Millisecond); got != 5 {
		t.Errorf("count = %d", got)
	}
	r3 := &register{agg: spec.AggSum, window: time.Second}
	r3.update(0, 7)
	r3.update(0, 8)
	if got := r3.value(0); got != 15 {
		t.Errorf("sum = %d", got)
	}
}

func TestCustomAction(t *testing.T) {
	sp := spec.MustParse("dns", `
header dns_query {
    name : str16 @field;
}
`)
	rules, err := subscription.NewParser(sp).ParseRules("name == h105: answerDNS(10.0.0.105)")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(sp, rules, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := New("s1", nil, prog, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var gotIP string
	sw.HandleCustom("answerDNS", func(act subscription.Action, m *spec.Message, pkt *Packet) []Delivery {
		gotIP = act.Args[0]
		return []Delivery{{Port: pkt.In, Msgs: []*spec.Message{m}}}
	})
	m := spec.NewMessage(sp)
	m.MustSet("name", spec.StrVal("h105"))
	out := sw.Process(&Packet{In: 7, Msgs: []*spec.Message{m}}, 0)
	if gotIP != "10.0.0.105" {
		t.Errorf("handler got %q", gotIP)
	}
	if len(out) != 1 || out[0].Port != 7 {
		t.Errorf("response delivery = %+v", out)
	}
}

func TestInstallSwapsProgram(t *testing.T) {
	sw, sp := buildSwitch(t, "stock == GOOGL: fwd(1)", compiler.Options{})
	rules, err := subscription.NewParser(sp).ParseRules("stock == MSFT: fwd(2)")
	if err != nil {
		t.Fatal(err)
	}
	prog2, err := compiler.Compile(sp, rules, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Install(prog2); err != nil {
		t.Fatal(err)
	}
	out := sw.Process(&Packet{In: 0, Msgs: []*spec.Message{itchMsg(sp, "MSFT", 1, 1)}}, 0)
	if len(out) != 1 || out[0].Port != 2 {
		t.Fatalf("after install: %+v", out)
	}
	if got := sw.Process(&Packet{In: 0, Msgs: []*spec.Message{itchMsg(sp, "GOOGL", 1, 1)}}, 0); len(got) != 0 {
		t.Fatalf("old rules still active: %+v", got)
	}
}

func BenchmarkProcessSingleMessage(b *testing.B) {
	sw, sp := buildSwitch(b, `
stock == GOOGL and price > 50: fwd(1)
stock == MSFT: fwd(2)
price > 90: fwd(3)
`, compiler.Options{})
	pkt := &Packet{In: 0, Msgs: []*spec.Message{itchMsg(sp, "GOOGL", 60, 10)}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.Process(pkt, 0)
	}
}

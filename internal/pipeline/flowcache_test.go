package pipeline

import (
	"testing"
	"time"

	"camus/internal/compiler"
	"camus/internal/spec"
	"camus/internal/subscription"
)

// TestStreamSubscription exercises §VII-B: the first packet of a stream
// carries the application header and installs the flow decision;
// header-less continuation packets follow it.
func TestStreamSubscription(t *testing.T) {
	sw, sp := buildSwitch(t, "stock == GOOGL: fwd(1)\nstock == GOOGL: fwd(2)", compiler.Options{})
	const flow = FlowKey(0xABCD)

	// Continuation before any header packet: dropped (miss).
	if out := sw.Process(&Packet{In: 0, Flow: flow}, 0); len(out) != 0 {
		t.Fatalf("cold continuation forwarded: %+v", out)
	}
	if st := sw.Stats(); st.FlowMisses != 1 {
		t.Errorf("misses = %d", st.FlowMisses)
	}

	// First packet installs the decision (multicast to 1 and 2).
	first := sw.Process(&Packet{In: 0, Flow: flow, Msgs: []*spec.Message{itchMsg(sp, "GOOGL", 50, 1)}}, 0)
	if len(first) != 2 {
		t.Fatalf("first packet deliveries: %+v", first)
	}

	// Continuations follow without re-parsing the header.
	cont := sw.Process(&Packet{In: 0, Flow: flow, Bytes: 1000}, time.Millisecond)
	if len(cont) != 2 || cont[0].Port != 1 || cont[1].Port != 2 {
		t.Fatalf("continuation deliveries: %+v", cont)
	}
	if st := sw.Stats(); st.FlowHits != 1 {
		t.Errorf("hits = %d", st.FlowHits)
	}

	// Ingress suppression applies to continuations too.
	viaPort1 := sw.Process(&Packet{In: 1, Flow: flow}, 2*time.Millisecond)
	if len(viaPort1) != 1 || viaPort1[0].Port != 2 {
		t.Fatalf("ingress suppression: %+v", viaPort1)
	}

	// TTL expiry evicts the flow.
	late := sw.Process(&Packet{In: 0, Flow: flow}, 2*time.Minute)
	if len(late) != 0 {
		t.Fatalf("expired flow still forwarded: %+v", late)
	}
}

// TestStreamNonMatchingFirstPacket: a stream whose first packet matches
// nothing caches the drop decision.
func TestStreamNonMatchingFirstPacket(t *testing.T) {
	sw, sp := buildSwitch(t, "stock == GOOGL: fwd(1)", compiler.Options{})
	const flow = FlowKey(7)
	sw.Process(&Packet{In: 0, Flow: flow, Msgs: []*spec.Message{itchMsg(sp, "MSFT", 1, 1)}}, 0)
	out := sw.Process(&Packet{In: 0, Flow: flow}, time.Millisecond)
	if len(out) != 0 {
		t.Fatalf("continuation of dropped stream forwarded: %+v", out)
	}
	// It was a hit (cached drop), not a miss.
	if st := sw.Stats(); st.FlowHits != 1 || st.FlowMisses != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFlowCacheEviction(t *testing.T) {
	c := newFlowCache(4, time.Second)
	var acts subscription.ActionSet
	acts.Add(subscription.FwdAction(1))
	for i := 0; i < 10; i++ {
		c.install(FlowKey(i), acts, 0, 0)
	}
	if c.size() != 4 {
		t.Fatalf("size = %d, want 4 (capacity)", c.size())
	}
	// Oldest evicted, newest present.
	if _, ok := c.lookup(FlowKey(0), 0, 0); ok {
		t.Error("oldest flow still cached")
	}
	if _, ok := c.lookup(FlowKey(9), 0, 0); !ok {
		t.Error("newest flow evicted")
	}
	// Reinstalling an existing key must not grow the ring.
	c.install(FlowKey(9), acts, 0, 0)
	if c.size() != 4 {
		t.Errorf("size after reinstall = %d", c.size())
	}
}

func TestFlowCacheTTLRefresh(t *testing.T) {
	c := newFlowCache(10, 100*time.Millisecond)
	var acts subscription.ActionSet
	acts.Add(subscription.FwdAction(3))
	c.install(1, acts, 0, 0)
	// Touch at 80ms: refreshes to 180ms.
	if _, ok := c.lookup(1, 80*time.Millisecond, 0); !ok {
		t.Fatal("entry expired early")
	}
	if _, ok := c.lookup(1, 150*time.Millisecond, 0); !ok {
		t.Fatal("refresh did not extend TTL")
	}
	if _, ok := c.lookup(1, 400*time.Millisecond, 0); ok {
		t.Fatal("entry never expired")
	}
}

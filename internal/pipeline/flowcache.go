package pipeline

import (
	"time"

	"camus/internal/subscription"
)

// FlowKey identifies a stream (e.g. a 5-tuple hash computed by the
// parser).
type FlowKey uint64

// flowEntry is one cached stream decision, tagged with the program
// epoch it was compiled under.
type flowEntry struct {
	actions subscription.ActionSet
	expires time.Duration
	gen     uint64
}

// flowCache implements stream subscriptions (paper §VII-B): "Subscribing
// to streams where the header is only present in the first packet would
// require the switch to store the matching rule of the first packet, and
// apply it to subsequent packets in the stream." The first packet of a
// flow carries the application header; its forwarding decision is cached
// under the flow key and applied to header-less continuation packets.
//
// Decisions are epoch-tagged: a lookup only returns entries installed
// under the currently-running program generation, so a decision compiled
// from a program that has since been replaced by Install can never
// forward a packet (the stale §VII-B stream-state bug). The cache is not
// internally synchronized — each worker shard owns one instance and
// guards it with the shard lock.
type flowCache struct {
	entries map[FlowKey]flowEntry
	// order is a FIFO ring of keys for capacity eviction.
	order []FlowKey
	head  int
	cap   int
	ttl   time.Duration
}

func newFlowCache(capacity int, ttl time.Duration) *flowCache {
	if capacity <= 0 {
		capacity = 65536
	}
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	return &flowCache{
		entries: make(map[FlowKey]flowEntry, capacity),
		order:   make([]FlowKey, 0, capacity),
		cap:     capacity,
		ttl:     ttl,
	}
}

// install caches a flow's decision under program generation gen,
// evicting the oldest entry at capacity.
func (c *flowCache) install(key FlowKey, acts subscription.ActionSet, now time.Duration, gen uint64) {
	if _, exists := c.entries[key]; !exists {
		if len(c.order)-c.head >= c.cap {
			victim := c.order[c.head]
			c.head++
			delete(c.entries, victim)
			if c.head > c.cap {
				// Compact the ring backing array.
				c.order = append([]FlowKey(nil), c.order[c.head:]...)
				c.head = 0
			}
		}
		c.order = append(c.order, key)
	}
	c.entries[key] = flowEntry{actions: acts.Clone(), expires: now + c.ttl, gen: gen}
}

// lookup returns the cached decision for a flow, refreshing its TTL.
// Entries from a different program generation are dead: they miss (and
// are dropped) exactly like expired entries.
func (c *flowCache) lookup(key FlowKey, now time.Duration, gen uint64) (subscription.ActionSet, bool) {
	e, ok := c.entries[key]
	if !ok {
		return subscription.ActionSet{}, false
	}
	if now > e.expires || e.gen != gen {
		delete(c.entries, key)
		return subscription.ActionSet{}, false
	}
	e.expires = now + c.ttl
	c.entries[key] = e
	return e.actions, true
}

// purge drops every cached decision (program reinstall).
func (c *flowCache) purge() {
	c.entries = make(map[FlowKey]flowEntry)
	c.order = c.order[:0]
	c.head = 0
}

// size reports the live entry count.
func (c *flowCache) size() int { return len(c.entries) }

package pipeline

import (
	"time"

	"camus/internal/subscription"
)

// FlowKey identifies a stream (e.g. a 5-tuple hash computed by the
// parser).
type FlowKey uint64

// flowEntry is one cached stream decision.
type flowEntry struct {
	actions subscription.ActionSet
	expires time.Duration
}

// flowCache implements stream subscriptions (paper §VII-B): "Subscribing
// to streams where the header is only present in the first packet would
// require the switch to store the matching rule of the first packet, and
// apply it to subsequent packets in the stream." The first packet of a
// flow carries the application header; its forwarding decision is cached
// under the flow key and applied to header-less continuation packets.
type flowCache struct {
	entries map[FlowKey]flowEntry
	// order is a FIFO ring of keys for capacity eviction.
	order []FlowKey
	head  int
	cap   int
	ttl   time.Duration
}

func newFlowCache(capacity int, ttl time.Duration) *flowCache {
	if capacity <= 0 {
		capacity = 65536
	}
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	return &flowCache{
		entries: make(map[FlowKey]flowEntry, capacity),
		order:   make([]FlowKey, 0, capacity),
		cap:     capacity,
		ttl:     ttl,
	}
}

// install caches a flow's decision, evicting the oldest entry at
// capacity.
func (c *flowCache) install(key FlowKey, acts subscription.ActionSet, now time.Duration) {
	if _, exists := c.entries[key]; !exists {
		if len(c.order)-c.head >= c.cap {
			victim := c.order[c.head]
			c.head++
			delete(c.entries, victim)
			if c.head > c.cap {
				// Compact the ring backing array.
				c.order = append([]FlowKey(nil), c.order[c.head:]...)
				c.head = 0
			}
		}
		c.order = append(c.order, key)
	}
	c.entries[key] = flowEntry{actions: acts.Clone(), expires: now + c.ttl}
}

// lookup returns the cached decision for a flow, refreshing its TTL.
func (c *flowCache) lookup(key FlowKey, now time.Duration) (subscription.ActionSet, bool) {
	e, ok := c.entries[key]
	if !ok {
		return subscription.ActionSet{}, false
	}
	if now > e.expires {
		delete(c.entries, key)
		return subscription.ActionSet{}, false
	}
	e.expires = now + c.ttl
	c.entries[key] = e
	return e.actions, true
}

// size reports the live entry count.
func (c *flowCache) size() int { return len(c.entries) }

package pipeline

import (
	"sync"
	"time"
)

// shard is one worker's private slice of the dataplane: a flow-cache
// partition plus a stats block. Sharding follows the cache-aware
// per-core partitioning pattern from software packet-forwarding
// literature: each worker touches only its own mutable state on the
// hot path, so workers never contend on the flow cache, and the stats
// atomics are uncontended in the batch path.
//
// Shards are individually heap-allocated (the Switch holds pointers),
// so two shards' counters never share a cache line.
type shard struct {
	stats switchStats

	// mu guards flows. Per-shard rather than per-switch: in the batch
	// path exactly one worker owns the shard and the lock is
	// uncontended; it exists so that direct Process calls from
	// arbitrary goroutines that hash onto the same shard stay correct.
	mu    sync.Mutex
	flows *flowCache
}

// shardIndex maps a flow to its home shard. The mapping is pure, so a
// stream's continuation packets always land on the shard holding its
// cached decision, no matter which goroutine or batch carries them.
// Flow-less packets (Flow == 0) have no cached state and default to
// shard 0; ProcessBatch spreads them round-robin instead.
func (s *Switch) shardIndex(flow FlowKey) int {
	if len(s.shards) == 1 || flow == 0 {
		return 0
	}
	// Fibonacci hashing spreads adjacent flow keys across shards.
	h := uint64(flow) * 0x9E3779B97F4A7C15
	return int((h >> 32) % uint64(len(s.shards)))
}

// cachedFlows reports the total number of live flow-cache entries
// across shards (diagnostics, tests).
func (s *Switch) cachedFlows() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.flows.size()
		sh.mu.Unlock()
	}
	return n
}

// ProcessBatch runs a batch of packets through the dataplane at virtual
// time now and returns each packet's deliveries, indexed like pkts.
//
// Packets are partitioned across the switch's worker shards: packets
// with a flow identity go to the flow's home shard (preserving
// per-stream ordering and cache locality), flow-less packets are spread
// round-robin. Each worker processes its share in input order. With one
// worker the batch is executed inline, sequentially, and the results
// are bit-identical to calling Process per packet.
func (s *Switch) ProcessBatch(pkts []*Packet, now time.Duration) [][]Delivery {
	out := make([][]Delivery, len(pkts))
	if len(s.shards) == 1 || len(pkts) < 2 {
		for i, p := range pkts {
			out[i] = s.processOn(s.shards[s.shardIndex(p.Flow)], p, now)
		}
		return out
	}
	w := len(s.shards)
	assign := make([][]int32, w)
	per := len(pkts)/w + 1
	rr := 0
	for i, p := range pkts {
		var sh int
		if p.Flow != 0 {
			sh = s.shardIndex(p.Flow)
		} else {
			sh = rr
			rr++
			if rr == w {
				rr = 0
			}
		}
		if assign[sh] == nil {
			assign[sh] = make([]int32, 0, per)
		}
		assign[sh] = append(assign[sh], int32(i))
	}
	var wg sync.WaitGroup
	for sh := 0; sh < w; sh++ {
		if len(assign[sh]) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			own := s.shards[sh]
			for _, i := range assign[sh] {
				out[i] = s.processOn(own, pkts[i], now)
			}
		}(sh)
	}
	wg.Wait()
	return out
}

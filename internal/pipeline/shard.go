package pipeline

import (
	"sync"
	"time"

	"camus/internal/spec"
)

// shard is one worker's private slice of the dataplane: a flow-cache
// partition, a leaf-cache partition, a stats block, and the reusable
// hot-path workspaces. Sharding follows the cache-aware per-core
// partitioning pattern from software packet-forwarding literature:
// each worker touches only its own mutable state on the hot path, so
// workers never contend on the caches, and the stats atomics are
// uncontended in the batch path.
//
// Shards are individually heap-allocated (the Switch holds pointers),
// so two shards' counters never share a cache line.
type shard struct {
	stats switchStats

	// mu guards flows, leaf, scr, and the batch arenas. Per-shard
	// rather than per-switch: in the batch path exactly one worker owns
	// the shard and the lock is uncontended; it exists so that direct
	// Process calls from arbitrary goroutines that hash onto the same
	// shard stay correct.
	mu    sync.Mutex
	flows *flowCache
	leaf  *leafCache // nil when the leaf cache is disabled
	scr   procScratch

	// Fast-path output arenas, reset at the start of each batch run on
	// this shard. Handed-out delivery slices stay valid until the next
	// ProcessBatch call on the switch (growth abandons the old chunk to
	// the slices already pointing into it, so it never invalidates
	// results mid-batch).
	delArena arena[Delivery]
	msgArena arena[*spec.Message]
}

// procScratch is a shard's reusable ingress workspace: the per-port
// message buckets that replace the historical per-packet
// map[int][]*spec.Message, plus the leaf-cache probe key. Buckets are
// a linear-scanned slice because egress ports are few per packet and
// may be negative (e.g. routing's UpPort), ruling out dense indexing.
type procScratch struct {
	buckets []portBucket
	n       int
	key     leafKey
}

type portBucket struct {
	port int
	msgs []*spec.Message
}

func (p *procScratch) reset() { p.n = 0 }

// add appends m to port's bucket, reusing retired bucket capacity.
func (p *procScratch) add(port int, m *spec.Message) {
	for i := 0; i < p.n; i++ {
		if p.buckets[i].port == port {
			p.buckets[i].msgs = append(p.buckets[i].msgs, m)
			return
		}
	}
	if p.n < len(p.buckets) {
		b := &p.buckets[p.n]
		b.port = port
		b.msgs = append(b.msgs[:0], m)
	} else {
		p.buckets = append(p.buckets, portBucket{port: port, msgs: []*spec.Message{m}})
	}
	p.n++
}

// sort orders buckets[:n] by port (insertion sort: n is tiny, and
// sort.Slice's closure would allocate).
func (p *procScratch) sort() {
	b := p.buckets[:p.n]
	for i := 1; i < len(b); i++ {
		for j := i; j > 0 && b[j].port < b[j-1].port; j-- {
			b[j], b[j-1] = b[j-1], b[j]
		}
	}
}

// arena hands out capacity-clamped subslices of a chunked backing
// buffer. When a chunk fills, a fresh one is allocated and the old one
// is abandoned to the slices already handed out — growth never moves
// published results, and once the chunk matches the working set the
// steady state allocates nothing.
type arena[T any] struct {
	buf  []T
	used int
}

func (a *arena[T]) reset() { a.used = 0 }

func (a *arena[T]) alloc(n int) []T {
	if a.buf == nil || a.used+n > len(a.buf) {
		size := 2 * len(a.buf)
		if size < 1024 {
			size = 1024
		}
		for size < n {
			size *= 2
		}
		a.buf = make([]T, size)
		a.used = 0
	}
	s := a.buf[a.used : a.used+n : a.used+n]
	a.used += n
	return s
}

// localStats accumulates one batch run's counters on the stack; they
// commit to the shard atomics once per run instead of per message.
type localStats struct {
	packets, messages, matched, deliveries int64
	bytesIn, bytesOut                      int64
	leafHits, leafMisses, leafFills        int64
}

func (ls *localStats) commit(st *switchStats) {
	st.packets.Add(ls.packets)
	st.messages.Add(ls.messages)
	st.matched.Add(ls.matched)
	st.deliveries.Add(ls.deliveries)
	st.bytesIn.Add(ls.bytesIn)
	st.bytesOut.Add(ls.bytesOut)
	st.leafHits.Add(ls.leafHits)
	st.leafMisses.Add(ls.leafMisses)
	st.leafFills.Add(ls.leafFills)
}

// shardIndex maps a flow to its home shard. The mapping is pure, so a
// stream's continuation packets always land on the shard holding its
// cached decision, no matter which goroutine or batch carries them.
// Flow-less packets (Flow == 0) have no cached state and default to
// shard 0; ProcessBatch spreads them round-robin instead.
func (s *Switch) shardIndex(flow FlowKey) int {
	if len(s.shards) == 1 || flow == 0 {
		return 0
	}
	// Fibonacci hashing spreads adjacent flow keys across shards.
	h := uint64(flow) * 0x9E3779B97F4A7C15
	return int((h >> 32) % uint64(len(s.shards)))
}

// cachedFlows reports the total number of live flow-cache entries
// across shards (diagnostics, tests).
func (s *Switch) cachedFlows() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.flows.size()
		sh.mu.Unlock()
	}
	return n
}

// batchScratch is the switch-level reusable ProcessBatch workspace:
// the result index and the per-shard partition lists. Guarded by its
// own mutex so concurrent ProcessBatch callers fall back to private
// allocations instead of serializing.
type batchScratch struct {
	mu     sync.Mutex
	out    [][]Delivery
	assign [][]int32
}

// ProcessBatch runs a batch of packets through the dataplane at virtual
// time now and returns each packet's deliveries, indexed like pkts.
//
// Packets are partitioned across the switch's worker shards: packets
// with a flow identity go to the flow's home shard (preserving
// per-stream ordering and cache locality), flow-less packets are spread
// round-robin. Each worker processes its share in input order, taking
// the zero-alloc leaf-cache fast path for flow-less single-pass
// packets and falling back to the Process slow path for everything
// else; per-packet results are identical to calling Process.
//
// Reuse contract: the returned slice and the deliveries of fast-path
// packets live in per-switch buffers that are recycled by the *next*
// ProcessBatch call from any goroutine — results are valid until then.
// Concurrent ProcessBatch calls are safe (internal state is locked, and
// contended calls fall back to private buffers), but a caller that must
// read results while other goroutines may batch on the same switch
// should copy them first or publish via Process, whose results are
// always heap-fresh.
func (s *Switch) ProcessBatch(pkts []*Packet, now time.Duration) [][]Delivery {
	bs := &s.batch
	var out [][]Delivery
	locked := bs.mu.TryLock()
	if locked {
		defer bs.mu.Unlock()
		if cap(bs.out) < len(pkts) {
			bs.out = make([][]Delivery, len(pkts))
		}
		out = bs.out[:len(pkts)]
		for i := range out {
			out[i] = nil
		}
	} else {
		out = make([][]Delivery, len(pkts))
	}
	if len(s.shards) == 1 {
		s.runShard(s.shards[0], pkts, nil, out, now)
		return out
	}
	if len(pkts) < 2 {
		for i, p := range pkts {
			out[i] = s.processOn(s.shards[s.shardIndex(p.Flow)], p, now)
		}
		return out
	}
	w := len(s.shards)
	var assign [][]int32
	if locked {
		if bs.assign == nil {
			bs.assign = make([][]int32, w)
		}
		assign = bs.assign
		for i := range assign {
			assign[i] = assign[i][:0]
		}
	} else {
		assign = make([][]int32, w)
	}
	rr := 0
	for i, p := range pkts {
		var sh int
		if p.Flow != 0 {
			sh = s.shardIndex(p.Flow)
		} else {
			sh = rr
			rr++
			if rr == w {
				rr = 0
			}
		}
		assign[sh] = append(assign[sh], int32(i))
	}
	var wg sync.WaitGroup
	for sh := 0; sh < w; sh++ {
		if len(assign[sh]) == 0 {
			continue
		}
		wg.Add(1)
		// Captures passed as arguments: a closure capturing out/pkts by
		// reference would heap-allocate their headers on every call,
		// including the single-shard path that never reaches this loop.
		go func(sh *shard, idxs []int32, pkts []*Packet, out [][]Delivery) {
			defer wg.Done()
			s.runShard(sh, pkts, idxs, out, now)
		}(s.shards[sh], assign[sh], pkts, out)
	}
	wg.Wait()
	return out
}

// runShard executes one shard's share of a batch. idxs selects the
// packets (nil = the whole batch, single-shard case). The fast path
// requires a leaf-cacheable stateless program (epoch fastOK) and an
// uncontended shard; otherwise every packet takes the slow path.
func (s *Switch) runShard(sh *shard, pkts []*Packet, idxs []int32, out [][]Delivery, now time.Duration) {
	ep := s.epoch.Load()
	fast := ep.leaf != nil && ep.leaf.fastOK && sh.leaf != nil && sh.mu.TryLock()
	if !fast {
		if idxs == nil {
			for i, p := range pkts {
				out[i] = s.processOn(sh, p, now)
			}
			return
		}
		for _, i := range idxs {
			out[i] = s.processOn(sh, pkts[i], now)
		}
		return
	}
	passBudget := 1 << 30
	if s.static != nil && s.static.MaxParsedMessages > 0 {
		passBudget = s.static.MaxParsedMessages
	}
	var ls localStats
	// bail collects packets the fast path cannot serve; they re-run on
	// the slow path after the shard lock is released. Call-local (not
	// shard state): it is consumed after the unlock, where shard fields
	// would race with the next batch's reset. Bailing implies the
	// allocating slow path anyway, so the lazy append costs nothing in
	// the all-fast steady state.
	var bail []int32
	sh.delArena.reset()
	sh.msgArena.reset()
	n := len(pkts)
	if idxs != nil {
		n = len(idxs)
	}
	for j := 0; j < n; j++ {
		i := j
		if idxs != nil {
			i = int(idxs[j])
		}
		p := pkts[i]
		// Stream packets (flow state), empty packets, and batches
		// needing recirculation re-run on the slow path.
		if p.Flow != 0 || len(p.Msgs) == 0 || len(p.Msgs) > passBudget {
			bail = append(bail, int32(i))
			continue
		}
		d, ok := s.fastOne(sh, ep, p, &ls)
		if !ok {
			bail = append(bail, int32(i))
			continue
		}
		out[i] = d
	}
	ls.commit(&sh.stats)
	sh.mu.Unlock()
	// Bailed packets run after the lock is released: processOn takes
	// the shard lock itself (flow install, scratch ownership).
	for _, i := range bail {
		out[i] = s.processOn(sh, pkts[i], now)
	}
}

// fastOne runs one flow-less single-pass packet against the leaf cache
// with zero allocations. Caller holds sh.mu. ok=false means the packet
// needs the slow path (stateful or custom-action leaf); any partial
// stats are rolled back and the arenas are untouched (deliveries are
// emitted only after the whole packet qualifies).
func (s *Switch) fastOne(sh *shard, ep *epoch, pkt *Packet, ls *localStats) ([]Delivery, bool) {
	save := *ls
	ls.packets++
	ls.bytesIn += int64(pkt.Bytes)
	scr := &sh.scr
	scr.reset()
	for _, m := range pkt.Msgs {
		ls.messages++
		buildLeafKey(ep.leaf, m, &scr.key)
		if e := sh.leaf.probe(&scr.key, ep.gen); e != nil {
			ls.leafHits++
			if e.nports > 0 {
				ls.matched++
				for _, port := range e.ports[:e.nports] {
					p := int(port)
					if s.cfg.DropOnIngressPort && p == pkt.In {
						continue
					}
					scr.add(p, m)
				}
			}
			continue
		}
		ls.leafMisses++
		// fastOK epochs have no aggregate stages, so the walk needs no
		// state reader.
		le, pure := ep.prog.LookupKeyed(m, nil, ep.leaf.keyStage)
		if le != nil && (len(le.Updates) > 0 || len(le.Actions.Custom) > 0) {
			*ls = save
			return nil, false
		}
		if pure && (le == nil || len(le.Actions.Ports) <= LeafMaxPorts) {
			if le == nil {
				sh.leaf.fill(&scr.key, ep.gen, nil)
			} else {
				sh.leaf.fill(&scr.key, ep.gen, le.Actions.Ports)
			}
			ls.leafFills++
		}
		if le == nil || le.Actions.IsEmpty() {
			continue
		}
		ls.matched++
		for _, port := range le.Actions.Ports {
			if s.cfg.DropOnIngressPort && port == pkt.In {
				continue
			}
			scr.add(port, m)
		}
	}
	scr.sort()
	out := sh.delArena.alloc(scr.n)
	for i := 0; i < scr.n; i++ {
		b := &scr.buckets[i]
		msgs := sh.msgArena.alloc(len(b.msgs))
		copy(msgs, b.msgs)
		out[i] = Delivery{Port: b.port, Msgs: msgs, Latency: s.cfg.BaseLatency}
		if len(pkt.Msgs) > 0 {
			ls.bytesOut += int64(pkt.Bytes * len(b.msgs) / len(pkt.Msgs))
		}
	}
	ls.deliveries += int64(scr.n)
	return out, true
}

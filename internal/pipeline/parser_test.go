package pipeline

import (
	"testing"

	"camus/internal/compiler"
	"camus/internal/formats"
	"camus/internal/spec"
	"camus/internal/subscription"
)

// TestProcessBytes runs the full dataplane path on wire bytes: MoldUDP
// batch → parser → pipeline → per-port pruned replicas.
func TestProcessBytes(t *testing.T) {
	rules, err := subscription.NewParser(formats.ITCH).ParseRules(`
stock == GOOGL: fwd(1)
stock == MSFT: fwd(2)
`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(formats.ITCH, rules, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	static, err := compiler.GenerateStatic(formats.ITCH, compiler.StaticOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := New("wire", static, prog, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	// No parser installed → error.
	if _, err := sw.ProcessBytes([]byte{1, 2, 3}, 0, 0); err == nil {
		t.Fatal("ProcessBytes without parser succeeded")
	}
	sw.SetParser(ParserFunc(func(data []byte) ([]*spec.Message, error) {
		return formats.DecodeITCHFeed(data)
	}))

	wire, err := formats.EncodeITCHFeed("S", 1, []*formats.Order{
		{Stock: "GOOGL", Price: 10, Shares: 1},
		{Stock: "MSFT", Price: 20, Shares: 2},
		{Stock: "ZZZ", Price: 30, Shares: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sw.ProcessBytes(wire, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("deliveries = %+v", out)
	}
	if out[0].Port != 1 || len(out[0].Msgs) != 1 {
		t.Errorf("port 1 replica: %+v", out[0])
	}
	if v, _ := out[0].Msgs[0].GetRef("stock"); v.Str != "GOOGL" {
		t.Errorf("port 1 got %q", v.Str)
	}
	if out[1].Port != 2 || len(out[1].Msgs) != 1 {
		t.Errorf("port 2 replica: %+v", out[1])
	}

	// Garbage bytes increment ParseErrors.
	if _, err := sw.ProcessBytes([]byte{0xFF}, 0, 0); err == nil {
		t.Fatal("garbage parsed")
	}
	if st := sw.Stats(); st.ParseErrors != 1 {
		t.Errorf("ParseErrors = %d", st.ParseErrors)
	}
}

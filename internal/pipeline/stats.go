package pipeline

import "sync/atomic"

// StatsSnapshot is an immutable copy of the dataplane counters,
// aggregated across all worker shards at read time. Obtain one via
// Switch.Stats(); the zero value is an empty snapshot.
type StatsSnapshot struct {
	Packets        int64 // packets processed
	Messages       int64 // messages evaluated
	Matched        int64 // messages matching ≥1 subscription
	Deliveries     int64 // egress replicas emitted
	Recirculations int64 // extra parser passes (§VI-B)
	StateUpdates   int64 // register updates
	FlowHits       int64 // continuation packets served from the flow cache
	FlowMisses     int64 // continuation packets with no cached flow (dropped)
	LeafHits       int64 // messages served from the leaf cache (DESIGN.md §16)
	LeafMisses     int64 // messages that walked the match stages
	LeafFills      int64 // leaf-cache fills (pure, admissible outcomes)
	ParseErrors    int64 // raw packets the parser rejected
	BytesIn        int64
	BytesOut       int64
}

// add returns the element-wise sum of two snapshots.
func (a StatsSnapshot) add(b StatsSnapshot) StatsSnapshot {
	a.Packets += b.Packets
	a.Messages += b.Messages
	a.Matched += b.Matched
	a.Deliveries += b.Deliveries
	a.Recirculations += b.Recirculations
	a.StateUpdates += b.StateUpdates
	a.FlowHits += b.FlowHits
	a.FlowMisses += b.FlowMisses
	a.LeafHits += b.LeafHits
	a.LeafMisses += b.LeafMisses
	a.LeafFills += b.LeafFills
	a.ParseErrors += b.ParseErrors
	a.BytesIn += b.BytesIn
	a.BytesOut += b.BytesOut
	return a
}

// switchStats is one shard's private counter block. Counters are
// atomics so that direct Process calls from arbitrary goroutines that
// collapse onto the same shard (e.g. flow-less packets on shard 0)
// remain race-free; in the steady ProcessBatch path each shard is
// written by exactly one worker, so the atomics are uncontended.
type switchStats struct {
	packets        atomic.Int64
	messages       atomic.Int64
	matched        atomic.Int64
	deliveries     atomic.Int64
	recirculations atomic.Int64
	stateUpdates   atomic.Int64
	flowHits       atomic.Int64
	flowMisses     atomic.Int64
	leafHits       atomic.Int64
	leafMisses     atomic.Int64
	leafFills      atomic.Int64
	parseErrors    atomic.Int64
	bytesIn        atomic.Int64
	bytesOut       atomic.Int64
}

func (st *switchStats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		Packets:        st.packets.Load(),
		Messages:       st.messages.Load(),
		Matched:        st.matched.Load(),
		Deliveries:     st.deliveries.Load(),
		Recirculations: st.recirculations.Load(),
		StateUpdates:   st.stateUpdates.Load(),
		FlowHits:       st.flowHits.Load(),
		FlowMisses:     st.flowMisses.Load(),
		LeafHits:       st.leafHits.Load(),
		LeafMisses:     st.leafMisses.Load(),
		LeafFills:      st.leafFills.Load(),
		ParseErrors:    st.parseErrors.Load(),
		BytesIn:        st.bytesIn.Load(),
		BytesOut:       st.bytesOut.Load(),
	}
}

func (st *switchStats) reset() {
	st.packets.Store(0)
	st.messages.Store(0)
	st.matched.Store(0)
	st.deliveries.Store(0)
	st.recirculations.Store(0)
	st.stateUpdates.Store(0)
	st.flowHits.Store(0)
	st.flowMisses.Store(0)
	st.leafHits.Store(0)
	st.leafMisses.Store(0)
	st.leafFills.Store(0)
	st.parseErrors.Store(0)
	st.bytesIn.Store(0)
	st.bytesOut.Store(0)
}

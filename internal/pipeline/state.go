// Package pipeline is the software switch dataplane: it executes the
// static pipeline + compiled program that the Camus compiler emits,
// standing in for the Tofino ASIC of the paper's testbed. It implements
// batched-message parsing with recirculation (§VI), per-port message
// pruning via port masks (§VI-A), multicast replication, stateful
// aggregates over tumbling windows (§II), and custom actions (§VIII-C5).
package pipeline

import (
	"sync"
	"time"

	"camus/internal/compiler"
	"camus/internal/spec"
	"camus/internal/subscription"
)

// register is one stateful aggregate over a tumbling window: the window
// [start, start+window) accumulates count and sum; when the window rolls,
// the aggregate restarts from zero (paper §II: count, sum, average over
// tumbling windows).
type register struct {
	agg    spec.AggFunc
	window time.Duration
	start  time.Duration // virtual time of window start
	count  int64
	sum    int64
}

func (r *register) roll(now time.Duration) {
	if r.window <= 0 {
		return
	}
	if now-r.start >= r.window {
		// Tumble to the window containing now.
		elapsed := (now - r.start) / r.window
		r.start += elapsed * r.window
		r.count, r.sum = 0, 0
	}
}

func (r *register) update(now time.Duration, v int64) {
	r.roll(now)
	r.count++
	r.sum += v
}

func (r *register) value(now time.Duration) int64 {
	r.roll(now)
	switch r.agg {
	case spec.AggCount:
		return r.count
	case spec.AggSum:
		return r.sum
	case spec.AggAvg:
		if r.count == 0 {
			return 0
		}
		return r.sum / r.count
	default:
		return 0
	}
}

// StateTable holds a switch's stateful registers, keyed by aggregate key
// (subscription.FieldRef.Key). It implements subscription.StateReader
// when bound to a read time via At. The
// register set is shared by every worker shard of a switch, so all
// access — including reads, which roll tumbling windows — goes through
// an internal lock.
type StateTable struct {
	// mu guards the registers. The key set is fixed at construction;
	// the lock protects the per-register window state (count/sum/start),
	// which mutates on reads as well as updates.
	mu   sync.Mutex
	regs map[string]*register
	// fieldOf maps aggregate key → the packet field fed into the
	// register on update (nil for count()).
	fieldOf map[string]*spec.Field
}

// NewStateTable allocates registers for every aggregate the program's
// universe references — the dynamic linking of state variables to the
// pre-allocated register block (§V-A).
func NewStateTable(p *compiler.Program) *StateTable {
	st := &StateTable{
		regs:    make(map[string]*register),
		fieldOf: make(map[string]*spec.Field),
	}
	for _, fv := range p.BDD.Universe.AggregateFields() {
		st.regs[fv.Key()] = &register{agg: fv.Ref.Agg, window: fv.Ref.Window}
		st.fieldOf[fv.Key()] = fv.Ref.Field
	}
	return st
}

// Update feeds a packet into the named register (an __update directive
// from a leaf entry). Safe for concurrent use.
func (st *StateTable) Update(key string, m *spec.Message, now time.Duration) {
	r, ok := st.regs[key]
	if !ok {
		return
	}
	var v int64
	if f := st.fieldOf[key]; f != nil {
		idx, ok := m.Spec().SubscribableIndex(f)
		if !ok {
			return
		}
		val, present := m.Get(idx)
		if !present {
			return
		}
		v = val.Int
	}
	st.mu.Lock()
	r.update(now, v)
	st.mu.Unlock()
}

// At returns a StateReader view of the registers at a virtual time.
func (st *StateTable) At(now time.Duration) subscription.StateReader {
	return stateAt{t: st, now: now}
}

type stateAt struct {
	t   *StateTable
	now time.Duration
}

// AggValue implements subscription.StateReader.
func (s stateAt) AggValue(key string) int64 {
	r, ok := s.t.regs[key]
	if !ok {
		return 0
	}
	s.t.mu.Lock()
	v := r.value(s.now)
	s.t.mu.Unlock()
	return v
}

// Snapshot returns the current value of every register (diagnostics).
func (st *StateTable) Snapshot(now time.Duration) map[string]int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[string]int64, len(st.regs))
	for k, r := range st.regs {
		out[k] = r.value(now)
	}
	return out
}

package pipeline

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"camus/internal/compiler"
	"camus/internal/spec"
	"camus/internal/subscription"
)

// Packet is a network packet traversing the switch: one or more
// application messages batched into a single datagram (e.g. MoldUDP
// carrying several ITCH messages, §VI).
type Packet struct {
	// In is the ingress port.
	In int
	// Msgs are the decoded application messages, in wire order.
	Msgs []*spec.Message
	// Bytes is the wire size (for traffic accounting); zero is allowed.
	Bytes int
	// Flow optionally identifies the packet's stream for stream
	// subscriptions (§VII-B). The first packet of a flow carries the
	// application header (Msgs non-empty) and installs the flow's
	// forwarding decision; header-less continuation packets (Msgs empty,
	// Flow set) reuse it.
	Flow FlowKey
}

// Delivery is one egress packet: the replica for a port after per-port
// message pruning (§VI-A).
type Delivery struct {
	// Port is the egress port.
	Port int
	// Msgs are the messages that matched subscriptions on this port, in
	// wire order (the pruned replica).
	Msgs []*spec.Message
	// Latency is the switch transit time for this replica, including
	// recirculation passes.
	Latency time.Duration
}

// CustomActionFunc handles a non-fwd action (e.g. answerDNS). It may
// return extra deliveries (crafted response packets). Handlers run on
// whichever worker shard processes the packet, so they must be safe for
// concurrent invocation when the switch runs more than one worker.
type CustomActionFunc func(act subscription.Action, m *spec.Message, pkt *Packet) []Delivery

// Config tunes the switch model. Construct it via DefaultConfig plus
// Options (see NewSwitch); direct literal construction is deprecated
// and kept only for internal migration.
type Config struct {
	// BaseLatency is the one-pass pipeline transit time. The paper
	// reports pipeline latency under 1µs (§VIII-F1).
	BaseLatency time.Duration
	// RecirculationLatency is the added cost of one recirculation pass.
	RecirculationLatency time.Duration
	// DropOnIngressPort suppresses forwarding a packet back out its
	// ingress port (standard switch behaviour; Algorithm 1's "other than
	// the ingress port").
	DropOnIngressPort bool
	// FlowCacheSize bounds the stream-subscription cache (§VII-B),
	// totalled across worker shards; 0 uses the default (65536 flows).
	FlowCacheSize int
	// FlowTTL expires idle streams; 0 uses the default (30s).
	FlowTTL time.Duration
	// Workers is the number of dataplane shards ProcessBatch fans out
	// across; 0 or 1 selects the sequential single-shard dataplane.
	Workers int
	// LeafCacheSize bounds the hot-rule leaf cache (DESIGN.md §16),
	// totalled across worker shards and rounded up to a power of two
	// per shard; 0 uses the default (65536 entries), negative disables
	// the cache.
	LeafCacheSize int
}

// DefaultConfig returns the Tofino-like defaults.
func DefaultConfig() Config {
	return Config{
		BaseLatency:          600 * time.Nanosecond,
		RecirculationLatency: 400 * time.Nanosecond,
		DropOnIngressPort:    true,
	}
}

// epoch is one immutable (Program, StateTable) generation. Install
// publishes a new epoch with a single atomic pointer swap, so packet
// workers always observe a consistent program/state pair and never a
// half-updated switch.
type epoch struct {
	gen   uint64
	prog  *compiler.Program
	state *StateTable
	// leaf is the precomputed leaf-cache key layout and admissibility
	// summary for prog, or nil when the cache cannot serve it. It is
	// derived once per Install so the packet path never inspects the
	// program structure (let alone the BDD).
	leaf *leafMeta
}

// leafMeta is the per-epoch leaf-cache admissibility set: which stages
// participate in the cache key, which subscribable indices feed the
// key slots, and how many leaf rows are cacheable. Recomputed on every
// Install (the epoch swap is what invalidates the cache, via the
// generation tag).
type leafMeta struct {
	// keyStage marks, per pipeline stage, whether a taken transition
	// keeps a walk pure: stages matching a key packet field or a header
	// validity bit (both captured by the cache key). See
	// Program.LookupKeyed.
	keyStage []bool
	// keyIdx are the subscribable field indices backing the key slots.
	keyIdx [LeafKeySlots]int32
	nslots int
	// admissible counts leaf rows whose outcomes are cacheable.
	admissible int
	// fastOK reports that the program has no aggregate stages, so the
	// zero-alloc batch path may run messages without a state reader.
	fastOK bool
}

// newEpoch assembles an epoch, precomputing the leaf-cache metadata.
func newEpoch(gen uint64, prog *compiler.Program, state *StateTable) *epoch {
	return &epoch{gen: gen, prog: prog, state: state, leaf: buildLeafMeta(prog)}
}

// buildLeafMeta derives the leaf-cache key layout for a program, or
// nil when the spec cannot be keyed (no packable fields, or more
// headers than the validity mask holds).
func buildLeafMeta(prog *compiler.Program) *leafMeta {
	sp := prog.Spec
	if len(sp.Headers) > 64 {
		return nil
	}
	keyFields := LeafKeyFields(sp)
	if len(keyFields) == 0 {
		return nil
	}
	lm := &leafMeta{nslots: len(keyFields)}
	isKey := make(map[*spec.Field]bool, len(keyFields))
	for s, f := range keyFields {
		idx, ok := sp.SubscribableIndex(f)
		if !ok {
			return nil
		}
		lm.keyIdx[s] = int32(idx)
		isKey[f] = true
	}
	lm.keyStage = make([]bool, len(prog.Stages))
	hasAgg := false
	for i, t := range prog.Stages {
		switch t.Field.Ref.Kind {
		case subscription.PacketRef:
			lm.keyStage[i] = isKey[t.Field.Ref.Field]
		case subscription.ValidityRef:
			lm.keyStage[i] = true
		default: // AggregateRef
			hasAgg = true
		}
	}
	lm.fastOK = !hasAgg
	for _, le := range prog.Leaf {
		if leafAdmissible(le) {
			lm.admissible++
		}
	}
	return lm
}

// leafAdmissible reports whether a leaf row's outcome may be cached:
// stateless (no register updates), no custom actions, and a port set
// that fits the inline entry.
func leafAdmissible(le *compiler.LeafEntry) bool {
	return len(le.Updates) == 0 && len(le.Actions.Custom) == 0 &&
		len(le.Actions.Ports) <= LeafMaxPorts
}

// Switch is a software Camus switch: a static pipeline bound to a
// compiled program, with stateful registers and custom action handlers.
//
// The dataplane is sharded: each worker shard owns a private flow-cache
// partition and stats block, flows hash to a fixed shard, and the
// installed (Program, StateTable) pair is swapped atomically by
// Install. Process and ProcessBatch may therefore be called from many
// goroutines concurrently, including concurrently with Install.
// Configuration (SetParser, HandleCustom) is not synchronized and must
// complete before traffic starts.
type Switch struct {
	// ID names the switch (diagnostics, netsim).
	ID string

	static  *compiler.StaticPipeline
	cfg     Config
	epoch   atomic.Pointer[epoch]
	shards  []*shard
	customs map[string]CustomActionFunc
	parser  Parser

	// installMu serializes control-plane updates (Install) so epoch
	// generations advance monotonically.
	installMu sync.Mutex

	// batch is the reusable ProcessBatch workspace (result and
	// partition buffers); see the ProcessBatch reuse contract.
	batch batchScratch
}

// New builds a switch from a static pipeline and a compiled program.
// Deprecated-style entry point retained for internal callers still
// holding a Config; new code should use NewSwitch with Options.
func New(id string, static *compiler.StaticPipeline, prog *compiler.Program, cfg Config) (*Switch, error) {
	if prog == nil {
		return nil, fmt.Errorf("pipeline: New: nil program")
	}
	if static != nil {
		if err := static.Validate(prog); err != nil {
			return nil, err
		}
	}
	cfg = cfg.normalize()
	s := &Switch{
		ID:      id,
		static:  static,
		cfg:     cfg,
		customs: make(map[string]CustomActionFunc),
	}
	perShard := (cfg.FlowCacheSize + cfg.Workers - 1) / cfg.Workers
	perLeaf := 0
	if cfg.LeafCacheSize > 0 {
		perLeaf = (cfg.LeafCacheSize + cfg.Workers - 1) / cfg.Workers
	}
	s.shards = make([]*shard, cfg.Workers)
	for i := range s.shards {
		sh := &shard{flows: newFlowCache(perShard, cfg.FlowTTL)}
		if perLeaf > 0 {
			sh.leaf = newLeafCache(perLeaf)
		}
		s.shards[i] = sh
	}
	s.epoch.Store(newEpoch(0, prog, NewStateTable(prog)))
	return s, nil
}

// NewSwitch builds a switch from DefaultConfig plus functional options
// — the one supported way to configure a dataplane.
func NewSwitch(id string, static *compiler.StaticPipeline, prog *compiler.Program, opts ...Option) (*Switch, error) {
	cfg := DefaultConfig()
	for _, fn := range opts {
		fn(&cfg)
	}
	return New(id, static, prog, cfg)
}

// Config returns a copy of the switch's frozen configuration.
func (s *Switch) Config() Config { return s.cfg }

// Workers reports the number of dataplane shards.
func (s *Switch) Workers() int { return len(s.shards) }

// Program returns the currently-installed dynamic configuration.
func (s *Switch) Program() *compiler.Program { return s.epoch.Load().prog }

// State returns the stateful registers of the current epoch.
func (s *Switch) State() *StateTable { return s.epoch.Load().state }

// Stats returns a snapshot of the dataplane counters, summed across
// worker shards.
func (s *Switch) Stats() StatsSnapshot {
	var t StatsSnapshot
	for _, sh := range s.shards {
		t = t.add(sh.stats.snapshot())
	}
	return t
}

// ResetStats zeroes every shard's counters.
func (s *Switch) ResetStats() {
	for _, sh := range s.shards {
		sh.stats.reset()
	}
}

// Install replaces the dynamic program (a control-plane rule update,
// §VIII-G3) with a single atomic epoch swap: in-flight packets finish
// against the epoch they loaded, later packets see the new program.
// Registers are re-linked; windows restart. Cached stream decisions
// were compiled from the outgoing program, so every flow-cache shard is
// invalidated — continuation packets re-miss until their stream's next
// header packet installs a fresh decision (fixes the stale §VII-B
// forwarding bug).
func (s *Switch) Install(prog *compiler.Program) error {
	if prog == nil {
		return fmt.Errorf("pipeline: Install: nil program")
	}
	if s.static != nil {
		if err := s.static.Validate(prog); err != nil {
			return err
		}
	}
	s.installMu.Lock()
	old := s.epoch.Load()
	s.epoch.Store(newEpoch(old.gen+1, prog, NewStateTable(prog)))
	s.installMu.Unlock()
	// Purge after the swap: any straggler still installing decisions
	// under the old epoch is defeated by the generation tag on cache
	// entries, so post-purge lookups can never observe a stale decision.
	// The leaf cache needs no purge at all for the same reason — every
	// entry carries the generation it was filled under and dies on
	// mismatch; the swap above is the invalidation.
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.flows.purge()
		sh.mu.Unlock()
	}
	return nil
}

// LeafCacheStats reports the leaf cache's cumulative counters and the
// current epoch's admissibility gauges. Separate from Stats because
// Admissible/Capacity are configuration-derived gauges, not resettable
// traffic counters.
func (s *Switch) LeafCacheStats() LeafCacheStats {
	var out LeafCacheStats
	ep := s.epoch.Load()
	for _, sh := range s.shards {
		if sh.leaf != nil {
			out.Capacity += len(sh.leaf.entries)
		}
		out.Hits += sh.stats.leafHits.Load()
		out.Misses += sh.stats.leafMisses.Load()
		out.Fills += sh.stats.leafFills.Load()
	}
	out.Enabled = out.Capacity > 0 && ep.leaf != nil
	if ep.leaf != nil {
		out.Admissible = ep.leaf.admissible
	}
	return out
}

// HandleCustom registers a handler for a custom action name. Call
// before traffic starts.
func (s *Switch) HandleCustom(name string, fn CustomActionFunc) {
	s.customs[name] = fn
}

// Process runs a packet through the pipeline at virtual time now and
// returns the egress deliveries. Safe for concurrent use; the packet is
// executed on the shard its flow hashes to (flow-less packets use
// shard 0 — use ProcessBatch to spread those across workers).
//
// Per §VI: the ingress pass evaluates each message and builds a port
// mask; the crossbar replicates the packet once per egress port; egress
// prunes each replica to the messages whose mask includes the port.
// Batches deeper than the static pipeline's parse budget recirculate,
// adding latency.
func (s *Switch) Process(pkt *Packet, now time.Duration) []Delivery {
	return s.processOn(s.shards[s.shardIndex(pkt.Flow)], pkt, now)
}

// processOn executes one packet on one shard against the current epoch.
func (s *Switch) processOn(sh *shard, pkt *Packet, now time.Duration) []Delivery {
	ep := s.epoch.Load()
	st := &sh.stats
	st.packets.Add(1)
	st.bytesIn.Add(int64(pkt.Bytes))

	// Stream continuation: no application header, forward per the
	// decision cached by the stream's first packet (§VII-B).
	if len(pkt.Msgs) == 0 && pkt.Flow != 0 {
		sh.mu.Lock()
		acts, ok := sh.flows.lookup(pkt.Flow, now, ep.gen)
		sh.mu.Unlock()
		if !ok {
			st.flowMisses.Add(1)
			return nil
		}
		st.flowHits.Add(1)
		out := make([]Delivery, 0, len(acts.Ports))
		for _, port := range acts.Ports {
			if s.cfg.DropOnIngressPort && port == pkt.In {
				continue
			}
			out = append(out, Delivery{Port: port, Latency: s.cfg.BaseLatency})
			st.bytesOut.Add(int64(pkt.Bytes))
		}
		st.deliveries.Add(int64(len(out)))
		return out
	}

	passBudget := len(pkt.Msgs)
	if s.static != nil && s.static.MaxParsedMessages > 0 {
		passBudget = s.static.MaxParsedMessages
	}
	passes := 1
	if len(pkt.Msgs) > passBudget {
		passes += (len(pkt.Msgs) - 1) / passBudget
		st.recirculations.Add(int64(passes - 1))
	}
	latency := s.cfg.BaseLatency + time.Duration(passes-1)*s.cfg.RecirculationLatency

	// Ingress workspace: the shard's reusable scratch replaces the
	// historical per-packet map allocation. TryLock keeps arbitrary
	// goroutines that collapse onto one shard from serializing — a
	// contended call falls back to a fresh private scratch (and skips
	// the leaf cache, which only the lock holder may touch).
	locked := sh.mu.TryLock()
	scr := &sh.scr
	if !locked {
		scr = &procScratch{}
	}
	scr.reset()
	useLeaf := locked && sh.leaf != nil && ep.leaf != nil

	var flowPorts subscription.ActionSet
	var customs []customHit
	for _, m := range pkt.Msgs {
		st.messages.Add(1)
		var le *compiler.LeafEntry
		pure := false
		if useLeaf {
			buildLeafKey(ep.leaf, m, &scr.key)
			if e := sh.leaf.probe(&scr.key, ep.gen); e != nil {
				// Cache hit: admissible entries are stateless by
				// construction, so forwarding is the whole effect.
				st.leafHits.Add(1)
				if e.nports > 0 {
					st.matched.Add(1)
					for _, port := range e.ports[:e.nports] {
						p := int(port)
						if pkt.Flow != 0 {
							flowPorts.Add(subscription.FwdAction(p))
						}
						if s.cfg.DropOnIngressPort && p == pkt.In {
							continue
						}
						scr.add(p, m)
					}
				}
				continue
			}
			st.leafMisses.Add(1)
			le, pure = ep.prog.LookupKeyed(m, ep.state.At(now), ep.leaf.keyStage)
			// The FIB cache-fill rule: memoize only outcomes that are a
			// pure function of the cache key (walk purity) and whose
			// action sets are stateless — a cached leaf then subsumes
			// every decision reachable from its key, so no overlapping
			// higher-priority outcome can be hidden (DESIGN.md §16).
			if pure && (le == nil || leafAdmissible(le)) {
				if le == nil {
					sh.leaf.fill(&scr.key, ep.gen, nil)
				} else {
					sh.leaf.fill(&scr.key, ep.gen, le.Actions.Ports)
				}
				st.leafFills.Add(1)
			}
		} else {
			le = ep.prog.Lookup(m, ep.state.At(now))
		}
		if le == nil {
			continue
		}
		// State updates fire for every message whose stateless context
		// matched, before forwarding semantics are applied.
		for _, key := range le.Updates {
			ep.state.Update(key, m, now)
			st.stateUpdates.Add(1)
		}
		if le.Actions.IsEmpty() {
			continue
		}
		st.matched.Add(1)
		for _, port := range le.Actions.Ports {
			// The cached stream decision keeps the full port set;
			// ingress suppression re-applies per continuation packet.
			if pkt.Flow != 0 {
				flowPorts.Add(subscription.FwdAction(port))
			}
			if s.cfg.DropOnIngressPort && port == pkt.In {
				continue
			}
			scr.add(port, m)
		}
		for _, act := range le.Actions.Custom {
			customs = append(customs, customHit{act: act, m: m})
		}
	}

	// Stream subscriptions: the header-bearing packet installs the
	// stream's merged port decision for its continuations (§VII-B),
	// tagged with the epoch it was compiled under.
	if pkt.Flow != 0 {
		if !locked {
			sh.mu.Lock()
		}
		sh.flows.install(pkt.Flow, flowPorts, now, ep.gen)
		if !locked {
			sh.mu.Unlock()
		}
	}

	// Crossbar + egress: one pruned replica per port, deterministic
	// port order. The returned deliveries are heap-fresh (callers —
	// netsim in particular — retain them past this call); only the
	// bucket scratch is reused.
	scr.sort()
	total := 0
	for i := 0; i < scr.n; i++ {
		total += len(scr.buckets[i].msgs)
	}
	out := make([]Delivery, 0, scr.n)
	if scr.n > 0 {
		flat := make([]*spec.Message, 0, total)
		for i := 0; i < scr.n; i++ {
			b := &scr.buckets[i]
			start := len(flat)
			flat = append(flat, b.msgs...)
			out = append(out, Delivery{Port: b.port, Msgs: flat[start:len(flat):len(flat)], Latency: latency})
			// Pruned replica bytes scale with the surviving message share.
			if len(pkt.Msgs) > 0 {
				st.bytesOut.Add(int64(pkt.Bytes * len(b.msgs) / len(pkt.Msgs)))
			}
		}
	}
	if locked {
		sh.mu.Unlock()
	}
	// Custom actions run outside the shard lock: handlers are user code
	// and may re-enter the switch.
	for _, ch := range customs {
		if fn, ok := s.customs[ch.act.Name]; ok {
			out = append(out, fn(ch.act, ch.m, pkt)...)
		}
	}
	st.deliveries.Add(int64(len(out)))
	return out
}

// customHit defers a matched custom action until the shard lock is
// released.
type customHit struct {
	act subscription.Action
	m   *spec.Message
}

// EvalMessage evaluates a single message (diagnostics / examples).
func (s *Switch) EvalMessage(m *spec.Message, now time.Duration) subscription.ActionSet {
	ep := s.epoch.Load()
	return ep.prog.Eval(m, ep.state.At(now))
}

func (s *Switch) String() string {
	prog := s.Program()
	return fmt.Sprintf("switch %s: %d stages, %d entries, %s",
		s.ID, len(prog.Stages)+1, prog.TotalEntries(), prog.Resources)
}

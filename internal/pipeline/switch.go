package pipeline

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"camus/internal/compiler"
	"camus/internal/spec"
	"camus/internal/subscription"
)

// Packet is a network packet traversing the switch: one or more
// application messages batched into a single datagram (e.g. MoldUDP
// carrying several ITCH messages, §VI).
type Packet struct {
	// In is the ingress port.
	In int
	// Msgs are the decoded application messages, in wire order.
	Msgs []*spec.Message
	// Bytes is the wire size (for traffic accounting); zero is allowed.
	Bytes int
	// Flow optionally identifies the packet's stream for stream
	// subscriptions (§VII-B). The first packet of a flow carries the
	// application header (Msgs non-empty) and installs the flow's
	// forwarding decision; header-less continuation packets (Msgs empty,
	// Flow set) reuse it.
	Flow FlowKey
}

// Delivery is one egress packet: the replica for a port after per-port
// message pruning (§VI-A).
type Delivery struct {
	// Port is the egress port.
	Port int
	// Msgs are the messages that matched subscriptions on this port, in
	// wire order (the pruned replica).
	Msgs []*spec.Message
	// Latency is the switch transit time for this replica, including
	// recirculation passes.
	Latency time.Duration
}

// CustomActionFunc handles a non-fwd action (e.g. answerDNS). It may
// return extra deliveries (crafted response packets). Handlers run on
// whichever worker shard processes the packet, so they must be safe for
// concurrent invocation when the switch runs more than one worker.
type CustomActionFunc func(act subscription.Action, m *spec.Message, pkt *Packet) []Delivery

// Config tunes the switch model. Construct it via DefaultConfig plus
// Options (see NewSwitch); direct literal construction is deprecated
// and kept only for internal migration.
type Config struct {
	// BaseLatency is the one-pass pipeline transit time. The paper
	// reports pipeline latency under 1µs (§VIII-F1).
	BaseLatency time.Duration
	// RecirculationLatency is the added cost of one recirculation pass.
	RecirculationLatency time.Duration
	// DropOnIngressPort suppresses forwarding a packet back out its
	// ingress port (standard switch behaviour; Algorithm 1's "other than
	// the ingress port").
	DropOnIngressPort bool
	// FlowCacheSize bounds the stream-subscription cache (§VII-B),
	// totalled across worker shards; 0 uses the default (65536 flows).
	FlowCacheSize int
	// FlowTTL expires idle streams; 0 uses the default (30s).
	FlowTTL time.Duration
	// Workers is the number of dataplane shards ProcessBatch fans out
	// across; 0 or 1 selects the sequential single-shard dataplane.
	Workers int
}

// DefaultConfig returns the Tofino-like defaults.
func DefaultConfig() Config {
	return Config{
		BaseLatency:          600 * time.Nanosecond,
		RecirculationLatency: 400 * time.Nanosecond,
		DropOnIngressPort:    true,
	}
}

// epoch is one immutable (Program, StateTable) generation. Install
// publishes a new epoch with a single atomic pointer swap, so packet
// workers always observe a consistent program/state pair and never a
// half-updated switch.
type epoch struct {
	gen   uint64
	prog  *compiler.Program
	state *StateTable
}

// Switch is a software Camus switch: a static pipeline bound to a
// compiled program, with stateful registers and custom action handlers.
//
// The dataplane is sharded: each worker shard owns a private flow-cache
// partition and stats block, flows hash to a fixed shard, and the
// installed (Program, StateTable) pair is swapped atomically by
// Install. Process and ProcessBatch may therefore be called from many
// goroutines concurrently, including concurrently with Install.
// Configuration (SetParser, HandleCustom) is not synchronized and must
// complete before traffic starts.
type Switch struct {
	// ID names the switch (diagnostics, netsim).
	ID string

	static  *compiler.StaticPipeline
	cfg     Config
	epoch   atomic.Pointer[epoch]
	shards  []*shard
	customs map[string]CustomActionFunc
	parser  Parser

	// installMu serializes control-plane updates (Install) so epoch
	// generations advance monotonically.
	installMu sync.Mutex
}

// New builds a switch from a static pipeline and a compiled program.
// Deprecated-style entry point retained for internal callers still
// holding a Config; new code should use NewSwitch with Options.
func New(id string, static *compiler.StaticPipeline, prog *compiler.Program, cfg Config) (*Switch, error) {
	if prog == nil {
		return nil, fmt.Errorf("pipeline: New: nil program")
	}
	if static != nil {
		if err := static.Validate(prog); err != nil {
			return nil, err
		}
	}
	cfg = cfg.normalize()
	s := &Switch{
		ID:      id,
		static:  static,
		cfg:     cfg,
		customs: make(map[string]CustomActionFunc),
	}
	perShard := (cfg.FlowCacheSize + cfg.Workers - 1) / cfg.Workers
	s.shards = make([]*shard, cfg.Workers)
	for i := range s.shards {
		s.shards[i] = &shard{flows: newFlowCache(perShard, cfg.FlowTTL)}
	}
	s.epoch.Store(&epoch{prog: prog, state: NewStateTable(prog)})
	return s, nil
}

// NewSwitch builds a switch from DefaultConfig plus functional options
// — the one supported way to configure a dataplane.
func NewSwitch(id string, static *compiler.StaticPipeline, prog *compiler.Program, opts ...Option) (*Switch, error) {
	cfg := DefaultConfig()
	for _, fn := range opts {
		fn(&cfg)
	}
	return New(id, static, prog, cfg)
}

// Config returns a copy of the switch's frozen configuration.
func (s *Switch) Config() Config { return s.cfg }

// Workers reports the number of dataplane shards.
func (s *Switch) Workers() int { return len(s.shards) }

// Program returns the currently-installed dynamic configuration.
func (s *Switch) Program() *compiler.Program { return s.epoch.Load().prog }

// State returns the stateful registers of the current epoch.
func (s *Switch) State() *StateTable { return s.epoch.Load().state }

// Stats returns a snapshot of the dataplane counters, summed across
// worker shards.
func (s *Switch) Stats() StatsSnapshot {
	var t StatsSnapshot
	for _, sh := range s.shards {
		t = t.add(sh.stats.snapshot())
	}
	return t
}

// ResetStats zeroes every shard's counters.
func (s *Switch) ResetStats() {
	for _, sh := range s.shards {
		sh.stats.reset()
	}
}

// Install replaces the dynamic program (a control-plane rule update,
// §VIII-G3) with a single atomic epoch swap: in-flight packets finish
// against the epoch they loaded, later packets see the new program.
// Registers are re-linked; windows restart. Cached stream decisions
// were compiled from the outgoing program, so every flow-cache shard is
// invalidated — continuation packets re-miss until their stream's next
// header packet installs a fresh decision (fixes the stale §VII-B
// forwarding bug).
func (s *Switch) Install(prog *compiler.Program) error {
	if prog == nil {
		return fmt.Errorf("pipeline: Install: nil program")
	}
	if s.static != nil {
		if err := s.static.Validate(prog); err != nil {
			return err
		}
	}
	s.installMu.Lock()
	old := s.epoch.Load()
	s.epoch.Store(&epoch{gen: old.gen + 1, prog: prog, state: NewStateTable(prog)})
	s.installMu.Unlock()
	// Purge after the swap: any straggler still installing decisions
	// under the old epoch is defeated by the generation tag on cache
	// entries, so post-purge lookups can never observe a stale decision.
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.flows.purge()
		sh.mu.Unlock()
	}
	return nil
}

// HandleCustom registers a handler for a custom action name. Call
// before traffic starts.
func (s *Switch) HandleCustom(name string, fn CustomActionFunc) {
	s.customs[name] = fn
}

// Process runs a packet through the pipeline at virtual time now and
// returns the egress deliveries. Safe for concurrent use; the packet is
// executed on the shard its flow hashes to (flow-less packets use
// shard 0 — use ProcessBatch to spread those across workers).
//
// Per §VI: the ingress pass evaluates each message and builds a port
// mask; the crossbar replicates the packet once per egress port; egress
// prunes each replica to the messages whose mask includes the port.
// Batches deeper than the static pipeline's parse budget recirculate,
// adding latency.
func (s *Switch) Process(pkt *Packet, now time.Duration) []Delivery {
	return s.processOn(s.shards[s.shardIndex(pkt.Flow)], pkt, now)
}

// processOn executes one packet on one shard against the current epoch.
func (s *Switch) processOn(sh *shard, pkt *Packet, now time.Duration) []Delivery {
	ep := s.epoch.Load()
	st := &sh.stats
	st.packets.Add(1)
	st.bytesIn.Add(int64(pkt.Bytes))

	// Stream continuation: no application header, forward per the
	// decision cached by the stream's first packet (§VII-B).
	if len(pkt.Msgs) == 0 && pkt.Flow != 0 {
		sh.mu.Lock()
		acts, ok := sh.flows.lookup(pkt.Flow, now, ep.gen)
		sh.mu.Unlock()
		if !ok {
			st.flowMisses.Add(1)
			return nil
		}
		st.flowHits.Add(1)
		out := make([]Delivery, 0, len(acts.Ports))
		for _, port := range acts.Ports {
			if s.cfg.DropOnIngressPort && port == pkt.In {
				continue
			}
			out = append(out, Delivery{Port: port, Latency: s.cfg.BaseLatency})
			st.bytesOut.Add(int64(pkt.Bytes))
		}
		st.deliveries.Add(int64(len(out)))
		return out
	}

	passBudget := len(pkt.Msgs)
	if s.static != nil && s.static.MaxParsedMessages > 0 {
		passBudget = s.static.MaxParsedMessages
	}
	passes := 1
	if len(pkt.Msgs) > passBudget {
		passes += (len(pkt.Msgs) - 1) / passBudget
		st.recirculations.Add(int64(passes - 1))
	}
	latency := s.cfg.BaseLatency + time.Duration(passes-1)*s.cfg.RecirculationLatency

	// Ingress: evaluate every message, build per-port masks.
	portMsgs := make(map[int][]*spec.Message)
	var flowPorts subscription.ActionSet
	var extra []Delivery
	for _, m := range pkt.Msgs {
		st.messages.Add(1)
		le := ep.prog.Lookup(m, ep.state.At(now))
		if le == nil {
			continue
		}
		// State updates fire for every message whose stateless context
		// matched, before forwarding semantics are applied.
		for _, key := range le.Updates {
			ep.state.Update(key, m, now)
			st.stateUpdates.Add(1)
		}
		if le.Actions.IsEmpty() {
			continue
		}
		st.matched.Add(1)
		for _, port := range le.Actions.Ports {
			// The cached stream decision keeps the full port set;
			// ingress suppression re-applies per continuation packet.
			flowPorts.Add(subscription.FwdAction(port))
			if s.cfg.DropOnIngressPort && port == pkt.In {
				continue
			}
			portMsgs[port] = append(portMsgs[port], m)
		}
		for _, act := range le.Actions.Custom {
			if fn, ok := s.customs[act.Name]; ok {
				extra = append(extra, fn(act, m, pkt)...)
			}
		}
	}

	// Stream subscriptions: the header-bearing packet installs the
	// stream's merged port decision for its continuations (§VII-B),
	// tagged with the epoch it was compiled under.
	if pkt.Flow != 0 {
		sh.mu.Lock()
		sh.flows.install(pkt.Flow, flowPorts, now, ep.gen)
		sh.mu.Unlock()
	}

	// Crossbar + egress: one pruned replica per port, deterministic
	// port order.
	ports := make([]int, 0, len(portMsgs))
	for port := range portMsgs {
		ports = append(ports, port)
	}
	sort.Ints(ports)
	out := make([]Delivery, 0, len(ports)+len(extra))
	for _, port := range ports {
		msgs := portMsgs[port]
		out = append(out, Delivery{Port: port, Msgs: msgs, Latency: latency})
		// Pruned replica bytes scale with the surviving message share.
		if len(pkt.Msgs) > 0 {
			st.bytesOut.Add(int64(pkt.Bytes * len(msgs) / len(pkt.Msgs)))
		}
	}
	out = append(out, extra...)
	st.deliveries.Add(int64(len(out)))
	return out
}

// EvalMessage evaluates a single message (diagnostics / examples).
func (s *Switch) EvalMessage(m *spec.Message, now time.Duration) subscription.ActionSet {
	ep := s.epoch.Load()
	return ep.prog.Eval(m, ep.state.At(now))
}

func (s *Switch) String() string {
	prog := s.Program()
	return fmt.Sprintf("switch %s: %d stages, %d entries, %s",
		s.ID, len(prog.Stages)+1, prog.TotalEntries(), prog.Resources)
}

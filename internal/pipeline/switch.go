package pipeline

import (
	"fmt"
	"sort"
	"time"

	"camus/internal/compiler"
	"camus/internal/spec"
	"camus/internal/subscription"
)

// Packet is a network packet traversing the switch: one or more
// application messages batched into a single datagram (e.g. MoldUDP
// carrying several ITCH messages, §VI).
type Packet struct {
	// In is the ingress port.
	In int
	// Msgs are the decoded application messages, in wire order.
	Msgs []*spec.Message
	// Bytes is the wire size (for traffic accounting); zero is allowed.
	Bytes int
	// Flow optionally identifies the packet's stream for stream
	// subscriptions (§VII-B). The first packet of a flow carries the
	// application header (Msgs non-empty) and installs the flow's
	// forwarding decision; header-less continuation packets (Msgs empty,
	// Flow set) reuse it.
	Flow FlowKey
}

// Delivery is one egress packet: the replica for a port after per-port
// message pruning (§VI-A).
type Delivery struct {
	// Port is the egress port.
	Port int
	// Msgs are the messages that matched subscriptions on this port, in
	// wire order (the pruned replica).
	Msgs []*spec.Message
	// Latency is the switch transit time for this replica, including
	// recirculation passes.
	Latency time.Duration
}

// CustomActionFunc handles a non-fwd action (e.g. answerDNS). It may
// return extra deliveries (crafted response packets).
type CustomActionFunc func(act subscription.Action, m *spec.Message, pkt *Packet) []Delivery

// Config tunes the switch model.
type Config struct {
	// BaseLatency is the one-pass pipeline transit time. The paper
	// reports pipeline latency under 1µs (§VIII-F1).
	BaseLatency time.Duration
	// RecirculationLatency is the added cost of one recirculation pass.
	RecirculationLatency time.Duration
	// DropOnIngressPort suppresses forwarding a packet back out its
	// ingress port (standard switch behaviour; Algorithm 1's "other than
	// the ingress port").
	DropOnIngressPort bool
	// FlowCacheSize bounds the stream-subscription cache (§VII-B);
	// 0 uses the default (65536 flows).
	FlowCacheSize int
	// FlowTTL expires idle streams; 0 uses the default (30s).
	FlowTTL time.Duration
}

// DefaultConfig returns the Tofino-like defaults.
func DefaultConfig() Config {
	return Config{
		BaseLatency:          600 * time.Nanosecond,
		RecirculationLatency: 400 * time.Nanosecond,
		DropOnIngressPort:    true,
	}
}

// Stats counts dataplane activity.
type Stats struct {
	Packets        int64 // packets processed
	Messages       int64 // messages evaluated
	Matched        int64 // messages matching ≥1 subscription
	Deliveries     int64 // egress replicas emitted
	Recirculations int64 // extra parser passes (§VI-B)
	StateUpdates   int64 // register updates
	FlowHits       int64 // continuation packets served from the flow cache
	FlowMisses     int64 // continuation packets with no cached flow (dropped)
	ParseErrors    int64 // raw packets the parser rejected
	BytesIn        int64
	BytesOut       int64
}

// Switch is a software Camus switch: a static pipeline bound to a
// compiled program, with stateful registers and custom action handlers.
type Switch struct {
	// ID names the switch (diagnostics, netsim).
	ID string
	// Static is the once-per-application pipeline.
	Static *compiler.StaticPipeline
	// Program is the currently-installed dynamic configuration.
	Program *compiler.Program
	// State holds the stateful registers.
	State *StateTable
	// Config is the dataplane model.
	Config Config
	// Stats accumulates counters.
	Stats Stats

	customs map[string]CustomActionFunc
	flows   *flowCache
	parser  Parser
}

// New builds a switch from a static pipeline and a compiled program.
func New(id string, static *compiler.StaticPipeline, prog *compiler.Program, cfg Config) (*Switch, error) {
	if static != nil {
		if err := static.Validate(prog); err != nil {
			return nil, err
		}
	}
	return &Switch{
		ID:      id,
		Static:  static,
		Program: prog,
		State:   NewStateTable(prog),
		Config:  cfg,
		customs: make(map[string]CustomActionFunc),
		flows:   newFlowCache(cfg.FlowCacheSize, cfg.FlowTTL),
	}, nil
}

// Install replaces the dynamic program (a control-plane rule update,
// §VIII-G3). Registers are re-linked; windows restart.
func (s *Switch) Install(prog *compiler.Program) error {
	if s.Static != nil {
		if err := s.Static.Validate(prog); err != nil {
			return err
		}
	}
	s.Program = prog
	s.State = NewStateTable(prog)
	return nil
}

// HandleCustom registers a handler for a custom action name.
func (s *Switch) HandleCustom(name string, fn CustomActionFunc) {
	s.customs[name] = fn
}

// Process runs a packet through the pipeline at virtual time now and
// returns the egress deliveries.
//
// Per §VI: the ingress pass evaluates each message and builds a port
// mask; the crossbar replicates the packet once per egress port; egress
// prunes each replica to the messages whose mask includes the port.
// Batches deeper than the static pipeline's parse budget recirculate,
// adding latency.
func (s *Switch) Process(pkt *Packet, now time.Duration) []Delivery {
	s.Stats.Packets++
	s.Stats.BytesIn += int64(pkt.Bytes)

	// Stream continuation: no application header, forward per the
	// decision cached by the stream's first packet (§VII-B).
	if len(pkt.Msgs) == 0 && pkt.Flow != 0 {
		acts, ok := s.flows.lookup(pkt.Flow, now)
		if !ok {
			s.Stats.FlowMisses++
			return nil
		}
		s.Stats.FlowHits++
		out := make([]Delivery, 0, len(acts.Ports))
		for _, port := range acts.Ports {
			if s.Config.DropOnIngressPort && port == pkt.In {
				continue
			}
			out = append(out, Delivery{Port: port, Latency: s.Config.BaseLatency})
			s.Stats.BytesOut += int64(pkt.Bytes)
		}
		s.Stats.Deliveries += int64(len(out))
		return out
	}

	passBudget := len(pkt.Msgs)
	if s.Static != nil && s.Static.MaxParsedMessages > 0 {
		passBudget = s.Static.MaxParsedMessages
	}
	passes := 1
	if len(pkt.Msgs) > passBudget {
		passes += (len(pkt.Msgs) - 1) / passBudget
		s.Stats.Recirculations += int64(passes - 1)
	}
	latency := s.Config.BaseLatency + time.Duration(passes-1)*s.Config.RecirculationLatency

	// Ingress: evaluate every message, build per-port masks.
	portMsgs := make(map[int][]*spec.Message)
	var flowPorts subscription.ActionSet
	var extra []Delivery
	for _, m := range pkt.Msgs {
		s.Stats.Messages++
		le := s.Program.Lookup(m, s.State.At(now))
		if le == nil {
			continue
		}
		// State updates fire for every message whose stateless context
		// matched, before forwarding semantics are applied.
		for _, key := range le.Updates {
			s.State.Update(key, m, now)
			s.Stats.StateUpdates++
		}
		if le.Actions.IsEmpty() {
			continue
		}
		s.Stats.Matched++
		for _, port := range le.Actions.Ports {
			// The cached stream decision keeps the full port set;
			// ingress suppression re-applies per continuation packet.
			flowPorts.Add(subscription.FwdAction(port))
			if s.Config.DropOnIngressPort && port == pkt.In {
				continue
			}
			portMsgs[port] = append(portMsgs[port], m)
		}
		for _, act := range le.Actions.Custom {
			if fn, ok := s.customs[act.Name]; ok {
				extra = append(extra, fn(act, m, pkt)...)
			}
		}
	}

	// Stream subscriptions: the header-bearing packet installs the
	// stream's merged port decision for its continuations (§VII-B).
	if pkt.Flow != 0 {
		s.flows.install(pkt.Flow, flowPorts, now)
	}

	// Crossbar + egress: one pruned replica per port, deterministic
	// port order.
	ports := make([]int, 0, len(portMsgs))
	for port := range portMsgs {
		ports = append(ports, port)
	}
	sort.Ints(ports)
	out := make([]Delivery, 0, len(ports)+len(extra))
	for _, port := range ports {
		msgs := portMsgs[port]
		out = append(out, Delivery{Port: port, Msgs: msgs, Latency: latency})
		// Pruned replica bytes scale with the surviving message share.
		if len(pkt.Msgs) > 0 {
			s.Stats.BytesOut += int64(pkt.Bytes * len(msgs) / len(pkt.Msgs))
		}
	}
	out = append(out, extra...)
	s.Stats.Deliveries += int64(len(out))
	return out
}

// EvalMessage evaluates a single message (diagnostics / examples).
func (s *Switch) EvalMessage(m *spec.Message, now time.Duration) subscription.ActionSet {
	return s.Program.Eval(m, s.State.At(now))
}

func (s *Switch) String() string {
	return fmt.Sprintf("switch %s: %d stages, %d entries, %s",
		s.ID, len(s.Program.Stages)+1, s.Program.TotalEntries(), s.Program.Resources)
}

package pipeline

import "time"

// Option tunes a switch at construction time — the functional-options
// configuration surface. Options are the only supported way to deviate
// from DefaultConfig: the resulting Config is frozen into the switch
// and never mutated afterwards, which is what makes the dataplane safe
// to drive from many goroutines.
type Option func(*Config)

// WithBaseLatency sets the one-pass pipeline transit time.
func WithBaseLatency(d time.Duration) Option {
	return func(c *Config) { c.BaseLatency = d }
}

// WithRecirculationLatency sets the added cost of one recirculation
// pass (§VI-B).
func WithRecirculationLatency(d time.Duration) Option {
	return func(c *Config) { c.RecirculationLatency = d }
}

// WithFlowCache sizes the stream-subscription cache (§VII-B): size is
// the total flow capacity (split evenly across worker shards) and ttl
// expires idle streams. Zero values keep the defaults (65536 flows,
// 30s).
func WithFlowCache(size int, ttl time.Duration) Option {
	return func(c *Config) {
		c.FlowCacheSize = size
		c.FlowTTL = ttl
	}
}

// WithWorkers sets the number of worker shards the dataplane is split
// into. Each shard owns a private flow-cache partition and stats block;
// ProcessBatch fans packets out across the shards, keying flows to
// shards by hash so a stream's continuation packets always meet its
// cached decision. n <= 1 selects the single-shard (sequential)
// dataplane, whose results are bit-identical to the historical
// single-threaded switch.
func WithWorkers(n int) Option {
	return func(c *Config) { c.Workers = n }
}

// WithLeafCache sizes the hot-rule leaf cache (DESIGN.md §16): size is
// the total entry capacity, split across worker shards and rounded up
// to a power of two per shard. The cache memoizes final forwarding
// decisions for the hot packet keys under the fill-time purity rule,
// so the steady-state batch path never walks the match stages. size 0
// keeps the default (65536 entries, the cache is on by default);
// negative disables the cache.
func WithLeafCache(size int) Option {
	return func(c *Config) { c.LeafCacheSize = size }
}

// WithIngressDrop controls suppression of forwarding a packet back out
// its ingress port (Algorithm 1's "other than the ingress port"; on by
// default).
func WithIngressDrop(drop bool) Option {
	return func(c *Config) { c.DropOnIngressPort = drop }
}

// normalize fills the documented "0 uses the default" fields, returning
// a config that is safe to freeze into a switch. Latencies are left
// as-is: zero means zero.
func (c Config) normalize() Config {
	if c.FlowCacheSize <= 0 {
		c.FlowCacheSize = 65536
	}
	switch {
	case c.LeafCacheSize == 0:
		c.LeafCacheSize = 65536
	case c.LeafCacheSize < 0:
		c.LeafCacheSize = 0 // disabled
	}
	if c.FlowTTL <= 0 {
		c.FlowTTL = 30 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	return c
}

package pipeline

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"camus/internal/compiler"
	"camus/internal/spec"
	"camus/internal/subscription"
)

// compileRules compiles a rule source against the shared ITCH test spec.
func compileRules(t testing.TB, sp *spec.Spec, src string) *compiler.Program {
	t.Helper()
	rules, err := subscription.NewParser(sp).ParseRules(src)
	if err != nil {
		t.Fatalf("rules: %v", err)
	}
	prog, err := compiler.Compile(sp, rules, compiler.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

// TestInstallClearsFlowCache is the regression test for the stale
// stream-state bug (§VII-B after a §VIII-G3 rule update): before the
// fix, continuation packets kept forwarding on decisions compiled from
// the previous program.
func TestInstallClearsFlowCache(t *testing.T) {
	sw, sp := buildSwitch(t, "stock == GOOGL: fwd(1)", compiler.Options{})
	const flow = FlowKey(0x51)

	// Header packet caches the fwd(1) decision for the stream.
	head := sw.Process(&Packet{In: 0, Flow: flow, Msgs: []*spec.Message{itchMsg(sp, "GOOGL", 50, 1)}}, 0)
	if len(head) != 1 || head[0].Port != 1 {
		t.Fatalf("head deliveries: %+v", head)
	}
	if sw.cachedFlows() != 1 {
		t.Fatalf("cached flows = %d, want 1", sw.cachedFlows())
	}

	// Rule update: GOOGL now forwards to port 2.
	if err := sw.Install(compileRules(t, sp, "stock == GOOGL: fwd(2)")); err != nil {
		t.Fatal(err)
	}
	if sw.cachedFlows() != 0 {
		t.Errorf("cached flows after Install = %d, want 0", sw.cachedFlows())
	}

	// A continuation must NOT follow the stale fwd(1) decision; with no
	// cached decision under the new program it misses and is dropped.
	cont := sw.Process(&Packet{In: 0, Flow: flow}, time.Millisecond)
	if len(cont) != 0 {
		t.Fatalf("continuation used stale decision: %+v", cont)
	}
	if st := sw.Stats(); st.FlowMisses != 1 {
		t.Errorf("FlowMisses = %d, want 1", st.FlowMisses)
	}

	// The stream's next header packet re-installs a fresh decision.
	sw.Process(&Packet{In: 0, Flow: flow, Msgs: []*spec.Message{itchMsg(sp, "GOOGL", 50, 1)}}, 2*time.Millisecond)
	cont2 := sw.Process(&Packet{In: 0, Flow: flow}, 3*time.Millisecond)
	if len(cont2) != 1 || cont2[0].Port != 2 {
		t.Fatalf("post-reinstall continuation: %+v", cont2)
	}
}

// TestConcurrentProcessInstall hammers Process from several goroutines
// while the control plane keeps swapping programs — the §VIII-G3
// "rule updates under traffic" scenario. Run under -race this verifies
// the epoch swap; functionally it checks every delivery is valid under
// one of the two installed programs and that after quiescing the switch
// obeys exactly the last program.
func TestConcurrentProcessInstall(t *testing.T) {
	sp := spec.MustParse("itch", itchSpecSrc)
	progA := compileRules(t, sp, "stock == GOOGL: fwd(1)")
	progB := compileRules(t, sp, "stock == GOOGL: fwd(2)\nstock == MSFT: fwd(3)")
	sw, err := New("s1", nil, progA, Config{Workers: 4, DropOnIngressPort: true})
	if err != nil {
		t.Fatal(err)
	}

	const (
		processors = 4
		iterations = 400
		installs   = 50
	)
	var wg sync.WaitGroup
	errc := make(chan string, processors)
	for g := 0; g < processors; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				flow := FlowKey(uint64(g*iterations+i)%37 + 1)
				var pkt *Packet
				switch i % 3 {
				case 0:
					pkt = &Packet{In: 0, Flow: flow, Msgs: []*spec.Message{itchMsg(sp, "GOOGL", 50, 1)}, Bytes: 64}
				case 1:
					pkt = &Packet{In: 0, Flow: flow, Bytes: 1400} // continuation
				default:
					pkt = &Packet{In: 0, Msgs: []*spec.Message{itchMsg(sp, "MSFT", 10, 1)}, Bytes: 64}
				}
				for _, d := range sw.Process(pkt, time.Duration(i)*time.Microsecond) {
					if d.Port < 1 || d.Port > 3 {
						errc <- "invalid port"
						return
					}
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < installs; i++ {
			p := progA
			if i%2 == 0 {
				p = progB
			}
			if err := sw.Install(p); err != nil {
				errc <- err.Error()
				return
			}
		}
	}()
	wg.Wait()
	select {
	case msg := <-errc:
		t.Fatal(msg)
	default:
	}

	// Installer's last program was progA (i=installs-1=49, odd).
	out := sw.Process(&Packet{In: 0, Msgs: []*spec.Message{itchMsg(sp, "GOOGL", 50, 1)}}, time.Second)
	if len(out) != 1 || out[0].Port != 1 {
		t.Fatalf("after quiesce, GOOGL → %+v, want fwd(1)", out)
	}
	if out := sw.Process(&Packet{In: 0, Msgs: []*spec.Message{itchMsg(sp, "MSFT", 10, 1)}}, time.Second); len(out) != 0 {
		t.Fatalf("after quiesce, MSFT forwarded under old program: %+v", out)
	}

	// Counters survived the storm: every processed packet was counted.
	if st := sw.Stats(); st.Packets != processors*iterations+2 {
		t.Errorf("Packets = %d, want %d", st.Packets, processors*iterations+2)
	}
}

// TestFlowShardAffinity: a flow's packets always execute on the same
// shard, so a stream's continuation packets meet the decision its
// header packet cached — across Process and ProcessBatch alike.
func TestFlowShardAffinity(t *testing.T) {
	sp := spec.MustParse("itch", itchSpecSrc)
	prog := compileRules(t, sp, "stock == GOOGL: fwd(1)")
	sw, err := NewSwitch("s1", nil, prog, WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	if sw.Workers() != 8 {
		t.Fatalf("workers = %d", sw.Workers())
	}

	// The mapping is pure and non-degenerate.
	used := make(map[int]bool)
	for f := FlowKey(1); f <= 1000; f++ {
		idx := sw.shardIndex(f)
		if idx < 0 || idx >= 8 {
			t.Fatalf("shardIndex(%d) = %d", f, idx)
		}
		if idx != sw.shardIndex(f) {
			t.Fatalf("shardIndex(%d) not stable", f)
		}
		used[idx] = true
	}
	if len(used) < 2 {
		t.Errorf("all 1000 flows hashed to %d shard(s)", len(used))
	}

	// Header packets for 100 flows in one batch, continuations in the
	// next: every continuation must hit its flow's cached decision.
	const flows = 100
	heads := make([]*Packet, flows)
	conts := make([]*Packet, flows)
	for i := 0; i < flows; i++ {
		f := FlowKey(i + 1)
		heads[i] = &Packet{In: 0, Flow: f, Msgs: []*spec.Message{itchMsg(sp, "GOOGL", 50, 1)}}
		conts[i] = &Packet{In: 0, Flow: f, Bytes: 100}
	}
	sw.ProcessBatch(heads, 0)
	out := sw.ProcessBatch(conts, time.Millisecond)
	for i, ds := range out {
		if len(ds) != 1 || ds[0].Port != 1 {
			t.Fatalf("continuation %d missed its cached decision: %+v", i, ds)
		}
	}
	if st := sw.Stats(); st.FlowHits != flows || st.FlowMisses != 0 {
		t.Errorf("hits = %d misses = %d, want %d/0", st.FlowHits, st.FlowMisses, flows)
	}
}

// TestProcessBatchMatchesSequential: the batch API is a pure fan-out —
// per-packet results are identical to per-packet Process, both for the
// single-worker (bit-identical, ordered) and multi-worker dataplane.
func TestProcessBatchMatchesSequential(t *testing.T) {
	sp := spec.MustParse("itch", itchSpecSrc)
	rules := `
stock == GOOGL and price > 50: fwd(1)
stock == MSFT: fwd(2)
price > 90: fwd(3)
`
	prog := compileRules(t, sp, rules)
	stocks := []string{"GOOGL", "MSFT", "AAPL", "FB"}
	var pkts []*Packet
	for i := 0; i < 200; i++ {
		pkts = append(pkts, &Packet{
			In:   i % 4,
			Msgs: []*spec.Message{itchMsg(sp, stocks[i%len(stocks)], int64(i%100), 1)},
		})
	}

	ref, err := New("ref", nil, prog, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]Delivery, len(pkts))
	for i, p := range pkts {
		want[i] = ref.Process(p, 0)
	}

	// The program is stateless and the packets flow-less, so the same
	// packets can be replayed against each dataplane variant; message
	// pointers then compare equal across switches.
	for _, workers := range []int{1, 4} {
		sw, err := NewSwitch("batch", nil, prog, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		got := sw.ProcessBatch(pkts, 0)
		for i := range want {
			if len(want[i]) == 0 && len(got[i]) == 0 {
				continue
			}
			if !reflect.DeepEqual(want[i], got[i]) {
				t.Fatalf("workers=%d pkt %d: got %+v want %+v", workers, i, got[i], want[i])
			}
		}
		if st := sw.Stats(); st.Packets != int64(len(pkts)) {
			t.Errorf("workers=%d: Packets = %d, want %d", workers, st.Packets, len(pkts))
		}
	}
}

// TestResetStats: the snapshot/reset API.
func TestResetStats(t *testing.T) {
	sw, sp := buildSwitch(t, "stock == GOOGL: fwd(1)", compiler.Options{})
	sw.Process(&Packet{In: 0, Msgs: []*spec.Message{itchMsg(sp, "GOOGL", 50, 1)}, Bytes: 10}, 0)
	st := sw.Stats()
	if st.Packets != 1 || st.Matched != 1 || st.BytesIn != 10 {
		t.Fatalf("stats = %+v", st)
	}
	sw.ResetStats()
	if got := sw.Stats(); got != (StatsSnapshot{}) {
		t.Errorf("after reset: %+v", got)
	}
}

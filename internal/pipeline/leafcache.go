package pipeline

import (
	"camus/internal/spec"
)

// The leaf cache is a per-shard, fixed-size, direct-mapped result cache
// in front of the match stages: it memoizes the final forwarding
// decision (the leaf table row) for the hot packet keys, so repeated
// packets skip the stage walk entirely. The design follows the FIB
// caching literature (PAPERS.md: *Toward a Programmable FIB Caching
// Architecture*): a cached result is only sound if it cannot "hide" an
// overlapping higher-priority decision, which here becomes the
// walk-purity fill rule enforced in Program.LookupKeyed — see
// DESIGN.md §16.
//
// Entries are cache-line-packed flat structs in one contiguous array
// (no pointers, no map): a probe touches at most two cache lines and
// never allocates.

// LeafKeySlots is the number of packed key fields in a leaf-cache key.
// The matched header key is the first LeafKeySlots packable
// subscribable fields in spec declaration order (mirroring the 5-field
// key of hardware FIB caches).
const LeafKeySlots = 5

// leafKeyPackable reports whether a field's value can be packed into
// one 64-bit key word: any integer field, or a byte-string field of at
// most 8 bytes (ITCH stock symbols are str8).
func leafKeyPackable(f *spec.Field) bool {
	if f.Type == spec.IntField {
		return true
	}
	return f.Bytes() <= 8
}

// LeafKeyFields returns the subscribable fields of sp that participate
// in the leaf-cache key: the first ≤LeafKeySlots packable fields in
// declaration order. Exported so the offline cache-hiding verifier
// (internal/analysis/rulecheck) classifies fields exactly like the
// dataplane does.
func LeafKeyFields(sp *spec.Spec) []*spec.Field {
	var out []*spec.Field
	for _, f := range sp.SubscribableFields() {
		if !leafKeyPackable(f) {
			continue
		}
		out = append(out, f)
		if len(out) == LeafKeySlots {
			break
		}
	}
	return out
}

// LeafCacheStats is a point-in-time view of the leaf cache, exposed via
// Switch.LeafCacheStats (and from there the control-plane /metrics).
// Hits/Misses/Fills are cumulative counters; Admissible and Capacity
// are gauges of the current epoch and configuration.
type LeafCacheStats struct {
	// Enabled reports whether the switch runs with a leaf cache and the
	// installed program's spec supports one.
	Enabled bool
	// Hits / Misses / Fills count probe outcomes across all shards.
	Hits   int64
	Misses int64
	Fills  int64
	// Admissible is the number of leaf-table rows of the current epoch
	// whose action sets are cacheable (stateless, no custom actions,
	// ≤ LeafMaxPorts egress ports).
	Admissible int
	// Capacity is the total entry capacity across shards.
	Capacity int
}

// LeafMaxPorts bounds the inline port array of a cache entry: action
// sets with more egress ports are not cached (one extra cache line
// would double the footprint for a tail that barely exists — multicast
// fan-outs beyond 8 ports are rare and still correct via the stage
// walk).
const LeafMaxPorts = 8

// leafCacheEntry is one direct-mapped slot: the packed key, the epoch
// generation it was filled under, and the inline egress port list.
// ~96 bytes — two cache lines.
type leafCacheEntry struct {
	key     [LeafKeySlots]uint64
	hdrMask uint64 // header validity bits (parse order)
	gen     uint64 // epoch generation at fill time
	present uint8  // key-field presence bits
	filled  uint8  // 1 if the slot holds a decision (incl. cached drops)
	nports  uint8
	ports   [LeafMaxPorts]int32
}

// leafWays is the set associativity. Direct mapping lets two hot keys
// that share a slot evict each other on every batch; at realistic
// occupancy (tens of thousands of distinct market keys) that thrashing
// tail re-walks the BDD for a measurable fraction of traffic. Four ways
// shrink the expected conflict set to ~nothing.
const leafWays = 4

// leafCache is one shard's private cache partition. Not internally
// synchronized: the owning shard's mutex guards it, exactly like the
// flow cache.
//
// The probe path is split across two arrays: a compact per-entry tag
// array (the full 64-bit key hash; leafWays tags per set share one
// cache line) and the wide entry array. Way selection scans only tags,
// so a miss touches a single line of the small tag array and the
// ~100-byte entry is read only after its tag matched. Tags are a
// filter, never an authority: a tag match is always confirmed against
// the entry's full key, validity mask, and epoch generation before the
// cached decision is used.
type leafCache struct {
	tags    []uint64
	entries []leafCacheEntry
	setMask uint64
}

// newLeafCache sizes a shard partition to the next power of two ≥ n
// entries, organized as size/leafWays sets.
func newLeafCache(n int) *leafCache {
	if n < 64 {
		n = 64
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return &leafCache{
		tags:    make([]uint64, size),
		entries: make([]leafCacheEntry, size),
		setMask: uint64(size/leafWays - 1),
	}
}

// leafKey is a packed probe key, built once per message.
type leafKey struct {
	key     [LeafKeySlots]uint64
	hdrMask uint64
	present uint8
	hash    uint64
}

// packLeafValue packs a field value into one key word. Strings are the
// trimmed wire bytes, big-endian packed; callers only pack fields that
// passed leafKeyPackable.
func packLeafValue(v spec.Value) uint64 {
	if v.Kind == spec.IntField {
		return uint64(v.Int)
	}
	var w uint64
	s := v.Str
	if len(s) > 8 {
		s = s[:8]
	}
	for i := 0; i < len(s); i++ {
		w = w<<8 | uint64(s[i])
	}
	return w
}

// mix finalizes the key hash (splitmix64 finalizer).
func leafMix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// buildLeafKey assembles the probe key for m under the epoch's key
// layout. Zero allocations.
func buildLeafKey(lm *leafMeta, m *spec.Message, k *leafKey) {
	var h uint64 = 0x9E3779B97F4A7C15
	k.present = 0
	for s := 0; s < lm.nslots; s++ {
		v, ok := m.Get(int(lm.keyIdx[s]))
		var w uint64
		if ok {
			k.present |= 1 << uint(s)
			w = packLeafValue(v)
		}
		k.key[s] = w
		h = (h ^ w) * 0x100000001b3
	}
	k.hdrMask = m.HeaderMask()
	h = (h ^ k.hdrMask) * 0x100000001b3
	h ^= uint64(k.present)
	k.hash = leafMix(h)
}

// probe looks the key up in the shard partition: scan the set's
// leafWays tags, and on a tag match confirm the candidate entry's
// epoch, presence bits, validity mask, and full key (tags only filter;
// a 64-bit collision falls through to the full compare and misses).
// The returned entry is only valid until the shard lock is released.
func (c *leafCache) probe(k *leafKey, gen uint64) *leafCacheEntry {
	base := (k.hash & c.setMask) * leafWays
	for w := uint64(0); w < leafWays; w++ {
		if c.tags[base+w] != k.hash {
			continue
		}
		e := &c.entries[base+w]
		if e.filled != 0 && e.gen == gen && e.present == k.present &&
			e.hdrMask == k.hdrMask && e.key == k.key {
			return e
		}
	}
	return nil
}

// fill installs (overwrites) the decision for k: the full egress port
// set of the leaf (ingress-port suppression re-applies per packet, as
// with cached flow decisions). Victim choice: a way already tagged
// with this hash first (refresh in place), then any empty or
// stale-epoch way, else a way picked from a high key-hash bit so
// conflicting keys settle into distinct ways instead of chasing each
// other out of way 0. Stale-epoch entries die by generation mismatch,
// so Install never touches cache memory.
func (c *leafCache) fill(k *leafKey, gen uint64, ports []int) {
	base := (k.hash & c.setMask) * leafWays
	victim := -1
	for w := uint64(0); w < leafWays; w++ {
		e := &c.entries[base+w]
		if c.tags[base+w] == k.hash && e.filled != 0 {
			victim = int(w)
			break
		}
		if victim < 0 && (e.filled == 0 || e.gen != gen) {
			victim = int(w)
		}
	}
	if victim < 0 {
		victim = int(k.hash >> 32 % leafWays)
	}
	c.tags[base+uint64(victim)] = k.hash
	e := &c.entries[base+uint64(victim)]
	e.key = k.key
	e.hdrMask = k.hdrMask
	e.present = k.present
	e.gen = gen
	e.filled = 1
	for i, p := range ports {
		e.ports[i] = int32(p)
	}
	e.nports = uint8(len(ports))
}

package pipeline

import (
	"fmt"
	"time"

	"camus/internal/spec"
)

// Parser turns wire bytes into decoded application messages — the
// programmable parse graph of §VI. Format packages provide
// implementations (e.g. the batched MoldUDP/ITCH parser).
type Parser interface {
	// Parse decodes a packet into its application messages.
	Parse(data []byte) ([]*spec.Message, error)
}

// ParserFunc adapts a function to Parser.
type ParserFunc func(data []byte) ([]*spec.Message, error)

// Parse implements Parser.
func (f ParserFunc) Parse(data []byte) ([]*spec.Message, error) { return f(data) }

// SetParser installs the wire-format parser used by ProcessBytes. Call
// before traffic starts.
func (s *Switch) SetParser(p Parser) { s.parser = p }

// ProcessBytes runs a raw packet through the parser and the pipeline —
// the full dataplane path: parse deep (§VI-B), evaluate, replicate,
// prune (§VI-A).
func (s *Switch) ProcessBytes(data []byte, in int, now time.Duration) ([]Delivery, error) {
	if s.parser == nil {
		return nil, fmt.Errorf("pipeline: switch %s has no parser installed", s.ID)
	}
	msgs, err := s.parser.Parse(data)
	if err != nil {
		s.shards[0].stats.parseErrors.Add(1)
		return nil, fmt.Errorf("pipeline: %s: %w", s.ID, err)
	}
	return s.Process(&Packet{In: in, Msgs: msgs, Bytes: len(data)}, now), nil
}

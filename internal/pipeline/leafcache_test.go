package pipeline

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"camus/internal/compiler"
	"camus/internal/spec"
	"camus/internal/subscription"
)

// compileFor compiles a rule set against an existing switch's spec
// (for Install churn in leaf-cache tests).
func compileFor(t testing.TB, sp *spec.Spec, rulesSrc string) *compiler.Program {
	t.Helper()
	rules, err := subscription.NewParser(sp).ParseRules(rulesSrc)
	if err != nil {
		t.Fatalf("rules: %v", err)
	}
	prog, err := compiler.Compile(sp, rules, compiler.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func TestLeafCacheHitsAndStats(t *testing.T) {
	sw, sp := buildSwitch(t, "stock == GOOGL: fwd(1)", compiler.Options{})
	pkt := &Packet{In: 0, Msgs: []*spec.Message{itchMsg(sp, "GOOGL", 50, 10)}, Bytes: 100}
	for i := 0; i < 3; i++ {
		out := sw.Process(pkt, 0)
		if len(out) != 1 || out[0].Port != 1 {
			t.Fatalf("iteration %d: deliveries = %+v", i, out)
		}
	}
	st := sw.Stats()
	if st.LeafMisses != 1 || st.LeafFills != 1 || st.LeafHits != 2 {
		t.Fatalf("leaf counters = misses %d fills %d hits %d", st.LeafMisses, st.LeafFills, st.LeafHits)
	}
	lcs := sw.LeafCacheStats()
	if !lcs.Enabled || lcs.Capacity == 0 || lcs.Admissible == 0 {
		t.Fatalf("LeafCacheStats = %+v", lcs)
	}
	if lcs.Hits != st.LeafHits || lcs.Misses != st.LeafMisses || lcs.Fills != st.LeafFills {
		t.Fatalf("LeafCacheStats counters diverge from Stats: %+v vs %+v", lcs, st)
	}
}

func TestWithLeafCacheDisable(t *testing.T) {
	sp := spec.MustParse("itch", itchSpecSrc)
	rules, err := subscription.NewParser(sp).ParseRules("stock == GOOGL: fwd(1)")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(sp, rules, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewSwitch("s1", nil, prog, WithLeafCache(-1))
	if err != nil {
		t.Fatal(err)
	}
	pkt := &Packet{In: 0, Msgs: []*spec.Message{itchMsg(sp, "GOOGL", 50, 10)}}
	sw.Process(pkt, 0)
	sw.Process(pkt, 0)
	if st := sw.Stats(); st.LeafHits != 0 || st.LeafFills != 0 {
		t.Fatalf("disabled cache recorded traffic: %+v", st)
	}
	if lcs := sw.LeafCacheStats(); lcs.Enabled || lcs.Capacity != 0 {
		t.Fatalf("disabled cache reports %+v", lcs)
	}
}

// TestInstallInvalidatesLeafCache mirrors TestInstallClearsFlowCache:
// a hot cached decision must die with the epoch swap.
func TestInstallInvalidatesLeafCache(t *testing.T) {
	sw, sp := buildSwitch(t, "stock == GOOGL: fwd(1)", compiler.Options{})
	pkt := &Packet{In: 0, Msgs: []*spec.Message{itchMsg(sp, "GOOGL", 50, 10)}}
	sw.Process(pkt, 0)
	if out := sw.Process(pkt, 0); len(out) != 1 || out[0].Port != 1 {
		t.Fatalf("pre-install deliveries = %+v", out)
	}
	if st := sw.Stats(); st.LeafHits == 0 {
		t.Fatalf("expected a warm cache before install: %+v", st)
	}
	if err := sw.Install(compileFor(t, sp, "stock == GOOGL: fwd(7)")); err != nil {
		t.Fatal(err)
	}
	if out := sw.Process(pkt, 0); len(out) != 1 || out[0].Port != 7 {
		t.Fatalf("post-install deliveries = %+v (stale leaf-cache decision?)", out)
	}
}

// TestLeafCachePurityNoCacheHiding is the FIB cache-hiding regression:
// a rule refining a cacheable rule on a *non-key* field (str16 is not
// packable into the 5-field key) must never be hidden by a cached
// coarse decision. The fill rule (walk purity) refuses to memoize the
// coarse outcome because its walk branches on the non-key field.
func TestLeafCachePurityNoCacheHiding(t *testing.T) {
	src := `
header market {
    stock : str8 @field_exact;
    price : u32 @field;
    name : str16 @field;
}
`
	sp := spec.MustParse("market", src)
	rules, err := subscription.NewParser(sp).ParseRules(`
stock == GOOGL: fwd(1)
stock == GOOGL and name == SPECIALISSUE: fwd(2)
`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(sp, rules, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewSwitch("s1", nil, prog)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string) *spec.Message {
		m := spec.NewMessage(sp)
		m.MustSet("stock", spec.StrVal("GOOGL"))
		m.MustSet("price", spec.IntVal(50))
		m.MustSet("name", spec.StrVal(name))
		return m
	}
	// Coarse packet first: matches only rule 1. Its key (stock, price)
	// is identical to the refined packet's key below.
	for i := 0; i < 2; i++ {
		out := sw.Process(&Packet{In: 9, Msgs: []*spec.Message{mk("ORDINARY")}}, 0)
		if len(out) != 1 || out[0].Port != 1 {
			t.Fatalf("coarse deliveries = %+v", out)
		}
	}
	// Refined packet: must reach both rules even though the coarse
	// outcome was hot. A key-only cache fill here would hide fwd(2).
	out := sw.Process(&Packet{In: 9, Msgs: []*spec.Message{mk("SPECIALISSUE")}}, 0)
	if len(out) != 2 || out[0].Port != 1 || out[1].Port != 2 {
		t.Fatalf("refined deliveries = %+v (cache-hiding!)", out)
	}
	// And the impure walks must not have filled at all.
	if st := sw.Stats(); st.LeafFills != 0 || st.LeafHits != 0 {
		t.Fatalf("impure walks were cached: %+v", st)
	}
}

// TestLeafCacheChurnEpochConsistency races publications across Install
// swaps with the leaf cache on: every delivery must come from one of
// the two installed programs, and once traffic quiesces the hot cache
// must serve exactly the final program's decision. Run under -race
// this doubles as the per-shard cache stress.
func TestLeafCacheChurnEpochConsistency(t *testing.T) {
	sw, sp := buildSwitch(t, "stock == GOOGL: fwd(1)", compiler.Options{})
	progs := []*compiler.Program{
		compileFor(t, sp, "stock == GOOGL: fwd(1)"),
		compileFor(t, sp, "stock == GOOGL: fwd(2)"),
	}
	pkts := make([]*Packet, 64)
	for i := range pkts {
		sym := "GOOGL"
		if i%4 == 3 {
			sym = "MSFT"
		}
		pkts[i] = &Packet{In: 0, Msgs: []*spec.Message{itchMsg(sp, sym, int64(40+i%20), 10)}}
	}
	const iters = 200
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	// Concurrent publishers go through Process (heap-fresh results, the
	// concurrent-publication API); they contend the shard lock against
	// the batch goroutine below, exercising the TryLock fallbacks.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				for i, p := range pkts {
					for _, d := range sw.Process(p, 0) {
						if d.Port != 1 && d.Port != 2 {
							select {
							case errs <- fmt.Sprintf("worker %d iter %d pkt %d: port %d", g, it, i, d.Port):
							default:
							}
						}
					}
				}
			}
		}(g)
	}
	// One dedicated batch goroutine drives the fast path; per the reuse
	// contract it reads each batch's results before its own next call.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for it := 0; it < iters; it++ {
			out := sw.ProcessBatch(pkts, 0)
			for i, ds := range out {
				for _, d := range ds {
					if d.Port != 1 && d.Port != 2 {
						select {
						case errs <- fmt.Sprintf("batch iter %d pkt %d: port %d", it, i, d.Port):
						default:
						}
					}
				}
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			if err := sw.Install(progs[i%2]); err != nil {
				select {
				case errs <- err.Error():
				default:
				}
			}
		}
	}()
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	// Quiesce on the final program: the warm cache must yield its
	// decision, not any earlier epoch's.
	final := compileFor(t, sp, "stock == GOOGL: fwd(2)")
	if err := sw.Install(final); err != nil {
		t.Fatal(err)
	}
	pkt := &Packet{In: 0, Msgs: []*spec.Message{itchMsg(sp, "GOOGL", 50, 10)}}
	for i := 0; i < 3; i++ {
		out := sw.Process(pkt, 0)
		if len(out) != 1 || out[0].Port != 2 {
			t.Fatalf("post-churn deliveries = %+v", out)
		}
	}
}

// TestProcessBatchFastPathZeroAlloc pins the tentpole invariant: the
// single-worker steady-state batch path allocates nothing per op.
func TestProcessBatchFastPathZeroAlloc(t *testing.T) {
	sw, sp := buildSwitch(t, `
stock == GOOGL: fwd(1)
stock == MSFT and price > 100: fwd(2)
price > 500: fwd(3)
`, compiler.Options{})
	syms := []string{"GOOGL", "MSFT", "AAPL", "INTC"}
	pkts := make([]*Packet, 256)
	for i := range pkts {
		pkts[i] = &Packet{In: 0, Msgs: []*spec.Message{itchMsg(sp, syms[i%len(syms)], int64(50+i*7%1000), 10)}, Bytes: 64}
	}
	sw.ProcessBatch(pkts, 0) // warm arenas + cache
	allocs := testing.AllocsPerRun(20, func() {
		sw.ProcessBatch(pkts, 0)
	})
	if allocs != 0 {
		t.Fatalf("fast path allocates %.1f allocs/op, want 0", allocs)
	}
	if st := sw.Stats(); st.LeafHits == 0 {
		t.Fatalf("fast path never hit the cache: %+v", st)
	}
}

// TestProcessBatchFastPathMatchesProcess cross-checks the fast path
// against the always-slow Process path on a mixed workload.
func TestProcessBatchFastPathMatchesProcess(t *testing.T) {
	mk := func() *Switch {
		sw, _ := buildSwitch(t, `
stock == GOOGL: fwd(1)
stock == MSFT and price > 100: fwd(2)
price > 500: fwd(3)
shares > 900: fwd(4)
`, compiler.Options{})
		return sw
	}
	sw, ref := mk(), mk()
	sp := spec.MustParse("itch", itchSpecSrc)
	syms := []string{"GOOGL", "MSFT", "AAPL", "INTC", "TSLA"}
	pkts := make([]*Packet, 300)
	for i := range pkts {
		pkts[i] = &Packet{In: i % 5, Msgs: []*spec.Message{itchMsg(sp, syms[i%len(syms)], int64(i * 13 % 1200), int64(i * 31 % 1000))}, Bytes: 80}
	}
	got := sw.ProcessBatch(pkts, 0)
	for i, p := range pkts {
		want := ref.Process(p, 0)
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("pkt %d: fast %+v != slow %+v", i, got[i], want)
		}
	}
}

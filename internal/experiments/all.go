package experiments

// All runs every reproduced table and figure plus the ablations, in
// paper order.
func All(cfg Config) []*Result {
	return []*Result{
		Fig8(cfg),
		Fig9(cfg),
		Fig11(cfg),
		Fig12(cfg),
		Table1(cfg),
		Fig13(cfg),
		Fig13d(cfg),
		Fig14(cfg),
		Fig15(cfg),
		AblationPruning(cfg),
		AblationFieldOrder(cfg),
		AblationExactMatch(cfg),
	}
}

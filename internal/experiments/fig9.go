package experiments

import (
	"fmt"
	"runtime"
	"time"

	"camus/internal/baseline"
	"camus/internal/compiler"
	"camus/internal/formats"
	"camus/internal/pipeline"
	"camus/internal/spec"
	"camus/internal/stats"
	"camus/internal/subscription"
	"camus/internal/workload"
)

// Fig9 reproduces the INT filtering throughput experiment (§VIII-E2,
// Fig. 9): filtering a 100G stream of telemetry reports with an
// increasing number of filters. The C-userspace and DPDK subscribers are
// CPU-bound (DPDK ≈16 Mpps at the paper's 1.6 GHz / ~100 instructions
// per packet, collapsing past ~10k filters); Camus runs at line rate
// regardless of the filter count because the filters live in hardware
// tables.
func Fig9(cfg Config) *Result {
	res := &Result{
		ID:    "Fig. 9",
		Title: "INT filter throughput vs. number of filters (100G link)",
	}
	counts := []int{1, 10, 100, 1000, 10000, 100000}
	c := baseline.CUserspace()
	d := baseline.DPDK()
	line := baseline.CamusSwitchMpps(100, 84+formats.INTReportBytes)

	tbl := &stats.Table{
		Title:  "throughput (Mpps)",
		Header: []string{"#filters", "C userspace", "DPDK", "Camus (line rate)", "Camus entries", "fits switch"},
	}
	for _, n := range counts {
		// Compile a real filter set of that size to substantiate the
		// "filters in hardware memory" claim with entry counts. Filters
		// follow the paper's pattern: switch_id == S and hop_latency > T.
		compileN := n
		if cfg.Quick && n > 10000 {
			compileN = 10000 // full run compiles all 100k
		}
		prog := compileINTFilters(compileN, cfg.Seed)
		entries := prog.TotalEntries()
		note := fmt.Sprintf("%d", entries)
		if compileN != n {
			note += " (10k compiled)"
		}
		tbl.AddRow(n, c.ThroughputMpps(n), d.ThroughputMpps(n), line, note, prog.Resources.Fits())
	}
	res.Tables = []*stats.Table{tbl}

	res.addFinding("DPDK ceiling %.1f Mpps at 1 filter (paper: 16 Mpps); Camus %.1f Mpps at every filter count",
		d.ThroughputMpps(1), line)
	r10k, r100k := d.ThroughputMpps(10000), d.ThroughputMpps(100000)
	res.addFinding("DPDK collapses past 10k filters: %.2f → %.2f Mpps (paper: 'drastically increases after 10K filters')", r10k, r100k)

	// Sanity: the compiled filters actually select <1% of a generated
	// stream, as in the paper.
	prog := compileINTFilters(100, cfg.Seed)
	stream := workload.INTStream(workload.INTStreamConfig{
		Reports: cfg.scale(50000, 500000), Seed: cfg.Seed,
	})
	matched := 0
	for _, rep := range stream {
		if !prog.Eval(rep.Message(), nil).IsEmpty() {
			matched++
		}
	}
	res.addFinding("filter selectivity on generated stream: %.3f%% (paper: <1%%)",
		100*float64(matched)/float64(len(stream)))

	// Extra series beyond the paper: this repository's own software
	// pipeline, measured — it behaves like the software baselines
	// (CPU-bound, far below ASIC line rate), which is the paper's point.
	res.addFinding("this repo's software pipeline measures %.2f Mpps at 100 filters (CPU-bound, as Fig. 9 predicts for software)",
		measuredSoftwareMpps(prog, stream[:min(20000, len(stream))]))

	// The concurrent sharded dataplane: the same workload through
	// Switch.ProcessBatch at 1 worker vs GOMAXPROCS workers. On a
	// multi-core host the aggregate Mpps scales with the worker count;
	// it can only saturate at the host's core budget.
	sample := stream[:min(20000, len(stream))]
	seqMpps, seqWorkers := measuredParallelMpps(prog, sample, 1)
	parMpps, parWorkers := measuredParallelMpps(prog, sample, runtime.GOMAXPROCS(0))
	res.addFinding("sharded dataplane (ProcessBatch): %.2f Mpps @%d worker, %.2f Mpps @%d workers (GOMAXPROCS=%d)",
		seqMpps, seqWorkers, parMpps, parWorkers, runtime.GOMAXPROCS(0))
	return res
}

// measuredParallelMpps pushes the sampled INT stream through the
// concurrent sharded dataplane with the given worker count and reports
// aggregate packet throughput plus the worker count the switch actually
// ran (the switch, not the request, is authoritative — printing the
// requested count produced a stale "@1 workers" line on single-core
// hosts).
func measuredParallelMpps(prog *compiler.Program, reports []*formats.INTReport, workers int) (float64, int) {
	sw, err := pipeline.NewSwitch("fig9", nil, prog, pipeline.WithWorkers(workers))
	if err != nil {
		panic(err)
	}
	pkts := make([]*pipeline.Packet, len(reports))
	for i, r := range reports {
		pkts[i] = &pipeline.Packet{In: 0, Msgs: []*spec.Message{r.Message()}, Bytes: formats.INTReportBytes}
	}
	start := time.Now()
	sw.ProcessBatch(pkts, 0)
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return 0, sw.Workers()
	}
	return float64(len(pkts)) / elapsed.Seconds() / 1e6, sw.Workers()
}

var intParser = subscription.NewParser(formats.INT)

// INTFilterProgram compiles n paper-style INT filters (switch_id == S
// and hop_latency > T) — exported for the repository's switch-level
// benchmarks.
func INTFilterProgram(n int, seed int64) *compiler.Program {
	return compileINTFilters(n, seed)
}

// compileINTFilters builds n paper-style INT filters and compiles them.
func compileINTFilters(n int, seed int64) *compiler.Program {
	rules := make([]*subscription.Rule, 0, n)
	for i := 0; i < n; i++ {
		src := fmt.Sprintf("switch_id == %d and hop_latency > %d: fwd(%d)",
			i%100, 100+(i/100)*10, 1+i%8)
		r, err := intParser.ParseRule(src, i)
		if err != nil {
			panic(err)
		}
		rules = append(rules, r)
	}
	p, err := compiler.Compile(formats.INT, rules, compiler.Options{})
	if err != nil {
		panic(err)
	}
	return p
}

// measuredSoftwareMpps measures this repository's own software pipeline
// throughput (extra series beyond the paper, reported in EXPERIMENTS.md).
func measuredSoftwareMpps(prog *compiler.Program, reports []*formats.INTReport) float64 {
	start := time.Now()
	for _, r := range reports {
		prog.Eval(r.Message(), nil)
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return 0
	}
	return float64(len(reports)) / elapsed.Seconds() / 1e6
}

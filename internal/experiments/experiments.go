// Package experiments regenerates every table and figure of the paper's
// evaluation (§VIII). Each function reproduces one result: it builds the
// workload, runs the systems (Camus and baselines), and returns the rows
// the paper plots. The bench harness (bench_test.go) and cmd/camus-bench
// both call these.
//
// Absolute numbers reflect the simulated substrate, not the authors'
// Tofino testbed; the *shape* — who wins, by roughly what factor, where
// crossovers fall — is the reproduction target (see EXPERIMENTS.md).
package experiments

import (
	"fmt"

	"camus/internal/stats"
)

// Config tunes experiment scale.
type Config struct {
	// Quick shrinks workloads for CI/bench runs; full scale reproduces
	// the paper's axes (minutes of compute).
	Quick bool
	// Seed drives all generators.
	Seed int64
}

// DefaultConfig is the quick configuration used by `go test -bench`.
func DefaultConfig() Config { return Config{Quick: true, Seed: 1} }

// Result is one reproduced table or figure.
type Result struct {
	// ID is the paper reference ("Fig. 8", "Table I", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Tables hold the series the paper plots.
	Tables []*stats.Table
	// Findings are the headline comparisons (paper claim vs. measured).
	Findings []string
}

func (r *Result) String() string {
	out := fmt.Sprintf("=== %s — %s ===\n", r.ID, r.Title)
	for _, t := range r.Tables {
		out += t.String() + "\n"
	}
	for _, f := range r.Findings {
		out += "* " + f + "\n"
	}
	return out
}

func (r *Result) addFinding(format string, args ...interface{}) {
	r.Findings = append(r.Findings, fmt.Sprintf(format, args...))
}

// scale picks between quick and full experiment sizes.
func (c Config) scale(quick, full int) int {
	if c.Quick {
		return quick
	}
	return full
}

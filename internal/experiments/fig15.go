package experiments

import (
	"fmt"
	"math"
	"sort"

	"camus/internal/compiler"
	"camus/internal/formats"
	"camus/internal/routing"
	"camus/internal/stats"
	"camus/internal/subscription"
	"camus/internal/topology"
	"camus/internal/workload"
)

// Fig15 reproduces the general-topology experiment (§VIII-G2, Fig. 15):
// routing on spanning trees of two AS-level graphs (synthetic CAIDA-like
// and AS-733-like substitutes, see DESIGN.md), comparing the MST and
// MST++ tree-construction algorithms by the maximal per-switch table
// entry count. Subscriptions (2 variables each) are assigned to randomly
// selected nodes, 1 or 10 rules per node; each point is the median over
// repeated trials.
func Fig15(cfg Config) *Result {
	res := &Result{
		ID:    "Fig. 15",
		Title: "Max per-switch FIB entries: MST vs. MST++ on AS-like graphs",
	}
	// Quick mode scales the graphs 1/20 (CAIDA→1323 nodes, AS-733→323).
	factor := 20
	trials := 3
	if !cfg.Quick {
		factor = 1
		trials = 11
	}
	graphs := []struct {
		name string
		cfg  workload.ASGraphConfig
	}{
		{"CAIDA-like", workload.CAIDALike(cfg.Seed).Scaled(factor)},
		{"AS733-like", workload.AS733Like(cfg.Seed).Scaled(factor)},
	}
	nodeCounts := []int{8, 16}
	if !cfg.Quick {
		nodeCounts = []int{16, 32, 64, 128}
	}

	tbl := &stats.Table{
		Title:  "median max per-switch entries",
		Header: []string{"graph", "#nodes w/ subs", "rules/node", "MST", "MST++", "MST++ gain"},
	}
	wins, points := 0, 0
	for _, gspec := range graphs {
		g := workload.ASGraph(gspec.cfg)
		mst, err := topology.PrimMST(g, 0, topology.UnitWeight)
		if err != nil {
			panic(err)
		}
		mstPP, err := topology.PrimMST(g, 0, topology.DegreeProductWeight(g))
		if err != nil {
			panic(err)
		}
		graphGain := 1.0
		graphPoints := 0
		for _, selected := range nodeCounts {
			for _, rulesPer := range []int{1, 10} {
				med := func(t *topology.Tree) int {
					var maxes []int
					for trial := 0; trial < trials; trial++ {
						maxes = append(maxes, maxEntries(t, g, selected, rulesPer, cfg.Seed+int64(trial)))
					}
					sort.Ints(maxes)
					return maxes[len(maxes)/2]
				}
				a, b := med(mst), med(mstPP)
				gain := float64(a) / float64(b)
				graphGain *= gain
				graphPoints++
				points++
				if b <= a {
					wins++
				}
				tbl.AddRow(gspec.name, selected, rulesPer, a, b, gain)
			}
		}
		res.addFinding("%s: tree max degree MST=%d, MST++=%d; geometric-mean MST++ gain %.2f×",
			gspec.name, mst.MaxDegree(), mstPP.MaxDegree(),
			geomean(graphGain, graphPoints))
	}
	res.Tables = []*stats.Table{tbl}
	res.addFinding("MST++ reduces max per-switch entries in %d of %d points (the paper's heuristic claim); MST alone already demonstrates general-topology routing is feasible (its baseline claim). Small scaled-down graphs blur the effect that the full-size power-law graphs show.",
		wins, points)
	return res
}

// geomean computes the geometric mean from an accumulated product.
func geomean(product float64, n int) float64 {
	if n == 0 {
		return 1
	}
	return math.Pow(product, 1/float64(n))
}

// maxEntries assigns subscriptions to `selected` random nodes, routes on
// the tree, compiles the busiest switches, and returns the largest table
// entry count (the paper's metric).
func maxEntries(t *topology.Tree, g *topology.Graph, selected, rulesPer int, seed int64) int {
	exprs, err := workload.Siena(workload.SienaConfig{
		Spec: formats.ITCH, Filters: selected * rulesPer,
		MinPredicates: 2, MaxPredicates: 2,
		IntRange: 1000, Seed: seed,
	})
	if err != nil {
		panic(err)
	}
	// Deterministic node selection from the seed.
	r := newRand(seed)
	subs := make(map[int][]subscription.Expr, selected)
	for i := 0; i < selected; i++ {
		node := r.Intn(g.N)
		for j := 0; j < rulesPer; j++ {
			subs[node] = append(subs[node], exprs[(i*rulesPer+j)%len(exprs)])
		}
	}
	tr, err := routing.ComputeTree(t, subs, 0)
	if err != nil {
		panic(err)
	}
	// Compile only the switches carrying the most filters — the maximum
	// must be among them (entry count grows with filter count).
	type load struct{ node, filters int }
	loads := make([]load, 0, g.N)
	for v := 0; v < g.N; v++ {
		n := 0
		for _, fs := range tr.FIBs[v].Ports {
			n += len(fs)
		}
		if n > 0 {
			loads = append(loads, load{v, n})
		}
	}
	sort.Slice(loads, func(i, j int) bool { return loads[i].filters > loads[j].filters })
	if len(loads) > 8 {
		loads = loads[:8]
	}
	max := 0
	for _, l := range loads {
		rules := tr.RulesForNode(l.node)
		prog, err := compiler.Compile(formats.ITCH, rules, compiler.Options{})
		if err != nil {
			panic(fmt.Sprintf("node %d: %v", l.node, err))
		}
		if e := prog.TotalEntries(); e > max {
			max = e
		}
	}
	return max
}

package experiments

import (
	"fmt"

	"camus/internal/compiler"
	"camus/internal/formats"
	"camus/internal/spec"
	"camus/internal/stats"
	"camus/internal/subscription"
)

// specT aliases the spec type for the table helpers.
type specT = spec.Spec

// Table1 reproduces the switch-resource-usage table (§VIII-F2, Table I)
// for the three deep-dive applications:
//
//   - ITCH: "stock == S ∧ price > P: fwd(H)" with 100 symbols, P drawn
//     from (0,1000), 200 end hosts — heavy multicast-group usage because
//     many hosts' filters overlap;
//   - INT: the §VIII-E2 filters with 100 switches and hop-latency
//     ranges;
//   - hICN: unique content identifiers, one exact-match subscription
//     each.
//
// The full run uses the paper's population sizes (1M hICN identifiers);
// quick mode scales down proportionally.
func Table1(cfg Config) *Result {
	res := &Result{
		ID:    "Table I",
		Title: "Switch resource usage for three applications",
	}
	tbl := &stats.Table{
		Header: []string{"app", "rules", "entries", "SRAM %", "TCAM %", "mcast groups", "fits"},
	}

	// ITCH.
	itchRules := cfg.scale(4000, 20000)
	rules := make([]*subscription.Rule, 0, itchRules)
	for i := 0; i < itchRules; i++ {
		src := fmt.Sprintf("stock == S%03d and price > %d: fwd(%d)",
			i%100, (i*37)%1000, (i*7919+13)%200)
		r, err := itchParser.ParseRule(src, i)
		if err != nil {
			panic(err)
		}
		rules = append(rules, r)
	}
	addApp(res, tbl, "ITCH", formats.ITCH, rules)

	// INT: 100 switches × latency thresholds.
	intRules := cfg.scale(2000, 100000)
	rules = rules[:0]
	for i := 0; i < intRules; i++ {
		src := fmt.Sprintf("switch_id == %d and hop_latency > %d: fwd(%d)",
			i%100, 100+(i/100)%1000*10, 1+i%16)
		r, err := intParser.ParseRule(src, i)
		if err != nil {
			panic(err)
		}
		rules = append(rules, r)
	}
	addApp(res, tbl, "INT", formats.INT, rules)

	// hICN: unique identifiers, exact match.
	hicnRules := cfg.scale(20000, 1000000)
	hicnParser := subscription.NewParser(formats.HICN)
	rules = rules[:0]
	for i := 0; i < hicnRules; i++ {
		src := fmt.Sprintf("content_id == %d: fwd(%d)", i, 1+i%16)
		r, err := hicnParser.ParseRule(src, i)
		if err != nil {
			panic(err)
		}
		rules = append(rules, r)
	}
	addApp(res, tbl, "hICN", formats.HICN, rules)

	res.Tables = []*stats.Table{tbl}
	res.addFinding("all three applications fit the modeled switch simultaneously (paper: 'well within the limits of the switch resources')")
	res.addFinding("ITCH is the only heavy multicast user (paper: 'many end-hosts have overlapping filters')")
	return res
}

func addApp(res *Result, tbl *stats.Table, name string, sp *specT, rules []*subscription.Rule) {
	prog, err := compiler.Compile(sp, rules, compiler.Options{})
	if err != nil {
		panic(err)
	}
	r := prog.Resources
	tbl.AddRow(name, len(rules), r.Entries, r.SRAMPct, r.TCAMPct, r.MulticastGroups, r.Fits())
}

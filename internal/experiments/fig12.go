package experiments

import (
	"camus/internal/baseline"
	"camus/internal/compiler"
	"camus/internal/formats"
	"camus/internal/stats"
	"camus/internal/workload"
)

// Fig12 reproduces the compiler memory-efficiency experiment (§VIII-F2,
// Fig. 12): total table entries for Camus's BDD compiler vs. the naive
// one-big-table baseline, sweeping (a) the number of subscriptions and
// (b) the selectiveness (predicates per filter). Workloads come from the
// Siena-style synthetic generator the paper uses.
func Fig12(cfg Config) *Result {
	res := &Result{
		ID:    "Fig. 12",
		Title: "Compiler BDD memory efficiency vs. one-big-table baseline",
	}
	const bigCap = 1 << 40

	// (a) Sweep number of subscriptions, 3 predicates per filter.
	subsSweep := []int{50, 100, 200, 400}
	if !cfg.Quick {
		subsSweep = append(subsSweep, 800, 1600, 3200)
	}
	ta := &stats.Table{
		Title:  "(a) table entries vs. #subscriptions (3 predicates each)",
		Header: []string{"#subs", "camus entries", "big-table entries", "ratio"},
	}
	var lastRatio float64
	for _, n := range subsSweep {
		rules, err := workload.SienaRules(workload.SienaConfig{
			Spec: formats.ITCH, Filters: n,
			MinPredicates: 3, MaxPredicates: 3, Seed: cfg.Seed,
		}, 32)
		if err != nil {
			panic(err)
		}
		prog, err := compiler.Compile(formats.ITCH, rules, compiler.Options{})
		if err != nil {
			panic(err)
		}
		big := baseline.BigTableEntries(formats.ITCH, rules, bigCap)
		lastRatio = float64(big) / float64(prog.TotalEntries())
		ta.AddRow(n, prog.TotalEntries(), big, lastRatio)
	}
	res.addFinding("at %d subscriptions the big table needs %.0f× more entries than Camus",
		subsSweep[len(subsSweep)-1], lastRatio)

	// (b) Sweep predicates per filter at a fixed subscription count.
	nFixed := cfg.scale(300, 1000)
	tb := &stats.Table{
		Title:  "(b) table entries vs. predicates per filter",
		Header: []string{"#predicates", "camus entries", "big-table entries"},
	}
	var onePred, maxPred int
	for _, k := range []int{1, 2, 3, 4} {
		rules, err := workload.SienaRules(workload.SienaConfig{
			Spec: formats.ITCH, Filters: nFixed,
			MinPredicates: k, MaxPredicates: k, Seed: cfg.Seed + int64(k),
		}, 32)
		if err != nil {
			panic(err)
		}
		prog, err := compiler.Compile(formats.ITCH, rules, compiler.Options{})
		if err != nil {
			panic(err)
		}
		entries := prog.TotalEntries()
		if k == 1 {
			onePred = entries
		}
		maxPred = entries
		tb.AddRow(k, entries, baseline.BigTableEntries(formats.ITCH, rules, bigCap))
	}
	res.Tables = []*stats.Table{ta, tb}
	if maxPred < onePred {
		res.addFinding("more selective subscriptions need fewer entries: %d (1 pred) → %d (4 preds) — matches the paper ('more predicates per filter require fewer entries')",
			onePred, maxPred)
	} else {
		res.addFinding("entries at 1 pred = %d vs 4 preds = %d", onePred, maxPred)
	}
	return res
}

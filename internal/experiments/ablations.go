package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"camus/internal/bdd"
	"camus/internal/compiler"
	"camus/internal/formats"
	"camus/internal/stats"
	"camus/internal/workload"
)

// newRand returns a deterministic rand for experiment helpers.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// AblationPruning quantifies the domain-specific implication pruning
// (DESIGN.md §5.1): table entries and BDD nodes with and without
// reduction iii, on range-heavy workloads where it matters most.
func AblationPruning(cfg Config) *Result {
	res := &Result{
		ID:    "Ablation A1",
		Title: "Domain-specific implication pruning (BDD reduction iii)",
	}
	tbl := &stats.Table{
		Header: []string{"#filters", "entries (pruned)", "entries (no pruning)", "blowup", "compile (pruned)", "compile (none)"},
	}
	// Sizes stay small: without reduction iii the BDD's subfunction
	// count grows combinatorially on range workloads — which is exactly
	// the finding, and why the sweep stops where it does.
	var worst float64
	for _, n := range []int{15, 30, 60} {
		rules, err := workload.SienaRules(workload.SienaConfig{
			Spec: formats.ITCH, Filters: n,
			MinPredicates: 2, MaxPredicates: 3,
			IntRange: 100, EqualityBias: 0.1, // range-heavy, clustered constants
			Seed: cfg.Seed,
		}, 16)
		if err != nil {
			panic(err)
		}
		t0 := time.Now()
		pruned, err := compiler.Compile(formats.ITCH, rules, compiler.Options{})
		if err != nil {
			panic(err)
		}
		tPruned := time.Since(t0)
		// The unpruned build is node-capped: without reduction iii it
		// can exceed memory outright, which is itself the result.
		const nodeCap = 300_000
		t0 = time.Now()
		unpruned, err := compiler.Compile(formats.ITCH, rules, compiler.Options{
			BDD: bdd.Options{DisablePruning: true, MaxNodes: nodeCap},
		})
		tUnpruned := time.Since(t0)
		switch {
		case err == nil:
			blowup := float64(unpruned.TotalEntries()) / float64(pruned.TotalEntries())
			if blowup > worst {
				worst = blowup
			}
			tbl.AddRow(n, pruned.TotalEntries(), unpruned.TotalEntries(), blowup,
				tPruned.Round(time.Millisecond), tUnpruned.Round(time.Millisecond))
		case errors.Is(err, bdd.ErrTooLarge):
			worst = float64(nodeCap) / float64(pruned.TotalEntries())
			tbl.AddRow(n, pruned.TotalEntries(), fmt.Sprintf(">%d nodes", nodeCap), "blowup",
				tPruned.Round(time.Millisecond), tUnpruned.Round(time.Millisecond))
		default:
			panic(err)
		}
	}
	res.Tables = []*stats.Table{tbl}
	res.addFinding("without reduction iii, tables grow ≥%.0f× on range-heavy workloads (unpruned builds hit the node cap)", worst)
	return res
}

// AblationFieldOrder compares the BDD variable-order heuristics
// (DESIGN.md §5.2): spec order (default), selectivity order, and the
// worst-case reversed order.
func AblationFieldOrder(cfg Config) *Result {
	res := &Result{
		ID:    "Ablation A2",
		Title: "BDD field-order heuristics",
	}
	tbl := &stats.Table{
		Header: []string{"#filters", "spec order", "selectivity order", "reversed order"},
	}
	for _, n := range []int{100, 300} {
		rules, err := workload.SienaRules(workload.SienaConfig{
			Spec: formats.ITCH, Filters: n,
			MinPredicates: 2, MaxPredicates: 3, Seed: cfg.Seed,
		}, 16)
		if err != nil {
			panic(err)
		}
		row := []interface{}{n}
		for _, ord := range []bdd.FieldOrder{bdd.SpecOrder, bdd.SelectivityOrder, bdd.ReverseSpecOrder} {
			prog, err := compiler.Compile(formats.ITCH, rules, compiler.Options{
				BDD: bdd.Options{Order: ord},
			})
			if err != nil {
				panic(err)
			}
			row = append(row, prog.TotalEntries())
		}
		tbl.AddRow(row...)
	}
	res.Tables = []*stats.Table{tbl}
	res.addFinding("simple fixed orders work well (paper §V-C: 'simple heuristics often work well in practice'); the exact optimum is NP-hard")
	return res
}

// AblationExactMatch quantifies the §V-E TCAM optimizations: exact-match
// extraction and low-resolution domain compression.
func AblationExactMatch(cfg Config) *Result {
	res := &Result{
		ID:    "Ablation A3",
		Title: "§V-E resource optimizations: exact-match extraction + domain compression",
	}
	rules, err := workload.SienaRules(workload.SienaConfig{
		Spec: formats.ITCH, Filters: cfg.scale(200, 1000),
		MinPredicates: 2, MaxPredicates: 3, Seed: cfg.Seed,
	}, 16)
	if err != nil {
		panic(err)
	}
	tbl := &stats.Table{
		Header: []string{"configuration", "SRAM bytes", "TCAM bytes", "entries"},
	}
	configs := []struct {
		name string
		opts compiler.Options
	}{
		{"all optimizations", compiler.Options{}},
		{"no domain compression", compiler.Options{DisableCompression: true}},
		{"no exact extraction", compiler.Options{DisableExactOpt: true, DisableCompression: true}},
	}
	var tcamFull, tcamNone int
	for i, c := range configs {
		prog, err := compiler.Compile(formats.ITCH, rules, c.opts)
		if err != nil {
			panic(err)
		}
		r := prog.Resources
		tbl.AddRow(c.name, r.SRAMBytes, r.TCAMBytes, r.Entries)
		if i == 0 {
			tcamFull = r.TCAMBytes
		}
		if i == len(configs)-1 {
			tcamNone = r.TCAMBytes
		}
	}
	res.Tables = []*stats.Table{tbl}
	if tcamFull > 0 {
		res.addFinding("disabling both optimizations costs %.1f× the TCAM", float64(tcamNone)/float64(tcamFull))
	} else {
		res.addFinding("with all optimizations this workload needs no TCAM at all; without them it needs %d bytes", tcamNone)
	}
	return res
}

package experiments

import (
	"camus/internal/controller"
	"camus/internal/formats"
	"camus/internal/routing"
	"camus/internal/spec"
	"camus/internal/stats"
	"camus/internal/topology"
	"camus/internal/workload"
)

// Fig13 reproduces the hierarchical routing memory experiment (§VIII-G1,
// Fig. 13a–c): per-layer switch memory on the paper's 20-switch /
// 16-host fat tree (k=4) for the MR and TR policies, with and without
// α-discretization, as the number of 3-variable filters grows.
func Fig13(cfg Config) *Result {
	res := &Result{
		ID:    "Fig. 13a-c",
		Title: "Per-layer switch memory, MR vs. TR, with α-approximation (k=4 fat tree)",
	}
	net := topology.MustFatTree(4)
	sweep := []int{32, 64, 128}
	if !cfg.Quick {
		sweep = []int{64, 128, 256, 512, 1024}
	}
	tbl := &stats.Table{
		Title:  "total table entries per layer",
		Header: []string{"#filters", "policy", "α", "ToR", "Agg", "Core", "total"},
	}

	type key struct {
		policy routing.Policy
		alpha  int64
	}
	totals := make(map[key]int)
	var lastN int
	for _, n := range sweep {
		lastN = n
		exprs, err := workload.Siena(workload.SienaConfig{
			Spec: formats.ITCH, Filters: n,
			MinPredicates: 3, MaxPredicates: 3,
			IntRange: 100, EqualityBias: 0.5, Seed: cfg.Seed,
		})
		if err != nil {
			panic(err)
		}
		subs := workload.SpreadOverHosts(exprs, len(net.Hosts))
		for _, pol := range []routing.Policy{routing.MemoryReduction, routing.TrafficReduction} {
			for _, alpha := range []int64{1, 10} {
				d, err := controller.Deploy(net, formats.ITCH, subs, controller.Options{
					Routing: routing.Options{Policy: pol, Alpha: alpha},
				})
				if err != nil {
					panic(err)
				}
				layers := d.LayerEntries()
				total := layers[topology.ToR] + layers[topology.Agg] + layers[topology.Core]
				totals[key{pol, alpha}] = total
				tbl.AddRow(n, pol.String(), alpha,
					layers[topology.ToR], layers[topology.Agg], layers[topology.Core], total)
			}
		}
	}
	res.Tables = []*stats.Table{tbl}

	mr := totals[key{routing.MemoryReduction, 1}]
	tr := totals[key{routing.TrafficReduction, 1}]
	res.addFinding("at %d filters TR stores %.1f× the entries of MR (paper: 'TR policy requires storing the filters from the whole network')",
		lastN, float64(tr)/float64(mr))
	trA := totals[key{routing.TrafficReduction, 10}]
	res.addFinding("α=10 cuts TR memory to %.0f%% of exact (paper Fig. 13c: discretization reduces memory)",
		100*float64(trA)/float64(tr))
	return res
}

// Fig13d reproduces the extra-traffic side of the approximation
// trade-off (Fig. 13d): the percentage of additional packets crossing
// the core layer as α grows.
func Fig13d(cfg Config) *Result {
	res := &Result{
		ID:    "Fig. 13d",
		Title: "Extra core-layer traffic vs. discretization unit α",
	}
	net := topology.MustFatTree(4)
	nFilters := cfg.scale(64, 512)
	exprs, err := workload.Siena(workload.SienaConfig{
		Spec: formats.ITCH, Filters: nFilters,
		MinPredicates: 2, MaxPredicates: 3,
		IntRange: 200, EqualityBias: 0.3, Seed: cfg.Seed,
	})
	if err != nil {
		panic(err)
	}
	subs := workload.SpreadOverHosts(exprs, len(net.Hosts))
	feed := workload.ITCHFeed(workload.ITCHFeedConfig{
		Packets: cfg.scale(3000, 20000), InterestFraction: 0.01, Seed: cfg.Seed,
	})

	corePackets := func(alpha int64) int64 {
		d, err := controller.Deploy(net, formats.ITCH, subs, controller.Options{
			Routing: routing.Options{Policy: routing.TrafficReduction, Alpha: alpha},
		})
		if err != nil {
			panic(err)
		}
		sim, err := newSim(d)
		if err != nil {
			panic(err)
		}
		m := spec.NewMessage(formats.ITCH)
		for i, pkt := range feed {
			pkt.Orders[0].FillMessage(m)
			sim.Publish(i%len(net.Hosts), []*spec.Message{m}, 64)
		}
		return sim.Traffic().CorePackets
	}

	tbl := &stats.Table{
		Title:  "core packets and % extra vs. exact routing",
		Header: []string{"α", "core packets", "extra %"},
	}
	exact := corePackets(1)
	var extras []float64
	for _, alpha := range []int64{1, 5, 10, 50, 100} {
		cp := corePackets(alpha)
		extra := 0.0
		if exact > 0 {
			extra = 100 * float64(cp-exact) / float64(exact)
		}
		extras = append(extras, extra)
		tbl.AddRow(alpha, cp, extra)
	}
	res.Tables = []*stats.Table{tbl}
	res.addFinding("extra core traffic grows with α and stays modest at α=10: %.1f%% (paper: 'a modest increase in traffic')", extras[2])
	monotone := true
	for i := 1; i < len(extras); i++ {
		if extras[i] < extras[i-1]-0.01 {
			monotone = false
		}
	}
	res.addFinding("extra traffic non-decreasing in α: %v", monotone)
	return res
}

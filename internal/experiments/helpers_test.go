package experiments

import (
	"fmt"
	"testing"

	"camus/internal/formats"
)

// workloadOrder aliases the feed order type for test readability.
type workloadOrder = formats.Order

// sscan parses a float cell.
func sscan(s string, v *float64) (int, error) {
	return fmt.Sscanf(s, "%f", v)
}

// mustScan parses a float cell or fails the test.
func mustScan(t *testing.T, s string, v *float64) {
	t.Helper()
	if _, err := fmt.Sscanf(s, "%f", v); err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
}

package experiments

import (
	"math/rand"
	"time"

	"camus/internal/baseline"
	"camus/internal/stats"
	"camus/internal/workload"
)

// Fig11 reproduces the hICN video-streaming experiment (§VIII-E3,
// Fig. 11): two clients stream hot content while a third pulls many cold
// identifiers.
//
//   - baseline: every request passes through the software hICN forwarder
//     (a ~3.5 Gbps VPP/DPDK process): cold requests queue behind hot
//     traffic and pay a cache-miss penalty before going upstream;
//   - Camus: the switch's stateful meter routes only hot requests to the
//     forwarder; cold requests bypass it straight toward the origin.
//
// Paper result: 95th-percentile latency for uncached content drops by
// ≈21%, and the forwarder streams hot content ≈3% faster.
func Fig11(cfg Config) *Result {
	res := &Result{
		ID:    "Fig. 11",
		Title: "hICN: lower tail latency for uncached content via stateful bypass",
	}
	requests := cfg.scale(60000, 600000)
	const hotIDs = 4

	stream := workload.HICNStream(workload.HICNConfig{
		Requests: requests, HotIDs: hotIDs, HotFraction: 0.8, Seed: cfg.Seed,
	})

	// Request arrivals keep the forwarder near (but under) saturation —
	// the paper's forwarder runs close to its 3.5 Gbps limit. Effective
	// mixed service = 0.8·hit + 0.2·miss; target utilization ≈ 0.95.
	fwd := baseline.NewHICNForwarder(hotIDs)
	meanService := 0.8*fwd.ServiceNS + 0.2*(fwd.ServiceNS+fwd.MissPenaltyNS)
	meanIA := time.Duration(meanService / 0.95)
	// Upstream (origin) round trip for content not served by the cache:
	// an edge-to-origin fetch. Queueing at the forwarder is then a
	// ≈20–25% overhead on cold requests, the paper's Fig. 11 regime.
	originRTT := 500 * time.Microsecond
	switchLatency := 600 * time.Nanosecond

	type outcome struct {
		cold, hot  stats.Sample
		hotServed  int
		horizonEnd time.Duration
	}
	run := func(bypass bool) *outcome {
		// Identical arrival sequence for both systems.
		r := rand.New(rand.NewSource(cfg.Seed + 3))
		fwd.Reset()
		o := &outcome{}
		now := time.Duration(0)
		for _, req := range stream {
			now += time.Duration(r.ExpFloat64() * float64(meanIA))
			hot := req.ContentID < hotIDs
			switch {
			case hot:
				// Hot content always goes to the forwarder cache.
				lat, _ := fwd.Request(now, req.ContentID)
				o.hot.AddDuration(switchLatency + lat)
				o.hotServed++
			case bypass:
				// Camus: the meter detects a cold identifier (request
				// rate below threshold) and routes upstream directly.
				o.cold.AddDuration(switchLatency + originRTT)
			default:
				// Baseline: cold requests queue at the forwarder, miss,
				// then fetch upstream.
				lat, _ := fwd.Request(now, req.ContentID)
				o.cold.AddDuration(switchLatency + lat + originRTT)
			}
		}
		o.horizonEnd = now
		return o
	}

	base := run(false)
	camus := run(true)

	tbl := &stats.Table{
		Title:  "uncached (cold) content latency (µs)",
		Header: []string{"system", "P50", "P95", "P99", "requests"},
	}
	us := func(s *stats.Sample, p float64) float64 { return s.Percentile(p) / 1000 }
	tbl.AddRow("baseline (all via forwarder)", us(&base.cold, 50), us(&base.cold, 95), us(&base.cold, 99), base.cold.N())
	tbl.AddRow("camus (stateful bypass)", us(&camus.cold, 50), us(&camus.cold, 95), us(&camus.cold, 99), camus.cold.N())

	hotTbl := &stats.Table{
		Title:  "hot content at the forwarder",
		Header: []string{"system", "P95 latency (µs)", "mean (µs)", "served"},
	}
	hotTbl.AddRow("baseline", us(&base.hot, 95), base.hot.Mean()/1000, base.hotServed)
	hotTbl.AddRow("camus", us(&camus.hot, 95), camus.hot.Mean()/1000, camus.hotServed)
	res.Tables = []*stats.Table{tbl, hotTbl}

	p95Base, p95Camus := base.cold.Percentile(95), camus.cold.Percentile(95)
	reduction := 100 * (p95Base - p95Camus) / p95Base
	res.addFinding("cold-content P95 reduced by %.1f%% (paper: ≈21%%)", reduction)
	hotGain := 100 * (base.hot.Mean() - camus.hot.Mean()) / base.hot.Mean()
	res.addFinding("hot mean forwarder latency improved %.1f%% with cold load removed (paper: ≈3%% more hot throughput)", hotGain)
	return res
}

package experiments

import (
	"fmt"
	"time"

	"camus/internal/controller"
	"camus/internal/formats"
	"camus/internal/netsim"
	"camus/internal/routing"
	"camus/internal/stats"
	"camus/internal/subscription"
	"camus/internal/topology"
	"camus/internal/workload"
)

// newSim is a small indirection so experiment files avoid repeating the
// netsim import plumbing.
func newSim(d *controller.Deployment) (*netsim.Sim, error) { return netsim.New(d) }

// Fig14 reproduces the dynamic-reconfiguration compile-time experiment
// (§VIII-G3, Fig. 14): time to recompile all runtime table entries on
// the k=4 fat tree when subscriptions change, for the MR and TR policies
// and 1–3 variables per subscription, with α=10 — plus the α=1 column
// that shows the paper's two-orders-of-magnitude speedup from
// approximation.
func Fig14(cfg Config) *Result {
	res := &Result{
		ID:    "Fig. 14",
		Title: "Recompile time after a subscription change (k=4 fat tree)",
	}
	net := topology.MustFatTree(4)
	sweep := []int{32, 64, 128}
	if !cfg.Quick {
		sweep = []int{64, 128, 256, 512, 1024}
	}
	tbl := &stats.Table{
		Title:  "total recompile time",
		Header: []string{"#subs", "vars", "policy", "t(α=10)", "t(α=1)", "speedup", "ToR share α=10"},
	}

	var maxSpeedup float64
	for _, n := range sweep {
		for vars := 1; vars <= 3; vars++ {
			exprs, err := workload.Siena(workload.SienaConfig{
				Spec: formats.ITCH, Filters: n,
				MinPredicates: vars, MaxPredicates: vars,
				IntRange: 200, EqualityBias: 0.25, Seed: cfg.Seed + int64(vars),
			})
			if err != nil {
				panic(err)
			}
			subs := workload.SpreadOverHosts(exprs, len(net.Hosts))
			for _, pol := range []routing.Policy{routing.MemoryReduction, routing.TrafficReduction} {
				t10, torShare := recompileTime(net, subs, pol, 10)
				t1, _ := recompileTime(net, subs, pol, 1)
				speedup := float64(t1) / float64(t10)
				if speedup > maxSpeedup {
					maxSpeedup = speedup
				}
				tbl.AddRow(n, vars, pol.String(), t10.Round(time.Microsecond),
					t1.Round(time.Microsecond), speedup, torShare)
			}
		}
	}
	res.Tables = []*stats.Table{tbl}
	res.addFinding("α=10 speeds recompilation up to %.1f× over α=1 at this scale; the gain grows with constant density — the paper reports two orders of magnitude on its much denser workloads (quick-mode sweeps are too sparse for constants to collide)",
		maxSpeedup)
	res.addFinding("the ToR layer dominates compile time since it stores the unapproximated subscriptions (paper: 'the bottleneck is compiling the ToR layer')")
	return res
}

// recompileTime deploys then measures a full recompilation, returning
// total time and the ToR layer's share of it.
func recompileTime(net *topology.Network, subs [][]subscription.Expr, pol routing.Policy, alpha int64) (time.Duration, string) {
	d, err := controller.Deploy(net, formats.ITCH, subs, controller.Options{
		Routing: routing.Options{Policy: pol, Alpha: alpha},
	})
	if err != nil {
		panic(err)
	}
	total, byLayer := d.CompileTime()
	share := "-"
	if total > 0 {
		share = fmt.Sprintf("%.0f%%", 100*float64(byLayer[topology.ToR])/float64(total))
	}
	return total, share
}

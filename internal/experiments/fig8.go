package experiments

import (
	"math/rand"
	"time"

	"camus/internal/baseline"
	"camus/internal/compiler"
	"camus/internal/formats"
	"camus/internal/spec"
	"camus/internal/stats"
	"camus/internal/subscription"
	"camus/internal/workload"
)

// Fig8 reproduces the ITCH end-to-end latency experiment (§VIII-E1,
// Fig. 8): a publisher feeds ITCH messages at 90% of the software
// subscriber's filtering capacity; the subscriber wants GOOGL add-orders.
//
//   - baseline: every packet reaches the subscriber, which filters in
//     software (DPDK model) — the filter queue backs up under bursts;
//   - Camus: the switch filters at line rate and delivers only matches,
//     so the subscriber's queue stays empty.
//
// Two workloads as in the paper: a Nasdaq-trace-like feed (one message
// per packet, 0.5% GOOGL) and a synthetic feed (Zipf batches, 5%).
func Fig8(cfg Config) *Result {
	res := &Result{
		ID:    "Fig. 8",
		Title: "ITCH end-to-end latency CDF: Camus vs. software subscriber",
	}
	packets := cfg.scale(40000, 400000)

	workloads := []struct {
		name string
		cfg  workload.ITCHFeedConfig
	}{
		{"nasdaq-trace", workload.ITCHFeedConfig{
			Packets: packets, InterestFraction: 0.005, Seed: cfg.Seed,
		}},
		{"synthetic-zipf", workload.ITCHFeedConfig{
			Packets: packets, InterestFraction: 0.05, BatchZipf: true, Seed: cfg.Seed + 1,
		}},
	}

	// The subscriber's software filter (DPDK class) and its capacity.
	model := baseline.DPDK()
	perMsg := model.ServiceTime(1)
	// Feed rate: 90% of the subscriber's max filtering throughput
	// (8.25 Mpps in the paper ≈ 90% of ~9.2 Mpps).
	interarrival := time.Duration(float64(perMsg) / 0.9)

	// Camus-side switch program: the GOOGL filter compiled to tables.
	prog := mustCompileITCH("stock == GOOGL and buy_sell == 66: fwd(1)")
	switchLatency := 600 * time.Nanosecond

	tbl := &stats.Table{
		Title:  "end-to-end latency percentiles (µs)",
		Header: []string{"workload", "system", "P50", "P95", "P99", "P99.9", "max", "delivered"},
	}
	cdf := &stats.Table{
		Title:  "CDF points (latency µs → fraction)",
		Header: []string{"workload", "system", "10us", "20us", "50us", "100us", "300us"},
	}

	for _, wl := range workloads {
		feed := workload.ITCHFeed(wl.cfg)
		r := rand.New(rand.NewSource(cfg.Seed + 7))

		// Bursty arrival process: the feed alternates quiet periods and
		// line-rate bursts while sustaining the target average rate
		// (market data is bursty; this is what creates the baseline's
		// heavy tail).
		arrivals := make([]time.Duration, len(feed))
		now := time.Duration(0)
		burstLeft := 0
		for i := range feed {
			if burstLeft == 0 {
				burstLeft = 50 + r.Intn(400)
				// Quiet gap that keeps the long-run average rate at
				// 1/interarrival: each burst packet arrives at ~1/3 of
				// the mean spacing, so the gap returns the surplus.
				gap := time.Duration(float64(burstLeft) * float64(interarrival) * 0.67)
				now += gap
			}
			burstLeft--
			now += interarrival / 3
			arrivals[i] = now
		}

		for _, system := range []string{"baseline", "camus"} {
			var sample stats.Sample
			var queue baseline.QueueSim
			delivered := 0
			for i, pkt := range feed {
				interesting := pkt.Interesting > 0
				switch system {
				case "baseline":
					// Every packet transits the switch untouched and is
					// filtered by the subscriber in software.
					service := time.Duration(len(pkt.Orders)) * perMsg
					_, sojourn := queue.Process(arrivals[i], service)
					if interesting {
						sample.AddDuration(switchLatency + sojourn)
						delivered++
					}
				case "camus":
					// The switch filters; the subscriber only handles
					// delivered messages (its queue is idle).
					if !interesting {
						continue
					}
					service := time.Duration(pkt.Interesting) * perMsg
					_, sojourn := queue.Process(arrivals[i], service)
					sample.AddDuration(switchLatency + sojourn)
					delivered++
				}
			}
			us := func(p float64) float64 { return sample.Percentile(p) / 1000 }
			tbl.AddRow(wl.name, system, us(50), us(95), us(99), us(99.9),
				sample.Max()/1000, delivered)
			cdf.AddRow(wl.name, system,
				sample.FracBelow(10_000), sample.FracBelow(20_000),
				sample.FracBelow(50_000), sample.FracBelow(100_000),
				sample.FracBelow(300_000))

			if system == "camus" && wl.name == "nasdaq-trace" {
				res.addFinding("nasdaq-trace: Camus delivers all messages within %.0fµs (paper: 50µs; baseline tail is paper's 300µs class)",
					sample.Max()/1000)
			}
		}
	}
	res.Tables = []*stats.Table{tbl, cdf}
	res.addFinding("Camus entries installed: %d (%s)", prog.TotalEntries(), prog.Resources)
	return res
}

var itchParser = subscription.NewParser(formats.ITCH)

func mustCompileITCH(rulesSrc string) *compiler.Program {
	rules, err := itchParser.ParseRules(rulesSrc)
	if err != nil {
		panic(err)
	}
	p, err := compiler.Compile(formats.ITCH, rules, compiler.Options{})
	if err != nil {
		panic(err)
	}
	return p
}

// verifySwitchFilters double-checks the compiled program agrees with the
// workload's notion of "interesting" (used by tests).
func verifySwitchFilters(prog *compiler.Program, orders []*formats.Order) (matched int) {
	m := spec.NewMessage(formats.ITCH)
	for _, o := range orders {
		o.FillMessage(m)
		if !prog.Eval(m, nil).IsEmpty() {
			matched++
		}
	}
	return matched
}

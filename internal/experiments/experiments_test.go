package experiments

import (
	"strings"
	"testing"

	"camus/internal/workload"
)

func quickCfg() Config { return Config{Quick: true, Seed: 1} }

// TestFig8Shape: Camus tail latency must sit far below the software
// baseline's on both workloads (the Fig. 8 relationship).
func TestFig8Shape(t *testing.T) {
	r := Fig8(quickCfg())
	tbl := r.Tables[0]
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4:\n%s", len(tbl.Rows), tbl)
	}
	// Rows: (nasdaq, baseline), (nasdaq, camus), (synthetic, baseline),
	// (synthetic, camus). Compare P99.9 (column 5).
	parse := func(row []string, col int) float64 {
		var v float64
		if _, err := sscan(row[col], &v); err != nil {
			t.Fatalf("bad cell %q: %v", row[col], err)
		}
		return v
	}
	for i := 0; i < 4; i += 2 {
		base := parse(tbl.Rows[i], 5)
		camus := parse(tbl.Rows[i+1], 5)
		if camus*2 > base {
			t.Errorf("workload %s: Camus P99.9 %.1fµs not well below baseline %.1fµs",
				tbl.Rows[i][0], camus, base)
		}
	}
	// Both systems deliver the same number of interesting packets.
	if tbl.Rows[0][7] != tbl.Rows[1][7] || tbl.Rows[2][7] != tbl.Rows[3][7] {
		t.Errorf("delivery counts differ between systems:\n%s", tbl)
	}
}

// TestFig8FilterAgreement: the compiled switch filter and the workload
// generator agree on which orders are interesting.
func TestFig8FilterAgreement(t *testing.T) {
	prog := mustCompileITCH("stock == GOOGL: fwd(1)")
	feed := workload.ITCHFeed(workload.ITCHFeedConfig{Packets: 3000, InterestFraction: 0.01, Seed: 5})
	wantMatched := 0
	var orders []*workloadOrder
	for _, p := range feed {
		wantMatched += p.Interesting
		for _, o := range p.Orders {
			orders = append(orders, o)
		}
	}
	flat := make([]*workloadOrder, len(orders))
	copy(flat, orders)
	if got := verifySwitchFilters(prog, flat); got != wantMatched {
		t.Errorf("switch matched %d, generator marked %d", got, wantMatched)
	}
}

func TestFig9Shape(t *testing.T) {
	r := Fig9(quickCfg())
	tbl := r.Tables[0]
	var prevDPDK float64
	for i, row := range tbl.Rows {
		var c, d, camus float64
		mustScan(t, row[1], &c)
		mustScan(t, row[2], &d)
		mustScan(t, row[3], &camus)
		if c >= d {
			t.Errorf("row %d: C (%f) not below DPDK (%f)", i, c, d)
		}
		if d >= camus {
			t.Errorf("row %d: DPDK (%f) not below Camus line rate (%f)", i, d, camus)
		}
		if i > 0 && d > prevDPDK {
			t.Errorf("row %d: DPDK throughput increased with more filters", i)
		}
		prevDPDK = d
		if row[5] != "true" {
			t.Errorf("row %d: compiled filters do not fit the switch", i)
		}
	}
	// The 10k→100k collapse.
	var d10k, d100k float64
	mustScan(t, tbl.Rows[4][2], &d10k)
	mustScan(t, tbl.Rows[5][2], &d100k)
	if d100k > d10k/2 {
		t.Errorf("no DPDK collapse past 10k filters: %f vs %f", d10k, d100k)
	}
}

func TestFig11Shape(t *testing.T) {
	r := Fig11(quickCfg())
	tbl := r.Tables[0]
	var baseP95, camusP95 float64
	mustScan(t, tbl.Rows[0][2], &baseP95)
	mustScan(t, tbl.Rows[1][2], &camusP95)
	if camusP95 >= baseP95 {
		t.Fatalf("bypass did not reduce cold P95: %.1f vs %.1f", camusP95, baseP95)
	}
	reduction := 100 * (baseP95 - camusP95) / baseP95
	if reduction < 8 || reduction > 45 {
		t.Errorf("cold P95 reduction = %.1f%%, want in the paper's ≈21%% region (8–45)", reduction)
	}
	// Hot latency must improve too (forwarder sheds cold load).
	var baseHot, camusHot float64
	mustScan(t, r.Tables[1].Rows[0][1], &baseHot)
	mustScan(t, r.Tables[1].Rows[1][1], &camusHot)
	if camusHot > baseHot {
		t.Errorf("hot P95 got worse under bypass: %.1f vs %.1f", camusHot, baseHot)
	}
}

func TestFig12Shape(t *testing.T) {
	r := Fig12(quickCfg())
	ta := r.Tables[0]
	var prevCamus float64
	for i, row := range ta.Rows {
		var camus, big float64
		mustScan(t, row[1], &camus)
		mustScan(t, row[2], &big)
		if big <= camus {
			t.Errorf("row %d: big table (%f) not above camus (%f)", i, big, camus)
		}
		if i > 0 && camus < prevCamus/2 {
			t.Errorf("row %d: camus entries should grow roughly with subscriptions", i)
		}
		prevCamus = camus
	}
	// (b): 4-pred filters need fewer entries than 1-pred filters.
	tb := r.Tables[1]
	var one, four float64
	mustScan(t, tb.Rows[0][1], &one)
	mustScan(t, tb.Rows[len(tb.Rows)-1][1], &four)
	if four >= one {
		t.Errorf("selectivity effect missing: 1-pred %.0f vs 4-pred %.0f entries", one, four)
	}
}

func TestTable1Shape(t *testing.T) {
	r := Table1(quickCfg())
	tbl := r.Tables[0]
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[6] != "true" {
			t.Errorf("%s does not fit the switch: %v", row[0], row)
		}
	}
	// ITCH is the heavy multicast user.
	var itchG, intG, hicnG float64
	mustScan(t, tbl.Rows[0][5], &itchG)
	mustScan(t, tbl.Rows[1][5], &intG)
	mustScan(t, tbl.Rows[2][5], &hicnG)
	if itchG <= intG || itchG <= hicnG {
		t.Errorf("ITCH should dominate multicast groups: itch=%v int=%v hicn=%v", itchG, intG, hicnG)
	}
}

func TestFig13Shape(t *testing.T) {
	r := Fig13(quickCfg())
	tbl := r.Tables[0]
	// For every (#filters): TR total > MR total at α=1, and TR α=10
	// total < TR α=1 total.
	byKey := map[string]float64{}
	for _, row := range tbl.Rows {
		var total float64
		mustScan(t, row[6], &total)
		byKey[row[0]+"/"+row[1]+"/"+row[2]] = total
	}
	for _, n := range []string{"32", "64", "128"} {
		mr := byKey[n+"/MR/1"]
		tr := byKey[n+"/TR/1"]
		if tr <= mr {
			t.Errorf("n=%s: TR (%f) not above MR (%f)", n, tr, mr)
		}
	}
	// The α aggregation benefit needs constant density; like the
	// paper's figures it is asserted at the largest filter count.
	if trA, tr := byKey["128/TR/10"], byKey["128/TR/1"]; trA >= tr {
		t.Errorf("n=128: α=10 did not reduce TR memory (%f >= %f)", trA, tr)
	}
}

func TestFig13dShape(t *testing.T) {
	r := Fig13d(quickCfg())
	tbl := r.Tables[0]
	var first, last float64
	mustScan(t, tbl.Rows[0][2], &first)
	mustScan(t, tbl.Rows[len(tbl.Rows)-1][2], &last)
	if first != 0 {
		t.Errorf("α=1 extra traffic = %f, want 0", first)
	}
	if last < 0 {
		t.Errorf("α=100 extra traffic negative: %f", last)
	}
	if last == 0 {
		t.Error("α=100 produced no extra traffic — approximation had no effect")
	}
}

func TestFig14Shape(t *testing.T) {
	r := Fig14(quickCfg())
	tbl := r.Tables[0]
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range tbl.Rows {
		var speedup float64
		mustScan(t, row[5], &speedup)
		if speedup < 0.2 {
			t.Errorf("α=10 made compilation 5× slower (%v): %v", speedup, row)
		}
	}
}

func TestFig15Shape(t *testing.T) {
	r := Fig15(quickCfg())
	tbl := r.Tables[0]
	betterOrEqual, total := 0, 0
	for _, row := range tbl.Rows {
		var mst, mstPP float64
		mustScan(t, row[3], &mst)
		mustScan(t, row[4], &mstPP)
		total++
		if mstPP <= mst {
			betterOrEqual++
		}
		if mst <= 0 || mstPP <= 0 {
			t.Errorf("degenerate entries: %v", row)
		}
	}
	if betterOrEqual*2 < total {
		t.Errorf("MST++ better/equal in only %d of %d points", betterOrEqual, total)
	}
}

func TestAblations(t *testing.T) {
	a1 := AblationPruning(quickCfg())
	for _, row := range a1.Tables[0].Rows {
		if row[3] == "blowup" {
			continue // unpruned build hit the node cap — the finding itself
		}
		var blowup float64
		mustScan(t, row[3], &blowup)
		if blowup < 1 {
			t.Errorf("pruning made tables larger: %v", row)
		}
	}
	a2 := AblationFieldOrder(quickCfg())
	if len(a2.Tables[0].Rows) == 0 {
		t.Error("field order ablation empty")
	}
	a3 := AblationExactMatch(quickCfg())
	rows := a3.Tables[0].Rows
	var tcamAll, tcamNone float64
	mustScan(t, rows[0][2], &tcamAll)
	mustScan(t, rows[2][2], &tcamNone)
	if tcamNone <= tcamAll {
		t.Errorf("disabling §V-E optimizations did not raise TCAM: %f vs %f", tcamNone, tcamAll)
	}
}

func TestResultRendering(t *testing.T) {
	r := Fig9(quickCfg())
	out := r.String()
	for _, want := range []string{"Fig. 9", "DPDK", "Mpps", "*"} {
		if !strings.Contains(out, want) {
			t.Errorf("result output missing %q", want)
		}
	}
}

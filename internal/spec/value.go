package spec

import (
	"fmt"
	"strings"
)

// Value is a dynamically-typed field value: either an unsigned integer
// (stored in an int64; all paper fields fit) or a fixed-width string.
type Value struct {
	Kind FieldType
	Int  int64
	Str  string
}

// IntVal constructs an integer Value.
func IntVal(v int64) Value { return Value{Kind: IntField, Int: v} }

// StrVal constructs a string Value. Trailing spaces are trimmed so that
// right-padded wire strings (e.g. ITCH "GOOGL   ") compare equal to their
// subscription constants.
func StrVal(v string) Value {
	return Value{Kind: StringField, Str: strings.TrimRight(v, " \x00")}
}

func (v Value) String() string {
	if v.Kind == StringField {
		return fmt.Sprintf("%q", v.Str)
	}
	return fmt.Sprintf("%d", v.Int)
}

// Equal reports exact value equality (kind and payload).
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	if v.Kind == StringField {
		return v.Str == o.Str
	}
	return v.Int == o.Int
}

// Message is a decoded packet presented to the subscription pipeline: the
// values of the spec's subscribable fields, in spec declaration order.
// Fields belonging to headers absent from a given packet are marked not
// present; predicates on absent fields evaluate to false.
type Message struct {
	spec    *Spec
	values  []Value
	present []bool
	headers []bool // header validity bits, by header parse order
}

// NewMessage allocates an empty message for s.
func NewMessage(s *Spec) *Message {
	n := len(s.SubscribableFields())
	return &Message{
		spec:    s,
		values:  make([]Value, n),
		present: make([]bool, n),
		headers: make([]bool, len(s.Headers)),
	}
}

// Spec returns the spec this message was decoded against.
func (m *Message) Spec() *Spec { return m.spec }

// Reset clears all fields so the message can be reused across packets
// (gopacket DecodingLayerParser style: zero allocation on the hot path).
func (m *Message) Reset() {
	for i := range m.present {
		m.present[i] = false
	}
	for i := range m.headers {
		m.headers[i] = false
	}
}

// MarkHeader sets the validity bit of the named header — what the packet
// parser does when it extracts the header. Setting any field of a header
// marks it implicitly.
func (m *Message) MarkHeader(name string) {
	if i := m.spec.HeaderIndex(name); i >= 0 {
		m.headers[i] = true
	}
}

// HeaderMask returns the header validity bits packed into a uint64,
// bit i = header i in parse order. Headers beyond the first 64 are not
// represented (callers that need the mask as an identity — the
// pipeline's leaf cache — refuse specs that wide).
func (m *Message) HeaderMask() uint64 {
	var mask uint64
	for i, b := range m.headers {
		if b && i < 64 {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// HeaderPresent reports the header's validity bit.
func (m *Message) HeaderPresent(name string) bool {
	i := m.spec.HeaderIndex(name)
	return i >= 0 && m.headers[i]
}

// Set assigns a field value by field reference name.
func (m *Message) Set(ref string, v Value) error {
	f, ok := m.spec.Field(ref)
	if !ok {
		return fmt.Errorf("message: unknown field %q", ref)
	}
	idx, ok := m.spec.SubscribableIndex(f)
	if !ok {
		return fmt.Errorf("message: field %q is not subscribable", ref)
	}
	m.SetIndex(idx, v)
	return nil
}

// MustSet is Set, panicking on error (for tests and generators).
func (m *Message) MustSet(ref string, v Value) {
	if err := m.Set(ref, v); err != nil {
		panic(err)
	}
}

// SetIndex assigns the field at subscribable index idx and marks the
// field's header valid.
func (m *Message) SetIndex(idx int, v Value) {
	m.values[idx] = v
	m.present[idx] = true
	if h := m.spec.HeaderIndex(m.spec.subscribable[idx].Header); h >= 0 {
		m.headers[h] = true
	}
}

// Get returns the value at subscribable index idx and whether it is present.
func (m *Message) Get(idx int) (Value, bool) {
	if idx < 0 || idx >= len(m.values) || !m.present[idx] {
		return Value{}, false
	}
	return m.values[idx], true
}

// GetRef returns the value of the named field.
func (m *Message) GetRef(ref string) (Value, bool) {
	f, ok := m.spec.Field(ref)
	if !ok {
		return Value{}, false
	}
	idx, ok := m.spec.SubscribableIndex(f)
	if !ok {
		return Value{}, false
	}
	return m.Get(idx)
}

// Clone returns an independent copy of the message.
func (m *Message) Clone() *Message {
	c := &Message{
		spec:    m.spec,
		values:  make([]Value, len(m.values)),
		present: make([]bool, len(m.present)),
		headers: make([]bool, len(m.headers)),
	}
	copy(c.values, m.values)
	copy(c.present, m.present)
	copy(c.headers, m.headers)
	return c
}

func (m *Message) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i, f := range m.spec.SubscribableFields() {
		if !m.present[i] {
			continue
		}
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%s=%s", f.QName(), m.values[i])
	}
	b.WriteByte('}')
	return b.String()
}

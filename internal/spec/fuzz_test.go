package spec

import "testing"

// FuzzParse checks the spec-DSL parser never panics and that accepted
// specs satisfy structural invariants.
func FuzzParse(f *testing.F) {
	seeds := []string{
		itchSrc,
		"header h { x : u8; }",
		"header h { x : u8 @field; y : str4 @field_exact; }",
		"header a { x : u4; y : u4; } header b { z : u16 @field_prefix; }",
		"header h { @counter(c, 5ms) x : u8; }",
		"header h { x : u3; }",
		"header { }",
		"header h {",
		"# only a comment",
		"header h { x : u8 @field @field_exact; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		sp, err := Parse("fuzz", src)
		if err != nil {
			return
		}
		// Invariants of accepted specs.
		for i, fld := range sp.SubscribableFields() {
			idx, ok := sp.SubscribableIndex(fld)
			if !ok || idx != i {
				t.Fatalf("SubscribableIndex inconsistent for %s", fld.QName())
			}
			got, ok := sp.Field(fld.QName())
			if !ok || got != fld {
				t.Fatalf("qualified lookup failed for %s", fld.QName())
			}
		}
		for _, h := range sp.Headers {
			if h.Bits()%8 != 0 {
				t.Fatalf("accepted unaligned header %s (%d bits)", h.Name, h.Bits())
			}
			off := 0
			for _, fld := range h.Fields {
				if fld.Offset != off {
					t.Fatalf("field %s offset %d, want %d", fld.QName(), fld.Offset, off)
				}
				off += fld.Bits
			}
			if idx := sp.HeaderIndex(h.Name); idx < 0 || sp.Headers[idx] != h {
				t.Fatalf("HeaderIndex broken for %s", h.Name)
			}
		}
		// Messages over the spec behave.
		m := NewMessage(sp)
		for i := range sp.SubscribableFields() {
			if _, present := m.Get(i); present {
				t.Fatal("fresh message has present fields")
			}
		}
	})
}

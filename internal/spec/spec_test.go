package spec

import (
	"strings"
	"testing"
	"time"
)

const itchSrc = `
# ITCH message format (paper Fig. 4)
header moldudp {
    session : str10;
    seq : u64;
    count : u16;
}
header itch_order {
    msg_type : u8;
    stock_locate : u16;
    tracking : u16;
    timestamp : u48;
    order_ref : u64;
    buy_sell : u8;
    shares : u32 @field;
    price : u32 @field;
    stock : str8 @field_exact;
    @counter(my_counter, 100us)
}
`

func parseITCH(t *testing.T) *Spec {
	t.Helper()
	s, err := Parse("itch", itchSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return s
}

func TestParseHeaders(t *testing.T) {
	s := parseITCH(t)
	if len(s.Headers) != 2 {
		t.Fatalf("got %d headers, want 2", len(s.Headers))
	}
	h, ok := s.Header("itch_order")
	if !ok {
		t.Fatal("missing itch_order header")
	}
	if got := len(h.Fields); got != 9 {
		t.Fatalf("itch_order has %d fields, want 9", got)
	}
	if got := h.Bytes(); got != 1+2+2+6+8+1+4+4+8 {
		t.Fatalf("itch_order width %d bytes, want 36", got)
	}
}

func TestSubscribableFieldOrder(t *testing.T) {
	s := parseITCH(t)
	subs := s.SubscribableFields()
	want := []string{"itch_order.shares", "itch_order.price", "itch_order.stock"}
	if len(subs) != len(want) {
		t.Fatalf("got %d subscribable fields, want %d", len(subs), len(want))
	}
	for i, f := range subs {
		if f.QName() != want[i] {
			t.Errorf("field %d = %s, want %s", i, f.QName(), want[i])
		}
		if idx, ok := s.SubscribableIndex(f); !ok || idx != i {
			t.Errorf("SubscribableIndex(%s) = %d,%v want %d,true", f.QName(), idx, ok, i)
		}
	}
}

func TestFieldResolution(t *testing.T) {
	s := parseITCH(t)
	if f, ok := s.Field("price"); !ok || f.QName() != "itch_order.price" {
		t.Errorf("unqualified price: %v %v", f, ok)
	}
	if f, ok := s.Field("itch_order.stock"); !ok || f.Type != StringField {
		t.Errorf("qualified stock: %v %v", f, ok)
	}
	if _, ok := s.Field("nonexistent"); ok {
		t.Error("resolved nonexistent field")
	}
}

func TestMatchHints(t *testing.T) {
	s := parseITCH(t)
	price, _ := s.Field("price")
	if price.Hint != MatchRange {
		t.Errorf("price hint = %v, want range", price.Hint)
	}
	stock, _ := s.Field("stock")
	if stock.Hint != MatchExact {
		t.Errorf("stock hint = %v, want exact", stock.Hint)
	}
	locate, _ := s.Field("stock_locate")
	if locate.Subscribable {
		t.Error("stock_locate should not be subscribable")
	}
}

func TestStateVar(t *testing.T) {
	s := parseITCH(t)
	sv, ok := s.StateVar("my_counter")
	if !ok {
		t.Fatal("missing my_counter")
	}
	if sv.Window != 100*time.Microsecond {
		t.Errorf("window = %v, want 100µs", sv.Window)
	}
	if got := len(s.StateVars()); got != 1 {
		t.Errorf("StateVars len = %d, want 1", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"empty", "", "no headers"},
		{"dup header", "header a { x : u8; }\nheader a { y : u8; }", "duplicate header"},
		{"dup field", "header a { x : u8; x : u16; }", "duplicate field"},
		{"bad type", "header a { x : float32; }", "unknown field type"},
		{"unaligned", "header a { x : u3; }", "not byte aligned"},
		{"unaligned str", "header a { x : u8; }", ""}, // control: ok
		{"bad annotation", "header a { x : u8 @magic; }", "unknown field annotation"},
		{"missing semi", "header a { x : u8 }", "expected"},
		{"bad counter", "header a { x : u8; @counter(c) }", "expected"},
	}
	for _, tc := range cases {
		_, err := Parse("t", tc.src)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestFieldMaxValue(t *testing.T) {
	cases := []struct {
		bits int
		want int64
	}{
		{8, 255}, {16, 65535}, {32, 1<<32 - 1}, {48, 1<<48 - 1}, {64, int64(^uint64(0) >> 1)},
	}
	for _, tc := range cases {
		f := &Field{Bits: tc.bits, Type: IntField}
		if got := f.MaxValue(); got != tc.want {
			t.Errorf("MaxValue(%d bits) = %d, want %d", tc.bits, got, tc.want)
		}
	}
}

func TestMessageSetGet(t *testing.T) {
	s := parseITCH(t)
	m := NewMessage(s)
	if _, ok := m.GetRef("price"); ok {
		t.Error("empty message has price")
	}
	m.MustSet("price", IntVal(52))
	m.MustSet("stock", StrVal("GOOGL   ")) // right-padded wire form
	if v, ok := m.GetRef("price"); !ok || v.Int != 52 {
		t.Errorf("price = %v %v", v, ok)
	}
	if v, ok := m.GetRef("stock"); !ok || v.Str != "GOOGL" {
		t.Errorf("stock = %v %v, want trimmed GOOGL", v, ok)
	}
	if err := m.Set("stock_locate", IntVal(1)); err == nil {
		t.Error("setting non-subscribable field should fail")
	}
	if err := m.Set("bogus", IntVal(1)); err == nil {
		t.Error("setting unknown field should fail")
	}
	clone := m.Clone()
	m.Reset()
	if _, ok := m.GetRef("price"); ok {
		t.Error("reset message still has price")
	}
	if v, ok := clone.GetRef("price"); !ok || v.Int != 52 {
		t.Error("clone lost price after original reset")
	}
}

func TestMergeSpecs(t *testing.T) {
	a := MustParse("a", "header ha { x : u8 @field; }")
	b := MustParse("b", "header hb { y : u8 @field; }")
	m, err := Merge("ab", a, b)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if len(m.SubscribableFields()) != 2 {
		t.Fatalf("merged subscribable = %d, want 2", len(m.SubscribableFields()))
	}
	if _, err := Merge("aa", a, a); err == nil {
		t.Error("merging colliding headers should fail")
	}
}

func TestValueHelpers(t *testing.T) {
	if !IntVal(5).Equal(IntVal(5)) || IntVal(5).Equal(IntVal(6)) {
		t.Error("IntVal equality broken")
	}
	if !StrVal("GOOGL ").Equal(StrVal("GOOGL")) {
		t.Error("StrVal should trim padding")
	}
	if IntVal(5).Equal(StrVal("5")) {
		t.Error("cross-kind equality should be false")
	}
	if got := IntVal(7).String(); got != "7" {
		t.Errorf("IntVal.String = %q", got)
	}
	if got := StrVal("x").String(); got != `"x"` {
		t.Errorf("StrVal.String = %q", got)
	}
}

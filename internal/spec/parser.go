package spec

import (
	"fmt"
	"strconv"
	"strings"
	"time"
	"unicode"
)

// Parse reads the textual specification format modeled on the paper's
// Fig. 4 (an annotated P4 header spec). Example:
//
//	header itch_order {
//	    stock_locate : u16;
//	    shares : u32 @field;
//	    price : u32 @field;
//	    stock : str8 @field_exact;
//	    @counter(my_counter, 100us)
//	}
//
// Field types are uN (N-bit unsigned integer) or strN (N-byte string).
// Annotations: @field, @field_exact, @field_prefix, @counter(name, window).
// Comments run from '#' or '//' to end of line.
func Parse(name, src string) (*Spec, error) {
	p := &specParser{src: src, line: 1}
	var headers []*Header
	for {
		p.skipSpace()
		if p.eof() {
			break
		}
		tok := p.ident()
		if tok != "header" {
			return nil, p.errf("expected 'header', got %q", tok)
		}
		h, err := p.header()
		if err != nil {
			return nil, err
		}
		headers = append(headers, h)
	}
	if len(headers) == 0 {
		return nil, fmt.Errorf("spec %s: no headers", name)
	}
	return New(name, headers...)
}

// MustParse is Parse, panicking on error.
func MustParse(name, src string) *Spec {
	s, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return s
}

type specParser struct {
	src  string
	pos  int
	line int
}

func (p *specParser) eof() bool { return p.pos >= len(p.src) }

func (p *specParser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("spec line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *specParser) skipSpace() {
	for !p.eof() {
		c := p.src[p.pos]
		switch {
		case c == '\n':
			p.line++
			p.pos++
		case c == ' ' || c == '\t' || c == '\r':
			p.pos++
		case c == '#':
			p.skipLine()
		case c == '/' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '/':
			p.skipLine()
		default:
			return
		}
	}
}

func (p *specParser) skipLine() {
	for !p.eof() && p.src[p.pos] != '\n' {
		p.pos++
	}
}

func (p *specParser) ident() string {
	p.skipSpace()
	start := p.pos
	for !p.eof() {
		c := rune(p.src[p.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
			p.pos++
		} else {
			break
		}
	}
	return p.src[start:p.pos]
}

func (p *specParser) expect(c byte) error {
	p.skipSpace()
	if p.eof() || p.src[p.pos] != c {
		got := "EOF"
		if !p.eof() {
			got = string(p.src[p.pos])
		}
		return p.errf("expected %q, got %q", string(c), got)
	}
	p.pos++
	return nil
}

func (p *specParser) peek() byte {
	p.skipSpace()
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *specParser) header() (*Header, error) {
	name := p.ident()
	if name == "" {
		return nil, p.errf("expected header name")
	}
	if err := p.expect('{'); err != nil {
		return nil, err
	}
	h := &Header{Name: name}
	for {
		switch p.peek() {
		case '}':
			p.pos++
			return h, nil
		case 0:
			return nil, p.errf("unexpected EOF in header %q", name)
		case '@':
			p.pos++
			if err := p.headerAnnotation(h); err != nil {
				return nil, err
			}
		default:
			f, err := p.field()
			if err != nil {
				return nil, err
			}
			h.Fields = append(h.Fields, f)
		}
	}
}

// headerAnnotation parses header-level annotations; currently only
// @counter(name, window).
func (p *specParser) headerAnnotation(h *Header) error {
	kind := p.ident()
	if kind != "counter" {
		return p.errf("unknown header annotation @%s", kind)
	}
	if err := p.expect('('); err != nil {
		return err
	}
	name := p.ident()
	if name == "" {
		return p.errf("@counter: expected name")
	}
	if err := p.expect(','); err != nil {
		return err
	}
	win, err := p.duration()
	if err != nil {
		return err
	}
	if err := p.expect(')'); err != nil {
		return err
	}
	h.Counters = append(h.Counters, &StateVar{Name: name, Window: win})
	return nil
}

// duration parses forms like 100us, 5ms, 2s.
func (p *specParser) duration() (time.Duration, error) {
	p.skipSpace()
	start := p.pos
	for !p.eof() {
		c := p.src[p.pos]
		if c >= '0' && c <= '9' || c >= 'a' && c <= 'z' {
			p.pos++
		} else {
			break
		}
	}
	txt := p.src[start:p.pos]
	// Go's ParseDuration uses "µs"/"us" both; normalize.
	d, err := time.ParseDuration(strings.ReplaceAll(txt, "us", "µs"))
	if err != nil {
		return 0, p.errf("bad duration %q: %v", txt, err)
	}
	return d, nil
}

func (p *specParser) field() (*Field, error) {
	name := p.ident()
	if name == "" {
		return nil, p.errf("expected field name")
	}
	if err := p.expect(':'); err != nil {
		return nil, err
	}
	typ := p.ident()
	f := &Field{Name: name}
	switch {
	case strings.HasPrefix(typ, "u"):
		bits, err := strconv.Atoi(typ[1:])
		if err != nil || bits <= 0 || bits > 128 {
			return nil, p.errf("bad int type %q", typ)
		}
		f.Type = IntField
		f.Bits = bits
	case strings.HasPrefix(typ, "str"):
		n, err := strconv.Atoi(typ[3:])
		if err != nil || n <= 0 || n > 256 {
			return nil, p.errf("bad string type %q", typ)
		}
		f.Type = StringField
		f.Bits = n * 8
	default:
		return nil, p.errf("unknown field type %q", typ)
	}
	// Optional annotations before the semicolon.
	for p.peek() == '@' {
		p.pos++
		ann := p.ident()
		switch ann {
		case "field":
			f.Subscribable = true
			if f.Type == StringField {
				// Paper string relations: equality and prefix.
				f.Hint = MatchPrefix
			} else {
				f.Hint = MatchRange
			}
		case "field_exact":
			f.Subscribable = true
			f.Hint = MatchExact
		case "field_prefix":
			f.Subscribable = true
			f.Hint = MatchPrefix
		default:
			return nil, p.errf("unknown field annotation @%s", ann)
		}
	}
	if err := p.expect(';'); err != nil {
		return nil, err
	}
	return f, nil
}

// Package spec models application message-format specifications: the Go
// equivalent of the annotated P4 header specification that Camus users
// provide (paper §V-A, Fig. 4).
//
// A Spec declares a sequence of fixed-width headers, each with typed
// fields. Fields carry annotations that guide the compiler:
//
//   - @field        — the field may be used in subscriptions (range match)
//   - @field_exact  — usable in subscriptions, equality-only (SRAM match)
//   - @counter(n,w) — declares state variable n with tumbling window w
//
// The static compiler consumes a Spec once per application to lay out the
// pipeline; the dynamic compiler type-checks subscriptions against it.
package spec

import (
	"fmt"
	"strings"
	"time"
)

// FieldType is the type of a header field value.
type FieldType int

const (
	// IntField is an unsigned fixed-width integer field (uN).
	IntField FieldType = iota
	// StringField is a fixed-width byte-string field (strN), compared as
	// a right-space-padded ASCII string (as in ITCH stock symbols).
	StringField
)

func (t FieldType) String() string {
	switch t {
	case IntField:
		return "int"
	case StringField:
		return "string"
	default:
		return fmt.Sprintf("FieldType(%d)", int(t))
	}
}

// MatchHint tells the compiler which table implementation a field needs.
// It mirrors the paper's §V-E TCAM-saving optimization: fields annotated
// @field_exact compile to exact-match (SRAM) tables; default fields allow
// arbitrary range predicates and may need range/ternary (TCAM) entries.
type MatchHint int

const (
	// MatchRange permits <, >, <=, >=, ==, != predicates (TCAM ranges).
	MatchRange MatchHint = iota
	// MatchExact permits only == and != predicates (SRAM exact match).
	MatchExact
	// MatchPrefix permits prefix and equality predicates on strings or
	// longest-prefix matches on ints (LPM table).
	MatchPrefix
)

func (h MatchHint) String() string {
	switch h {
	case MatchRange:
		return "range"
	case MatchExact:
		return "exact"
	case MatchPrefix:
		return "prefix"
	default:
		return fmt.Sprintf("MatchHint(%d)", int(h))
	}
}

// AggFunc is a stateful aggregation function over a tumbling window
// (paper §II: count, sum, avg — the restricted stateful vocabulary).
type AggFunc int

const (
	AggNone AggFunc = iota
	AggCount
	AggSum
	AggAvg
)

func (f AggFunc) String() string {
	switch f {
	case AggNone:
		return "none"
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// ParseAggFunc maps a subscription-language macro name to an AggFunc.
func ParseAggFunc(name string) (AggFunc, bool) {
	switch strings.ToLower(name) {
	case "count":
		return AggCount, true
	case "sum":
		return AggSum, true
	case "avg":
		return AggAvg, true
	default:
		return AggNone, false
	}
}

// Field is one subscription-visible header field.
type Field struct {
	// Header is the name of the header this field belongs to.
	Header string
	// Name is the field name within the header.
	Name string
	// Type is the field value type.
	Type FieldType
	// Bits is the field width: bits for IntField, bytes*8 for StringField.
	Bits int
	// Hint constrains which predicates subscriptions may use on the field.
	Hint MatchHint
	// Subscribable reports whether the field carried a @field annotation;
	// non-subscribable fields exist in the header layout but cannot be
	// referenced by filters.
	Subscribable bool
	// Offset is the bit offset of the field within its header.
	Offset int
}

// QName returns the qualified "header.field" name.
func (f *Field) QName() string { return f.Header + "." + f.Name }

// Bytes returns the byte width of the field (Bits rounded up).
func (f *Field) Bytes() int { return (f.Bits + 7) / 8 }

// MaxValue returns the maximum representable value of an IntField.
// Values wider than 63 bits saturate at MaxInt64 (the evaluation never
// compares such fields numerically; they are equality-only).
func (f *Field) MaxValue() int64 {
	if f.Bits >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return int64(1)<<uint(f.Bits) - 1
}

// Header is a fixed-width protocol header: an ordered list of fields.
type Header struct {
	Name   string
	Fields []*Field
	// Counters declared inside this header via @counter annotations.
	Counters []*StateVar
}

// Bits returns the total header width in bits.
func (h *Header) Bits() int {
	n := 0
	for _, f := range h.Fields {
		n += f.Bits
	}
	return n
}

// Bytes returns the total header width in bytes (must be byte aligned for
// wire encoding; the parser enforces this).
func (h *Header) Bytes() int { return (h.Bits() + 7) / 8 }

// StateVar is a named state variable with a tumbling window, declared by a
// @counter annotation (paper Fig. 4 line 11). The aggregation function is
// bound dynamically by subscriptions that reference the variable.
type StateVar struct {
	Name   string
	Window time.Duration
}

// Spec is a full application message-format specification.
type Spec struct {
	// Name identifies the application (e.g. "itch").
	Name string
	// Headers in parse order. The subscription-visible field order — which
	// fixes the BDD variable order (§V-C) — is the declaration order of
	// @field-annotated fields across headers.
	Headers []*Header

	fieldsByQName map[string]*Field
	fieldsByName  map[string]*Field // unqualified, only if unambiguous
	subscribable  []*Field
	subIndex      map[*Field]int
	stateVars     map[string]*StateVar
}

// New assembles a Spec from headers, validating names and computing
// offsets. It returns an error on duplicate headers/fields or non-byte-
// aligned headers.
func New(name string, headers ...*Header) (*Spec, error) {
	s := &Spec{
		Name:          name,
		Headers:       headers,
		fieldsByQName: make(map[string]*Field),
		fieldsByName:  make(map[string]*Field),
		subIndex:      make(map[*Field]int),
		stateVars:     make(map[string]*StateVar),
	}
	ambiguous := make(map[string]bool)
	seenHeader := make(map[string]bool)
	for _, h := range headers {
		if h.Name == "" {
			return nil, fmt.Errorf("spec %s: header with empty name", name)
		}
		if seenHeader[h.Name] {
			return nil, fmt.Errorf("spec %s: duplicate header %q", name, h.Name)
		}
		seenHeader[h.Name] = true
		off := 0
		for _, f := range h.Fields {
			f.Header = h.Name
			f.Offset = off
			off += f.Bits
			if f.Bits <= 0 {
				return nil, fmt.Errorf("%s: field width must be positive", f.QName())
			}
			if f.Type == StringField && f.Bits%8 != 0 {
				return nil, fmt.Errorf("%s: string fields must be byte aligned", f.QName())
			}
			q := f.QName()
			if _, dup := s.fieldsByQName[q]; dup {
				return nil, fmt.Errorf("spec %s: duplicate field %q", name, q)
			}
			s.fieldsByQName[q] = f
			if _, dup := s.fieldsByName[f.Name]; dup {
				ambiguous[f.Name] = true
			} else {
				s.fieldsByName[f.Name] = f
			}
			if f.Subscribable {
				s.subIndex[f] = len(s.subscribable)
				s.subscribable = append(s.subscribable, f)
			}
		}
		if off%8 != 0 {
			return nil, fmt.Errorf("spec %s: header %q is %d bits, not byte aligned", name, h.Name, off)
		}
		for _, sv := range h.Counters {
			if _, dup := s.stateVars[sv.Name]; dup {
				return nil, fmt.Errorf("spec %s: duplicate state variable %q", name, sv.Name)
			}
			s.stateVars[sv.Name] = sv
		}
	}
	for n := range ambiguous {
		delete(s.fieldsByName, n)
	}
	return s, nil
}

// MustNew is New, panicking on error; for package-level format definitions.
func MustNew(name string, headers ...*Header) *Spec {
	s, err := New(name, headers...)
	if err != nil {
		panic(err)
	}
	return s
}

// Field resolves a field reference. Both qualified ("itch_order.price")
// and unqualified-but-unambiguous ("price") names are accepted, matching
// the paper's subscription examples which use bare field names.
func (s *Spec) Field(ref string) (*Field, bool) {
	if f, ok := s.fieldsByQName[ref]; ok {
		return f, true
	}
	f, ok := s.fieldsByName[ref]
	return f, ok
}

// SubscribableFields returns the @field-annotated fields in declaration
// order. This order fixes the BDD variable order.
func (s *Spec) SubscribableFields() []*Field { return s.subscribable }

// SubscribableIndex returns f's index within SubscribableFields.
func (s *Spec) SubscribableIndex(f *Field) (int, bool) {
	i, ok := s.subIndex[f]
	return i, ok
}

// StateVar resolves a declared state variable by name.
func (s *Spec) StateVar(name string) (*StateVar, bool) {
	sv, ok := s.stateVars[name]
	return sv, ok
}

// StateVars returns all declared state variables.
func (s *Spec) StateVars() []*StateVar {
	out := make([]*StateVar, 0, len(s.stateVars))
	for _, h := range s.Headers {
		out = append(out, h.Counters...)
	}
	return out
}

// Header returns the named header.
func (s *Spec) Header(name string) (*Header, bool) {
	for _, h := range s.Headers {
		if h.Name == name {
			return h, true
		}
	}
	return nil, false
}

// HeaderIndex returns the position of the named header in parse order,
// or -1 if unknown.
func (s *Spec) HeaderIndex(name string) int {
	for i, h := range s.Headers {
		if h.Name == name {
			return i
		}
	}
	return -1
}

// Merge combines several application specs into one (used when multiple
// applications co-exist on a switch, §VIII-D). Header names must not
// collide.
func Merge(name string, specs ...*Spec) (*Spec, error) {
	var headers []*Header
	for _, sp := range specs {
		headers = append(headers, sp.Headers...)
	}
	return New(name, headers...)
}

package formats

import "testing"

// FuzzDecodeITCH feeds arbitrary bytes to the batched ITCH decoder: it
// must reject or accept without panicking, and never return more
// messages than the declared count.
func FuzzDecodeITCH(f *testing.F) {
	good, _ := EncodeITCHFeed("SESSION", 7, []*Order{
		{Stock: "GOOGL", Price: 50, Shares: 100},
		{Stock: "MSFT", Price: 10, Shares: 5},
	})
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})
	f.Add(good[:len(good)-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		msgs, err := DecodeITCHFeed(data)
		if err != nil {
			return
		}
		for _, m := range msgs {
			if m == nil {
				t.Fatal("nil message from successful decode")
			}
			if !m.HeaderPresent("itch_order") {
				t.Fatal("decoded message missing header validity")
			}
		}
	})
}

package formats

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"camus/internal/compiler"
	"camus/internal/spec"
	"camus/internal/subscription"
)

func TestITCHFeedRoundTrip(t *testing.T) {
	orders := []*Order{
		{Stock: "GOOGL", Price: 52, Shares: 100, Buy: true, RefNum: 1},
		{Stock: "MSFT", Price: 31, Shares: 200, Buy: false, RefNum: 2},
		{Stock: "AAPL", Price: 99, Shares: 50, Buy: true, RefNum: 3},
	}
	data, err := EncodeITCHFeed("SESSION01", 42, orders)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	wantLen := moldCodec.Size() + 3*ITCHOrderBytes
	if len(data) != wantLen {
		t.Errorf("encoded %d bytes, want %d", len(data), wantLen)
	}
	msgs, err := DecodeITCHFeed(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(msgs) != 3 {
		t.Fatalf("decoded %d messages, want 3", len(msgs))
	}
	for i, o := range orders {
		if v, _ := msgs[i].GetRef("stock"); v.Str != o.Stock {
			t.Errorf("msg %d stock = %q, want %q", i, v.Str, o.Stock)
		}
		if v, _ := msgs[i].GetRef("price"); v.Int != o.Price {
			t.Errorf("msg %d price = %d, want %d", i, v.Int, o.Price)
		}
		if v, _ := msgs[i].GetRef("shares"); v.Int != o.Shares {
			t.Errorf("msg %d shares = %d, want %d", i, v.Int, o.Shares)
		}
	}
	// Wire-decoded messages must drive the compiled pipeline just like
	// builder-made ones.
	rules, err := subscription.NewParser(ITCH).ParseRules("stock == GOOGL and price > 50: fwd(1)")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(ITCH, rules, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.Eval(msgs[0], nil).Key(); got != "fwd(1)" {
		t.Errorf("GOOGL order eval = %s", got)
	}
	if got := prog.Eval(msgs[1], nil).Key(); got != "fwd()" {
		t.Errorf("MSFT order eval = %s", got)
	}
}

func TestITCHFeedErrors(t *testing.T) {
	if _, err := DecodeITCHFeed([]byte{1, 2, 3}); err == nil {
		t.Error("short datagram decoded")
	}
	data, err := EncodeITCHFeed("S", 1, []*Order{{Stock: "A", Price: 1, Shares: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeITCHFeed(data[:len(data)-4]); err == nil {
		t.Error("truncated order decoded")
	}
}

func TestITCHOrderMessageReuse(t *testing.T) {
	m := spec.NewMessage(ITCH)
	o1 := &Order{Stock: "GOOGL", Price: 10, Shares: 5, Buy: true}
	o1.FillMessage(m)
	if v, _ := m.GetRef("buy_sell"); v.Int != 'B' {
		t.Errorf("buy_sell = %d", v.Int)
	}
	o2 := &Order{Stock: "MSFT", Price: 20, Shares: 6}
	o2.FillMessage(m)
	if v, _ := m.GetRef("stock"); v.Str != "MSFT" {
		t.Errorf("reused message stock = %q", v.Str)
	}
	if v, _ := m.GetRef("buy_sell"); v.Int != 'S' {
		t.Errorf("reused buy_sell = %d", v.Int)
	}
}

func TestINTRoundTrip(t *testing.T) {
	r := &INTReport{FlowID: 9, SwitchID: 2, HopLatency: 150, QueueDepth: 7, EgressPort: 3, TstampNS: 12345}
	data, err := EncodeINT(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != INTReportBytes {
		t.Errorf("size = %d, want %d", len(data), INTReportBytes)
	}
	m, err := DecodeINT(data)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.GetRef("switch_id"); v.Int != 2 {
		t.Errorf("switch_id = %d", v.Int)
	}
	if v, _ := m.GetRef("hop_latency"); v.Int != 150 {
		t.Errorf("hop_latency = %d", v.Int)
	}
	// The paper's example filter.
	rules, err := subscription.NewParser(INT).ParseRules(
		"switch_id == 2 and hop_latency > 100: fwd(1)")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(INT, rules, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.Eval(m, nil).Key(); got != "fwd(1)" {
		t.Errorf("eval = %s", got)
	}
}

func TestILARoundTrip(t *testing.T) {
	p := &ILAPacket{Locator: 0x2001, Identifier: 0xBEEF, SrcHi: 1, SrcLo: 2}
	data, err := EncodeILA(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 40 { // standard IPv6 header length
		t.Errorf("IPv6 header = %d bytes, want 40", len(data))
	}
	m, err := DecodeILA(data)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.GetRef("dst_identifier"); v.Int != 0xBEEF {
		t.Errorf("identifier = %#x", v.Int)
	}
	if v, _ := m.GetRef("dst_locator"); v.Int != 0x2001 {
		t.Errorf("locator = %#x", v.Int)
	}
}

func TestHICNRoundTrip(t *testing.T) {
	r := &HICNRequest{NamePrefix: "video/cats", ContentID: 77, Segment: 3}
	data, err := EncodeHICN(r)
	if err != nil {
		t.Fatal(err)
	}
	m, err := DecodeHICN(data)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.GetRef("name_prefix"); v.Str != "video/cats" {
		t.Errorf("name = %q", v.Str)
	}
	// Prefix subscriptions on names.
	rules, err := subscription.NewParser(HICN).ParseRules(`name_prefix prefix "video/": fwd(1)`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(HICN, rules, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.Eval(m, nil).Key(); got != "fwd(1)" {
		t.Errorf("eval = %s", got)
	}
}

func TestDNSRoundTrip(t *testing.T) {
	q := &DNSQuery{TxID: 99, QType: QTypeA, Name: "h105"}
	data, err := EncodeDNS(q)
	if err != nil {
		t.Fatal(err)
	}
	m, err := DecodeDNS(data)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.GetRef("name"); v.Str != "h105" {
		t.Errorf("name = %q", v.Str)
	}
	if v, _ := m.GetRef("qtype"); v.Int != QTypeA {
		t.Errorf("qtype = %d", v.Int)
	}
}

func TestHighwayRoundTrip(t *testing.T) {
	p := &PositionReport{CarID: 1001, X: 15, Y: 35, Speed: 60, Highway: 2}
	data, err := EncodeHighway(p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := DecodeHighway(data)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's speeding filter (§VIII-C6).
	rules, err := subscription.NewParser(Highway).ParseRules(
		"x > 10 and x < 20 and y > 30 and y < 40 and spd > 55: fwd(1)")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(Highway, rules, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.Eval(m, nil).Key(); got != "fwd(1)" {
		t.Errorf("speeder not detected: %s", got)
	}
	slow := &PositionReport{CarID: 1002, X: 15, Y: 35, Speed: 50, Highway: 2}
	if got := prog.Eval(slow.Message(), nil).Key(); got != "fwd()" {
		t.Errorf("slow car matched: %s", got)
	}
}

func TestKafkaRoundTrip(t *testing.T) {
	k := &KafkaMessage{Topic: "metrics/cpu", Partition: 3, KeyHash: 0xABCD, Payload: []byte(`{"v":1}`)}
	data, err := EncodeKafka(k)
	if err != nil {
		t.Fatal(err)
	}
	m, payload, err := DecodeKafka(data)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != `{"v":1}` {
		t.Errorf("payload = %q", payload)
	}
	if v, _ := m.GetRef("topic"); v.Str != "metrics/cpu" {
		t.Errorf("topic = %q", v.Str)
	}
	big := &KafkaMessage{Topic: "t", Payload: make([]byte, KafkaMaxPayload+1)}
	if _, err := EncodeKafka(big); err == nil {
		t.Error("oversized payload encoded")
	}
}

func TestNetBaseFrame(t *testing.T) {
	payload := []byte("hello")
	data, err := EncodeFrame(IPv4(10, 0, 0, 1), IPv4(192, 168, 0, 1), 4000, 5000, payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != FrameOverheadBytes+len(payload) {
		t.Errorf("frame = %d bytes, want %d", len(data), FrameOverheadBytes+len(payload))
	}
	m := spec.NewMessage(NetBase)
	rest, err := DecodeFrame(data, m)
	if err != nil {
		t.Fatal(err)
	}
	if string(rest) != "hello" {
		t.Errorf("payload = %q", rest)
	}
	if v, _ := m.GetRef("dst"); v.Int != IPv4(192, 168, 0, 1) {
		t.Errorf("dst = %#x", v.Int)
	}
	// The paper's §II example subscription works against the base stack.
	rules, err := subscription.NewParser(NetBase).ParseRules("dst == 192.168.0.1: fwd(1)")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(NetBase, rules, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.Eval(m, nil).Key(); got != "fwd(1)" {
		t.Errorf("eval = %s", got)
	}
}

// TestFeedRoundTripProperty: random batches of random orders round-trip
// through the wire encoding (testing/quick).
func TestFeedRoundTripProperty(t *testing.T) {
	stocks := []string{"GOOGL", "MSFT", "AAPL", "FB", "NFLX"}
	r := rand.New(rand.NewSource(1))
	f := func(n uint8, seed int64) bool {
		count := int(n%16) + 1
		rr := rand.New(rand.NewSource(seed))
		orders := make([]*Order, count)
		for i := range orders {
			orders[i] = &Order{
				Stock:  stocks[rr.Intn(len(stocks))],
				Price:  int64(rr.Intn(100000)),
				Shares: int64(rr.Intn(100000)),
				Buy:    rr.Intn(2) == 0,
				RefNum: rr.Uint64() >> 1,
			}
		}
		data, err := EncodeITCHFeed("S", uint64(r.Uint32()), orders)
		if err != nil {
			return false
		}
		msgs, err := DecodeITCHFeed(data)
		if err != nil || len(msgs) != count {
			return false
		}
		for i, o := range orders {
			stock, _ := msgs[i].GetRef("stock")
			price, _ := msgs[i].GetRef("price")
			shares, _ := msgs[i].GetRef("shares")
			if stock.Str != o.Stock || price.Int != o.Price || shares.Int != o.Shares {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestDecodeITCHPass: the Fig. 7 budgeted multi-pass parse yields exactly
// the one-shot parse, pass boundaries included.
func TestDecodeITCHPass(t *testing.T) {
	orders := make([]*Order, 11)
	for i := range orders {
		orders[i] = &Order{Stock: fmt.Sprintf("S%02d", i), Price: int64(i), Shares: int64(i * 2)}
	}
	data, err := EncodeITCHFeed("S", 1, orders)
	if err != nil {
		t.Fatal(err)
	}
	oneShot, err := DecodeITCHFeed(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int{1, 3, 4, 11, 100} {
		var all []*spec.Message
		passes := 0
		for start := 0; start != -1; {
			msgs, next, err := DecodeITCHPass(data, start, budget)
			if err != nil {
				t.Fatalf("budget %d pass at %d: %v", budget, start, err)
			}
			all = append(all, msgs...)
			start = next
			passes++
			if passes > 20 {
				t.Fatalf("budget %d: parser did not terminate", budget)
			}
		}
		if len(all) != len(oneShot) {
			t.Fatalf("budget %d: %d messages, want %d", budget, len(all), len(oneShot))
		}
		for i := range all {
			a, _ := all[i].GetRef("stock")
			b, _ := oneShot[i].GetRef("stock")
			if a.Str != b.Str {
				t.Fatalf("budget %d msg %d: %q != %q", budget, i, a.Str, b.Str)
			}
		}
		wantPasses := (len(orders) + budget - 1) / budget
		if budget >= len(orders) {
			wantPasses = 1
		}
		if passes != wantPasses {
			t.Errorf("budget %d: %d passes, want %d", budget, passes, wantPasses)
		}
	}
	// Out-of-range start terminates immediately.
	if msgs, next, err := DecodeITCHPass(data, 50, 4); err != nil || next != -1 || len(msgs) != 0 {
		t.Errorf("past-end pass: %v %d %v", msgs, next, err)
	}
}

// TestMergedSpecs: ITCH and INT co-exist on a merged spec (§VIII-D1) and
// rules written against either application dispatch on header validity.
func TestMergedSpecs(t *testing.T) {
	merged, err := spec.Merge("itch+int", ITCH, INT)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	p := subscription.NewParser(merged)
	rules, err := p.ParseRules(`
stock == GOOGL: fwd(1)
switch_id == 2 and hop_latency > 100: fwd(2)
`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(merged, rules, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// An ITCH packet must only match ITCH rules.
	itchMsg := spec.NewMessage(merged)
	itchMsg.MustSet("stock", spec.StrVal("GOOGL"))
	itchMsg.MustSet("price", spec.IntVal(1))
	itchMsg.MustSet("shares", spec.IntVal(1))
	itchMsg.MustSet("buy_sell", spec.IntVal('B'))
	if got := prog.Eval(itchMsg, nil).Key(); got != "fwd(1)" {
		t.Errorf("ITCH packet eval = %s", got)
	}
	// An INT packet with values that would confuse unguarded matching.
	intMsg := spec.NewMessage(merged)
	intMsg.MustSet("switch_id", spec.IntVal(2))
	intMsg.MustSet("hop_latency", spec.IntVal(150))
	intMsg.MustSet("flow_id", spec.IntVal(0))
	intMsg.MustSet("queue_depth", spec.IntVal(0))
	intMsg.MustSet("egress_port", spec.IntVal(0))
	if got := prog.Eval(intMsg, nil).Key(); got != "fwd(2)" {
		t.Errorf("INT packet eval = %s", got)
	}
}

package formats

import (
	"fmt"

	"camus/internal/packet"
	"camus/internal/spec"
)

// INT is the in-band network telemetry analytics application (§VIII-C2):
// each report carries per-hop metadata; subscriptions select anomalous
// events, e.g. "int.switch_id == 2 and int.hop_latency > 100" (§VIII-E2).
var INT = spec.MustParse("int", `
header int_report {
    version : u4;
    hop_count : u4;
    flow_id : u32 @field;
    switch_id : u32 @field;
    hop_latency : u32 @field;
    queue_depth : u32 @field;
    egress_port : u16 @field;
    ingress_tstamp : u64;
}
`)

var intCodec = packet.MustHeaderCodec(INT, "int_report")

// INTReportBytes is the wire size of one telemetry report.
var INTReportBytes = intCodec.Size()

// INTReport is one telemetry event.
type INTReport struct {
	FlowID     int64
	SwitchID   int64
	HopLatency int64
	QueueDepth int64
	EgressPort int64
	TstampNS   int64
}

// Message builds the decoded form.
func (r *INTReport) Message() *spec.Message {
	m := spec.NewMessage(INT)
	r.FillMessage(m)
	return m
}

// FillMessage populates a caller-owned message.
func (r *INTReport) FillMessage(m *spec.Message) {
	m.Reset()
	m.MustSet("flow_id", spec.IntVal(r.FlowID))
	m.MustSet("switch_id", spec.IntVal(r.SwitchID))
	m.MustSet("hop_latency", spec.IntVal(r.HopLatency))
	m.MustSet("queue_depth", spec.IntVal(r.QueueDepth))
	m.MustSet("egress_port", spec.IntVal(r.EgressPort))
}

// EncodeINT encodes one report.
func EncodeINT(r *INTReport) ([]byte, error) {
	return intCodec.Append(nil, packet.V(
		"version", 1,
		"hop_count", 1,
		"flow_id", r.FlowID,
		"switch_id", r.SwitchID,
		"hop_latency", r.HopLatency,
		"queue_depth", r.QueueDepth,
		"egress_port", r.EgressPort,
		"ingress_tstamp", r.TstampNS,
	))
}

// DecodeINT parses one report.
func DecodeINT(data []byte) (*spec.Message, error) {
	m := spec.NewMessage(INT)
	if _, err := intCodec.Decode(data, m); err != nil {
		return nil, fmt.Errorf("formats: INT: %w", err)
	}
	return m, nil
}

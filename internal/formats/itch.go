package formats

import (
	"fmt"

	"camus/internal/packet"
	"camus/internal/spec"
)

// ITCH is the Nasdaq market-data application (§VIII-C1): a MoldUDP64
// datagram carrying a count of fixed-width ITCH add-order messages. The
// annotated fields mirror the paper's Fig. 4.
var ITCH = spec.MustParse("itch", `
header moldudp {
    session : str10;
    sequence : u64;
    count : u16;
}
header itch_order {
    msg_type : u8;
    stock_locate : u16;
    tracking : u16;
    timestamp : u48;
    order_ref : u64;
    buy_sell : u8 @field_exact;
    shares : u32 @field;
    price : u32 @field;
    stock : str8 @field_exact;
    @counter(my_counter, 100us)
}
`)

var (
	moldCodec  = packet.MustHeaderCodec(ITCH, "moldudp")
	orderCodec = packet.MustHeaderCodec(ITCH, "itch_order")
)

// ITCHOrderBytes is the wire size of one add-order message.
var ITCHOrderBytes = orderCodec.Size()

// Order is one ITCH add-order message.
type Order struct {
	Seq    uint64
	Stock  string
	Price  int64
	Shares int64
	Buy    bool
	RefNum uint64
	TimeNS int64
	Locate int
}

// Message builds the decoded form of the order for direct pipeline
// injection (bypassing wire encoding on simulator hot paths).
func (o *Order) Message() *spec.Message {
	m := spec.NewMessage(ITCH)
	o.FillMessage(m)
	return m
}

// FillMessage populates a caller-owned message (zero-alloc hot path).
func (o *Order) FillMessage(m *spec.Message) {
	m.Reset()
	bs := int64('S')
	if o.Buy {
		bs = int64('B')
	}
	m.MustSet("buy_sell", spec.IntVal(bs))
	m.MustSet("shares", spec.IntVal(o.Shares))
	m.MustSet("price", spec.IntVal(o.Price))
	m.MustSet("stock", spec.StrVal(o.Stock))
	m.MarkHeader("moldudp")
}

// EncodeITCHFeed encodes a MoldUDP datagram carrying the given orders.
func EncodeITCHFeed(session string, seq uint64, orders []*Order) ([]byte, error) {
	buf := make([]byte, 0, moldCodec.Size()+len(orders)*orderCodec.Size())
	buf, err := moldCodec.Append(buf, packet.V(
		"session", session, "sequence", seq, "count", len(orders)))
	if err != nil {
		return nil, err
	}
	for _, o := range orders {
		bs := "S"
		if o.Buy {
			bs = "B"
		}
		buf, err = orderCodec.Append(buf, packet.V(
			"msg_type", int('A'),
			"stock_locate", o.Locate,
			"timestamp", o.TimeNS&0xFFFFFFFFFFFF,
			"order_ref", o.RefNum,
			"buy_sell", int(bs[0]),
			"shares", o.Shares,
			"price", o.Price,
			"stock", o.Stock,
		))
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// DecodeITCHPass is the budgeted parser pass of the paper's Fig. 7: one
// recirculation pass skips the first `startMsg` messages without
// extracting them (the red counter loop), then extracts up to `maxMsgs`
// messages (PHV budget), leaving the rest for the next pass. It returns
// the decoded messages and the index of the next unparsed message, or
// -1 when the batch is exhausted.
func DecodeITCHPass(data []byte, startMsg, maxMsgs int) (msgs []*spec.Message, next int, err error) {
	vals, rest, err := moldCodec.DecodeAll(data)
	if err != nil {
		return nil, -1, err
	}
	count := int(vals["count"].Int)
	if count < 0 || count > 1024 {
		return nil, -1, fmt.Errorf("formats: implausible ITCH count %d", count)
	}
	if startMsg >= count {
		return nil, -1, nil
	}
	// Counter loop: shift the parse buffer past the skipped messages
	// without writing them to the PHV.
	skip := startMsg * orderCodec.Size()
	if skip > len(rest) {
		return nil, -1, fmt.Errorf("formats: ITCH batch truncated at message %d", startMsg)
	}
	rest = rest[skip:]
	end := startMsg + maxMsgs
	if maxMsgs <= 0 || end > count {
		end = count
	}
	for i := startMsg; i < end; i++ {
		m := spec.NewMessage(ITCH)
		m.MarkHeader("moldudp")
		rest, err = orderCodec.Decode(rest, m)
		if err != nil {
			return nil, -1, fmt.Errorf("formats: ITCH message %d/%d: %w", i+1, count, err)
		}
		msgs = append(msgs, m)
	}
	if end < count {
		return msgs, end, nil
	}
	return msgs, -1, nil
}

// DecodeITCHFeed parses a MoldUDP datagram into one decoded message per
// ITCH order — the deep-parsing path of §VI: the parser advances through
// the batch, extracting each application message.
func DecodeITCHFeed(data []byte) ([]*spec.Message, error) {
	vals, rest, err := moldCodec.DecodeAll(data)
	if err != nil {
		return nil, err
	}
	count := int(vals["count"].Int)
	if count < 0 || count > 1024 {
		return nil, fmt.Errorf("formats: implausible ITCH count %d", count)
	}
	msgs := make([]*spec.Message, 0, count)
	for i := 0; i < count; i++ {
		m := spec.NewMessage(ITCH)
		m.MarkHeader("moldudp")
		rest, err = orderCodec.Decode(rest, m)
		if err != nil {
			return nil, fmt.Errorf("formats: ITCH message %d/%d: %w", i+1, count, err)
		}
		msgs = append(msgs, m)
	}
	return msgs, nil
}

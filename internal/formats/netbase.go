// Package formats defines the message formats of the paper's eight
// applications (§VIII-C): the spec (the user-provided annotated header
// specification of Fig. 4), wire codecs, and typed builders for each.
//
// Each application spec contains only its own headers; a switch hosting
// several applications merges their specs (spec.Merge), which is how the
// co-existence experiments (§VIII-D) are assembled.
package formats

import (
	"camus/internal/packet"
	"camus/internal/spec"
)

// NetBase is the traditional L2/L3/L4 stack. It doubles as the
// "Traditional IP" application (§VIII-C8): packet subscriptions on
// ipv4.dst generalize ordinary forwarding rules.
var NetBase = spec.MustParse("netbase", `
header ethernet {
    dst_mac : u48;
    src_mac : u48;
    ethertype : u16;
}
header ipv4 {
    version : u4;
    ihl : u4;
    tos : u8;
    total_len : u16;
    ident : u16;
    flags : u3;
    frag_off : u13;
    ttl : u8;
    proto : u8 @field_exact;
    checksum : u16;
    src : u32 @field;
    dst : u32 @field;
}
header udp {
    sport : u16;
    dport : u16 @field;
    length : u16;
    checksum : u16;
}
`)

// Codecs for the base headers.
var (
	EthernetCodec = packet.MustHeaderCodec(NetBase, "ethernet")
	IPv4Codec     = packet.MustHeaderCodec(NetBase, "ipv4")
	UDPCodec      = packet.MustHeaderCodec(NetBase, "udp")
)

// FrameOverheadBytes is the L2+L3+L4 framing cost charged to every
// application packet in traffic accounting.
const FrameOverheadBytes = 14 + 20 + 8

// IPv4 converts a dotted-quad-style tuple to the uint32 wire value.
func IPv4(a, b, c, d int) int64 {
	return int64(a)<<24 | int64(b)<<16 | int64(c)<<8 | int64(d)
}

// EncodeFrame prepends Ethernet+IPv4+UDP headers to an application
// payload: the wire form used by feed generators.
func EncodeFrame(src, dst int64, sport, dport int, payload []byte) ([]byte, error) {
	buf := make([]byte, 0, FrameOverheadBytes+len(payload))
	var err error
	buf, err = EthernetCodec.Append(buf, packet.V("ethertype", 0x0800))
	if err != nil {
		return nil, err
	}
	buf, err = IPv4Codec.Append(buf, packet.V(
		"version", 4, "ihl", 5, "ttl", 64, "proto", 17,
		"total_len", 20+8+len(payload), "src", src, "dst", dst))
	if err != nil {
		return nil, err
	}
	buf, err = UDPCodec.Append(buf, packet.V(
		"sport", sport, "dport", dport, "length", 8+len(payload)))
	if err != nil {
		return nil, err
	}
	return append(buf, payload...), nil
}

// DecodeFrame parses the base stack into m and returns the payload.
func DecodeFrame(data []byte, m *spec.Message) ([]byte, error) {
	rest, err := EthernetCodec.Decode(data, m)
	if err != nil {
		return nil, err
	}
	rest, err = IPv4Codec.Decode(rest, m)
	if err != nil {
		return nil, err
	}
	return UDPCodec.Decode(rest, m)
}

package formats

import (
	"fmt"

	"camus/internal/packet"
	"camus/internal/spec"
)

// ---------------------------------------------------------------------
// ILA — identifier-based routing (§VIII-C3). The IPv6 destination is
// split into a 64-bit locator and a 64-bit identifier (Facebook's ILA);
// services subscribe to their identifier, and migrating a service is one
// subscription update.
// ---------------------------------------------------------------------

// ILA is the identifier-locator addressing application spec.
var ILA = spec.MustParse("ila", `
header ipv6 {
    version : u4;
    traffic_class : u8;
    flow_label : u20;
    payload_len : u16;
    next_hdr : u8;
    hop_limit : u8;
    src_hi : u64;
    src_lo : u64;
    dst_locator : u64 @field;
    dst_identifier : u64 @field_exact;
}
`)

var ilaCodec = packet.MustHeaderCodec(ILA, "ipv6")

// ILAPacket is one identifier-addressed packet.
type ILAPacket struct {
	Locator    int64
	Identifier int64
	SrcHi      int64
	SrcLo      int64
}

// Message builds the decoded form.
func (p *ILAPacket) Message() *spec.Message {
	m := spec.NewMessage(ILA)
	m.MustSet("dst_locator", spec.IntVal(p.Locator))
	m.MustSet("dst_identifier", spec.IntVal(p.Identifier))
	return m
}

// EncodeILA encodes one IPv6/ILA header.
func EncodeILA(p *ILAPacket) ([]byte, error) {
	return ilaCodec.Append(nil, packet.V(
		"version", 6, "hop_limit", 64,
		"src_hi", p.SrcHi, "src_lo", p.SrcLo,
		"dst_locator", p.Locator, "dst_identifier", p.Identifier,
	))
}

// DecodeILA parses one IPv6/ILA header.
func DecodeILA(data []byte) (*spec.Message, error) {
	m := spec.NewMessage(ILA)
	if _, err := ilaCodec.Decode(data, m); err != nil {
		return nil, fmt.Errorf("formats: ILA: %w", err)
	}
	return m, nil
}

// ---------------------------------------------------------------------
// hICN — video streaming with hybrid ICN (§VIII-C4). A content name is
// embedded in the address; Camus routes "hot" requests (meter above
// threshold) to the software forwarder cache and cold requests upstream.
// ---------------------------------------------------------------------

// HICN is the hybrid-ICN video streaming application spec.
var HICN = spec.MustParse("hicn", `
header hicn_request {
    name_prefix : str16 @field;
    content_id : u64 @field;
    segment : u32 @field;
    lifetime_ms : u16;
    @counter(content_meter, 10ms)
}
`)

var hicnCodec = packet.MustHeaderCodec(HICN, "hicn_request")

// HICNRequest is one content interest packet.
type HICNRequest struct {
	NamePrefix string
	ContentID  int64
	Segment    int64
}

// Message builds the decoded form.
func (r *HICNRequest) Message() *spec.Message {
	m := spec.NewMessage(HICN)
	m.MustSet("name_prefix", spec.StrVal(r.NamePrefix))
	m.MustSet("content_id", spec.IntVal(r.ContentID))
	m.MustSet("segment", spec.IntVal(r.Segment))
	return m
}

// EncodeHICN encodes one request.
func EncodeHICN(r *HICNRequest) ([]byte, error) {
	return hicnCodec.Append(nil, packet.V(
		"name_prefix", r.NamePrefix, "content_id", r.ContentID,
		"segment", r.Segment, "lifetime_ms", 1000,
	))
}

// DecodeHICN parses one request.
func DecodeHICN(data []byte) (*spec.Message, error) {
	m := spec.NewMessage(HICN)
	if _, err := hicnCodec.Decode(data, m); err != nil {
		return nil, fmt.Errorf("formats: hICN: %w", err)
	}
	return m, nil
}

// ---------------------------------------------------------------------
// DNS — the in-network resolver (§VIII-C5). A subscription per DNS entry
// answers queries from the switch via the custom answerDNS action.
// ---------------------------------------------------------------------

// DNS is the resolver application spec.
var DNS = spec.MustParse("dns", `
header dns_query {
    txid : u16;
    flags : u16;
    qtype : u16 @field_exact;
    name : str32 @field_exact;
}
`)

var dnsCodec = packet.MustHeaderCodec(DNS, "dns_query")

// QTypeA is the IPv4 address query type.
const QTypeA = 1

// DNSQuery is one query.
type DNSQuery struct {
	TxID  int64
	QType int64
	Name  string
}

// Message builds the decoded form.
func (q *DNSQuery) Message() *spec.Message {
	m := spec.NewMessage(DNS)
	m.MustSet("qtype", spec.IntVal(q.QType))
	m.MustSet("name", spec.StrVal(q.Name))
	return m
}

// EncodeDNS encodes one query.
func EncodeDNS(q *DNSQuery) ([]byte, error) {
	return dnsCodec.Append(nil, packet.V(
		"txid", q.TxID, "qtype", q.QType, "name", q.Name,
	))
}

// DecodeDNS parses one query.
func DecodeDNS(data []byte) (*spec.Message, error) {
	m := spec.NewMessage(DNS)
	if _, err := dnsCodec.Decode(data, m); err != nil {
		return nil, fmt.Errorf("formats: DNS: %w", err)
	}
	return m, nil
}

// ---------------------------------------------------------------------
// Highway — IoT motor-highway monitoring (§VIII-C6), Linear-Road style:
// cars emit position reports; subscriptions select speeders inside
// lat/long boxes, e.g. x > 10 and x < 20 and y > 30 and y < 40 and
// spd > 55: fwd(1).
// ---------------------------------------------------------------------

// Highway is the motor-highway monitoring application spec.
var Highway = spec.MustParse("highway", `
header position_report {
    car_id : u32 @field;
    x : u16 @field;
    y : u16 @field;
    spd : u16 @field;
    dir : u8;
    highway : u8 @field;
    lane : u8;
}
`)

var highwayCodec = packet.MustHeaderCodec(Highway, "position_report")

// PositionReport is one car position report (10 per second per car).
type PositionReport struct {
	CarID   int64
	X, Y    int64
	Speed   int64
	Highway int64
}

// Message builds the decoded form.
func (p *PositionReport) Message() *spec.Message {
	m := spec.NewMessage(Highway)
	m.MustSet("car_id", spec.IntVal(p.CarID))
	m.MustSet("x", spec.IntVal(p.X))
	m.MustSet("y", spec.IntVal(p.Y))
	m.MustSet("spd", spec.IntVal(p.Speed))
	m.MustSet("highway", spec.IntVal(p.Highway))
	return m
}

// EncodeHighway encodes one report.
func EncodeHighway(p *PositionReport) ([]byte, error) {
	return highwayCodec.Append(nil, packet.V(
		"car_id", p.CarID, "x", p.X, "y", p.Y,
		"spd", p.Speed, "highway", p.Highway,
	))
}

// DecodeHighway parses one report.
func DecodeHighway(data []byte) (*spec.Message, error) {
	m := spec.NewMessage(Highway)
	if _, err := highwayCodec.Decode(data, m); err != nil {
		return nil, fmt.Errorf("formats: highway: %w", err)
	}
	return m, nil
}

// ---------------------------------------------------------------------
// Kafka shim — API-compatible pub/sub replacement (§VIII-C7): topic-keyed
// messages up to 512 bytes routed by the switch instead of broker
// servers. Topic matching supports prefixes (hierarchical topics).
// ---------------------------------------------------------------------

// Kafka is the pub/sub shim application spec.
var Kafka = spec.MustParse("kafka", `
header kafka_msg {
    topic : str32 @field;
    partition : u16 @field;
    key_hash : u32 @field;
    payload_len : u16;
}
`)

var kafkaCodec = packet.MustHeaderCodec(Kafka, "kafka_msg")

// KafkaMaxPayload is the shim's message size limit (§VIII-C7: 512 bytes,
// the typical JSON message size, within the MTU).
const KafkaMaxPayload = 512

// KafkaMessage is one pub/sub message.
type KafkaMessage struct {
	Topic     string
	Partition int64
	KeyHash   int64
	Payload   []byte
}

// Message builds the decoded form.
func (k *KafkaMessage) Message() *spec.Message {
	m := spec.NewMessage(Kafka)
	m.MustSet("topic", spec.StrVal(k.Topic))
	m.MustSet("partition", spec.IntVal(k.Partition))
	m.MustSet("key_hash", spec.IntVal(k.KeyHash))
	return m
}

// EncodeKafka encodes one message (header + payload).
func EncodeKafka(k *KafkaMessage) ([]byte, error) {
	if len(k.Payload) > KafkaMaxPayload {
		return nil, fmt.Errorf("formats: kafka payload %d exceeds %d-byte shim limit",
			len(k.Payload), KafkaMaxPayload)
	}
	buf, err := kafkaCodec.Append(nil, packet.V(
		"topic", k.Topic, "partition", k.Partition,
		"key_hash", k.KeyHash, "payload_len", len(k.Payload),
	))
	if err != nil {
		return nil, err
	}
	return append(buf, k.Payload...), nil
}

// DecodeKafka parses one message, returning the payload too.
func DecodeKafka(data []byte) (*spec.Message, []byte, error) {
	m := spec.NewMessage(Kafka)
	rest, err := kafkaCodec.Decode(data, m)
	if err != nil {
		return nil, nil, fmt.Errorf("formats: kafka: %w", err)
	}
	vals, _, err := kafkaCodec.DecodeAll(data)
	if err != nil {
		return nil, nil, err
	}
	n := int(vals["payload_len"].Int)
	if n > len(rest) {
		return nil, nil, fmt.Errorf("formats: kafka payload truncated: %d > %d", n, len(rest))
	}
	return m, rest[:n], nil
}

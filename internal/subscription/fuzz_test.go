package subscription

import (
	"testing"

	"camus/internal/spec"
)

// FuzzParseFilter checks the filter parser never panics on arbitrary
// input, and that every successfully parsed filter pretty-prints to a
// form that re-parses to an equivalent filter (checked by evaluation on
// a probe set).
func FuzzParseFilter(f *testing.F) {
	seeds := []string{
		"stock == GOOGL and price > 50",
		"price > 10 or (shares < 5 and stock != MSFT)",
		"not (price >= 3)",
		"avg(price, 100ms) > 60",
		"count() > 10",
		"name prefix \"video/\"",
		"dst == 192.168.0.1",
		"price == 0x1F",
		"true",
		"false",
		"my_counter >= 3",
		"price > 50 and price > 50 and price > 50",
		"((((price > 1))))",
		"stock == 'quo ted'",
		"price >",
		"and and and",
		"stock == GOOGL: fwd(1)",
		"∧ ∨ ¬",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	sp := spec.MustParse("fuzz", testSpecSrc)
	probes := buildProbes(sp)
	f.Fuzz(func(t *testing.T, src string) {
		p := NewParser(sp)
		e, err := p.ParseFilter(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		printed := e.String()
		e2, err := p.ParseFilter(printed)
		if err != nil {
			t.Fatalf("round-trip parse of %q (from %q) failed: %v", printed, src, err)
		}
		for _, m := range probes {
			if EvalExpr(e, m, nil) != EvalExpr(e2, m, nil) {
				t.Fatalf("round-trip changed semantics: %q vs %q on %s", src, printed, m)
			}
		}
		// Normalization must also succeed or fail gracefully and, when
		// it succeeds, agree with direct evaluation.
		conjs, err := Normalize(e)
		if err != nil {
			return
		}
		for _, m := range probes {
			got := false
			for _, c := range conjs {
				if EvalConjunction(c, m, nil) {
					got = true
					break
				}
			}
			if got != EvalExpr(e, m, nil) {
				t.Fatalf("DNF disagrees for %q on %s", src, m)
			}
		}
	})
}

func buildProbes(sp *spec.Spec) []*spec.Message {
	var probes []*spec.Message
	for _, stock := range []string{"GOOGL", "MSFT", "x"} {
		for _, price := range []int64{0, 3, 51, 1000} {
			m := spec.NewMessage(sp)
			m.MustSet("stock", spec.StrVal(stock))
			m.MustSet("price", spec.IntVal(price))
			m.MustSet("shares", spec.IntVal(price/2))
			m.MustSet("name", spec.StrVal("video/"+stock))
			m.MustSet("src", spec.IntVal(1))
			m.MustSet("dst", spec.IntVal(price*7))
			probes = append(probes, m)
		}
	}
	return probes
}

// FuzzParseSubscription fuzzes the full subscription line — filter,
// action, and ';'-separated rule lists — through ParseRuleLine. Beyond
// no-panic, it checks that every accepted subscription pretty-prints to
// a form that re-parses to the same rule: identical action (by key) and
// a filter with identical semantics on the probe set. The on-disk seed
// corpus lives in testdata/fuzz/FuzzParseSubscription.
func FuzzParseSubscription(f *testing.F) {
	seeds := []string{
		"stock == GOOGL: fwd(1)",
		"stock == GOOGL and price > 50: fwd(1,2,3)",
		"price > 10 or shares < 5: answerDNS(10.0.0.1)",
		"avg(price, 100ms) > 60: fwd(2)",
		"stock == MSFT: fwd(1); stock == AAPL: fwd(2)",
		"not (price >= 3)",
		"my_counter >= 3: fwd(7)",
		"name prefix \"video/\": fwd(4)",
		"# comment",
		"price > 10:",
		"stock == GOOGL: fwd(",
		": fwd(1)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	sp := spec.MustParse("fuzz", testSpecSrc)
	probes := buildProbes(sp)
	f.Fuzz(func(t *testing.T, src string) {
		p := NewParser(sp)
		rules, err := p.ParseRuleLine(src, 0)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		for i, r := range rules {
			if r.ID != i {
				t.Fatalf("rule %d has ID %d", i, r.ID)
			}
			printed := r.Filter.String() + ": " + r.Action.String()
			r2, err := p.ParseRule(printed, r.ID)
			if err != nil {
				t.Fatalf("round-trip parse of %q (from %q) failed: %v", printed, src, err)
			}
			if r2.Action.Key() != r.Action.Key() {
				t.Fatalf("round-trip changed action: %q vs %q (from %q)", r.Action, r2.Action, src)
			}
			for _, m := range probes {
				if EvalExpr(r.Filter, m, nil) != EvalExpr(r2.Filter, m, nil) {
					t.Fatalf("round-trip changed filter semantics: %q vs %q on %s", src, printed, m)
				}
			}
		}
	})
}

// FuzzParseRules checks the rule-file parser never panics and assigns
// sequential IDs.
func FuzzParseRules(f *testing.F) {
	f.Add("stock == GOOGL: fwd(1)\nprice > 5: fwd(2,3)")
	f.Add("# comment\n\nname == h1: answerDNS(10.0.0.1)")
	f.Add("price > 1: fwd(1); price > 2: fwd(2)")
	f.Add(":::")
	sp := spec.MustParse("fuzz", testSpecSrc)
	f.Fuzz(func(t *testing.T, src string) {
		rules, err := NewParser(sp).ParseRules(src)
		if err != nil {
			return
		}
		for i, r := range rules {
			if r.ID != i {
				t.Fatalf("rule %d has ID %d", i, r.ID)
			}
		}
	})
}

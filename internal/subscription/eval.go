package subscription

import (
	"strings"

	"camus/internal/spec"
)

// StateReader supplies the current values of stateful aggregates, keyed by
// FieldRef.Key(). The pipeline runtime implements it with tumbling-window
// registers; tests implement it with maps. A nil StateReader reads every
// aggregate as zero (the reset value of a switch register).
type StateReader interface {
	AggValue(key string) int64
}

// MapState is a simple StateReader backed by a map (zero value usable).
type MapState map[string]int64

// AggValue implements StateReader.
func (m MapState) AggValue(key string) int64 { return m[key] }

// EvalAtom evaluates one atomic constraint against a message. Constraints
// on fields absent from the packet evaluate to false (the packet lacks the
// header the subscription filters on).
func EvalAtom(a *Atom, m *spec.Message, st StateReader) bool {
	var v spec.Value
	switch a.Ref.Kind {
	case PacketRef:
		idx, ok := m.Spec().SubscribableIndex(a.Ref.Field)
		if !ok {
			return false
		}
		v, ok = m.Get(idx)
		if !ok {
			return false
		}
	case AggregateRef:
		var cur int64
		if st != nil {
			cur = st.AggValue(a.Ref.Key())
		}
		v = spec.IntVal(cur)
	case ValidityRef:
		var bit int64
		if m.HeaderPresent(a.Ref.Header) {
			bit = 1
		}
		v = spec.IntVal(bit)
	}
	return Compare(v, a.Rel, a.Const)
}

// Compare applies a relation between a field value and a constant.
func Compare(v spec.Value, rel Relation, c spec.Value) bool {
	if v.Kind != c.Kind {
		return false
	}
	if v.Kind == spec.StringField {
		switch rel {
		case EQ:
			return v.Str == c.Str
		case NE:
			return v.Str != c.Str
		case PREFIX:
			return strings.HasPrefix(v.Str, c.Str)
		default:
			return false
		}
	}
	switch rel {
	case EQ:
		return v.Int == c.Int
	case NE:
		return v.Int != c.Int
	case LT:
		return v.Int < c.Int
	case LE:
		return v.Int <= c.Int
	case GT:
		return v.Int > c.Int
	case GE:
		return v.Int >= c.Int
	default:
		return false
	}
}

// EvalExpr evaluates a filter expression against a message — the reference
// semantics that the BDD and the compiled pipeline must agree with.
func EvalExpr(e Expr, m *spec.Message, st StateReader) bool {
	switch n := e.(type) {
	case *Bool:
		return n.Value
	case *Atom:
		return EvalAtom(n, m, st)
	case *Not:
		return !EvalExpr(n.Term, m, st)
	case *And:
		for _, t := range n.Terms {
			if !EvalExpr(t, m, st) {
				return false
			}
		}
		return true
	case *Or:
		for _, t := range n.Terms {
			if EvalExpr(t, m, st) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// EvalConjunction evaluates a normalized conjunction.
func EvalConjunction(c Conjunction, m *spec.Message, st StateReader) bool {
	for _, a := range c {
		if !EvalAtom(a, m, st) {
			return false
		}
	}
	return true
}

// MatchActions evaluates a rule set against a message by brute force and
// returns the merged action set of all matching rules — the ground truth
// for the BDD and pipeline equivalence property tests. Actions are
// deduplicated by Action.Key and fwd ports are merged.
func MatchActions(rules []*Rule, m *spec.Message, st StateReader) ActionSet {
	var set ActionSet
	for _, r := range rules {
		if EvalExpr(r.Filter, m, st) {
			set.Add(r.Action)
		}
	}
	return set
}

// Package subscription implements the Camus packet-subscription language
// (paper §II, Fig. 1): filters that are logical expressions of constraints
// on packet attributes or state variables, each constraint comparing an
// attribute (or an aggregate of one) with a constant, plus a forwarding
// action. It provides the lexer/parser, type checking against a message
// spec, disjunctive-normal-form normalization, and reference evaluation.
package subscription

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"camus/internal/spec"
)

// Relation is the comparison relation of an atomic constraint. The
// language supports basic relations over numbers (equality and ordering)
// and over strings (equality and prefix).
type Relation int

const (
	EQ Relation = iota
	NE
	LT
	LE
	GT
	GE
	PREFIX
)

func (r Relation) String() string {
	switch r {
	case EQ:
		return "=="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	case PREFIX:
		return "prefix"
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// Negate returns the complementary relation. Negating PREFIX has no
// single-relation complement and is rejected during parsing, so it cannot
// reach here.
func (r Relation) Negate() Relation {
	switch r {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	case GE:
		return LT
	default:
		panic("subscription: relation " + r.String() + " has no negation")
	}
}

// RefKind distinguishes packet-field operands from stateful aggregates.
type RefKind int

const (
	// PacketRef reads a header field from the packet.
	PacketRef RefKind = iota
	// AggregateRef reads a state variable: an aggregation (count/sum/avg)
	// over a tumbling window, updated when the rest of the filter matches
	// (paper §II). Aggregates are evaluated only at the last-hop switch.
	AggregateRef
	// ValidityRef reads a header validity bit set by the packet parser
	// (P4's isValid()). The compiler guards every rule with validity
	// predicates on the headers it references, so rules never match
	// packets lacking their headers.
	ValidityRef
)

// FieldRef is the left operand of a constraint.
type FieldRef struct {
	Kind RefKind
	// Field is the packet field read (PacketRef) or aggregated over
	// (AggregateRef with sum/avg). Nil for count() aggregates.
	Field *spec.Field
	// Agg is the aggregation function (AggregateRef only).
	Agg spec.AggFunc
	// Window is the tumbling window (AggregateRef only).
	Window time.Duration
	// Var is the declared @counter state variable backing the aggregate,
	// if the subscription referenced one by name; otherwise empty and the
	// aggregate is keyed by its canonical expression.
	Var string
	// Header is the header whose validity bit is read (ValidityRef only).
	Header string
}

// ValidRef builds a header-validity reference.
func ValidRef(header string) FieldRef {
	return FieldRef{Kind: ValidityRef, Header: header}
}

// ValidAtom builds the guard atom "valid(header) == 1".
func ValidAtom(header string) *Atom {
	return &Atom{Ref: ValidRef(header), Rel: EQ, Const: spec.IntVal(1)}
}

// DefaultWindow is used for aggregate macros written without an explicit
// window and not bound to a declared @counter.
const DefaultWindow = 100 * time.Millisecond

// Key returns a canonical identity for the referenced value: equal keys
// share a BDD variable group and (for aggregates) a state register.
func (r FieldRef) Key() string {
	if r.Kind == PacketRef {
		return r.Field.QName()
	}
	if r.Kind == ValidityRef {
		return "valid(" + r.Header + ")"
	}
	if r.Var != "" {
		return fmt.Sprintf("%s(%s)@%s", r.Agg, r.Var, r.Window)
	}
	arg := ""
	if r.Field != nil {
		arg = r.Field.QName()
	}
	return fmt.Sprintf("%s(%s)@%s", r.Agg, arg, r.Window)
}

func (r FieldRef) String() string {
	if r.Kind == PacketRef {
		return r.Field.QName()
	}
	if r.Kind == ValidityRef {
		return "valid(" + r.Header + ")"
	}
	arg := ""
	if r.Var != "" {
		arg = r.Var
	} else if r.Field != nil {
		arg = r.Field.Name
	}
	return fmt.Sprintf("%s(%s)", r.Agg, arg)
}

// Type returns the value type of the operand. Aggregates and validity
// bits are numeric.
func (r FieldRef) Type() spec.FieldType {
	if r.Kind == AggregateRef || r.Kind == ValidityRef {
		return spec.IntField
	}
	return r.Field.Type
}

// Expr is a filter expression node.
type Expr interface {
	exprNode()
	String() string
}

// Atom is an atomic constraint: operand relation constant.
type Atom struct {
	Ref   FieldRef
	Rel   Relation
	Const spec.Value
}

func (*Atom) exprNode() {}

func (a *Atom) String() string {
	return fmt.Sprintf("%s %s %s", a.Ref, a.Rel, a.Const)
}

// Key returns a canonical identity for the atom (used to deduplicate BDD
// predicate variables across rules).
func (a *Atom) Key() string {
	return fmt.Sprintf("%s %s %s", a.Ref.Key(), a.Rel, a.Const)
}

// And is a conjunction of one or more subexpressions.
type And struct{ Terms []Expr }

func (*And) exprNode() {}

func (e *And) String() string { return joinExpr(e.Terms, " and ") }

// Or is a disjunction of one or more subexpressions.
type Or struct{ Terms []Expr }

func (*Or) exprNode() {}

func (e *Or) String() string { return joinExpr(e.Terms, " or ") }

// Not is logical negation (pushed to atoms during normalization).
type Not struct{ Term Expr }

func (*Not) exprNode() {}

func (e *Not) String() string { return "not (" + e.Term.String() + ")" }

// Bool is a constant true/false filter. The MR routing policy installs the
// constant-true filter on up ports (paper §IV-C).
type Bool struct{ Value bool }

func (*Bool) exprNode() {}

func (e *Bool) String() string {
	if e.Value {
		return "true"
	}
	return "false"
}

// True is the filter matching every packet.
var True Expr = &Bool{Value: true}

func joinExpr(terms []Expr, sep string) string {
	parts := make([]string, len(terms))
	for i, t := range terms {
		if _, isAtom := t.(*Atom); isAtom {
			parts[i] = t.String()
		} else if b, isBool := t.(*Bool); isBool {
			parts[i] = b.String()
		} else {
			parts[i] = "(" + t.String() + ")"
		}
	}
	return strings.Join(parts, sep)
}

// Rule is a subscription with its forwarding directive — the controller's
// intermediate representation, e.g. "stock == GOOGL: fwd(1)".
type Rule struct {
	// ID is assigned by the caller (e.g. subscription arrival order).
	ID int
	// Filter is the subscription predicate.
	Filter Expr
	// Action is the forwarding directive.
	Action Action
}

func (r *Rule) String() string {
	return fmt.Sprintf("%s: %s", r.Filter, r.Action)
}

// Action is a forwarding directive attached to a rule.
type Action struct {
	// Name is the action name: "fwd" for forwarding, or a user-registered
	// custom action such as "answerDNS" (§VIII-C5).
	Name string
	// Ports are the egress ports for fwd actions.
	Ports []int
	// Args are the raw arguments for custom actions.
	Args []string
}

// FwdAction builds a standard forwarding action.
func FwdAction(ports ...int) Action {
	sorted := append([]int(nil), ports...)
	sort.Ints(sorted)
	return Action{Name: "fwd", Ports: sorted}
}

// IsFwd reports whether the action is a standard forwarding action.
func (a Action) IsFwd() bool { return a.Name == "fwd" }

func (a Action) String() string {
	if a.IsFwd() {
		parts := make([]string, len(a.Ports))
		for i, p := range a.Ports {
			parts[i] = fmt.Sprintf("%d", p)
		}
		return "fwd(" + strings.Join(parts, ",") + ")"
	}
	return a.Name + "(" + strings.Join(a.Args, ",") + ")"
}

// Key returns a canonical identity for the action, used when merging the
// actions of multiple rules matching the same packet.
func (a Action) Key() string { return a.String() }

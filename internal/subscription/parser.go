package subscription

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"camus/internal/spec"
)

// ErrUnknownField marks type-check failures caused by a filter
// referencing a field (or aggregate argument) absent from the message
// spec. Diagnostics tools test for it with errors.Is to classify parse
// failures.
var ErrUnknownField = errors.New("unknown field")

// Parser parses and type-checks subscriptions against a message spec.
type Parser struct {
	spec *spec.Spec
	lex  *lexer
	tok  token
}

// NewParser returns a parser bound to the given application spec.
func NewParser(s *spec.Spec) *Parser { return &Parser{spec: s} }

// Spec returns the spec the parser checks against.
func (p *Parser) Spec() *spec.Spec { return p.spec }

// ParseFilter parses a bare filter expression, e.g.
// "stock == GOOGL and price > 50".
func (p *Parser) ParseFilter(src string) (Expr, error) {
	p.lex = newLexer(src)
	if err := p.advance(); err != nil {
		return nil, err
	}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("unexpected trailing input %q", p.tok)
	}
	return e, nil
}

// ParseRule parses "filter: action", e.g. "stock == GOOGL: fwd(1,2)".
// A rule without an explicit action defaults to fwd() with no ports
// (useful when the controller attaches ports later).
func (p *Parser) ParseRule(src string, id int) (*Rule, error) {
	p.lex = newLexer(src)
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p.parseRuleBody(id)
}

func (p *Parser) parseRuleBody(id int) (*Rule, error) {
	filter, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	rule := &Rule{ID: id, Filter: filter, Action: FwdAction()}
	if p.tok.kind == tokOp && p.tok.text == ":" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		act, err := p.parseAction()
		if err != nil {
			return nil, err
		}
		rule.Action = act
	}
	if p.tok.kind == tokOp && p.tok.text == ";" {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return rule, nil
}

// ParseRules parses a rule file: one rule per line or ';'-separated.
// Blank lines and #-comments are ignored. Rule IDs are assigned in order
// starting at 0.
func (p *Parser) ParseRules(src string) ([]*Rule, error) {
	var rules []*Rule
	for lineNo, line := range strings.Split(src, "\n") {
		lineRules, err := p.ParseRuleLine(line, len(rules))
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		rules = append(rules, lineRules...)
	}
	return rules, nil
}

// ParseRuleLine parses the rules on a single line (';'-separated),
// assigning IDs from startID. Blank lines and #- or //-comments yield
// no rules. It is the per-line building block of ParseRules, exported
// so diagnostics tools (camusc vet) can keep going past a bad line and
// report every error in a file.
func (p *Parser) ParseRuleLine(line string, startID int) ([]*Rule, error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "//") {
		return nil, nil
	}
	p.lex = newLexer(line)
	if err := p.advance(); err != nil {
		return nil, err
	}
	var rules []*Rule
	for p.tok.kind != tokEOF {
		r, err := p.parseRuleBody(startID + len(rules))
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return rules, nil
}

func (p *Parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("filter: %s (near %q)", fmt.Sprintf(format, args...), p.tok)
}

// parseOr: and ('or' and)*
func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	terms := []Expr{left}
	for p.tok.kind == tokOr {
		if err := p.advance(); err != nil {
			return nil, err
		}
		t, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return &Or{Terms: terms}, nil
}

// parseAnd: unary ('and' unary)*
func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	terms := []Expr{left}
	for p.tok.kind == tokAnd {
		if err := p.advance(); err != nil {
			return nil, err
		}
		t, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return &And{Terms: terms}, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	switch {
	case p.tok.kind == tokNot:
		if err := p.advance(); err != nil {
			return nil, err
		}
		t, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Not{Term: t}, nil
	case p.tok.kind == tokTrue:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Bool{Value: true}, nil
	case p.tok.kind == tokFalse:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Bool{Value: false}, nil
	case p.tok.kind == tokOp && p.tok.text == "(":
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokOp || p.tok.text != ")" {
			return nil, p.errf("expected ')'")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return e, nil
	case p.tok.kind == tokIdent:
		return p.parseAtom()
	default:
		return nil, p.errf("expected constraint")
	}
}

// parseAtom: operand relation constant
func (p *Parser) parseAtom() (Expr, error) {
	ref, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	rel, err := p.parseRelation()
	if err != nil {
		return nil, err
	}
	c, err := p.parseConstant(ref)
	if err != nil {
		return nil, err
	}
	atom := &Atom{Ref: ref, Rel: rel, Const: c}
	if err := p.checkAtom(atom); err != nil {
		return nil, err
	}
	return atom, nil
}

func (p *Parser) parseOperand() (FieldRef, error) {
	name := p.tok.text
	if err := p.advance(); err != nil {
		return FieldRef{}, err
	}
	// Aggregate macro: avg(field[, window]) | sum(field[, window]) | count([window])
	if agg, isAgg := spec.ParseAggFunc(name); isAgg && p.tok.kind == tokOp && p.tok.text == "(" {
		return p.parseAggregate(agg)
	}
	// Qualified name: header.field
	if p.tok.kind == tokOp && p.tok.text == "." {
		if err := p.advance(); err != nil {
			return FieldRef{}, err
		}
		if p.tok.kind != tokIdent && p.tok.kind != tokPrefix {
			return FieldRef{}, p.errf("expected field name after %q.", name)
		}
		name = name + "." + p.tok.text
		if err := p.advance(); err != nil {
			return FieldRef{}, err
		}
	}
	// Declared @counter referenced by bare name: a count aggregate.
	if sv, ok := p.spec.StateVar(name); ok {
		return FieldRef{Kind: AggregateRef, Agg: spec.AggCount, Window: sv.Window, Var: sv.Name}, nil
	}
	f, ok := p.spec.Field(name)
	if !ok {
		return FieldRef{}, fmt.Errorf("filter: %w %q (near %q)", ErrUnknownField, name, p.tok)
	}
	if !f.Subscribable {
		return FieldRef{}, p.errf("field %q is not annotated @field", name)
	}
	return FieldRef{Kind: PacketRef, Field: f}, nil
}

func (p *Parser) parseAggregate(agg spec.AggFunc) (FieldRef, error) {
	if err := p.advance(); err != nil { // consume '('
		return FieldRef{}, err
	}
	ref := FieldRef{Kind: AggregateRef, Agg: agg, Window: DefaultWindow}
	if p.tok.kind == tokIdent {
		name := p.tok.text
		if err := p.advance(); err != nil {
			return FieldRef{}, err
		}
		if p.tok.kind == tokOp && p.tok.text == "." {
			if err := p.advance(); err != nil {
				return FieldRef{}, err
			}
			name = name + "." + p.tok.text
			if err := p.advance(); err != nil {
				return FieldRef{}, err
			}
		}
		// Window literal (e.g. 100ms) or field/state-var name?
		if d, err := time.ParseDuration(strings.ReplaceAll(name, "us", "µs")); err == nil {
			ref.Window = d
		} else if sv, ok := p.spec.StateVar(name); ok {
			ref.Var = sv.Name
			ref.Window = sv.Window
		} else {
			f, ok := p.spec.Field(name)
			if !ok {
				return FieldRef{}, fmt.Errorf("filter: %w %q in aggregate (near %q)", ErrUnknownField, name, p.tok)
			}
			if !f.Subscribable {
				return FieldRef{}, p.errf("field %q is not annotated @field", name)
			}
			if f.Type != spec.IntField {
				return FieldRef{}, p.errf("aggregate over non-numeric field %q", name)
			}
			ref.Field = f
		}
		// Optional ", window"
		if p.tok.kind == tokOp && p.tok.text == "," {
			if err := p.advance(); err != nil {
				return FieldRef{}, err
			}
			if p.tok.kind != tokIdent && p.tok.kind != tokNumber {
				return FieldRef{}, p.errf("expected window duration")
			}
			d, err := time.ParseDuration(strings.ReplaceAll(p.tok.text, "us", "µs"))
			if err != nil {
				return FieldRef{}, p.errf("bad window %q: %v", p.tok.text, err)
			}
			ref.Window = d
			if err := p.advance(); err != nil {
				return FieldRef{}, err
			}
		}
	}
	if p.tok.kind != tokOp || p.tok.text != ")" {
		return FieldRef{}, p.errf("expected ')' after aggregate")
	}
	if err := p.advance(); err != nil {
		return FieldRef{}, err
	}
	if agg != spec.AggCount && ref.Field == nil && ref.Var == "" {
		return FieldRef{}, p.errf("%s() requires a field argument", agg)
	}
	return ref, nil
}

func (p *Parser) parseRelation() (Relation, error) {
	if p.tok.kind == tokPrefix {
		if err := p.advance(); err != nil {
			return 0, err
		}
		return PREFIX, nil
	}
	if p.tok.kind != tokOp {
		return 0, p.errf("expected relation")
	}
	var rel Relation
	switch p.tok.text {
	case "==":
		rel = EQ
	case "!=":
		rel = NE
	case "<":
		rel = LT
	case "<=":
		rel = LE
	case ">":
		rel = GT
	case ">=":
		rel = GE
	default:
		return 0, p.errf("expected relation, got %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return 0, err
	}
	return rel, nil
}

func (p *Parser) parseConstant(ref FieldRef) (spec.Value, error) {
	defer p.advance() //nolint:errcheck // EOF after last token is fine
	switch p.tok.kind {
	case tokNumber, tokIP:
		return spec.IntVal(p.tok.num), nil
	case tokString:
		return spec.StrVal(p.tok.text), nil
	case tokIdent:
		// Bare identifiers are string constants when the operand is a
		// string field (the paper writes stock == GOOGL unquoted).
		if ref.Type() == spec.StringField {
			return spec.StrVal(p.tok.text), nil
		}
		return spec.Value{}, p.errf("expected numeric constant, got %q", p.tok.text)
	default:
		return spec.Value{}, p.errf("expected constant")
	}
}

// checkAtom enforces the typing rules and the spec's match hints.
func (p *Parser) checkAtom(a *Atom) error {
	t := a.Ref.Type()
	if a.Const.Kind != t {
		return p.errf("%s: constant %s has wrong type (field is %s)", a.Ref, a.Const, t)
	}
	switch t {
	case spec.StringField:
		switch a.Rel {
		case EQ, NE:
		case PREFIX:
			if a.Ref.Field.Hint == spec.MatchExact {
				return p.errf("%s: field is @field_exact; prefix not allowed", a.Ref)
			}
		default:
			return p.errf("%s: relation %s not supported on strings", a.Ref, a.Rel)
		}
	case spec.IntField:
		if a.Rel == PREFIX {
			return p.errf("%s: prefix relation requires a string field", a.Ref)
		}
		if a.Ref.Kind == PacketRef && a.Ref.Field.Hint == spec.MatchExact {
			if a.Rel != EQ && a.Rel != NE {
				return p.errf("%s: field is @field_exact; only == and != allowed", a.Ref)
			}
		}
		if a.Ref.Kind == PacketRef {
			if max := a.Ref.Field.MaxValue(); a.Const.Int < 0 || a.Const.Int > max {
				return p.errf("%s: constant %d out of range [0,%d]", a.Ref, a.Const.Int, max)
			}
		}
	}
	return nil
}

func (p *Parser) parseAction() (Action, error) {
	if p.tok.kind != tokIdent {
		return Action{}, p.errf("expected action name")
	}
	name := p.tok.text
	if err := p.advance(); err != nil {
		return Action{}, err
	}
	if p.tok.kind != tokOp || p.tok.text != "(" {
		return Action{}, p.errf("expected '(' after action %q", name)
	}
	if err := p.advance(); err != nil {
		return Action{}, err
	}
	var ports []int
	var args []string
	for !(p.tok.kind == tokOp && p.tok.text == ")") {
		switch p.tok.kind {
		case tokNumber:
			ports = append(ports, int(p.tok.num))
			args = append(args, p.tok.text)
		case tokIdent, tokString, tokIP:
			args = append(args, p.tok.text)
		case tokEOF:
			return Action{}, p.errf("unterminated action arguments")
		default:
			return Action{}, p.errf("bad action argument %q", p.tok)
		}
		if err := p.advance(); err != nil {
			return Action{}, err
		}
		if p.tok.kind == tokOp && p.tok.text == "," {
			if err := p.advance(); err != nil {
				return Action{}, err
			}
		}
	}
	if err := p.advance(); err != nil { // consume ')'
		return Action{}, err
	}
	if name == "fwd" {
		if len(ports) != len(args) {
			return Action{}, p.errf("fwd() arguments must be port numbers")
		}
		return FwdAction(ports...), nil
	}
	return Action{Name: name, Args: args}, nil
}

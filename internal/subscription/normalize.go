package subscription

import (
	"fmt"
	"sort"
	"strings"

	"camus/internal/spec"
)

// Conjunction is a conjunction of atomic constraints. An empty conjunction
// is the constant-true filter.
type Conjunction []*Atom

func (c Conjunction) String() string {
	if len(c) == 0 {
		return "true"
	}
	parts := make([]string, len(c))
	for i, a := range c {
		parts[i] = a.String()
	}
	return strings.Join(parts, " and ")
}

// Key returns a canonical identity for the conjunction: atom keys sorted
// and joined. Two conjunctions with equal keys are semantically identical.
func (c Conjunction) Key() string {
	keys := make([]string, len(c))
	for i, a := range c {
		keys[i] = a.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, " && ")
}

// Normalize rewrites a filter into disjunctive normal form: a set of
// independent conjunctions of atomic predicates (paper §V-C: "The
// subscription rules are first normalized into disjunctive form").
// Negation is pushed down to atoms via De Morgan's laws and absorbed into
// the atom relations. The result is deduplicated; conjunctions containing
// a contradictory pair (an atom and its exact negation) are dropped.
//
// An empty, non-nil slice means the filter is unsatisfiable (false); a
// slice containing an empty conjunction means it is constant true.
func Normalize(e Expr) ([]Conjunction, error) {
	pushed, err := pushNot(e, false)
	if err != nil {
		return nil, err
	}
	disj := distribute(pushed)
	out := make([]Conjunction, 0, len(disj))
	// Cross-disjunct dedup only matters for multi-disjunct filters; the
	// common single-conjunction case skips the key computation entirely.
	var seen map[string]bool
	if len(disj) > 1 {
		seen = make(map[string]bool, len(disj))
	}
conj:
	for _, c := range disj {
		// Deduplicate atoms within the conjunction and detect syntactic
		// contradictions (semantic contradictions are the BDD's job).
		// Atom identity is structural (FieldRef, relation, and constant
		// are all comparable), so no string keys are formatted here.
		byIdent := make(map[atomIdent]bool, len(c))
		ordered := make(Conjunction, 0, len(c))
		for _, a := range c {
			id := atomIdent{ref: a.Ref, rel: a.Rel, c: a.Const}
			if byIdent[id] {
				continue
			}
			if canNegate(a.Rel) && byIdent[atomIdent{ref: a.Ref, rel: negOf(a.Rel), c: a.Const}] {
				continue conj // contains p and not p
			}
			byIdent[id] = true
			ordered = append(ordered, a)
		}
		if seen != nil {
			key := ordered.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
		}
		out = append(out, ordered)
	}
	// If any conjunction is empty (true), the whole filter is true.
	for _, c := range out {
		if len(c) == 0 {
			return []Conjunction{{}}, nil
		}
	}
	return out, nil
}

// atomIdent is an Atom's structural identity (every field of FieldRef
// and spec.Value is comparable), the allocation-free equivalent of
// Atom.Key for dedup maps.
type atomIdent struct {
	ref FieldRef
	rel Relation
	c   spec.Value
}

func canNegate(r Relation) bool { return r != PREFIX }

func negOf(r Relation) Relation {
	if !canNegate(r) {
		return r
	}
	return r.Negate()
}

// pushNot pushes negation down to the leaves. neg indicates whether the
// current subtree is under an odd number of negations.
func pushNot(e Expr, neg bool) (Expr, error) {
	switch n := e.(type) {
	case *Bool:
		return &Bool{Value: n.Value != neg}, nil
	case *Atom:
		if !neg {
			return n, nil
		}
		if !canNegate(n.Rel) {
			return nil, fmt.Errorf("subscription: cannot negate prefix constraint %s", n)
		}
		return &Atom{Ref: n.Ref, Rel: n.Rel.Negate(), Const: n.Const}, nil
	case *Not:
		return pushNot(n.Term, !neg)
	case *And:
		terms := make([]Expr, len(n.Terms))
		for i, t := range n.Terms {
			pt, err := pushNot(t, neg)
			if err != nil {
				return nil, err
			}
			terms[i] = pt
		}
		if neg {
			return &Or{Terms: terms}, nil
		}
		return &And{Terms: terms}, nil
	case *Or:
		terms := make([]Expr, len(n.Terms))
		for i, t := range n.Terms {
			pt, err := pushNot(t, neg)
			if err != nil {
				return nil, err
			}
			terms[i] = pt
		}
		if neg {
			return &And{Terms: terms}, nil
		}
		return &Or{Terms: terms}, nil
	default:
		return nil, fmt.Errorf("subscription: unknown expression node %T", e)
	}
}

// distribute converts a negation-free expression into a disjunction of
// conjunctions by distributing AND over OR.
func distribute(e Expr) []Conjunction {
	switch n := e.(type) {
	case *Bool:
		if n.Value {
			return []Conjunction{{}}
		}
		return []Conjunction{}
	case *Atom:
		return []Conjunction{{n}}
	case *Or:
		var out []Conjunction
		for _, t := range n.Terms {
			out = append(out, distribute(t)...)
		}
		return out
	case *And:
		acc := []Conjunction{{}}
		for _, t := range n.Terms {
			sub := distribute(t)
			next := make([]Conjunction, 0, len(acc)*len(sub))
			for _, a := range acc {
				for _, b := range sub {
					merged := make(Conjunction, 0, len(a)+len(b))
					merged = append(merged, a...)
					merged = append(merged, b...)
					next = append(next, merged)
				}
			}
			acc = next
		}
		return acc
	default:
		panic(fmt.Sprintf("subscription: distribute on %T (normalize first)", e))
	}
}

// NormalizeRule normalizes a rule's filter, returning one (conjunction,
// action) pair per disjunct — the independent rules of §V-C.
func NormalizeRule(r *Rule) ([]NormalizedRule, error) {
	conjs, err := Normalize(r.Filter)
	if err != nil {
		return nil, fmt.Errorf("rule %d: %w", r.ID, err)
	}
	out := make([]NormalizedRule, len(conjs))
	for i, c := range conjs {
		out[i] = NormalizedRule{RuleID: r.ID, Conj: c, Action: r.Action}
	}
	return out, nil
}

// NormalizedRule is one disjunct of a rule: a conjunction plus the rule's
// action.
type NormalizedRule struct {
	RuleID int
	Conj   Conjunction
	Action Action
}

func (n NormalizedRule) String() string {
	return fmt.Sprintf("%s: %s", n.Conj, n.Action)
}

package subscription

import (
	"math/rand"
	"testing"
	"testing/quick"

	"camus/internal/spec"
)

func mustFilter(t *testing.T, src string) Expr {
	t.Helper()
	e, err := NewParser(spec.MustParse("test", testSpecSrc)).ParseFilter(src)
	if err != nil {
		t.Fatalf("ParseFilter(%q): %v", src, err)
	}
	return e
}

func TestNormalizeShapes(t *testing.T) {
	cases := []struct {
		src   string
		conjs int
		atoms []int // atoms per conjunction
	}{
		{"price > 50", 1, []int{1}},
		{"price > 50 and stock == GOOGL", 1, []int{2}},
		{"price > 50 or stock == GOOGL", 2, []int{1, 1}},
		{"(price > 1 or price > 2) and (shares > 3 or shares > 4)", 4, []int{2, 2, 2, 2}},
		{"not (price > 10 and shares < 20)", 2, []int{1, 1}},
		{"not (price > 10 or shares < 20)", 1, []int{2}},
		{"price > 10 and price > 10", 1, []int{1}},  // dedup
		{"price > 10 and not (price > 10)", 0, nil}, // contradiction
		{"true", 1, []int{0}},                       // constant true
		{"false", 0, nil},                           // constant false
		{"price > 5 or true", 1, []int{0}},          // absorbed by true
		{"false or price > 5", 1, []int{1}},         // false disjunct dropped
		{"price > 5 and false", 0, nil},             // false conjunct kills
		{"price > 1 or price > 1", 1, []int{1}},     // dup disjunct
		{"not (not (price > 1))", 1, []int{1}},      // double negation
		{"not true", 0, nil},                        // ¬true = false
		{"price > 10 and (stock == A or stock == B)", 2, []int{2, 2}},
	}
	for _, tc := range cases {
		e := mustFilter(t, tc.src)
		conjs, err := Normalize(e)
		if err != nil {
			t.Errorf("Normalize(%q): %v", tc.src, err)
			continue
		}
		if len(conjs) != tc.conjs {
			t.Errorf("Normalize(%q) = %d conjunctions, want %d: %v", tc.src, len(conjs), tc.conjs, conjs)
			continue
		}
		for i, c := range conjs {
			if len(c) != tc.atoms[i] {
				t.Errorf("Normalize(%q) conj %d has %d atoms, want %d", tc.src, i, len(c), tc.atoms[i])
			}
		}
	}
}

func TestNormalizeRejectsNegatedPrefix(t *testing.T) {
	e := mustFilter(t, "not (name prefix \"x\")")
	if _, err := Normalize(e); err == nil {
		t.Error("negated prefix should fail normalization")
	}
}

func TestNormalizeRule(t *testing.T) {
	p := NewParser(spec.MustParse("test", testSpecSrc))
	r, err := p.ParseRule("price > 5 or shares < 3: fwd(2)", 9)
	if err != nil {
		t.Fatal(err)
	}
	nrs, err := NormalizeRule(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(nrs) != 2 {
		t.Fatalf("got %d normalized rules, want 2", len(nrs))
	}
	for _, nr := range nrs {
		if nr.RuleID != 9 || !nr.Action.IsFwd() || nr.Action.Ports[0] != 2 {
			t.Errorf("normalized rule = %+v", nr)
		}
	}
}

// randomExpr builds a random negation-bearing expression over small
// integer fields so normalization equivalence can be checked exhaustively
// on the value domain.
func randomExpr(r *rand.Rand, sp *spec.Spec, depth int) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		fields := []string{"price", "shares"}
		f, _ := sp.Field(fields[r.Intn(len(fields))])
		rels := []Relation{EQ, NE, LT, LE, GT, GE}
		return &Atom{
			Ref:   FieldRef{Kind: PacketRef, Field: f},
			Rel:   rels[r.Intn(len(rels))],
			Const: spec.IntVal(int64(r.Intn(6))),
		}
	}
	switch r.Intn(3) {
	case 0:
		return &And{Terms: []Expr{randomExpr(r, sp, depth-1), randomExpr(r, sp, depth-1)}}
	case 1:
		return &Or{Terms: []Expr{randomExpr(r, sp, depth-1), randomExpr(r, sp, depth-1)}}
	default:
		return &Not{Term: randomExpr(r, sp, depth-1)}
	}
}

// TestNormalizePreservesSemantics: for random expressions and all small
// (price, shares) value pairs, DNF evaluation must equal direct
// evaluation. This is invariant "DNF normalization" from DESIGN.md §6.
func TestNormalizePreservesSemantics(t *testing.T) {
	sp := spec.MustParse("test", testSpecSrc)
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		e := randomExpr(r, sp, 4)
		conjs, err := Normalize(e)
		if err != nil {
			t.Fatalf("Normalize: %v", err)
		}
		for price := int64(0); price < 7; price++ {
			for shares := int64(0); shares < 7; shares++ {
				m := spec.NewMessage(sp)
				m.MustSet("price", spec.IntVal(price))
				m.MustSet("shares", spec.IntVal(shares))
				want := EvalExpr(e, m, nil)
				got := false
				for _, c := range conjs {
					if EvalConjunction(c, m, nil) {
						got = true
						break
					}
				}
				if got != want {
					t.Fatalf("trial %d: DNF mismatch for %s at price=%d shares=%d: dnf=%v direct=%v (conjs=%v)",
						trial, e, price, shares, got, want, conjs)
				}
			}
		}
	}
}

// TestActionSetProperties uses testing/quick to check ActionSet merging is
// commutative, idempotent, and keeps ports sorted/deduplicated.
func TestActionSetProperties(t *testing.T) {
	f := func(ports []uint8, ports2 []uint8) bool {
		var a, b ActionSet
		for _, p := range ports {
			a.Add(FwdAction(int(p)))
		}
		for _, p := range ports2 {
			b.Add(FwdAction(int(p)))
		}
		ab := a.Clone()
		ab.Merge(b)
		ba := b.Clone()
		ba.Merge(a)
		if !ab.Equal(ba) {
			return false
		}
		abb := ab.Clone()
		abb.Merge(b)
		if !abb.Equal(ab) { // idempotent
			return false
		}
		for i := 1; i < len(ab.Ports); i++ {
			if ab.Ports[i-1] >= ab.Ports[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestActionSetCustom(t *testing.T) {
	var s ActionSet
	s.Add(Action{Name: "answerDNS", Args: []string{"10.0.0.1"}})
	s.Add(Action{Name: "answerDNS", Args: []string{"10.0.0.1"}})
	s.Add(FwdAction(3, 1))
	if len(s.Custom) != 1 {
		t.Errorf("custom dedup failed: %v", s.Custom)
	}
	if s.IsEmpty() {
		t.Error("set with actions is empty")
	}
	if got, want := s.Key(), "fwd(1,3);answerDNS(10.0.0.1)"; got != want {
		t.Errorf("Key = %q, want %q", got, want)
	}
	var empty ActionSet
	if !empty.IsEmpty() {
		t.Error("empty set not empty")
	}
}

func TestMatchActions(t *testing.T) {
	sp := spec.MustParse("test", testSpecSrc)
	p := NewParser(sp)
	rules, err := p.ParseRules(`
stock == GOOGL and price > 50: fwd(1)
stock == GOOGL: fwd(2)
price < 10: fwd(3)
`)
	if err != nil {
		t.Fatal(err)
	}
	m := spec.NewMessage(sp)
	m.MustSet("stock", spec.StrVal("GOOGL"))
	m.MustSet("price", spec.IntVal(60))
	set := MatchActions(rules, m, nil)
	if got := set.Key(); got != "fwd(1,2)" {
		t.Errorf("actions = %s, want fwd(1,2)", got)
	}
	m2 := spec.NewMessage(sp)
	m2.MustSet("stock", spec.StrVal("MSFT"))
	m2.MustSet("price", spec.IntVal(5))
	if got := MatchActions(rules, m2, nil).Key(); got != "fwd(3)" {
		t.Errorf("actions = %s, want fwd(3)", got)
	}
}

func TestEvalAbsentField(t *testing.T) {
	sp := spec.MustParse("test", testSpecSrc)
	p := NewParser(sp)
	e, err := p.ParseFilter("price > 5")
	if err != nil {
		t.Fatal(err)
	}
	m := spec.NewMessage(sp) // price absent
	if EvalExpr(e, m, nil) {
		t.Error("constraint on absent field matched")
	}
	ne, _ := p.ParseFilter("price != 5")
	if EvalExpr(ne, m, nil) {
		t.Error("!= on absent field matched")
	}
}

func TestEvalAggregates(t *testing.T) {
	sp := spec.MustParse("test", testSpecSrc)
	p := NewParser(sp)
	e, err := p.ParseFilter("stock == GOOGL and avg(price) > 60")
	if err != nil {
		t.Fatal(err)
	}
	m := spec.NewMessage(sp)
	m.MustSet("stock", spec.StrVal("GOOGL"))
	m.MustSet("price", spec.IntVal(100))
	if EvalExpr(e, m, nil) {
		t.Error("nil state should read aggregate as 0")
	}
	key := ""
	// Find the aggregate key from the expression.
	for _, term := range e.(*And).Terms {
		if a := term.(*Atom); a.Ref.Kind == AggregateRef {
			key = a.Ref.Key()
		}
	}
	st := MapState{key: 61}
	if !EvalExpr(e, m, st) {
		t.Error("aggregate 61 > 60 should match")
	}
}

func TestCompareStringPrefix(t *testing.T) {
	if !Compare(spec.StrVal("video/cats"), PREFIX, spec.StrVal("video/")) {
		t.Error("prefix should match")
	}
	if Compare(spec.StrVal("audio/x"), PREFIX, spec.StrVal("video/")) {
		t.Error("prefix should not match")
	}
	if Compare(spec.IntVal(5), PREFIX, spec.StrVal("5")) {
		t.Error("cross-kind compare should be false")
	}
}

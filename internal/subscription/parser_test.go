package subscription

import (
	"strings"
	"testing"
	"time"

	"camus/internal/spec"
)

const testSpecSrc = `
header ipv4 {
    src : u32 @field;
    dst : u32 @field;
}
header itch_order {
    shares : u32 @field;
    price : u32 @field;
    stock : str8 @field_exact;
    name : str16 @field;
    @counter(my_counter, 100us)
}
`

func testSpec(t *testing.T) *spec.Spec {
	t.Helper()
	return spec.MustParse("test", testSpecSrc)
}

func TestParsePaperExamples(t *testing.T) {
	p := NewParser(testSpec(t))
	examples := []string{
		"dst == 192.168.0.1",
		"stock == GOOGL ∧ price > 50",
		"stock == GOOGL and avg(price) > 60",
		"stock == 'GOOGL' && price > 50",
		"shares >= 100 or shares < 10",
		"not (price > 10 and price < 20)",
		"price != 7",
		"name prefix \"video/\"",
		"my_counter > 5",
		"count() > 10",
		"sum(shares, 5ms) > 1000",
		"true",
	}
	for _, src := range examples {
		if _, err := p.ParseFilter(src); err != nil {
			t.Errorf("ParseFilter(%q): %v", src, err)
		}
	}
}

func TestParseRule(t *testing.T) {
	p := NewParser(testSpec(t))
	r, err := p.ParseRule("stock == GOOGL: fwd(1,2,3)", 7)
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	if r.ID != 7 {
		t.Errorf("ID = %d", r.ID)
	}
	if got := r.Action.String(); got != "fwd(1,2,3)" {
		t.Errorf("action = %s", got)
	}
	a, ok := r.Filter.(*Atom)
	if !ok {
		t.Fatalf("filter is %T, want *Atom", r.Filter)
	}
	if a.Rel != EQ || a.Const.Str != "GOOGL" {
		t.Errorf("atom = %v", a)
	}
}

func TestParseCustomAction(t *testing.T) {
	p := NewParser(testSpec(t))
	r, err := p.ParseRule("name == h105: answerDNS(10.0.0.105)", 0)
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	if r.Action.Name != "answerDNS" || len(r.Action.Args) != 1 || r.Action.Args[0] != "10.0.0.105" {
		t.Errorf("action = %+v", r.Action)
	}
	if r.Action.IsFwd() {
		t.Error("custom action claims IsFwd")
	}
}

func TestParseRulesFile(t *testing.T) {
	p := NewParser(testSpec(t))
	src := `
# market data fan-out
stock == GOOGL and price > 50: fwd(1)
stock == MSFT: fwd(2); stock == AAPL: fwd(3)

// speeding cars
shares > 55 and price > 10 and price < 20: fwd(4)
`
	rules, err := p.ParseRules(src)
	if err != nil {
		t.Fatalf("ParseRules: %v", err)
	}
	if len(rules) != 4 {
		t.Fatalf("got %d rules, want 4", len(rules))
	}
	for i, r := range rules {
		if r.ID != i {
			t.Errorf("rule %d has ID %d", i, r.ID)
		}
	}
	if rules[2].Action.Ports[0] != 3 {
		t.Errorf("third rule ports = %v", rules[2].Action.Ports)
	}
}

func TestTypeChecking(t *testing.T) {
	p := NewParser(testSpec(t))
	bad := []struct{ src, want string }{
		{"bogus == 5", "unknown field"},
		{"stock > 5", "wrong type"},
		{"stock > ZZZ", "not supported on strings"},
		{"stock prefix GOO", "@field_exact"},
		{"price == GOOGL", "expected numeric constant"},
		{"price prefix 5", "prefix relation requires"},
		{"price == 5000000000", "out of range"},
		{"avg(stock) > 5", "non-numeric"},
		{"avg() > 5", "requires a field"},
		{"not (name prefix \"x\")", ""}, // parses; rejected at Normalize
		{"price >", "expected constant"},
		{"price 5", "expected relation"},
		{"(price > 5", "expected ')'"},
	}
	for _, tc := range bad {
		_, err := p.ParseFilter(tc.src)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%q: unexpected parse error %v", tc.src, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%q: err = %v, want containing %q", tc.src, err, tc.want)
		}
	}
}

func TestAggregateRefs(t *testing.T) {
	p := NewParser(testSpec(t))
	e, err := p.ParseFilter("avg(price) > 60")
	if err != nil {
		t.Fatal(err)
	}
	a := e.(*Atom)
	if a.Ref.Kind != AggregateRef || a.Ref.Agg != spec.AggAvg {
		t.Errorf("ref = %+v", a.Ref)
	}
	if a.Ref.Window != DefaultWindow {
		t.Errorf("window = %v, want default", a.Ref.Window)
	}

	e2, err := p.ParseFilter("avg(price, 250ms) > 60")
	if err != nil {
		t.Fatal(err)
	}
	if w := e2.(*Atom).Ref.Window; w != 250*time.Millisecond {
		t.Errorf("window = %v", w)
	}

	e3, err := p.ParseFilter("my_counter >= 3")
	if err != nil {
		t.Fatal(err)
	}
	ref := e3.(*Atom).Ref
	if ref.Var != "my_counter" || ref.Agg != spec.AggCount || ref.Window != 100*time.Microsecond {
		t.Errorf("counter ref = %+v", ref)
	}

	// Same aggregate expression in two filters shares a key; different
	// windows do not.
	k1 := e.(*Atom).Ref.Key()
	k2 := e2.(*Atom).Ref.Key()
	if k1 == k2 {
		t.Error("different windows share a state key")
	}
	e4, _ := p.ParseFilter("avg(price) > 99")
	if e4.(*Atom).Ref.Key() != k1 {
		t.Error("same aggregate expression has different keys")
	}
}

func TestIPv4Constants(t *testing.T) {
	p := NewParser(testSpec(t))
	e, err := p.ParseFilter("dst == 192.168.0.1")
	if err != nil {
		t.Fatal(err)
	}
	want := int64(192<<24 | 168<<16 | 1)
	if got := e.(*Atom).Const.Int; got != want {
		t.Errorf("dst const = %d, want %d", got, want)
	}
	if _, err := p.ParseFilter("dst == 192.168.1"); err == nil {
		t.Error("3-part IP should fail")
	}
	if _, err := p.ParseFilter("dst == 192.168.0.999"); err == nil {
		t.Error("out-of-range octet should fail")
	}
}

func TestHexConstants(t *testing.T) {
	p := NewParser(testSpec(t))
	e, err := p.ParseFilter("src == 0xC0A80001")
	if err != nil {
		t.Fatal(err)
	}
	if got := e.(*Atom).Const.Int; got != 0xC0A80001 {
		t.Errorf("const = %#x", got)
	}
}

func TestExprString(t *testing.T) {
	p := NewParser(testSpec(t))
	e, err := p.ParseFilter("stock == GOOGL and (price > 50 or shares < 10)")
	if err != nil {
		t.Fatal(err)
	}
	s := e.String()
	for _, want := range []string{"itch_order.stock == \"GOOGL\"", "or", "and"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	// Round-trip: the printed form must re-parse to an equivalent filter.
	if _, err := p.ParseFilter(s); err != nil {
		t.Errorf("round-trip parse of %q: %v", s, err)
	}
}

package subscription

import (
	"sort"
	"strings"
)

// ActionSet is the merged outcome of all rules matching a packet. When
// multiple filters overlap, their fwd ports are merged into one multicast
// set (paper §V-D: "the actions fwd(1) and fwd(2) are merged into the
// single action fwd(1,2)"); custom actions are deduplicated.
type ActionSet struct {
	// Ports is the sorted, deduplicated union of fwd ports.
	Ports []int
	// Custom holds non-fwd actions, deduplicated by key and sorted.
	Custom []Action
}

// Add merges an action into the set.
func (s *ActionSet) Add(a Action) {
	if a.IsFwd() {
		for _, p := range a.Ports {
			s.addPort(p)
		}
		return
	}
	key := a.Key()
	for _, c := range s.Custom {
		if c.Key() == key {
			return
		}
	}
	s.Custom = append(s.Custom, a)
	sort.Slice(s.Custom, func(i, j int) bool { return s.Custom[i].Key() < s.Custom[j].Key() })
}

func (s *ActionSet) addPort(p int) {
	i := sort.SearchInts(s.Ports, p)
	if i < len(s.Ports) && s.Ports[i] == p {
		return
	}
	s.Ports = append(s.Ports, 0)
	copy(s.Ports[i+1:], s.Ports[i:])
	s.Ports[i] = p
}

// Merge merges another action set into this one.
func (s *ActionSet) Merge(o ActionSet) {
	for _, p := range o.Ports {
		s.addPort(p)
	}
	for _, c := range o.Custom {
		s.Add(c)
	}
}

// IsEmpty reports whether the set carries no forwarding decision — the
// packet is dropped.
func (s ActionSet) IsEmpty() bool { return len(s.Ports) == 0 && len(s.Custom) == 0 }

// Key returns a canonical identity for the set. Equal keys denote equal
// forwarding behaviour; the compiler uses keys to share BDD terminals and
// multicast groups.
func (s ActionSet) Key() string {
	var b strings.Builder
	b.WriteString("fwd(")
	for i, p := range s.Ports {
		if i > 0 {
			b.WriteByte(',')
		}
		writeInt(&b, p)
	}
	b.WriteByte(')')
	for _, c := range s.Custom {
		b.WriteByte(';')
		b.WriteString(c.Key())
	}
	return b.String()
}

// Equal reports whether two action sets are identical.
func (s ActionSet) Equal(o ActionSet) bool { return s.Key() == o.Key() }

// Clone returns an independent copy.
func (s ActionSet) Clone() ActionSet {
	c := ActionSet{Ports: append([]int(nil), s.Ports...)}
	c.Custom = append(c.Custom, s.Custom...)
	return c
}

func (s ActionSet) String() string { return s.Key() }

func writeInt(b *strings.Builder, v int) {
	if v < 0 {
		b.WriteByte('-')
		v = -v
	}
	if v >= 10 {
		writeInt(b, v/10)
	}
	b.WriteByte(byte('0' + v%10))
}

package subscription

import (
	"errors"
	"strings"
	"testing"

	"camus/internal/spec"
)

// errSpecSrc extends the shared test spec with the cases the error
// paths need: an exact-match integer field and a field that is not
// annotated @field at all.
const errSpecSrc = `
header wire {
    port : u16 @field_exact;
    seq : u32;
    price : u32 @field;
    stock : str8 @field_exact;
    name : str16 @field;
}
`

func errSpec(t *testing.T) *spec.Spec {
	t.Helper()
	return spec.MustParse("err", errSpecSrc)
}

// TestUnknownFieldErrors asserts unknown-field failures are classified
// with ErrUnknownField on every path that can raise them, so
// diagnostics tools (camusc vet) can tell them apart from plain syntax
// errors.
func TestUnknownFieldErrors(t *testing.T) {
	p := NewParser(errSpec(t))
	cases := []string{
		"bogus == 5",
		"wire.bogus == 5",
		"avg(bogus) > 5",
		"sum(nothere, 10ms) > 1",
	}
	for _, src := range cases {
		_, err := p.ParseFilter(src)
		if err == nil {
			t.Errorf("%q: expected error", src)
			continue
		}
		if !errors.Is(err, ErrUnknownField) {
			t.Errorf("%q: error %v is not ErrUnknownField", src, err)
		}
		if !strings.Contains(err.Error(), "unknown field") {
			t.Errorf("%q: message %q lacks the diagnostic text", src, err)
		}
	}
	// Syntax and typing failures must NOT be classified as unknown-field.
	for _, src := range []string{"price >", "stock > 5", "price == GOOGL"} {
		if _, err := p.ParseFilter(src); errors.Is(err, ErrUnknownField) {
			t.Errorf("%q: wrongly classified as unknown field: %v", src, err)
		}
	}
}

// TestTypeCheckDiagnostics covers the checkAtom/parse paths not already
// exercised by TestTypeChecking: unannotated fields, exact-match
// integer fields, and aggregate argument validation.
func TestTypeCheckDiagnostics(t *testing.T) {
	p := NewParser(errSpec(t))
	bad := []struct{ src, want string }{
		{"seq == 5", "not annotated @field"},
		{"avg(seq) > 5", "not annotated @field"},
		{"port > 80", "only == and != allowed"},
		{"port prefix 8", "prefix relation requires"},
		{"port == 70000", "out of range"},
		{"price == -1", "unexpected character"}, // negative literals are rejected by the lexer
		{"avg(name) > 5", "non-numeric"},
		{"avg(price, zz) > 5", "bad window"},
		{"avg(price, 10xs) > 5", "bad window"},
		{"avg(price, ) > 5", "expected window duration"},
		{"sum() > 5", "sum() requires a field argument"},
		{"avg(price > 5", "expected ')' after aggregate"},
		{"price and 5", "expected relation"},
		{"wire. == 5", "expected field name"},
	}
	for _, tc := range bad {
		_, err := p.ParseFilter(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%q: err = %v, want containing %q", tc.src, err, tc.want)
		}
	}
	// port == 80 is fine: equality on an exact-match int field.
	if _, err := p.ParseFilter("port == 80"); err != nil {
		t.Errorf("port == 80 should parse: %v", err)
	}
}

// TestActionParseErrors covers the action grammar's failure modes.
func TestActionParseErrors(t *testing.T) {
	p := NewParser(errSpec(t))
	bad := []struct{ src, want string }{
		{"price > 1: ", "expected action name"},
		{"price > 1: 5(1)", "expected action name"},
		{"price > 1: fwd", "expected '(' after action"},
		{"price > 1: fwd(1", "unterminated action arguments"},
		{"price > 1: fwd(>)", "bad action argument"},
		{"price > 1: fwd(eth0)", "fwd() arguments must be port numbers"},
	}
	for _, tc := range bad {
		_, err := p.ParseRule(tc.src, 0)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%q: err = %v, want containing %q", tc.src, err, tc.want)
		}
	}
	// Custom actions accept mixed arguments; a bare rule gets fwd().
	r, err := p.ParseRule("price > 1: mirror(eth0, 3)", 0)
	if err != nil {
		t.Fatalf("mirror action: %v", err)
	}
	if r.Action.Name != "mirror" || len(r.Action.Args) != 2 {
		t.Errorf("mirror action = %+v", r.Action)
	}
	r, err = p.ParseRule("price > 1", 0)
	if err != nil {
		t.Fatalf("bare rule: %v", err)
	}
	if !r.Action.IsFwd() || len(r.Action.Ports) != 0 {
		t.Errorf("bare rule action = %+v, want empty fwd", r.Action)
	}
}

// TestParseRulesLineNumbers asserts file-level errors carry the
// 1-based line number of the offending rule.
func TestParseRulesLineNumbers(t *testing.T) {
	p := NewParser(errSpec(t))
	src := "price > 1: fwd(1)\n# ok\n\nstock == : fwd(2)\n"
	_, err := p.ParseRules(src)
	if err == nil || !strings.Contains(err.Error(), "line 4:") {
		t.Errorf("err = %v, want line 4 diagnostic", err)
	}
}

// TestParseRuleLineRecovery checks the per-line entry point skips
// blanks and comments and assigns IDs from startID, which camusc vet
// relies on to keep reporting past a bad line.
func TestParseRuleLineRecovery(t *testing.T) {
	p := NewParser(errSpec(t))
	for _, src := range []string{"", "   ", "# comment", "// comment"} {
		rules, err := p.ParseRuleLine(src, 3)
		if err != nil || rules != nil {
			t.Errorf("ParseRuleLine(%q) = %v, %v; want nil, nil", src, rules, err)
		}
	}
	rules, err := p.ParseRuleLine("price > 1: fwd(1); price > 2: fwd(2)", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || rules[0].ID != 5 || rules[1].ID != 6 {
		t.Errorf("IDs = %d,%d (len %d), want 5,6", rules[0].ID, rules[1].ID, len(rules))
	}
}

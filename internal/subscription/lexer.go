package subscription

import (
	"fmt"
	"strconv"
	"strings"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString // quoted
	tokIP     // dotted quad
	tokOp     // == != < <= > >= : , ( ) . !
	tokAnd
	tokOr
	tokNot
	tokTrue
	tokFalse
	tokPrefix
)

type token struct {
	kind tokenKind
	text string
	num  int64
	pos  int
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "EOF"
	case tokNumber:
		return fmt.Sprintf("%d", t.num)
	default:
		return t.text
	}
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) errf(format string, args ...interface{}) error {
	return fmt.Errorf("filter line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) skipSpace(stopAtNewline bool) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			if stopAtNewline {
				return
			}
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			l.skipLine()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			l.skipLine()
		default:
			return
		}
	}
}

func (l *lexer) skipLine() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

// next returns the next token. Newlines are treated as whitespace; rule
// files separate rules with ';' or the parser's per-line API.
func (l *lexer) next() (token, error) {
	l.skipSpace(false)
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start, line: l.line}, nil
	}
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
		word := l.src[start:l.pos]
		kind := tokIdent
		switch strings.ToLower(word) {
		case "and":
			kind = tokAnd
		case "or":
			kind = tokOr
		case "not":
			kind = tokNot
		case "true":
			kind = tokTrue
		case "false":
			kind = tokFalse
		case "prefix":
			kind = tokPrefix
		}
		return token{kind: kind, text: word, pos: start, line: l.line}, nil

	case c >= '0' && c <= '9':
		return l.numberOrIP(start)

	case c == '"' || c == '\'':
		// Quoted string with Go escape syntax (\" \\ \n \xNN \uNNNN ...)
		// so that Expr.String()'s %q output round-trips.
		quote := c
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) || l.src[l.pos] == '\n' {
				return token{}, l.errf("unterminated string")
			}
			if l.src[l.pos] == quote {
				l.pos++
				break
			}
			r, _, rest, err := strconv.UnquoteChar(l.src[l.pos:], quote)
			if err != nil {
				return token{}, l.errf("bad string escape: %v", err)
			}
			sb.WriteRune(r)
			l.pos = len(l.src) - len(rest)
		}
		return token{kind: tokString, text: sb.String(), pos: start, line: l.line}, nil

	default:
		// Multi-byte operators first.
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case "==", "!=", "<=", ">=", "&&", "||":
			l.pos += 2
			switch two {
			case "&&":
				return token{kind: tokAnd, text: two, pos: start, line: l.line}, nil
			case "||":
				return token{kind: tokOr, text: two, pos: start, line: l.line}, nil
			}
			return token{kind: tokOp, text: two, pos: start, line: l.line}, nil
		}
		// Unicode logical connectives (the paper writes ∧ and ∨).
		if strings.HasPrefix(l.src[l.pos:], "∧") {
			l.pos += len("∧")
			return token{kind: tokAnd, text: "∧", pos: start, line: l.line}, nil
		}
		if strings.HasPrefix(l.src[l.pos:], "∨") {
			l.pos += len("∨")
			return token{kind: tokOr, text: "∨", pos: start, line: l.line}, nil
		}
		switch c {
		case '<', '>', '=', ':', ',', '(', ')', '.', ';':
			l.pos++
			text := string(c)
			if c == '=' {
				text = "==" // single '=' tolerated as equality
			}
			return token{kind: tokOp, text: text, pos: start, line: l.line}, nil
		case '!':
			l.pos++
			return token{kind: tokNot, text: "!", pos: start, line: l.line}, nil
		}
		return token{}, l.errf("unexpected character %q", string(c))
	}
}

// numberOrIP scans a decimal/hex number, a duration (digits+unit, returned
// as an ident for the parser to interpret), or an IPv4 dotted quad.
func (l *lexer) numberOrIP(start int) (token, error) {
	// Hex?
	if strings.HasPrefix(l.src[l.pos:], "0x") || strings.HasPrefix(l.src[l.pos:], "0X") {
		l.pos += 2
		for l.pos < len(l.src) && isHex(l.src[l.pos]) {
			l.pos++
		}
		v, err := strconv.ParseUint(l.src[start+2:l.pos], 16, 64)
		if err != nil {
			return token{}, l.errf("bad hex literal %q: %v", l.src[start:l.pos], err)
		}
		return token{kind: tokNumber, num: int64(v), text: l.src[start:l.pos], pos: start, line: l.line}, nil
	}
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	// Dotted quad: 192.168.0.1
	if l.pos < len(l.src) && l.src[l.pos] == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
		dots := 0
		for l.pos < len(l.src) && (l.src[l.pos] == '.' || l.src[l.pos] >= '0' && l.src[l.pos] <= '9') {
			if l.src[l.pos] == '.' {
				dots++
			}
			l.pos++
		}
		text := l.src[start:l.pos]
		if dots != 3 {
			return token{}, l.errf("bad numeric literal %q", text)
		}
		v, err := parseIPv4(text)
		if err != nil {
			return token{}, l.errf("%v", err)
		}
		return token{kind: tokIP, num: int64(v), text: text, pos: start, line: l.line}, nil
	}
	// Duration suffix (e.g. 100us, 5ms) — lexed as an ident-ish token so
	// aggregate windows parse naturally.
	if l.pos < len(l.src) && isIdentStart(l.src[l.pos]) {
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start, line: l.line}, nil
	}
	v, err := strconv.ParseInt(l.src[start:l.pos], 10, 64)
	if err != nil {
		return token{}, l.errf("bad number %q: %v", l.src[start:l.pos], err)
	}
	return token{kind: tokNumber, num: v, text: l.src[start:l.pos], pos: start, line: l.line}, nil
}

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

// parseIPv4 converts a dotted quad to its uint32 value.
func parseIPv4(s string) (uint32, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("bad IPv4 literal %q", s)
	}
	var v uint32
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 {
			return 0, fmt.Errorf("bad IPv4 literal %q", s)
		}
		v = v<<8 | uint32(n)
	}
	return v, nil
}

package bdd

import (
	"fmt"
	"math/rand"
	"testing"

	"camus/internal/spec"
	"camus/internal/subscription"
)

func normalize(t testing.TB, sp *spec.Spec, src string, id int) []subscription.NormalizedRule {
	t.Helper()
	r, err := subscription.NewParser(sp).ParseRule(src, id)
	if err != nil {
		t.Fatalf("ParseRule(%q): %v", src, err)
	}
	nrs, err := subscription.NormalizeRule(r)
	if err != nil {
		t.Fatal(err)
	}
	return nrs
}

func TestEngineAddRemove(t *testing.T) {
	sp := testSpec(t)
	e := NewEngine(sp, Options{})

	if err := e.Add(normalize(t, sp, "stock == GOOGL: fwd(1)", 1)...); err != nil {
		t.Fatal(err)
	}
	if err := e.Add(normalize(t, sp, "price > 50: fwd(2)", 2)...); err != nil {
		t.Fatal(err)
	}
	d := e.Build()
	m := spec.NewMessage(sp)
	m.MustSet("stock", spec.StrVal("GOOGL"))
	m.MustSet("price", spec.IntVal(60))
	m.MustSet("shares", spec.IntVal(1))
	m.MustSet("name", spec.StrVal("x"))
	if got := d.Eval(m, nil).Key(); got != "fwd(1,2)" {
		t.Fatalf("eval = %s", got)
	}

	if !e.Remove(1) {
		t.Fatal("Remove(1) = false")
	}
	if e.Remove(1) {
		t.Fatal("double remove succeeded")
	}
	d2 := e.Build()
	if got := d2.Eval(m, nil).Key(); got != "fwd(2)" {
		t.Fatalf("after remove: %s", got)
	}
	if ids := e.Rules(); len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("Rules = %v", ids)
	}
	nodes, memo := e.CacheSize()
	if nodes == 0 || memo == 0 {
		t.Errorf("caches empty: %d %d", nodes, memo)
	}
}

// TestEngineUniverseGrowth: predicates appended by later rules keep
// earlier nodes' variable order valid.
func TestEngineUniverseGrowth(t *testing.T) {
	sp := testSpec(t)
	e := NewEngine(sp, Options{})
	srcs := []string{
		"price > 50: fwd(1)",
		"price > 10 and stock == MSFT: fwd(2)", // new pred on existing field + new field
		"shares < 5: fwd(3)",                   // new field ordered before price in spec
		"price == 30: fwd(4)",
	}
	for i, src := range srcs {
		if err := e.Add(normalize(t, sp, src, i)...); err != nil {
			t.Fatal(err)
		}
		d := e.Build()
		// Order invariant along every path.
		for _, n := range d.Reachable() {
			if n.IsTerminal() {
				continue
			}
			for _, next := range []*Node{n.Hi, n.Lo} {
				if !next.IsTerminal() && !n.Pred.Less(next.Pred) {
					t.Fatalf("after rule %d: order violated %v -> %v", i, n, next)
				}
			}
		}
	}
	// Semantics against brute force.
	p := subscription.NewParser(sp)
	var rules []*subscription.Rule
	for i, src := range srcs {
		r, err := p.ParseRule(src, i)
		if err != nil {
			t.Fatal(err)
		}
		rules = append(rules, r)
	}
	d := e.Build()
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		m := spec.NewMessage(sp)
		m.MustSet("price", spec.IntVal(int64(r.Intn(70))))
		m.MustSet("shares", spec.IntVal(int64(r.Intn(10))))
		m.MustSet("stock", spec.StrVal([]string{"GOOGL", "MSFT"}[r.Intn(2)]))
		m.MustSet("name", spec.StrVal("x"))
		want := subscription.MatchActions(rules, m, nil).Key()
		if got := d.Eval(m, nil).Key(); got != want {
			t.Fatalf("engine mismatch on %s: %s vs %s", m, got, want)
		}
	}
}

// TestEngineNodeIDStability: node IDs of unchanged subgraphs survive
// add/remove cycles (the basis of table-entry diffing).
func TestEngineNodeIDStability(t *testing.T) {
	sp := testSpec(t)
	e := NewEngine(sp, Options{})
	for i := 0; i < 20; i++ {
		if err := e.Add(normalize(t, sp, fmt.Sprintf("stock == S%02d: fwd(%d)", i, i%4), i)...); err != nil {
			t.Fatal(err)
		}
	}
	before := e.Build()
	if err := e.Add(normalize(t, sp, "stock == EXTRA: fwd(9)", 99)...); err != nil {
		t.Fatal(err)
	}
	e.Remove(99)
	after := e.Build()
	if before.Root.ID != after.Root.ID {
		t.Errorf("root ID changed across add/remove: %d vs %d", before.Root.ID, after.Root.ID)
	}
}

func TestUniverseExtend(t *testing.T) {
	sp := testSpec(t)
	u := NewUniverse(sp, nil, SpecOrder)
	p := subscription.NewParser(sp)
	e1, err := p.ParseFilter("price > 5")
	if err != nil {
		t.Fatal(err)
	}
	a1 := e1.(*subscription.Atom)
	p1, pos := u.Extend(a1)
	if !pos || p1.Rel != subscription.GT {
		t.Fatalf("Extend: %v %v", p1, pos)
	}
	// Same atom: same predicate.
	p1b, _ := u.Extend(a1)
	if p1b != p1 {
		t.Error("Extend not idempotent")
	}
	// Negative-polarity canonicalization.
	e2, err := p.ParseFilter("price <= 5")
	if err != nil {
		t.Fatal(err)
	}
	p2, pos2 := u.Extend(e2.(*subscription.Atom))
	if p2 != p1 || pos2 {
		t.Errorf("price <= 5 should be ¬(price > 5): %v %v", p2, pos2)
	}
	// New field appends after existing ones.
	e3, err := p.ParseFilter("stock == A")
	if err != nil {
		t.Fatal(err)
	}
	p3, _ := u.Extend(e3.(*subscription.Atom))
	if !p1.Less(p3) {
		t.Error("later field does not order after earlier field")
	}
	if len(u.Fields) != 2 || len(u.Preds) != 2 {
		t.Errorf("universe: %d fields %d preds", len(u.Fields), len(u.Preds))
	}
}

func TestBuildNormalizedNodeCap(t *testing.T) {
	sp := testSpec(t)
	var rules []*subscription.Rule
	p := subscription.NewParser(sp)
	for i := 0; i < 30; i++ {
		r, err := p.ParseRule(fmt.Sprintf("price > %d and shares < %d: fwd(%d)", i*3, 100-i, i%8), i)
		if err != nil {
			t.Fatal(err)
		}
		rules = append(rules, r)
	}
	if _, err := Build(sp, rules, Options{MaxNodes: 10}); err != ErrTooLarge {
		t.Errorf("node cap not enforced: %v", err)
	}
	if _, err := Build(sp, rules, Options{}); err != nil {
		t.Errorf("uncapped build failed: %v", err)
	}
}

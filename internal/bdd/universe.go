package bdd

import (
	"fmt"
	"sort"

	"camus/internal/spec"
	"camus/internal/subscription"
)

// Pred is one BDD variable: a canonical atomic predicate. Relations are
// canonicalized to {EQ, LT, GT, PREFIX}; the complementary relations
// (NE, GE, LE) are expressed as the negated branch of the canonical
// predicate, which maximizes node sharing across rules.
type Pred struct {
	// ID is the global identity of the predicate (creation order). It is
	// NOT the variable order — see Less.
	ID int
	// FieldIdx indexes the universe's field list; all predicates of a
	// field are contiguous in the variable order, which is what lets the
	// compiler slice the BDD into per-field components (§V-D).
	FieldIdx int
	// Seq is the predicate's position within its field group. The
	// variable order (§V-C) is lexicographic (FieldIdx, Seq), which
	// stays stable when an incremental engine appends new predicates.
	Seq int
	// Ref is the field (or aggregate) the predicate tests.
	Ref subscription.FieldRef
	// Rel is the canonical relation.
	Rel subscription.Relation
	// Const is the comparison constant.
	Const spec.Value
}

// Less reports whether p precedes q in the fixed BDD variable order.
func (p *Pred) Less(q *Pred) bool {
	if p.FieldIdx != q.FieldIdx {
		return p.FieldIdx < q.FieldIdx
	}
	return p.Seq < q.Seq
}

func (p *Pred) String() string {
	return fmt.Sprintf("%s %s %s", p.Ref, p.Rel, p.Const)
}

func (p *Pred) key() string {
	return fmt.Sprintf("%s %s %s", p.Ref.Key(), p.Rel, p.Const)
}

// Eval evaluates the predicate against a message + state.
func (p *Pred) Eval(m *spec.Message, st subscription.StateReader) bool {
	a := subscription.Atom{Ref: p.Ref, Rel: p.Rel, Const: p.Const}
	return subscription.EvalAtom(&a, m, st)
}

// FieldVar is one field (or stateful aggregate) participating in the BDD
// variable order.
type FieldVar struct {
	Index int
	Ref   subscription.FieldRef
	// Preds are the canonical predicates on this field, in variable order.
	Preds []*Pred
}

// Key returns the field's canonical identity.
func (f *FieldVar) Key() string { return f.Ref.Key() }

// Type returns the field's value type.
func (f *FieldVar) Type() spec.FieldType { return f.Ref.Type() }

// FieldOrder selects the BDD variable order across fields. The paper
// (§V-C) notes optimal ordering is NP-hard and fixed heuristic orders
// work well; the default follows spec declaration order.
type FieldOrder int

const (
	// SpecOrder orders packet fields by spec declaration order, then
	// aggregates. The default, matching the paper's prototype.
	SpecOrder FieldOrder = iota
	// SelectivityOrder orders fields by decreasing predicate count, so
	// the most discriminating fields are tested first (ablation).
	SelectivityOrder
	// ReverseSpecOrder reverses SpecOrder (worst-case ablation).
	ReverseSpecOrder
)

// Universe is the set of BDD variables derived from a rule set: the
// referenced fields in a fixed order and the canonical predicates on each.
type Universe struct {
	Spec   *spec.Spec
	Fields []*FieldVar
	Preds  []*Pred // global variable order

	fieldByKey map[string]*FieldVar
	predByKey  map[string]*Pred
}

// canonicalize maps an atom to its canonical predicate form plus the
// polarity with which the atom uses it (false = the atom is the negation
// of the canonical predicate).
func canonicalize(a *subscription.Atom) (rel subscription.Relation, c spec.Value, positive bool) {
	switch a.Rel {
	case subscription.EQ, subscription.LT, subscription.GT, subscription.PREFIX:
		return a.Rel, a.Const, true
	case subscription.NE:
		return subscription.EQ, a.Const, false
	case subscription.GE: // v >= c  ≡  ¬(v < c)
		return subscription.LT, a.Const, false
	case subscription.LE: // v <= c  ≡  ¬(v > c)
		return subscription.GT, a.Const, false
	default:
		panic("bdd: unknown relation " + a.Rel.String())
	}
}

// NewUniverse builds the variable universe for a set of normalized rules.
func NewUniverse(sp *spec.Spec, rules []subscription.NormalizedRule, order FieldOrder) *Universe {
	u := &Universe{
		Spec:       sp,
		fieldByKey: make(map[string]*FieldVar),
		predByKey:  make(map[string]*Pred),
	}
	// Collect referenced fields and raw predicates.
	type rawPred struct {
		ref  subscription.FieldRef
		rel  subscription.Relation
		c    spec.Value
		key  string
		fkey string
	}
	var raws []rawPred
	seenPred := make(map[string]bool)
	for _, nr := range rules {
		for _, a := range nr.Conj {
			rel, c, _ := canonicalize(a)
			fkey := a.Ref.Key()
			if u.fieldByKey[fkey] == nil {
				u.fieldByKey[fkey] = &FieldVar{Ref: a.Ref}
			}
			key := fmt.Sprintf("%s %s %s", fkey, rel, c)
			if seenPred[key] {
				continue
			}
			seenPred[key] = true
			raws = append(raws, rawPred{ref: a.Ref, rel: rel, c: c, key: key, fkey: fkey})
		}
	}
	// Order fields.
	fields := make([]*FieldVar, 0, len(u.fieldByKey))
	for _, f := range u.fieldByKey {
		fields = append(fields, f)
	}
	// Group order: header-validity bits first (set by the parser, so
	// testable before any field), then packet fields in spec order, then
	// stateful aggregates.
	group := func(f *FieldVar) int {
		switch f.Ref.Kind {
		case subscription.ValidityRef:
			return 0
		case subscription.PacketRef:
			return 1
		default:
			return 2
		}
	}
	specIdx := func(f *FieldVar) int {
		switch f.Ref.Kind {
		case subscription.ValidityRef:
			return sp.HeaderIndex(f.Ref.Header)
		case subscription.PacketRef:
			if i, ok := sp.SubscribableIndex(f.Ref.Field); ok {
				return i
			}
		}
		return len(sp.SubscribableFields())
	}
	sort.Slice(fields, func(i, j int) bool {
		a, b := fields[i], fields[j]
		if ga, gb := group(a), group(b); ga != gb {
			return ga < gb
		}
		ai, bi := specIdx(a), specIdx(b)
		if ai != bi {
			return ai < bi
		}
		return a.Key() < b.Key()
	})
	switch order {
	case ReverseSpecOrder:
		for i, j := 0, len(fields)-1; i < j; i, j = i+1, j-1 {
			fields[i], fields[j] = fields[j], fields[i]
		}
	case SelectivityOrder:
		counts := make(map[string]int)
		for _, rp := range raws {
			counts[rp.fkey]++
		}
		sort.SliceStable(fields, func(i, j int) bool {
			return counts[fields[i].Key()] > counts[fields[j].Key()]
		})
	}
	for i, f := range fields {
		f.Index = i
	}
	u.Fields = fields

	// Order predicates within each field deterministically, then assign
	// global IDs in field order.
	perField := make(map[string][]rawPred)
	for _, rp := range raws {
		perField[rp.fkey] = append(perField[rp.fkey], rp)
	}
	for _, f := range fields {
		rps := perField[f.Key()]
		sort.Slice(rps, func(i, j int) bool {
			return predOrderLess(rps[i].rel, rps[i].c, rps[j].rel, rps[j].c)
		})
		for _, rp := range rps {
			p := &Pred{
				ID:       len(u.Preds),
				FieldIdx: f.Index,
				Seq:      len(f.Preds),
				Ref:      rp.ref,
				Rel:      rp.rel,
				Const:    rp.c,
			}
			u.Preds = append(u.Preds, p)
			u.predByKey[rp.key] = p
			f.Preds = append(f.Preds, p)
		}
	}
	return u
}

// predOrderLess is the canonical within-field predicate order: by
// relation, then constant. Both the batch universe and Extend use it, so
// an incrementally grown universe orders a field's predicates exactly
// like a from-scratch build of the same rule set — which is what makes
// incremental programs entry-for-entry comparable to batch compiles.
func predOrderLess(ar subscription.Relation, ac spec.Value, br subscription.Relation, bc spec.Value) bool {
	if ar != br {
		return ar < br
	}
	if ac.Kind == spec.StringField {
		return ac.Str < bc.Str
	}
	return ac.Int < bc.Int
}

// seedSpecFields pre-populates the universe with every field a rule
// could reference statelessly — header validity bits, then the spec's
// subscribable packet fields — in the same (group, spec index) order
// NewUniverse sorts referenced fields into. An engine seeded this way
// has an arrival-independent variable order for stateless rule sets:
// only stateful aggregates (whose key space is unbounded) still append
// in first-reference order.
func (u *Universe) seedSpecFields() {
	add := func(ref subscription.FieldRef) {
		key := ref.Key()
		if u.fieldByKey[key] != nil {
			return
		}
		f := &FieldVar{Index: len(u.Fields), Ref: ref}
		u.fieldByKey[key] = f
		u.Fields = append(u.Fields, f)
	}
	for _, h := range u.Spec.Headers {
		add(subscription.ValidRef(h.Name))
	}
	for _, f := range u.Spec.SubscribableFields() {
		add(subscription.FieldRef{Kind: subscription.PacketRef, Field: f})
	}
}

// Extend adds any predicates (and fields) of the atom that the universe
// does not yet know, returning the atom's canonical predicate and
// polarity. New fields append after all existing fields; new predicates
// insert at their field's canonical (relation, constant) position and
// later predicates of the field renumber in place. Renumbering never
// swaps the relative order of two existing predicates, so every
// previously built node remains a well-ordered BDD and the builder's
// memo tables (all keyed by node/predicate identity) stay valid — the
// basis of incremental compilation (§V: "BDDs can leverage memoization").
func (u *Universe) Extend(a *subscription.Atom) (*Pred, bool) {
	rel, c, positive := canonicalize(a)
	key := fmt.Sprintf("%s %s %s", a.Ref.Key(), rel, c)
	if p, ok := u.predByKey[key]; ok {
		return p, positive
	}
	fkey := a.Ref.Key()
	f, ok := u.fieldByKey[fkey]
	if !ok {
		f = &FieldVar{Index: len(u.Fields), Ref: a.Ref}
		u.fieldByKey[fkey] = f
		u.Fields = append(u.Fields, f)
	}
	p := &Pred{
		ID:       len(u.Preds),
		FieldIdx: f.Index,
		Ref:      a.Ref,
		Rel:      rel,
		Const:    c,
	}
	u.Preds = append(u.Preds, p)
	u.predByKey[key] = p
	// Insert at the canonical position; Seq values after the insertion
	// point shift by one (relative order preserved).
	pos := sort.Search(len(f.Preds), func(i int) bool {
		return predOrderLess(rel, c, f.Preds[i].Rel, f.Preds[i].Const)
	})
	f.Preds = append(f.Preds, nil)
	copy(f.Preds[pos+1:], f.Preds[pos:])
	f.Preds[pos] = p
	for i := pos; i < len(f.Preds); i++ {
		f.Preds[i].Seq = i
	}
	return p, positive
}

// Lookup resolves an atom to its canonical predicate and polarity.
func (u *Universe) Lookup(a *subscription.Atom) (*Pred, bool, error) {
	rel, c, positive := canonicalize(a)
	key := fmt.Sprintf("%s %s %s", a.Ref.Key(), rel, c)
	p, ok := u.predByKey[key]
	if !ok {
		return nil, false, fmt.Errorf("bdd: predicate %q not in universe", key)
	}
	return p, positive, nil
}

// AggregateFields returns the stateful (aggregate) field variables.
func (u *Universe) AggregateFields() []*FieldVar {
	var out []*FieldVar
	for _, f := range u.Fields {
		if f.Ref.Kind == subscription.AggregateRef {
			out = append(out, f)
		}
	}
	return out
}

package bdd

import (
	"fmt"
	"sort"
	"sync"

	"camus/internal/match"
	"camus/internal/spec"
	"camus/internal/subscription"
)

// Pred is one BDD variable: a canonical atomic predicate. Relations are
// canonicalized to {EQ, LT, GT, PREFIX}; the complementary relations
// (NE, GE, LE) are expressed as the negated branch of the canonical
// predicate, which maximizes node sharing across rules.
type Pred struct {
	// ID is the global identity of the predicate (creation order). It is
	// NOT the variable order — see Less.
	ID int
	// FieldIdx indexes the universe's field list; all predicates of a
	// field are contiguous in the variable order, which is what lets the
	// compiler slice the BDD into per-field components (§V-D).
	FieldIdx int
	// Seq is the predicate's position within its field group. The
	// variable order (§V-C) is lexicographic (FieldIdx, Seq), which
	// stays stable when an incremental engine appends new predicates.
	Seq int
	// Ref is the field (or aggregate) the predicate tests.
	Ref subscription.FieldRef
	// Rel is the canonical relation.
	Rel subscription.Relation
	// Const is the comparison constant.
	Const spec.Value
}

// Less reports whether p precedes q in the fixed BDD variable order.
func (p *Pred) Less(q *Pred) bool {
	if p.FieldIdx != q.FieldIdx {
		return p.FieldIdx < q.FieldIdx
	}
	return p.Seq < q.Seq
}

func (p *Pred) String() string {
	return fmt.Sprintf("%s %s %s", p.Ref, p.Rel, p.Const)
}

// Eval evaluates the predicate against a message + state.
func (p *Pred) Eval(m *spec.Message, st subscription.StateReader) bool {
	a := subscription.Atom{Ref: p.Ref, Rel: p.Rel, Const: p.Const}
	return subscription.EvalAtom(&a, m, st)
}

// FieldVar is one field (or stateful aggregate) participating in the BDD
// variable order.
type FieldVar struct {
	Index int
	Ref   subscription.FieldRef
	// Preds are the canonical predicates on this field, in variable order.
	Preds []*Pred
}

// Key returns the field's canonical identity.
func (f *FieldVar) Key() string { return f.Ref.Key() }

// Type returns the field's value type.
func (f *FieldVar) Type() spec.FieldType { return f.Ref.Type() }

// FieldOrder selects the BDD variable order across fields. The paper
// (§V-C) notes optimal ordering is NP-hard and fixed heuristic orders
// work well; the default follows spec declaration order.
type FieldOrder int

const (
	// SpecOrder orders packet fields by spec declaration order, then
	// aggregates. The default, matching the paper's prototype.
	SpecOrder FieldOrder = iota
	// SelectivityOrder orders fields by decreasing predicate count, so
	// the most discriminating fields are tested first (ablation).
	SelectivityOrder
	// ReverseSpecOrder reverses SpecOrder (worst-case ablation).
	ReverseSpecOrder
)

// fieldIdent is the comparable identity of a field variable — the struct
// equivalent of FieldRef.Key(), so the hot lookup paths never format
// strings. Packet fields identify by their interned *spec.Field,
// validity bits by header name; aggregates (rare) fall back to the
// canonical key string so key-equal refs stay merged.
type fieldIdent struct {
	kind   subscription.RefKind
	field  *spec.Field
	header string
	agg    string
}

func identOf(r subscription.FieldRef) fieldIdent {
	switch r.Kind {
	case subscription.PacketRef:
		return fieldIdent{kind: r.Kind, field: r.Field}
	case subscription.ValidityRef:
		return fieldIdent{kind: r.Kind, header: r.Header}
	default:
		return fieldIdent{kind: r.Kind, agg: r.Key()}
	}
}

// predIdent is the comparable identity of a canonical predicate.
type predIdent struct {
	f   fieldIdent
	rel subscription.Relation
	c   spec.Value
}

// Universe is the set of BDD variables derived from a rule set: the
// referenced fields in a fixed order and the canonical predicates on each.
type Universe struct {
	Spec   *spec.Spec
	Fields []*FieldVar
	Preds  []*Pred // global variable order

	fieldByKey map[fieldIdent]*FieldVar
	predByKey  map[predIdent]*Pred

	// cache holds the interned per-field constraint contexts and the
	// memoized implication/refinement results. It is concurrency-safe
	// and persistent for the universe's lifetime: parallel chain workers
	// within one build, concurrent builds sharing the universe, and the
	// incremental engine's successive rebuilds all hit the same entries.
	// Entries are never invalidated — predicates are append-only and
	// constraints immutable, so a cached result stays correct when the
	// universe grows (Extend renumbers Seq, never a Pred's ID).
	cache ctxCache
}

// ctxCache interns (field, constraint) contexts to dense int32 IDs and
// memoizes the two operations the builder performs on them. All methods
// are safe for concurrent use.
type ctxCache struct {
	mu      sync.RWMutex
	ctxs    []match.Constraint
	fields  []int32
	byKey   map[ctxKey]int32
	fresh   map[int32]int32 // field index → unconstrained context ID
	refined map[refineKey]int32
	implied map[implKey]match.Tri
}

type ctxKey struct {
	field int32
	key   string
}

type refineKey struct {
	ctx     int32
	pred    int32
	outcome bool
}

type implKey struct {
	ctx  int32
	pred int32
}

func (cc *ctxCache) init() {
	cc.byKey = make(map[ctxKey]int32)
	cc.fresh = make(map[int32]int32)
	cc.refined = make(map[refineKey]int32)
	cc.implied = make(map[implKey]match.Tri)
}

// fieldOf returns the field index a context constrains.
func (cc *ctxCache) fieldOf(ctx int32) int32 {
	cc.mu.RLock()
	f := cc.fields[ctx]
	cc.mu.RUnlock()
	return f
}

func (cc *ctxCache) at(ctx int32) match.Constraint {
	cc.mu.RLock()
	c := cc.ctxs[ctx]
	cc.mu.RUnlock()
	return c
}

// intern returns the ID of a canonical (field, constraint) pair.
func (cc *ctxCache) intern(field int32, c match.Constraint) int32 {
	key := ctxKey{field: field, key: c.Key()}
	cc.mu.RLock()
	id, ok := cc.byKey[key]
	cc.mu.RUnlock()
	if ok {
		return id
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if id, ok := cc.byKey[key]; ok {
		return id
	}
	id = int32(len(cc.ctxs))
	cc.ctxs = append(cc.ctxs, c)
	cc.fields = append(cc.fields, field)
	cc.byKey[key] = id
	return id
}

// freshCtx returns the unconstrained context for a predicate's field
// together with its constraint, so callers hold the constraint locally
// and test implications with direct (lock-free) calls.
func (u *Universe) freshCtx(p *Pred) (int32, match.Constraint) {
	cc := &u.cache
	cc.mu.RLock()
	id, ok := cc.fresh[int32(p.FieldIdx)]
	var c match.Constraint
	if ok {
		c = cc.ctxs[id]
	}
	cc.mu.RUnlock()
	if ok {
		return id, c
	}
	c = match.New(p.Ref.Type())
	id = cc.intern(int32(p.FieldIdx), c)
	cc.mu.Lock()
	cc.fresh[int32(p.FieldIdx)] = id
	cc.mu.Unlock()
	return id, cc.at(id)
}

// refineCtx returns the context refined by a predicate outcome plus its
// constraint, memoized on (ctx, pred, outcome). The memo persists for
// the universe's lifetime, so an incremental engine's rebuilds (and any
// concurrent builds sharing the universe) never recompute — or
// re-allocate — a refinement they have seen before.
func (u *Universe) refineCtx(ctx int32, p *Pred, outcome bool) (int32, match.Constraint) {
	cc := &u.cache
	rk := refineKey{ctx: ctx, pred: int32(p.ID), outcome: outcome}
	cc.mu.RLock()
	id, ok := cc.refined[rk]
	var c match.Constraint
	if ok {
		c = cc.ctxs[id]
	}
	cc.mu.RUnlock()
	if ok {
		return id, c
	}
	c = cc.at(ctx).With(p.Rel, p.Const, outcome)
	id = cc.intern(int32(p.FieldIdx), c)
	cc.mu.Lock()
	cc.refined[rk] = id
	cc.mu.Unlock()
	return id, cc.at(id)
}

// impliesCtx reports whether a context decides a predicate, memoized on
// (ctx, pred). This is the single hottest operation of the or-merge's
// fast-forward loop.
func (u *Universe) impliesCtx(ctx int32, p *Pred) match.Tri {
	cc := &u.cache
	ik := implKey{ctx: ctx, pred: int32(p.ID)}
	cc.mu.RLock()
	v, ok := cc.implied[ik]
	var c match.Constraint
	if !ok {
		c = cc.ctxs[ctx]
	}
	cc.mu.RUnlock()
	if ok {
		return v
	}
	v = c.Implies(p.Rel, p.Const)
	cc.mu.Lock()
	cc.implied[ik] = v
	cc.mu.Unlock()
	return v
}

// CtxCacheSize reports the number of interned contexts and memoized
// implication results (diagnostics and tests).
func (u *Universe) CtxCacheSize() (ctxs, implied int) {
	u.cache.mu.RLock()
	defer u.cache.mu.RUnlock()
	return len(u.cache.ctxs), len(u.cache.implied)
}

// canonicalize maps an atom to its canonical predicate form plus the
// polarity with which the atom uses it (false = the atom is the negation
// of the canonical predicate).
func canonicalize(a *subscription.Atom) (rel subscription.Relation, c spec.Value, positive bool) {
	switch a.Rel {
	case subscription.EQ, subscription.LT, subscription.GT, subscription.PREFIX:
		return a.Rel, a.Const, true
	case subscription.NE:
		return subscription.EQ, a.Const, false
	case subscription.GE: // v >= c  ≡  ¬(v < c)
		return subscription.LT, a.Const, false
	case subscription.LE: // v <= c  ≡  ¬(v > c)
		return subscription.GT, a.Const, false
	default:
		panic("bdd: unknown relation " + a.Rel.String())
	}
}

// NewUniverse builds the variable universe for a set of normalized rules.
func NewUniverse(sp *spec.Spec, rules []subscription.NormalizedRule, order FieldOrder) *Universe {
	u := &Universe{
		Spec:       sp,
		fieldByKey: make(map[fieldIdent]*FieldVar),
		predByKey:  make(map[predIdent]*Pred),
	}
	u.cache.init()
	// Collect referenced fields and raw predicates.
	type rawPred struct {
		ref subscription.FieldRef
		rel subscription.Relation
		c   spec.Value
		fv  *FieldVar
	}
	var raws []rawPred
	seenPred := make(map[predIdent]bool)
	for _, nr := range rules {
		for _, a := range nr.Conj {
			rel, c, _ := canonicalize(a)
			fid := identOf(a.Ref)
			fv := u.fieldByKey[fid]
			if fv == nil {
				fv = &FieldVar{Ref: a.Ref}
				u.fieldByKey[fid] = fv
			}
			key := predIdent{f: fid, rel: rel, c: c}
			if seenPred[key] {
				continue
			}
			seenPred[key] = true
			raws = append(raws, rawPred{ref: a.Ref, rel: rel, c: c, fv: fv})
		}
	}
	// Order fields.
	fields := make([]*FieldVar, 0, len(u.fieldByKey))
	for _, f := range u.fieldByKey {
		fields = append(fields, f)
	}
	// Group order: header-validity bits first (set by the parser, so
	// testable before any field), then packet fields in spec order, then
	// stateful aggregates.
	group := func(f *FieldVar) int {
		switch f.Ref.Kind {
		case subscription.ValidityRef:
			return 0
		case subscription.PacketRef:
			return 1
		default:
			return 2
		}
	}
	specIdx := func(f *FieldVar) int {
		switch f.Ref.Kind {
		case subscription.ValidityRef:
			return sp.HeaderIndex(f.Ref.Header)
		case subscription.PacketRef:
			if i, ok := sp.SubscribableIndex(f.Ref.Field); ok {
				return i
			}
		}
		return len(sp.SubscribableFields())
	}
	sort.Slice(fields, func(i, j int) bool {
		a, b := fields[i], fields[j]
		if ga, gb := group(a), group(b); ga != gb {
			return ga < gb
		}
		ai, bi := specIdx(a), specIdx(b)
		if ai != bi {
			return ai < bi
		}
		return a.Key() < b.Key()
	})
	switch order {
	case ReverseSpecOrder:
		for i, j := 0, len(fields)-1; i < j; i, j = i+1, j-1 {
			fields[i], fields[j] = fields[j], fields[i]
		}
	case SelectivityOrder:
		counts := make(map[*FieldVar]int)
		for _, rp := range raws {
			counts[rp.fv]++
		}
		sort.SliceStable(fields, func(i, j int) bool {
			return counts[fields[i]] > counts[fields[j]]
		})
	}
	for i, f := range fields {
		f.Index = i
	}
	u.Fields = fields

	// Order predicates within each field deterministically, then assign
	// global IDs in field order.
	perField := make(map[*FieldVar][]rawPred)
	for _, rp := range raws {
		perField[rp.fv] = append(perField[rp.fv], rp)
	}
	for _, f := range fields {
		rps := perField[f]
		sort.Slice(rps, func(i, j int) bool {
			return predOrderLess(rps[i].rel, rps[i].c, rps[j].rel, rps[j].c)
		})
		for _, rp := range rps {
			p := &Pred{
				ID:       len(u.Preds),
				FieldIdx: f.Index,
				Seq:      len(f.Preds),
				Ref:      rp.ref,
				Rel:      rp.rel,
				Const:    rp.c,
			}
			u.Preds = append(u.Preds, p)
			u.predByKey[predIdent{f: identOf(rp.ref), rel: rp.rel, c: rp.c}] = p
			f.Preds = append(f.Preds, p)
		}
	}
	return u
}

// predOrderLess is the canonical within-field predicate order: by
// relation, then constant. Both the batch universe and Extend use it, so
// an incrementally grown universe orders a field's predicates exactly
// like a from-scratch build of the same rule set — which is what makes
// incremental programs entry-for-entry comparable to batch compiles.
func predOrderLess(ar subscription.Relation, ac spec.Value, br subscription.Relation, bc spec.Value) bool {
	if ar != br {
		return ar < br
	}
	if ac.Kind == spec.StringField {
		return ac.Str < bc.Str
	}
	return ac.Int < bc.Int
}

// seedSpecFields pre-populates the universe with every field a rule
// could reference statelessly — header validity bits, then the spec's
// subscribable packet fields — in the same (group, spec index) order
// NewUniverse sorts referenced fields into. An engine seeded this way
// has an arrival-independent variable order for stateless rule sets:
// only stateful aggregates (whose key space is unbounded) still append
// in first-reference order.
func (u *Universe) seedSpecFields() {
	add := func(ref subscription.FieldRef) {
		fid := identOf(ref)
		if u.fieldByKey[fid] != nil {
			return
		}
		f := &FieldVar{Index: len(u.Fields), Ref: ref}
		u.fieldByKey[fid] = f
		u.Fields = append(u.Fields, f)
	}
	for _, h := range u.Spec.Headers {
		add(subscription.ValidRef(h.Name))
	}
	for _, f := range u.Spec.SubscribableFields() {
		add(subscription.FieldRef{Kind: subscription.PacketRef, Field: f})
	}
}

// Extend adds any predicates (and fields) of the atom that the universe
// does not yet know, returning the atom's canonical predicate and
// polarity. New fields append after all existing fields; new predicates
// insert at their field's canonical (relation, constant) position and
// later predicates of the field renumber in place. Renumbering never
// swaps the relative order of two existing predicates, so every
// previously built node remains a well-ordered BDD and the builder's
// memo tables (all keyed by node/predicate identity) stay valid — the
// basis of incremental compilation (§V: "BDDs can leverage memoization").
//
// Extend is a mutation of the universe's variable order and is NOT safe
// to run concurrently with builds sharing the universe; it belongs to
// the single-threaded incremental engine.
func (u *Universe) Extend(a *subscription.Atom) (*Pred, bool) {
	rel, c, positive := canonicalize(a)
	fid := identOf(a.Ref)
	key := predIdent{f: fid, rel: rel, c: c}
	if p, ok := u.predByKey[key]; ok {
		return p, positive
	}
	f, ok := u.fieldByKey[fid]
	if !ok {
		f = &FieldVar{Index: len(u.Fields), Ref: a.Ref}
		u.fieldByKey[fid] = f
		u.Fields = append(u.Fields, f)
	}
	p := &Pred{
		ID:       len(u.Preds),
		FieldIdx: f.Index,
		Ref:      a.Ref,
		Rel:      rel,
		Const:    c,
	}
	u.Preds = append(u.Preds, p)
	u.predByKey[key] = p
	// Insert at the canonical position; Seq values after the insertion
	// point shift by one (relative order preserved).
	pos := sort.Search(len(f.Preds), func(i int) bool {
		return predOrderLess(rel, c, f.Preds[i].Rel, f.Preds[i].Const)
	})
	f.Preds = append(f.Preds, nil)
	copy(f.Preds[pos+1:], f.Preds[pos:])
	f.Preds[pos] = p
	for i := pos; i < len(f.Preds); i++ {
		f.Preds[i].Seq = i
	}
	return p, positive
}

// Lookup resolves an atom to its canonical predicate and polarity. Safe
// for concurrent use with other lookups (the universe is read-only
// during builds).
func (u *Universe) Lookup(a *subscription.Atom) (*Pred, bool, error) {
	rel, c, positive := canonicalize(a)
	p, ok := u.predByKey[predIdent{f: identOf(a.Ref), rel: rel, c: c}]
	if !ok {
		return nil, false, fmt.Errorf("bdd: predicate %q not in universe", a.Key())
	}
	return p, positive, nil
}

// AggregateFields returns the stateful (aggregate) field variables.
func (u *Universe) AggregateFields() []*FieldVar {
	var out []*FieldVar
	for _, f := range u.Fields {
		if f.Ref.Kind == subscription.AggregateRef {
			out = append(out, f)
		}
	}
	return out
}

package bdd

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"camus/internal/spec"
	"camus/internal/subscription"
)

const testSpecSrc = `
header itch_order {
    shares : u32 @field;
    price : u32 @field;
    stock : str8 @field_exact;
    name : str16 @field;
}
`

func testSpec(t testing.TB) *spec.Spec {
	t.Helper()
	return spec.MustParse("test", testSpecSrc)
}

func parseRules(t testing.TB, sp *spec.Spec, src string) []*subscription.Rule {
	t.Helper()
	rules, err := subscription.NewParser(sp).ParseRules(src)
	if err != nil {
		t.Fatalf("ParseRules: %v", err)
	}
	return rules
}

func build(t testing.TB, sp *spec.Spec, src string, opts Options) *BDD {
	t.Helper()
	d, err := Build(sp, parseRules(t, sp, src), opts)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return d
}

// TestPaperFigure5 reproduces the shape of the running example: three
// overlapping rules over shares and stock, sliced into two field
// components plus terminals (Fig. 5/6).
func TestPaperFigure5(t *testing.T) {
	sp := testSpec(t)
	d := build(t, sp, `
shares < 100 and stock == GOOGL: fwd(1)
shares < 100 and stock == GOOGL and price > 0: fwd(2)
shares >= 100 and stock == MSFT: fwd(3)
`, Options{})

	eval := func(shares, price int64, stock string) string {
		m := spec.NewMessage(sp)
		m.MustSet("shares", spec.IntVal(shares))
		m.MustSet("price", spec.IntVal(price))
		m.MustSet("stock", spec.StrVal(stock))
		return d.Eval(m, nil).Key()
	}
	if got := eval(50, 10, "GOOGL"); got != "fwd(1,2)" {
		t.Errorf("overlapping rules merged to %s, want fwd(1,2)", got)
	}
	if got := eval(50, 0, "GOOGL"); got != "fwd(1)" {
		t.Errorf("price==0 → %s, want fwd(1)", got)
	}
	if got := eval(200, 10, "MSFT"); got != "fwd(3)" {
		t.Errorf("MSFT high shares → %s, want fwd(3)", got)
	}
	if got := eval(200, 10, "GOOGL"); got != "fwd()" {
		t.Errorf("no match → %s, want fwd()", got)
	}

	// Variable order: shares before price before stock (spec order).
	stats := d.Stats()
	if stats.PerField["itch_order.shares"] == 0 || stats.PerField["itch_order.stock"] == 0 {
		t.Errorf("expected shares and stock components, got %v", stats.PerField)
	}
	for _, n := range d.Reachable() {
		if n.IsTerminal() {
			continue
		}
		for _, next := range []*Node{n.Hi, n.Lo} {
			if !next.IsTerminal() && !n.Pred.Less(next.Pred) {
				t.Fatalf("variable order violated: %v -> %v", n, next)
			}
		}
	}
}

// TestReductionInvariants: no reachable node has Hi==Lo, and no two
// reachable internal nodes are isomorphic (reductions i and ii).
func TestReductionInvariants(t *testing.T) {
	sp := testSpec(t)
	d := build(t, sp, `
price > 10 and price < 20: fwd(1)
price > 10 and price < 30: fwd(2)
price > 5 or stock == A: fwd(3)
shares == 7 and stock != A: fwd(4)
name prefix "video/": fwd(5)
`, Options{})
	seen := make(map[string]bool)
	for _, n := range d.Reachable() {
		if n.IsTerminal() {
			continue
		}
		if n.Hi == n.Lo {
			t.Errorf("node %v has identical branches", n)
		}
		key := fmt.Sprintf("%d,%d,%d", n.Pred.ID, n.Hi.ID, n.Lo.ID)
		if seen[key] {
			t.Errorf("duplicate isomorphic node %v", n)
		}
		seen[key] = true
	}
}

// TestImplicationPruning: a rule whose conjunction is semantically
// unsatisfiable across predicates (price > 20 and price < 10) must
// contribute nothing, and implied predicates must not be re-tested.
func TestImplicationPruning(t *testing.T) {
	sp := testSpec(t)
	d := build(t, sp, `
price > 20 and price < 10: fwd(1)
price > 50 and price > 40: fwd(2)
`, Options{})
	m := spec.NewMessage(sp)
	m.MustSet("price", spec.IntVal(60))
	if got := d.Eval(m, nil).Key(); got != "fwd(2)" {
		t.Errorf("eval = %s, want fwd(2)", got)
	}
	// No path may test price>40 after price>50 is true: count internal
	// nodes — the contradictory rule adds none, and the implied
	// predicate collapses, so at most 2 internal nodes survive
	// (price>40 and price>50 with sharing).
	if s := d.Stats(); s.Internal > 2 {
		t.Errorf("expected <=2 internal nodes after pruning, got %d: %v", s.Internal, s.PerField)
	}

	// Terminal for rule 1's action must be unreachable.
	for _, n := range d.Reachable() {
		if n.IsTerminal() && strings.Contains(n.Actions.Key(), "fwd(1)") {
			t.Error("unsatisfiable rule's action is reachable")
		}
	}
}

func TestSyntacticContradictionDropped(t *testing.T) {
	// Normalize already drops contradictions it can see, so feed the
	// builder a hand-made normalized rule using one predicate with both
	// polarities to exercise the chain-level guard.
	sp := testSpec(t)
	p := subscription.NewParser(sp)
	eq, err := p.ParseFilter("price == 5")
	if err != nil {
		t.Fatal(err)
	}
	ne, err := p.ParseFilter("price != 5")
	if err != nil {
		t.Fatal(err)
	}
	nr := subscription.NormalizedRule{
		RuleID: 0,
		Conj:   subscription.Conjunction{eq.(*subscription.Atom), ne.(*subscription.Atom)},
		Action: subscription.FwdAction(1),
	}
	d, err := BuildNormalized(sp, []subscription.NormalizedRule{nr}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.DroppedRules != 1 {
		t.Errorf("DroppedRules = %d, want 1", d.DroppedRules)
	}
	// And the front-door path: Normalize drops it before the builder.
	rules := parseRules(t, sp, "price == 5 and price != 5: fwd(1)\nprice > 1: fwd(2)")
	d2, err := Build(sp, rules, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := spec.NewMessage(sp)
	m.MustSet("price", spec.IntVal(5))
	if got := d2.Eval(m, nil).Key(); got != "fwd(2)" {
		t.Errorf("eval = %s, want fwd(2)", got)
	}
}

func TestStringPrefixPredicates(t *testing.T) {
	sp := testSpec(t)
	d := build(t, sp, `
name prefix "video/": fwd(1)
name prefix "video/cats/": fwd(2)
name == "video/cats/tom": fwd(3)
`, Options{})
	eval := func(name string) string {
		m := spec.NewMessage(sp)
		m.MustSet("name", spec.StrVal(name))
		return d.Eval(m, nil).Key()
	}
	if got := eval("video/cats/tom"); got != "fwd(1,2,3)" {
		t.Errorf("tom = %s, want fwd(1,2,3)", got)
	}
	if got := eval("video/dogs"); got != "fwd(1)" {
		t.Errorf("dogs = %s, want fwd(1)", got)
	}
	if got := eval("audio/x"); got != "fwd()" {
		t.Errorf("audio = %s, want fwd()", got)
	}
}

func TestAggregatePredicates(t *testing.T) {
	sp := testSpec(t)
	d := build(t, sp, `
stock == GOOGL and avg(price) > 60: fwd(1)
`, Options{})
	aggs := d.Universe.AggregateFields()
	if len(aggs) != 1 {
		t.Fatalf("aggregate fields = %d, want 1", len(aggs))
	}
	m := spec.NewMessage(sp)
	m.MustSet("stock", spec.StrVal("GOOGL"))
	m.MustSet("price", spec.IntVal(100))
	if got := d.Eval(m, nil).Key(); got != "fwd()" {
		t.Errorf("zero state eval = %s, want fwd()", got)
	}
	st := subscription.MapState{aggs[0].Key(): 61}
	if got := d.Eval(m, st).Key(); got != "fwd(1)" {
		t.Errorf("avg=61 eval = %s, want fwd(1)", got)
	}
}

func TestTrueFilter(t *testing.T) {
	sp := testSpec(t)
	d := build(t, sp, `
true: fwd(9)
price > 10: fwd(1)
`, Options{})
	m := spec.NewMessage(sp)
	m.MustSet("price", spec.IntVal(5))
	if got := d.Eval(m, nil).Key(); got != "fwd(9)" {
		t.Errorf("eval = %s, want fwd(9)", got)
	}
	m.MustSet("price", spec.IntVal(50))
	if got := d.Eval(m, nil).Key(); got != "fwd(1,9)" {
		t.Errorf("eval = %s, want fwd(1,9)", got)
	}
}

// randomRules generates a random workload mixing relations, fields and
// overlapping constants.
func randomRules(r *rand.Rand, sp *spec.Spec, n int) []*subscription.Rule {
	p := subscription.NewParser(sp)
	stocks := []string{"GOOGL", "MSFT", "AAPL", "FB"}
	rels := []string{"==", "!=", "<", "<=", ">", ">="}
	var rules []*subscription.Rule
	for i := 0; i < n; i++ {
		var terms []string
		for _, f := range []string{"shares", "price"} {
			if r.Intn(2) == 0 {
				terms = append(terms, fmt.Sprintf("%s %s %d", f, rels[r.Intn(len(rels))], r.Intn(8)))
			}
		}
		if r.Intn(2) == 0 {
			op := "=="
			if r.Intn(4) == 0 {
				op = "!="
			}
			terms = append(terms, fmt.Sprintf("stock %s %s", op, stocks[r.Intn(len(stocks))]))
		}
		if len(terms) == 0 {
			terms = append(terms, fmt.Sprintf("price > %d", r.Intn(8)))
		}
		join := " and "
		if r.Intn(3) == 0 {
			join = " or "
		}
		src := fmt.Sprintf("%s: fwd(%d)", strings.Join(terms, join), r.Intn(6))
		rule, err := p.ParseRule(src, i)
		if err != nil {
			panic(err)
		}
		rules = append(rules, rule)
	}
	return rules
}

func randomMessage(r *rand.Rand, sp *spec.Spec) *spec.Message {
	stocks := []string{"GOOGL", "MSFT", "AAPL", "FB", "ZZZ"}
	m := spec.NewMessage(sp)
	m.MustSet("shares", spec.IntVal(int64(r.Intn(10))))
	m.MustSet("price", spec.IntVal(int64(r.Intn(10))))
	m.MustSet("stock", spec.StrVal(stocks[r.Intn(len(stocks))]))
	m.MustSet("name", spec.StrVal("x"))
	return m
}

// TestSemanticEquivalence is the central correctness property: for random
// rule sets and random messages, BDD evaluation equals brute-force rule
// evaluation — with pruning, without pruning, and under every field-order
// heuristic.
func TestSemanticEquivalence(t *testing.T) {
	sp := testSpec(t)
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		rules := randomRules(r, sp, 1+r.Intn(12))
		for _, opts := range []Options{
			{},
			{DisablePruning: true},
			{Order: SelectivityOrder},
			{Order: ReverseSpecOrder},
		} {
			d, err := Build(sp, rules, opts)
			if err != nil {
				t.Fatalf("Build(%+v): %v", opts, err)
			}
			for i := 0; i < 40; i++ {
				m := randomMessage(r, sp)
				want := subscription.MatchActions(rules, m, nil).Key()
				got := d.Eval(m, nil).Key()
				if got != want {
					t.Fatalf("trial %d opts %+v: eval mismatch on %s:\n got  %s\n want %s\nrules:\n%s",
						trial, opts, m, got, want, rulesString(rules))
				}
			}
		}
	}
}

// TestPruningReducesNodes: context-sensitive pruning can occasionally
// specialize nodes (trading sharing for dead-path removal), but in
// aggregate over related-range workloads it must shrink the diagrams —
// its purpose is bounding In→Out paths, which the compiler tests verify
// directly.
func TestPruningReducesNodes(t *testing.T) {
	sp := testSpec(t)
	r := rand.New(rand.NewSource(99))
	totalPruned, totalUnpruned := 0, 0
	shrunk := 0
	for trial := 0; trial < 30; trial++ {
		rules := randomRules(r, sp, 10)
		pruned, err := Build(sp, rules, Options{})
		if err != nil {
			t.Fatal(err)
		}
		unpruned, err := Build(sp, rules, Options{DisablePruning: true})
		if err != nil {
			t.Fatal(err)
		}
		pn, un := pruned.Stats().Nodes, unpruned.Stats().Nodes
		totalPruned += pn
		totalUnpruned += un
		if pn < un {
			shrunk++
		}
	}
	if totalPruned > totalUnpruned {
		t.Errorf("pruning grew aggregate node count: %d > %d", totalPruned, totalUnpruned)
	}
	if shrunk == 0 {
		t.Error("pruning never shrank any BDD across 30 random workloads")
	}
}

func rulesString(rules []*subscription.Rule) string {
	var b strings.Builder
	for _, r := range rules {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	return b.String()
}

func TestDotOutput(t *testing.T) {
	sp := testSpec(t)
	d := build(t, sp, "price > 10: fwd(1)", Options{})
	dot := d.Dot()
	for _, want := range []string{"digraph", "price", "fwd(1)", "style=dashed"} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot() missing %q", want)
		}
	}
}

// TestSharedChains: rules sharing a common suffix of constraints must
// share BDD structure (node count grows sublinearly vs. the naive chain
// total).
func TestSharedChains(t *testing.T) {
	sp := testSpec(t)
	var b strings.Builder
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&b, "shares == %d and stock == GOOGL and price > 50: fwd(1)\n", i)
	}
	d := build(t, sp, b.String(), Options{})
	s := d.Stats()
	// 50 shares predicates + 1 stock + 1 price = 52 internal nodes if
	// suffixes are perfectly shared.
	if s.Internal > 60 {
		t.Errorf("suffix sharing failed: %d internal nodes", s.Internal)
	}
}

func BenchmarkBuild1000Rules(b *testing.B) {
	sp := testSpec(b)
	r := rand.New(rand.NewSource(5))
	rules := randomRules(r, sp, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(sp, rules, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEval(b *testing.B) {
	sp := testSpec(b)
	r := rand.New(rand.NewSource(5))
	rules := randomRules(r, sp, 1000)
	d, err := Build(sp, rules, Options{})
	if err != nil {
		b.Fatal(err)
	}
	m := randomMessage(r, sp)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Eval(m, nil)
	}
}

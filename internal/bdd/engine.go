package bdd

import (
	"sort"

	"camus/internal/spec"
	"camus/internal/subscription"
)

// Engine is the incremental BDD builder the paper sketches for highly
// dynamic filter sets (§V: "Prior work has demonstrated that such
// incremental algorithms are feasible. BDDs — our primary internal data
// structure — can leverage memoization"). It keeps the hash-consing and
// apply-memoization tables alive across subscription changes: adding or
// removing a rule re-merges the per-rule chains, and every unchanged
// subgraph is a cache hit, so recompilation cost tracks the size of the
// change rather than the size of the rule set. Node IDs are stable
// across rebuilds, which downstream table diffing relies on (§V's
// "table entry re-use").
type Engine struct {
	u       *Universe
	b       *builder
	chains  map[int][]*Node // rule ID → chain nodes (one per disjunct)
	order   []int           // rule IDs in insertion order (deterministic merges)
	dropped int
}

// NewEngine creates an empty incremental engine for a spec. The
// universe is pre-seeded with every validity bit and subscribable
// packet field in canonical spec order, and predicates within a field
// keep the canonical (relation, constant) order as they arrive, so the
// variable order — and therefore the compiled program's structure — is
// independent of rule arrival history for stateless rule sets. Only
// stateful aggregates append in first-reference order. opts.Order is
// not used; pruning follows opts.DisablePruning.
func NewEngine(sp *spec.Spec, opts Options) *Engine {
	u := NewUniverse(sp, nil, opts.Order)
	u.seedSpecFields()
	return &Engine{
		u:      u,
		b:      newBuilder(u, !opts.DisablePruning),
		chains: make(map[int][]*Node),
	}
}

// Universe exposes the growing predicate universe.
func (e *Engine) Universe() *Universe { return e.u }

// Add inserts normalized rules. Disjuncts of existing rule IDs
// accumulate (a rule may be added piecewise).
func (e *Engine) Add(rules ...subscription.NormalizedRule) error {
	for _, nr := range rules {
		chain, ok, err := e.chainExtend(nr)
		if err != nil {
			return err
		}
		if !ok {
			e.dropped++
			continue
		}
		if _, exists := e.chains[nr.RuleID]; !exists {
			e.order = append(e.order, nr.RuleID)
		}
		e.chains[nr.RuleID] = append(e.chains[nr.RuleID], chain)
	}
	return nil
}

// Remove deletes every disjunct of a rule ID. It reports whether the
// rule existed.
func (e *Engine) Remove(ruleID int) bool {
	if _, ok := e.chains[ruleID]; !ok {
		return false
	}
	delete(e.chains, ruleID)
	for i, id := range e.order {
		if id == ruleID {
			e.order = append(e.order[:i], e.order[i+1:]...)
			break
		}
	}
	return true
}

// Rules returns the live rule IDs.
func (e *Engine) Rules() []int {
	out := append([]int(nil), e.order...)
	sort.Ints(out)
	return out
}

// Build merges the live chains into a BDD. Thanks to the persistent
// memo tables, unchanged prefixes of the merge tree are cache hits.
// Chains merge in ascending rule-ID order — the same order a batch
// compile of the ID-sorted rule set uses — so with pruning enabled
// (where the result is merge-order sensitive) an incrementally
// maintained diagram stays structurally identical to a from-scratch
// build of the surviving rules, whatever the add/remove history.
func (e *Engine) Build() *BDD {
	var chains []*Node
	seen := make(map[int32]bool)
	for _, id := range e.Rules() {
		for _, c := range e.chains[id] {
			if seen[c.ID] {
				continue
			}
			seen[c.ID] = true
			chains = append(chains, c)
		}
	}
	// Engine diagrams keep their creation-order node IDs (no DFS
	// renumbering): downstream table diffing relies on IDs being stable
	// across rebuilds of one engine.
	return &BDD{Universe: e.u, Root: e.b.merge(chains), DroppedRules: e.dropped}
}

// CacheSize reports the persistent table sizes (for Compact decisions).
func (e *Engine) CacheSize() (nodes, memoEntries int) {
	return e.b.nodeCount(), len(e.b.memo)
}

// chainExtend is chain() against the growable universe.
func (e *Engine) chainExtend(nr subscription.NormalizedRule) (*Node, bool, error) {
	for _, a := range nr.Conj {
		e.u.Extend(a) // ensure predicates exist before ordering literals
	}
	return e.b.chain(nr)
}

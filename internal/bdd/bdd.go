package bdd

import (
	"fmt"
	"slices"
	"strings"
	"sync"
	"sync/atomic"

	"camus/internal/match"
	"camus/internal/spec"
	"camus/internal/subscription"
)

// Node is a BDD node. Non-terminal nodes test Pred and branch to Hi
// (predicate true; the paper's solid arrow) or Lo (false; dashed arrow).
// Terminal nodes carry the merged ActionSet of every rule whose
// conjunction is satisfied along the path (multi-terminal BDD).
type Node struct {
	ID      int32
	Pred    *Pred // nil for terminals
	Hi, Lo  *Node
	Actions subscription.ActionSet // terminals only
}

// IsTerminal reports whether the node is a terminal.
func (n *Node) IsTerminal() bool { return n.Pred == nil }

func (n *Node) String() string {
	if n.IsTerminal() {
		return fmt.Sprintf("t%d{%s}", n.ID, n.Actions)
	}
	return fmt.Sprintf("n%d{%s ? n%d : n%d}", n.ID, n.Pred, n.Hi.ID, n.Lo.ID)
}

// BDD is a compiled rule set: the variable universe plus the root node of
// the reduced, ordered, multi-terminal decision diagram.
type BDD struct {
	Universe *Universe
	Root     *Node
	// DroppedRules counts rule disjuncts skipped because their
	// conjunction was syntactically unsatisfiable.
	DroppedRules int
}

// Options configure BDD construction.
type Options struct {
	// Order selects the field (variable) order heuristic.
	Order FieldOrder
	// DisablePruning turns off the domain-specific implication pruning
	// (reduction iii) — used only by the ablation benchmarks.
	DisablePruning bool
	// MaxNodes aborts construction when the node table exceeds this size
	// (0 = unlimited). Without reduction iii, range workloads can blow
	// up combinatorially; the cap turns an out-of-memory into an error.
	MaxNodes int
	// Parallelism is the number of goroutines building per-rule chains
	// (<= 1 means sequential). Chains are independent, so they fan out
	// over a worker pool; the OR-merge stays sequential because with
	// pruning the merge result is order-sensitive. Batch builds are
	// renumbered to a DFS order afterwards, so the emitted diagram is
	// byte-identical whatever the worker count.
	Parallelism int
}

// ErrTooLarge is returned when construction exceeds Options.MaxNodes.
var ErrTooLarge = fmt.Errorf("bdd: construction exceeded the node limit")

// tooLarge is the panic sentinel carrying ErrTooLarge out of the
// recursive builder.
type tooLarge struct{}

// parallelChainFanout is the minimum rule count before chain building
// spawns workers; below it the goroutine overhead dominates.
const parallelChainFanout = 32

// Build compiles rules into a BDD. Rules are normalized to DNF first;
// each disjunct becomes an independent conjunction chain OR-ed into the
// diagram (§V-C).
func Build(sp *spec.Spec, rules []*subscription.Rule, opts Options) (*BDD, error) {
	var normalized []subscription.NormalizedRule
	for _, r := range rules {
		nrs, err := subscription.NormalizeRule(r)
		if err != nil {
			return nil, err
		}
		normalized = append(normalized, nrs...)
	}
	return BuildNormalized(sp, normalized, opts)
}

// BuildNormalized compiles already-normalized rules into a BDD.
func BuildNormalized(sp *spec.Spec, rules []subscription.NormalizedRule, opts Options) (*BDD, error) {
	return buildIn(NewUniverse(sp, rules, opts.Order), rules, opts)
}

// BuildInUniverse compiles rules against an existing universe, which
// must already contain every predicate the rules reference (it is not
// extended). The universe's memo caches are shared: concurrent
// BuildInUniverse calls against one universe are safe and warm each
// other's implication/refinement caches.
func BuildInUniverse(u *Universe, rules []subscription.NormalizedRule, opts Options) (*BDD, error) {
	return buildIn(u, rules, opts)
}

type chainResult struct {
	node *Node
	ok   bool
	err  error
}

func buildIn(u *Universe, rules []subscription.NormalizedRule, opts Options) (d *BDD, err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(tooLarge); ok {
				d, err = nil, ErrTooLarge
				return
			}
			panic(r)
		}
	}()
	b := newBuilder(u, !opts.DisablePruning)
	b.maxNodes = opts.MaxNodes

	results := make([]chainResult, len(rules))
	workers := opts.Parallelism
	if workers > len(rules) {
		workers = len(rules)
	}
	if workers > 1 && len(rules) >= parallelChainFanout {
		var next atomic.Int64
		var overflow atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// A node-cap overflow panics out of the recursive
				// builder; inside a worker it must not crash the
				// process, so convert it to the error return here.
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(tooLarge); ok {
							overflow.Store(true)
							return
						}
						panic(r)
					}
				}()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(rules) || overflow.Load() {
						return
					}
					n, ok, err := b.chain(rules[i])
					results[i] = chainResult{node: n, ok: ok, err: err}
				}
			}()
		}
		wg.Wait()
		if overflow.Load() {
			return nil, ErrTooLarge
		}
	} else {
		for i := range rules {
			n, ok, cerr := b.chain(rules[i])
			results[i] = chainResult{node: n, ok: ok, err: cerr}
		}
	}

	dropped := 0
	chains := make([]*Node, 0, len(rules))
	seenChain := make(map[*Node]bool, len(rules))
	for i := range results {
		r := results[i]
		if r.err != nil {
			return nil, r.err
		}
		if !r.ok {
			dropped++
			continue
		}
		// Hash-consing makes identical rules the same chain node;
		// OR(x, x) = x, so duplicates are skipped outright.
		if seenChain[r.node] {
			continue
		}
		seenChain[r.node] = true
		chains = append(chains, r.node)
	}
	root := b.merge(chains)
	d = &BDD{Universe: u, Root: root, DroppedRules: dropped}
	// Batch diagrams are renumbered to a structural DFS order: the IDs
	// no longer depend on which worker allocated a node first, so the
	// downstream program (table entry order, multicast group numbering,
	// prover path enumeration) is identical for every worker count.
	// Engine builds are never renumbered — incremental table diffing
	// relies on creation-order ID stability across rebuilds.
	d.renumber()
	return d, nil
}

// merge OR-combines chains with balanced pairwise merging: OR-ing
// similar-sized diagrams keeps intermediate results small and memo hit
// rates high, unlike a left fold that re-walks one ever-growing diagram
// per rule. The merge is sequential and in ascending input order — with
// pruning the result is merge-order sensitive, so this is what keeps
// parallel chain building deterministic.
func (b *builder) merge(chains []*Node) *Node {
	for len(chains) > 1 {
		next := chains[:0]
		for i := 0; i+1 < len(chains); i += 2 {
			next = append(next, b.or(chains[i], chains[i+1]))
		}
		if len(chains)%2 == 1 {
			next = append(next, chains[len(chains)-1])
		}
		chains = next
	}
	if len(chains) == 1 {
		return chains[0]
	}
	return b.terminal(subscription.ActionSet{})
}

// renumber reassigns node IDs in DFS preorder (hi before lo) from the
// root. The order is derived purely from the diagram structure, which
// hash-consing and the sequential merge make independent of chain-build
// scheduling.
func (d *BDD) renumber() {
	next := int32(0)
	seen := make(map[*Node]bool)
	var walk func(n *Node)
	walk = func(n *Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		n.ID = next
		next++
		if !n.IsTerminal() {
			walk(n.Hi)
			walk(n.Lo)
		}
	}
	walk(d.Root)
}

// builder holds the hash-consing tables during construction.
//
// Performance notes: the or/apply hot path must not format strings. Path
// contexts (per-field constraints) are interned to int32 IDs in the
// universe's persistent cache; context refinement and implication tests
// are memoized there by small integer tuples, so a constraint's
// canonical Key() is computed once per distinct refinement rather than
// once per visit — and the results survive across builds sharing the
// universe (the incremental engine's rebuilds, parallel per-switch
// compiles in tests).
//
// Nodes live in per-shard slab arenas behind a sharded unique table, so
// chain construction can run on several goroutines: mkNode/terminal are
// safe for concurrent use. The or-merge memo tables (memo, termMemo)
// are plain maps — the merge is always sequential.
type builder struct {
	u       *Universe
	pruning bool

	nextID atomic.Int32
	shards [nShards]uniqShard

	termMu    sync.Mutex
	terminals map[string]*Node
	termSlab  []Node
	empty     *Node // cached ∅-action terminal (always ID 0)

	memo     map[memoKey]*Node
	termMemo map[[2]int32]*Node

	// maxNodes aborts construction via a tooLarge panic when exceeded
	// (0 = unlimited).
	maxNodes int
}

const (
	nShards  = 16
	slabSize = 1024
)

// uniqShard is one shard of the hash-cons unique table plus its slab
// arena. Slabs are fixed-capacity and never grow in place, so node
// pointers stay valid for the builder's lifetime.
type uniqShard struct {
	mu   sync.Mutex
	uniq map[[3]int32]*Node
	slab []Node
}

func (s *uniqShard) alloc() *Node {
	if len(s.slab) == cap(s.slab) {
		s.slab = make([]Node, 0, slabSize)
	}
	s.slab = append(s.slab, Node{})
	return &s.slab[len(s.slab)-1]
}

func shardOf(key [3]int32) uint32 {
	h := uint32(key[0])*0x9e3779b1 ^ uint32(key[1])*0x85ebca77 ^ uint32(key[2])*0xc2b2ae3d
	return (h ^ h>>16) & (nShards - 1)
}

type memoKey struct {
	u, v, ctx int32
}

// noCtx marks "no context" (pruning disabled or not yet entered a field).
const noCtx int32 = -1

func newBuilder(u *Universe, pruning bool) *builder {
	b := &builder{
		u:         u,
		pruning:   pruning,
		terminals: make(map[string]*Node),
		memo:      make(map[memoKey]*Node),
		termMemo:  make(map[[2]int32]*Node),
	}
	// The empty terminal exists in every diagram (chain fallthrough);
	// interning it eagerly gives the hot path a lock-free pointer check
	// and makes its ID (0) deterministic.
	b.empty = b.terminal(subscription.ActionSet{})
	return b
}

// terminal returns the hash-consed terminal for an action set
// (reduction i for terminals: equal action sets share one node).
// Safe for concurrent use.
func (b *builder) terminal(acts subscription.ActionSet) *Node {
	if acts.IsEmpty() && b.empty != nil {
		return b.empty
	}
	key := acts.Key()
	b.termMu.Lock()
	defer b.termMu.Unlock()
	if n, ok := b.terminals[key]; ok {
		return n
	}
	if len(b.termSlab) == cap(b.termSlab) {
		b.termSlab = make([]Node, 0, 64)
	}
	b.termSlab = append(b.termSlab, Node{ID: b.allocID(), Actions: acts})
	n := &b.termSlab[len(b.termSlab)-1]
	b.terminals[key] = n
	return n
}

// allocID hands out the next node ID, enforcing the node cap.
func (b *builder) allocID() int32 {
	id := b.nextID.Add(1) - 1
	if b.maxNodes > 0 && int(id) >= b.maxNodes {
		panic(tooLarge{})
	}
	return id
}

// mkNode returns the hash-consed internal node (reductions i and ii).
// Safe for concurrent use: the key's shard serializes lookup+insert, and
// node IDs come from one atomic counter.
func (b *builder) mkNode(p *Pred, hi, lo *Node) *Node {
	if hi == lo {
		return hi // reduction ii: both branches agree
	}
	key := [3]int32{int32(p.ID), hi.ID, lo.ID}
	sh := &b.shards[shardOf(key)]
	sh.mu.Lock()
	if n, ok := sh.uniq[key]; ok {
		sh.mu.Unlock()
		return n // reduction i: isomorphic node exists
	}
	if sh.uniq == nil {
		sh.uniq = make(map[[3]int32]*Node)
	}
	n := sh.alloc()
	*n = Node{ID: b.allocID(), Pred: p, Hi: hi, Lo: lo}
	sh.uniq[key] = n
	sh.mu.Unlock()
	return n
}

// nodeCount reports how many nodes the builder has allocated.
func (b *builder) nodeCount() int { return int(b.nextID.Load()) }

type lit struct {
	pred     *Pred
	positive bool
}

// chain builds the BDD for one conjunction: a linear chain of predicate
// nodes ordered by variable ID, terminating in the rule's action.
// Returns ok=false when the conjunction is unsatisfiable (a predicate
// used with both polarities, or a semantic per-field contradiction such
// as price > 20 ∧ price < 10). Literals implied by the preceding ones on
// the same field are elided. Safe for concurrent use.
func (b *builder) chain(nr subscription.NormalizedRule) (*Node, bool, error) {
	lits := make([]lit, 0, len(nr.Conj))
atoms:
	for _, a := range nr.Conj {
		p, pos, err := b.u.Lookup(a)
		if err != nil {
			return nil, false, err
		}
		// Conjunctions are small; a linear scan beats two maps.
		for i := range lits {
			if lits[i].pred == p {
				if lits[i].positive != pos {
					return nil, false, nil // p and ¬p: unsatisfiable
				}
				continue atoms
			}
		}
		lits = append(lits, lit{pred: p, positive: pos})
	}
	slices.SortFunc(lits, func(a, b lit) int {
		if a.pred.FieldIdx != b.pred.FieldIdx {
			return a.pred.FieldIdx - b.pred.FieldIdx
		}
		return a.pred.Seq - b.pred.Seq
	})

	// Per-field satisfiability and redundancy pass (mirrors reduction
	// iii at the cheapest possible point). Contexts are interned and the
	// implication/refinement results memoized in the universe, so rules
	// sharing literal prefixes — the common case in generated workloads —
	// skip the constraint algebra entirely.
	if b.pruning {
		kept := lits[:0]
		ctx := noCtx
		ctxField := -1
		for _, l := range lits {
			if ctx == noCtx || ctxField != l.pred.FieldIdx {
				ctx, _ = b.u.freshCtx(l.pred)
				ctxField = l.pred.FieldIdx
			}
			switch b.u.impliesCtx(ctx, l.pred) {
			case match.True:
				if !l.positive {
					return nil, false, nil
				}
				continue // redundant literal
			case match.False:
				if l.positive {
					return nil, false, nil
				}
				continue
			}
			ctx, _ = b.u.refineCtx(ctx, l.pred, l.positive)
			kept = append(kept, l)
		}
		lits = kept
	}

	var acts subscription.ActionSet
	acts.Add(nr.Action)
	node := b.terminal(acts)
	empty := b.empty
	for i := len(lits) - 1; i >= 0; i-- {
		if lits[i].positive {
			node = b.mkNode(lits[i].pred, node, empty)
		} else {
			node = b.mkNode(lits[i].pred, empty, node)
		}
	}
	return node, true, nil
}

// or computes the union of two diagrams: the resulting terminal action
// sets are the merged action sets of both inputs (§V-D: overlapping rules
// merge into multicast actions). Implication pruning happens here.
//
// The context argument is the interned within-field constraint: the
// conjunction of predicate outcomes taken so far on the field currently
// being tested. Constraints on earlier fields are irrelevant once the
// variable order moves past them, so one field's context suffices (and
// keeps memoization effective). NOT safe for concurrent use (sequential
// merge only).
func (b *builder) or(u, v *Node) *Node {
	return b.orCtx(u, v, noCtx)
}

func (b *builder) orCtx(u, v *Node, ctx int32) *Node {
	if u.IsTerminal() && v.IsTerminal() {
		tk := [2]int32{u.ID, v.ID}
		if u.ID > v.ID {
			tk = [2]int32{v.ID, u.ID}
		}
		if n, ok := b.termMemo[tk]; ok {
			return n
		}
		merged := u.Actions.Clone()
		merged.Merge(v.Actions)
		n := b.terminal(merged)
		b.termMemo[tk] = n
		return n
	}
	p := topPred(u, v)
	if !b.pruning {
		mk := memoKey{u: u.ID, v: v.ID, ctx: noCtx}
		if n, ok := b.memo[mk]; ok {
			return n
		}
		hi := b.orCtx(restrict(u, p, true), restrict(v, p, true), noCtx)
		lo := b.orCtx(restrict(u, p, false), restrict(v, p, false), noCtx)
		result := b.mkNode(p, hi, lo)
		b.memo[mk] = result
		return result
	}

	// Fast-forward every predicate the context already decides
	// (reduction iii) in a tight loop: no memoization or allocation per
	// skipped node. The context's constraint is held in a local and
	// tested with direct calls — fetching it from the shared cache per
	// node would put a lock and a map probe on the hottest loop in the
	// compiler for an implication test that is a handful of compares.
	// This is what keeps merging O(100k) equality chains (hICN-style
	// workloads) tractable — a pinned field value otherwise walks the
	// whole chain through the memo machinery.
	var cur match.Constraint
	if ctx == noCtx || b.u.cache.fieldOf(ctx) != int32(p.FieldIdx) {
		ctx, cur = b.u.freshCtx(p)
	} else {
		cur = b.u.cache.at(ctx)
	}
	for {
		switch cur.Implies(p.Rel, p.Const) {
		case match.True:
			u, v = restrict(u, p, true), restrict(v, p, true)
		case match.False:
			u, v = restrict(u, p, false), restrict(v, p, false)
		default:
			mk := memoKey{u: u.ID, v: v.ID, ctx: ctx}
			if n, ok := b.memo[mk]; ok {
				return n
			}
			hiCtx, _ := b.u.refineCtx(ctx, p, true)
			loCtx, _ := b.u.refineCtx(ctx, p, false)
			hi := b.orCtx(restrict(u, p, true), restrict(v, p, true), hiCtx)
			lo := b.orCtx(restrict(u, p, false), restrict(v, p, false), loCtx)
			result := b.mkNode(p, hi, lo)
			b.memo[mk] = result
			return result
		}
		if u.IsTerminal() && v.IsTerminal() {
			return b.orCtx(u, v, ctx) // terminal merge path
		}
		p = topPred(u, v)
		if b.u.cache.fieldOf(ctx) != int32(p.FieldIdx) {
			ctx, cur = b.u.freshCtx(p)
		}
	}
}

// topPred returns the smallest-ordered predicate tested at u or v.
func topPred(u, v *Node) *Pred {
	switch {
	case u.IsTerminal():
		return v.Pred
	case v.IsTerminal():
		return u.Pred
	case v.Pred.Less(u.Pred):
		return v.Pred
	default:
		return u.Pred
	}
}

// restrict specializes a node to a known outcome of predicate p.
func restrict(n *Node, p *Pred, outcome bool) *Node {
	if n.IsTerminal() || n.Pred.ID != p.ID {
		return n
	}
	if outcome {
		return n.Hi
	}
	return n.Lo
}

// Eval walks the diagram for a message, returning the merged action set —
// semantically identical to brute-force rule evaluation, in at most one
// predicate test per node on a single root-to-terminal path.
func (d *BDD) Eval(m *spec.Message, st subscription.StateReader) subscription.ActionSet {
	n := d.Root
	for !n.IsTerminal() {
		if n.Pred.Eval(m, st) {
			n = n.Hi
		} else {
			n = n.Lo
		}
	}
	return n.Actions
}

// Reachable returns all nodes reachable from the root, in a deterministic
// (DFS preorder, hi before lo) order.
func (d *BDD) Reachable() []*Node {
	var out []*Node
	seen := make(map[int32]bool)
	var walk func(n *Node)
	walk = func(n *Node) {
		if seen[n.ID] {
			return
		}
		seen[n.ID] = true
		out = append(out, n)
		if !n.IsTerminal() {
			walk(n.Hi)
			walk(n.Lo)
		}
	}
	walk(d.Root)
	return out
}

// Stats summarizes a BDD for the memory-efficiency evaluation (Fig. 12).
type Stats struct {
	// Nodes is the number of reachable nodes (internal + terminal).
	Nodes int
	// Internal is the number of reachable non-terminal nodes.
	Internal int
	// Terminals is the number of distinct reachable action sets.
	Terminals int
	// PerField maps field key → reachable node count in that component.
	PerField map[string]int
}

// Stats computes reachable-node statistics.
func (d *BDD) Stats() Stats {
	s := Stats{PerField: make(map[string]int)}
	for _, n := range d.Reachable() {
		s.Nodes++
		if n.IsTerminal() {
			s.Terminals++
		} else {
			s.Internal++
			s.PerField[d.Universe.Fields[n.Pred.FieldIdx].Key()]++
		}
	}
	return s
}

// Dot renders the diagram in Graphviz format (solid = true branch,
// dashed = false branch, mirroring the paper's Fig. 5).
func (d *BDD) Dot() string {
	var b strings.Builder
	b.WriteString("digraph bdd {\n  rankdir=TB;\n")
	for _, n := range d.Reachable() {
		if n.IsTerminal() {
			label := n.Actions.Key()
			if n.Actions.IsEmpty() {
				label = "drop"
			}
			fmt.Fprintf(&b, "  n%d [shape=box,label=%q];\n", n.ID, label)
			continue
		}
		fmt.Fprintf(&b, "  n%d [shape=ellipse,label=%q];\n", n.ID, n.Pred.String())
		fmt.Fprintf(&b, "  n%d -> n%d [style=solid];\n", n.ID, n.Hi.ID)
		fmt.Fprintf(&b, "  n%d -> n%d [style=dashed];\n", n.ID, n.Lo.ID)
	}
	b.WriteString("}\n")
	return b.String()
}

package bdd

import (
	"fmt"
	"sort"
	"strings"

	"camus/internal/match"
	"camus/internal/spec"
	"camus/internal/subscription"
)

// Node is a BDD node. Non-terminal nodes test Pred and branch to Hi
// (predicate true; the paper's solid arrow) or Lo (false; dashed arrow).
// Terminal nodes carry the merged ActionSet of every rule whose
// conjunction is satisfied along the path (multi-terminal BDD).
type Node struct {
	ID      int32
	Pred    *Pred // nil for terminals
	Hi, Lo  *Node
	Actions subscription.ActionSet // terminals only
}

// IsTerminal reports whether the node is a terminal.
func (n *Node) IsTerminal() bool { return n.Pred == nil }

func (n *Node) String() string {
	if n.IsTerminal() {
		return fmt.Sprintf("t%d{%s}", n.ID, n.Actions)
	}
	return fmt.Sprintf("n%d{%s ? n%d : n%d}", n.ID, n.Pred, n.Hi.ID, n.Lo.ID)
}

// BDD is a compiled rule set: the variable universe plus the root node of
// the reduced, ordered, multi-terminal decision diagram.
type BDD struct {
	Universe *Universe
	Root     *Node
	// DroppedRules counts rule disjuncts skipped because their
	// conjunction was syntactically unsatisfiable.
	DroppedRules int

	nodes []*Node // every hash-consed node, by ID
}

// Options configure BDD construction.
type Options struct {
	// Order selects the field (variable) order heuristic.
	Order FieldOrder
	// DisablePruning turns off the domain-specific implication pruning
	// (reduction iii) — used only by the ablation benchmarks.
	DisablePruning bool
	// MaxNodes aborts construction when the node table exceeds this size
	// (0 = unlimited). Without reduction iii, range workloads can blow
	// up combinatorially; the cap turns an out-of-memory into an error.
	MaxNodes int
}

// ErrTooLarge is returned when construction exceeds Options.MaxNodes.
var ErrTooLarge = fmt.Errorf("bdd: construction exceeded the node limit")

// tooLarge is the panic sentinel carrying ErrTooLarge out of the
// recursive builder.
type tooLarge struct{}

// Build compiles rules into a BDD. Rules are normalized to DNF first;
// each disjunct becomes an independent conjunction chain OR-ed into the
// diagram (§V-C).
func Build(sp *spec.Spec, rules []*subscription.Rule, opts Options) (*BDD, error) {
	var normalized []subscription.NormalizedRule
	for _, r := range rules {
		nrs, err := subscription.NormalizeRule(r)
		if err != nil {
			return nil, err
		}
		normalized = append(normalized, nrs...)
	}
	return BuildNormalized(sp, normalized, opts)
}

// BuildNormalized compiles already-normalized rules into a BDD.
func BuildNormalized(sp *spec.Spec, rules []subscription.NormalizedRule, opts Options) (d *BDD, err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(tooLarge); ok {
				d, err = nil, ErrTooLarge
				return
			}
			panic(r)
		}
	}()
	u := NewUniverse(sp, rules, opts.Order)
	b := newBuilder(u, !opts.DisablePruning)
	b.maxNodes = opts.MaxNodes
	dropped := 0
	chains := make([]*Node, 0, len(rules))
	seenChain := make(map[int32]bool, len(rules))
	for _, nr := range rules {
		chain, ok, err := b.chain(nr)
		if err != nil {
			return nil, err
		}
		if !ok {
			dropped++
			continue
		}
		// Hash-consing makes identical rules the same chain node;
		// OR(x, x) = x, so duplicates are skipped outright.
		if seenChain[chain.ID] {
			continue
		}
		seenChain[chain.ID] = true
		chains = append(chains, chain)
	}
	// Balanced pairwise merging: OR-ing similar-sized diagrams keeps
	// intermediate results small and memo hit rates high, unlike a left
	// fold that re-walks one ever-growing diagram per rule.
	for len(chains) > 1 {
		next := chains[:0]
		for i := 0; i+1 < len(chains); i += 2 {
			next = append(next, b.or(chains[i], chains[i+1]))
		}
		if len(chains)%2 == 1 {
			next = append(next, chains[len(chains)-1])
		}
		chains = next
	}
	root := b.terminal(subscription.ActionSet{})
	if len(chains) == 1 {
		root = chains[0]
	}
	return &BDD{Universe: u, Root: root, DroppedRules: dropped, nodes: b.nodes}, nil
}

// builder holds the hash-consing tables during construction.
//
// Performance note: the or/apply hot path must not format strings. Path
// contexts (per-field constraints) are interned to int32 IDs; context
// refinement is memoized by (ctxID, predID, outcome), so a constraint's
// canonical Key() is computed once per distinct refinement rather than
// once per visit. Memoization keys are then small integer tuples.
type builder struct {
	u         *Universe
	pruning   bool
	nodes     []*Node
	uniq      map[[3]int32]*Node
	terminals map[string]*Node
	memo      map[memoKey]*Node
	termMemo  map[[2]int32]*Node

	ctxs     []match.Constraint // interned contexts by ID
	ctxField []int              // field index of each context
	ctxByKey map[string]int32
	freshIDs map[int]int32 // field index → top context ID
	refined  map[refineKey]int32

	// maxNodes aborts construction via a tooLarge panic when exceeded
	// (0 = unlimited).
	maxNodes int
}

type memoKey struct {
	u, v, ctx int32
}

type refineKey struct {
	ctx     int32
	pred    int32
	outcome bool
}

// noCtx marks "no context" (pruning disabled or not yet entered a field).
const noCtx int32 = -1

func newBuilder(u *Universe, pruning bool) *builder {
	return &builder{
		u:         u,
		pruning:   pruning,
		uniq:      make(map[[3]int32]*Node),
		terminals: make(map[string]*Node),
		memo:      make(map[memoKey]*Node),
		termMemo:  make(map[[2]int32]*Node),
		ctxByKey:  make(map[string]int32),
		freshIDs:  make(map[int]int32),
		refined:   make(map[refineKey]int32),
	}
}

// internCtx returns the ID of a canonical (fieldIdx, constraint) pair.
func (b *builder) internCtx(fieldIdx int, c match.Constraint) int32 {
	full := fmt.Sprintf("%d|%s", fieldIdx, c.Key())
	if id, ok := b.ctxByKey[full]; ok {
		return id
	}
	id := int32(len(b.ctxs))
	b.ctxs = append(b.ctxs, c)
	b.ctxField = append(b.ctxField, fieldIdx)
	b.ctxByKey[full] = id
	return id
}

// freshCtx returns the unconstrained context for a predicate's field.
func (b *builder) freshCtx(p *Pred) int32 {
	if id, ok := b.freshIDs[p.FieldIdx]; ok {
		return id
	}
	id := b.internCtx(p.FieldIdx, match.New(p.Ref.Type()))
	b.freshIDs[p.FieldIdx] = id
	return id
}

// refineCtx returns the context refined by a predicate outcome,
// memoized on (ctx, pred, outcome).
func (b *builder) refineCtx(ctx int32, p *Pred, outcome bool) int32 {
	rk := refineKey{ctx: ctx, pred: int32(p.ID), outcome: outcome}
	if id, ok := b.refined[rk]; ok {
		return id
	}
	c := b.ctxs[ctx].With(p.Rel, p.Const, outcome)
	id := b.internCtx(p.FieldIdx, c)
	b.refined[rk] = id
	return id
}

// terminal returns the hash-consed terminal for an action set
// (reduction i for terminals: equal action sets share one node).
func (b *builder) terminal(acts subscription.ActionSet) *Node {
	key := acts.Key()
	if n, ok := b.terminals[key]; ok {
		return n
	}
	b.checkSize()
	n := &Node{ID: int32(len(b.nodes)), Actions: acts}
	b.nodes = append(b.nodes, n)
	b.terminals[key] = n
	return n
}

// checkSize enforces the node cap.
func (b *builder) checkSize() {
	if b.maxNodes > 0 && len(b.nodes) >= b.maxNodes {
		panic(tooLarge{})
	}
}

// mkNode returns the hash-consed internal node (reductions i and ii).
func (b *builder) mkNode(p *Pred, hi, lo *Node) *Node {
	if hi == lo {
		return hi // reduction ii: both branches agree
	}
	key := [3]int32{int32(p.ID), hi.ID, lo.ID}
	if n, ok := b.uniq[key]; ok {
		return n // reduction i: isomorphic node exists
	}
	b.checkSize()
	n := &Node{ID: int32(len(b.nodes)), Pred: p, Hi: hi, Lo: lo}
	b.nodes = append(b.nodes, n)
	b.uniq[key] = n
	return n
}

// chain builds the BDD for one conjunction: a linear chain of predicate
// nodes ordered by variable ID, terminating in the rule's action.
// Returns ok=false when the conjunction is unsatisfiable (a predicate
// used with both polarities, or a semantic per-field contradiction such
// as price > 20 ∧ price < 10). Literals implied by the preceding ones on
// the same field are elided.
func (b *builder) chain(nr subscription.NormalizedRule) (*Node, bool, error) {
	type lit struct {
		pred     *Pred
		positive bool
	}
	lits := make([]lit, 0, len(nr.Conj))
	polarity := make(map[int]bool, len(nr.Conj))
	seen := make(map[int]bool, len(nr.Conj))
	for _, a := range nr.Conj {
		p, pos, err := b.u.Lookup(a)
		if err != nil {
			return nil, false, err
		}
		if seen[p.ID] {
			if polarity[p.ID] != pos {
				return nil, false, nil // p and ¬p: unsatisfiable
			}
			continue
		}
		seen[p.ID] = true
		polarity[p.ID] = pos
		lits = append(lits, lit{pred: p, positive: pos})
	}
	sort.Slice(lits, func(i, j int) bool { return lits[i].pred.Less(lits[j].pred) })

	// Per-field satisfiability and redundancy pass (mirrors reduction
	// iii at the cheapest possible point).
	if b.pruning {
		kept := lits[:0]
		ctxField := -1
		var ctx match.Constraint
		for _, l := range lits {
			if l.pred.FieldIdx != ctxField {
				ctxField = l.pred.FieldIdx
				ctx = match.New(l.pred.Ref.Type())
			}
			switch ctx.Implies(l.pred.Rel, l.pred.Const) {
			case match.True:
				if !l.positive {
					return nil, false, nil
				}
				continue // redundant literal
			case match.False:
				if l.positive {
					return nil, false, nil
				}
				continue
			}
			ctx = ctx.With(l.pred.Rel, l.pred.Const, l.positive)
			kept = append(kept, l)
		}
		lits = kept
	}

	var acts subscription.ActionSet
	acts.Add(nr.Action)
	node := b.terminal(acts)
	empty := b.terminal(subscription.ActionSet{})
	for i := len(lits) - 1; i >= 0; i-- {
		if lits[i].positive {
			node = b.mkNode(lits[i].pred, node, empty)
		} else {
			node = b.mkNode(lits[i].pred, empty, node)
		}
	}
	return node, true, nil
}

// or computes the union of two diagrams: the resulting terminal action
// sets are the merged action sets of both inputs (§V-D: overlapping rules
// merge into multicast actions). Implication pruning happens here.
//
// The context argument is the interned within-field constraint: the
// conjunction of predicate outcomes taken so far on the field currently
// being tested. Constraints on earlier fields are irrelevant once the
// variable order moves past them, so one field's context suffices (and
// keeps memoization effective).
func (b *builder) or(u, v *Node) *Node {
	return b.orCtx(u, v, noCtx)
}

func (b *builder) orCtx(u, v *Node, ctx int32) *Node {
	if u.IsTerminal() && v.IsTerminal() {
		tk := [2]int32{u.ID, v.ID}
		if u.ID > v.ID {
			tk = [2]int32{v.ID, u.ID}
		}
		if n, ok := b.termMemo[tk]; ok {
			return n
		}
		merged := u.Actions.Clone()
		merged.Merge(v.Actions)
		n := b.terminal(merged)
		b.termMemo[tk] = n
		return n
	}
	p := topPred(u, v)
	if !b.pruning {
		mk := memoKey{u: u.ID, v: v.ID, ctx: noCtx}
		if n, ok := b.memo[mk]; ok {
			return n
		}
		hi := b.orCtx(restrict(u, p, true), restrict(v, p, true), noCtx)
		lo := b.orCtx(restrict(u, p, false), restrict(v, p, false), noCtx)
		result := b.mkNode(p, hi, lo)
		b.memo[mk] = result
		return result
	}

	// Fast-forward every predicate the context already decides
	// (reduction iii) in a tight loop: no memoization or allocation per
	// skipped node. This is what keeps merging O(100k) equality chains
	// (hICN-style workloads) tractable — a pinned field value otherwise
	// walks the whole chain through the memo machinery.
	if ctx == noCtx || b.ctxField[ctx] != p.FieldIdx {
		ctx = b.freshCtx(p)
	}
	for {
		switch b.ctxs[ctx].Implies(p.Rel, p.Const) {
		case match.True:
			u, v = restrict(u, p, true), restrict(v, p, true)
		case match.False:
			u, v = restrict(u, p, false), restrict(v, p, false)
		default:
			mk := memoKey{u: u.ID, v: v.ID, ctx: ctx}
			if n, ok := b.memo[mk]; ok {
				return n
			}
			hi := b.orCtx(restrict(u, p, true), restrict(v, p, true), b.refineCtx(ctx, p, true))
			lo := b.orCtx(restrict(u, p, false), restrict(v, p, false), b.refineCtx(ctx, p, false))
			result := b.mkNode(p, hi, lo)
			b.memo[mk] = result
			return result
		}
		if u.IsTerminal() && v.IsTerminal() {
			return b.orCtx(u, v, ctx) // terminal merge path
		}
		p = topPred(u, v)
		if b.ctxField[ctx] != p.FieldIdx {
			ctx = b.freshCtx(p)
		}
	}
}

// topPred returns the smallest-ordered predicate tested at u or v.
func topPred(u, v *Node) *Pred {
	switch {
	case u.IsTerminal():
		return v.Pred
	case v.IsTerminal():
		return u.Pred
	case v.Pred.Less(u.Pred):
		return v.Pred
	default:
		return u.Pred
	}
}

// restrict specializes a node to a known outcome of predicate p.
func restrict(n *Node, p *Pred, outcome bool) *Node {
	if n.IsTerminal() || n.Pred.ID != p.ID {
		return n
	}
	if outcome {
		return n.Hi
	}
	return n.Lo
}

// Eval walks the diagram for a message, returning the merged action set —
// semantically identical to brute-force rule evaluation, in at most one
// predicate test per node on a single root-to-terminal path.
func (d *BDD) Eval(m *spec.Message, st subscription.StateReader) subscription.ActionSet {
	n := d.Root
	for !n.IsTerminal() {
		if n.Pred.Eval(m, st) {
			n = n.Hi
		} else {
			n = n.Lo
		}
	}
	return n.Actions
}

// Reachable returns all nodes reachable from the root, in a deterministic
// (DFS preorder, hi before lo) order.
func (d *BDD) Reachable() []*Node {
	var out []*Node
	seen := make(map[int32]bool)
	var walk func(n *Node)
	walk = func(n *Node) {
		if seen[n.ID] {
			return
		}
		seen[n.ID] = true
		out = append(out, n)
		if !n.IsTerminal() {
			walk(n.Hi)
			walk(n.Lo)
		}
	}
	walk(d.Root)
	return out
}

// Stats summarizes a BDD for the memory-efficiency evaluation (Fig. 12).
type Stats struct {
	// Nodes is the number of reachable nodes (internal + terminal).
	Nodes int
	// Internal is the number of reachable non-terminal nodes.
	Internal int
	// Terminals is the number of distinct reachable action sets.
	Terminals int
	// PerField maps field key → reachable node count in that component.
	PerField map[string]int
}

// Stats computes reachable-node statistics.
func (d *BDD) Stats() Stats {
	s := Stats{PerField: make(map[string]int)}
	for _, n := range d.Reachable() {
		s.Nodes++
		if n.IsTerminal() {
			s.Terminals++
		} else {
			s.Internal++
			s.PerField[d.Universe.Fields[n.Pred.FieldIdx].Key()]++
		}
	}
	return s
}

// Dot renders the diagram in Graphviz format (solid = true branch,
// dashed = false branch, mirroring the paper's Fig. 5).
func (d *BDD) Dot() string {
	var b strings.Builder
	b.WriteString("digraph bdd {\n  rankdir=TB;\n")
	for _, n := range d.Reachable() {
		if n.IsTerminal() {
			label := n.Actions.Key()
			if n.Actions.IsEmpty() {
				label = "drop"
			}
			fmt.Fprintf(&b, "  n%d [shape=box,label=%q];\n", n.ID, label)
			continue
		}
		fmt.Fprintf(&b, "  n%d [shape=ellipse,label=%q];\n", n.ID, n.Pred.String())
		fmt.Fprintf(&b, "  n%d -> n%d [style=solid];\n", n.ID, n.Hi.ID)
		fmt.Fprintf(&b, "  n%d -> n%d [style=dashed];\n", n.ID, n.Lo.ID)
	}
	b.WriteString("}\n")
	return b.String()
}

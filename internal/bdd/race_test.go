package bdd

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"camus/internal/spec"
	"camus/internal/subscription"
)

// raceSpec mirrors the compiler test spec: two headers so validity
// guards and both field types appear.
const raceSpecSrc = `
header ord_qty {
    shares : u32 @field;
    price : u32 @field;
}
header ord_sym {
    stock : str8 @field_exact;
}
`

func raceRules(t *testing.T, n int, seed int64) []subscription.NormalizedRule {
	t.Helper()
	sp := spec.MustParse("race", raceSpecSrc)
	p := subscription.NewParser(sp)
	r := rand.New(rand.NewSource(seed))
	stocks := []string{"GOOGL", "MSFT", "AAPL", "NFLX"}
	rels := []string{"==", "!=", "<", ">"}
	var normalized []subscription.NormalizedRule
	for i := 0; i < n; i++ {
		var terms []string
		for _, f := range []string{"shares", "price"} {
			if r.Intn(2) == 0 {
				terms = append(terms, fmt.Sprintf("%s %s %d", f, rels[r.Intn(len(rels))], r.Intn(8)))
			}
		}
		if len(terms) == 0 || r.Intn(2) == 0 {
			terms = append(terms, fmt.Sprintf("stock == %s", stocks[r.Intn(len(stocks))]))
		}
		rule, err := p.ParseRule(fmt.Sprintf("%s: fwd(%d)", strings.Join(terms, " and "), r.Intn(4)), i)
		if err != nil {
			t.Fatal(err)
		}
		nrs, err := subscription.NormalizeRule(rule)
		if err != nil {
			t.Fatal(err)
		}
		normalized = append(normalized, nrs...)
	}
	return normalized
}

// TestConcurrentBuildSharedUniverse is the -race stress for the sharded
// unique table and the universe memo caches: several goroutines run
// parallel builds (chain fan-out enabled) against ONE shared Universe,
// so freshCtx/refineCtx/impliesCtx interning races with itself across
// builders while each builder's shards race across its own workers. All
// builds must agree semantically with a sequential baseline.
func TestConcurrentBuildSharedUniverse(t *testing.T) {
	rules := raceRules(t, 120, 17)
	u := NewUniverse(spec.MustParse("race", raceSpecSrc), rules, SpecOrder)

	baseline, err := BuildInUniverse(u, rules, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantNodes := len(baseline.Reachable())

	const goroutines = 6
	var wg sync.WaitGroup
	diagrams := make([]*BDD, goroutines)
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			diagrams[g], errs[g] = BuildInUniverse(u, rules, Options{Parallelism: 4})
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}

	// Structural identity: batch builds are DFS-renumbered, so every
	// diagram must match the sequential baseline node-for-node.
	for g, d := range diagrams {
		if got := len(d.Reachable()); got != wantNodes {
			t.Errorf("goroutine %d: %d reachable nodes, want %d", g, got, wantNodes)
		}
		if d.Root.ID != baseline.Root.ID {
			t.Errorf("goroutine %d: root ID %d, want %d", g, d.Root.ID, baseline.Root.ID)
		}
	}

	// Semantic identity on a message sample.
	sp := u.Spec
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 50; i++ {
		m := spec.NewMessage(sp)
		m.MustSet("shares", spec.IntVal(int64(r.Intn(10))))
		m.MustSet("price", spec.IntVal(int64(r.Intn(10))))
		m.MustSet("stock", spec.StrVal([]string{"GOOGL", "MSFT", "AAPL", "NFLX"}[r.Intn(4)]))
		want := baseline.Eval(m, nil).Key()
		for g, d := range diagrams {
			if got := d.Eval(m, nil).Key(); got != want {
				t.Fatalf("goroutine %d disagrees on %s: %s vs %s", g, m, got, want)
			}
		}
	}
}

// TestConcurrentEngineBuilds races independent incremental engines (each
// with its own universe and builder) under -race: engines share no
// state, so this guards against accidental package-level mutability in
// the arena/memo rework.
func TestConcurrentEngineBuilds(t *testing.T) {
	ruleSets := make([][]subscription.NormalizedRule, 4)
	for g := range ruleSets {
		ruleSets[g] = raceRules(t, 60, int64(g+1))
	}
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(rules []subscription.NormalizedRule) {
			defer wg.Done()
			e := NewEngine(spec.MustParse("race", raceSpecSrc), Options{})
			for i := range rules {
				if err := e.Add(rules[i]); err != nil {
					errc <- err
					return
				}
				if i%4 == 3 {
					e.Remove(rules[i-1].RuleID)
				}
				e.Build()
			}
		}(ruleSets[g])
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

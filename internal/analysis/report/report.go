// Package report defines the diagnostic envelope shared by every Camus
// analysis tool: camus-lint (Go static analyzers), camusc vet (the
// rule-table verifier) and camusc prove (the translation-validation
// prover). One Finding schema means one consumer-side parser for CI
// annotations, regardless of which tool produced the diagnostic.
//
// Exit-code contract (all three tools):
//
//	0 — analysis ran, no findings
//	1 — analysis ran, at least one finding (any severity)
//	2 — the tool could not run: usage error, unreadable input,
//	    or a failed package load
//
// Machine consumers should parse the JSON report on exit codes 0 and 1
// and treat exit 2 as infrastructure failure.
package report

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Kind classifies a finding within its tool's vocabulary (for example
// "unsatisfiable" from camusc vet, "missing-action" from camusc prove,
// or an analyzer name from camus-lint).
type Kind string

// Severity grades a finding.
type Severity string

const (
	SevError   Severity = "error"
	SevWarning Severity = "warning"
)

// Counterexample is a concrete witness packet attached to a prover
// finding: a full field assignment plus, for stateless filters, the
// serialized wire bytes that replay the divergence on pipeline.Switch.
type Counterexample struct {
	// Headers are the present headers, in spec order.
	Headers []string `json:"headers,omitempty"`
	// Fields maps qualified field names to value literals.
	Fields map[string]string `json:"fields,omitempty"`
	// State maps aggregate keys to register values (stateful filters).
	State map[string]int64 `json:"state,omitempty"`
	// Packet is the hex-encoded wire serialization (internal/packet) of
	// the witness; empty when the divergence needs aggregate state.
	Packet string `json:"packet,omitempty"`
	// Want is the action set demanded by the independent AST semantics;
	// Got is what the compiled program produces.
	Want string `json:"want,omitempty"`
	Got  string `json:"got,omitempty"`
	// Confirmed reports that the witness was replayed end-to-end through
	// pipeline.Switch and reproduced the divergence.
	Confirmed bool `json:"confirmed,omitempty"`
}

// Finding is one diagnostic, serializable as JSON.
type Finding struct {
	// Tool names the producer: "camus-lint", "camusc-vet", "camusc-prove".
	Tool string `json:"tool,omitempty"`
	File string `json:"file"`
	Line int    `json:"line,omitempty"`
	// RuleID is the subscription rule the finding is about, or -1 for
	// table-level and Go-source findings.
	RuleID   int      `json:"rule"`
	Kind     Kind     `json:"kind"`
	Severity Severity `json:"severity"`
	Message  string   `json:"message"`
	// RuleText is the offending rule, pretty-printed.
	RuleText string `json:"rule_text,omitempty"`
	// Related lists the other rule IDs involved (the shadowing cover,
	// the conflicting partner, the rules justifying a leaf action).
	Related []int `json:"related,omitempty"`
	// Counterexample is the prover's concrete witness, if any.
	Counterexample *Counterexample `json:"counterexample,omitempty"`
}

func (f Finding) String() string {
	loc := f.File
	if f.Line > 0 {
		loc = fmt.Sprintf("%s:%d", f.File, f.Line)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s: %s", loc, f.Severity, f.Message)
	if len(f.Related) > 0 {
		ids := make([]string, len(f.Related))
		for i, id := range f.Related {
			ids[i] = "#" + strconv.Itoa(id)
		}
		fmt.Fprintf(&b, " (see rule %s)", strings.Join(ids, ", "))
	}
	if cex := f.Counterexample; cex != nil {
		fmt.Fprintf(&b, "\n    counterexample: %s", cex)
	}
	return b.String()
}

func (c *Counterexample) String() string {
	var b strings.Builder
	if len(c.Headers) > 0 {
		fmt.Fprintf(&b, "headers=%v ", c.Headers)
	}
	if len(c.Fields) > 0 {
		keys := make([]string, 0, len(c.Fields))
		for k := range c.Fields {
			keys = append(keys, k)
		}
		sortStrings(keys)
		b.WriteString("{")
		for i, k := range keys {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s=%s", k, c.Fields[k])
		}
		b.WriteString("} ")
	}
	if len(c.State) > 0 {
		keys := make([]string, 0, len(c.State))
		for k := range c.State {
			keys = append(keys, k)
		}
		sortStrings(keys)
		b.WriteString("state{")
		for i, k := range keys {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s=%d", k, c.State[k])
		}
		b.WriteString("} ")
	}
	fmt.Fprintf(&b, "want %s, got %s", c.Want, c.Got)
	if c.Confirmed {
		b.WriteString(" (confirmed on pipeline.Switch)")
	}
	return b.String()
}

// Report is the result of one tool run over one target (a rule file
// for camusc vet/prove, the package pattern for camus-lint).
type Report struct {
	Tool string `json:"tool,omitempty"`
	File string `json:"file"`
	// Rules counts the parsed subscription rules (0 for camus-lint).
	Rules    int       `json:"rules"`
	Findings []Finding `json:"findings"`
}

// HasErrors reports whether any finding is error-severity.
func (r *Report) HasErrors() bool {
	for _, f := range r.Findings {
		if f.Severity == SevError {
			return true
		}
	}
	return false
}

// JSON renders the report as indented JSON (findings is never null).
func (r *Report) JSON() string {
	cp := *r
	if cp.Findings == nil {
		cp.Findings = []Finding{}
	}
	out, err := json.MarshalIndent(&cp, "", "  ")
	if err != nil {
		return fmt.Sprintf(`{"file":%q,"error":%q}`, r.File, err)
	}
	return string(out)
}

// String renders the human-readable report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d rules, %d findings\n", r.File, r.Rules, len(r.Findings))
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	return b.String()
}

// sortStrings is a tiny insertion sort; envelope maps are small and this
// keeps the package dependency-free.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

package analysis

import "camus/internal/analysis/report"

// Tool is camus-lint's name in the shared report envelope.
const Tool = "camus-lint"

// ToReport converts analyzer diagnostics into the diagnostic envelope
// shared with camusc vet and camusc prove (internal/analysis/report):
// the analyzer name becomes the finding kind, and Go-source findings
// carry no rule ID (-1).
func ToReport(target string, diags []Diagnostic) *report.Report {
	rep := &report.Report{Tool: Tool, File: target}
	for _, d := range diags {
		rep.Findings = append(rep.Findings, report.Finding{
			Tool: Tool, File: d.File, Line: d.Line, RuleID: -1,
			Kind: report.Kind(d.Analyzer), Severity: report.SevError,
			Message: d.Message,
		})
	}
	return rep
}

package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded package: parsed syntax plus type information.
type Package struct {
	// ImportPath is go list's import path, including any test-variant
	// suffix ("pkg [pkg.test]" for a package augmented with its
	// in-package _test.go files).
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string

	Fset   *token.FileSet
	Syntax []*ast.File
	Types  *types.Package
	Info   *types.Info

	// IllTyped is set when parsing or type-checking failed; Errs holds
	// the reasons. Analyzers are not run on ill-typed packages.
	IllTyped bool
	Errs     []error
}

// LoadConfig tunes Load.
type LoadConfig struct {
	// Tests includes each package's test files: the in-package test
	// variant ("pkg [pkg.test]") and the external test package
	// ("pkg_test [pkg.test]") are loaded in addition to the plain
	// package.
	Tests bool
	// Dir is the working directory for the go tool (defaults to the
	// current directory).
	Dir string
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Export     string
	Standard   bool
	DepOnly    bool
	ForTest    string
	Error      *struct{ Err string }
}

// Load lists the packages matching patterns with `go list -export`,
// parses their sources, and type-checks them against the export data of
// their dependencies (produced by the toolchain into the build cache,
// so loading works fully offline).
//
// Patterns follow the go tool: "./...", explicit directories (including
// directories under testdata, which wildcards skip), or import paths.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	byPath, roots, err := goList(cfg, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var out []*Package
	for _, lp := range roots {
		out = append(out, typeCheck(fset, lp, byPath))
	}
	return out, nil
}

// goList shells out to `go list` and returns every listed package by
// import path plus the root (non-dep) packages in listing order.
func goList(cfg LoadConfig, patterns []string) (map[string]*listPkg, []*listPkg, error) {
	args := []string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,CgoFiles,Imports,ImportMap,Export,Standard,DepOnly,ForTest,Error"}
	if cfg.Tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	byPath := make(map[string]*listPkg)
	var roots []*listPkg
	dec := json.NewDecoder(bytes.NewReader(stdout))
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list output: %v", err)
		}
		byPath[lp.ImportPath] = lp
		if lp.DepOnly || lp.Standard {
			continue
		}
		// Skip the synthesized test-main package ("pkg.test"): its
		// sources are generated and of no analysis interest.
		if strings.HasSuffix(lp.ImportPath, ".test") && lp.ForTest == "" {
			continue
		}
		if lp.Name == "" || len(lp.GoFiles) == 0 {
			continue
		}
		roots = append(roots, lp)
	}
	return byPath, roots, nil
}

// typeCheck parses and type-checks one listed package from source. The
// importer resolves every dependency through its export data, honoring
// go list's ImportMap (which redirects imports of a package under test
// to its test-augmented variant).
func typeCheck(fset *token.FileSet, lp *listPkg, byPath map[string]*listPkg) *Package {
	pkg := &Package{
		ImportPath: lp.ImportPath,
		Name:       lp.Name,
		Dir:        lp.Dir,
		Fset:       fset,
	}
	if lp.Error != nil {
		pkg.IllTyped = true
		pkg.Errs = append(pkg.Errs, fmt.Errorf("%s", lp.Error.Err))
		return pkg
	}
	if len(lp.CgoFiles) > 0 {
		pkg.IllTyped = true
		pkg.Errs = append(pkg.Errs, fmt.Errorf("%s: cgo packages are not supported", lp.ImportPath))
		return pkg
	}
	for _, f := range lp.GoFiles {
		path := f
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, f)
		}
		pkg.GoFiles = append(pkg.GoFiles, path)
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			pkg.IllTyped = true
			pkg.Errs = append(pkg.Errs, err)
			continue
		}
		pkg.Syntax = append(pkg.Syntax, file)
	}
	if pkg.IllTyped {
		return pkg
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := lp.ImportMap[path]; ok {
			path = mapped
		}
		dep := byPath[path]
		if dep == nil || dep.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(dep.Export)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		// A fresh importer per package: lookup results depend on the
		// package's ImportMap, so the importer cache must not be shared
		// across packages.
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error: func(err error) {
			pkg.IllTyped = true
			pkg.Errs = append(pkg.Errs, err)
		},
	}
	tpkg, err := conf.Check(basePkgPath(lp.ImportPath), fset, pkg.Syntax, pkg.Info)
	if err != nil && len(pkg.Errs) == 0 {
		pkg.IllTyped = true
		pkg.Errs = append(pkg.Errs, err)
	}
	pkg.Types = tpkg
	return pkg
}

package fitcheck_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"camus/internal/analysis/fitcheck"
	"camus/internal/analysis/report"
	"camus/internal/bdd"
	"camus/internal/compiler"
	"camus/internal/match"
	"camus/internal/spec"
	"camus/internal/subscription"
)

var update = flag.Bool("update", false, "rewrite golden files")

const testSpecSrc = `
header ord_qty {
    shares : u32 @field;
    price : u32 @field;
}
header ord_sym {
    stock : str8 @field_exact;
    name : str16 @field;
}
`

func testSpec(t testing.TB) *spec.Spec {
	t.Helper()
	return spec.MustParse("test", testSpecSrc)
}

func compileRules(t testing.TB, sp *spec.Spec, src string, opts compiler.Options) *compiler.Program {
	t.Helper()
	rules, err := subscription.NewParser(sp).ParseRules(src)
	if err != nil {
		t.Fatalf("ParseRules: %v", err)
	}
	p, err := compiler.Compile(sp, rules, opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return p
}

// corpusCase is one known-bad corpus file: a base rule set, a pipeline
// budget, and the mutations that overflow exactly one fit dimension.
type corpusCase struct {
	Budget             fitcheck.Budget     `json:"budget"`
	Rules              string              `json:"rules"`
	LastHop            bool                `json:"last_hop"`
	DisableCompression bool                `json:"disable_compression"`
	Mutations          []fitcheck.Mutation `json:"mutations"`
}

func loadCorpus(t *testing.T, path string) corpusCase {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read corpus: %v", err)
	}
	var c corpusCase
	if err := json.Unmarshal(raw, &c); err != nil {
		t.Fatalf("parse corpus %s: %v", path, err)
	}
	return c
}

func (c corpusCase) compile(t *testing.T) *compiler.Program {
	t.Helper()
	return compileRules(t, testSpec(t), c.Rules, compiler.Options{
		LastHop:            c.LastHop,
		DisableCompression: c.DisableCompression,
	})
}

// TestCorpusGoldens: every seeded overflow program yields exactly the
// golden findings; the unmutated base program is clean under the same
// budget (so the mutation, not the base, is what overflows).
func TestCorpusGoldens(t *testing.T) {
	files, err := filepath.Glob("testdata/corpus/*.json")
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}
	for _, file := range files {
		name := strings.TrimSuffix(filepath.Base(file), ".json")
		t.Run(name, func(t *testing.T) {
			c := loadCorpus(t, file)

			base := c.compile(t)
			if l := fitcheck.Analyze(base, fitcheck.Options{Budget: c.Budget, File: name}); !l.Fits() || len(l.Findings) != 0 {
				t.Fatalf("base program not clean under corpus budget: %+v", l.Findings)
			}

			p := c.compile(t)
			for _, m := range c.Mutations {
				if err := m.Apply(p); err != nil {
					t.Fatalf("apply %+v: %v", m, err)
				}
			}
			l := fitcheck.Analyze(p, fitcheck.Options{Budget: c.Budget, File: name})
			rep := report.Report{Tool: fitcheck.Tool, File: name, Findings: l.Findings}
			got := rep.JSON() + "\n"

			golden := strings.TrimSuffix(file, ".json") + ".golden"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatalf("write golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("golden mismatch for %s:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
			}
		})
	}
}

// TestSeededFindingsDetected: each corpus entry is named after the fit
// dimension it overflows; the analyzer must report that kind.
func TestSeededFindingsDetected(t *testing.T) {
	kinds := map[string]report.Kind{
		"stage-sram":    fitcheck.KindSRAM,
		"stage-tcam":    fitcheck.KindTCAM,
		"key-width":     fitcheck.KindKeyWidth,
		"mcast":         fitcheck.KindMcast,
		"registers":     fitcheck.KindRegs,
		"stages":        fitcheck.KindStages,
		"recirculation": fitcheck.KindRecirc,
	}
	files, _ := filepath.Glob("testdata/corpus/*.json")
	if len(files) != len(kinds) {
		t.Fatalf("corpus has %d entries, want one per dimension (%d)", len(files), len(kinds))
	}
	for _, file := range files {
		name := strings.TrimSuffix(filepath.Base(file), ".json")
		t.Run(name, func(t *testing.T) {
			want, ok := kinds[name]
			if !ok {
				t.Fatalf("corpus entry %q does not name a fit dimension", name)
			}
			c := loadCorpus(t, file)
			p := c.compile(t)
			for _, m := range c.Mutations {
				if err := m.Apply(p); err != nil {
					t.Fatalf("apply: %v", err)
				}
			}
			l := fitcheck.Analyze(p, fitcheck.Options{Budget: c.Budget, File: name})
			found := false
			for _, f := range l.Findings {
				if f.Kind == want {
					found = true
				}
			}
			if !found {
				t.Errorf("seeded %s overflow not detected; findings: %+v", want, l.Findings)
			}
			if want == fitcheck.KindRecirc {
				if !l.Fits() {
					t.Errorf("recirculation corpus must still fit (warning only); findings: %+v", l.Findings)
				}
			} else if l.Fits() {
				t.Errorf("seeded %s overflow still reports Fits()", want)
			}
		})
	}
}

// TestShippedRulesClean: the shipped itch workload certifies clean
// under the default Tofino-class budget — the `camusc fit` acceptance
// baseline.
func TestShippedRulesClean(t *testing.T) {
	specSrc, err := os.ReadFile("../../../cmd/camusc/testdata/itch.spec")
	if err != nil {
		t.Fatalf("read itch.spec: %v", err)
	}
	rulesSrc, err := os.ReadFile("../../../cmd/camusc/testdata/itch.rules")
	if err != nil {
		t.Fatalf("read itch.rules: %v", err)
	}
	sp, err := spec.Parse("itch.spec", string(specSrc))
	if err != nil {
		t.Fatalf("parse spec: %v", err)
	}
	p := compileRules(t, sp, string(rulesSrc), compiler.Options{LastHop: true})
	l := fitcheck.Analyze(p, fitcheck.Options{File: "itch.rules"})
	if len(l.Findings) != 0 {
		t.Fatalf("itch.rules must certify clean: %+v", l.Findings)
	}
	if l.Passes != 1 {
		t.Errorf("itch.rules needs %d passes, want 1", l.Passes)
	}
	if h := l.MinHeadroom(); h <= 0 {
		t.Errorf("itch.rules min headroom %d, want > 0", h)
	}
}

// cloneWorst appends n copies of table idx's worst-case entry — the
// exact increment MaxEntryCost charges — to the real program. Only
// exact, ternary, and leaf tables admit a faithful worst-case clone
// (a compressed add may or may not mint a value-map range).
func cloneWorst(t *testing.T, p *compiler.Program, l *fitcheck.Layout, idx, n int) bool {
	t.Helper()
	tf := l.Tables[idx]
	if tf.Kind == "leaf" {
		for i := 0; i < n; i++ {
			p.Leaf = append(p.Leaf, &compiler.LeafEntry{In: compiler.StateID(1<<20 + i), Group: -1})
		}
		return true
	}
	var tab *compiler.Table
	for _, st := range p.Stages {
		if st.Name() == tf.Name {
			tab = st
		}
	}
	if tab == nil {
		t.Fatalf("no stage %q", tf.Name)
	}
	switch tf.Kind {
	case "exact":
		in := compiler.StateID(0)
		if len(tab.Entries) > 0 {
			in = tab.Entries[0].In
		}
		for i := 0; i < n; i++ {
			tab.Entries = append(tab.Entries, &compiler.Entry{
				In: in, Match: &match.IntConstraint{Lo: int64(2e9 + i), Hi: int64(2e9 + i)}, Out: in,
			})
		}
		return true
	case "ternary":
		_, bits := tableBits(tab)
		var worst *compiler.Entry
		worstN := 0
		for _, e := range tab.Entries {
			if c := e.Match.TCAMEntries(bits); worst == nil || c > worstN {
				worst, worstN = e, c
			}
		}
		if worst == nil {
			return false // empty ternary: MaxEntryCost's 1-row charge needs no clone source
		}
		for i := 0; i < n; i++ {
			tab.Entries = append(tab.Entries, &compiler.Entry{In: worst.In, Match: worst.Match, Out: worst.Out})
		}
		return true
	}
	return false
}

func tableBits(t *compiler.Table) (int, int) {
	fieldBytes := 4
	switch t.Field.Ref.Kind {
	case subscription.PacketRef:
		fieldBytes = t.Field.Ref.Field.Bytes()
	case subscription.ValidityRef:
		fieldBytes = 1
	}
	bits := fieldBytes * 8
	if t.Field.Ref.Kind == subscription.PacketRef {
		bits = t.Field.Ref.Field.Bits
	}
	return fieldBytes, bits
}

// checkHeadroomSound asserts the soundness property on one program:
// for every table, adding headroom worst-case entries keeps the fit
// verdict, and adding headroom+1 breaks it.
func checkHeadroomSound(t *testing.T, mk func() *compiler.Program, b fitcheck.Budget) {
	t.Helper()
	l := fitcheck.Analyze(mk(), fitcheck.Options{Budget: b})
	if !l.Fits() {
		t.Fatal("soundness base program must fit")
	}
	for idx, tf := range l.Tables {
		h := tf.Headroom
		if h > 100000 {
			continue // effectively unbounded; +1 is not realizable
		}
		at := func(n int) *fitcheck.Layout {
			p := mk()
			if !cloneWorst(t, p, l, idx, n) {
				return nil
			}
			return fitcheck.Analyze(p, fitcheck.Options{Budget: b, SkipHeadroom: true})
		}
		if la := at(h); la != nil && !la.Fits() {
			t.Errorf("table %s: adding headroom=%d entries flipped the verdict: %+v", tf.Name, h, la.Findings)
		}
		if la := at(h + 1); la != nil && la.Fits() {
			t.Errorf("table %s: adding headroom+1=%d entries did not flip the verdict", tf.Name, h+1)
		}
	}
}

// TestHeadroomSoundnessCompiled: the property holds on a real compiled
// program under a tight budget.
func TestHeadroomSoundnessCompiled(t *testing.T) {
	b := fitcheck.Budget{
		Stages: 6, StageSRAMBytes: 4096, StageTCAMBytes: 1024,
		StageKeyBits: 512, MaxTableSplit: 3,
		MulticastGroups: 8, Registers: 4, RecircPasses: 1,
	}
	mk := func() *compiler.Program {
		return compileRules(t, testSpec(t),
			"shares < 100 and stock == GOOGL: fwd(1)\nprice > 10 and price < 90: fwd(2)",
			compiler.Options{DisableCompression: true})
	}
	checkHeadroomSound(t, mk, b)
}

// synthProgram builds a random program of exact/ternary tables plus a
// leaf, directly from the exported compiler structs.
func synthProgram(rng *rand.Rand) *compiler.Program {
	sp := spec.MustParse("synth", testSpecSrc)
	nTables := 1 + rng.Intn(4)
	p := &compiler.Program{Spec: sp}
	for i := 0; i < nTables; i++ {
		f := &spec.Field{Header: "h", Name: fmt.Sprintf("f%d", i), Type: spec.IntField, Bits: 32}
		tab := &compiler.Table{
			Field:    &bdd.FieldVar{Ref: subscription.FieldRef{Kind: subscription.PacketRef, Field: f}},
			Defaults: map[compiler.StateID]compiler.StateID{},
		}
		if rng.Intn(2) == 0 {
			tab.Kind = compiler.ExactTable
			for j := 0; j < rng.Intn(200); j++ {
				tab.Entries = append(tab.Entries, &compiler.Entry{
					In: 1, Match: &match.IntConstraint{Lo: int64(j), Hi: int64(j)}, Out: 2,
				})
			}
		} else {
			tab.Kind = compiler.TernaryTable
			for j := 0; j < rng.Intn(12); j++ {
				lo := rng.Int63n(1000)
				tab.Entries = append(tab.Entries, &compiler.Entry{
					In: 1, Match: &match.IntConstraint{Lo: lo, Hi: lo + rng.Int63n(1<<20)}, Out: 2,
				})
			}
		}
		p.Stages = append(p.Stages, tab)
	}
	for j := 0; j < rng.Intn(300); j++ {
		p.Leaf = append(p.Leaf, &compiler.LeafEntry{In: compiler.StateID(j), Group: -1})
	}
	return p
}

// TestHeadroomSoundnessSynth: the property holds across randomly
// synthesized tables and randomly tightened budgets.
func TestHeadroomSoundnessSynth(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		seed := rng.Int63()
		b := fitcheck.Budget{
			Stages:          2 + rng.Intn(6),
			StageSRAMBytes:  512 + rng.Intn(8192),
			StageTCAMBytes:  256 + rng.Intn(4096),
			StageKeyBits:    512,
			MaxTableSplit:   1 + rng.Intn(4),
			MulticastGroups: 8,
			Registers:       4,
			RecircPasses:    rng.Intn(2),
		}
		mk := func() *compiler.Program { return synthProgram(rand.New(rand.NewSource(seed))) }
		l := fitcheck.Analyze(mk(), fitcheck.Options{Budget: b})
		if !l.Fits() {
			continue // property is about fitting programs; overflowing ones pin headroom to 0
		}
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			checkHeadroomSound(t, mk, b)
		})
	}
}

// TestZeroHeadroomOnOverflow: a program that already overflows reports
// zero headroom everywhere.
func TestZeroHeadroomOnOverflow(t *testing.T) {
	c := loadCorpus(t, "testdata/corpus/stage-sram.json")
	p := c.compile(t)
	for _, m := range c.Mutations {
		if err := m.Apply(p); err != nil {
			t.Fatal(err)
		}
	}
	l := fitcheck.Analyze(p, fitcheck.Options{Budget: c.Budget})
	if l.Fits() {
		t.Fatal("corpus program must overflow")
	}
	for _, tf := range l.Tables {
		if tf.Headroom != 0 {
			t.Errorf("table %s: headroom %d on an overflowing program, want 0", tf.Name, tf.Headroom)
		}
	}
}

// TestModelAdmit: the admission oracle admits deltas within headroom,
// rejects beyond it, and caches layouts per program pointer.
func TestModelAdmit(t *testing.T) {
	b := fitcheck.Budget{
		Stages: 6, StageSRAMBytes: 4096, StageTCAMBytes: 1024,
		StageKeyBits: 512, MaxTableSplit: 3,
		MulticastGroups: 8, Registers: 4, RecircPasses: 1,
	}
	m := fitcheck.NewModelWith(b)
	p := compileRules(t, testSpec(t), "shares < 100 and stock == GOOGL: fwd(1)", compiler.Options{})

	if err := m.Admit(nil, 1000); err != nil {
		t.Fatalf("nil program must admit: %v", err)
	}
	if err := m.Admit(p, 1); err != nil {
		t.Fatalf("small delta rejected: %v", err)
	}
	h := m.Layout(p).MinHeadroom()
	if h <= 0 {
		t.Fatalf("headroom %d, want > 0", h)
	}
	if err := m.Admit(p, h+1); err == nil {
		t.Fatal("oversized delta admitted")
	} else if !strings.Contains(err.Error(), "headroom") {
		t.Fatalf("unexpected error: %v", err)
	}
	if m.Layout(p) != m.Layout(p) {
		t.Error("layout not cached per program pointer")
	}

	// An already-overflowing installed program rejects any delta.
	c := loadCorpus(t, "testdata/corpus/stage-sram.json")
	bad := c.compile(t)
	for _, mu := range c.Mutations {
		if err := mu.Apply(bad); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Admit(bad, 0); err == nil {
		t.Fatal("overflowing program admitted a delta")
	}
}

// TestEntryEstimate: the static per-filter bound counts atoms across
// the boolean structure plus guard and leaf.
func TestEntryEstimate(t *testing.T) {
	sp := testSpec(t)
	e, err := subscription.NewParser(sp).ParseFilter("shares < 100 and (stock == GOOGL or stock == MSFT)")
	if err != nil {
		t.Fatal(err)
	}
	if got := fitcheck.EntryEstimate(e); got != 5 {
		t.Errorf("EntryEstimate = %d, want 5 (3 atoms + guard + leaf)", got)
	}
}

package fitcheck

import (
	"errors"
	"fmt"
	"sync"

	"camus/internal/compiler"
	"camus/internal/subscription"
)

// ErrNoHeadroom is the sentinel wrapped by Model.Admit when a delta
// does not fit: either the installed program already overflows, or the
// tightest table lacks the headroom the delta needs.
var ErrNoHeadroom = errors.New("insufficient pipeline headroom")

// Model is a concurrency-safe admission oracle over fitcheck layouts.
// It caches the layout per *compiler.Program (programs are immutable
// once installed — the incremental compiler always produces a new
// Program value), so repeated Admit/Layout calls against an unchanged
// switch are map lookups.
type Model struct {
	budget Budget

	mu    sync.Mutex
	cache map[*compiler.Program]*Layout
}

// NewModel returns a Model over DefaultBudget.
func NewModel() *Model { return NewModelWith(DefaultBudget()) }

// NewModelWith returns a Model over the given budget.
func NewModelWith(b Budget) *Model {
	if b.Stages == 0 {
		b = DefaultBudget()
	}
	return &Model{budget: b, cache: make(map[*compiler.Program]*Layout)}
}

// Budget returns the pipeline model in force.
func (m *Model) Budget() Budget { return m.budget }

// Layout returns the (cached) placement of prog. A nil prog — a switch
// with nothing installed yet — returns nil.
func (m *Model) Layout(prog *compiler.Program) *Layout {
	if prog == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if l, ok := m.cache[prog]; ok {
		return l
	}
	// Cap the cache: layouts are small but programs churn. One live
	// program per switch is the steady state; flush on excess.
	if len(m.cache) > 1024 {
		m.cache = make(map[*compiler.Program]*Layout)
	}
	l := Analyze(prog, Options{Budget: m.budget})
	m.cache[prog] = l
	return l
}

// Admit reports whether adding extraEntries worst-case entries on top
// of prog still fits the pipeline. nil error = admitted. A nil prog
// admits anything that fits an empty pipe (it does, by construction).
func (m *Model) Admit(prog *compiler.Program, extraEntries int) error {
	if prog == nil {
		return nil
	}
	l := m.Layout(prog)
	if !l.Fits() {
		return fmt.Errorf("%w: installed program already overflows (%s)",
			ErrNoHeadroom, firstError(l))
	}
	if h := l.MinHeadroom(); h < extraEntries {
		return fmt.Errorf("%w: delta needs %d entries, tightest table has headroom %d",
			ErrNoHeadroom, extraEntries, h)
	}
	return nil
}

func firstError(l *Layout) string {
	for _, f := range l.Findings {
		if f.Severity == "error" {
			return string(f.Kind)
		}
	}
	return "overflow"
}

// EntryEstimate conservatively bounds the table entries one new filter
// can add to a switch: one entry per atom in the expression (each atom
// lands at most one row in its field's stage table, counting every
// Or-branch), plus a validity-guard entry and the leaf row. It
// deliberately over-counts — admission must reject before compiling,
// so it can only see the expression, not the BDD sharing.
func EntryEstimate(expr subscription.Expr) int {
	return countAtoms(expr) + 2
}

func countAtoms(e subscription.Expr) int {
	switch e := e.(type) {
	case *subscription.Atom:
		return 1
	case *subscription.And:
		n := 0
		for _, t := range e.Terms {
			n += countAtoms(t)
		}
		return n
	case *subscription.Or:
		n := 0
		for _, t := range e.Terms {
			n += countAtoms(t)
		}
		return n
	case *subscription.Not:
		return countAtoms(e.Term)
	default:
		return 0
	}
}

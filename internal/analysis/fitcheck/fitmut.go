package fitcheck

import (
	"fmt"

	"camus/internal/bdd"
	"camus/internal/compiler"
	"camus/internal/match"
	"camus/internal/spec"
	"camus/internal/subscription"
)

// Mutation is one named capacity inflation for the known-bad corpus, in
// the style of internal/analysis/corrupt: a deterministic, in-place
// edit of a correctly compiled program that overflows one fit dimension
// without touching the others. JSON-encodable for corpus files.
type Mutation struct {
	// Op selects the inflation:
	//
	//	inflate-exact    — append N synthetic exact entries to stage Stage
	//	inflate-ternary  — append N worst-case range entries to stage Stage
	//	inflate-leaf     — append N leaf rows
	//	add-groups       — allocate N extra multicast groups
	//	widen-field      — grow stage Stage's field to N bits
	//	add-aggregates   — mint N synthetic aggregate windows
	Op string `json:"op"`
	// Stage indexes into Program.Stages; Field, when set, selects the
	// stage by its field key instead (robust to stage reordering — the
	// adaptive-corpus idiom of internal/analysis/prove).
	Stage int    `json:"stage,omitempty"`
	Field string `json:"field,omitempty"`
	// N is the inflation count (entries, groups, bits, windows).
	N int `json:"n,omitempty"`
}

// stage resolves the target stage table.
func (m Mutation) stage(p *compiler.Program) (*compiler.Table, error) {
	if m.Field != "" {
		for _, t := range p.Stages {
			if t.Name() == m.Field {
				return t, nil
			}
		}
		return nil, fmt.Errorf("fitmut: no stage for field %q", m.Field)
	}
	if m.Stage < 0 || m.Stage >= len(p.Stages) {
		return nil, fmt.Errorf("fitmut: no stage %d", m.Stage)
	}
	return p.Stages[m.Stage], nil
}

// Apply performs the mutation on the program in place. The program
// stays structurally consistent (entries carry real in-states) but is
// no longer behaviorally meaningful — fitmut programs are for the
// layout analyzer only, never the runtime.
func (m Mutation) Apply(p *compiler.Program) error {
	switch m.Op {
	case "inflate-exact", "inflate-ternary":
		t, err := m.stage(p)
		if err != nil {
			return err
		}
		in := compiler.StateID(0)
		if len(t.Entries) > 0 {
			in = t.Entries[0].In
		}
		_, bits := widthOf(t)
		for i := 0; i < m.N; i++ {
			var c match.Constraint
			if m.Op == "inflate-exact" {
				c = &match.IntConstraint{Lo: int64(1e9 + i), Hi: int64(1e9 + i)}
			} else {
				// A [1, 2^bits-2] range expands to the worst-case prefix
				// count for the field width.
				hi := int64(1)<<uint(bits) - 2
				if bits > 62 {
					hi = 1<<62 - 2
				}
				c = &match.IntConstraint{Lo: 1, Hi: hi}
			}
			t.Entries = append(t.Entries, &compiler.Entry{In: in, Match: c, Out: in})
		}
	case "inflate-leaf":
		next := compiler.StateID(1 << 20)
		for i := 0; i < m.N; i++ {
			p.Leaf = append(p.Leaf, &compiler.LeafEntry{In: next + compiler.StateID(i), Group: -1})
		}
	case "add-groups":
		base := len(p.Groups)
		for i := 0; i < m.N; i++ {
			p.Groups = append(p.Groups, compiler.MulticastGroup{ID: base + i, Ports: []int{1, 2}})
		}
	case "widen-field":
		t, err := m.stage(p)
		if err != nil {
			return err
		}
		f := t.Field.Ref.Field
		if f == nil {
			return fmt.Errorf("fitmut: stage %q has no packet field", t.Name())
		}
		f.Bits = m.N
	case "add-aggregates":
		if p.BDD == nil {
			return fmt.Errorf("fitmut: program has no BDD universe")
		}
		for i := 0; i < m.N; i++ {
			p.BDD.Universe.Fields = append(p.BDD.Universe.Fields, &bdd.FieldVar{
				Ref: subscription.FieldRef{
					Kind: subscription.AggregateRef,
					Agg:  spec.AggCount,
					Var:  fmt.Sprintf("fitmut%d", i),
				},
			})
		}
	default:
		return fmt.Errorf("fitmut: unknown op %q", m.Op)
	}
	return nil
}

// widthOf mirrors the cost model's field sizing for mutation targets.
func widthOf(t *compiler.Table) (fieldBytes, bits int) {
	fieldBytes = 4
	switch t.Field.Ref.Kind {
	case subscription.PacketRef:
		fieldBytes = t.Field.Ref.Field.Bytes()
	case subscription.ValidityRef:
		fieldBytes = 1
	}
	bits = fieldBytes * 8
	if t.Field.Ref.Kind == subscription.PacketRef {
		bits = t.Field.Ref.Field.Bits
	}
	return fieldBytes, bits
}

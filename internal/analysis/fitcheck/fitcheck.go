// Package fitcheck is the static pipeline-layout analyzer: it takes a
// compiled program and computes an actual stage placement — a
// dependency-respecting packing of the field tables and the leaf/action
// stage into the modeled pipeline — under per-stage SRAM/TCAM/key-width
// budgets, with recirculation passes when the chain cannot fit in one
// pipe. It is the fourth leg of the analysis suite: rulecheck proves the
// rules sane, prove/netcheck prove translation and delivery correct,
// fitcheck proves the program *deployable*.
//
// The program's stage tables form a strict dependency chain (every
// table matches on the previous table's output state), so placement is
// sequential: tables never share a stage, and a table whose footprint
// exceeds one stage's memory is split across consecutive stages (the
// classic done-bit split), up to Budget.MaxTableSplit stages. When the
// chain needs more stage slots than one pass provides, additional
// recirculation passes are modeled, each costing a full pipe traversal.
//
// Verdicts are reported per dimension as report.Findings:
//
//	fit-stages         chain cannot fit even with every recirculation pass (error)
//	fit-recirculation  chain fits but needs ≥1 recirculation pass (warning)
//	fit-stage-sram     one table's SRAM cannot split into MaxTableSplit stages (error)
//	fit-stage-tcam     one table's TCAM cannot split into MaxTableSplit stages (error)
//	fit-key-width      a match key exceeds the stage crossbar width (error)
//	fit-mcast          multicast groups exceed the replication table (error)
//	fit-registers      aggregate windows exceed the stateful ALUs (error)
//
// Beyond the verdict, the layout carries a headroom prediction per
// table: how many worst-case entries can still be added before the
// placement stops fitting. The control plane uses that number for
// admission (Model.Admit) so an oversized delta is rejected before
// compile/install.
package fitcheck

import (
	"fmt"

	"camus/internal/analysis/report"
	"camus/internal/compiler"
)

// Tool is the tool name stamped on findings.
const Tool = "camusc-fit"

// Finding kinds, one per fit dimension.
const (
	KindStages   report.Kind = "fit-stages"
	KindRecirc   report.Kind = "fit-recirculation"
	KindSRAM     report.Kind = "fit-stage-sram"
	KindTCAM     report.Kind = "fit-stage-tcam"
	KindKeyWidth report.Kind = "fit-key-width"
	KindMcast    report.Kind = "fit-mcast"
	KindRegs     report.Kind = "fit-registers"
)

// Budget is the per-stage pipeline model fitcheck packs into. The zero
// value is invalid; start from DefaultBudget.
type Budget struct {
	// Stages is the number of match-action stages per pass.
	Stages int `json:"stages"`
	// StageSRAMBytes / StageTCAMBytes are the memory blocks one stage
	// owns. The whole-switch budgets are banked evenly across stages:
	// a stage cannot borrow another stage's memory.
	StageSRAMBytes int `json:"stage_sram_bytes"`
	StageTCAMBytes int `json:"stage_tcam_bytes"`
	// StageKeyBits is the match-key crossbar width per stage. A table
	// whose key exceeds it cannot be placed at all (splitting widens
	// entries, not keys).
	StageKeyBits int `json:"stage_key_bits"`
	// MaxTableSplit is the maximum consecutive stages one logical
	// table may span via done-bit splitting.
	MaxTableSplit int `json:"max_table_split"`
	// MulticastGroups / Registers are whole-switch counts.
	MulticastGroups int `json:"multicast_groups"`
	Registers       int `json:"registers"`
	// RecircPasses is the number of extra pipe traversals available
	// via the recirculation port before the chain stops fitting.
	RecircPasses int `json:"recirc_passes"`
}

// DefaultBudget models the Tofino-class switch from
// internal/compiler/resources.go with its memory banked evenly across
// the pipeline stages.
func DefaultBudget() Budget {
	return Budget{
		Stages:          compiler.MaxPipelineStages,
		StageSRAMBytes:  compiler.SRAMBudgetBytes / compiler.MaxPipelineStages,
		StageTCAMBytes:  compiler.TCAMBudgetBytes / compiler.MaxPipelineStages,
		StageKeyBits:    512,
		MaxTableSplit:   4,
		MulticastGroups: compiler.MulticastGroupBudget,
		Registers:       compiler.RegisterBudget,
		RecircPasses:    1,
	}
}

// slots is the total stage capacity including recirculation passes.
func (b Budget) slots() int { return b.Stages * (1 + b.RecircPasses) }

// TableFit is one logical table's placement.
type TableFit struct {
	// Name is the table's field key ("Leaf" for the action stage).
	Name string `json:"name"`
	// Kind is "exact", "compressed", "ternary", or "leaf".
	Kind string `json:"kind"`
	// Cost is the table's footprint.
	Cost compiler.TableCost `json:"cost"`
	// FirstStage is the first stage slot (global across passes,
	// 0-based); StagesUsed how many consecutive slots the table spans.
	FirstStage int `json:"first_stage"`
	StagesUsed int `json:"stages_used"`
	// Headroom is how many worst-case entries can be added to this
	// table before the placement stops fitting (errors appear). It is
	// 0 when the program already overflows.
	Headroom int `json:"headroom"`
}

// StageUse is one physical stage slot's utilization.
type StageUse struct {
	// Pass is the traversal index (0 = first pass, ≥1 = recirculated).
	Pass int `json:"pass"`
	// SRAMBytes / TCAMBytes are the memory charged to this stage.
	SRAMBytes int `json:"sram_bytes"`
	TCAMBytes int `json:"tcam_bytes"`
	// SRAMPct / TCAMPct are percentages of the per-stage banks.
	SRAMPct float64 `json:"sram_pct"`
	TCAMPct float64 `json:"tcam_pct"`
	// Tables lists the logical tables (or table fragments) placed here.
	Tables []string `json:"tables"`
}

// Layout is the computed placement plus the per-dimension verdict.
type Layout struct {
	Budget Budget     `json:"budget"`
	Tables []TableFit `json:"tables"`
	// Stages holds one entry per used stage slot.
	Stages []StageUse `json:"stages"`
	// Passes is the number of pipe traversals (1 = no recirculation).
	Passes int `json:"passes"`
	// Registers / MulticastGroups are the whole-switch counts consumed.
	Registers       int `json:"registers"`
	MulticastGroups int `json:"multicast_groups"`
	// Findings is the per-dimension verdict (empty = clean fit).
	Findings []report.Finding `json:"findings"`
}

// Fits reports whether the placement has no error-severity finding
// (recirculation warnings still count as fitting).
func (l *Layout) Fits() bool {
	for _, f := range l.Findings {
		if f.Severity == report.SevError {
			return false
		}
	}
	return true
}

// MinHeadroom returns the smallest per-table headroom — the number of
// worst-case entries the tightest table can still absorb.
func (l *Layout) MinHeadroom() int {
	min := 0
	for i, t := range l.Tables {
		if i == 0 || t.Headroom < min {
			min = t.Headroom
		}
	}
	return min
}

// MaxStageSRAMPct returns the utilization of the fullest stage's SRAM
// bank (0 when no stage is used).
func (l *Layout) MaxStageSRAMPct() float64 {
	max := 0.0
	for _, s := range l.Stages {
		if s.SRAMPct > max {
			max = s.SRAMPct
		}
	}
	return max
}

// Options configures Analyze.
type Options struct {
	// Budget is the pipeline model; zero value means DefaultBudget.
	Budget Budget
	// File is stamped on findings (the rules file being analyzed).
	File string
	// SkipHeadroom disables the per-table headroom search (used by the
	// search itself, and by hot admission paths that only need the
	// verdict).
	SkipHeadroom bool
}

// table is the internal placement unit: a logical table plus its
// precomputed costs.
type table struct {
	name  string
	kind  string
	cost  compiler.TableCost
	extra compiler.TableCost // worst-case one-more-entry increment
	// demand is the number of consecutive stage slots needed.
	demand int
}

func kindName(k compiler.TableKind) string {
	switch k {
	case compiler.ExactTable:
		return "exact"
	case compiler.CompressedTable:
		return "compressed"
	default:
		return "ternary"
	}
}

// ceilDiv is ⌈a/b⌉ for positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// demandFor computes the stage-slot demand of one table under b, before
// the MaxTableSplit cap is enforced.
func demandFor(c compiler.TableCost, b Budget) int {
	d := 1
	if b.StageSRAMBytes > 0 {
		if n := ceilDiv(c.SRAMBytes, b.StageSRAMBytes); n > d {
			d = n
		}
	}
	if b.StageTCAMBytes > 0 {
		if n := ceilDiv(c.TCAMBytes, b.StageTCAMBytes); n > d {
			d = n
		}
	}
	return d
}

// gather extracts the placement units from a program: one table per
// stage field plus the leaf pseudo-table.
func gather(p *compiler.Program, b Budget) []table {
	ts := make([]table, 0, len(p.Stages)+1)
	for _, st := range p.Stages {
		c := compiler.CostOf(st)
		ts = append(ts, table{
			name:   st.Name(),
			kind:   kindName(st.Kind),
			cost:   c,
			extra:  compiler.MaxEntryCost(st),
			demand: demandFor(c, b),
		})
	}
	leaf := compiler.TableCost{
		SRAMBytes: len(p.Leaf) * compiler.LeafEntryBytes,
		KeyBits:   32, // state metadata only
		Entries:   len(p.Leaf),
	}
	ts = append(ts, table{
		name:   "Leaf",
		kind:   "leaf",
		cost:   leaf,
		extra:  compiler.TableCost{SRAMBytes: compiler.LeafEntryBytes, KeyBits: 32, Entries: 1},
		demand: demandFor(leaf, b),
	})
	return ts
}

// Analyze computes the stage placement of p under opts.Budget and
// reports the per-dimension fit verdict.
func Analyze(p *compiler.Program, opts Options) *Layout {
	b := opts.Budget
	if b.Stages == 0 {
		b = DefaultBudget()
	}
	ts := gather(p, b)
	l := place(ts, b, opts.File)
	l.Registers = compiler.RegisterCount(p)
	l.MulticastGroups = len(p.Groups)
	globalFindings(l, b, opts.File)
	if !opts.SkipHeadroom {
		headroom(l, ts, b)
	}
	return l
}

// place packs the table chain into stage slots and emits the per-table
// findings (key width, unsplittable tables, chain overflow).
func place(ts []table, b Budget, file string) *Layout {
	l := &Layout{Budget: b}
	finding := func(kind report.Kind, sev report.Severity, msg string, args ...any) {
		l.Findings = append(l.Findings, report.Finding{
			Tool:     Tool,
			File:     file,
			Kind:     kind,
			Severity: sev,
			Message:  fmt.Sprintf(msg, args...),
		})
	}
	slot := 0
	for _, t := range ts {
		if t.cost.KeyBits > b.StageKeyBits {
			finding(KindKeyWidth, report.SevError,
				"table %s: match key %d bits exceeds the %d-bit stage crossbar",
				t.name, t.cost.KeyBits, b.StageKeyBits)
		}
		demand := t.demand
		if demand > b.MaxTableSplit {
			// Report the dimension that drives the split.
			kind, res, have := KindSRAM, t.cost.SRAMBytes, b.StageSRAMBytes*b.MaxTableSplit
			if b.StageTCAMBytes > 0 && ceilDiv(t.cost.TCAMBytes, b.StageTCAMBytes) > b.MaxTableSplit {
				kind, res, have = KindTCAM, t.cost.TCAMBytes, b.StageTCAMBytes*b.MaxTableSplit
			}
			finding(kind, report.SevError,
				"table %s needs %d stages but may span at most %d (%d bytes > %d across the split)",
				t.name, demand, b.MaxTableSplit, res, have)
			demand = b.MaxTableSplit // place what fits; the verdict already failed
		}
		tf := TableFit{
			Name: t.name, Kind: t.kind, Cost: t.cost,
			FirstStage: slot, StagesUsed: demand,
		}
		// Distribute the footprint evenly across the split fragments.
		for i := 0; i < demand; i++ {
			for len(l.Stages) <= slot+i {
				l.Stages = append(l.Stages, StageUse{Pass: len(l.Stages) / b.Stages})
			}
			su := &l.Stages[slot+i]
			su.SRAMBytes += t.cost.SRAMBytes / demand
			su.TCAMBytes += t.cost.TCAMBytes / demand
			if i == 0 { // remainder bytes land on the first fragment
				su.SRAMBytes += t.cost.SRAMBytes % demand
				su.TCAMBytes += t.cost.TCAMBytes % demand
			}
			name := t.name
			if demand > 1 {
				name = fmt.Sprintf("%s[%d/%d]", t.name, i+1, demand)
			}
			su.Tables = append(su.Tables, name)
		}
		slot += demand
		l.Tables = append(l.Tables, tf)
	}
	for i := range l.Stages {
		l.Stages[i].SRAMPct = 100 * float64(l.Stages[i].SRAMBytes) / float64(b.StageSRAMBytes)
		l.Stages[i].TCAMPct = 100 * float64(l.Stages[i].TCAMBytes) / float64(b.StageTCAMBytes)
	}
	l.Passes = ceilDiv(slot, b.Stages)
	if l.Passes == 0 {
		l.Passes = 1
	}
	switch {
	case slot > b.slots():
		finding(KindStages, report.SevError,
			"pipeline needs %d stage slots but only %d are available (%d stages × %d passes)",
			slot, b.slots(), b.Stages, 1+b.RecircPasses)
	case l.Passes > 1:
		finding(KindRecirc, report.SevWarning,
			"pipeline needs %d stage slots: %d recirculation pass(es) of the %d budgeted",
			slot, l.Passes-1, b.RecircPasses)
	}
	return l
}

// globalFindings emits the whole-switch dimension verdicts.
func globalFindings(l *Layout, b Budget, file string) {
	if l.MulticastGroups > b.MulticastGroups {
		l.Findings = append(l.Findings, report.Finding{
			Tool: Tool, File: file, Kind: KindMcast, Severity: report.SevError,
			Message: fmt.Sprintf("%d multicast groups exceed the %d-group replication table",
				l.MulticastGroups, b.MulticastGroups),
		})
	}
	if l.Registers > b.Registers {
		l.Findings = append(l.Findings, report.Finding{
			Tool: Tool, File: file, Kind: KindRegs, Severity: report.SevError,
			Message: fmt.Sprintf("%d aggregate windows exceed the %d stateful registers",
				l.Registers, b.Registers),
		})
	}
}

// headroom fills in per-table headroom: for each table, the largest h
// such that charging h worst-case extra entries to it keeps the layout
// free of error findings. Monotone in h, so exponential probe + binary
// search. A program that already overflows has zero headroom everywhere.
func headroom(l *Layout, ts []table, b Budget) {
	if !l.Fits() {
		return // Headroom fields stay 0
	}
	// maxH caps the search: once a table could absorb the whole pipe's
	// worth of its own entry cost, more precision is meaningless.
	const maxH = 1 << 30
	for i := range ts {
		fits := func(h int) bool { return fitsWith(ts, i, h, b) }
		lo, hi := 0, 1
		for hi < maxH && fits(hi) {
			lo, hi = hi, hi*2
		}
		if hi >= maxH {
			l.Tables[i].Headroom = maxH
			continue
		}
		// Invariant: fits(lo) && !fits(hi).
		for hi-lo > 1 {
			mid := lo + (hi-lo)/2
			if fits(mid) {
				lo = mid
			} else {
				hi = mid
			}
		}
		l.Tables[i].Headroom = lo
	}
}

// fitsWith reports whether the chain still fits when table idx carries
// h extra worst-case entries. Only the dimensions an entry add can move
// are re-checked: stage demand (hence slots/splits). Key width, mcast,
// and register counts are entry-independent.
func fitsWith(ts []table, idx, h int, b Budget) bool {
	slots := 0
	for i, t := range ts {
		c := t.cost
		if i == idx {
			c.SRAMBytes += h * t.extra.SRAMBytes
			c.TCAMBytes += h * t.extra.TCAMBytes
		}
		d := demandFor(c, b)
		if d > b.MaxTableSplit {
			return false
		}
		slots += d
	}
	return slots <= b.slots()
}

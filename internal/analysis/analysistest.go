package analysis

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// RunFixture loads the fixture package at dir (a path relative to the
// calling test's working directory, typically under testdata/src/...)
// and checks the analyzer's diagnostics against the fixture's
// expectations — the analysistest convention:
//
//	s.Packets = 0 // want `mutates a StatsSnapshot snapshot copy`
//
// Each `// want` comment holds one or more back-quoted or quoted
// regular expressions that must match diagnostics reported on that
// line; diagnostics without a matching expectation, and expectations
// without a matching diagnostic, fail the test.
func RunFixture(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	pkgs, err := Load(LoadConfig{}, dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("load %s: got %d packages, want 1", dir, len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.IllTyped {
		t.Fatalf("fixture %s does not type-check: %v", dir, pkg.Errs)
	}

	wants := collectWants(t, pkg)
	pass := &Pass{Analyzer: a, Pkg: pkg}
	a.Run(pass)

	matched := make(map[*wantExpect]bool)
	for _, d := range pass.diags {
		key := lineKey{file: d.Pos.Filename, line: d.Pos.Line}
		var hit *wantExpect
		for _, w := range wants[key] {
			if !matched[w] && w.rx.MatchString(d.Message) {
				hit = w
				break
			}
		}
		if hit == nil {
			t.Errorf("%s:%d: unexpected diagnostic: %s", d.Pos.Filename, d.Pos.Line, d.Message)
			continue
		}
		matched[hit] = true
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !matched[w] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, w.rx)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type wantExpect struct {
	rx *regexp.Regexp
}

// collectWants parses `// want` comments from the fixture syntax.
func collectWants(t *testing.T, pkg *Package) map[lineKey][]*wantExpect {
	t.Helper()
	wants := make(map[lineKey][]*wantExpect)
	for _, file := range pkg.Syntax {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rxs, err := parseWantPatterns(strings.TrimPrefix(text, "want "))
				if err != nil {
					t.Fatalf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
				}
				key := lineKey{file: pos.Filename, line: pos.Line}
				for _, rx := range rxs {
					wants[key] = append(wants[key], &wantExpect{rx: rx})
				}
			}
		}
	}
	return wants
}

// parseWantPatterns splits a want payload into quoted regexps. Both
// `backquoted` and "quoted" (with strconv unquoting) forms work.
func parseWantPatterns(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	s = strings.TrimSpace(s)
	for s != "" {
		var raw string
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquote in %q", s)
			}
			raw = s[1 : 1+end]
			s = s[2+end:]
		case '"':
			q, err := strconv.QuotedPrefix(s)
			if err != nil {
				return nil, fmt.Errorf("bad quoted pattern in %q: %v", s, err)
			}
			raw, err = strconv.Unquote(q)
			if err != nil {
				return nil, err
			}
			s = s[len(q):]
		default:
			return nil, fmt.Errorf("pattern must be quoted or backquoted: %q", s)
		}
		rx, err := regexp.Compile(raw)
		if err != nil {
			return nil, err
		}
		out = append(out, rx)
		s = strings.TrimSpace(s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no patterns")
	}
	return out, nil
}

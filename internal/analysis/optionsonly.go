package analysis

import (
	"go/ast"
	"go/types"
)

// OptionsOnlyAnalyzer enforces the functional-options construction
// surface of the dataplane: outside internal/pipeline, a Switch must be
// built with NewSwitch(id, static, prog, opts...) and never by
// composite literal, field mutation, deprecated pipeline.New, or
// hand-rolled Config literals. The frozen-Config invariant is what
// makes the sharded dataplane safe to drive from many goroutines; any
// other construction path can smuggle in mutable state.
var OptionsOnlyAnalyzer = &Analyzer{
	Name: "camus-options",
	Doc:  "flag direct construction/mutation of pipeline.Switch or Config outside internal/pipeline",
	Run:  runOptionsOnly,
}

func runOptionsOnly(pass *Pass) {
	if pass.PkgPath() == pipelinePath {
		return
	}
	info := pass.TypesInfo()
	for _, file := range pass.Pkg.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CompositeLit:
				t := info.TypeOf(e)
				if t == nil {
					return true
				}
				if namedType(t, pipelinePath, "Switch") {
					pass.Reportf(e.Pos(),
						"composite literal of pipeline.Switch bypasses NewSwitch; construct switches with functional options")
				}
				if namedType(t, pipelinePath, "Config") {
					pass.Reportf(e.Pos(),
						"composite literal of pipeline.Config bypasses DefaultConfig; use SwitchOption functional options")
				}
			case *ast.AssignStmt:
				for _, lhs := range e.Lhs {
					checkSwitchFieldWrite(pass, info, lhs)
				}
			case *ast.IncDecStmt:
				checkSwitchFieldWrite(pass, info, e.X)
			case *ast.CallExpr:
				checkDeprecatedNew(pass, info, e)
			}
			return true
		})
	}
}

// checkSwitchFieldWrite reports assignments to fields of a
// pipeline.Switch (its internals are owned by the pipeline package).
func checkSwitchFieldWrite(pass *Pass, info *types.Info, lhs ast.Expr) {
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if selectionField(info, sel) == nil {
		return
	}
	base := info.TypeOf(sel.X)
	if base == nil || !namedType(base, pipelinePath, "Switch") {
		return
	}
	pass.Reportf(lhs.Pos(),
		"mutation of pipeline.Switch field %s outside internal/pipeline; switch internals are frozen after NewSwitch",
		sel.Sel.Name)
}

// checkDeprecatedNew reports calls to pipeline.New, the legacy
// Config-taking constructor.
func checkDeprecatedNew(pass *Pass, info *types.Info, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if fn.Pkg().Path() == pipelinePath && fn.Name() == "New" {
		pass.Reportf(call.Pos(),
			"pipeline.New is the deprecated Config constructor; use pipeline.NewSwitch with SwitchOption functional options")
	}
}

package analysis

import (
	"go/ast"
	"go/types"
)

// ctlplanePath is the control-plane package whose construction surface
// the suite protects alongside the dataplane's.
const ctlplanePath = "camus/internal/ctlplane"

// serverPath is the daemon package behind camus.NewDaemon; a Daemon
// built by composite literal skips log replay and handler wiring.
const serverPath = "camus/internal/ctlplane/server"

// OptionsOnlyAnalyzer enforces the functional-options construction
// surface of the dataplane and the control plane: outside
// internal/pipeline, a Switch must be built with NewSwitch(id, static,
// prog, opts...) and never by composite literal, field mutation,
// deprecated pipeline.New, or hand-rolled Config literals; outside
// internal/ctlplane, a Service must be built with ctlplane.New(net,
// spec, opts...) and a Reconciler with NewReconcilerWith — never via
// ctlplane.Config literals or the deprecated NewService /
// five-positional-argument NewReconciler shims. The frozen-Config
// invariant is what makes both layers safe to drive from many
// goroutines; any other construction path can smuggle in mutable
// state.
var OptionsOnlyAnalyzer = &Analyzer{
	Name: "camus-options",
	Doc:  "flag direct construction/mutation of pipeline or ctlplane configuration outside their owning packages",
	Run:  runOptionsOnly,
}

func runOptionsOnly(pass *Pass) {
	// Exemptions are per-owning-package: pipeline may build its own
	// Switch/Config, ctlplane may use its own Config (the Option target
	// and the shim's plumbing), and neither exemption leaks to the
	// other layer's checks.
	inPipeline := pass.PkgPath() == pipelinePath
	inCtlplane := pass.PkgPath() == ctlplanePath
	inServer := pass.PkgPath() == serverPath
	info := pass.TypesInfo()
	for _, file := range pass.Pkg.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CompositeLit:
				t := info.TypeOf(e)
				if t == nil {
					return true
				}
				if !inPipeline {
					if namedType(t, pipelinePath, "Switch") {
						pass.Reportf(e.Pos(),
							"composite literal of pipeline.Switch bypasses NewSwitch; construct switches with functional options")
					}
					if namedType(t, pipelinePath, "Config") {
						pass.Reportf(e.Pos(),
							"composite literal of pipeline.Config bypasses DefaultConfig; use SwitchOption functional options")
					}
				}
				if !inCtlplane && namedType(t, ctlplanePath, "Config") {
					pass.Reportf(e.Pos(),
						"composite literal of ctlplane.Config bypasses the functional options; construct services with ctlplane.New(net, spec, opts...)")
				}
				// The camus facade aliases these types (ControlPlane =
				// ctlplane.Service, Daemon = server.Daemon), so literal
				// construction through the facade resolves to the same
				// named types and is caught here too.
				if !inCtlplane && namedType(t, ctlplanePath, "Service") {
					pass.Reportf(e.Pos(),
						"composite literal of the control-plane Service bypasses its apply workers and frozen Config; construct with camus.NewControlPlane (or ctlplane.New)")
				}
				if !inServer && namedType(t, serverPath, "Daemon") {
					pass.Reportf(e.Pos(),
						"composite literal of the control-plane Daemon bypasses log replay and handler wiring; construct with camus.NewDaemon (or server.New)")
				}
			case *ast.AssignStmt:
				if !inPipeline {
					for _, lhs := range e.Lhs {
						checkSwitchFieldWrite(pass, info, lhs)
					}
				}
			case *ast.IncDecStmt:
				if !inPipeline {
					checkSwitchFieldWrite(pass, info, e.X)
				}
			case *ast.CallExpr:
				if !inPipeline {
					checkDeprecatedNew(pass, info, e)
				}
				if !inCtlplane {
					checkDeprecatedCtlplane(pass, info, e)
				}
			}
			return true
		})
	}
}

// checkSwitchFieldWrite reports assignments to fields of a
// pipeline.Switch (its internals are owned by the pipeline package).
func checkSwitchFieldWrite(pass *Pass, info *types.Info, lhs ast.Expr) {
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if selectionField(info, sel) == nil {
		return
	}
	base := info.TypeOf(sel.X)
	if base == nil || !namedType(base, pipelinePath, "Switch") {
		return
	}
	pass.Reportf(lhs.Pos(),
		"mutation of pipeline.Switch field %s outside internal/pipeline; switch internals are frozen after NewSwitch",
		sel.Sel.Name)
}

// checkDeprecatedNew reports calls to pipeline.New, the legacy
// Config-taking constructor.
func checkDeprecatedNew(pass *Pass, info *types.Info, call *ast.CallExpr) {
	if fn := calledFunc(info, call); fn != nil &&
		fn.Pkg().Path() == pipelinePath && fn.Name() == "New" {
		pass.Reportf(call.Pos(),
			"pipeline.New is the deprecated Config constructor; use pipeline.NewSwitch with SwitchOption functional options")
	}
}

// checkDeprecatedCtlplane reports calls to the control plane's
// deprecated shims: the Config-taking NewService and the
// five-positional-argument NewReconciler.
func checkDeprecatedCtlplane(pass *Pass, info *types.Info, call *ast.CallExpr) {
	fn := calledFunc(info, call)
	if fn == nil || fn.Pkg().Path() != ctlplanePath {
		return
	}
	switch fn.Name() {
	case "NewService":
		pass.Reportf(call.Pos(),
			"ctlplane.NewService is the deprecated Config constructor; use ctlplane.New(net, spec, opts...) with functional options")
	case "NewReconciler":
		pass.Reportf(call.Pos(),
			"ctlplane.NewReconciler is the deprecated positional constructor; use ctlplane.NewReconcilerWith(net, spec, opts...) with functional options")
	}
}

// calledFunc resolves a call through a package selector to the callee,
// or nil when the call is not pkg.Func(...).
func calledFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	return fn
}

// Package atomicmix is a fixture for the camus-atomic analyzer: the
// counters struct mixes sync/atomic access with plain reads and writes.
package atomicmix

import (
	"sync/atomic"
)

type counters struct {
	hits   int64
	misses int64
	cold   int64 // never touched atomically
}

func (c *counters) record(ok bool) {
	if ok {
		atomic.AddInt64(&c.hits, 1)
		return
	}
	atomic.AddInt64(&c.misses, 1)
}

func (c *counters) snapshot() (int64, int64) {
	return atomic.LoadInt64(&c.hits), atomic.LoadInt64(&c.misses)
}

func (c *counters) racyRead() int64 {
	return c.hits // want `non-atomic access to field hits`
}

func (c *counters) racyReset() {
	c.hits = 0   // want `non-atomic access to field hits`
	c.misses = 0 // want `non-atomic access to field misses`
}

func (c *counters) plainIsFine() int64 {
	c.cold++ // cold is never accessed atomically: no finding
	return c.cold
}

// taking the address for another atomic call stays sanctioned.
func (c *counters) swap() int64 {
	return atomic.SwapInt64(&c.hits, 0)
}

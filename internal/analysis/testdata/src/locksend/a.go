// Package locksend is a fixture for the camus-locksend analyzer:
// channel sends and ProcessBatch fan-out while holding mutexes.
package locksend

import (
	"sync"

	"camus/internal/pipeline"
)

type queue struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	ch    chan int
	items []int
}

func (q *queue) sendLocked(v int) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.ch <- v // want `channel send while holding q\.mu`
	q.mu.Unlock()
}

func (q *queue) sendAfterUnlock(v int) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.mu.Unlock()
	q.ch <- v // lock released: no finding
}

func (q *queue) sendUnderDefer(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.ch <- v // want `channel send while holding q\.mu`
}

func (q *queue) sendUnderRLock(v int) {
	q.rw.RLock()
	defer q.rw.RUnlock()
	q.ch <- v // want `channel send while holding q\.rw`
}

func (q *queue) sendInSelect(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.ch <- v: // want `channel send while holding q\.mu`
	default:
	}
}

func (q *queue) fanOutLocked(sw *pipeline.Switch, pkts []*pipeline.Packet) [][]pipeline.Delivery {
	q.mu.Lock()
	defer q.mu.Unlock()
	return sw.ProcessBatch(pkts, 0) // want `ProcessBatch fan-out while holding q\.mu`
}

func (q *queue) fanOutUnlocked(sw *pipeline.Switch, pkts []*pipeline.Packet) [][]pipeline.Delivery {
	q.mu.Lock()
	n := len(q.items)
	q.mu.Unlock()
	_ = n
	return sw.ProcessBatch(pkts, 0) // no lock held: no finding
}

func (q *queue) goroutineDoesNotInherit(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	go func() {
		q.ch <- v // runs without the spawner's lock: no finding
	}()
}

func (q *queue) branchLockStaysInBranch(v int, cond bool) {
	if cond {
		q.mu.Lock()
		q.items = append(q.items, v)
		q.mu.Unlock()
	}
	q.ch <- v // no lock held on this path: no finding
}

// Package snapshotwrite is a fixture for the camus-snapshot analyzer:
// seeded mutations of StatsSnapshot and Config snapshot values.
package snapshotwrite

import (
	"camus/internal/pipeline"
)

func mutateStats(sw *pipeline.Switch) int64 {
	snap := sw.Stats()
	snap.Packets = 0                   // want `mutates a StatsSnapshot snapshot copy`
	snap.Deliveries++                  // want `mutates a StatsSnapshot snapshot copy`
	snap.BytesIn, snap.BytesOut = 1, 2 // want `snap\.BytesIn mutates a StatsSnapshot` `snap\.BytesOut mutates a StatsSnapshot`
	return snap.Packets                // reads are fine
}

func mutateStatsPtr(snap *pipeline.StatsSnapshot) {
	snap.Matched = 9 // want `mutates a StatsSnapshot snapshot copy`
}

func mutateConfig(sw *pipeline.Switch) pipeline.Config {
	cfg := sw.Config()
	cfg.Workers = 8 // want `mutates a Config snapshot copy`
	cfg.FlowCacheSize += 1024 // want `mutates a Config snapshot copy`
	return cfg
}

// aggregate reads and local copies of other structs stay silent.
type localStats struct{ Packets int64 }

func fineWrites(sw *pipeline.Switch) {
	var mine localStats
	mine.Packets = 7
	total := sw.Stats().Packets + mine.Packets
	_ = total
	_ = sw.Config().Workers
}

// Package optionsonly is a fixture for the camus-options analyzer:
// seeded direct construction and mutation of the dataplane outside
// internal/pipeline.
package optionsonly

import (
	"camus/internal/pipeline"
)

func directLiteral() *pipeline.Switch {
	sw := &pipeline.Switch{} // want `composite literal of pipeline\.Switch bypasses NewSwitch`
	return sw
}

func valueLiteral() pipeline.Switch {
	return pipeline.Switch{ID: "x"} // want `composite literal of pipeline\.Switch bypasses NewSwitch`
}

func configLiteral() pipeline.Config {
	return pipeline.Config{Workers: 4} // want `composite literal of pipeline\.Config bypasses DefaultConfig`
}

func mutateSwitch(sw *pipeline.Switch) {
	sw.ID = "renamed" // want `mutation of pipeline\.Switch field ID`
}

func deprecatedNew(prog interface{}) {
	_, _ = pipeline.New("sw", nil, nil, pipeline.DefaultConfig()) // want `pipeline\.New is the deprecated Config constructor`
}

func sanctioned() (*pipeline.Switch, error) {
	return pipeline.NewSwitch("ok", nil, nil, pipeline.WithWorkers(2))
}

// Package facadeopts is a fixture for the camus-options analyzer:
// seeded construction of the control plane and daemon through the
// camus facade that bypasses NewControlPlane / NewDaemon. The facade
// types are aliases (ControlPlane = ctlplane.Service, Daemon =
// server.Daemon), so the analyzer must see through them.
package facadeopts

import (
	"camus/camus"
	"camus/internal/ctlplane"
	"camus/internal/ctlplane/server"
)

func bareControlPlane() *camus.ControlPlane {
	return &camus.ControlPlane{} // want `composite literal of the control-plane Service bypasses its apply workers`
}

func bareService() ctlplane.Service {
	return ctlplane.Service{} // want `composite literal of the control-plane Service bypasses its apply workers`
}

func bareDaemon() *camus.Daemon {
	return &camus.Daemon{} // want `composite literal of the control-plane Daemon bypasses log replay`
}

func bareServerDaemon() *server.Daemon {
	return &server.Daemon{} // want `composite literal of the control-plane Daemon bypasses log replay`
}

func shimThroughFacade(net *camus.Network, sp *camus.Spec) (*camus.ControlPlane, error) {
	cfg := ctlplane.Config{Net: net, Spec: sp} // want `composite literal of ctlplane\.Config bypasses the functional options`
	return ctlplane.NewService(cfg)            // want `ctlplane\.NewService is the deprecated Config constructor`
}

func sanctioned(net *camus.Network, sp *camus.Spec) (*camus.ControlPlane, error) {
	return camus.NewControlPlane(net, sp,
		camus.WithPolicy(camus.TrafficReduction, 0),
		camus.WithQueueDepth(64))
}

func sanctionedDaemon(net *camus.Network, sp *camus.Spec) (*camus.Daemon, error) {
	return camus.NewDaemon(net, sp,
		camus.WithDaemonService(camus.WithDrift(0.3)))
}

// Package fitgate is a fixture for the camus-fitgate analyzer: freshly
// compiled programs must pass a fit-admission check before Install.
package fitgate

import (
	"camus/internal/analysis/fitcheck"
	"camus/internal/compiler"
	"camus/internal/spec"
	"camus/internal/subscription"
)

type installer interface {
	Install(*compiler.Program) error
}

func installUnchecked(t installer, sp *spec.Spec, rules []*subscription.Rule) error {
	prog, err := compiler.Compile(sp, rules, compiler.Options{})
	if err != nil {
		return err
	}
	return t.Install(prog) // want `freshly compiled program prog reaches Install without a fit-admission check`
}

func installUncheckedUpdate(t installer, inc *compiler.Incremental, add []*subscription.Rule) error {
	up, err := inc.Apply(add, nil)
	if err != nil {
		return err
	}
	return t.Install(up.Program) // want `freshly compiled program up\.Program reaches Install without a fit-admission check`
}

func installPropagated(t installer, inc *compiler.Incremental, add []*subscription.Rule) error {
	up, err := inc.Apply(add, nil)
	if err != nil {
		return err
	}
	prog := up.Program
	return t.Install(prog) // want `freshly compiled program prog reaches Install without a fit-admission check`
}

func installAdmitted(t installer, m *fitcheck.Model, sp *spec.Spec, rules []*subscription.Rule) error {
	prog, err := compiler.Compile(sp, rules, compiler.Options{})
	if err != nil {
		return err
	}
	if err := m.Admit(prog, 0); err != nil {
		return err
	}
	return t.Install(prog) // admitted above: no finding
}

func installParameter(t installer, prog *compiler.Program) error {
	// The program was compiled (and admitted) by the caller; the gate is
	// the caller's obligation, exactly like the service's install worker.
	return t.Install(prog)
}

func installClosureParameter(t installer, sp *spec.Spec, rules []*subscription.Rule) error {
	prog, err := compiler.Compile(sp, rules, compiler.Options{})
	if err != nil {
		return err
	}
	do := func(p *compiler.Program) error {
		return t.Install(p) // parameter inside the closure: caller's gate
	}
	_ = do
	return t.Install(prog) // want `freshly compiled program prog reaches Install without a fit-admission check`
}

// Package ctlplaneopts is a fixture for the camus-options analyzer:
// seeded direct construction of the control plane outside
// internal/ctlplane — Config literals and the deprecated NewService /
// positional NewReconciler shims.
package ctlplaneopts

import (
	"camus/internal/compiler"
	"camus/internal/ctlplane"
	"camus/internal/routing"
	"camus/internal/spec"
	"camus/internal/topology"
)

func configLiteral(net *topology.Network, sp *spec.Spec) ctlplane.Config {
	return ctlplane.Config{Net: net, Spec: sp} // want `composite literal of ctlplane\.Config bypasses the functional options`
}

func configPointer() *ctlplane.Config {
	return &ctlplane.Config{Drift: 0.5} // want `composite literal of ctlplane\.Config bypasses the functional options`
}

func deprecatedService(net *topology.Network, sp *spec.Spec) (*ctlplane.Service, error) {
	cfg := ctlplane.Config{Net: net, Spec: sp} // want `composite literal of ctlplane\.Config bypasses the functional options`
	return ctlplane.NewService(cfg)            // want `ctlplane\.NewService is the deprecated Config constructor`
}

func deprecatedReconciler(net *topology.Network, sp *spec.Spec) (*ctlplane.Reconciler, error) {
	return ctlplane.NewReconciler(net, sp, routing.Options{}, compiler.Options{}, 0) // want `ctlplane\.NewReconciler is the deprecated positional constructor`
}

func sanctioned(net *topology.Network, sp *spec.Spec) (*ctlplane.Service, error) {
	return ctlplane.New(net, sp,
		ctlplane.WithDrift(0.3),
		ctlplane.WithQueueDepth(64))
}

func sanctionedReconciler(net *topology.Network, sp *spec.Spec) (*ctlplane.Reconciler, error) {
	return ctlplane.NewReconcilerWith(net, sp,
		ctlplane.WithRouting(routing.Options{Policy: routing.TrafficReduction}))
}
